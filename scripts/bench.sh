#!/usr/bin/env bash
# Run the criterion benches and record a machine-readable summary so the
# perf trajectory is tracked across PRs.
#
# The bench fixtures are seeded (fixed seeds baked into
# crates/bench/src/lib.rs and the bench files), so runs are directly
# comparable across commits on the same machine.
#
# Usage:
#   scripts/bench.sh                  # all benches
#   scripts/bench.sh --bench lpm     # one bench binary (any cargo bench args)
#
# Output: BENCH_<date>.json in the repository root, of the form
#   { "date": ..., "git": ..., "machine": {...}, "results": [ {"group":...,"bench":...,"median_ns":...}, ... ] }
# plus the usual human-readable bench lines on stdout.
#
# The "machine" header (CPU model, core count, kernel) is what makes
# cross-commit comparison honest: numbers from different machines — or
# multi-shard arms run on a single-core box — are not comparable, and
# the header says so without relying on anyone's memory.
set -euo pipefail
cd "$(dirname "$0")/.."

tag=$(date +%Y%m%d)
out="BENCH_${tag}.json"
tmp=$(mktemp)
trap 'rm -f "$tmp"' EXIT

CRITERION_JSON="$tmp" cargo bench -p eleph-bench "$@"

if [ ! -s "$tmp" ]; then
    echo "bench.sh: no results captured" >&2
    exit 1
fi

# Machine context: enough to judge whether two BENCH files are
# comparable (and whether parallel arms had cores to run on).
cpu_model=$(awk -F': ' '/^model name/ {print $2; exit}' /proc/cpuinfo 2>/dev/null || true)
[ -n "${cpu_model:-}" ] || cpu_model=$(uname -m)
cores=$(nproc 2>/dev/null || echo 1)
kernel=$(uname -sr)

{
    printf '{\n'
    printf '  "date": "%s",\n' "$(date -u +%Y-%m-%dT%H:%M:%SZ)"
    printf '  "git": "%s",\n' "$(git rev-parse --short HEAD 2>/dev/null || echo unknown)"
    printf '  "machine": {"cpu": "%s", "cores": %s, "kernel": "%s"},\n' \
        "$cpu_model" "$cores" "$kernel"
    printf '  "results": [\n'
    sed 's/^/    /; $!s/$/,/' "$tmp"
    printf '  ]\n}\n'
} > "$out"

echo "bench.sh: wrote $(grep -c median_ns "$tmp") results to $out"
