#!/usr/bin/env bash
# The repository's verification gate, in the order a reviewer should
# trust it:
#
#   1. tier-1: release build + full test suite (see ROADMAP.md);
#   2. classifier equivalence: the dense columnar engine against the
#      legacy-replica oracle, classify_many against independent
#      classify runs, and online against batch — the properties that
#      license every classifier optimisation (already part of tier-1;
#      re-run by name so a failure is attributed immediately);
#   3. streaming equivalence: the PR-4 pipeline (packets → sealing →
#      online classification, no matrix) against aggregate_pcap +
#      classify, bit-identical on the same capture bytes;
#   4. the `prefetch` feature: build and test the feature-gated software
#      prefetch paths (net batch lookup, packet scan-ahead, and their
#      dependents) so the gated code cannot rot unbuilt;
#   5. bench compilation: the criterion harnesses must at least build;
#   6. executables: examples build and the packet-path ones smoke-run,
#      `eleph run` streams a tiny synthetic workload to JSONL, and the
#      deprecated per-experiment shims stay byte-identical to their
#      `eleph` subcommands (fig1a, table1);
#   7. crash safety: a checkpointed `eleph run` is SIGKILLed mid-capture
#      and resumed with `--resume`; the recovered JSONL must be
#      byte-identical to an uninterrupted reference run (no duplicated,
#      no missing interval records). The gate is timing-independent: a
#      kill that lands before the first checkpoint degrades to a fresh
#      start, one that lands after completion re-seals the tail — both
#      still must reproduce the reference bytes;
#   8. churn determinism: `eleph churn` generates a route-update
#      schedule, the same capture is streamed twice with `--rib-updates`
#      replaying that schedule mid-stream, and the two JSONL outputs
#      must be byte-for-byte identical (update replay is a function of
#      packet timestamps, never of IO chunking or wall-clock);
#   9. shard equivalence: the same capture streamed serially, at
#      `--shards 1` and at `--shards 4` must produce byte-for-byte
#      identical JSONL (sharding is a throughput knob, never a
#      measurement change), and the sharded proptest suite is re-run
#      single-threaded (`RUST_TEST_THREADS=1`) so worker/test-harness
#      interleavings cannot mask an ordering bug;
#  10. sketch tier: every state backend (exact, spacesaving, cmrow,
#      bloom) streams the same seeded synthetic capture twice and the
#      two JSONL outputs must be byte-identical (sketches are
#      deterministic functions of the stream, never of hashing luck or
#      allocation order), and `eleph sketch` runs the exact-oracle
#      accuracy harness end to end, asserting recall >= 0.95 at the
#      default budget on the west lab scenario.
#
# Usage: scripts/ci.sh
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== tier-1: release build =="
cargo build --release

echo "== tier-1: tests =="
cargo test -q

echo "== classifier equivalence: dense vs legacy, classify_many vs classify, online vs batch =="
cargo test -q -p eleph-core --test props -- \
    dense_classify_matches_legacy_reference \
    classify_many_equals_independent_classifies \
    exact_retire_keeps_epsilon_scale_microflow \
    adversarial_magnitudes_leave_no_stale_state
cargo test -q -p eleph-core --lib online::

echo "== streaming equivalence: pipeline vs aggregate_pcap + classify =="
cargo test -q -p eleph-tests --test streaming_equivalence

echo "== feature gate: prefetch build =="
cargo build -p eleph-flow -p eleph-bench --features prefetch

echo "== feature gate: prefetch tests (net + packet + flow) =="
cargo test -q -p eleph-net -p eleph-packet -p eleph-flow --features prefetch

echo "== benches compile =="
cargo build -p eleph-bench --benches --release

echo "== examples build + packet-path smoke runs =="
cargo build --release -p eleph-tests --examples
cargo run -q --release -p eleph-tests --example quickstart > /dev/null
cargo run -q --release -p eleph-tests --example link_report -- --drop 0.02 > /dev/null

echo "== eleph run: tiny synthetic workload to JSONL =="
tmpdir=$(mktemp -d)
trap 'rm -rf "$tmpdir"' EXIT
cargo run -q --release -p eleph-report --bin eleph -- \
    run --synth --flows 200 --intervals 4 --interval-secs 20 --prefixes 2000 \
    --out "$tmpdir/run.jsonl" 2> /dev/null
[ "$(wc -l < "$tmpdir/run.jsonl")" -eq 4 ] \
    || { echo "eleph run: expected 4 JSONL intervals" >&2; exit 1; }

echo "== crash safety: SIGKILL a checkpointed run, resume, diff against reference =="
eleph=target/release/eleph
crash_args=(run --synth --flows 2000 --intervals 300 --interval-secs 20 --prefixes 2000)
"$eleph" "${crash_args[@]}" --out "$tmpdir/crash_ref.jsonl" 2> /dev/null
# The binary is killed directly (not through cargo, which would orphan
# the child and absorb the signal).
"$eleph" "${crash_args[@]}" --out "$tmpdir/crash.jsonl" \
    --checkpoint-dir "$tmpdir/ckpt" 2> /dev/null &
victim=$!
sleep 0.2
kill -9 "$victim" 2> /dev/null || true
wait "$victim" 2> /dev/null && killed="completed before the kill" || killed="killed mid-run"
echo "   victim $killed ($(wc -l < "$tmpdir/crash.jsonl") of 300 intervals durable)"
"$eleph" "${crash_args[@]}" --out "$tmpdir/crash.jsonl" \
    --checkpoint-dir "$tmpdir/ckpt" --resume 2> /dev/null
diff "$tmpdir/crash.jsonl" "$tmpdir/crash_ref.jsonl" \
    || { echo "crash safety: resumed output diverges from reference" >&2; exit 1; }

echo "== churn determinism: replay the same update schedule twice, diff JSONL =="
"$eleph" churn --prefixes 2000 --seed 9 --start-unix 995990400 \
    --out "$tmpdir/updates.txt" 2> /dev/null
churn_args=(run --synth --flows 200 --intervals 30 --interval-secs 20 --prefixes 2000
    --rib-updates "$tmpdir/updates.txt")
"$eleph" "${churn_args[@]}" --out "$tmpdir/churn1.jsonl" 2> "$tmpdir/churn1.summary"
"$eleph" "${churn_args[@]}" --out "$tmpdir/churn2.jsonl" 2> "$tmpdir/churn2.summary"
cmp "$tmpdir/churn1.jsonl" "$tmpdir/churn2.jsonl" \
    || { echo "churn determinism: JSONL outputs diverge" >&2; exit 1; }
# The summary's timing fields (elapsed_secs, throughput, pps) are
# wall-clock measurements — legitimately different between runs; every
# other field must reproduce exactly.
strip_timing='s/"elapsed_secs":[0-9.]*,"throughput_bytes_per_sec":[0-9.]*,"packets_per_sec":[0-9.]*/TIMING/'
diff <(sed -E "$strip_timing" "$tmpdir/churn1.summary") \
     <(sed -E "$strip_timing" "$tmpdir/churn2.summary") \
    || { echo "churn determinism: summaries diverge" >&2; exit 1; }
grep -q TIMING <(sed -E "$strip_timing" "$tmpdir/churn1.summary") \
    || { echo "churn determinism: summary lost its timing fields" >&2; exit 1; }
grep -q '"route_updates":0' "$tmpdir/churn1.summary" \
    && { echo "churn determinism: no update batch was applied mid-stream" >&2; exit 1; }

echo "== shard equivalence: serial vs --shards 1 vs --shards 4, byte-for-byte JSONL =="
shard_args=(run --synth --flows 500 --intervals 12 --interval-secs 20 --prefixes 2000)
"$eleph" "${shard_args[@]}" --out "$tmpdir/shards0.jsonl" 2> /dev/null
"$eleph" "${shard_args[@]}" --shards 1 --out "$tmpdir/shards1.jsonl" 2> "$tmpdir/shards1.summary"
"$eleph" "${shard_args[@]}" --shards 4 --out "$tmpdir/shards4.jsonl" 2> "$tmpdir/shards4.summary"
cmp "$tmpdir/shards0.jsonl" "$tmpdir/shards1.jsonl" \
    || { echo "shard equivalence: --shards 1 diverges from serial" >&2; exit 1; }
cmp "$tmpdir/shards0.jsonl" "$tmpdir/shards4.jsonl" \
    || { echo "shard equivalence: --shards 4 diverges from serial" >&2; exit 1; }
grep -q '"shards":4' "$tmpdir/shards4.summary" \
    || { echo "shard equivalence: summary does not record the shard count" >&2; exit 1; }

echo "== shard equivalence: proptests single-threaded (RUST_TEST_THREADS=1) =="
RUST_TEST_THREADS=1 cargo test -q -p eleph-tests --test sharded_equivalence

echo "== sketch tier: per-backend determinism, byte-for-byte JSONL =="
sketch_args=(run --synth --flows 500 --intervals 12 --interval-secs 20 --prefixes 2000)
for backend in exact spacesaving cmrow bloom; do
    "$eleph" "${sketch_args[@]}" --state "$backend" \
        --out "$tmpdir/state_${backend}_a.jsonl" 2> /dev/null
    "$eleph" "${sketch_args[@]}" --state "$backend" \
        --out "$tmpdir/state_${backend}_b.jsonl" 2> "$tmpdir/state_${backend}.summary"
    cmp "$tmpdir/state_${backend}_a.jsonl" "$tmpdir/state_${backend}_b.jsonl" \
        || { echo "sketch tier: --state $backend is not deterministic" >&2; exit 1; }
    grep -q "\"state\":\"$backend\"" "$tmpdir/state_${backend}.summary" \
        || { echo "sketch tier: summary does not record --state $backend" >&2; exit 1; }
done
cmp "$tmpdir/state_exact_a.jsonl" "$tmpdir/shards0.jsonl" 2> /dev/null \
    || { echo "sketch tier: --state exact diverges from the default path" >&2; exit 1; }

echo "== sketch tier: exact-oracle accuracy harness (recall >= 0.95 at default budget) =="
"$eleph" sketch > "$tmpdir/sketch.table" 2> "$tmpdir/sketch.summary"
grep eleph_sketch "$tmpdir/sketch.summary" | tr ',{' '\n\n' \
    | awk -F: '/^"min_recall"/ {
          found = 1
          if ($2 + 0 < 0.95) { print "sketch tier: min_recall " $2 " < 0.95" > "/dev/stderr"; exit 1 }
      }
      END { if (!found) { print "sketch tier: no min_recall in summary" > "/dev/stderr"; exit 1 } }'
grep -q '"exact_bit_identical":true' "$tmpdir/sketch.summary" \
    || { echo "sketch tier: exact pin missing from harness summary" >&2; exit 1; }

echo "== legacy shims byte-identical to eleph subcommands (fig1a, table1) =="
cargo run -q --release -p eleph-report --bin eleph -- fig1a --scale 0.01 --seed 5 > "$tmpdir/eleph_fig1a"
cargo run -q --release -p eleph-report --bin fig1a -- --scale 0.01 --seed 5 > "$tmpdir/shim_fig1a"
diff "$tmpdir/eleph_fig1a" "$tmpdir/shim_fig1a"
cargo run -q --release -p eleph-report --bin eleph -- table1 --scale 0.01 --seed 5 > "$tmpdir/eleph_table1"
cargo run -q --release -p eleph-report --bin table1 -- --scale 0.01 --seed 5 > "$tmpdir/shim_table1"
diff "$tmpdir/eleph_table1" "$tmpdir/shim_table1"

echo "ci.sh: all gates green"
