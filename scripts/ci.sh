#!/usr/bin/env bash
# The repository's verification gate, in the order a reviewer should
# trust it:
#
#   1. tier-1: release build + full test suite (see ROADMAP.md);
#   2. the `prefetch` feature: build and test the feature-gated software
#      prefetch paths (net batch lookup, packet scan-ahead, and their
#      dependents) so the gated code cannot rot unbuilt;
#   3. bench compilation: the criterion harnesses must at least build.
#
# Usage: scripts/ci.sh
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== tier-1: release build =="
cargo build --release

echo "== tier-1: tests =="
cargo test -q

echo "== feature gate: prefetch build =="
cargo build -p eleph-flow -p eleph-bench --features prefetch

echo "== feature gate: prefetch tests (net + packet + flow) =="
cargo test -q -p eleph-net -p eleph-packet -p eleph-flow --features prefetch

echo "== benches compile =="
cargo build -p eleph-bench --benches --release

echo "ci.sh: all gates green"
