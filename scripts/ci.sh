#!/usr/bin/env bash
# The repository's verification gate, in the order a reviewer should
# trust it:
#
#   1. tier-1: release build + full test suite (see ROADMAP.md);
#   2. classifier equivalence: the dense columnar engine against the
#      legacy-replica oracle, classify_many against independent
#      classify runs, and online against batch — the properties that
#      license every classifier optimisation (already part of tier-1;
#      re-run by name so a failure is attributed immediately);
#   3. the `prefetch` feature: build and test the feature-gated software
#      prefetch paths (net batch lookup, packet scan-ahead, and their
#      dependents) so the gated code cannot rot unbuilt;
#   4. bench compilation: the criterion harnesses must at least build.
#
# Usage: scripts/ci.sh
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== tier-1: release build =="
cargo build --release

echo "== tier-1: tests =="
cargo test -q

echo "== classifier equivalence: dense vs legacy, classify_many vs classify, online vs batch =="
cargo test -q -p eleph-core --test props -- \
    dense_classify_matches_legacy_reference \
    classify_many_equals_independent_classifies \
    exact_retire_keeps_epsilon_scale_microflow \
    adversarial_magnitudes_leave_no_stale_state
cargo test -q -p eleph-core --lib online::

echo "== feature gate: prefetch build =="
cargo build -p eleph-flow -p eleph-bench --features prefetch

echo "== feature gate: prefetch tests (net + packet + flow) =="
cargo test -q -p eleph-net -p eleph-packet -p eleph-flow --features prefetch

echo "== benches compile =="
cargo build -p eleph-bench --benches --release

echo "ci.sh: all gates green"
