//! Cross-crate integration tests live in `tests/`; see that directory.
