//! PR 9's load-bearing properties for the sketch state-backend tier:
//!
//! * `--state exact` is **byte-identical** to the pre-PR pipeline —
//!   same outcomes by `to_bits`, same JSONL, same checkpoint bytes —
//!   at every shard count (the explicit backend selection is the same
//!   code path as the default, not a parallel implementation);
//! * Space-Saving's classical error bound (any key's count error is at
//!   most `total / k`) holds on arbitrary streams, pinned by proptest;
//! * sketch state checkpoints (format v3) round-trip: a run killed
//!   mid-stream and resumed from its snapshot produces the identical
//!   outcome stream and JSONL as the uninterrupted run, per backend;
//! * resuming a sketch checkpoint under a different backend or a
//!   different budget is rejected loudly, never silently misread;
//! * with a generous budget the sketches agree with the exact oracle
//!   (Space-Saving bit-identically; the hashed sketches at recall 1).

use std::io::Write;
use std::sync::{Arc, Mutex};

use eleph_bgp::synth::{self, SynthConfig};
use eleph_bgp::BgpTable;
use eleph_core::{
    ConstantLoadDetector, Scheme, SpaceSaving, StateBackend, StateBackendConfig,
};
use eleph_packet::PacketMeta;
use eleph_pipeline::{
    Checkpoint, CollectedInterval, Collector, JsonlSink, MetaSource, PacketSource,
    PipelineBuilder, PipelineReport, TraceSource,
};
use eleph_trace::{RateTrace, WorkloadConfig};
use proptest::prelude::*;

const BETA: f64 = 0.8;
const GAMMA: f64 = 0.9;

/// Shard counts the exact-backend identity is pinned at (0 = serial).
const SHARD_COUNTS: [usize; 3] = [0, 1, 4];

/// A `Write` handle the test can read back after the pipeline consumed
/// the sink by value.
#[derive(Clone, Default)]
struct SharedBuf(Arc<Mutex<Vec<u8>>>);

impl SharedBuf {
    fn take(&self) -> Vec<u8> {
        std::mem::take(&mut self.0.lock().unwrap())
    }
}

impl Write for SharedBuf {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        self.0.lock().unwrap().extend_from_slice(buf);
        Ok(buf.len())
    }
    fn flush(&mut self) -> std::io::Result<()> {
        Ok(())
    }
}

/// The same small synthetic stream the sibling suites use, as parsed
/// metadata so runs can be split at arbitrary packet positions.
fn small_stream(seed: u64) -> (BgpTable, Vec<PacketMeta>, u64, u64, usize) {
    let table = synth::generate(&SynthConfig {
        n_prefixes: 2_000,
        ..SynthConfig::default()
    });
    let config = WorkloadConfig {
        n_flows: 120,
        n_intervals: 6,
        interval_secs: 20,
        link: eleph_trace::LinkSpec {
            name: "sketch link".to_string(),
            capacity_bps: 3_000_000.0,
            target_peak_util: 0.5,
        },
        ..WorkloadConfig::small_test(seed)
    };
    let trace = RateTrace::generate(&config, &table);
    let mut source = TraceSource::new(&trace);
    let mut metas = Vec::new();
    while source.next_chunk(&mut metas).expect("synthetic source") > 0 {}
    (table, metas, config.interval_secs, config.start_unix, config.n_intervals)
}

struct RunOutput {
    outcomes: Vec<CollectedInterval>,
    report: PipelineReport,
    jsonl: Vec<u8>,
    /// Checkpoint bytes written right after the run consumed
    /// `checkpoint_after` packets (None = no mid-stream checkpoint).
    mid_checkpoint: Option<Vec<u8>>,
}

/// Run a pipeline over the meta stream under one state backend,
/// optionally snapshotting a checkpoint mid-stream.
fn run_with(
    table: &BgpTable,
    metas: &[PacketMeta],
    t: u64,
    start: u64,
    n: usize,
    shards: usize,
    state: StateBackendConfig,
    checkpoint_after: Option<usize>,
) -> RunOutput {
    let collector = Collector::new();
    let jsonl = SharedBuf::default();
    let mut pipeline = PipelineBuilder::new()
        .table(table)
        .interval_secs(t)
        .start_unix(start)
        .n_intervals(n)
        .detector(ConstantLoadDetector::new(BETA))
        .gamma(GAMMA)
        .scheme(Scheme::LatentHeat { window: 12 })
        .shards(shards)
        .state_backend(state)
        .sink(collector.sink())
        .sink(JsonlSink::new(jsonl.clone()))
        .build();
    let mid_checkpoint = match checkpoint_after {
        Some(cut) => {
            pipeline.observe_chunk(&metas[..cut]).expect("first half");
            let mut bytes = Vec::new();
            pipeline.checkpoint(&mut bytes).expect("checkpoint");
            pipeline.observe_chunk(&metas[cut..]).expect("second half");
            Some(bytes)
        }
        None => {
            pipeline
                .run(MetaSource::new(metas.to_vec()))
                .expect("in-memory run");
            None
        }
    };
    let report = pipeline.finish().expect("finish");
    RunOutput {
        outcomes: collector.take(),
        report,
        jsonl: jsonl.take(),
        mid_checkpoint,
    }
}

/// Bit-level outcome identity between two runs.
fn assert_outcomes_identical(got: &RunOutput, want: &RunOutput, context: &str) {
    assert_eq!(got.outcomes.len(), want.outcomes.len(), "{context}: interval count");
    for (g, w) in got.outcomes.iter().zip(&want.outcomes) {
        let n = w.outcome.interval;
        assert_eq!(g.outcome.interval, n, "{context}: interval index");
        assert_eq!(g.outcome.elephants, w.outcome.elephants, "{context}: elephants at {n}");
        assert_eq!(
            g.outcome.threshold.to_bits(),
            w.outcome.threshold.to_bits(),
            "{context}: threshold at {n}"
        );
        assert_eq!(
            g.outcome.elephant_load.to_bits(),
            w.outcome.elephant_load.to_bits(),
            "{context}: elephant load at {n}"
        );
        assert_eq!(
            g.outcome.total_load.to_bits(),
            w.outcome.total_load.to_bits(),
            "{context}: total load at {n}"
        );
    }
    assert_eq!(got.jsonl, want.jsonl, "{context}: JSONL bytes");
    assert_eq!(got.report.keys, want.report.keys, "{context}: key table");
    assert_eq!(
        got.report.stats.attributed_bytes, want.report.stats.attributed_bytes,
        "{context}: attributed bytes"
    );
}

// ---------------------------------------------------------------------
// --state exact ≡ the pre-PR pipeline, at every shard count
// ---------------------------------------------------------------------

#[test]
fn exact_backend_is_byte_identical_to_default_at_every_shard_count() {
    let (table, metas, t, start, n) = small_stream(11);
    let cut = metas.len() / 2;
    for shards in SHARD_COUNTS {
        // The pre-PR path: no state_backend call at all.
        let collector = Collector::new();
        let jsonl = SharedBuf::default();
        let mut baseline = PipelineBuilder::new()
            .table(&table)
            .interval_secs(t)
            .start_unix(start)
            .n_intervals(n)
            .detector(ConstantLoadDetector::new(BETA))
            .gamma(GAMMA)
            .scheme(Scheme::LatentHeat { window: 12 })
            .shards(shards)
            .sink(collector.sink())
            .sink(JsonlSink::new(jsonl.clone()))
            .build();
        baseline.observe_chunk(&metas[..cut]).expect("first half");
        let mut baseline_ckpt = Vec::new();
        baseline.checkpoint(&mut baseline_ckpt).expect("checkpoint");
        baseline.observe_chunk(&metas[cut..]).expect("second half");
        let report = baseline.finish().expect("finish");
        let want = RunOutput {
            outcomes: collector.take(),
            report,
            jsonl: jsonl.take(),
            mid_checkpoint: Some(baseline_ckpt),
        };

        let got = run_with(
            &table,
            &metas,
            t,
            start,
            n,
            shards,
            StateBackendConfig::Exact,
            Some(cut),
        );
        let context = format!("--state exact vs default, shards={shards}");
        assert_outcomes_identical(&got, &want, &context);
        assert_eq!(
            got.mid_checkpoint, want.mid_checkpoint,
            "{context}: checkpoint bytes"
        );
        // An exact checkpoint stays on format v2: byte-compatible with
        // every pre-PR snapshot.
        let bytes = got.mid_checkpoint.as_ref().expect("mid checkpoint");
        assert_eq!(&bytes[8..12], &2u32.to_le_bytes(), "{context}: version");
        assert_eq!(got.report.state_backend, "exact", "{context}: backend label");
        assert_eq!(
            got.report.distinct_keys,
            got.report.keys.len(),
            "{context}: distinct keys"
        );
    }
}

// ---------------------------------------------------------------------
// Space-Saving error bound (proptest)
// ---------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The stream-summary guarantee: with k counters, any reported
    /// count deviates from the key's true count by at most total/k —
    /// on arbitrary streams, not just skewed ones.
    #[test]
    fn space_saving_error_is_bounded_by_total_over_k(
        stream in prop::collection::vec((0u32..512, 1u64..50_000), 1..2_000),
        budget_entries in 8usize..128,
    ) {
        let mut ss = SpaceSaving::with_budget(budget_entries * 64);
        let k = ss.capacity();
        let mut truth = std::collections::HashMap::new();
        let mut total = 0u64;
        for &(key, bytes) in &stream {
            ss.record(key, bytes);
            *truth.entry(key).or_insert(0u64) += bytes;
            total += bytes;
        }
        let mut out = Vec::new();
        ss.seal_into(1.0, &mut out);
        for (key, rate) in out {
            let est = (f64::from(rate) / 8.0).round() as u64;
            let exact = truth.get(&key).copied().unwrap_or(0);
            let err = est.abs_diff(exact);
            prop_assert!(
                u128::from(err) * k as u128 <= u128::from(total),
                "key {key}: est {est} vs exact {exact} (err {err}, total {total}, k {k})"
            );
        }
    }
}

// ---------------------------------------------------------------------
// Sketch checkpoints: v3 round trip, kind/budget rejection
// ---------------------------------------------------------------------

#[test]
fn sketch_checkpoint_resume_is_bit_identical_mid_stream() {
    let (table, metas, t, start, n) = small_stream(23);
    // Cut mid-interval so the checkpoint carries live sketch state.
    let cut = metas.len() / 3;
    for state in [
        StateBackendConfig::SpaceSaving { budget_bytes: 64 * 1024 },
        StateBackendConfig::CountMinRow { budget_bytes: 64 * 1024 },
        StateBackendConfig::AdaptiveBloom { budget_bytes: 64 * 1024 },
    ] {
        let kind = state.kind();
        let reference = run_with(&table, &metas, t, start, n, 0, state, None);
        let interrupted = run_with(&table, &metas, t, start, n, 0, state, Some(cut));
        assert_outcomes_identical(
            &interrupted,
            &reference,
            &format!("{kind}: checkpointed run vs uninterrupted"),
        );

        let bytes = interrupted.mid_checkpoint.expect("mid checkpoint");
        // Sketch snapshots use format v3.
        assert_eq!(&bytes[8..12], &3u32.to_le_bytes(), "{kind}: version");
        let ckpt = Checkpoint::read_from(&mut &bytes[..]).expect("well-formed checkpoint");

        // Resume and replay the tail: the combined outcome stream must
        // equal the uninterrupted run's, bit for bit.
        let collector = Collector::new();
        let jsonl = SharedBuf::default();
        let mut resumed = PipelineBuilder::new()
            .table(&table)
            .interval_secs(t)
            .start_unix(start)
            .n_intervals(n)
            .detector(ConstantLoadDetector::new(BETA))
            .gamma(GAMMA)
            .scheme(Scheme::LatentHeat { window: 12 })
            .state_backend(state)
            .sink(collector.sink())
            .sink(JsonlSink::new(jsonl.clone()))
            .resume(&ckpt)
            .unwrap_or_else(|e| panic!("{kind}: resume failed: {e}"));
        resumed.observe_chunk(&metas[cut..]).expect("tail");
        let report = resumed.finish().expect("resumed finish");
        assert_eq!(report.state_backend, kind, "{kind}: backend label");

        let sealed_before = ckpt.intervals_sealed() as usize;
        let tail = collector.take();
        assert_eq!(
            tail.len(),
            reference.outcomes.len() - sealed_before,
            "{kind}: resumed interval count"
        );
        for (g, w) in tail.iter().zip(&reference.outcomes[sealed_before..]) {
            assert_eq!(g.outcome.elephants, w.outcome.elephants, "{kind}: resumed elephants");
            assert_eq!(
                g.outcome.threshold.to_bits(),
                w.outcome.threshold.to_bits(),
                "{kind}: resumed threshold"
            );
        }
    }
}

#[test]
fn sketch_checkpoint_rejects_backend_and_budget_mismatch() {
    let (table, metas, t, start, n) = small_stream(31);
    let cut = metas.len() / 3;
    let state = StateBackendConfig::SpaceSaving { budget_bytes: 64 * 1024 };
    let run = run_with(&table, &metas, t, start, n, 0, state, Some(cut));
    let bytes = run.mid_checkpoint.expect("mid checkpoint");
    let ckpt = Checkpoint::read_from(&mut &bytes[..]).expect("well-formed checkpoint");

    let attempt = |state: StateBackendConfig| {
        PipelineBuilder::new()
            .table(&table)
            .interval_secs(t)
            .start_unix(start)
            .n_intervals(n)
            .detector(ConstantLoadDetector::new(BETA))
            .gamma(GAMMA)
            .scheme(Scheme::LatentHeat { window: 12 })
            .state_backend(state)
            .resume(&ckpt)
            .map(|_| ())
    };

    // Wrong backend kind: a spacesaving snapshot cannot seed an exact
    // row or another sketch's geometry.
    for wrong in [
        StateBackendConfig::Exact,
        StateBackendConfig::CountMinRow { budget_bytes: 64 * 1024 },
        StateBackendConfig::AdaptiveBloom { budget_bytes: 64 * 1024 },
    ] {
        match attempt(wrong) {
            Err(eleph_pipeline::CheckpointError::Mismatch(msg)) => {
                assert!(msg.contains("state backend"), "mismatch message: {msg}");
            }
            other => panic!("resume with {} must fail as Mismatch, got {other:?}", wrong.kind()),
        }
    }
    // Same kind, different budget: geometry differs, payload refuses.
    match attempt(StateBackendConfig::SpaceSaving { budget_bytes: 8 * 1024 }) {
        Err(eleph_pipeline::CheckpointError::State(msg)) => {
            assert!(msg.contains("capacity") || msg.contains("budget"), "state message: {msg}");
        }
        other => panic!("budget-mismatch resume must fail as State, got {other:?}"),
    }
}

// ---------------------------------------------------------------------
// Generous budgets: sketches agree with the exact oracle
// ---------------------------------------------------------------------

#[test]
fn generous_budget_space_saving_is_bit_identical_to_exact() {
    let (table, metas, t, start, n) = small_stream(47);
    let exact = run_with(&table, &metas, t, start, n, 0, StateBackendConfig::Exact, None);
    // Capacity (budget / 64) far exceeds the distinct-key count, so no
    // counter is ever evicted and every count is exact.
    let ss = run_with(
        &table,
        &metas,
        t,
        start,
        n,
        0,
        StateBackendConfig::SpaceSaving { budget_bytes: 4 * 1024 * 1024 },
        None,
    );
    assert!(
        exact.report.keys.len() * 64 < 4 * 1024 * 1024,
        "scenario outgrew the generous budget"
    );
    assert_outcomes_identical(&ss, &exact, "spacesaving@4MiB vs exact");
    assert_eq!(ss.report.state_bytes, 4 * 1024 * 1024, "sketch budget is the footprint");
}

#[test]
fn generous_budget_hashed_sketches_reach_full_recall() {
    let (table, metas, t, start, n) = small_stream(53);
    let exact = run_with(&table, &metas, t, start, n, 0, StateBackendConfig::Exact, None);
    for state in [
        StateBackendConfig::CountMinRow { budget_bytes: 4 * 1024 * 1024 },
        StateBackendConfig::AdaptiveBloom { budget_bytes: 4 * 1024 * 1024 },
    ] {
        let approx = run_with(&table, &metas, t, start, n, 0, state, None);
        let mut acc = eleph_stats::SetAccuracy::new();
        for (g, w) in approx.outcomes.iter().zip(&exact.outcomes) {
            acc.observe(&w.outcome.elephants, &g.outcome.elephants, |_| 1.0);
        }
        assert!(
            acc.oracle_total() > 0,
            "{}: the exact run must find elephants for recall to mean anything",
            state.kind()
        );
        assert_eq!(
            acc.recall(),
            1.0,
            "{}: at a generous budget every exact elephant must be found",
            state.kind()
        );
    }
}

// ---------------------------------------------------------------------
// Sketches are serial: the shard split has no row to partition
// ---------------------------------------------------------------------

#[test]
#[should_panic(expected = "incompatible with shards")]
fn sketch_backend_with_shards_panics() {
    let table = synth::generate(&SynthConfig {
        n_prefixes: 200,
        ..SynthConfig::default()
    });
    let _ = PipelineBuilder::new()
        .table(&table)
        .interval_secs(20)
        .detector(ConstantLoadDetector::new(BETA))
        .shards(2)
        .state_backend(StateBackendConfig::SpaceSaving { budget_bytes: 4096 })
        .build();
}
