//! PR 7's load-bearing property: routing churn applied mid-stream
//! re-attributes traffic without rewriting history. A withdrawn prefix's
//! key stops accumulating and retires naturally through the latent-heat
//! window; the re-announced prefix gets a *fresh* RouteId and therefore
//! a fresh KeyId. And the whole churn-under-stream path is a
//! deterministic function of the offered packet stream and the update
//! schedule: two identical runs produce byte-identical JSONL.

use std::io::Write;
use std::net::Ipv4Addr;
use std::sync::{Arc, Mutex};

use eleph_bgp::synth::{self, SynthConfig};
use eleph_bgp::{BgpTable, LiveBgpTable, Origin, PeerClass, RouteEntry, RouteUpdate, UpdateBatch};
use eleph_core::{ConstantLoadDetector, Scheme};
use eleph_packet::{IpProtocol, PacketMeta};
use eleph_pipeline::{Collector, JsonlSink, MetaSource, PipelineBuilder, PipelineReport};
use eleph_trace::{generate_churn, ChurnConfig, ChurnScenario};

/// A `Write` handle the test can read back after the pipeline consumed
/// the sink (the pipeline owns its sinks by value).
#[derive(Clone, Default)]
struct SharedBuf(Arc<Mutex<Vec<u8>>>);

impl SharedBuf {
    fn take(&self) -> Vec<u8> {
        std::mem::take(&mut self.0.lock().unwrap())
    }
}

impl Write for SharedBuf {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        self.0.lock().unwrap().extend_from_slice(buf);
        Ok(buf.len())
    }
    fn flush(&mut self) -> std::io::Result<()> {
        Ok(())
    }
}

fn entry(prefix: &str, hop: [u8; 4], asn: u32) -> RouteEntry {
    RouteEntry {
        prefix: prefix.parse().unwrap(),
        next_hop: Ipv4Addr::from(hop),
        as_path: vec![asn],
        origin: Origin::Igp,
        peer_class: PeerClass::Tier1,
    }
}

fn meta(dst: [u8; 4], ts_s: u64, len: u32) -> PacketMeta {
    PacketMeta {
        ts_ns: ts_s * 1_000_000_000,
        src: Ipv4Addr::new(198, 18, 0, 1),
        dst: Ipv4Addr::from(dst),
        proto: IpProtocol::Tcp,
        src_port: 1,
        dst_port: 2,
        wire_len: len,
    }
}

/// Hand-built churn scenario pinning the retirement semantics: a heavy
/// /16 is withdrawn and immediately re-announced at the start of
/// interval 3 of 6. Its traffic continues uninterrupted, but from the
/// churn on it attributes to a fresh key. The old key's window sum
/// drains over the latent-heat window (`window = 2`): it may linger as
/// an elephant briefly, and is provably gone once the window has
/// rolled past its last pre-churn interval. History is never rewritten
/// — pre-churn intervals keep the old key.
#[test]
fn withdrawn_key_retires_through_the_latent_heat_window() {
    let table = BgpTable::from_entries(vec![
        entry("10.0.0.0/8", [192, 0, 2, 1], 1),
        entry("10.1.0.0/16", [192, 0, 2, 2], 2),
        entry("172.16.0.0/16", [192, 0, 2, 3], 4),
    ]);
    let live = LiveBgpTable::from_table(&table);
    let sixteen = "10.1.0.0/16".parse().unwrap();
    let schedule = vec![UpdateBatch {
        at_unix: 1030,
        updates: vec![
            RouteUpdate::Withdraw(sixteen),
            RouteUpdate::Announce(entry("10.1.0.0/16", [192, 0, 2, 9], 3)),
        ],
    }];
    // Steady traffic. The /16 is heavy enough that a single interval's
    // bytes exceed the whole latent-heat window's threshold sum (the
    // constant-load cut lands on the mid-weight 172.16/16, so the
    // per-interval threshold is its rate): exactly the regime where a
    // withdrawn key visibly lingers one interval before retiring.
    let mut metas = Vec::new();
    for i in 0..6u64 {
        metas.push(meta([10, 1, 0, 1], 1000 + 10 * i + 1, 1500));
        metas.push(meta([172, 16, 0, 1], 1000 + 10 * i + 2, 500));
        metas.push(meta([10, 2, 0, 1], 1000 + 10 * i + 3, 100));
    }

    let collector = Collector::new();
    let mut pipeline = PipelineBuilder::new()
        .live(&live)
        .interval_secs(10)
        .start_unix(1000)
        .n_intervals(6)
        .detector(ConstantLoadDetector::new(0.8))
        .gamma(0.9)
        .scheme(Scheme::LatentHeat { window: 2 })
        .route_updates(schedule)
        .sink(collector.sink())
        .build();
    pipeline.run(MetaSource::new(metas)).expect("run");
    let report = pipeline.finish().expect("finish");

    // The prefix appears twice in the key table: old id retired, fresh
    // id (and key) minted at re-announce.
    assert_eq!(report.generation, 1);
    assert_eq!(report.route_updates_applied, 1);
    assert_eq!(
        report.keys,
        vec![
            sixteen,
            "172.16.0.0/16".parse().unwrap(),
            "10.0.0.0/8".parse().unwrap(),
            sixteen
        ],
        "same prefix under two distinct keys"
    );
    assert!(report.stats.is_conserved());

    let outcomes = collector.take();
    assert_eq!(outcomes.len(), 6);
    let elephants: Vec<Vec<u32>> =
        outcomes.iter().map(|o| o.outcome.elephants.clone()).collect();
    // Pre-churn: the old key (0) is the elephant; history stays that
    // way — re-attribution never rewrites sealed intervals.
    assert_eq!(&elephants[..3], &[vec![0], vec![0], vec![0]]);
    // From the churn interval on, the fresh key (3) is the elephant.
    for (i, e) in elephants.iter().enumerate().skip(3) {
        assert!(e.contains(&3), "fresh key classified from interval {i}: {e:?}");
    }
    // Latent heat: the old key lingers through the churn interval (its
    // window still holds interval 2's bytes), then retires for good
    // once the window has rolled past its last active interval.
    assert!(
        elephants[3].contains(&0),
        "old key lingers one interval via latent heat: {elephants:?}"
    );
    assert!(
        !elephants[4].contains(&0) && !elephants[5].contains(&0),
        "old key must retire through the window: {elephants:?}"
    );
    // Regression pin: the exact per-interval elephant sets.
    assert_eq!(
        elephants,
        vec![vec![0], vec![0], vec![0], vec![0, 3], vec![3], vec![3]],
        "latent-heat retirement trajectory changed"
    );
}

/// Full-stack determinism: a synthetic RIB, a generated churn schedule
/// (withdraw/re-announce storm + damped flap), and a packet stream
/// offered in *different chunkings* must produce byte-identical JSONL
/// and identical reports. The update replay point is a function of
/// packet timestamps, never of source chunk boundaries.
#[test]
fn churn_replay_is_deterministic_across_chunkings() {
    let table = synth::generate(&SynthConfig {
        n_prefixes: 500,
        ..SynthConfig::default()
    });
    let schedule = generate_churn(
        &table,
        &ChurnConfig {
            seed: 11,
            scenarios: vec![
                ChurnScenario::WithdrawReannounceStorm {
                    at_unix: 1020,
                    count: 40,
                    hold_secs: 15,
                },
                ChurnScenario::Flap {
                    start_unix: 1035,
                    count: 6,
                    period_secs: 10,
                    flaps: 2,
                    damped: true,
                },
            ],
        },
    );
    assert!(!schedule.is_empty());

    // Traffic to every 8th prefix, spread over 8 intervals of 10s.
    let dsts: Vec<Ipv4Addr> =
        table.iter().step_by(8).map(|e| e.prefix.network()).collect();
    let mut metas = Vec::new();
    for i in 0..8u64 {
        for (j, dst) in dsts.iter().enumerate() {
            let mut m = meta([0, 0, 0, 0], 0, 200 + (j as u32 % 7) * 100);
            m.dst = *dst;
            m.ts_ns = (1000 + 10 * i) * 1_000_000_000 + (j as u64) * 137_000_000;
            metas.push(m);
        }
    }

    let run = |chunk: usize| -> (PipelineReport, Vec<u8>) {
        let live = LiveBgpTable::from_table(&table);
        let buf = SharedBuf::default();
        let mut pipeline = PipelineBuilder::new()
            .live(&live)
            .interval_secs(10)
            .start_unix(1000)
            .n_intervals(8)
            .detector(ConstantLoadDetector::new(0.8))
            .gamma(0.9)
            .scheme(Scheme::LatentHeat { window: 2 })
            .route_updates(schedule.clone())
            .sink(JsonlSink::new(buf.clone()))
            .build();
        for piece in metas.chunks(chunk) {
            pipeline.observe_chunk(piece).expect("observe");
        }
        let report = pipeline.finish().expect("finish");
        (report, buf.take())
    };

    let (report_a, jsonl_a) = run(metas.len()); // one giant chunk
    let (report_b, jsonl_b) = run(3); // tiny chunks crossing update times
    assert!(!jsonl_a.is_empty());
    assert_eq!(jsonl_a, jsonl_b, "JSONL must be byte-identical across chunkings");
    assert_eq!(report_a.keys, report_b.keys);
    assert_eq!(report_a.stats, report_b.stats);
    assert_eq!(report_a.generation, report_b.generation);
    assert_eq!(report_a.route_updates_applied, report_b.route_updates_applied);
    // Every batch due at or before the last offered packet was applied.
    let last_ts = metas.last().unwrap().ts_ns;
    let due = schedule
        .iter()
        .filter(|b| b.at_unix * 1_000_000_000 <= last_ts)
        .count() as u64;
    assert_eq!(report_a.route_updates_applied, due);
}
