//! Fault-injection robustness: the measurement pipeline must survive
//! arbitrary packet damage without panicking, and account for every
//! packet it was offered.

use eleph_bgp::synth::{self, SynthConfig};
use eleph_flow::Aggregator;
use eleph_packet::pcap::PcapReader;
use eleph_packet::LinkType;
use eleph_trace::{
    FaultAction, FaultConfig, FaultInjector, PacketSynth, RateTrace, WorkloadConfig,
};
use proptest::prelude::*;

fn scenario() -> (eleph_bgp::BgpTable, RateTrace) {
    let table = synth::generate(&SynthConfig {
        n_prefixes: 1_500,
        ..SynthConfig::default()
    });
    let config = WorkloadConfig {
        n_flows: 60,
        n_intervals: 3,
        interval_secs: 10,
        link: eleph_trace::LinkSpec {
            name: "robustness link".to_string(),
            capacity_bps: 1_500_000.0,
            target_peak_util: 0.5,
        },
        ..WorkloadConfig::small_test(55)
    };
    let trace = RateTrace::generate(&config, &table);
    (table, trace)
}

fn run_with_faults(fault: FaultConfig) -> (eleph_flow::AggregatorStats, eleph_trace::FaultStats) {
    let (table, trace) = scenario();
    let synth = PacketSynth::new(&trace);
    let mut pcap = Vec::new();
    synth.write_pcap(0..trace.n_intervals(), &mut pcap).expect("synthesis");

    let mut injector = FaultInjector::new(fault);
    let mut reader = PcapReader::new(&pcap[..]).expect("header");
    let link = LinkType::from_code(reader.header().linktype).expect("linktype");
    let mut agg = Aggregator::new(
        &table,
        trace.config.interval_secs,
        trace.config.start_unix,
        trace.config.n_intervals,
    );
    while let Some(record) = reader.next_record().expect("records") {
        let mut data = record.data.to_vec();
        if injector.apply(&mut data) == FaultAction::Dropped {
            continue;
        }
        agg.observe_raw(link, &data, record.ts_ns);
    }
    (agg.stats(), injector.stats())
}

#[test]
fn clean_stream_fully_attributed() {
    let (stats, _) = run_with_faults(FaultConfig::none());
    assert!(stats.is_conserved());
    assert_eq!(stats.malformed, 0);
    assert_eq!(stats.attributed, stats.offered);
}

#[test]
fn heavy_corruption_is_counted_not_fatal() {
    let (stats, fstats) = run_with_faults(FaultConfig {
        drop_prob: 0.1,
        corrupt_prob: 0.5,
        truncate_prob: 0.2,
        seed: 1,
    });
    assert!(stats.is_conserved());
    assert!(stats.malformed > 0, "corruption must surface as malformed");
    // Offered = synthesized − dropped.
    assert_eq!(stats.offered, fstats.seen - fstats.dropped);
    // Despite the damage, the majority of surviving traffic still lands.
    assert!(stats.attributed > stats.offered / 2);
}

#[test]
fn header_corruption_never_misattributes() {
    // Corrupt only the first 20 bytes (the IPv4 header): every corrupted
    // packet must fail the checksum, not silently bin under a wrong
    // prefix. We verify by comparing attribution against ground truth.
    let (_table, trace) = scenario();
    let synth = PacketSynth::new(&trace);
    let mut pcap = Vec::new();
    synth.write_pcap(0..1, &mut pcap).expect("synthesis");

    let truth: std::collections::HashSet<std::net::Ipv4Addr> = trace
        .population
        .iter()
        .filter_map(|(_, f)| f.dst_addr)
        .collect();

    let mut reader = PcapReader::new(&pcap[..]).expect("header");
    let link = LinkType::from_code(reader.header().linktype).expect("linktype");
    let mut flipped = 0usize;
    let mut survived_parse = 0usize;
    let mut i = 0usize;
    while let Some(record) = reader.next_record().expect("records") {
        let mut data = record.data.to_vec();
        // Flip one bit of the destination address on every third packet.
        if i % 3 == 0 && data.len() >= 20 {
            data[16 + (i % 4)] ^= 1 << (i % 8);
            flipped += 1;
            if let Ok(meta) = eleph_packet::parse_meta(link, &data, record.ts_ns) {
                survived_parse += 1;
                // If it parses despite the checksum, attribution is wrong.
                assert!(
                    truth.contains(&meta.dst),
                    "misattributed to {} after header corruption",
                    meta.dst
                );
            }
        }
        i += 1;
    }
    assert!(flipped > 0);
    assert_eq!(
        survived_parse, 0,
        "IPv4 header checksum must catch single-bit address corruption"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    #[test]
    fn accounting_conserved_under_arbitrary_fault_mix(
        drop_p in 0.0..0.5f64,
        corrupt_p in 0.0..0.8f64,
        truncate_p in 0.0..0.5f64,
        seed in any::<u64>(),
    ) {
        let (stats, fstats) = run_with_faults(FaultConfig {
            drop_prob: drop_p,
            corrupt_prob: corrupt_p,
            truncate_prob: truncate_p,
            seed,
        });
        prop_assert!(stats.is_conserved());
        prop_assert_eq!(stats.offered, fstats.seen - fstats.dropped);
    }
}
