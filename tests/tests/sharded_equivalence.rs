//! PR 8's load-bearing property: the key-partitioned sharded online
//! path is **bit-identical** to the serial path on the same bytes —
//! same thresholds, same elephant sets, same loads (all compared by
//! `to_bits`), same JSONL output byte for byte, same accounting — for
//! every shard count, under every scheme, with routing churn applied
//! mid-stream, and across a kill/resume that changes the shard count.
//! This is what licenses deploying `--shards N` as a pure throughput
//! knob: the measurement is the same measurement.

use std::fs;
use std::io::Write;
use std::net::Ipv4Addr;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use eleph_bgp::synth::{self, SynthConfig};
use eleph_bgp::{BgpTable, LiveBgpTable, RouteUpdate, UpdateBatch};
use eleph_core::{ConstantLoadDetector, Scheme};
use eleph_packet::pcap::PcapWriter;
use eleph_packet::{LinkType, PacketBuilder};
use eleph_pipeline::{
    skip_offered, Checkpoint, Checkpointer, CollectedInterval, Collector, JsonlSink, PcapSource,
    PipelineBuilder, PipelineError, PipelineReport, RotatingJsonlSink, CHECKPOINT_FILE,
};
use eleph_trace::{CrashPoint, CrashSwitch, PacketSynth, RateTrace, WorkloadConfig};
use proptest::prelude::*;

const BETA: f64 = 0.8;
const GAMMA: f64 = 0.9;

/// Every shard count the suite pins against serial: 1 (coordination
/// overhead only), powers of two, and a prime that leaves uneven
/// partitions.
const SHARD_COUNTS: [usize; 4] = [1, 2, 4, 7];

/// A `Write` handle the test can read back after the pipeline consumed
/// the sink (the pipeline owns its sinks by value).
#[derive(Clone, Default)]
struct SharedBuf(Arc<Mutex<Vec<u8>>>);

impl SharedBuf {
    fn take(&self) -> Vec<u8> {
        std::mem::take(&mut self.0.lock().unwrap())
    }
}

impl Write for SharedBuf {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        self.0.lock().unwrap().extend_from_slice(buf);
        Ok(buf.len())
    }
    fn flush(&mut self) -> std::io::Result<()> {
        Ok(())
    }
}

/// A unique scratch directory per invocation (tests run concurrently).
fn scratch(tag: &str) -> PathBuf {
    static SEQ: AtomicU64 = AtomicU64::new(0);
    let dir = std::env::temp_dir().join(format!(
        "eleph-sharded-{tag}-{}-{}",
        std::process::id(),
        SEQ.fetch_add(1, Ordering::Relaxed),
    ));
    let _ = fs::remove_dir_all(&dir);
    fs::create_dir_all(&dir).expect("scratch dir");
    dir
}

/// The same small synthetic capture the sibling suites use: enough
/// traffic for real thresholds, small enough to replay dozens of times.
fn small_capture(seed: u64) -> (BgpTable, Vec<u8>, u64, u64, usize) {
    let table = synth::generate(&SynthConfig {
        n_prefixes: 2_000,
        ..SynthConfig::default()
    });
    let config = WorkloadConfig {
        n_flows: 120,
        n_intervals: 6,
        interval_secs: 20,
        link: eleph_trace::LinkSpec {
            name: "sharded link".to_string(),
            capacity_bps: 3_000_000.0,
            target_peak_util: 0.5,
        },
        ..WorkloadConfig::small_test(seed)
    };
    let trace = RateTrace::generate(&config, &table);
    let mut pcap = Vec::new();
    PacketSynth::new(&trace)
        .write_pcap(0..trace.n_intervals(), &mut pcap)
        .expect("pcap synthesis");
    (
        table,
        pcap,
        config.interval_secs,
        config.start_unix,
        config.n_intervals,
    )
}

/// Run a frozen-table pipeline at `shards` (0 = serial) and return the
/// collected outcomes, final report, and raw JSONL bytes.
fn run_frozen(
    table: &BgpTable,
    pcap: &[u8],
    scheme: Scheme,
    t: u64,
    start: u64,
    n: usize,
    shards: usize,
) -> (Vec<CollectedInterval>, PipelineReport, Vec<u8>) {
    let collector = Collector::new();
    let jsonl = SharedBuf::default();
    let mut pipeline = PipelineBuilder::new()
        .table(table)
        .interval_secs(t)
        .start_unix(start)
        .n_intervals(n)
        .detector(ConstantLoadDetector::new(BETA))
        .gamma(GAMMA)
        .scheme(scheme)
        .shards(shards)
        .sink(collector.sink())
        .sink(JsonlSink::new(jsonl.clone()))
        .build();
    pipeline
        .run(PcapSource::new(pcap).expect("valid pcap"))
        .expect("run");
    let report = pipeline.finish().expect("finish");
    (collector.take(), report, jsonl.take())
}

/// Run a live-table pipeline with a churn schedule at `shards`
/// (0 = serial). Each run gets its own [`LiveBgpTable`] because the
/// pipeline advances the table's generation as it replays the schedule.
fn run_live(
    table: &BgpTable,
    schedule: &[UpdateBatch],
    pcap: &[u8],
    scheme: Scheme,
    t: u64,
    start: u64,
    n: usize,
    shards: usize,
) -> (Vec<CollectedInterval>, PipelineReport, Vec<u8>) {
    let live = LiveBgpTable::from_table(table);
    let collector = Collector::new();
    let jsonl = SharedBuf::default();
    let mut pipeline = PipelineBuilder::new()
        .live(&live)
        .interval_secs(t)
        .start_unix(start)
        .n_intervals(n)
        .detector(ConstantLoadDetector::new(BETA))
        .gamma(GAMMA)
        .scheme(scheme)
        .shards(shards)
        .route_updates(schedule.to_vec())
        .sink(collector.sink())
        .sink(JsonlSink::new(jsonl.clone()))
        .build();
    pipeline
        .run(PcapSource::new(pcap).expect("valid pcap"))
        .expect("live run");
    let report = pipeline.finish().expect("live finish");
    (collector.take(), report, jsonl.take())
}

/// The full bit-identity check between a sharded run and the serial
/// reference: per-interval outcomes by `to_bits`, JSONL byte for byte,
/// and the complete report (stats, key order, generation).
fn assert_sharded_equals_serial(
    got: &(Vec<CollectedInterval>, PipelineReport, Vec<u8>),
    want: &(Vec<CollectedInterval>, PipelineReport, Vec<u8>),
    context: &str,
) {
    let (outcomes, report, jsonl) = got;
    let (ref_outcomes, ref_report, ref_jsonl) = want;
    assert_eq!(outcomes.len(), ref_outcomes.len(), "{context}: interval count");
    for (g, w) in outcomes.iter().zip(ref_outcomes) {
        let n = w.outcome.interval;
        assert_eq!(g.outcome.interval, n, "{context}: interval index");
        assert_eq!(g.outcome.elephants, w.outcome.elephants, "{context}: elephants at {n}");
        assert_eq!(
            g.outcome.threshold.to_bits(),
            w.outcome.threshold.to_bits(),
            "{context}: threshold at {n} ({} vs {})",
            g.outcome.threshold,
            w.outcome.threshold,
        );
        assert_eq!(
            g.outcome.elephant_load.to_bits(),
            w.outcome.elephant_load.to_bits(),
            "{context}: elephant load at {n}"
        );
        assert_eq!(
            g.outcome.total_load.to_bits(),
            w.outcome.total_load.to_bits(),
            "{context}: total load at {n}"
        );
    }
    assert_eq!(jsonl, ref_jsonl, "{context}: JSONL bytes differ from serial");
    assert_eq!(report.intervals, ref_report.intervals, "{context}: intervals");
    assert_eq!(report.stats, ref_report.stats, "{context}: stats");
    assert_eq!(report.keys, ref_report.keys, "{context}: key order");
    assert_eq!(report.generation, ref_report.generation, "{context}: generation");
    assert_eq!(
        report.route_updates_applied, ref_report.route_updates_applied,
        "{context}: updates applied"
    );
}

/// Frozen-table matrix: every scheme × every shard count against the
/// serial run of the same capture bytes.
#[test]
fn sharded_matches_serial_for_every_scheme_and_shard_count() {
    let (table, pcap, t, start, n) = small_capture(801);
    for scheme in [
        Scheme::SingleFeature,
        Scheme::LatentHeat { window: 3 },
        Scheme::Hysteresis { enter: 1.2, exit: 0.6 },
    ] {
        let serial = run_frozen(&table, &pcap, scheme, t, start, n, 0);
        assert!(!serial.2.is_empty(), "{scheme:?}: serial JSONL nonempty");
        for shards in SHARD_COUNTS {
            let sharded = run_frozen(&table, &pcap, scheme, t, start, n, shards);
            assert_sharded_equals_serial(
                &sharded,
                &serial,
                &format!("{scheme:?} shards={shards}"),
            );
        }
    }
}

/// Routing churn interleaved mid-stream (`--rib-updates` semantics):
/// withdraws and re-announces land between intervals, minting fresh
/// keys while old keys retire through the classifier window. The
/// sharded path must replay the schedule at the identical stream
/// positions and classify the re-keyed traffic bit-identically.
#[test]
fn sharded_matches_serial_under_mid_stream_churn() {
    let (table, pcap, t, start, n) = small_capture(802);
    // Withdraw a handful of live prefixes mid-interval-1, re-announce
    // them (fresh RouteIds, hence fresh KeyIds) mid-interval-3.
    let victims: Vec<_> = table.iter().step_by(97).take(6).cloned().collect();
    let schedule = vec![
        UpdateBatch {
            at_unix: start + t + t / 2,
            updates: victims.iter().map(|e| RouteUpdate::Withdraw(e.prefix)).collect(),
        },
        UpdateBatch {
            at_unix: start + 3 * t + t / 2,
            updates: victims.iter().map(|e| RouteUpdate::Announce(e.clone())).collect(),
        },
    ];
    for scheme in [Scheme::SingleFeature, Scheme::LatentHeat { window: 2 }] {
        let serial = run_live(&table, &schedule, &pcap, scheme, t, start, n, 0);
        assert_eq!(serial.1.generation, 2, "{scheme:?}: both batches consumed");
        assert_eq!(serial.1.route_updates_applied, 2, "{scheme:?}: both applied");
        for shards in SHARD_COUNTS {
            let sharded = run_live(&table, &schedule, &pcap, scheme, t, start, n, shards);
            assert_sharded_equals_serial(
                &sharded,
                &serial,
                &format!("churn {scheme:?} shards={shards}"),
            );
        }
    }
}

/// Concatenate a [`RotatingJsonlSink`] output chain in chronological
/// order: `path.1`, `path.2`, …, then the current file at `path`.
fn read_chain(path: &Path) -> Vec<u8> {
    let mut out = Vec::new();
    for n in 1.. {
        let mut seg = path.as_os_str().to_os_string();
        seg.push(format!(".{n}"));
        match fs::read(PathBuf::from(seg)) {
            Ok(bytes) => out.extend_from_slice(&bytes),
            Err(_) => break,
        }
    }
    out.extend_from_slice(&fs::read(path).unwrap_or_default());
    out
}

fn frozen_builder<'t>(
    table: &'t BgpTable,
    scheme: Scheme,
    t: u64,
    start: u64,
    n: usize,
    shards: usize,
) -> PipelineBuilder<'t, ConstantLoadDetector> {
    PipelineBuilder::new()
        .table(table)
        .interval_secs(t)
        .start_unix(start)
        .n_intervals(n)
        .detector(ConstantLoadDetector::new(BETA))
        .gamma(GAMMA)
        .scheme(scheme)
        .shards(shards)
}

/// Kill a sharded checkpointed run right after a seal's sink emission
/// (a chunk boundary — the checkpointer snapshots there), then resume
/// the surviving snapshot under a *different* shard count. The stitched
/// outcome sequence and the durable JSONL chain must equal the
/// uninterrupted serial run: the recovery frontier is shard-agnostic.
fn crash_sharded_resume_as(
    table: &BgpTable,
    pcap: &[u8],
    scheme: Scheme,
    t: u64,
    start: u64,
    n: usize,
    dir: &Path,
    crash_shards: usize,
    resume_shards: usize,
    at_seal: usize,
) -> (Vec<CollectedInterval>, PipelineReport, Vec<u8>) {
    let out = dir.join("out.jsonl");
    let context = format!("shards {crash_shards}→{resume_shards} at seal {at_seal}");

    // Phase 1: run sharded until the injected kill.
    let crashed = Collector::new();
    let mut checkpointer = Checkpointer::new(dir, 1).expect("checkpointer");
    let mut pipeline = frozen_builder(table, scheme, t, start, n, crash_shards)
        .sink(crashed.sink())
        .sink(RotatingJsonlSink::create(&out, None).expect("sink"))
        .crash_switch(CrashSwitch::new(CrashPoint::AfterSink, at_seal))
        .build();
    let run = pipeline.run_checkpointed(
        &mut PcapSource::new(pcap).expect("valid pcap"),
        &mut checkpointer,
    );
    match run {
        Err(PipelineError::Crash(p)) => {
            assert_eq!(p, CrashPoint::AfterSink, "{context}: crash point");
            drop(pipeline); // the "process" dies: buffers gone, files stay
        }
        // Sparse captures may push the kill into finish(), or past the
        // end entirely — both are legitimate outcomes of the switch.
        Ok(()) => match pipeline.finish() {
            Ok(report) => return (crashed.take(), report, read_chain(&out)),
            Err(PipelineError::Crash(p)) => {
                assert_eq!(p, CrashPoint::AfterSink, "{context}: finish crash")
            }
            Err(e) => panic!("{context}: unexpected finish error {e}"),
        },
        Err(e) => panic!("{context}: unexpected error {e}"),
    }

    // Phase 2: resume the snapshot under a different shard count.
    let ckpt_path = dir.join(CHECKPOINT_FILE);
    let resumed = Collector::new();
    let mut checkpointer = Checkpointer::new(dir, 1).expect("checkpointer");
    let (mut outcomes, report) = if ckpt_path.exists() {
        let ckpt = Checkpoint::load(&ckpt_path).expect("load checkpoint");
        let sealed = ckpt.intervals_sealed();
        let sink =
            RotatingJsonlSink::resume(&out, None, sealed as u64).expect("truncate output chain");
        let mut pipeline = frozen_builder(table, scheme, t, start, n, resume_shards)
            .sink(resumed.sink())
            .sink(sink)
            .resume(&ckpt)
            .expect("resume under a different shard count");
        let mut source = PcapSource::new(pcap).expect("valid pcap");
        skip_offered(&mut source, ckpt.offered()).expect("skip consumed records");
        pipeline
            .run_checkpointed(&mut source, &mut checkpointer)
            .expect("resumed run");
        let report = pipeline.finish().expect("resumed finish");
        let mut outcomes = crashed.take();
        outcomes.truncate(sealed);
        (outcomes, report)
    } else {
        // The kill landed before the first checkpoint: nothing durable
        // yet, so resume degrades to a fresh start — still under the
        // new shard count.
        let sink = RotatingJsonlSink::create(&out, None).expect("fresh sink");
        let mut pipeline = frozen_builder(table, scheme, t, start, n, resume_shards)
            .sink(resumed.sink())
            .sink(sink)
            .build();
        pipeline
            .run_checkpointed(
                &mut PcapSource::new(pcap).expect("valid pcap"),
                &mut checkpointer,
            )
            .expect("fresh restart");
        let report = pipeline.finish().expect("fresh finish");
        (Vec::new(), report)
    };
    outcomes.extend(resumed.take());
    (outcomes, report, read_chain(&out))
}

/// The shard-count-changing kill/resume matrix: crash under 4 shards,
/// resume serial / single-shard / 7-shard (and the reverse direction),
/// at every seal index. Every combination reproduces the uninterrupted
/// serial run exactly.
#[test]
fn kill_and_resume_across_shard_counts_is_bit_identical() {
    let (table, pcap, t, start, n) = small_capture(803);
    let scheme = Scheme::LatentHeat { window: 2 };
    let dir = scratch("reference");
    let reference = {
        let out = dir.join("ref.jsonl");
        let collector = Collector::new();
        let mut pipeline = frozen_builder(&table, scheme, t, start, n, 0)
            .sink(collector.sink())
            .sink(RotatingJsonlSink::create(&out, None).expect("ref sink"))
            .build();
        pipeline
            .run(PcapSource::new(&pcap[..]).expect("valid pcap"))
            .expect("reference run");
        let report = pipeline.finish().expect("reference finish");
        (collector.take(), report, read_chain(&out))
    };
    for (crash_shards, resume_shards) in [(4, 0), (4, 1), (4, 7), (2, 4), (0, 4)] {
        for at_seal in [0, 2, n - 2] {
            let run_dir = scratch("crossover");
            let got = crash_sharded_resume_as(
                &table, &pcap, scheme, t, start, n, &run_dir, crash_shards, resume_shards,
                at_seal,
            );
            assert_sharded_equals_serial(
                &got,
                &reference,
                &format!("kill/resume shards {crash_shards}→{resume_shards} at seal {at_seal}"),
            );
            fs::remove_dir_all(&run_dir).ok();
        }
    }
    fs::remove_dir_all(&dir).ok();
}

/// A compact random packet (same generator as the sibling suites):
/// route choice, interval, jitter, payload, routability.
#[derive(Debug, Clone, Copy)]
struct RandomPacket {
    route: usize,
    interval: u64,
    offset_ns: u64,
    payload: u16,
    unroutable: bool,
}

fn arb_packet(n_intervals: u64) -> impl Strategy<Value = RandomPacket> {
    (
        0usize..400,
        0..n_intervals + 2, // some past the window
        0u64..20_000_000_000,
        0u16..1200,
        0u8..20, // 1-in-20 packets unroutable
    )
        .prop_map(|(route, interval, offset_ns, payload, unroutable)| RandomPacket {
            route,
            interval,
            offset_ns,
            payload,
            unroutable: unroutable == 0,
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// The headline property: arbitrary time-sorted captures — mixed
    /// prefixes, unroutable destinations, out-of-window records,
    /// malformed records, idle intervals — classify bit-identically
    /// serial vs sharded at every shard count and scheme, with routing
    /// churn replayed mid-stream, and across a kill/resume at a chunk
    /// boundary that changes the shard count.
    #[test]
    fn sharded_equals_serial_on_random_captures(
        packets in prop::collection::vec(arb_packet(5), 1..250),
        malformed_every in 5usize..40,
        window in 1usize..4,
        scheme_pick in 0u8..3,
        churn_stride in 13usize..60,
    ) {
        let table = synth::generate(&SynthConfig {
            n_prefixes: 400,
            ..SynthConfig::default()
        });
        let dsts: Vec<Ipv4Addr> = table.iter().map(|e| e.prefix.network()).collect();

        // Time-sort (the streaming contract) and serialize.
        let mut packets = packets;
        packets.sort_by_key(|p| p.interval * 20_000_000_000 + p.offset_ns);
        let mut pcap = Vec::new();
        let mut writer = PcapWriter::new(&mut pcap, LinkType::RawIp.code()).unwrap();
        for (i, p) in packets.iter().enumerate() {
            let ts_ns = p.interval * 20_000_000_000 + p.offset_ns;
            let dst = if p.unroutable {
                Ipv4Addr::new(203, 0, 113, 1) // TEST-NET-3: never in the table
            } else {
                dsts[p.route % dsts.len()]
            };
            let packet = PacketBuilder::udp()
                .src(Ipv4Addr::new(198, 18, 0, 1), 9)
                .dst(dst, 53)
                .payload_len(p.payload as usize)
                .build_ipv4();
            writer.write_record(ts_ns, packet.len() as u32, &packet).unwrap();
            if i % malformed_every == 0 {
                writer.write_record(ts_ns, 3, &[0xBA, 0xAD, 0x00]).unwrap();
            }
        }
        writer.finish().unwrap();

        let scheme = match scheme_pick {
            0 => Scheme::SingleFeature,
            1 => Scheme::LatentHeat { window },
            _ => Scheme::Hysteresis { enter: 1.2, exit: 0.6 },
        };
        let (t, start, n) = (20u64, 0u64, 5usize);

        // Frozen table: every shard count against serial.
        let serial = run_frozen(&table, &pcap, scheme, t, start, n, 0);
        for shards in SHARD_COUNTS {
            let sharded = run_frozen(&table, &pcap, scheme, t, start, n, shards);
            assert_sharded_equals_serial(
                &sharded,
                &serial,
                &format!("random {scheme:?} shards={shards}"),
            );
        }

        // Mid-stream churn: withdraw a stride of prefixes during
        // interval 1, re-announce them during interval 3.
        let victims: Vec<_> = table.iter().step_by(churn_stride).take(5).cloned().collect();
        let schedule = vec![
            UpdateBatch {
                at_unix: start + t + 7,
                updates: victims.iter().map(|e| RouteUpdate::Withdraw(e.prefix)).collect(),
            },
            UpdateBatch {
                at_unix: start + 3 * t + 7,
                updates: victims.iter().map(|e| RouteUpdate::Announce(e.clone())).collect(),
            },
        ];
        let serial_live = run_live(&table, &schedule, &pcap, scheme, t, start, n, 0);
        for shards in SHARD_COUNTS {
            let sharded = run_live(&table, &schedule, &pcap, scheme, t, start, n, shards);
            assert_sharded_equals_serial(
                &sharded,
                &serial_live,
                &format!("random churn {scheme:?} shards={shards}"),
            );
        }

        // Kill at a chunk boundary under 4 shards, resume under 7.
        let run_dir = scratch("prop");
        let got = crash_sharded_resume_as(
            &table, &pcap, scheme, t, start, n, &run_dir, 4, 7, 1,
        );
        assert_sharded_equals_serial(
            &got,
            &serial,
            &format!("random kill/resume {scheme:?} shards 4→7"),
        );
        fs::remove_dir_all(&run_dir).ok();
    }
}
