//! PR 5's load-bearing property: a checkpointed streaming run that is
//! killed at *any* crash point — after a seal's classifier update,
//! after its sink emission, or halfway through writing the checkpoint
//! itself — and then resumed from the last durable snapshot produces
//! output **bit-identical** to the uninterrupted run: same JSONL bytes
//! (no duplicated, no missing interval records), same thresholds and
//! loads to the last bit, same accounting. This is what licenses
//! running the monitor unattended over multi-week captures.

use std::fs;
use std::net::Ipv4Addr;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

use eleph_bgp::synth::{self, SynthConfig};
use eleph_bgp::{BgpTable, LiveBgpTable, RouteUpdate, UpdateBatch};
use eleph_core::{ConstantLoadDetector, Scheme};
use eleph_packet::pcap::PcapWriter;
use eleph_packet::{LinkType, PacketBuilder};
use eleph_pipeline::{
    skip_offered, Checkpoint, CheckpointError, Checkpointer, CollectedInterval, Collector,
    PcapSource, PipelineBuilder, PipelineError, PipelineReport, RotatingJsonlSink, CHECKPOINT_FILE,
};
use eleph_trace::{CrashPoint, CrashSwitch, PacketSynth, RateTrace, WorkloadConfig};
use proptest::prelude::*;

const BETA: f64 = 0.8;
const GAMMA: f64 = 0.9;

/// A unique scratch directory per invocation (tests run concurrently).
fn scratch(tag: &str) -> PathBuf {
    static SEQ: AtomicU64 = AtomicU64::new(0);
    let dir = std::env::temp_dir().join(format!(
        "eleph-checkpoint-{tag}-{}-{}",
        std::process::id(),
        SEQ.fetch_add(1, Ordering::Relaxed),
    ));
    let _ = fs::remove_dir_all(&dir);
    fs::create_dir_all(&dir).expect("scratch dir");
    dir
}

/// The same small synthetic capture the streaming-equivalence suite
/// uses: enough traffic for real thresholds, small enough to replay
/// dozens of times.
fn small_capture(seed: u64) -> (BgpTable, Vec<u8>, u64, u64, usize) {
    let table = synth::generate(&SynthConfig {
        n_prefixes: 2_000,
        ..SynthConfig::default()
    });
    let config = WorkloadConfig {
        n_flows: 120,
        n_intervals: 6,
        interval_secs: 20,
        link: eleph_trace::LinkSpec {
            name: "checkpoint link".to_string(),
            capacity_bps: 3_000_000.0,
            target_peak_util: 0.5,
        },
        ..WorkloadConfig::small_test(seed)
    };
    let trace = RateTrace::generate(&config, &table);
    let mut pcap = Vec::new();
    PacketSynth::new(&trace)
        .write_pcap(0..trace.n_intervals(), &mut pcap)
        .expect("pcap synthesis");
    (
        table,
        pcap,
        config.interval_secs,
        config.start_unix,
        config.n_intervals,
    )
}

fn builder<'t>(
    table: &'t BgpTable,
    scheme: Scheme,
    interval_secs: u64,
    start_unix: u64,
    n: usize,
) -> PipelineBuilder<'t, ConstantLoadDetector> {
    PipelineBuilder::new()
        .table(table)
        .interval_secs(interval_secs)
        .start_unix(start_unix)
        .n_intervals(n)
        .detector(ConstantLoadDetector::new(BETA))
        .gamma(GAMMA)
        .scheme(scheme)
}

/// Concatenate a [`RotatingJsonlSink`] output chain in chronological
/// order: `path.1`, `path.2`, …, then the current file at `path`.
fn read_chain(path: &Path) -> Vec<u8> {
    let mut out = Vec::new();
    for n in 1.. {
        let mut seg = path.as_os_str().to_os_string();
        seg.push(format!(".{n}"));
        match fs::read(PathBuf::from(seg)) {
            Ok(bytes) => out.extend_from_slice(&bytes),
            Err(_) => break,
        }
    }
    out.extend_from_slice(&fs::read(path).unwrap_or_default());
    out
}

/// Every interval of the uninterrupted run, plus its report and JSONL
/// chain — the oracle every kill/resume combination must reproduce.
fn reference(
    table: &BgpTable,
    pcap: &[u8],
    scheme: Scheme,
    t: u64,
    start: u64,
    n: usize,
    dir: &Path,
    rotate: Option<u64>,
) -> (Vec<CollectedInterval>, PipelineReport, Vec<u8>) {
    let out = dir.join("ref.jsonl");
    let collector = Collector::new();
    let mut pipeline = builder(table, scheme, t, start, n)
        .sink(collector.sink())
        .sink(RotatingJsonlSink::create(&out, rotate).expect("ref sink"))
        .build();
    pipeline
        .run(PcapSource::new(pcap).expect("valid pcap"))
        .expect("reference run");
    let report = pipeline.finish().expect("reference finish");
    (collector.take(), report, read_chain(&out))
}

fn assert_outcomes_identical(
    got: &[CollectedInterval],
    want: &[CollectedInterval],
    context: &str,
) {
    assert_eq!(got.len(), want.len(), "{context}: interval count");
    for (g, w) in got.iter().zip(want) {
        let n = w.outcome.interval;
        assert_eq!(g.outcome.interval, n, "{context}: interval index");
        assert_eq!(g.outcome.elephants, w.outcome.elephants, "{context}: elephants at {n}");
        assert_eq!(
            g.outcome.threshold.to_bits(),
            w.outcome.threshold.to_bits(),
            "{context}: threshold at {n}"
        );
        assert_eq!(
            g.outcome.elephant_load.to_bits(),
            w.outcome.elephant_load.to_bits(),
            "{context}: elephant load at {n}"
        );
        assert_eq!(
            g.outcome.total_load.to_bits(),
            w.outcome.total_load.to_bits(),
            "{context}: total load at {n}"
        );
    }
}

/// Kill a checkpointed run at (`point`, `at_seal`), resume from
/// whatever the crash left on disk, and return the stitched outcome
/// sequence, the resumed run's final report, and the JSONL chain.
///
/// Mirrors exactly what `eleph run --resume` does: load the snapshot
/// (fresh start when the kill landed before the first checkpoint),
/// truncate the durable output chain to the checkpointed interval
/// count, rebuild the pipeline from the snapshot, replay the source
/// past the consumed records, and keep going.
fn crash_and_resume(
    table: &BgpTable,
    pcap: &[u8],
    scheme: Scheme,
    t: u64,
    start: u64,
    n: usize,
    dir: &Path,
    rotate: Option<u64>,
    point: CrashPoint,
    at_seal: usize,
) -> (Vec<CollectedInterval>, PipelineReport, Vec<u8>) {
    let out = dir.join("out.jsonl");
    let context = format!("{scheme:?} {point:?} at seal {at_seal}");

    // Phase 1: run until the injected kill.
    let crashed = Collector::new();
    let mut checkpointer = Checkpointer::new(dir, 1).expect("checkpointer");
    let mut pipeline = builder(table, scheme, t, start, n)
        .sink(crashed.sink())
        .sink(RotatingJsonlSink::create(&out, rotate).expect("sink"))
        .crash_switch(CrashSwitch::new(point, at_seal))
        .build();
    let run = pipeline.run_checkpointed(
        &mut PcapSource::new(pcap).expect("valid pcap"),
        &mut checkpointer,
    );
    match run {
        Err(PipelineError::Crash(p)) => {
            assert_eq!(p, point, "{context}: crash point");
            drop(pipeline); // the "process" dies: buffers gone, files stay
        }
        // The capture may end before `at_seal` seals mid-run: trailing
        // intervals seal in `finish`, so the kill lands there instead —
        // and a mid-checkpoint-write kill before the first write never
        // fires at all, in which case the run simply completes.
        Ok(()) => match pipeline.finish() {
            Ok(report) => return (crashed.take(), report, read_chain(&out)),
            Err(PipelineError::Crash(p)) => assert_eq!(p, point, "{context}: finish crash"),
            Err(e) => panic!("{context}: unexpected finish error {e}"),
        },
        Err(e) => panic!("{context}: unexpected error {e}"),
    }

    // Phase 2: resume from whatever survived on disk.
    let ckpt_path = dir.join(CHECKPOINT_FILE);
    let resumed = Collector::new();
    let mut checkpointer = Checkpointer::new(dir, 1).expect("checkpointer");
    let (mut outcomes, report) = if ckpt_path.exists() {
        let ckpt = Checkpoint::load(&ckpt_path).expect("load checkpoint");
        let sealed = ckpt.intervals_sealed();
        let sink = RotatingJsonlSink::resume(&out, rotate, sealed as u64)
            .expect("truncate output chain");
        let mut pipeline = builder(table, scheme, t, start, n)
            .sink(resumed.sink())
            .sink(sink)
            .resume(&ckpt)
            .expect("resume from checkpoint");
        let mut source = PcapSource::new(pcap).expect("valid pcap");
        skip_offered(&mut source, ckpt.offered()).expect("skip consumed records");
        pipeline
            .run_checkpointed(&mut source, &mut checkpointer)
            .expect("resumed run");
        let report = pipeline.finish().expect("resumed finish");
        // Stitch: the crashed process's outcomes up to the snapshot,
        // then everything the resumed process sealed (the durable JSONL
        // chain went through the same cut via the sink truncation).
        let mut outcomes = crashed.take();
        outcomes.truncate(sealed);
        (outcomes, report)
    } else {
        // The kill landed before the first checkpoint: nothing durable
        // yet, so resume degrades to a fresh start (what `eleph run
        // --resume` does too).
        let sink = RotatingJsonlSink::create(&out, rotate).expect("fresh sink");
        let mut pipeline = builder(table, scheme, t, start, n)
            .sink(resumed.sink())
            .sink(sink)
            .build();
        pipeline
            .run_checkpointed(&mut PcapSource::new(pcap).expect("valid pcap"), &mut checkpointer)
            .expect("fresh restart");
        let report = pipeline.finish().expect("fresh finish");
        (Vec::new(), report)
    };
    outcomes.extend(resumed.take());
    (outcomes, report, read_chain(&out))
}

/// The crash-point matrix: every [`CrashPoint`] × every seal index ×
/// every scheme. Latent heat with a 2-slot window crosses latent-heat
/// retirement mid-run and hysteresis crosses membership transitions, so
/// kills land on both sides of every path-dependent state update.
#[test]
fn kill_and_resume_is_bit_identical_at_every_crash_point() {
    let (table, pcap, t, start, n) = small_capture(401);
    for scheme in [
        Scheme::SingleFeature,
        Scheme::LatentHeat { window: 2 },
        Scheme::Hysteresis { enter: 1.2, exit: 0.6 },
    ] {
        let dir = scratch("matrix");
        let (ref_outcomes, ref_report, ref_chain) =
            reference(&table, &pcap, scheme, t, start, n, &dir, Some(256));
        assert_eq!(ref_outcomes.len(), n);
        for point in CrashPoint::ALL {
            for at_seal in 0..n - 1 {
                let context = format!("{scheme:?} {point:?} at seal {at_seal}");
                let dir = scratch("matrix-run");
                let (outcomes, report, chain) = crash_and_resume(
                    &table, &pcap, scheme, t, start, n, &dir, Some(256), point, at_seal,
                );
                assert_outcomes_identical(&outcomes, &ref_outcomes, &context);
                assert_eq!(
                    chain,
                    ref_chain,
                    "{context}: JSONL chain differs from the uninterrupted run"
                );
                assert_eq!(report.intervals, ref_report.intervals, "{context}: intervals");
                assert_eq!(report.stats, ref_report.stats, "{context}: stats");
                assert_eq!(report.keys, ref_report.keys, "{context}: key order");
                assert_eq!(
                    report.far_future_streak, ref_report.far_future_streak,
                    "{context}: far-future streak"
                );
                fs::remove_dir_all(&dir).ok();
            }
        }
        fs::remove_dir_all(&dir).ok();
    }
}

/// Corrupted and truncated checkpoint files must be rejected with the
/// typed error naming what failed — never deserialized into a pipeline.
#[test]
fn corrupted_checkpoint_files_are_rejected_on_disk() {
    let (table, pcap, t, start, n) = small_capture(402);
    let scheme = Scheme::LatentHeat { window: 2 };
    let dir = scratch("corrupt");
    let mut checkpointer = Checkpointer::new(&dir, 1).expect("checkpointer");
    let mut pipeline = builder(&table, scheme, t, start, n).build();
    pipeline
        .run_checkpointed(&mut PcapSource::new(&pcap[..]).expect("valid pcap"), &mut checkpointer)
        .expect("run");
    pipeline.finish().expect("finish");
    let ckpt_path = dir.join(CHECKPOINT_FILE);
    let good = fs::read(&ckpt_path).expect("checkpoint bytes");
    assert!(Checkpoint::load(&ckpt_path).is_ok(), "pristine file loads");

    // One flipped payload byte: the CRC catches it.
    let mut bad = good.clone();
    let at = good.len() - 7;
    bad[at] ^= 0x10;
    let bad_path = dir.join("flipped.ckpt");
    fs::write(&bad_path, &bad).unwrap();
    match Checkpoint::load(&bad_path) {
        Err(CheckpointError::Checksum { expected, actual }) => {
            assert_ne!(expected, actual);
        }
        other => panic!("flipped byte must be a checksum error, got {other:?}"),
    }

    // A torn tail (the classic partial-write artifact): a format error.
    let cut_path = dir.join("torn.ckpt");
    fs::write(&cut_path, &good[..good.len() / 2]).unwrap();
    match Checkpoint::load(&cut_path) {
        Err(CheckpointError::Format(_)) => {}
        other => panic!("torn file must be a format error, got {other:?}"),
    }

    // A differently-configured pipeline must refuse the snapshot.
    let ckpt = Checkpoint::load(&ckpt_path).expect("good checkpoint");
    match builder(&table, scheme, t, start, n).gamma(0.5).resume(&ckpt) {
        Err(CheckpointError::Mismatch(what)) => {
            assert!(what.contains("gamma"), "mismatch names the field: {what}")
        }
        _ => panic!("gamma mismatch must be rejected"),
    }
    fs::remove_dir_all(&dir).ok();
}

/// A checkpoint taken from a live-table run records the table
/// generation; resuming against a table at any *other* generation —
/// a fresh live table nobody replayed, or a frozen table pinned at
/// generation 0 — must be refused with the typed mismatch naming the
/// field. Replaying the schedule to the recorded generation first
/// makes the same checkpoint acceptable again.
#[test]
fn resume_against_wrong_table_generation_is_a_typed_mismatch() {
    let (table, pcap, t, start, n) = small_capture(403);
    let scheme = Scheme::LatentHeat { window: 2 };
    let victim = table.iter().next().expect("nonempty table").prefix;
    // One withdraw early in the capture: the run ends at generation 1.
    let schedule = vec![UpdateBatch {
        at_unix: start + t / 2,
        updates: vec![RouteUpdate::Withdraw(victim)],
    }];

    let live = LiveBgpTable::from_table(&table);
    let mut pipeline = PipelineBuilder::new()
        .live(&live)
        .interval_secs(t)
        .start_unix(start)
        .n_intervals(n)
        .detector(ConstantLoadDetector::new(BETA))
        .gamma(GAMMA)
        .scheme(scheme)
        .route_updates(schedule.clone())
        .build();
    pipeline
        .run(PcapSource::new(&pcap[..]).expect("valid pcap"))
        .expect("checkpointed run");
    let mut bytes = Vec::new();
    pipeline.checkpoint(&mut bytes).expect("serialize checkpoint");
    let ckpt = Checkpoint::read_from(&mut &bytes[..]).expect("decode checkpoint");
    assert_eq!(ckpt.generation(), 1, "the withdraw batch was consumed");

    // A fresh live table still at generation 0 — the driver forgot to
    // replay the consumed batches — is refused.
    let stale = LiveBgpTable::from_table(&table);
    match PipelineBuilder::new()
        .live(&stale)
        .interval_secs(t)
        .start_unix(start)
        .n_intervals(n)
        .detector(ConstantLoadDetector::new(BETA))
        .gamma(GAMMA)
        .scheme(scheme)
        .route_updates(schedule.clone())
        .resume(&ckpt)
    {
        Err(CheckpointError::Mismatch(what)) => {
            assert!(what.contains("table generation"), "mismatch names the field: {what}")
        }
        _ => panic!("stale live table must be rejected"),
    }

    // A frozen table is forever at generation 0: it can never host a
    // checkpoint born from a live run that applied updates.
    match builder(&table, scheme, t, start, n).resume(&ckpt) {
        Err(CheckpointError::Mismatch(what)) => {
            assert!(what.contains("table generation"), "mismatch names the field: {what}")
        }
        _ => panic!("frozen table must be rejected"),
    }

    // Replayed to exactly the recorded generation, the checkpoint loads.
    let replayed = LiveBgpTable::from_table(&table);
    for batch in &schedule[..ckpt.generation() as usize] {
        replayed.apply(&batch.updates);
    }
    PipelineBuilder::new()
        .live(&replayed)
        .interval_secs(t)
        .start_unix(start)
        .n_intervals(n)
        .detector(ConstantLoadDetector::new(BETA))
        .gamma(GAMMA)
        .scheme(scheme)
        .route_updates(schedule)
        .resume(&ckpt)
        .expect("replayed table matches the recorded generation");
}

/// A compact random packet (same generator as the streaming-equivalence
/// suite): route choice, interval, jitter, payload, routability.
#[derive(Debug, Clone, Copy)]
struct RandomPacket {
    route: usize,
    interval: u64,
    offset_ns: u64,
    payload: u16,
    unroutable: bool,
}

fn arb_packet(n_intervals: u64) -> impl Strategy<Value = RandomPacket> {
    (
        0usize..400,
        0..n_intervals + 2, // some past the window
        0u64..20_000_000_000,
        0u16..1200,
        0u8..20, // 1-in-20 packets unroutable
    )
        .prop_map(|(route, interval, offset_ns, payload, unroutable)| RandomPacket {
            route,
            interval,
            offset_ns,
            payload,
            unroutable: unroutable == 0,
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Checkpoint/restore round-trips after **every** interval of
    /// arbitrary captures — mixed prefixes, unroutable destinations,
    /// out-of-window records, malformed records, idle intervals — and
    /// the stitched run stays bit-identical under every scheme.
    #[test]
    fn resume_after_every_interval_is_bit_identical(
        packets in prop::collection::vec(arb_packet(5), 1..250),
        malformed_every in 5usize..40,
        window in 1usize..4,
        scheme_pick in 0u8..3,
    ) {
        let table = synth::generate(&SynthConfig {
            n_prefixes: 400,
            ..SynthConfig::default()
        });
        let dsts: Vec<Ipv4Addr> = table.iter().map(|e| e.prefix.network()).collect();

        // Time-sort (the streaming contract) and serialize.
        let mut packets = packets;
        packets.sort_by_key(|p| p.interval * 20_000_000_000 + p.offset_ns);
        let mut pcap = Vec::new();
        let mut writer = PcapWriter::new(&mut pcap, LinkType::RawIp.code()).unwrap();
        for (i, p) in packets.iter().enumerate() {
            let ts_ns = p.interval * 20_000_000_000 + p.offset_ns;
            let dst = if p.unroutable {
                Ipv4Addr::new(203, 0, 113, 1) // TEST-NET-3: never in the table
            } else {
                dsts[p.route % dsts.len()]
            };
            let packet = PacketBuilder::udp()
                .src(Ipv4Addr::new(198, 18, 0, 1), 9)
                .dst(dst, 53)
                .payload_len(p.payload as usize)
                .build_ipv4();
            writer.write_record(ts_ns, packet.len() as u32, &packet).unwrap();
            if i % malformed_every == 0 {
                writer.write_record(ts_ns, 3, &[0xBA, 0xAD, 0x00]).unwrap();
            }
        }
        writer.finish().unwrap();

        let scheme = match scheme_pick {
            0 => Scheme::SingleFeature,
            1 => Scheme::LatentHeat { window },
            _ => Scheme::Hysteresis { enter: 1.2, exit: 0.6 },
        };
        let n = 5;
        let dir = scratch("prop");
        let (ref_outcomes, ref_report, ref_chain) =
            reference(&table, &pcap, scheme, 20, 0, n, &dir, None);
        for at_seal in 0..n - 1 {
            let context = format!("proptest {scheme:?} at seal {at_seal}");
            let run_dir = scratch("prop-run");
            let (outcomes, report, chain) = crash_and_resume(
                &table, &pcap, scheme, 20, 0, n, &run_dir, None,
                CrashPoint::AfterSink, at_seal,
            );
            assert_outcomes_identical(&outcomes, &ref_outcomes, &context);
            prop_assert_eq!(&chain, &ref_chain, "{}: JSONL chain", context);
            prop_assert_eq!(report.stats, ref_report.stats, "{}: stats", context);
            prop_assert_eq!(
                report.far_future_streak, ref_report.far_future_streak,
                "{}: far-future streak", context
            );
            fs::remove_dir_all(&run_dir).ok();
        }
        fs::remove_dir_all(&dir).ok();
    }
}
