//! The paper's qualitative claims must hold on a scaled-down scenario.
//!
//! Absolute numbers scale with the flow population, so this test checks
//! the *relations* the paper reports — they are scale-invariant:
//!
//! 1. single-feature elephants are volatile, latent heat fixes it;
//! 2. elephants are few but carry most of the traffic;
//! 3. the west link's elephant count bursts during working hours, the
//!    east link's does not;
//! 4. results are robust to the measurement interval T.

use eleph_core::holding;
use eleph_report::experiments::fig1_data;
use eleph_report::{run, DetectorKind, Scenario, SchemeSpec};

const SCALE: f64 = 0.08;
const SEED: u64 = 77;

#[test]
fn latent_heat_beats_single_feature_on_stability() {
    let scenario = Scenario::west(SEED).scaled(SCALE);
    let data = scenario.build();
    let window = scenario.busy_window(&data.matrix);

    let single = run(&data.matrix, SchemeSpec::single(DetectorKind::ConstantLoad));
    let latent = run(&data.matrix, SchemeSpec::paper(DetectorKind::ConstantLoad));

    let h_single = holding::analyze(&single, window.clone(), scenario.workload.interval_secs);
    let h_latent = holding::analyze(&latent, window, scenario.workload.interval_secs);

    // Holding times: paper reports 20-40 min → ~2 h, a ≥3x improvement.
    assert!(
        h_latent.mean_avg_slots > 3.0 * h_single.mean_avg_slots,
        "holding: single {} vs latent {}",
        h_single.mean_avg_slots,
        h_latent.mean_avg_slots
    );

    // Single-interval elephants: paper reports >1000 → ~50, a ≥10x drop.
    assert!(
        h_single.single_interval_flows >= 10 * h_latent.single_interval_flows.max(1),
        "single-interval: {} vs {}",
        h_single.single_interval_flows,
        h_latent.single_interval_flows
    );

    // And the single-feature scheme really is volatile in absolute terms
    // (paper: 20-40 min = 4-8 slots; accept a broad band).
    assert!(
        h_single.mean_avg_slots < 12.0,
        "single-feature holding {} slots suspiciously long",
        h_single.mean_avg_slots
    );
}

#[test]
fn elephants_are_few_and_carry_most_traffic() {
    let scenario = Scenario::west(SEED).scaled(SCALE);
    let data = scenario.build();
    let result = run(&data.matrix, SchemeSpec::paper(DetectorKind::ConstantLoad));

    let mean_active: f64 = (0..data.matrix.n_intervals())
        .map(|n| data.matrix.active(n) as f64)
        .sum::<f64>()
        / data.matrix.n_intervals() as f64;

    // Elephants are a small minority of flows...
    assert!(
        result.mean_count() < 0.15 * mean_active,
        "elephants {} of {} active",
        result.mean_count(),
        mean_active
    );
    // ...but carry the majority of bytes (paper: ~0.6).
    let f = result.mean_fraction();
    assert!((0.45..=0.85).contains(&f), "elephant load fraction {f}");
}

#[test]
fn west_bursts_east_does_not() {
    // Count-series shape needs a moderately sized population: with only
    // a few dozen heavy flows the constant-load threshold is dominated
    // by the fate of individual top flows and the series is pure noise.
    // Scale 0.4 ≈ 16k flows west / 10k east keeps counts in the hundreds.
    let data = fig1_data(0.4, SEED);
    let cv = |r: &eleph_core::ClassificationResult| {
        let counts: Vec<f64> = (0..r.n_intervals()).map(|n| r.count(n) as f64).collect();
        let smoothed: Vec<f64> = counts.windows(6).map(|w| w.iter().sum::<f64>() / 6.0).collect();
        let mean = smoothed.iter().sum::<f64>() / smoothed.len() as f64;
        let var = smoothed.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>()
            / smoothed.len() as f64;
        var.sqrt() / mean
    };
    let west = cv(&data.runs[0]);
    let east = cv(&data.runs[2]);
    assert!(west > east, "west count CV {west} vs east {east}");
    assert!(west > 0.15, "west should show diurnal structure: CV {west}");
}

#[test]
fn aest_and_constant_load_agree_qualitatively() {
    let data = fig1_data(SCALE, SEED);
    // Same link, different detectors: counts within a factor of ~2.5 and
    // fractions within 0.2 (the paper's four series sit close together).
    let (cl, aest) = (&data.runs[0], &data.runs[1]);
    let count_ratio = cl.mean_count() / aest.mean_count().max(1.0);
    assert!(
        (0.4..=2.5).contains(&count_ratio),
        "detector count ratio {count_ratio}"
    );
    assert!(
        (cl.mean_fraction() - aest.mean_fraction()).abs() < 0.2,
        "fractions {} vs {}",
        cl.mean_fraction(),
        aest.mean_fraction()
    );
}

#[test]
fn robust_to_measurement_interval() {
    // The paper: "Similar results were obtained for T = 1 min and 30 min".
    let mut fractions = Vec::new();
    for t_secs in [60u64, 300, 1800] {
        let mut scenario = Scenario::west(SEED).scaled(SCALE);
        let span = scenario.workload.interval_secs * scenario.workload.n_intervals as u64;
        scenario.workload.interval_secs = t_secs;
        scenario.workload.n_intervals = (span / t_secs) as usize;
        let data = scenario.build();
        let result = run(&data.matrix, SchemeSpec::paper(DetectorKind::ConstantLoad));
        fractions.push(result.mean_fraction());
    }
    let max = fractions.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
    let min = fractions.iter().cloned().fold(f64::INFINITY, f64::min);
    assert!(
        max - min < 0.15,
        "fraction spread across T too large: {fractions:?}"
    );
}

#[test]
fn prefix_structure_matches_paper() {
    // Run at a larger scale than the other tests: /8 statistics are
    // small counts and need a bigger population to be meaningful.
    let data = fig1_data(0.2, SEED);
    let (_, scen_data) = &data.west;
    let result = &data.runs[0];
    let report = eleph_core::prefix_analysis::prefix_report(
        &scen_data.matrix,
        result,
        Some(&scen_data.table),
        0..result.n_intervals(),
    );
    // Elephant /8s must be a small minority of active /8s.
    assert!(
        report.elephant_slash8 * 2 <= report.active_slash8.max(1),
        "{} elephant /8s of {} active",
        report.elephant_slash8,
        report.active_slash8
    );
    assert!(report.elephant_slash8 <= 8, "too many /8 elephants");
    // The elephant bulk must span a wide range of lengths (paper:
    // /12-/26 — no correlation between prefix size and elephant-ness).
    let bulk: Vec<usize> = (9..33).filter(|&l| report.elephant_by_length[l] > 0).collect();
    if let (Some(&lo), Some(&hi)) = (bulk.first(), bulk.last()) {
        assert!(hi - lo >= 8, "elephant lengths span only /{lo}-/{hi}");
    } else {
        panic!("no elephants found");
    }
    // Tier-1 routes dominate the elephant class.
    let [t1, t2, stub] = report.elephant_peer_classes.expect("table supplied");
    assert!(t1 > t2 && t1 > stub, "peer classes {t1}/{t2}/{stub}");
}
