//! The load-bearing test of the whole reproduction: the packet-level
//! measurement pipeline (pcap → parse → LPM attribution → interval
//! binning) reproduces the rate-level trace the figure experiments run
//! on. This is what justifies running the paper's experiments at rate
//! level (DESIGN.md §3).

use eleph_bgp::synth::{self, SynthConfig};
use eleph_flow::{
    aggregate_pcap, aggregate_pcap_parallel, aggregate_pcap_parallel_frozen, BandwidthMatrix,
};
use eleph_trace::{PacketSynth, RateTrace, WorkloadConfig};

fn small_scenario(seed: u64) -> (eleph_bgp::BgpTable, RateTrace) {
    let table = synth::generate(&SynthConfig {
        n_prefixes: 2_000,
        ..SynthConfig::default()
    });
    let config = WorkloadConfig {
        n_flows: 120,
        n_intervals: 6,
        interval_secs: 20,
        link: eleph_trace::LinkSpec {
            name: "equivalence link".to_string(),
            capacity_bps: 3_000_000.0,
            target_peak_util: 0.5,
        },
        ..WorkloadConfig::small_test(seed)
    };
    let trace = RateTrace::generate(&config, &table);
    (table, trace)
}

#[test]
fn packet_path_reproduces_rate_path() {
    let (table, trace) = small_scenario(101);
    let rate_matrix = BandwidthMatrix::from_rate_trace(&trace);

    // Rate trace → packets → pcap bytes → aggregation.
    let synth = PacketSynth::new(&trace);
    let mut pcap = Vec::new();
    synth.write_pcap(0..trace.n_intervals(), &mut pcap).expect("synthesis");
    let (pkt_matrix, stats) = aggregate_pcap(
        &pcap[..],
        &table,
        trace.config.interval_secs,
        trace.config.start_unix,
        trace.config.n_intervals,
    )
    .expect("aggregation");

    assert!(stats.is_conserved());
    assert_eq!(stats.malformed, 0);
    assert_eq!(stats.unroutable, 0, "synthesis must only target routed prefixes");

    // Per-interval totals agree within the quantisation bound:
    // the final packet of each flow-interval may undershoot by < 40
    // bytes, i.e. 40·8/T b/s per active flow.
    let per_flow_bound = 40.0 * 8.0 / trace.config.interval_secs as f64;
    for n in 0..trace.n_intervals() {
        let bound = per_flow_bound * rate_matrix.active(n) as f64;
        let diff = (rate_matrix.total(n) - pkt_matrix.total(n)).abs();
        assert!(diff <= bound, "interval {n}: totals differ by {diff} (> {bound})");
    }

    // Per-prefix rates agree within the per-flow bound. Key spaces
    // differ (rate path indexes all population flows, packet path only
    // ever-active prefixes), so join via the prefix.
    for n in 0..trace.n_intervals() {
        for (key, rate) in rate_matrix.interval(n) {
            let prefix = rate_matrix.key(key);
            let got = pkt_matrix
                .key_id(prefix)
                .map(|k| pkt_matrix.rate(n, k))
                .unwrap_or(0.0);
            assert!(
                (f64::from(rate) - got).abs() <= per_flow_bound.max(f64::from(rate) * 0.01),
                "interval {n} prefix {prefix}: rate {rate} vs packet-path {got}"
            );
        }
    }

    // And nothing appears on the packet path that the rate path lacks.
    for n in 0..trace.n_intervals() {
        for (key, _) in pkt_matrix.interval(n) {
            let prefix = pkt_matrix.key(key);
            let id = rate_matrix.key_id(prefix).expect("prefix came from the population");
            assert!(rate_matrix.rate(n, id) > 0.0, "phantom traffic for {prefix} at {n}");
        }
    }
}

#[test]
fn parallel_aggregation_is_byte_identical_to_serial() {
    let (table, trace) = small_scenario(404);
    let synth = PacketSynth::new(&trace);
    let mut pcap = Vec::new();
    synth.write_pcap(0..trace.n_intervals(), &mut pcap).expect("synthesis");

    let (serial, serial_stats) = aggregate_pcap(
        &pcap[..],
        &table,
        trace.config.interval_secs,
        trace.config.start_unix,
        trace.config.n_intervals,
    )
    .expect("serial aggregation");

    // Across shard counts (including more shards than packets per
    // interval and the auto-selected 0), both parallel forms must
    // produce the same stats, the same keys in the same (first-seen)
    // order, and bit-identical rates in every interval.
    let frozen = table.freeze();
    for threads in [0usize, 1, 2, 3, 5, 16] {
        let (parallel, parallel_stats) = if threads % 2 == 0 {
            aggregate_pcap_parallel(
                &pcap[..],
                &table,
                trace.config.interval_secs,
                trace.config.start_unix,
                trace.config.n_intervals,
                threads,
            )
            .expect("parallel aggregation")
        } else {
            aggregate_pcap_parallel_frozen(
                &pcap[..],
                &frozen,
                trace.config.interval_secs,
                trace.config.start_unix,
                trace.config.n_intervals,
                threads,
            )
            .expect("parallel aggregation (frozen)")
        };

        assert_eq!(serial_stats, parallel_stats, "{threads} threads: stats diverge");
        assert_eq!(serial.n_intervals(), parallel.n_intervals());
        assert_eq!(serial.n_keys(), parallel.n_keys(), "{threads} threads: key count");
        for k in 0..serial.n_keys() as u32 {
            assert_eq!(
                serial.key(k),
                parallel.key(k),
                "{threads} threads: key order diverges at id {k}"
            );
        }
        for n in 0..serial.n_intervals() {
            // Sparse rows compare (KeyId, f32) pairs: f32 equality means
            // bit-identical rates, not approximately equal ones.
            assert_eq!(
                serial.interval(n),
                parallel.interval(n),
                "{threads} threads: interval {n} diverges"
            );
            assert_eq!(serial.total(n), parallel.total(n));
        }
    }
}

#[test]
fn classification_agrees_across_paths() {
    use eleph_core::{classify, ConstantLoadDetector, Scheme};

    let (table, trace) = small_scenario(202);
    let rate_matrix = BandwidthMatrix::from_rate_trace(&trace);
    let synth = PacketSynth::new(&trace);
    let mut pcap = Vec::new();
    synth.write_pcap(0..trace.n_intervals(), &mut pcap).expect("synthesis");
    let (pkt_matrix, _) = aggregate_pcap(
        &pcap[..],
        &table,
        trace.config.interval_secs,
        trace.config.start_unix,
        trace.config.n_intervals,
    )
    .expect("aggregation");

    let spec = |m: &BandwidthMatrix| {
        classify(m, ConstantLoadDetector::new(0.8), 0.9, Scheme::LatentHeat { window: 3 })
    };
    let a = spec(&rate_matrix);
    let b = spec(&pkt_matrix);

    for n in 0..trace.n_intervals() {
        let ea: std::collections::BTreeSet<_> =
            a.elephants[n].iter().map(|&k| rate_matrix.key(k)).collect();
        let eb: std::collections::BTreeSet<_> =
            b.elephants[n].iter().map(|&k| pkt_matrix.key(k)).collect();
        // The sets may differ at the threshold boundary by quantisation;
        // allow a tiny symmetric difference.
        let sym = ea.symmetric_difference(&eb).count();
        assert!(
            sym <= 1 + ea.len() / 10,
            "interval {n}: elephant sets diverge by {sym} ({} vs {})",
            ea.len(),
            eb.len()
        );
    }
}

#[test]
fn pcap_file_round_trip_through_disk() {
    let (table, trace) = small_scenario(303);
    let synth = PacketSynth::new(&trace);

    let dir = std::env::temp_dir().join("eleph-integration");
    std::fs::create_dir_all(&dir).expect("mkdir");
    let path = dir.join("trace.pcap");
    {
        let file = std::fs::File::create(&path).expect("create");
        synth.write_pcap(0..2, std::io::BufWriter::new(file)).expect("write");
    }
    let file = std::fs::File::open(&path).expect("open");
    let (matrix, stats) = aggregate_pcap(
        std::io::BufReader::new(file),
        &table,
        trace.config.interval_secs,
        trace.config.start_unix,
        2,
    )
    .expect("aggregate");
    assert!(stats.attributed > 0);
    assert!(stats.is_conserved());
    assert!(matrix.total(0) > 0.0);
    std::fs::remove_file(&path).ok();
}
