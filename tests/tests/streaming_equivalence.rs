//! PR 4's load-bearing property: the streaming pipeline (packets →
//! attribution → interval sealing → online classification), which never
//! materializes the bandwidth matrix, produces per-interval outcomes
//! **bit-identical** to the batch path (`aggregate_pcap` →
//! `BandwidthMatrix` → `classify`) on the same capture bytes — same
//! thresholds, same elephant sets, same load sums, same statistics.
//! This is what licenses validating a configuration offline and
//! deploying it as a live monitor.

use eleph_bgp::synth::{self, SynthConfig};
use eleph_bgp::BgpTable;
use eleph_core::{classify, ConstantLoadDetector, Scheme};
use eleph_flow::{aggregate_pcap, BandwidthMatrix, KeyId};
use eleph_packet::pcap::PcapWriter;
use eleph_packet::{LinkType, PacketBuilder};
use eleph_pipeline::{Collector, PcapSource, PipelineBuilder, TraceSource};
use eleph_trace::{PacketSynth, RateTrace, WorkloadConfig};
use proptest::prelude::*;
use std::net::Ipv4Addr;

const BETA: f64 = 0.8;
const GAMMA: f64 = 0.9;

fn small_scenario(seed: u64) -> (BgpTable, RateTrace) {
    let table = synth::generate(&SynthConfig {
        n_prefixes: 2_000,
        ..SynthConfig::default()
    });
    let config = WorkloadConfig {
        n_flows: 120,
        n_intervals: 6,
        interval_secs: 20,
        link: eleph_trace::LinkSpec {
            name: "equivalence link".to_string(),
            capacity_bps: 3_000_000.0,
            target_peak_util: 0.5,
        },
        ..WorkloadConfig::small_test(seed)
    };
    let trace = RateTrace::generate(&config, &table);
    (table, trace)
}

/// Run the batch path over capture bytes.
fn batch(
    pcap: &[u8],
    table: &BgpTable,
    interval_secs: u64,
    start_unix: u64,
    n_intervals: usize,
    scheme: Scheme,
) -> (
    BandwidthMatrix,
    eleph_flow::AggregatorStats,
    eleph_core::ClassificationResult,
) {
    let (matrix, stats) =
        aggregate_pcap(pcap, table, interval_secs, start_unix, n_intervals).expect("batch path");
    let result = classify(&matrix, ConstantLoadDetector::new(BETA), GAMMA, scheme);
    (matrix, stats, result)
}

/// Run the streaming path over the same bytes.
fn streaming(
    pcap: &[u8],
    table: &BgpTable,
    interval_secs: u64,
    start_unix: u64,
    n_intervals: usize,
    scheme: Scheme,
) -> (Vec<eleph_pipeline::CollectedInterval>, eleph_pipeline::PipelineReport) {
    let collector = Collector::new();
    let mut pipeline = PipelineBuilder::new()
        .table(table)
        .interval_secs(interval_secs)
        .start_unix(start_unix)
        .n_intervals(n_intervals)
        .detector(ConstantLoadDetector::new(BETA))
        .gamma(GAMMA)
        .scheme(scheme)
        .sink(collector.sink())
        .build();
    pipeline
        .run(PcapSource::new(pcap).expect("valid pcap"))
        .expect("streaming run");
    let report = pipeline.finish().expect("streaming finish");
    (collector.take(), report)
}

/// Assert bit-identity between one batch classification and the
/// streamed outcomes over the same bytes.
fn assert_equivalent(
    matrix: &BandwidthMatrix,
    batch_stats: &eleph_flow::AggregatorStats,
    result: &eleph_core::ClassificationResult,
    outcomes: &[eleph_pipeline::CollectedInterval],
    report: &eleph_pipeline::PipelineReport,
    context: &str,
) {
    assert_eq!(outcomes.len(), result.n_intervals(), "{context}: interval count");
    assert_eq!(report.intervals, result.n_intervals(), "{context}: sealed count");
    assert_eq!(report.keys.len(), matrix.n_keys(), "{context}: key count");
    for (id, &key) in report.keys.iter().enumerate() {
        assert_eq!(key, matrix.key(id as KeyId), "{context}: key order at {id}");
    }
    for (n, got) in outcomes.iter().enumerate() {
        let o = &got.outcome;
        assert_eq!(o.interval, n, "{context}: interval index");
        assert_eq!(o.elephants, result.elephants[n], "{context}: elephants at {n}");
        assert_eq!(
            o.threshold.to_bits(),
            result.thresholds[n].to_bits(),
            "{context}: threshold at {n} ({} vs {})",
            o.threshold,
            result.thresholds[n],
        );
        assert_eq!(
            o.elephant_load.to_bits(),
            result.elephant_load[n].to_bits(),
            "{context}: elephant load at {n}"
        );
        assert_eq!(
            o.total_load.to_bits(),
            result.total_load[n].to_bits(),
            "{context}: total load at {n}"
        );
        assert_eq!(
            o.fraction().to_bits(),
            result.fraction(n).to_bits(),
            "{context}: fraction at {n}"
        );
    }
    let s = report.stats;
    assert!(s.is_conserved(), "{context}: conservation");
    assert_eq!(s.late, 0, "{context}: time-sorted capture produced late packets");
    assert_eq!(s.offered, batch_stats.offered, "{context}: offered");
    assert_eq!(s.attributed, batch_stats.attributed, "{context}: attributed");
    assert_eq!(
        s.attributed_bytes, batch_stats.attributed_bytes,
        "{context}: attributed bytes"
    );
    assert_eq!(s.unroutable, batch_stats.unroutable, "{context}: unroutable");
    assert_eq!(s.out_of_window, batch_stats.out_of_window, "{context}: out of window");
    assert_eq!(s.malformed, batch_stats.malformed, "{context}: malformed");
}

#[test]
fn streaming_matches_batch_on_synthetic_capture() {
    let (table, trace) = small_scenario(211);
    let synth = PacketSynth::new(&trace);
    let mut pcap = Vec::new();
    synth
        .write_pcap(0..trace.n_intervals(), &mut pcap)
        .expect("pcap synthesis");
    let t = trace.config.interval_secs;
    let start = trace.config.start_unix;
    let n = trace.n_intervals();
    for scheme in [
        Scheme::SingleFeature,
        Scheme::LatentHeat { window: 3 },
        Scheme::Hysteresis { enter: 1.2, exit: 0.6 },
    ] {
        let (matrix, stats, result) = batch(&pcap, &table, t, start, n, scheme);
        let (outcomes, report) = streaming(&pcap, &table, t, start, n, scheme);
        assert_equivalent(&matrix, &stats, &result, &outcomes, &report, &format!("{scheme:?}"));
    }
}

#[test]
fn trace_source_matches_batch_over_same_packets() {
    // The synthetic source yields the same packets write_pcap would
    // emit, so classifying its stream equals classifying the capture.
    let (table, trace) = small_scenario(212);
    let synth = PacketSynth::new(&trace);
    let mut pcap = Vec::new();
    synth
        .write_pcap(0..trace.n_intervals(), &mut pcap)
        .expect("pcap synthesis");
    let scheme = Scheme::LatentHeat { window: 3 };
    let (matrix, _, result) = batch(
        &pcap,
        &table,
        trace.config.interval_secs,
        trace.config.start_unix,
        trace.n_intervals(),
        scheme,
    );

    let collector = Collector::new();
    let mut pipeline = PipelineBuilder::new()
        .table(&table)
        .interval_secs(trace.config.interval_secs)
        .start_unix(trace.config.start_unix)
        .n_intervals(trace.n_intervals())
        .detector(ConstantLoadDetector::new(BETA))
        .gamma(GAMMA)
        .scheme(scheme)
        .sink(collector.sink())
        .build();
    pipeline.run(TraceSource::new(&trace)).expect("trace run");
    let report = pipeline.finish().expect("finish");
    let outcomes = collector.take();
    assert_eq!(outcomes.len(), result.n_intervals());
    assert_eq!(report.keys.len(), matrix.n_keys());
    for (n, got) in outcomes.iter().enumerate() {
        assert_eq!(got.outcome.elephants, result.elephants[n], "interval {n}");
        assert_eq!(got.outcome.threshold.to_bits(), result.thresholds[n].to_bits());
        assert_eq!(got.outcome.total_load.to_bits(), result.total_load[n].to_bits());
    }
}

#[test]
fn capture_gaps_and_trailing_silence_match_batch() {
    // Hand-built capture: traffic in intervals 0 and 3 of a 6-interval
    // window — a mid-stream gap the pipeline must seal from timestamps
    // alone, plus trailing empty intervals sealed at finish.
    let table = synth::generate(&SynthConfig {
        n_prefixes: 500,
        ..SynthConfig::default()
    });
    let dsts: Vec<Ipv4Addr> = table.iter().map(|e| e.prefix.network()).collect();
    let mut pcap = Vec::new();
    let mut writer = PcapWriter::new(&mut pcap, LinkType::RawIp.code()).unwrap();
    for i in 0..60u64 {
        let interval = if i < 30 { 0 } else { 3 };
        let ts_ns = (interval * 20 + (i % 20)) * 1_000_000_000;
        let packet = PacketBuilder::udp()
            .src(Ipv4Addr::new(198, 18, 0, 1), 9)
            .dst(dsts[(i as usize * 7) % dsts.len()], 53)
            .payload_len((i * 37 % 900) as usize)
            .build_ipv4();
        writer.write_record(ts_ns, packet.len() as u32, &packet).unwrap();
        if i % 13 == 0 {
            // Malformed record: counted, never binned, on both paths.
            writer.write_record(ts_ns, 4, &[0xDE, 0xAD, 0xBE, 0xEF]).unwrap();
        }
    }
    writer.finish().unwrap();

    for scheme in [
        Scheme::SingleFeature,
        Scheme::LatentHeat { window: 2 },
        Scheme::Hysteresis { enter: 1.1, exit: 0.5 },
    ] {
        let (matrix, stats, result) = batch(&pcap, &table, 20, 0, 6, scheme);
        let (outcomes, report) = streaming(&pcap, &table, 20, 0, 6, scheme);
        assert_equivalent(
            &matrix,
            &stats,
            &result,
            &outcomes,
            &report,
            &format!("gap {scheme:?}"),
        );
        // The degenerate intervals really are degenerate on both sides.
        for n in [1, 2, 4, 5] {
            assert!(outcomes[n].outcome.elephants.is_empty(), "{scheme:?} gap {n}");
            assert_eq!(outcomes[n].outcome.fraction(), 0.0, "{scheme:?} gap {n}");
        }
    }
}

/// A compact random packet: which table route, interval, jitter within
/// the interval, and payload size.
#[derive(Debug, Clone, Copy)]
struct RandomPacket {
    route: usize,
    interval: u64,
    offset_ns: u64,
    payload: u16,
    unroutable: bool,
}

fn arb_packet(n_intervals: u64) -> impl Strategy<Value = RandomPacket> {
    (
        0usize..400,
        0..n_intervals + 2, // some past the window
        0u64..20_000_000_000,
        0u16..1200,
        0u8..20, // 1-in-20 packets unroutable
    )
        .prop_map(|(route, interval, offset_ns, payload, unroutable)| RandomPacket {
            route,
            interval,
            offset_ns,
            payload,
            unroutable: unroutable == 0,
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// The headline property: arbitrary time-sorted captures — mixed
    /// prefixes, unroutable destinations, out-of-window records,
    /// malformed records, idle intervals — classify bit-identically
    /// through the streaming pipeline and the batch path, under every
    /// scheme.
    #[test]
    fn streaming_equals_batch_on_random_captures(
        packets in prop::collection::vec(arb_packet(5), 1..250),
        malformed_every in 5usize..40,
        window in 1usize..4,
        scheme_pick in 0u8..3,
    ) {
        let table = synth::generate(&SynthConfig {
            n_prefixes: 400,
            ..SynthConfig::default()
        });
        let dsts: Vec<Ipv4Addr> = table.iter().map(|e| e.prefix.network()).collect();

        // Time-sort (the streaming contract) and serialize.
        let mut packets = packets;
        packets.sort_by_key(|p| p.interval * 20_000_000_000 + p.offset_ns);
        let mut pcap = Vec::new();
        let mut writer = PcapWriter::new(&mut pcap, LinkType::RawIp.code()).unwrap();
        for (i, p) in packets.iter().enumerate() {
            let ts_ns = p.interval * 20_000_000_000 + p.offset_ns;
            let dst = if p.unroutable {
                Ipv4Addr::new(203, 0, 113, 1) // TEST-NET-3: never in the table
            } else {
                dsts[p.route % dsts.len()]
            };
            let packet = PacketBuilder::udp()
                .src(Ipv4Addr::new(198, 18, 0, 1), 9)
                .dst(dst, 53)
                .payload_len(p.payload as usize)
                .build_ipv4();
            writer.write_record(ts_ns, packet.len() as u32, &packet).unwrap();
            if i % malformed_every == 0 {
                writer.write_record(ts_ns, 3, &[0xBA, 0xAD, 0x00]).unwrap();
            }
        }
        writer.finish().unwrap();

        let scheme = match scheme_pick {
            0 => Scheme::SingleFeature,
            1 => Scheme::LatentHeat { window },
            _ => Scheme::Hysteresis { enter: 1.2, exit: 0.6 },
        };
        let (matrix, stats, result) = batch(&pcap, &table, 20, 0, 5, scheme);
        let (outcomes, report) = streaming(&pcap, &table, 20, 0, 5, scheme);
        assert_equivalent(
            &matrix,
            &stats,
            &result,
            &outcomes,
            &report,
            &format!("random {scheme:?}"),
        );
    }
}
