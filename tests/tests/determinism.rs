//! Whole-stack determinism: every experiment is a pure function of its
//! seed, and different seeds produce different traces but the same
//! qualitative results.

use eleph_report::{run, DetectorKind, Scenario, SchemeSpec};

#[test]
fn same_seed_same_classification() {
    let build = || {
        let scenario = Scenario::west(5).scaled(0.05);
        let data = scenario.build();
        run(&data.matrix, SchemeSpec::paper(DetectorKind::ConstantLoad))
    };
    let a = build();
    let b = build();
    assert_eq!(a.thresholds, b.thresholds);
    assert_eq!(a.elephants, b.elephants);
    assert_eq!(a.elephant_load, b.elephant_load);
}

#[test]
fn different_seed_different_trace_same_shape() {
    let result = |seed: u64| {
        let scenario = Scenario::west(seed).scaled(0.05);
        let data = scenario.build();
        run(&data.matrix, SchemeSpec::paper(DetectorKind::ConstantLoad))
    };
    let a = result(1);
    let b = result(2);
    assert_ne!(a.elephants, b.elephants, "seeds must matter");
    // But the qualitative outcome is seed-independent.
    let fa = a.mean_fraction();
    let fb = b.mean_fraction();
    assert!((fa - fb).abs() < 0.15, "fractions {fa} vs {fb}");
    let ratio = a.mean_count() / b.mean_count().max(1.0);
    assert!((0.5..2.0).contains(&ratio), "counts {} vs {}", a.mean_count(), b.mean_count());
}

#[test]
fn scenario_builds_are_deterministic() {
    let scenario = Scenario::east(9).scaled(0.05);
    let a = scenario.build();
    let b = scenario.build();
    assert_eq!(a.table.len(), b.table.len());
    assert_eq!(a.matrix.n_intervals(), b.matrix.n_intervals());
    for n in 0..a.matrix.n_intervals() {
        assert_eq!(a.matrix.interval(n), b.matrix.interval(n), "interval {n}");
    }
}
