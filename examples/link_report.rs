//! End-to-end packet path: synthesize a pcap, stream it back through
//! the online pipeline, and print a per-interval link report.
//!
//! Unlike the figure experiments (which run at rate level for speed),
//! this exercises the full packet machinery: pcap file I/O, IPv4/TCP
//! parsing with checksums, longest-prefix-match attribution, streaming
//! interval sealing and online classification — plus optional fault
//! injection between "capture" and "analysis", in the spirit of
//! smoltcp's example flags:
//!
//! ```sh
//! cargo run -p eleph-tests --example link_report
//! cargo run -p eleph-tests --example link_report -- --drop 0.05 --corrupt 0.02
//! ```
//!
//! Because the faults mutate *raw* packet bytes, the stream goes in
//! through [`eleph_pipeline::Pipeline::observe_raw`], which re-parses
//! each packet (including the IPv4 header checksum) so injected
//! corruption is counted as malformed instead of being attributed to a
//! possibly-wrong prefix.

use eleph_bgp::synth::{self, SynthConfig};
use eleph_core::{ConstantLoadDetector, Scheme, PAPER_GAMMA};
use eleph_packet::pcap::PcapReader;
use eleph_packet::LinkType;
use eleph_pipeline::{Collector, PipelineBuilder};
use eleph_trace::{FaultConfig, FaultInjector, PacketSynth, RateTrace, WorkloadConfig};

fn main() {
    let (drop_p, corrupt_p) = parse_args();

    // A small link so the packet volume stays example-sized.
    let table = synth::generate(&SynthConfig {
        n_prefixes: 3_000,
        ..SynthConfig::default()
    });
    let workload = WorkloadConfig {
        n_flows: 150,
        n_intervals: 12,
        interval_secs: 30,
        link: eleph_trace::LinkSpec {
            name: "demo link".to_string(),
            capacity_bps: 5_000_000.0,
            target_peak_util: 0.6,
        },
        ..WorkloadConfig::small_test(3)
    };
    let trace = RateTrace::generate(&workload, &table);

    // --- 1. Write the trace as a pcap file (in memory here; pass a File
    //        to target disk). -------------------------------------------
    let synth = PacketSynth::new(&trace);
    let mut pcap_bytes = Vec::new();
    let records = synth
        .write_pcap(0..trace.n_intervals(), &mut pcap_bytes)
        .expect("pcap synthesis");
    println!(
        "synthesized {records} packets ({:.1} MiB of pcap)",
        pcap_bytes.len() as f64 / (1024.0 * 1024.0)
    );

    // --- 2. Stream it back through the online pipeline, with faults
    //        injected between "capture" and "analysis". ------------------
    let mut injector = FaultInjector::new(FaultConfig {
        drop_prob: drop_p,
        corrupt_prob: corrupt_p,
        truncate_prob: 0.0,
        seed: 99,
    });
    let collector = Collector::new();
    let mut pipeline = PipelineBuilder::new()
        .table(&table)
        .interval_secs(workload.interval_secs)
        .start_unix(workload.start_unix)
        .n_intervals(workload.n_intervals)
        .detector(ConstantLoadDetector::new(0.8))
        .gamma(PAPER_GAMMA)
        .scheme(Scheme::LatentHeat { window: 4 })
        .sink(collector.sink())
        .build();

    let mut reader = PcapReader::new(&pcap_bytes[..]).expect("valid pcap header");
    let link = LinkType::from_code(reader.header().linktype).expect("known linktype");
    while let Some(record) = reader.next_record().expect("records parse") {
        let mut data = record.data.to_vec();
        if injector.apply(&mut data) == eleph_trace::FaultAction::Dropped {
            continue;
        }
        pipeline
            .observe_raw(link, &data, record.ts_ns)
            .expect("sinks accept intervals");
    }
    let fstats = injector.stats();
    let report = pipeline.finish().expect("pipeline finish");
    let stats = report.stats;
    println!(
        "pipeline accounting: {} offered, {} attributed, {} malformed, {} unroutable (conserved: {})",
        stats.offered,
        stats.attributed,
        stats.malformed,
        stats.unroutable,
        stats.is_conserved(),
    );
    if fstats.dropped + fstats.corrupted > 0 {
        println!(
            "fault injector: {} dropped, {} corrupted of {} seen",
            fstats.dropped, fstats.corrupted, fstats.seen
        );
    }

    // --- 3. Report per interval — classification already happened
    //        online, interval by interval, as the stream crossed each
    //        boundary. ---------------------------------------------------
    println!(
        "\n{:<10} {:>10} {:>11} {:>13}",
        "interval", "load", "elephants", "eleph. share"
    );
    for (n, sealed) in collector.take().iter().enumerate() {
        let o = &sealed.outcome;
        println!(
            "{:<10} {:>7.2} Mb/s {:>9} {:>12.1}%",
            workload.interval_label(n),
            o.total_load / 1e6,
            o.elephants.len(),
            100.0 * o.fraction(),
        );
    }
}

fn parse_args() -> (f64, f64) {
    let args: Vec<String> = std::env::args().collect();
    let mut drop_p = 0.0;
    let mut corrupt_p = 0.0;
    let mut i = 1;
    while i < args.len() {
        match args[i].as_str() {
            "--drop" if i + 1 < args.len() => {
                drop_p = args[i + 1].parse().expect("--drop takes a probability");
                i += 2;
            }
            "--corrupt" if i + 1 < args.len() => {
                corrupt_p = args[i + 1].parse().expect("--corrupt takes a probability");
                i += 2;
            }
            other => panic!("unknown argument {other}; supported: --drop P --corrupt P"),
        }
    }
    (drop_p, corrupt_p)
}
