//! The paper's motivating application: elephant-aware load balancing.
//!
//! Two paths leave a PoP. A traffic engineering controller pins the
//! *elephant* flows to the secondary path and leaves the mice on the
//! primary. Every time the elephant set changes, flows must be re-routed
//! (route-map updates, possible packet reordering) — so a classification
//! scheme is only useful if its elephant set is stable.
//!
//! This example compares the single-feature and latent-heat schemes on
//! exactly that criterion: re-routing churn vs load-balance quality.
//!
//! ```sh
//! cargo run -p eleph-examples --bin traffic_engineering
//! ```

use eleph_bgp::synth::{self, SynthConfig};
use eleph_core::holding::churn;
use eleph_core::{classify, ConstantLoadDetector, Scheme, PAPER_GAMMA, PAPER_LATENT_WINDOW};
use eleph_flow::BandwidthMatrix;
use eleph_trace::{RateTrace, WorkloadConfig};

fn main() {
    let table = synth::generate(&SynthConfig {
        n_prefixes: 8_000,
        ..SynthConfig::default()
    });
    let workload = WorkloadConfig {
        n_flows: 2_000,
        n_intervals: 144, // 12 h of 5-min slots
        interval_secs: 300,
        ..WorkloadConfig::small_test(11)
    };
    let trace = RateTrace::generate(&workload, &table);
    let matrix = BandwidthMatrix::from_rate_trace(&trace);

    println!("two-path TE simulation: elephants pinned to the secondary path\n");
    println!(
        "{:<22} {:>14} {:>16} {:>18} {:>14}",
        "scheme", "mean elephants", "secondary share", "reroutes/interval", "peak reroutes"
    );

    for (name, scheme) in [
        ("single-feature", Scheme::SingleFeature),
        (
            "latent-heat (w=12)",
            Scheme::LatentHeat {
                window: PAPER_LATENT_WINDOW,
            },
        ),
    ] {
        let result = classify(
            &matrix,
            ConstantLoadDetector::new(0.8),
            PAPER_GAMMA,
            scheme,
        );

        // Load balance quality: fraction of bytes on the secondary path.
        let secondary_share = result.mean_fraction();

        // Churn: every flow entering or leaving the elephant class forces
        // a route update.
        let churn_series = churn(&result);
        // Skip the first latent-heat window: the classifier is warming up.
        let steady = &churn_series[PAPER_LATENT_WINDOW..];
        let mean_churn = steady.iter().sum::<usize>() as f64 / steady.len() as f64;
        let peak_churn = steady.iter().copied().max().unwrap_or(0);

        println!(
            "{:<22} {:>14.1} {:>15.1}% {:>18.2} {:>14}",
            name,
            result.mean_count(),
            100.0 * secondary_share,
            mean_churn,
            peak_churn,
        );
    }

    println!(
        "\nReading: both schemes steer a comparable share of traffic to the \
         secondary path,\nbut the single-feature scheme pays for it with far \
         more route updates per interval —\nexactly the paper's argument for \
         the latent-heat definition."
    );
}
