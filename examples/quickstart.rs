//! Quickstart: the 60-second tour of the library.
//!
//! Builds a small synthetic link (routing table + traffic), runs the
//! paper's two-feature "latent heat" classification, and prints what the
//! elephant class looks like.
//!
//! ```sh
//! cargo run -p eleph-examples --bin quickstart
//! ```

use eleph_bgp::synth::{self, SynthConfig};
use eleph_core::{classify, ConstantLoadDetector, Scheme, PAPER_GAMMA, PAPER_LATENT_WINDOW};
use eleph_flow::BandwidthMatrix;
use eleph_trace::{RateTrace, WorkloadConfig};

fn main() {
    // 1. A routing table: the flow key space. (Real deployments would
    //    load a RIB dump via eleph_bgp::dump::read_dump.)
    let table = synth::generate(&SynthConfig {
        n_prefixes: 5_000,
        ..SynthConfig::default()
    });
    println!("routing table: {} prefixes", table.len());

    // 2. A traffic trace. small_test() is a 10 Mb/s link with 400 flows
    //    over two hours of 1-minute intervals.
    let workload = WorkloadConfig::small_test(7);
    let trace = RateTrace::generate(&workload, &table);
    let matrix = BandwidthMatrix::from_rate_trace(&trace);
    println!(
        "trace: {} intervals x {} flows, mean utilization {:.1}%",
        matrix.n_intervals(),
        matrix.n_keys(),
        100.0 * trace.utilization().iter().sum::<f64>() / trace.n_intervals() as f64,
    );

    // 3. Classify with the paper's headline scheme: a 0.8-constant-load
    //    threshold, EWMA-smoothed with gamma = 0.9, and the latent-heat
    //    two-feature rule.
    let result = classify(
        &matrix,
        ConstantLoadDetector::new(0.8),
        PAPER_GAMMA,
        Scheme::LatentHeat {
            window: PAPER_LATENT_WINDOW,
        },
    );

    // 4. What did we get?
    let last = matrix.n_intervals() - 1;
    println!(
        "\ninterval {last}: {} elephants of {} active flows carry {:.0}% of traffic",
        result.count(last),
        matrix.active(last),
        100.0 * result.fraction(last),
    );
    println!("threshold T̄ = {:.1} kb/s", result.thresholds[last] / 1e3);

    println!("\ntop elephants in the final interval:");
    let mut elephants: Vec<_> = result.elephants[last]
        .iter()
        .map(|&key| (matrix.rate(last, key), matrix.key(key)))
        .collect();
    elephants.sort_by(|a, b| b.0.partial_cmp(&a.0).expect("rates are finite"));
    for (rate, prefix) in elephants.iter().take(10) {
        println!("  {prefix:<20} {:>10.1} kb/s", rate / 1e3);
    }

    println!(
        "\nacross the whole trace: mean {:.0} elephants/interval, mean load share {:.2}",
        result.mean_count(),
        result.mean_fraction(),
    );
}
