//! Quickstart: the 60-second tour of the library, built around the
//! streaming pipeline.
//!
//! A small synthetic link (routing table + traffic) streams through the
//! [`eleph_pipeline::PipelineBuilder`]: packets are attributed to BGP
//! prefixes, sealed into measurement intervals, and classified online
//! with the paper's two-feature "latent heat" scheme — one interval at
//! a time, never materializing the full bandwidth matrix. Exactly what
//! a live monitor on a backbone link would run.
//!
//! ```sh
//! cargo run -p eleph-tests --example quickstart
//! ```

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

use eleph_bgp::synth::{self, SynthConfig};
use eleph_core::{ConstantLoadDetector, Scheme, PAPER_GAMMA, PAPER_LATENT_WINDOW};
use eleph_pipeline::{CallbackSink, Collector, PipelineBuilder, TraceSource};
use eleph_trace::{RateTrace, WorkloadConfig};

fn main() {
    // 1. A routing table: the flow key space. (Real deployments would
    //    load a RIB dump via eleph_bgp::dump::read_dump.)
    let table = synth::generate(&SynthConfig {
        n_prefixes: 5_000,
        ..SynthConfig::default()
    });
    println!("routing table: {} prefixes", table.len());

    // 2. A traffic source. small_test() is a 10 Mb/s link with 1-minute
    //    intervals; TraceSource synthesizes its packets one interval at
    //    a time, so memory stays bounded however long the trace runs.
    let workload = WorkloadConfig {
        n_flows: 300,
        n_intervals: 48,
        ..WorkloadConfig::small_test(7)
    };
    let trace = RateTrace::generate(&workload, &table);

    // 3. The pipeline: packet source → frozen-LPM attribution →
    //    interval sealing → online classification → sinks. Here the
    //    paper's headline configuration: 0.8-constant-load threshold,
    //    EWMA gamma = 0.9, latent heat over a 12-slot window. Two sinks
    //    fan out: an in-memory collector for the report below, and a
    //    callback that fires *the moment* an interval seals — a live
    //    monitor's early-alert hook, impossible in batch mode.
    let collector = Collector::new();
    let busy_intervals = Arc::new(AtomicUsize::new(0));
    let busy_hook = Arc::clone(&busy_intervals);
    let mut pipeline = PipelineBuilder::new()
        .table(&table)
        .interval_secs(workload.interval_secs)
        .start_unix(workload.start_unix)
        .n_intervals(workload.n_intervals)
        .detector(ConstantLoadDetector::new(0.8))
        .gamma(PAPER_GAMMA)
        .scheme(Scheme::LatentHeat {
            window: PAPER_LATENT_WINDOW,
        })
        .sink(collector.sink())
        .sink(CallbackSink::new(move |sealed| {
            // React mid-capture: pin these flows, rebalance, page…
            if sealed.outcome.fraction() > 0.7 {
                busy_hook.fetch_add(1, Ordering::Relaxed);
            }
        }))
        .build();
    pipeline.run(TraceSource::new(&trace)).expect("streaming run");
    let report = pipeline.finish().expect("pipeline finish");

    println!(
        "streamed {} packets ({:.1} MiB attributed) into {} intervals, {} prefixes seen",
        report.stats.offered,
        report.stats.attributed_bytes as f64 / (1024.0 * 1024.0),
        report.intervals,
        report.keys.len(),
    );

    // 4. What did we get? The collector holds one outcome per sealed
    //    interval, in order — the same numbers the batch classifier
    //    would produce (bit-identical; see the streaming-equivalence
    //    tests).
    let outcomes = collector.take();
    let last = outcomes.last().expect("at least one interval");
    println!(
        "\nfinal interval: {} elephants carry {:.0}% of traffic (threshold {:.1} kb/s)",
        last.outcome.elephants.len(),
        100.0 * last.outcome.fraction(),
        last.outcome.threshold / 1e3,
    );
    println!("elephant prefixes in the final interval:");
    for &key in last.outcome.elephants.iter().take(10) {
        println!("  {}", report.keys[key as usize]);
    }

    let mean_count = outcomes.iter().map(|o| o.outcome.elephants.len()).sum::<usize>() as f64
        / outcomes.len() as f64;
    let mean_fraction =
        outcomes.iter().map(|o| o.outcome.fraction()).sum::<f64>() / outcomes.len() as f64;
    println!(
        "\nacross the stream: mean {mean_count:.0} elephants/interval, mean load share \
         {mean_fraction:.2}; {} intervals tripped the >70% early alert",
        busy_intervals.load(Ordering::Relaxed),
    );

    // 5. Crash safety. A long-horizon monitor cannot afford to lose its
    //    latent-heat standing to a restart, so the pipeline serializes
    //    its full recovery frontier — classifier window, EWMA threshold
    //    state, key allocation, the open interval — into a checksummed
    //    snapshot, and a new process resumes from it bit-identically.
    //    (`eleph run --checkpoint-dir DIR --resume` does this across
    //    real kills; tests/tests/checkpoint_restore.rs pins the full
    //    kill/resume matrix.)
    let monitor = || {
        PipelineBuilder::new()
            .table(&table)
            .interval_secs(workload.interval_secs)
            .start_unix(workload.start_unix)
            .n_intervals(workload.n_intervals)
            .detector(ConstantLoadDetector::new(0.8))
            .gamma(PAPER_GAMMA)
            .scheme(Scheme::LatentHeat {
                window: PAPER_LATENT_WINDOW,
            })
    };
    let mut first_process = monitor().build();
    first_process
        .run(TraceSource::window(&trace, 0..24))
        .expect("first half");
    let mut snapshot = Vec::new();
    first_process.checkpoint(&mut snapshot).expect("snapshot");
    drop(first_process); // …the monitor dies here…

    let resumed_outcomes = eleph_pipeline::Collector::new();
    let mut second_process = monitor()
        .sink(resumed_outcomes.sink())
        .resume_from(&mut snapshot.as_slice())
        .expect("restore snapshot");
    second_process
        .run(TraceSource::window(&trace, 24..48))
        .expect("second half");
    second_process.finish().expect("resumed finish");
    let resumed_last = resumed_outcomes.take().pop().expect("final interval");
    let final_interval = outcomes.last().expect("final interval");
    assert_eq!(
        resumed_last.outcome.threshold.to_bits(),
        final_interval.outcome.threshold.to_bits(),
        "resumed threshold must match the uninterrupted run to the last bit",
    );
    assert_eq!(resumed_last.outcome.elephants, final_interval.outcome.elephants);
    println!(
        "\ncheckpoint/restore: stopped after interval 24 ({}-byte snapshot), resumed, \
         final interval matches the uninterrupted run bit-for-bit",
        snapshot.len(),
    );

    // 6. Live routing. Real BGP tables churn while the monitor runs, so
    //    the pipeline can also sit on a LiveBgpTable and replay a timed
    //    update schedule mid-stream: each batch is applied — an
    //    epoch-swapped delta, no refreeze, lookups never stall —
    //    immediately before the first packet at or past its timestamp.
    //    A re-announced prefix gets a fresh RouteId and therefore a
    //    fresh flow key; the withdrawn key's history is never rewritten,
    //    it just drains out of the latent-heat window. (`eleph run
    //    --rib-updates FILE` is this exact path; `eleph churn` generates
    //    schedules.)
    let live = eleph_bgp::LiveBgpTable::from_table(&table);
    let schedule = eleph_trace::generate_churn(
        &table,
        &eleph_trace::ChurnConfig {
            seed: 7,
            scenarios: vec![eleph_trace::ChurnScenario::WithdrawReannounceStorm {
                at_unix: workload.start_unix + 10 * workload.interval_secs,
                count: 200,
                hold_secs: 2 * workload.interval_secs,
            }],
        },
    );
    let mut churned = PipelineBuilder::new()
        .live(&live)
        .interval_secs(workload.interval_secs)
        .start_unix(workload.start_unix)
        .n_intervals(workload.n_intervals)
        .detector(ConstantLoadDetector::new(0.8))
        .gamma(PAPER_GAMMA)
        .scheme(Scheme::LatentHeat {
            window: PAPER_LATENT_WINDOW,
        })
        .route_updates(schedule)
        .build();
    churned.run(TraceSource::new(&trace)).expect("churned run");
    let churned_report = churned.finish().expect("churned finish");
    println!(
        "\nlive routing: {} update batches applied mid-stream (table generation {}), \
         {} flow keys vs {} on the frozen table — re-announced prefixes live on under fresh keys",
        churned_report.route_updates_applied,
        churned_report.generation,
        churned_report.keys.len(),
        report.keys.len(),
    );
    assert!(churned_report.stats.is_conserved());

    // 7. Multi-core. `.shards(n)` partitions the online path by flow
    //    key across n worker threads — per-shard byte rows and
    //    classifier partitions, merged at every seal in ascending key
    //    order — so the output is bit-identical to the serial path at
    //    any shard count. Sharding is a throughput knob, never a
    //    measurement change; checkpoints don't record the shard count,
    //    so a snapshot taken at one count resumes at any other.
    //    (`eleph run --shards N` is this path from the CLI.)
    let sharded_collector = Collector::new();
    let mut sharded = monitor().shards(4).sink(sharded_collector.sink()).build();
    sharded.run(TraceSource::new(&trace)).expect("sharded run");
    sharded.finish().expect("sharded finish");
    let sharded_outcomes = sharded_collector.take();
    assert_eq!(sharded_outcomes.len(), outcomes.len());
    for (s, w) in sharded_outcomes.iter().zip(&outcomes) {
        assert_eq!(
            s.outcome.threshold.to_bits(),
            w.outcome.threshold.to_bits(),
            "sharded threshold must match serial to the last bit",
        );
        assert_eq!(s.outcome.elephants, w.outcome.elephants);
    }
    println!(
        "\nsharded: 4 worker shards classified all {} intervals bit-identically to serial",
        sharded_outcomes.len(),
    );

    // 8. Approximate state. When the key space outgrows a dense
    //    per-key row, `.state_backend(..)` swaps it for a fixed-budget
    //    sketch — here Space-Saving under 1 MiB — while key
    //    attribution, interval geometry, and the whole detection stack
    //    stay exact. The exact run above doubles as the oracle: compare
    //    the elephant sets interval by interval. With a budget this
    //    generous the sketch holds every key exactly; `eleph sketch`
    //    sweeps tighter budgets and reports the accuracy frontier.
    //    (`eleph run --state spacesaving --state-budget 1048576` is
    //    this path from the CLI.)
    let sketched_collector = Collector::new();
    let mut sketched = monitor()
        .state_backend(eleph_pipeline::StateBackendConfig::SpaceSaving {
            budget_bytes: 1 << 20,
        })
        .sink(sketched_collector.sink())
        .build();
    sketched.run(TraceSource::new(&trace)).expect("sketched run");
    let sketched_report = sketched.finish().expect("sketched finish");
    let sketched_outcomes = sketched_collector.take();
    let agree = sketched_outcomes
        .iter()
        .zip(&outcomes)
        .filter(|(s, w)| s.outcome.elephants == w.outcome.elephants)
        .count();
    println!(
        "\nsketch backend: {} ({} bytes) tracked {} keys; elephant sets match the exact \
         oracle in {agree}/{} intervals",
        sketched_report.state_backend,
        sketched_report.state_bytes,
        sketched_report.distinct_keys,
        sketched_outcomes.len(),
    );
    assert_eq!(agree, sketched_outcomes.len());
}
