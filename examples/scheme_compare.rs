//! Side-by-side comparison of threshold detectors on the same workload.
//!
//! Runs the paper's two detectors (aest, 0.8-constant-load) and the two
//! baselines (top-N, 95th percentile) under both classification schemes,
//! and prints the metrics that matter for traffic engineering: how many
//! elephants, how much traffic they carry, and how stable the class is.
//!
//! ```sh
//! cargo run --release -p eleph-examples --bin scheme_compare
//! ```

use eleph_bgp::synth::{self, SynthConfig};
use eleph_core::holding::{self, churn};
use eleph_core::{
    classify, AestDetector, ConstantLoadDetector, PercentileDetector, Scheme, ThresholdDetector,
    TopNDetector, PAPER_GAMMA, PAPER_LATENT_WINDOW,
};
use eleph_flow::{busiest_window, BandwidthMatrix};
use eleph_trace::{RateTrace, WorkloadConfig};

fn main() {
    // A mid-sized workload: big enough for aest to see the tail.
    let table = synth::generate(&SynthConfig {
        n_prefixes: 30_000,
        ..SynthConfig::default()
    });
    let workload = WorkloadConfig {
        n_flows: 8_000,
        n_intervals: 144,
        interval_secs: 300,
        link: eleph_trace::LinkSpec::oc12("comparison OC-12", 0.5),
        profile: eleph_trace::DiurnalProfile::west_coast(),
        tz_offset_secs: -7 * 3600,
        heavy_rate_floor: 400_000.0,
        mouse_log_mean: (15_000f64).ln(),
        ..WorkloadConfig::small_test(23)
    };
    let trace = RateTrace::generate(&workload, &table);
    let matrix = BandwidthMatrix::from_rate_trace(&trace);
    let busy = busiest_window(matrix.totals(), 60).expect("window fits");

    println!(
        "workload: {} flows, {} intervals of {}s, busy period {:?}\n",
        matrix.n_keys(),
        matrix.n_intervals(),
        workload.interval_secs,
        busy,
    );
    println!(
        "{:<28} {:>10} {:>10} {:>12} {:>12} {:>10}",
        "configuration", "elephants", "load", "holding", "1-interval", "churn"
    );

    let detectors: Vec<Box<dyn Fn() -> Box<dyn ThresholdDetector>>> = vec![
        Box::new(|| Box::new(AestDetector::new())),
        Box::new(|| Box::new(ConstantLoadDetector::new(0.8))),
        Box::new(|| Box::new(TopNDetector { n: 150 })),
        Box::new(|| Box::new(PercentileDetector { q: 0.95 })),
    ];

    for make in &detectors {
        for (scheme_name, scheme) in [
            ("single", Scheme::SingleFeature),
            (
                "latent-heat",
                Scheme::LatentHeat {
                    window: PAPER_LATENT_WINDOW,
                },
            ),
        ] {
            let detector = make();
            let label = format!("{} / {}", detector.name(), scheme_name);
            // `Box<dyn ThresholdDetector>` implements the trait itself,
            // so runtime-chosen detectors feed `classify` directly.
            let result = classify(&matrix, detector, PAPER_GAMMA, scheme);
            let h = holding::analyze(&result, busy.clone(), workload.interval_secs);
            let churn_series = churn(&result);
            let mean_churn = churn_series[PAPER_LATENT_WINDOW..]
                .iter()
                .sum::<usize>() as f64
                / (churn_series.len() - PAPER_LATENT_WINDOW) as f64;
            println!(
                "{:<28} {:>10.0} {:>9.1}% {:>8.0} min {:>12} {:>10.1}",
                label,
                result.mean_count(),
                100.0 * result.mean_fraction(),
                h.mean_avg_minutes(),
                h.single_interval_flows,
                mean_churn,
            );
        }
    }

    println!(
        "\nReading: latent heat trades a slightly smaller elephant load for \
         far longer holding\ntimes and an order of magnitude fewer \
         single-interval elephants, on every detector."
    );
}
