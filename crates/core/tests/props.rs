//! Property tests for the classification schemes: the sliding-sum
//! latent-heat implementation must match the paper's formula computed
//! naively, and the structural invariants of a classification must hold
//! on arbitrary bandwidth matrices.

use eleph_core::{
    classify, holding, ConstantLoadDetector, PercentileDetector, Scheme, ThresholdDetector,
    TopNDetector,
};
use eleph_flow::BandwidthMatrix;
use eleph_net::Prefix;
use proptest::prelude::*;

/// A fixed-threshold detector isolates classifier logic from detector
/// logic.
#[derive(Clone, Copy)]
struct Fixed(f64);

impl ThresholdDetector for Fixed {
    fn detect(&self, _values: &[f64]) -> Option<f64> {
        Some(self.0)
    }
    fn name(&self) -> String {
        "fixed".to_string()
    }
}

fn keys(n: usize) -> Vec<Prefix> {
    (0..n)
        .map(|i| {
            format!("10.{}.{}.0/24", i / 256, i % 256)
                .parse()
                .expect("valid prefix")
        })
        .collect()
}

/// Random dense rate matrices: up to 12 keys × up to 20 intervals.
fn arb_rows() -> impl Strategy<Value = Vec<Vec<f64>>> {
    (1usize..12, 1usize..20).prop_flat_map(|(nk, ni)| {
        prop::collection::vec(
            prop::collection::vec(
                prop_oneof![3 => Just(0.0), 7 => 1.0..1000.0f64],
                nk,
            ),
            ni,
        )
    })
}

fn matrix(rows: &[Vec<f64>]) -> BandwidthMatrix {
    BandwidthMatrix::from_dense(60, 0, keys(rows[0].len()), rows)
}

proptest! {
    #[test]
    fn single_feature_matches_oracle(rows in arb_rows(), threshold in 0.0..1200.0f64) {
        let m = matrix(&rows);
        let r = classify(&m, Fixed(threshold), 0.0, Scheme::SingleFeature);
        for (n, row) in rows.iter().enumerate() {
            for (i, &rate) in row.iter().enumerate() {
                let expect = rate > threshold;
                // f32 storage rounds rates; tolerate boundary flips only
                // when the rate is within f32 epsilon of the threshold.
                let got = r.is_elephant(n, i as u32);
                if (rate - threshold).abs() > 0.01 {
                    prop_assert_eq!(got, expect, "interval {} key {}: rate {}", n, i, rate);
                }
            }
        }
    }

    #[test]
    fn latent_heat_matches_naive_formula(rows in arb_rows(), threshold in 0.0..1200.0f64, window in 1usize..6) {
        let m = matrix(&rows);
        let r = classify(&m, Fixed(threshold), 0.0, Scheme::LatentHeat { window });
        for n in 0..rows.len() {
            let lo = n.saturating_sub(window - 1);
            for i in 0..rows[0].len() {
                let lh: f64 = (lo..=n).map(|j| m.rate(j, i as u32) - threshold).sum();
                if lh.abs() > 0.01 {
                    prop_assert_eq!(
                        r.is_elephant(n, i as u32),
                        lh > 0.0,
                        "interval {} key {}: LH {}",
                        n, i, lh
                    );
                }
            }
        }
    }

    #[test]
    fn latent_heat_window_one_equals_single_feature(rows in arb_rows(), threshold in 0.0..1200.0f64) {
        let m = matrix(&rows);
        let single = classify(&m, Fixed(threshold), 0.0, Scheme::SingleFeature);
        let lh1 = classify(&m, Fixed(threshold), 0.0, Scheme::LatentHeat { window: 1 });
        prop_assert_eq!(single.elephants, lh1.elephants);
    }

    #[test]
    fn raising_threshold_never_adds_elephants(rows in arb_rows(), t in 0.0..500.0f64, bump in 1.0..500.0f64) {
        let m = matrix(&rows);
        let low = classify(&m, Fixed(t), 0.0, Scheme::SingleFeature);
        let high = classify(&m, Fixed(t + bump), 0.0, Scheme::SingleFeature);
        for n in 0..rows.len() {
            for key in &high.elephants[n] {
                prop_assert!(
                    low.is_elephant(n, *key),
                    "key {} elephant at higher threshold only", key
                );
            }
        }
    }

    #[test]
    fn classification_invariants(rows in arb_rows(), threshold in 0.0..1200.0f64, window in 1usize..6, gamma in 0.0..0.99f64) {
        let m = matrix(&rows);
        for scheme in [Scheme::SingleFeature, Scheme::LatentHeat { window }] {
            let r = classify(&m, Fixed(threshold), gamma, scheme);
            prop_assert_eq!(r.n_intervals(), rows.len());
            for n in 0..rows.len() {
                // Sorted, unique elephant ids within the key space.
                let e = &r.elephants[n];
                prop_assert!(e.windows(2).all(|w| w[0] < w[1]));
                prop_assert!(e.iter().all(|&k| (k as usize) < rows[0].len()));
                // Load accounting.
                prop_assert!(r.elephant_load[n] <= r.total_load[n] + 1e-6);
                prop_assert!(r.fraction(n) >= 0.0 && r.fraction(n) <= 1.0 + 1e-9);
            }
        }
    }

    #[test]
    fn holding_time_bookkeeping_conserves_slots(rows in arb_rows(), threshold in 0.0..1200.0f64) {
        let m = matrix(&rows);
        let r = classify(&m, Fixed(threshold), 0.0, Scheme::SingleFeature);
        let h = holding::analyze(&r, 0..rows.len(), 60);
        // Total slots across flows equal total elephant occurrences.
        let total_slots: usize = h.per_flow.iter().map(|(_, f)| f.slots).sum();
        let total_occurrences: usize = r.elephants.iter().map(Vec::len).sum();
        prop_assert_eq!(total_slots, total_occurrences);
        for (_, f) in &h.per_flow {
            prop_assert!(f.runs >= 1);
            prop_assert!(f.slots >= f.runs);
            prop_assert!(f.avg_slots >= 1.0);
            prop_assert!(f.avg_slots <= rows.len() as f64);
        }
        prop_assert!(h.single_interval_flows <= h.per_flow.len());
    }

    #[test]
    fn churn_bounded_by_class_sizes(rows in arb_rows(), threshold in 0.0..1200.0f64) {
        let m = matrix(&rows);
        let r = classify(&m, Fixed(threshold), 0.0, Scheme::SingleFeature);
        let churn = holding::churn(&r);
        prop_assert_eq!(churn.len(), rows.len());
        for n in 1..rows.len() {
            let bound = r.count(n) + r.count(n - 1);
            prop_assert!(churn[n] <= bound, "churn {} > bound {}", churn[n], bound);
        }
    }

    #[test]
    fn constant_load_threshold_is_minimal(values in prop::collection::vec(0.1..1e6f64, 1..200), beta in 0.05..1.0f64) {
        let d = ConstantLoadDetector::new(beta);
        let t = d.detect(&values).expect("non-empty positive values");
        let total: f64 = values.iter().sum();
        let at_or_above: f64 = values.iter().filter(|&&v| v >= t).sum();
        prop_assert!(at_or_above >= beta * total - 1e-6);
        let strictly_above: f64 = values.iter().filter(|&&v| v > t).sum();
        prop_assert!(strictly_above < beta * total + 1e-6);
    }

    #[test]
    fn top_n_detector_counts(values in prop::collection::vec(0.1..1e6f64, 1..100), n in 1usize..20) {
        let d = TopNDetector { n };
        let t = d.detect(&values).expect("non-empty");
        let above = values.iter().filter(|&&v| v > t).count();
        prop_assert!(above < n, "{above} flows above top-{n} threshold");
    }

    #[test]
    fn percentile_detector_bounds_tail(values in prop::collection::vec(0.1..1e6f64, 1..200), q in 0.01..0.99f64) {
        let d = PercentileDetector { q };
        let t = d.detect(&values).expect("non-empty");
        let above = values.iter().filter(|&&v| v > t).count();
        prop_assert!(above as f64 <= (1.0 - q) * values.len() as f64 + 1.0);
    }
}
