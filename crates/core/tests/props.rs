//! Property tests for the classification schemes: the sliding-sum
//! latent-heat implementation must match the paper's formula computed
//! naively, the structural invariants of a classification must hold on
//! arbitrary bandwidth matrices, the dense columnar engine must agree
//! with a faithful replica of the legacy hash-map classifier, and
//! [`eleph_core::classify_many`] must be indistinguishable from
//! independent [`eleph_core::classify`] calls.

use eleph_core::{
    classify, classify_many, holding, ClassifyConfig, ConstantLoadDetector, PercentileDetector,
    Scheme, ThresholdDetector, TopNDetector,
};
use eleph_flow::BandwidthMatrix;
use eleph_net::Prefix;
use proptest::prelude::*;

/// A faithful replica of the pre-columnar classifier: `HashMap` sliding
/// sums, `HashSet` hysteresis membership, per-interval collect + sort,
/// and the `1e-9` retire epsilon. The equivalence property samples rate
/// magnitudes where f64 sliding sums are exact and partial sums stay
/// above the epsilon, so the replica and the dense engine must agree
/// bit-for-bit; outside that regime the dense engine's exact retire
/// path is deliberately *better* (see the regression tests below).
mod legacy {
    use eleph_core::{Scheme, ThresholdDetector};
    use eleph_flow::{BandwidthMatrix, KeyId};
    use std::collections::{HashMap, HashSet};

    pub struct LegacyResult {
        pub thresholds: Vec<f64>,
        pub elephants: Vec<Vec<KeyId>>,
        pub elephant_load: Vec<f64>,
        pub total_load: Vec<f64>,
    }

    pub fn classify<D: ThresholdDetector>(
        matrix: &BandwidthMatrix,
        detector: D,
        gamma: f64,
        scheme: Scheme,
    ) -> LegacyResult {
        let mut ewma = eleph_stats::Ewma::new(gamma).expect("valid gamma");
        let n_int = matrix.n_intervals();
        let mut thresholds = Vec::with_capacity(n_int);
        let mut elephants: Vec<Vec<KeyId>> = Vec::with_capacity(n_int);
        let mut elephant_load = Vec::with_capacity(n_int);
        let mut total_load = Vec::with_capacity(n_int);
        let window = match scheme {
            Scheme::LatentHeat { window } => window,
            _ => 1,
        };
        let mut members: HashSet<KeyId> = HashSet::new();
        let mut sum_b: HashMap<KeyId, f64> = HashMap::new();
        let mut sum_t = 0.0f64;
        let mut t_hist: Vec<f64> = Vec::with_capacity(n_int);

        for n in 0..n_int {
            let values = matrix.values(n);
            let threshold = match detector.detect(&values) {
                Some(t) => ewma.update(t),
                None => ewma.value().unwrap_or(f64::INFINITY),
            };
            thresholds.push(threshold);
            let t_term = if threshold.is_finite() {
                threshold
            } else {
                values.iter().cloned().fold(0.0, f64::max) + 1.0
            };
            sum_t += t_term;
            t_hist.push(t_term);
            for (key, rate) in matrix.interval(n).iter() {
                *sum_b.entry(key).or_insert(0.0) += f64::from(rate);
            }
            if n >= window {
                let retire = n - window;
                sum_t -= t_hist[retire];
                for (key, rate) in matrix.interval(retire).iter() {
                    if let Some(s) = sum_b.get_mut(&key) {
                        *s -= f64::from(rate);
                        if *s <= 1e-9 {
                            sum_b.remove(&key);
                        }
                    }
                }
            }

            let mut current: Vec<KeyId> = match scheme {
                Scheme::SingleFeature => matrix
                    .interval(n)
                    .iter()
                    .filter(|&(_, rate)| f64::from(rate) > threshold)
                    .map(|(key, _)| key)
                    .collect(),
                // The empty-interval guard (PR 4) applies to the replica
                // too: an interval with no traffic emits no elephants.
                Scheme::LatentHeat { .. } if matrix.interval(n).is_empty() => Vec::new(),
                Scheme::LatentHeat { .. } => sum_b
                    .iter()
                    .filter(|&(_, &s)| s > sum_t)
                    .map(|(&key, _)| key)
                    .collect(),
                Scheme::Hysteresis { enter, exit } => {
                    let next: Vec<KeyId> = matrix
                        .interval(n)
                        .iter()
                        .filter(|&(key, rate)| {
                            let b = f64::from(rate);
                            if members.contains(&key) {
                                b >= exit * threshold
                            } else {
                                b > enter * threshold
                            }
                        })
                        .map(|(key, _)| key)
                        .collect();
                    members = next.iter().copied().collect();
                    next
                }
            };
            current.sort_unstable();
            let load: f64 = current.iter().map(|&key| matrix.rate(n, key)).sum();
            elephant_load.push(load);
            total_load.push(matrix.total(n));
            elephants.push(current);
        }
        LegacyResult {
            thresholds,
            elephants,
            elephant_load,
            total_load,
        }
    }
}

/// A fixed-threshold detector isolates classifier logic from detector
/// logic.
#[derive(Clone, Copy)]
struct Fixed(f64);

impl ThresholdDetector for Fixed {
    fn detect(&self, _values: &[f64]) -> Option<f64> {
        Some(self.0)
    }
    fn name(&self) -> String {
        "fixed".to_string()
    }
}

fn keys(n: usize) -> Vec<Prefix> {
    (0..n)
        .map(|i| {
            format!("10.{}.{}.0/24", i / 256, i % 256)
                .parse()
                .expect("valid prefix")
        })
        .collect()
}

/// Random dense rate matrices: up to 12 keys × up to 20 intervals.
fn arb_rows() -> impl Strategy<Value = Vec<Vec<f64>>> {
    (1usize..12, 1usize..20).prop_flat_map(|(nk, ni)| {
        prop::collection::vec(
            prop::collection::vec(
                prop_oneof![3 => Just(0.0), 7 => 1.0..1000.0f64],
                nk,
            ),
            ni,
        )
    })
}

fn matrix(rows: &[Vec<f64>]) -> BandwidthMatrix {
    BandwidthMatrix::from_dense(60, 0, keys(rows[0].len()), rows)
}

proptest! {
    #[test]
    fn single_feature_matches_oracle(rows in arb_rows(), threshold in 0.0..1200.0f64) {
        let m = matrix(&rows);
        let r = classify(&m, Fixed(threshold), 0.0, Scheme::SingleFeature);
        for (n, row) in rows.iter().enumerate() {
            for (i, &rate) in row.iter().enumerate() {
                let expect = rate > threshold;
                // f32 storage rounds rates; tolerate boundary flips only
                // when the rate is within f32 epsilon of the threshold.
                let got = r.is_elephant(n, i as u32);
                if (rate - threshold).abs() > 0.01 {
                    prop_assert_eq!(got, expect, "interval {} key {}: rate {}", n, i, rate);
                }
            }
        }
    }

    #[test]
    fn latent_heat_matches_naive_formula(rows in arb_rows(), threshold in 0.0..1200.0f64, window in 1usize..6) {
        let m = matrix(&rows);
        let r = classify(&m, Fixed(threshold), 0.0, Scheme::LatentHeat { window });
        for n in 0..rows.len() {
            let lo = n.saturating_sub(window - 1);
            // A degenerate interval (no active flows at all) short-circuits
            // to an empty elephant set regardless of latent heat — the
            // paper's formula governs intervals that carried traffic.
            if m.interval(n).is_empty() {
                prop_assert_eq!(r.count(n), 0, "empty interval {} emitted elephants", n);
                continue;
            }
            for i in 0..rows[0].len() {
                let lh: f64 = (lo..=n).map(|j| m.rate(j, i as u32) - threshold).sum();
                if lh.abs() > 0.01 {
                    prop_assert_eq!(
                        r.is_elephant(n, i as u32),
                        lh > 0.0,
                        "interval {} key {}: LH {}",
                        n, i, lh
                    );
                }
            }
        }
    }

    #[test]
    fn latent_heat_window_one_equals_single_feature(rows in arb_rows(), threshold in 0.0..1200.0f64) {
        let m = matrix(&rows);
        let single = classify(&m, Fixed(threshold), 0.0, Scheme::SingleFeature);
        let lh1 = classify(&m, Fixed(threshold), 0.0, Scheme::LatentHeat { window: 1 });
        prop_assert_eq!(single.elephants, lh1.elephants);
    }

    #[test]
    fn raising_threshold_never_adds_elephants(rows in arb_rows(), t in 0.0..500.0f64, bump in 1.0..500.0f64) {
        let m = matrix(&rows);
        let low = classify(&m, Fixed(t), 0.0, Scheme::SingleFeature);
        let high = classify(&m, Fixed(t + bump), 0.0, Scheme::SingleFeature);
        for n in 0..rows.len() {
            for key in &high.elephants[n] {
                prop_assert!(
                    low.is_elephant(n, *key),
                    "key {} elephant at higher threshold only", key
                );
            }
        }
    }

    #[test]
    fn classification_invariants(rows in arb_rows(), threshold in 0.0..1200.0f64, window in 1usize..6, gamma in 0.0..0.99f64) {
        let m = matrix(&rows);
        for scheme in [Scheme::SingleFeature, Scheme::LatentHeat { window }] {
            let r = classify(&m, Fixed(threshold), gamma, scheme);
            prop_assert_eq!(r.n_intervals(), rows.len());
            for n in 0..rows.len() {
                // Sorted, unique elephant ids within the key space.
                let e = &r.elephants[n];
                prop_assert!(e.windows(2).all(|w| w[0] < w[1]));
                prop_assert!(e.iter().all(|&k| (k as usize) < rows[0].len()));
                // Load accounting.
                prop_assert!(r.elephant_load[n] <= r.total_load[n] + 1e-6);
                prop_assert!(r.fraction(n) >= 0.0 && r.fraction(n) <= 1.0 + 1e-9);
            }
        }
    }

    #[test]
    fn holding_time_bookkeeping_conserves_slots(rows in arb_rows(), threshold in 0.0..1200.0f64) {
        let m = matrix(&rows);
        let r = classify(&m, Fixed(threshold), 0.0, Scheme::SingleFeature);
        let h = holding::analyze(&r, 0..rows.len(), 60);
        // Total slots across flows equal total elephant occurrences.
        let total_slots: usize = h.per_flow.iter().map(|(_, f)| f.slots).sum();
        let total_occurrences: usize = r.elephants.iter().map(Vec::len).sum();
        prop_assert_eq!(total_slots, total_occurrences);
        for (_, f) in &h.per_flow {
            prop_assert!(f.runs >= 1);
            prop_assert!(f.slots >= f.runs);
            prop_assert!(f.avg_slots >= 1.0);
            prop_assert!(f.avg_slots <= rows.len() as f64);
        }
        prop_assert!(h.single_interval_flows <= h.per_flow.len());
    }

    #[test]
    fn churn_bounded_by_class_sizes(rows in arb_rows(), threshold in 0.0..1200.0f64) {
        let m = matrix(&rows);
        let r = classify(&m, Fixed(threshold), 0.0, Scheme::SingleFeature);
        let churn = holding::churn(&r);
        prop_assert_eq!(churn.len(), rows.len());
        for n in 1..rows.len() {
            let bound = r.count(n) + r.count(n - 1);
            prop_assert!(churn[n] <= bound, "churn {} > bound {}", churn[n], bound);
        }
    }

    #[test]
    fn constant_load_threshold_is_minimal(values in prop::collection::vec(0.1..1e6f64, 1..200), beta in 0.05..1.0f64) {
        let d = ConstantLoadDetector::new(beta);
        let t = d.detect(&values).expect("non-empty positive values");
        let total: f64 = values.iter().sum();
        let at_or_above: f64 = values.iter().filter(|&&v| v >= t).sum();
        prop_assert!(at_or_above >= beta * total - 1e-6);
        let strictly_above: f64 = values.iter().filter(|&&v| v > t).sum();
        prop_assert!(strictly_above < beta * total + 1e-6);
    }

    #[test]
    fn top_n_detector_counts(values in prop::collection::vec(0.1..1e6f64, 1..100), n in 1usize..20) {
        let d = TopNDetector { n };
        let t = d.detect(&values).expect("non-empty");
        let above = values.iter().filter(|&&v| v > t).count();
        prop_assert!(above < n, "{above} flows above top-{n} threshold");
    }

    #[test]
    fn percentile_detector_bounds_tail(values in prop::collection::vec(0.1..1e6f64, 1..200), q in 0.01..0.99f64) {
        let d = PercentileDetector { q };
        let t = d.detect(&values).expect("non-empty");
        let above = values.iter().filter(|&&v| v > t).count();
        prop_assert!(above as f64 <= (1.0 - q) * values.len() as f64 + 1.0);
    }

    #[test]
    fn dense_classify_matches_legacy_reference(
        rows in arb_rows(),
        threshold in 1.0..1200.0f64,
        window in 1usize..6,
        enter in 1.0..1.8f64,
        exit in 0.2..1.0f64,
        beta in 0.3..0.95f64,
    ) {
        let m = matrix(&rows);
        for scheme in [
            Scheme::SingleFeature,
            Scheme::LatentHeat { window },
            Scheme::Hysteresis { enter, exit },
        ] {
            // Fixed threshold isolates the scheme state machines...
            let dense = classify(&m, Fixed(threshold), 0.0, scheme);
            let reference = legacy::classify(&m, Fixed(threshold), 0.0, scheme);
            prop_assert_eq!(&dense.elephants, &reference.elephants, "{:?} fixed", scheme);
            prop_assert_eq!(&dense.thresholds, &reference.thresholds, "{:?} fixed", scheme);
            prop_assert_eq!(&dense.elephant_load, &reference.elephant_load, "{:?} fixed", scheme);
            prop_assert_eq!(&dense.total_load, &reference.total_load, "{:?} fixed", scheme);
            // ...and a real detector + smoothing exercises the full path.
            let dense = classify(&m, ConstantLoadDetector::new(beta), 0.9, scheme);
            let reference = legacy::classify(&m, ConstantLoadDetector::new(beta), 0.9, scheme);
            prop_assert_eq!(&dense.elephants, &reference.elephants, "{:?} cl", scheme);
            prop_assert_eq!(&dense.thresholds, &reference.thresholds, "{:?} cl", scheme);
            prop_assert_eq!(&dense.elephant_load, &reference.elephant_load, "{:?} cl", scheme);
            prop_assert_eq!(&dense.total_load, &reference.total_load, "{:?} cl", scheme);
        }
    }

    #[test]
    fn classify_many_equals_independent_classifies(
        rows in arb_rows(),
        beta in 0.3..0.95f64,
        gammas in prop::collection::vec(0.0..0.99f64, 1..6),
        window in 1usize..6,
    ) {
        let m = matrix(&rows);
        // A mixed family: schemes rotate across the sampled γ values, so
        // one shared pass carries single-feature, latent-heat and
        // hysteresis state machines side by side.
        let configs: Vec<ClassifyConfig> = gammas
            .iter()
            .enumerate()
            .map(|(i, &gamma)| ClassifyConfig {
                gamma,
                scheme: match i % 3 {
                    0 => Scheme::SingleFeature,
                    1 => Scheme::LatentHeat { window },
                    _ => Scheme::Hysteresis { enter: 1.2, exit: 0.6 },
                },
            })
            .collect();
        let shared = classify_many(&m, &ConstantLoadDetector::new(beta), &configs);
        prop_assert_eq!(shared.len(), configs.len());
        for (config, got) in configs.iter().zip(shared) {
            let solo = classify(&m, ConstantLoadDetector::new(beta), config.gamma, config.scheme);
            prop_assert_eq!(&got.detector, &solo.detector);
            prop_assert_eq!(&got.elephants, &solo.elephants, "{:?}", config);
            prop_assert_eq!(&got.thresholds, &solo.thresholds, "{:?}", config);
            prop_assert_eq!(&got.raw_thresholds, &solo.raw_thresholds, "{:?}", config);
            prop_assert_eq!(&got.elephant_load, &solo.elephant_load, "{:?}", config);
            prop_assert_eq!(&got.total_load, &solo.total_load, "{:?}", config);
        }
    }
}

#[test]
fn exact_retire_keeps_epsilon_scale_microflow() {
    // A micro-flow at the old retire epsilon's scale: active at n = 0
    // and n = 3 with 5e-10 b/s, latent window 3, threshold 0. At n = 3
    // the window holds only the fresh activity (n = 0 retires), and the
    // paper's formula says LH = 5e-10 > 0 → elephant. The legacy hash
    // state subtracted n = 0's rate, saw the partial sum at 1e-9 or
    // below, and dropped the *live* key — a misclassification the exact
    // dense retire path cannot make.
    let rows = vec![vec![5e-10], vec![0.0], vec![0.0], vec![5e-10], vec![0.0]];
    let m = matrix(&rows);
    let r = classify(&m, Fixed(0.0), 0.0, Scheme::LatentHeat { window: 3 });
    assert!(
        r.is_elephant(3, 0),
        "live micro-flow lost at the retire epsilon"
    );
}

#[test]
fn adversarial_magnitudes_leave_no_stale_state() {
    // Catastrophic-cancellation rates: 2^55 bursts among unit-scale
    // flows defeat incremental f64 sliding sums (add/subtract round
    // trips leave residue). Once a key has been idle for a full window
    // the dense engine resets its sum to literal zero — residue cannot
    // produce phantom elephants, and a negative mid-window excursion is
    // clamped rather than carried.
    let huge = (1u64 << 55) as f64;
    let rows = vec![
        vec![huge, 3.0],
        vec![3.0, huge],
        vec![1.0, 0.0],
        vec![0.0, 0.0],
        vec![0.0, 0.0],
        vec![0.0, 0.0],
        vec![0.0, 7.0],
    ];
    let m = matrix(&rows);
    let r = classify(&m, Fixed(0.0), 0.0, Scheme::LatentHeat { window: 3 });
    // Both keys idle through the window ending at n = 5: no residue.
    assert!(!r.is_elephant(5, 0), "phantom elephant from stale residue");
    assert!(!r.is_elephant(5, 1), "phantom elephant from stale residue");
    assert!(!r.is_elephant(6, 0), "phantom elephant from stale residue");
    // Key 1 reappears at n = 6: only the fresh activity counts.
    assert!(r.is_elephant(6, 1), "fresh activity after reset lost");
}
