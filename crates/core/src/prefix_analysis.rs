//! The paper's §III prefix-characteristics analysis.
//!
//! "Initial observations on the characteristics of elephants reveal that
//! they correspond to networks with prefix lengths between /12 and /26,
//! belonging to other Tier-1 ISP providers. Although 100 /8 networks
//! became active during the day, only three received traffic at a rate
//! sufficiently high to place them in the elephant class."

use std::collections::HashSet;
use std::ops::Range;

use eleph_bgp::{BgpTable, PeerClass};
use eleph_flow::{BandwidthMatrix, KeyId};

use crate::ClassificationResult;

/// Prefix-level characteristics of the elephant class over a window.
#[derive(Debug, Clone)]
pub struct PrefixReport {
    /// Distinct active prefixes per length (index = length).
    pub active_by_length: [usize; 33],
    /// Distinct ever-elephant prefixes per length.
    pub elephant_by_length: [usize; 33],
    /// Distinct active /8 prefixes (the paper's "100 /8 networks became
    /// active").
    pub active_slash8: usize,
    /// Distinct /8 prefixes that were ever elephants (paper: 3).
    pub elephant_slash8: usize,
    /// Shortest / longest elephant prefix length, if any elephants.
    pub elephant_length_range: Option<(u8, u8)>,
    /// Elephants per peer class `[tier1, tier2, stub]`, when a table was
    /// supplied for the join.
    pub elephant_peer_classes: Option<[usize; 3]>,
}

impl PrefixReport {
    /// Correlation summary the paper draws: the fraction of active
    /// prefixes of a given length that became elephants. Returns `None`
    /// when no prefix of that length was active.
    pub fn elephant_rate_at_length(&self, len: u8) -> Option<f64> {
        let active = self.active_by_length[len as usize];
        if active == 0 {
            None
        } else {
            Some(self.elephant_by_length[len as usize] as f64 / active as f64)
        }
    }
}

/// Join the classification with prefix metadata over `window`.
///
/// `table` enables the peer-class breakdown; pass `None` when only
/// length statistics are needed.
pub fn prefix_report(
    matrix: &BandwidthMatrix,
    result: &ClassificationResult,
    table: Option<&BgpTable>,
    window: Range<usize>,
) -> PrefixReport {
    assert!(window.end <= result.n_intervals());

    let mut active: HashSet<KeyId> = HashSet::new();
    let mut elephant: HashSet<KeyId> = HashSet::new();
    for n in window {
        active.extend(matrix.interval(n).keys().iter().copied());
        elephant.extend(result.elephants[n].iter().copied());
    }

    let mut active_by_length = [0usize; 33];
    let mut elephant_by_length = [0usize; 33];
    let mut active_slash8 = 0usize;
    let mut elephant_slash8 = 0usize;
    let mut min_len = u8::MAX;
    let mut max_len = 0u8;
    let mut peer = [0usize; 3];

    for &key in &active {
        let len = matrix.key(key).len();
        active_by_length[len as usize] += 1;
        if len == 8 {
            active_slash8 += 1;
        }
    }
    for &key in &elephant {
        let prefix = matrix.key(key);
        let len = prefix.len();
        elephant_by_length[len as usize] += 1;
        if len == 8 {
            elephant_slash8 += 1;
        }
        min_len = min_len.min(len);
        max_len = max_len.max(len);
        if let Some(t) = table {
            if let Some(e) = t.get(prefix) {
                match e.peer_class {
                    PeerClass::Tier1 => peer[0] += 1,
                    PeerClass::Tier2 => peer[1] += 1,
                    PeerClass::Stub => peer[2] += 1,
                }
            }
        }
    }

    PrefixReport {
        active_by_length,
        elephant_by_length,
        active_slash8,
        elephant_slash8,
        elephant_length_range: if elephant.is_empty() {
            None
        } else {
            Some((min_len, max_len))
        },
        elephant_peer_classes: table.map(|_| peer),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Scheme;
    use eleph_bgp::{Origin, RouteEntry};
    use eleph_net::Prefix;
    use std::net::Ipv4Addr;

    fn build_matrix(prefixes: &[&str], rows: &[Vec<f64>]) -> (BandwidthMatrix, BgpTable) {
        let parsed: Vec<Prefix> = prefixes.iter().map(|s| s.parse().unwrap()).collect();
        let table = BgpTable::from_entries(parsed.iter().enumerate().map(|(i, &p)| RouteEntry {
            prefix: p,
            next_hop: Ipv4Addr::new(192, 0, 2, 1),
            as_path: vec![i as u32 + 1],
            origin: Origin::Igp,
            peer_class: match i % 3 {
                0 => PeerClass::Tier1,
                1 => PeerClass::Tier2,
                _ => PeerClass::Stub,
            },
        }));
        // Matrix via aggregator so key ids line up with first-seen order.
        let mut agg = eleph_flow::Aggregator::new(&table, 1, 0, rows.len());
        for (n, row) in rows.iter().enumerate() {
            for (i, &rate) in row.iter().enumerate() {
                if rate <= 0.0 {
                    continue;
                }
                agg.observe(&eleph_packet::PacketMeta {
                    ts_ns: n as u64 * 1_000_000_000,
                    src: Ipv4Addr::new(198, 18, 0, 1),
                    dst: parsed[i].network(),
                    proto: eleph_packet::IpProtocol::Tcp,
                    src_port: 1,
                    dst_port: 2,
                    wire_len: (rate / 8.0) as u32,
                });
            }
        }
        let (m, _) = agg.finish();
        (m, table)
    }

    fn scripted(m: &BandwidthMatrix, sets: Vec<Vec<&str>>) -> ClassificationResult {
        let elephants: Vec<Vec<KeyId>> = sets
            .iter()
            .map(|names| {
                let mut v: Vec<KeyId> = names
                    .iter()
                    .map(|s| m.key_id(s.parse().unwrap()).unwrap())
                    .collect();
                v.sort_unstable();
                v
            })
            .collect();
        let n = elephants.len();
        ClassificationResult {
            detector: "scripted".to_string(),
            scheme: Scheme::SingleFeature,
            thresholds: vec![0.0; n],
            raw_thresholds: vec![Some(0.0); n],
            elephants,
            elephant_load: vec![0.0; n],
            total_load: vec![1.0; n],
        }
    }

    #[test]
    fn length_histograms_and_range() {
        let prefixes = ["9.0.0.0/8", "10.16.0.0/12", "10.32.0.0/16", "10.1.2.0/24"];
        let rows = vec![
            vec![10.0, 100.0, 100.0, 10.0],
            vec![10.0, 100.0, 0.0, 10.0],
        ];
        let (m, table) = build_matrix(&prefixes, &rows);
        let r = scripted(&m, vec![vec!["10.16.0.0/12", "10.32.0.0/16"], vec!["10.16.0.0/12"]]);
        let report = prefix_report(&m, &r, Some(&table), 0..2);

        assert_eq!(report.active_by_length[8], 1);
        assert_eq!(report.active_by_length[12], 1);
        assert_eq!(report.active_by_length[16], 1);
        assert_eq!(report.active_by_length[24], 1);
        assert_eq!(report.elephant_by_length[12], 1);
        assert_eq!(report.elephant_by_length[16], 1);
        assert_eq!(report.elephant_by_length[8], 0);
        assert_eq!(report.elephant_length_range, Some((12, 16)));
        assert_eq!(report.active_slash8, 1);
        assert_eq!(report.elephant_slash8, 0);
    }

    #[test]
    fn peer_class_join() {
        let prefixes = ["10.16.0.0/12", "11.32.0.0/16", "12.1.0.0/16"];
        let rows = vec![vec![100.0, 100.0, 100.0]];
        let (m, table) = build_matrix(&prefixes, &rows);
        // Peer classes cycle Tier1, Tier2, Stub by construction.
        let r = scripted(&m, vec![vec!["10.16.0.0/12", "11.32.0.0/16"]]);
        let report = prefix_report(&m, &r, Some(&table), 0..1);
        assert_eq!(report.elephant_peer_classes, Some([1, 1, 0]));

        let no_table = prefix_report(&m, &r, None, 0..1);
        assert_eq!(no_table.elephant_peer_classes, None);
    }

    #[test]
    fn elephant_rate_at_length() {
        let prefixes = ["10.0.0.0/16", "11.0.0.0/16", "12.0.0.0/16", "13.0.0.0/24"];
        // 8 b/s over 1 s = 1 byte: the smallest rate the packet-built
        // matrix can represent without rounding to zero bytes.
        let rows = vec![vec![8.0, 8.0, 8.0, 8.0]];
        let (m, table) = build_matrix(&prefixes, &rows);
        let r = scripted(&m, vec![vec!["10.0.0.0/16"]]);
        let report = prefix_report(&m, &r, Some(&table), 0..1);
        assert!((report.elephant_rate_at_length(16).unwrap() - 1.0 / 3.0).abs() < 1e-12);
        assert_eq!(report.elephant_rate_at_length(24).unwrap(), 0.0);
        assert_eq!(report.elephant_rate_at_length(8), None);
    }

    #[test]
    fn no_elephants_no_range() {
        let prefixes = ["10.0.0.0/16"];
        let rows = vec![vec![8.0]];
        let (m, table) = build_matrix(&prefixes, &rows);
        let r = scripted(&m, vec![vec![]]);
        let report = prefix_report(&m, &r, Some(&table), 0..1);
        assert_eq!(report.elephant_length_range, None);
        assert_eq!(report.elephant_peer_classes, Some([0, 0, 0]));
    }
}
