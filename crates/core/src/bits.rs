//! Dense key-id bitset backing the classifier state.
//!
//! Classification tracks *membership* per [`KeyId`] — which keys have
//! window history, which keys are current elephants. Key ids are dense
//! (first-seen order from the measurement pipeline), so a flat `u64`
//! word array beats a hash set on every axis that matters here: O(1)
//! branch-free test/set/clear, and ordered iteration is a word scan
//! that yields keys already ascending — the classifier emits sorted
//! elephant lists without a per-interval `collect` + `sort`.

use eleph_flow::KeyId;

/// A growable bitset over dense [`KeyId`]s.
#[derive(Debug, Clone, Default)]
pub struct KeyBitset {
    words: Vec<u64>,
    /// Number of set bits, maintained incrementally.
    len: usize,
}

impl KeyBitset {
    /// Empty set sized for keys `0..n_keys` (grows on demand beyond).
    pub fn with_capacity(n_keys: usize) -> Self {
        KeyBitset {
            words: vec![0; n_keys.div_ceil(64)],
            len: 0,
        }
    }

    /// Number of set bits.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether no bit is set.
    #[allow(dead_code)] // API completeness next to len(); exercised in tests
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Whether `key` is in the set.
    #[inline]
    pub fn contains(&self, key: KeyId) -> bool {
        let w = (key / 64) as usize;
        w < self.words.len() && self.words[w] & (1u64 << (key % 64)) != 0
    }

    /// Insert `key`; grows the word array as needed.
    #[inline]
    pub fn insert(&mut self, key: KeyId) {
        let w = (key / 64) as usize;
        if w >= self.words.len() {
            self.words.resize(w + 1, 0);
        }
        let bit = 1u64 << (key % 64);
        self.len += usize::from(self.words[w] & bit == 0);
        self.words[w] |= bit;
    }

    /// Remove `key` if present.
    #[inline]
    pub fn remove(&mut self, key: KeyId) {
        let w = (key / 64) as usize;
        if w < self.words.len() {
            let bit = 1u64 << (key % 64);
            self.len -= usize::from(self.words[w] & bit != 0);
            self.words[w] &= !bit;
        }
    }

    /// Iterate set keys in ascending order.
    pub fn iter(&self) -> impl Iterator<Item = KeyId> + '_ {
        self.words.iter().enumerate().flat_map(|(w, &word)| {
            let base = (w as u32) * 64;
            BitIter { word, base }
        })
    }
}

/// Iterator over the set bits of one word.
struct BitIter {
    word: u64,
    base: u32,
}

impl Iterator for BitIter {
    type Item = KeyId;

    #[inline]
    fn next(&mut self) -> Option<KeyId> {
        if self.word == 0 {
            return None;
        }
        let bit = self.word.trailing_zeros();
        self.word &= self.word - 1;
        Some(self.base + bit)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_contains_remove() {
        let mut s = KeyBitset::with_capacity(10);
        assert!(s.is_empty());
        s.insert(3);
        s.insert(64);
        s.insert(3); // idempotent
        assert_eq!(s.len(), 2);
        assert!(s.contains(3));
        assert!(s.contains(64));
        assert!(!s.contains(4));
        assert!(!s.contains(1000)); // beyond capacity: absent, no panic
        s.remove(3);
        s.remove(3); // idempotent
        s.remove(999); // absent beyond capacity: no-op
        assert_eq!(s.len(), 1);
        assert!(!s.contains(3));
    }

    #[test]
    fn grows_on_demand() {
        let mut s = KeyBitset::default();
        s.insert(1000);
        assert!(s.contains(1000));
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn iterates_ascending() {
        let mut s = KeyBitset::with_capacity(0);
        for k in [300u32, 0, 63, 64, 65, 7, 129] {
            s.insert(k);
        }
        let got: Vec<KeyId> = s.iter().collect();
        assert_eq!(got, vec![0, 7, 63, 64, 65, 129, 300]);
    }
}
