//! Key-partitioned online classification.
//!
//! [`crate::OnlineClassifier`] keeps all per-key state — sliding
//! bandwidth sums, window-occupancy counts, hysteresis membership — in
//! dense `KeyId`-indexed vectors and bitsets. That layout shards
//! naturally: split the key space `key % N` ([`ShardSpec`]), give each
//! shard a [`ClassifierPart`] holding only its keys' rows, and the
//! per-interval update work parallelises with **no shared mutable
//! state**. Detection does *not* shard — a threshold is a function of
//! the whole interval's snapshot — so one [`SealCoordinator`] runs the
//! detector + EWMA once per interval on the merged value vector and
//! broadcasts the resulting [`SealContext`] to every part.
//!
//! # Bit-identity to the serial classifier
//!
//! The contract (pinned by the tests below and by the pipeline's
//! equivalence suite) is that the merged output of N parts equals the
//! serial classifier's output *by bits*, for every N. It holds because
//! every float operation sequence is preserved exactly:
//!
//! * **per-key sums** (`sum_b`, occupancy) only ever combine one key's
//!   rates, in stream order — moving a key's row to a shard changes the
//!   row's address, not its arithmetic;
//! * **global scalars** (threshold, `t_term`, `total_load`) are computed
//!   once by the coordinator from the merged snapshot, in serial order;
//! * **`sum_t`** (the sliding threshold sum) is *replicated*: every part
//!   pushes one history slot per interval — even when its sub-snapshot
//!   is empty — so each replica performs the identical add/subtract
//!   sequence the serial classifier would, and all replicas stay
//!   bitwise equal ([`merge_states`] cross-checks this);
//! * **elephants** are emitted ascending by key within each part (local
//!   order is global order under the modulo split), and
//!   [`merge_observations`] folds `elephant_load` while N-way-merging
//!   in ascending global key order — the exact addition sequence of the
//!   serial classify loop.
//!
//! [`partition_state`]/[`merge_states`] convert between the serial
//! [`ClassifierState`] and per-shard [`PartState`]s, so checkpoints
//! stay shard-count-independent: a sharded run exports the merged
//! serial state and any shard count can resume from it.

use std::collections::VecDeque;

use eleph_flow::{KeyId, ShardSpec};

use crate::bits::KeyBitset;
use crate::online::scheme_window;
use crate::{ClassifierState, Scheme, ThresholdDetector, ThresholdTracker};

/// The per-interval broadcast from the [`SealCoordinator`] to every
/// [`ClassifierPart`]: the global scalars a part cannot compute alone.
#[derive(Debug, Clone, Copy)]
pub struct SealContext {
    /// Smoothed threshold for this interval (`T̄(n)`; may be +∞ before
    /// the first detection).
    pub threshold: f64,
    /// The finite threshold term entering the sliding window sum (the
    /// pre-detection stand-in rule applied).
    pub t_term: f64,
    /// Whether the *global* snapshot was empty — the latent-heat
    /// degenerate-interval guard is a property of the whole interval,
    /// not of any one shard's slice of it.
    pub global_empty: bool,
}

/// One shard's classification of one interval: its elephants (ascending
/// by key) and, parallel to them, the bandwidth each contributes to
/// `elephant_load`.
///
/// The rates ride along because the serial classifier folds
/// `elephant_load` in ascending *global* key order — the merge has to
/// replay that exact addition sequence, so each part reports the terms
/// and [`merge_observations`] adds them in merged order.
#[derive(Debug, Clone, Default)]
pub struct PartObservation {
    /// Elephant keys this shard owns, ascending.
    pub elephants: Vec<KeyId>,
    /// `elephant_load` term per elephant (same order).
    pub rates: Vec<f64>,
}

/// One shard's recovery frontier — the shard-local slice of a
/// [`ClassifierState`], with keys in *global* ids.
///
/// `interval` and the EWMA value are coordinator state and travel
/// separately (see [`merge_states`]).
#[derive(Debug, Clone, PartialEq)]
pub struct PartState {
    /// Sliding threshold sum replica (bitwise equal across all parts).
    pub sum_t: f64,
    /// Per-key window state for owned keys with `live > 0`, ascending:
    /// `(key, sliding bandwidth sum, occupied window slots)`.
    pub per_key: Vec<(KeyId, f64, u32)>,
    /// The in-window history, oldest first; each slot holds the
    /// interval's threshold term and the shard's sub-snapshot.
    pub history: Vec<(f64, Vec<(KeyId, f32)>)>,
    /// Previous interval's owned elephants (hysteresis), ascending.
    pub members: Vec<KeyId>,
}

/// The global (unsharded) half of the online classifier: threshold
/// detection + EWMA smoothing + the interval counter, run once per
/// interval on the merged snapshot.
#[derive(Debug)]
pub struct SealCoordinator<D> {
    tracker: ThresholdTracker<D>,
    interval: usize,
}

impl<D: ThresholdDetector> SealCoordinator<D> {
    /// A fresh coordinator (γ ∈ [0, 1), same contract as
    /// [`crate::OnlineClassifier::new`]).
    pub fn new(detector: D, gamma: f64) -> Self {
        SealCoordinator {
            tracker: ThresholdTracker::new(detector, gamma),
            interval: 0,
        }
    }

    /// Rebuild a coordinator from checkpointed state: the interval
    /// counter and smoothed EWMA value of the [`ClassifierState`] the
    /// parts were partitioned from.
    pub fn resume(detector: D, gamma: f64, interval: usize, smoothed: Option<f64>) -> Self {
        SealCoordinator {
            tracker: ThresholdTracker::with_state(detector, gamma, smoothed),
            interval,
        }
    }

    /// Observe the merged interval value vector (ascending-key order,
    /// exactly what the serial classifier would see): runs detection
    /// and smoothing once, advances the interval counter, and returns
    /// the broadcast context plus this interval's index and
    /// `total_load` — the scalars computed in the serial classifier's
    /// own operation order.
    pub fn observe_values(&mut self, values: &[f64]) -> (SealContext, usize, f64) {
        // Fold from +0.0 like the serial classifier (`Iterator::sum`
        // starts from -0.0, which bit-differs on empty intervals).
        let total_load: f64 = values.iter().fold(0.0, |s, &v| s + v);
        let threshold = self.tracker.observe(values);
        // Pre-detection stand-in: duplicated verbatim from
        // `OnlineClassifier::observe` — the sharded window sum must see
        // the identical term.
        let t_term = if threshold.is_finite() {
            threshold
        } else {
            values.iter().cloned().fold(0.0, f64::max) + 1.0
        };
        let ctx = SealContext {
            threshold,
            t_term,
            global_empty: values.is_empty(),
        };
        let interval = self.interval;
        self.interval += 1;
        (ctx, interval, total_load)
    }

    /// Intervals observed so far (the next outcome's index).
    pub fn intervals_observed(&self) -> usize {
        self.interval
    }

    /// The smoothing factor γ.
    pub fn gamma(&self) -> f64 {
        self.tracker.gamma()
    }

    /// The detector's name (for checkpoint fingerprints).
    pub fn detector_name(&self) -> String {
        self.tracker.detector_name()
    }

    /// Current smoothed threshold (`None` before the first detection).
    pub fn smoothed_value(&self) -> Option<f64> {
        self.tracker.smoothed_value()
    }
}

/// One shard of the online classifier's per-key state: the sliding
/// window machinery of [`crate::OnlineClassifier`] restricted to the
/// keys a [`ShardSpec`] owns, dense over *local* indices.
#[derive(Debug)]
pub struct ClassifierPart {
    spec: ShardSpec,
    scheme: Scheme,
    window: usize,
    /// Sliding per-key bandwidth sums, dense by local index.
    sum_b: Vec<f64>,
    /// Window-occupancy counts, dense by local index.
    live: Vec<u32>,
    /// Local indices with `live > 0` (ascending local = ascending
    /// global under the modulo split).
    in_window: KeyBitset,
    /// Replicated sliding threshold sum (see the module docs).
    sum_t: f64,
    /// Window history of owned sub-snapshots (global key ids); one slot
    /// per interval even when the sub-snapshot is empty, so retirement
    /// stays in lockstep with the serial classifier.
    history: VecDeque<(f64, Vec<(KeyId, f32)>)>,
    /// Hysteresis membership over local indices.
    members: KeyBitset,
    /// Previous interval's owned elephants (global ids).
    prev_members: Vec<KeyId>,
}

impl ClassifierPart {
    /// A fresh part for `spec`'s slice of the key space.
    ///
    /// # Panics
    ///
    /// Panics on invalid scheme parameters (same contract as
    /// [`crate::OnlineClassifier::new`]).
    pub fn new(spec: ShardSpec, scheme: Scheme) -> Self {
        let window = scheme_window(scheme);
        ClassifierPart {
            spec,
            scheme,
            window,
            sum_b: Vec::new(),
            live: Vec::new(),
            in_window: KeyBitset::default(),
            sum_t: 0.0,
            history: VecDeque::with_capacity(window + 1),
            members: KeyBitset::default(),
            prev_members: Vec::new(),
        }
    }

    /// The shard identity this part serves.
    pub fn spec(&self) -> ShardSpec {
        self.spec
    }

    /// Number of owned keys currently holding window state.
    pub fn tracked_keys(&self) -> usize {
        self.in_window.len()
    }

    /// Grow the dense local arrays to cover local index `k`.
    #[inline]
    fn ensure_local(&mut self, k: usize) {
        if self.sum_b.len() <= k {
            self.sum_b.resize(k + 1, 0.0);
            self.live.resize(k + 1, 0);
        }
    }

    /// Feed this shard's slice of one interval (owned keys only,
    /// ascending, rates as the pipeline produced them) together with
    /// the coordinator's broadcast, and classify the owned keys.
    ///
    /// The snapshot is consumed into the window history (no copy).
    /// Every part must be called exactly once per interval — an empty
    /// sub-snapshot still advances the window.
    pub fn observe_part(&mut self, snapshot: Vec<(KeyId, f32)>, ctx: &SealContext) -> PartObservation {
        debug_assert!(snapshot.windows(2).all(|w| w[0].0 < w[1].0));
        debug_assert!(snapshot.iter().all(|&(key, _)| self.spec.owns(key)));

        // Slide the window forward — same operation sequence as the
        // serial classifier, restricted to owned keys.
        self.sum_t += ctx.t_term;
        for &(key, rate) in &snapshot {
            let k = self.spec.local(key);
            self.ensure_local(k);
            if self.live[k] == 0 {
                self.sum_b[k] = f64::from(rate);
                self.in_window.insert(k as KeyId);
            } else {
                self.sum_b[k] += f64::from(rate);
            }
            self.live[k] += 1;
        }
        self.history.push_back((ctx.t_term, snapshot));
        if self.history.len() > self.window {
            let (old_t, old_snapshot) = self.history.pop_front().expect("len checked");
            self.sum_t -= old_t;
            for (key, rate) in old_snapshot {
                let k = self.spec.local(key);
                self.live[k] -= 1;
                if self.live[k] == 0 {
                    self.sum_b[k] = 0.0;
                    self.in_window.remove(k as KeyId);
                } else {
                    self.sum_b[k] = (self.sum_b[k] - f64::from(rate)).max(0.0);
                }
            }
        }

        // Classify the owned keys. Iteration orders are ascending, so
        // the merged emission replays the serial loop exactly.
        let snapshot = &self.history.back().expect("just pushed").1;
        let mut elephants: Vec<KeyId> = Vec::new();
        let mut rates: Vec<f64> = Vec::new();
        match self.scheme {
            Scheme::SingleFeature => {
                for &(key, rate) in snapshot {
                    let b = f64::from(rate);
                    if b > ctx.threshold {
                        elephants.push(key);
                        rates.push(b);
                    }
                }
            }
            Scheme::LatentHeat { .. } => {
                // Degenerate-interval guard on the *global* snapshot:
                // a shard whose slice happens to be empty must still
                // emit when other shards saw traffic, and vice versa.
                if !ctx.global_empty {
                    for local in self.in_window.iter() {
                        if self.sum_b[local as usize] > self.sum_t {
                            let key = self.spec.global(local as usize);
                            elephants.push(key);
                            rates.push(
                                snapshot
                                    .binary_search_by_key(&key, |&(k, _)| k)
                                    .map(|i| f64::from(snapshot[i].1))
                                    .unwrap_or(0.0),
                            );
                        }
                    }
                }
            }
            Scheme::Hysteresis { enter, exit } => {
                for &(key, rate) in snapshot {
                    let b = f64::from(rate);
                    let keep = if self.members.contains(self.spec.local(key) as KeyId) {
                        b >= exit * ctx.threshold
                    } else {
                        b > enter * ctx.threshold
                    };
                    if keep {
                        elephants.push(key);
                        rates.push(b);
                    }
                }
            }
        }
        if matches!(self.scheme, Scheme::Hysteresis { .. }) {
            let prev = std::mem::take(&mut self.prev_members);
            for key in prev {
                self.members.remove(self.spec.local(key) as KeyId);
            }
            for &key in &elephants {
                self.members.insert(self.spec.local(key) as KeyId);
            }
            self.prev_members = elephants.clone();
        }
        PartObservation { elephants, rates }
    }

    /// Export this shard's recovery frontier (global key ids).
    pub fn export_state(&self) -> PartState {
        PartState {
            sum_t: self.sum_t,
            per_key: self
                .in_window
                .iter()
                .map(|local| {
                    let k = local as usize;
                    (self.spec.global(k), self.sum_b[k], self.live[k])
                })
                .collect(),
            history: self.history.iter().cloned().collect(),
            members: self.prev_members.clone(),
        }
    }

    /// Rebuild a part from a [`PartState`], with the same structural
    /// validation as [`crate::OnlineClassifier::from_state`] plus
    /// ownership checks (every key in the state must belong to `spec`).
    pub fn from_state(spec: ShardSpec, scheme: Scheme, state: PartState) -> Result<Self, String> {
        // Reuse the serial validator on the shard's slice — the slice
        // of a valid state is structurally a valid (smaller) state, and
        // corrupt slices fail with the same messages everywhere.
        let as_state = ClassifierState {
            interval: 0,
            smoothed: None,
            sum_t: state.sum_t,
            per_key: state.per_key,
            history: state.history,
            members: state.members,
        };
        as_state.validate(scheme)?;
        for &(key, _, _) in &as_state.per_key {
            if !spec.owns(key) {
                return Err(format!(
                    "key {key} in shard {}/{} state belongs to shard {}",
                    spec.shard(),
                    spec.n_shards(),
                    ShardSpec::owner(key, spec.n_shards())
                ));
            }
        }
        for (_, snapshot) in &as_state.history {
            if let Some(&(key, _)) = snapshot.iter().find(|&&(key, _)| !spec.owns(key)) {
                return Err(format!(
                    "history key {key} in shard {}/{} state belongs to shard {}",
                    spec.shard(),
                    spec.n_shards(),
                    ShardSpec::owner(key, spec.n_shards())
                ));
            }
        }
        if let Some(&key) = as_state.members.iter().find(|&&key| !spec.owns(key)) {
            return Err(format!(
                "member key {key} in shard {}/{} state belongs to shard {}",
                spec.shard(),
                spec.n_shards(),
                ShardSpec::owner(key, spec.n_shards())
            ));
        }
        let mut part = ClassifierPart::new(spec, scheme);
        part.sum_t = as_state.sum_t;
        for &(key, sum, live) in &as_state.per_key {
            let k = spec.local(key);
            part.ensure_local(k);
            part.sum_b[k] = sum;
            part.live[k] = live;
            part.in_window.insert(k as KeyId);
        }
        part.history = as_state.history.into();
        for &key in &as_state.members {
            part.members.insert(spec.local(key) as KeyId);
        }
        part.prev_members = as_state.members;
        Ok(part)
    }
}

/// Merge one interval's [`PartObservation`]s (ascending shard order)
/// into the global elephant list and `elephant_load`, replaying the
/// serial classifier's ascending-key emission and addition order.
pub fn merge_observations(parts: &[PartObservation]) -> (Vec<KeyId>, f64) {
    let total: usize = parts.iter().map(|p| p.elephants.len()).sum();
    let mut elephants = Vec::with_capacity(total);
    let mut elephant_load = 0.0f64;
    let mut heads = vec![0usize; parts.len()];
    loop {
        let mut best: Option<(KeyId, usize)> = None;
        for (s, part) in parts.iter().enumerate() {
            if let Some(&key) = part.elephants.get(heads[s]) {
                if best.map_or(true, |(b, _)| key < b) {
                    best = Some((key, s));
                }
            }
        }
        let Some((key, s)) = best else { break };
        elephants.push(key);
        elephant_load += parts[s].rates[heads[s]];
        heads[s] += 1;
    }
    (elephants, elephant_load)
}

/// Split a serial [`ClassifierState`] into N per-shard [`PartState`]s
/// (`sum_t` replicated verbatim). The inverse of [`merge_states`] —
/// a checkpoint written at any shard count resumes at any other.
pub fn partition_state(state: &ClassifierState, n_shards: usize) -> Vec<PartState> {
    (0..n_shards)
        .map(|s| {
            let spec = ShardSpec::new(s, n_shards);
            PartState {
                sum_t: state.sum_t,
                per_key: state
                    .per_key
                    .iter()
                    .filter(|&&(key, _, _)| spec.owns(key))
                    .copied()
                    .collect(),
                history: state
                    .history
                    .iter()
                    .map(|(t, snapshot)| {
                        (
                            *t,
                            snapshot.iter().filter(|&&(key, _)| spec.owns(key)).copied().collect(),
                        )
                    })
                    .collect(),
                members: state.members.iter().filter(|&&key| spec.owns(key)).copied().collect(),
            }
        })
        .collect()
}

/// Merge N per-shard [`PartState`]s (ascending shard order) back into
/// the serial [`ClassifierState`], cross-validating the replicated
/// invariants: every part must hold the same history length, bitwise
/// identical threshold terms per slot, a bitwise identical `sum_t`
/// replica, and only keys its shard owns. `interval` and `smoothed`
/// are the coordinator's (see [`SealCoordinator`]).
pub fn merge_states(
    parts: &[PartState],
    interval: usize,
    smoothed: Option<f64>,
) -> Result<ClassifierState, String> {
    let n_shards = parts.len();
    if n_shards == 0 {
        return Err("cannot merge zero shard states".to_string());
    }
    let depth = parts[0].history.len();
    for (s, part) in parts.iter().enumerate() {
        if part.history.len() != depth {
            return Err(format!(
                "shard {s} holds {} history slots, shard 0 holds {depth} — parts out of lockstep",
                part.history.len()
            ));
        }
        if part.sum_t.to_bits() != parts[0].sum_t.to_bits() {
            return Err(format!(
                "shard {s} sum_t replica {} diverged from shard 0's {}",
                part.sum_t, parts[0].sum_t
            ));
        }
        for (slot, (t, _)) in part.history.iter().enumerate() {
            if t.to_bits() != parts[0].history[slot].0.to_bits() {
                return Err(format!(
                    "shard {s} history slot {slot} threshold term {t} diverged from shard 0's {}",
                    parts[0].history[slot].0
                ));
            }
        }
        let spec = ShardSpec::new(s, n_shards);
        for &(key, _, _) in &part.per_key {
            if !spec.owns(key) {
                return Err(format!(
                    "shard {s} state holds key {key} owned by shard {}",
                    ShardSpec::owner(key, n_shards)
                ));
            }
        }
    }
    let mut per_key: Vec<(KeyId, f64, u32)> =
        parts.iter().flat_map(|p| p.per_key.iter().copied()).collect();
    per_key.sort_unstable_by_key(|&(key, _, _)| key);
    let history: Vec<(f64, Vec<(KeyId, f32)>)> = (0..depth)
        .map(|slot| {
            let mut snapshot: Vec<(KeyId, f32)> = parts
                .iter()
                .flat_map(|p| p.history[slot].1.iter().copied())
                .collect();
            snapshot.sort_unstable_by_key(|&(key, _)| key);
            (parts[0].history[slot].0, snapshot)
        })
        .collect();
    let mut members: Vec<KeyId> = parts.iter().flat_map(|p| p.members.iter().copied()).collect();
    members.sort_unstable();
    Ok(ClassifierState {
        interval,
        smoothed,
        sum_t: parts[0].sum_t,
        per_key,
        history,
        members,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{ConstantLoadDetector, IntervalOutcome, OnlineClassifier};

    /// Drive N parts + a coordinator over the snapshots, merging each
    /// interval exactly as the pipeline's seal barrier does.
    fn run_sharded(
        n_shards: usize,
        scheme: Scheme,
        snapshots: &[Vec<(KeyId, f32)>],
    ) -> (Vec<IntervalOutcome>, Vec<ClassifierPart>, SealCoordinator<ConstantLoadDetector>) {
        let mut coord = SealCoordinator::new(ConstantLoadDetector::new(0.8), 0.9);
        let mut parts: Vec<ClassifierPart> = (0..n_shards)
            .map(|s| ClassifierPart::new(ShardSpec::new(s, n_shards), scheme))
            .collect();
        let mut outcomes = Vec::new();
        for snapshot in snapshots {
            let values: Vec<f64> = snapshot.iter().map(|&(_, r)| f64::from(r)).collect();
            let (ctx, interval, total_load) = coord.observe_values(&values);
            let subs: Vec<Vec<(KeyId, f32)>> = (0..n_shards)
                .map(|s| {
                    let spec = ShardSpec::new(s, n_shards);
                    snapshot.iter().filter(|&&(key, _)| spec.owns(key)).copied().collect()
                })
                .collect();
            let obs: Vec<PartObservation> = parts
                .iter_mut()
                .zip(subs)
                .map(|(part, sub)| part.observe_part(sub, &ctx))
                .collect();
            let (elephants, elephant_load) = merge_observations(&obs);
            outcomes.push(IntervalOutcome {
                interval,
                threshold: ctx.threshold,
                elephants,
                elephant_load,
                total_load,
            });
        }
        (outcomes, parts, coord)
    }

    fn snapshots(seed: u64, n_keys: u32, n_intervals: usize) -> Vec<Vec<(KeyId, f32)>> {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n_intervals)
            .map(|_| {
                (0..n_keys)
                    .filter_map(|key| {
                        if rng.gen::<f64>() < 0.35 {
                            None
                        } else {
                            Some((key, rng.gen_range(1.0f32..50_000.0)))
                        }
                    })
                    .collect()
            })
            .collect()
    }

    fn schemes() -> [Scheme; 3] {
        [
            Scheme::SingleFeature,
            Scheme::LatentHeat { window: 3 },
            Scheme::Hysteresis { enter: 1.2, exit: 0.6 },
        ]
    }

    #[test]
    fn sharded_equals_serial_by_bits() {
        let mut rows = snapshots(42, 37, 25);
        // Capture gaps exercise the global degenerate-interval guard.
        rows[7].clear();
        rows[8].clear();
        for scheme in schemes() {
            let mut serial = OnlineClassifier::new(ConstantLoadDetector::new(0.8), 0.9, scheme);
            let expected: Vec<IntervalOutcome> =
                rows.iter().map(|row| serial.observe(row)).collect();
            for n_shards in [1usize, 2, 4, 7] {
                let (got, _, coord) = run_sharded(n_shards, scheme, &rows);
                assert_eq!(coord.intervals_observed(), serial.intervals_observed());
                for (out, want) in got.iter().zip(&expected) {
                    let at = format!("{scheme:?} shards {n_shards} interval {}", want.interval);
                    assert_eq!(out.interval, want.interval, "{at}");
                    assert_eq!(out.elephants, want.elephants, "{at}");
                    assert_eq!(out.threshold.to_bits(), want.threshold.to_bits(), "{at}");
                    assert_eq!(
                        out.elephant_load.to_bits(),
                        want.elephant_load.to_bits(),
                        "{at}"
                    );
                    assert_eq!(out.total_load.to_bits(), want.total_load.to_bits(), "{at}");
                }
            }
        }
    }

    #[test]
    fn merged_part_states_equal_serial_export() {
        let rows = snapshots(7, 23, 14);
        for scheme in schemes() {
            let mut serial = OnlineClassifier::new(ConstantLoadDetector::new(0.8), 0.9, scheme);
            for row in &rows {
                serial.observe(row);
            }
            let want = serial.export_state();
            for n_shards in [1usize, 2, 4, 7] {
                let (_, parts, coord) = run_sharded(n_shards, scheme, &rows);
                let states: Vec<PartState> = parts.iter().map(|p| p.export_state()).collect();
                let merged = merge_states(
                    &states,
                    coord.intervals_observed(),
                    coord.smoothed_value(),
                )
                .expect("lockstep parts merge");
                assert_eq!(merged, want, "{scheme:?} shards {n_shards}");
                assert_eq!(merged.sum_t.to_bits(), want.sum_t.to_bits());
            }
        }
    }

    #[test]
    fn partition_then_resume_continues_bit_identically() {
        let rows = snapshots(11, 29, 16);
        let split = 9;
        for scheme in schemes() {
            let mut serial = OnlineClassifier::new(ConstantLoadDetector::new(0.8), 0.9, scheme);
            let expected: Vec<IntervalOutcome> =
                rows.iter().map(|row| serial.observe(row)).collect();
            for n_shards in [2usize, 4, 7] {
                // Serial prefix, then partition its exported state onto
                // fresh parts and finish sharded.
                let mut prefix =
                    OnlineClassifier::new(ConstantLoadDetector::new(0.8), 0.9, scheme);
                for row in &rows[..split] {
                    prefix.observe(row);
                }
                let state = prefix.export_state();
                let mut coord = SealCoordinator::resume(
                    ConstantLoadDetector::new(0.8),
                    0.9,
                    state.interval,
                    state.smoothed,
                );
                let mut parts: Vec<ClassifierPart> = partition_state(&state, n_shards)
                    .into_iter()
                    .enumerate()
                    .map(|(s, ps)| {
                        ClassifierPart::from_state(ShardSpec::new(s, n_shards), scheme, ps)
                            .expect("partitioned state valid")
                    })
                    .collect();
                for (n, row) in rows.iter().enumerate().skip(split) {
                    let values: Vec<f64> = row.iter().map(|&(_, r)| f64::from(r)).collect();
                    let (ctx, interval, total_load) = coord.observe_values(&values);
                    let obs: Vec<PartObservation> = parts
                        .iter_mut()
                        .map(|part| {
                            let sub: Vec<(KeyId, f32)> = row
                                .iter()
                                .filter(|&&(key, _)| part.spec().owns(key))
                                .copied()
                                .collect();
                            part.observe_part(sub, &ctx)
                        })
                        .collect();
                    let (elephants, elephant_load) = merge_observations(&obs);
                    let want = &expected[n];
                    let at = format!("{scheme:?} shards {n_shards} interval {n}");
                    assert_eq!(interval, want.interval, "{at}");
                    assert_eq!(elephants, want.elephants, "{at}");
                    assert_eq!(ctx.threshold.to_bits(), want.threshold.to_bits(), "{at}");
                    assert_eq!(elephant_load.to_bits(), want.elephant_load.to_bits(), "{at}");
                    assert_eq!(total_load.to_bits(), want.total_load.to_bits(), "{at}");
                }
            }
        }
    }

    #[test]
    fn merge_states_rejects_diverged_replicas() {
        let rows = snapshots(3, 13, 8);
        let (_, parts, coord) = run_sharded(4, Scheme::LatentHeat { window: 3 }, &rows);
        let good: Vec<PartState> = parts.iter().map(|p| p.export_state()).collect();
        let interval = coord.intervals_observed();
        assert!(merge_states(&good, interval, coord.smoothed_value()).is_ok());

        let mut bad = good.clone();
        bad[2].sum_t += 1.0;
        let err = merge_states(&bad, interval, None).unwrap_err();
        assert!(err.contains("sum_t"), "{err}");

        let mut bad = good.clone();
        bad[1].history.pop();
        let err = merge_states(&bad, interval, None).unwrap_err();
        assert!(err.contains("lockstep"), "{err}");

        let mut bad = good.clone();
        bad[1].history[0].0 += 0.5;
        let err = merge_states(&bad, interval, None).unwrap_err();
        assert!(err.contains("diverged"), "{err}");

        let mut bad = good.clone();
        // Key 0 belongs to shard 0 of 4; plant it in shard 3's state.
        bad[3].per_key.insert(0, (0, 1.0, 1));
        let err = merge_states(&bad, interval, None).unwrap_err();
        assert!(err.contains("owned by shard"), "{err}");

        assert!(merge_states(&[], 0, None).is_err());
    }

    #[test]
    fn part_from_state_rejects_foreign_keys() {
        let spec = ShardSpec::new(1, 4);
        let scheme = Scheme::LatentHeat { window: 3 };
        let mut part = ClassifierPart::new(spec, scheme);
        part.observe_part(
            vec![(1, 50.0), (5, 700.0)],
            &SealContext { threshold: 100.0, t_term: 100.0, global_empty: false },
        );
        let good = part.export_state();
        assert!(ClassifierPart::from_state(spec, scheme, good.clone()).is_ok());

        // Shift every key by +1 (structurally still valid — ascending,
        // occupancy consistent) so only the ownership check can object:
        // keys 2 and 6 belong to shard 2 of 4.
        let mut bad = good.clone();
        for entry in &mut bad.per_key {
            entry.0 += 1;
        }
        for (_, snapshot) in &mut bad.history {
            for entry in snapshot {
                entry.0 += 1;
            }
        }
        assert!(ClassifierPart::from_state(spec, scheme, bad)
            .unwrap_err()
            .contains("belongs to shard"));

        // Structural corruption goes through the shared validator.
        let mut bad = good;
        bad.per_key[0].2 += 1;
        assert!(ClassifierPart::from_state(spec, scheme, bad)
            .unwrap_err()
            .contains("occupancy"));
    }

    #[test]
    fn empty_subsnapshots_keep_parts_in_lockstep() {
        // One hot key only: every other shard sees nothing for the whole
        // run, yet must retire history and replicate sum_t identically.
        let rows: Vec<Vec<(KeyId, f32)>> =
            (0..10).map(|n| vec![(3u32, 1000.0 + n as f32)]).collect();
        let scheme = Scheme::LatentHeat { window: 3 };
        let mut serial = OnlineClassifier::new(ConstantLoadDetector::new(0.8), 0.9, scheme);
        let expected: Vec<IntervalOutcome> = rows.iter().map(|row| serial.observe(row)).collect();
        let (got, parts, coord) = run_sharded(4, scheme, &rows);
        for (out, want) in got.iter().zip(&expected) {
            assert_eq!(out.elephants, want.elephants);
            assert_eq!(out.elephant_load.to_bits(), want.elephant_load.to_bits());
        }
        let states: Vec<PartState> = parts.iter().map(|p| p.export_state()).collect();
        let merged =
            merge_states(&states, coord.intervals_observed(), coord.smoothed_value()).unwrap();
        assert_eq!(merged, serial.export_state());
    }
}
