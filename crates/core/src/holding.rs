//! The induced two-state process and its holding-time statistics.
//!
//! Classification induces, for each flow, the process
//! `Z_i(n) = 1` if elephant, `0` if mouse (paper §II). The quality of a
//! scheme for traffic engineering is judged by how long flows *hold* the
//! elephant state: the paper reports average holding times of 20–40 min
//! (volatile) for single-feature classification and ≈ 2 h for latent
//! heat, with the single-interval-elephant count dropping from > 1000 to
//! ≈ 50 (Figure 1(c)).

use std::ops::Range;

use eleph_flow::KeyId;
use rustc_hash::{FxHashMap, FxHashSet};

use crate::ClassificationResult;

/// Per-flow holding behaviour within the analysis window.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FlowHolding {
    /// Total intervals spent in the elephant state.
    pub slots: usize,
    /// Number of maximal elephant runs.
    pub runs: usize,
    /// Average holding time in slots (`slots / runs`).
    pub avg_slots: f64,
}

/// Holding-time statistics over an interval window (the paper uses the
/// five-hour busy period).
#[derive(Debug, Clone)]
pub struct HoldingStats {
    /// Interval length in seconds (to convert slots to wall time).
    pub interval_secs: u64,
    /// The analysed window.
    pub window: Range<usize>,
    /// Every flow that was an elephant at least once, with its holding
    /// behaviour.
    pub per_flow: Vec<(KeyId, FlowHolding)>,
    /// Mean of per-flow average holding times, in slots.
    pub mean_avg_slots: f64,
    /// Flows that were elephants for exactly one interval in total — the
    /// paper's headline volatility number.
    pub single_interval_flows: usize,
}

impl HoldingStats {
    /// Mean of per-flow average holding times in minutes.
    pub fn mean_avg_minutes(&self) -> f64 {
        self.mean_avg_slots * self.interval_secs as f64 / 60.0
    }

    /// Number of flows that were ever elephants in the window.
    pub fn n_elephant_flows(&self) -> usize {
        self.per_flow.len()
    }

    /// Histogram of per-flow average holding times: bucket `k` counts
    /// flows whose average rounds to `k` slots (Figure 1(c)'s data, to be
    /// plotted with a log count axis). Bucket 0 is unused.
    pub fn avg_holding_histogram(&self, max_slots: usize) -> Vec<u64> {
        let mut hist = vec![0u64; max_slots + 1];
        for (_, h) in &self.per_flow {
            let bucket = (h.avg_slots.round() as usize).clamp(1, max_slots);
            hist[bucket] += 1;
        }
        hist
    }
}

/// Analyse the two-state process over `window`.
///
/// A run that is still open at the window edge counts as a run (the
/// paper's busy-period cut does the same: holding times are clipped by
/// the observation window).
pub fn analyze(
    result: &ClassificationResult,
    window: Range<usize>,
    interval_secs: u64,
) -> HoldingStats {
    assert!(
        window.end <= result.n_intervals(),
        "window {window:?} beyond {} intervals",
        result.n_intervals()
    );
    let mut slots: FxHashMap<KeyId, usize> = FxHashMap::default();
    let mut runs: FxHashMap<KeyId, usize> = FxHashMap::default();
    let mut prev: FxHashSet<KeyId> = FxHashSet::default();

    for n in window.clone() {
        let current: FxHashSet<KeyId> = result.elephants[n].iter().copied().collect();
        for &key in &current {
            *slots.entry(key).or_default() += 1;
            if !prev.contains(&key) {
                *runs.entry(key).or_default() += 1;
            }
        }
        prev = current;
    }

    let mut per_flow: Vec<(KeyId, FlowHolding)> = slots
        .into_iter()
        .map(|(key, s)| {
            let r = runs[&key];
            (
                key,
                FlowHolding {
                    slots: s,
                    runs: r,
                    avg_slots: s as f64 / r as f64,
                },
            )
        })
        .collect();
    per_flow.sort_unstable_by_key(|&(key, _)| key);

    let mean_avg_slots = if per_flow.is_empty() {
        0.0
    } else {
        per_flow.iter().map(|(_, h)| h.avg_slots).sum::<f64>() / per_flow.len() as f64
    };
    let single_interval_flows = per_flow.iter().filter(|(_, h)| h.slots == 1).count();

    HoldingStats {
        interval_secs,
        window,
        per_flow,
        mean_avg_slots,
        single_interval_flows,
    }
}

/// Per-interval reclassification churn: how many flows changed state
/// between consecutive intervals. The paper's motivation for latent heat
/// is precisely to keep this small for TE applications.
pub fn churn(result: &ClassificationResult) -> Vec<usize> {
    let mut out = Vec::with_capacity(result.n_intervals());
    let mut prev: FxHashSet<KeyId> = FxHashSet::default();
    for n in 0..result.n_intervals() {
        let current: FxHashSet<KeyId> = result.elephants[n].iter().copied().collect();
        out.push(current.symmetric_difference(&prev).count());
        prev = current;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Scheme;

    /// Hand-build a result with scripted elephant sets.
    fn scripted(sets: Vec<Vec<KeyId>>) -> ClassificationResult {
        let n = sets.len();
        ClassificationResult {
            detector: "scripted".to_string(),
            scheme: Scheme::SingleFeature,
            thresholds: vec![0.0; n],
            raw_thresholds: vec![Some(0.0); n],
            elephants: sets,
            elephant_load: vec![0.0; n],
            total_load: vec![1.0; n],
        }
    }

    #[test]
    fn single_continuous_run() {
        let r = scripted(vec![vec![7], vec![7], vec![7], vec![]]);
        let h = analyze(&r, 0..4, 300);
        assert_eq!(h.per_flow.len(), 1);
        let (key, fh) = h.per_flow[0];
        assert_eq!(key, 7);
        assert_eq!(fh.slots, 3);
        assert_eq!(fh.runs, 1);
        assert!((fh.avg_slots - 3.0).abs() < 1e-12);
        assert_eq!(h.single_interval_flows, 0);
        assert!((h.mean_avg_minutes() - 15.0).abs() < 1e-9);
    }

    #[test]
    fn split_runs_average() {
        // 2-slot run, gap, 1-slot run → avg = 3/2.
        let r = scripted(vec![vec![1], vec![1], vec![], vec![1]]);
        let h = analyze(&r, 0..4, 300);
        let (_, fh) = h.per_flow[0];
        assert_eq!(fh.slots, 3);
        assert_eq!(fh.runs, 2);
        assert!((fh.avg_slots - 1.5).abs() < 1e-12);
    }

    #[test]
    fn single_interval_flows_counted() {
        let r = scripted(vec![vec![1, 2], vec![2], vec![]]);
        let h = analyze(&r, 0..3, 300);
        assert_eq!(h.single_interval_flows, 1); // key 1
        assert_eq!(h.n_elephant_flows(), 2);
    }

    #[test]
    fn window_clips_runs() {
        // Key elephant from 0..6, but window is 2..4: 2 slots, 1 run.
        let r = scripted((0..6).map(|_| vec![3]).collect());
        let h = analyze(&r, 2..4, 300);
        let (_, fh) = h.per_flow[0];
        assert_eq!(fh.slots, 2);
        assert_eq!(fh.runs, 1);
        assert_eq!(h.window, 2..4);
    }

    #[test]
    fn empty_window_and_no_elephants() {
        let r = scripted(vec![vec![], vec![]]);
        let h = analyze(&r, 0..2, 300);
        assert_eq!(h.n_elephant_flows(), 0);
        assert_eq!(h.mean_avg_slots, 0.0);
        assert_eq!(h.single_interval_flows, 0);
        assert!(h.avg_holding_histogram(10).iter().all(|&c| c == 0));
    }

    #[test]
    #[should_panic(expected = "beyond")]
    fn window_bounds_checked() {
        let r = scripted(vec![vec![]]);
        let _ = analyze(&r, 0..2, 300);
    }

    #[test]
    fn histogram_buckets_round_and_clamp() {
        // avg 1.0 → bucket 1; avg 1.5 → bucket 2 (rounds up); avg 60 with
        // max 10 → clamped to bucket 10.
        let r = scripted(vec![
            vec![1, 2, 3],
            vec![2, 3],
            vec![3],
            vec![2, 3],
            vec![3],
            vec![3],
        ]);
        // key 1: slots 1 runs 1 → avg 1. key 2: slots 3, runs 2 → 1.5.
        // key 3: slots 6, runs 1 → 6.
        let h = analyze(&r, 0..6, 300);
        let hist = h.avg_holding_histogram(10);
        assert_eq!(hist[1], 1);
        assert_eq!(hist[2], 1);
        assert_eq!(hist[6], 1);
        let hist_small = h.avg_holding_histogram(4);
        assert_eq!(hist_small[4], 1); // key 3 clamped
    }

    #[test]
    fn churn_counts_state_changes() {
        let r = scripted(vec![vec![1, 2], vec![2, 3], vec![2, 3], vec![]]);
        // n=0: {} → {1,2}: 2 changes. n=1: {1,2} → {2,3}: 2. n=2: 0.
        // n=3: {2,3} → {}: 2.
        assert_eq!(churn(&r), vec![2, 2, 0, 2]);
    }
}
