//! The classification schemes over a bandwidth matrix.
//!
//! The engine is columnar and dense: per-key state lives in flat
//! `Vec`s indexed by [`KeyId`] (sliding latent-heat sums, window
//! occupancy counts) plus [`KeyBitset`]s for membership, so a
//! classification pass is linear walks over the matrix's key/rate
//! columns with no hashing and no per-interval allocation beyond the
//! emitted elephant lists (which come out of bitset iteration already
//! sorted). [`classify_many`] runs a whole family of configurations
//! (γ / window / scheme variants) over one matrix in a single pass,
//! detecting each interval's raw threshold once and sharing it across
//! every configuration — the sweep experiments are built on it.

use eleph_flow::{BandwidthMatrix, IntervalView, KeyId};

use crate::bits::KeyBitset;
use crate::{ThresholdDetector, ThresholdSeries};

/// Which classification scheme to run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Scheme {
    /// §II single-feature: elephant iff `B_i(n) > T̄(n)`.
    SingleFeature,
    /// §II two-feature: elephant iff the latent heat over the past
    /// `window` slots is positive:
    /// `LH_i(n) = Σ_{j=n−w+1..n} (B_i(j) − T̄(j)) > 0`.
    LatentHeat {
        /// Number of slots summed (paper: 12 = one hour of 5-min slots).
        window: usize,
    },
    /// High/low-watermark hysteresis — the classic alternative
    /// persistence mechanism, included as an ablation baseline: a mouse
    /// becomes an elephant when `B_i(n) > enter·T̄(n)` and an elephant
    /// stays one until `B_i(n) < exit·T̄(n)` (`exit ≤ 1 ≤ enter`).
    /// Unlike latent heat it has no memory of *how much* a flow
    /// over/under-shot, only of membership.
    Hysteresis {
        /// Entry multiplier on the smoothed threshold (≥ 1).
        enter: f64,
        /// Exit multiplier on the smoothed threshold (≤ 1).
        exit: f64,
    },
}

/// One classification configuration for [`classify_many`]: everything
/// except the matrix and the threshold detector.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ClassifyConfig {
    /// EWMA smoothing factor γ for the threshold update.
    pub gamma: f64,
    /// The classification scheme.
    pub scheme: Scheme,
}

/// The outcome of classifying a whole trace.
#[derive(Debug, Clone)]
pub struct ClassificationResult {
    /// Name of the detector that produced the thresholds.
    pub detector: String,
    /// The scheme used.
    pub scheme: Scheme,
    /// Smoothed threshold `T̄(n)` per interval.
    pub thresholds: Vec<f64>,
    /// Raw detections per interval (`None` = detector abstained).
    pub raw_thresholds: Vec<Option<f64>>,
    /// Sorted elephant key ids per interval.
    pub elephants: Vec<Vec<KeyId>>,
    /// Traffic carried by elephants per interval (b/s).
    pub elephant_load: Vec<f64>,
    /// Total traffic per interval (b/s).
    pub total_load: Vec<f64>,
}

impl ClassificationResult {
    /// Number of intervals classified.
    pub fn n_intervals(&self) -> usize {
        self.elephants.len()
    }

    /// Number of elephants in interval `n` (Figure 1(a)'s y-axis).
    pub fn count(&self, n: usize) -> usize {
        self.elephants[n].len()
    }

    /// Fraction of traffic apportioned to elephants in interval `n`
    /// (Figure 1(b)'s y-axis); 0 when the interval carried no traffic.
    pub fn fraction(&self, n: usize) -> f64 {
        if self.total_load[n] <= 0.0 {
            0.0
        } else {
            self.elephant_load[n] / self.total_load[n]
        }
    }

    /// Whether `key` is an elephant in interval `n` (binary search on
    /// the sorted per-interval list).
    pub fn is_elephant(&self, n: usize, key: KeyId) -> bool {
        self.elephants[n].binary_search(&key).is_ok()
    }

    /// Mean elephant count across all intervals.
    pub fn mean_count(&self) -> f64 {
        if self.elephants.is_empty() {
            return 0.0;
        }
        self.elephants.iter().map(Vec::len).sum::<usize>() as f64 / self.elephants.len() as f64
    }

    /// Mean elephant traffic fraction across intervals with traffic.
    pub fn mean_fraction(&self) -> f64 {
        let mut sum = 0.0;
        let mut n = 0usize;
        for i in 0..self.n_intervals() {
            if self.total_load[i] > 0.0 {
                sum += self.fraction(i);
                n += 1;
            }
        }
        if n == 0 {
            0.0
        } else {
            sum / n as f64
        }
    }
}

/// The sliding latent-heat numerator for one configuration, dense over
/// key ids.
///
/// `sum[k]` is `Σ B_k(j)` over the window slots in which key `k` was
/// active; `live[k]` counts those slots. The count makes retirement
/// *exact*: when a key's last in-window activity retires, its sum is
/// reset to literal `0.0` instead of relying on `add`/`subtract`
/// round-trips to cancel — accumulated f64 rounding can otherwise leave
/// a small residue (positive residue = a phantom elephant that never
/// goes away, negative = a live micro-flow wrongly suppressed; the old
/// hash-map state dropped keys at a `1e-9` epsilon, which mis-handled
/// both ends). A mid-window negative excursion (possible only under
/// catastrophic cancellation of enormously mismatched rates) is clamped
/// to 0.
#[derive(Debug)]
struct LatentState {
    sum: Vec<f64>,
    live: Vec<u32>,
    in_window: KeyBitset,
    sum_t: f64,
    /// Per-interval finite threshold term (the smoothed threshold, or
    /// the "unbeatable" stand-in while detection has not started).
    t_terms: Vec<f64>,
}

impl LatentState {
    fn new(n_keys: usize, n_intervals: usize) -> Self {
        LatentState {
            sum: vec![0.0; n_keys],
            live: vec![0; n_keys],
            in_window: KeyBitset::with_capacity(n_keys),
            sum_t: 0.0,
            t_terms: Vec::with_capacity(n_intervals),
        }
    }

    #[inline]
    fn add(&mut self, key: KeyId, rate: f32) {
        let k = key as usize;
        if self.live[k] == 0 {
            self.sum[k] = f64::from(rate);
            self.in_window.insert(key);
        } else {
            self.sum[k] += f64::from(rate);
        }
        self.live[k] += 1;
    }

    #[inline]
    fn retire(&mut self, key: KeyId, rate: f32) {
        let k = key as usize;
        self.live[k] -= 1;
        if self.live[k] == 0 {
            self.sum[k] = 0.0;
            self.in_window.remove(key);
        } else {
            self.sum[k] = (self.sum[k] - f64::from(rate)).max(0.0);
        }
    }
}

/// Per-configuration classifier state inside [`classify_many`].
struct ConfigState {
    scheme: Scheme,
    window: usize,
    series: ThresholdSeries,
    latent: Option<LatentState>,
    members: KeyBitset,
    elephants: Vec<Vec<KeyId>>,
    elephant_load: Vec<f64>,
    total_load: Vec<f64>,
}

impl ConfigState {
    fn new(config: &ClassifyConfig, n_keys: usize, n_intervals: usize) -> Self {
        let (window, latent) = match config.scheme {
            Scheme::LatentHeat { window } => {
                assert!(window >= 1, "latent-heat window must be >= 1");
                (window, Some(LatentState::new(n_keys, n_intervals)))
            }
            Scheme::SingleFeature => (1, None),
            Scheme::Hysteresis { enter, exit } => {
                assert!(
                    enter >= 1.0 && exit <= 1.0 && exit >= 0.0,
                    "need exit <= 1 <= enter"
                );
                (1, None)
            }
        };
        ConfigState {
            scheme: config.scheme,
            window,
            series: ThresholdSeries::new(config.gamma),
            latent,
            members: KeyBitset::with_capacity(n_keys),
            elephants: Vec::with_capacity(n_intervals),
            elephant_load: Vec::with_capacity(n_intervals),
            total_load: Vec::with_capacity(n_intervals),
        }
    }

    /// Advance by one interval: threshold update, window slide,
    /// classification.
    fn step(
        &mut self,
        matrix: &BandwidthMatrix,
        n: usize,
        view: IntervalView<'_>,
        raw: Option<f64>,
        unbeatable: f64,
        total: f64,
    ) {
        let threshold = self.series.observe_raw(raw);

        if let Some(latent) = &mut self.latent {
            // Slide the window: add interval n, retire interval n−w. An
            // infinite pre-detection threshold would poison the sliding
            // threshold sum; the finite `unbeatable` stand-in (interval
            // max + 1) models "no flow can beat this interval" instead.
            let t_term = if threshold.is_finite() {
                threshold
            } else {
                unbeatable
            };
            latent.sum_t += t_term;
            latent.t_terms.push(t_term);
            for (key, rate) in view.iter() {
                latent.add(key, rate);
            }
            if n >= self.window {
                let retire = n - self.window;
                latent.sum_t -= latent.t_terms[retire];
                for (key, rate) in matrix.interval(retire).iter() {
                    latent.retire(key, rate);
                }
            }
        }

        // Classify. Every branch emits keys in ascending id order (the
        // columns are sorted and bitset iteration is ordered), so the
        // per-interval sort of the old sparse path is gone; the load is
        // accumulated in the same ascending order for bit-identical
        // float sums.
        let mut current: Vec<KeyId> = Vec::new();
        let mut load = 0.0f64;
        match self.scheme {
            Scheme::SingleFeature => {
                for (key, rate) in view.iter() {
                    let b = f64::from(rate);
                    if b > threshold {
                        current.push(key);
                        load += b;
                    }
                }
            }
            Scheme::LatentHeat { .. } => {
                // A degenerate interval — zero attributed packets — emits
                // an empty elephant set: with no traffic there is no load
                // share to apportion, and a streaming monitor must not
                // keep alerting on stale window state across a capture
                // gap. (The window itself still slides, so flows resume
                // their latent-heat standing when traffic returns.)
                if !view.is_empty() {
                    let latent = self.latent.as_ref().expect("latent state for latent heat");
                    // Effective window shrinks at the start of the trace.
                    // Both the window bitset and the interval's key column
                    // ascend, so the load join is an ordered two-pointer
                    // merge: elephants inactive this interval contribute
                    // nothing (bit-identical to adding their 0.0 rate).
                    let (keys, rates) = (view.keys(), view.rates());
                    let mut vi = 0usize;
                    for key in latent.in_window.iter() {
                        if latent.sum[key as usize] > latent.sum_t {
                            current.push(key);
                            while vi < keys.len() && keys[vi] < key {
                                vi += 1;
                            }
                            if vi < keys.len() && keys[vi] == key {
                                load += f64::from(rates[vi]);
                            }
                        }
                    }
                }
            }
            Scheme::Hysteresis { enter, exit } => {
                for (key, rate) in view.iter() {
                    let b = f64::from(rate);
                    let keep = if self.members.contains(key) {
                        b >= exit * threshold
                    } else {
                        b > enter * threshold
                    };
                    if keep {
                        current.push(key);
                        load += b;
                    }
                }
                // Membership becomes exactly the current elephant set.
                if let Some(prev) = self.elephants.last() {
                    for &key in prev {
                        self.members.remove(key);
                    }
                }
                for &key in &current {
                    self.members.insert(key);
                }
            }
        }

        self.elephant_load.push(load);
        self.total_load.push(total);
        self.elephants.push(current);
    }

    fn finish(self, detector: String) -> ClassificationResult {
        let (raw_thresholds, thresholds) = self.series.into_histories();
        ClassificationResult {
            detector,
            scheme: self.scheme,
            thresholds,
            raw_thresholds,
            elephants: self.elephants,
            elephant_load: self.elephant_load,
            total_load: self.total_load,
        }
    }
}

/// Run a scheme over a matrix with the given detector and smoothing γ.
///
/// This is the complete §II methodology in one call: per interval,
/// threshold detection → EWMA update → classification (single- or
/// two-feature, or the hysteresis baseline). Deterministic; the
/// detector sees only each interval's active-flow bandwidths.
pub fn classify<D: ThresholdDetector>(
    matrix: &BandwidthMatrix,
    detector: D,
    gamma: f64,
    scheme: Scheme,
) -> ClassificationResult {
    let config = ClassifyConfig { gamma, scheme };
    classify_many(matrix, &detector, std::slice::from_ref(&config))
        .pop()
        .expect("one config in, one result out")
}

/// Run a whole family of configurations over one matrix in a single
/// pass.
///
/// Per interval the detector runs **once** and its raw threshold is
/// shared by every configuration (each keeps its own EWMA series, so
/// different γ values still smooth independently) — for a sweep of `c`
/// configurations this removes `c − 1` of the detection passes, which
/// dominate classification cost. Every returned result is byte-identical
/// to running [`classify`] separately with that configuration (pinned by
/// property tests).
pub fn classify_many<D: ThresholdDetector>(
    matrix: &BandwidthMatrix,
    detector: &D,
    configs: &[ClassifyConfig],
) -> Vec<ClassificationResult> {
    let n_int = matrix.n_intervals();
    let n_keys = matrix.n_keys();
    let mut states: Vec<ConfigState> = configs
        .iter()
        .map(|c| ConfigState::new(c, n_keys, n_int))
        .collect();
    let mut values: Vec<f64> = Vec::new();
    let mut detected = false;

    for n in 0..n_int {
        matrix.values_into(n, &mut values);
        let raw = detector.detect(&values);
        // All configurations share the raw detection stream, so "no
        // detection yet" — the only state with an infinite smoothed
        // threshold — is config-independent; compute its finite
        // stand-in once, only while needed.
        let unbeatable = if !detected && raw.is_none() {
            values.iter().cloned().fold(0.0, f64::max) + 1.0
        } else {
            0.0
        };
        detected |= raw.is_some();

        let view = matrix.interval(n);
        let total = matrix.total(n);
        for state in &mut states {
            state.step(matrix, n, view, raw, unbeatable, total);
        }
    }

    states
        .into_iter()
        .map(|s| s.finish(detector.name()))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use eleph_flow::BandwidthMatrix;
    use eleph_net::Prefix;

    /// A fixed-threshold detector for isolating classifier behaviour.
    struct Fixed(f64);

    impl ThresholdDetector for Fixed {
        fn detect(&self, _values: &[f64]) -> Option<f64> {
            Some(self.0)
        }

        fn name(&self) -> String {
            "fixed".to_string()
        }
    }

    fn prefix(i: usize) -> Prefix {
        format!("10.{}.0.0/16", i).parse().unwrap()
    }

    /// Build a matrix from dense rows: rows[n][i] = rate of key i at n.
    fn matrix(rows: &[Vec<f64>]) -> BandwidthMatrix {
        let n_keys = rows.iter().map(Vec::len).max().unwrap_or(0);
        let keys: Vec<Prefix> = (0..n_keys).map(prefix).collect();

        // Assemble through the public packet path to keep this test
        // honest: synthesise per-interval byte counts via the aggregator.
        use eleph_bgp::{BgpTable, Origin, PeerClass, RouteEntry};
        use eleph_packet::{IpProtocol, PacketMeta};
        let table = BgpTable::from_entries(keys.iter().map(|&p| RouteEntry {
            prefix: p,
            next_hop: std::net::Ipv4Addr::new(192, 0, 2, 1),
            as_path: vec![1],
            origin: Origin::Igp,
            peer_class: PeerClass::Tier1,
        }));
        let mut agg = eleph_flow::Aggregator::new(&table, 8, 0, rows.len());
        for (n, row) in rows.iter().enumerate() {
            for (i, &rate) in row.iter().enumerate() {
                if rate <= 0.0 {
                    continue;
                }
                // rate b/s over 8 s = rate bytes.
                agg.observe(&PacketMeta {
                    ts_ns: (n as u64 * 8 + 1) * 1_000_000_000,
                    src: std::net::Ipv4Addr::new(198, 18, 0, 1),
                    dst: std::net::Ipv4Addr::new(10, i as u8, 0, 1),
                    proto: IpProtocol::Tcp,
                    src_port: 1,
                    dst_port: 2,
                    wire_len: rate as u32,
                });
            }
        }
        let (m, stats) = agg.finish();
        assert!(stats.is_conserved());
        m
    }

    #[test]
    fn single_feature_thresholding() {
        let m = matrix(&[
            vec![100.0, 10.0, 60.0],
            vec![100.0, 80.0, 10.0],
        ]);
        let r = classify(&m, Fixed(50.0), 0.0, Scheme::SingleFeature);
        assert_eq!(r.n_intervals(), 2);
        // Interval 0: keys with rate > 50 are 0 (100) and 2 (60).
        assert_eq!(r.count(0), 2);
        assert!(r.is_elephant(0, m.key_id(prefix(0)).unwrap()));
        assert!(r.is_elephant(0, m.key_id(prefix(2)).unwrap()));
        assert!(!r.is_elephant(0, m.key_id(prefix(1)).unwrap()));
        // Interval 1: keys 0 and 1.
        assert_eq!(r.count(1), 2);
        // Load accounting.
        assert!((r.elephant_load[0] - 160.0).abs() < 1.0);
        assert!((r.fraction(0) - 160.0 / 170.0).abs() < 0.01);
    }

    #[test]
    fn latent_heat_filters_one_slot_burst() {
        // Key 0: persistent 100 b/s. Key 1: a single 100 b/s burst at n=2.
        // Threshold fixed at 50: single-feature flags the burst, latent
        // heat (window 3) does not — the burst's excess (+50) cannot
        // outweigh two empty slots (−100).
        let rows: Vec<Vec<f64>> = (0..6)
            .map(|n| vec![100.0, if n == 2 { 100.0 } else { 0.0 }])
            .collect();
        let m = matrix(&rows);
        let single = classify(&m, Fixed(50.0), 0.0, Scheme::SingleFeature);
        let latent = classify(&m, Fixed(50.0), 0.0, Scheme::LatentHeat { window: 3 });

        let k0 = m.key_id(prefix(0)).unwrap();
        let k1 = m.key_id(prefix(1)).unwrap();

        assert!(single.is_elephant(2, k1), "single feature must flag the burst");
        for n in 0..6 {
            assert!(!latent.is_elephant(n, k1), "latent heat flagged burst at {n}");
            assert!(latent.is_elephant(n, k0), "persistent flow lost at {n}");
        }
    }

    #[test]
    fn latent_heat_keeps_elephant_through_one_slot_dip() {
        // Key 0 transmits 100 except a single dip to 0 at n = 3; key 1 is
        // steady background mice traffic, so the dip interval still
        // carries packets (an interval with *no* traffic at all is a
        // capture gap and deliberately emits no elephants — see
        // `empty_interval_emits_no_elephants`).
        let rows: Vec<Vec<f64>> = (0..8)
            .map(|n| vec![if n == 3 { 0.0 } else { 100.0 }, 5.0])
            .collect();
        let m = matrix(&rows);
        let single = classify(&m, Fixed(50.0), 0.0, Scheme::SingleFeature);
        let latent = classify(&m, Fixed(50.0), 0.0, Scheme::LatentHeat { window: 3 });
        let k0 = m.key_id(prefix(0)).unwrap();

        assert!(!single.is_elephant(3, k0), "single feature drops the dip");
        assert!(latent.is_elephant(3, k0), "latent heat must absorb the dip");
    }

    #[test]
    fn empty_interval_emits_no_elephants() {
        // Regression (PR 4): an interval with zero attributed packets —
        // a capture gap, not a flow dip — reports an empty elephant set
        // and a 0.0 fraction, even while latent heat stays positive.
        // Traffic resuming the next interval restores the elephant from
        // the surviving window state.
        let rows: Vec<Vec<f64>> = (0..6)
            .map(|n| {
                if n == 3 {
                    vec![0.0, 0.0]
                } else {
                    vec![100.0, 5.0]
                }
            })
            .collect();
        let m = matrix(&rows);
        let r = classify(&m, Fixed(50.0), 0.0, Scheme::LatentHeat { window: 3 });
        let k0 = m.key_id(prefix(0)).unwrap();
        assert_eq!(r.count(3), 0, "capture gap emitted elephants");
        assert_eq!(r.fraction(3), 0.0);
        assert!(r.fraction(3).is_finite());
        assert!(r.is_elephant(4, k0), "elephant lost after the gap");
    }

    #[test]
    fn latent_heat_definition_matches_naive_sum() {
        // Cross-check the sliding-sum implementation against the paper's
        // formula computed naively.
        let rows = vec![
            vec![120.0, 30.0, 70.0],
            vec![20.0, 90.0, 60.0],
            vec![80.0, 100.0, 0.0],
            vec![70.0, 0.0, 55.0],
            vec![90.0, 40.0, 65.0],
        ];
        let m = matrix(&rows);
        let window = 3;
        let r = classify(&m, Fixed(60.0), 0.0, Scheme::LatentHeat { window });
        for n in 0..rows.len() {
            for key in 0..3u32 {
                let lo = n.saturating_sub(window - 1);
                let lh: f64 = (lo..=n)
                    .map(|j| m.rate(j, m.key_id(prefix(key as usize)).unwrap()) - 60.0)
                    .sum();
                let expect = lh > 0.0;
                let got = r.is_elephant(n, m.key_id(prefix(key as usize)).unwrap());
                assert_eq!(got, expect, "key {key} at {n}: LH = {lh}");
            }
        }
    }

    #[test]
    fn infinite_pre_detection_threshold_blocks_everything() {
        struct Never;
        impl ThresholdDetector for Never {
            fn detect(&self, _v: &[f64]) -> Option<f64> {
                None
            }
            fn name(&self) -> String {
                "never".to_string()
            }
        }
        let m = matrix(&[vec![100.0], vec![100.0]]);
        for scheme in [Scheme::SingleFeature, Scheme::LatentHeat { window: 2 }] {
            let r = classify(&m, Never, 0.9, scheme);
            for n in 0..2 {
                assert_eq!(r.count(n), 0, "{scheme:?} at {n}");
            }
        }
    }

    #[test]
    fn summary_statistics() {
        let m = matrix(&[vec![100.0, 10.0], vec![100.0, 10.0]]);
        let r = classify(&m, Fixed(50.0), 0.0, Scheme::SingleFeature);
        assert!((r.mean_count() - 1.0).abs() < 1e-12);
        assert!((r.mean_fraction() - 100.0 / 110.0).abs() < 0.01);
    }

    #[test]
    fn gamma_smooths_threshold_series() {
        struct Alternate(std::cell::Cell<bool>);
        impl ThresholdDetector for Alternate {
            fn detect(&self, _v: &[f64]) -> Option<f64> {
                let hi = self.0.get();
                self.0.set(!hi);
                Some(if hi { 100.0 } else { 0.0 })
            }
            fn name(&self) -> String {
                "alt".to_string()
            }
        }
        let rows: Vec<Vec<f64>> = (0..40).map(|_| vec![50.0]).collect();
        let m = matrix(&rows);
        let r = classify(&m, Alternate(std::cell::Cell::new(true)), 0.9, Scheme::SingleFeature);
        // After burn-in the smoothed series must stay near 50 despite the
        // raw series swinging 0..100.
        let tail = &r.thresholds[20..];
        for t in tail {
            assert!((t - 50.0).abs() < 15.0, "threshold {t} insufficiently smooth");
        }
    }

    #[test]
    fn hysteresis_membership_over_matrix() {
        // Key 0 rides the watermarks: enters at 130 (> 1.2·100), survives
        // a dip to 80 (≥ 0.6·100), leaves at 50, may not re-enter at 110.
        let rows: Vec<Vec<f64>> = [130.0, 80.0, 50.0, 110.0, 125.0]
            .iter()
            .map(|&r| vec![r])
            .collect();
        let m = matrix(&rows);
        let r = classify(
            &m,
            Fixed(100.0),
            0.0,
            Scheme::Hysteresis { enter: 1.2, exit: 0.6 },
        );
        let got: Vec<bool> = (0..rows.len()).map(|n| r.count(n) == 1).collect();
        assert_eq!(got, vec![true, true, false, false, true]);
    }

    #[test]
    fn classify_many_single_pass_matches_independent_runs() {
        let rows: Vec<Vec<f64>> = (0..10)
            .map(|n| {
                vec![
                    100.0 + n as f64,
                    if n % 3 == 0 { 90.0 } else { 10.0 },
                    55.0,
                    if n > 5 { 200.0 } else { 0.0 },
                ]
            })
            .collect();
        let m = matrix(&rows);
        let configs = [
            ClassifyConfig { gamma: 0.0, scheme: Scheme::SingleFeature },
            ClassifyConfig { gamma: 0.9, scheme: Scheme::LatentHeat { window: 3 } },
            ClassifyConfig { gamma: 0.5, scheme: Scheme::LatentHeat { window: 1 } },
            ClassifyConfig {
                gamma: 0.9,
                scheme: Scheme::Hysteresis { enter: 1.2, exit: 0.6 },
            },
        ];
        let shared = classify_many(&m, &crate::ConstantLoadDetector::new(0.8), &configs);
        assert_eq!(shared.len(), configs.len());
        for (config, got) in configs.iter().zip(&shared) {
            let solo = classify(
                &m,
                crate::ConstantLoadDetector::new(0.8),
                config.gamma,
                config.scheme,
            );
            assert_eq!(got.detector, solo.detector);
            assert_eq!(got.elephants, solo.elephants, "{config:?}");
            assert_eq!(got.thresholds, solo.thresholds, "{config:?}");
            assert_eq!(got.raw_thresholds, solo.raw_thresholds, "{config:?}");
            assert_eq!(got.elephant_load, solo.elephant_load, "{config:?}");
            assert_eq!(got.total_load, solo.total_load, "{config:?}");
        }
    }

    #[test]
    fn classify_many_empty_config_list() {
        let m = matrix(&[vec![100.0]]);
        let out = classify_many(&m, &Fixed(50.0), &[]);
        assert!(out.is_empty());
    }
}
