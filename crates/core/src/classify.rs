//! The classification schemes over a bandwidth matrix.

use eleph_flow::{BandwidthMatrix, KeyId};
use rustc_hash::{FxHashMap, FxHashSet};

use crate::{ThresholdDetector, ThresholdTracker};

/// Which classification scheme to run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Scheme {
    /// §II single-feature: elephant iff `B_i(n) > T̄(n)`.
    SingleFeature,
    /// §II two-feature: elephant iff the latent heat over the past
    /// `window` slots is positive:
    /// `LH_i(n) = Σ_{j=n−w+1..n} (B_i(j) − T̄(j)) > 0`.
    LatentHeat {
        /// Number of slots summed (paper: 12 = one hour of 5-min slots).
        window: usize,
    },
    /// High/low-watermark hysteresis — the classic alternative
    /// persistence mechanism, included as an ablation baseline: a mouse
    /// becomes an elephant when `B_i(n) > enter·T̄(n)` and an elephant
    /// stays one until `B_i(n) < exit·T̄(n)` (`exit ≤ 1 ≤ enter`).
    /// Unlike latent heat it has no memory of *how much* a flow
    /// over/under-shot, only of membership.
    Hysteresis {
        /// Entry multiplier on the smoothed threshold (≥ 1).
        enter: f64,
        /// Exit multiplier on the smoothed threshold (≤ 1).
        exit: f64,
    },
}

/// The outcome of classifying a whole trace.
#[derive(Debug, Clone)]
pub struct ClassificationResult {
    /// Name of the detector that produced the thresholds.
    pub detector: String,
    /// The scheme used.
    pub scheme: Scheme,
    /// Smoothed threshold `T̄(n)` per interval.
    pub thresholds: Vec<f64>,
    /// Raw detections per interval (`None` = detector abstained).
    pub raw_thresholds: Vec<Option<f64>>,
    /// Sorted elephant key ids per interval.
    pub elephants: Vec<Vec<KeyId>>,
    /// Traffic carried by elephants per interval (b/s).
    pub elephant_load: Vec<f64>,
    /// Total traffic per interval (b/s).
    pub total_load: Vec<f64>,
}

impl ClassificationResult {
    /// Number of intervals classified.
    pub fn n_intervals(&self) -> usize {
        self.elephants.len()
    }

    /// Number of elephants in interval `n` (Figure 1(a)'s y-axis).
    pub fn count(&self, n: usize) -> usize {
        self.elephants[n].len()
    }

    /// Fraction of traffic apportioned to elephants in interval `n`
    /// (Figure 1(b)'s y-axis); 0 when the interval carried no traffic.
    pub fn fraction(&self, n: usize) -> f64 {
        if self.total_load[n] <= 0.0 {
            0.0
        } else {
            self.elephant_load[n] / self.total_load[n]
        }
    }

    /// Whether `key` is an elephant in interval `n`.
    pub fn is_elephant(&self, n: usize, key: KeyId) -> bool {
        self.elephants[n].binary_search(&key).is_ok()
    }

    /// Mean elephant count across all intervals.
    pub fn mean_count(&self) -> f64 {
        if self.elephants.is_empty() {
            return 0.0;
        }
        self.elephants.iter().map(Vec::len).sum::<usize>() as f64 / self.elephants.len() as f64
    }

    /// Mean elephant traffic fraction across intervals with traffic.
    pub fn mean_fraction(&self) -> f64 {
        let mut sum = 0.0;
        let mut n = 0usize;
        for i in 0..self.n_intervals() {
            if self.total_load[i] > 0.0 {
                sum += self.fraction(i);
                n += 1;
            }
        }
        if n == 0 {
            0.0
        } else {
            sum / n as f64
        }
    }
}

/// Run a scheme over a matrix with the given detector and smoothing γ.
///
/// This is the complete §II methodology in one call: per interval,
/// threshold detection → EWMA update → classification (single- or
/// two-feature). Deterministic; the detector sees only each interval's
/// active-flow bandwidths.
pub fn classify<D: ThresholdDetector>(
    matrix: &BandwidthMatrix,
    detector: D,
    gamma: f64,
    scheme: Scheme,
) -> ClassificationResult {
    let mut tracker = ThresholdTracker::new(detector, gamma);
    let n_int = matrix.n_intervals();

    let mut elephants: Vec<Vec<KeyId>> = Vec::with_capacity(n_int);
    let mut elephant_load: Vec<f64> = Vec::with_capacity(n_int);
    let mut total_load: Vec<f64> = Vec::with_capacity(n_int);

    // Latent-heat state: sliding sums of B_i over the window per key, and
    // of T̄ over the window. LH_i(n) = sum_b[i] − sum_t, so a key is an
    // elephant iff sum_b[i] > sum_t — flows with no recorded activity in
    // the window have sum_b = 0 and can never qualify (sum_t > 0).
    let window = match scheme {
        Scheme::LatentHeat { window } => {
            assert!(window >= 1, "latent-heat window must be >= 1");
            window
        }
        Scheme::SingleFeature => 1,
        Scheme::Hysteresis { enter, exit } => {
            assert!(enter >= 1.0 && exit <= 1.0 && exit >= 0.0, "need exit <= 1 <= enter");
            1
        }
    };
    let mut hysteresis_members: FxHashSet<KeyId> = FxHashSet::default();
    let mut sum_b: FxHashMap<KeyId, f64> = FxHashMap::default();
    let mut sum_t = 0.0f64;
    let mut t_hist: Vec<f64> = Vec::with_capacity(n_int);

    for n in 0..n_int {
        let values = matrix.values(n);
        let threshold = tracker.observe(&values);
        t_hist.push(threshold);

        // Slide the window: add interval n, retire interval n-window.
        if threshold.is_finite() {
            sum_t += threshold;
        } else {
            // An infinite pre-detection threshold poisons the sliding sum;
            // model it as "no flow can beat this interval" by adding the
            // interval's max value + 1 — finite, but above everyone.
            sum_t += values.iter().cloned().fold(0.0, f64::max) + 1.0;
        }
        for &(key, rate) in matrix.interval(n) {
            *sum_b.entry(key).or_insert(0.0) += f64::from(rate);
        }
        if n >= window {
            let retire = n - window;
            let t_old = t_hist[retire];
            if t_old.is_finite() {
                sum_t -= t_old;
            } else {
                let old_vals = matrix.values(retire);
                sum_t -= old_vals.iter().cloned().fold(0.0, f64::max) + 1.0;
            }
            for &(key, rate) in matrix.interval(retire) {
                if let Some(s) = sum_b.get_mut(&key) {
                    *s -= f64::from(rate);
                    if *s <= 1e-9 {
                        sum_b.remove(&key);
                    }
                }
            }
        }

        // Classify.
        let mut current: Vec<KeyId> = match scheme {
            Scheme::SingleFeature => matrix
                .interval(n)
                .iter()
                .filter(|&&(_, rate)| f64::from(rate) > threshold)
                .map(|&(key, _)| key)
                .collect(),
            Scheme::LatentHeat { .. } => {
                // Effective window shrinks at the start of the trace.
                sum_b
                    .iter()
                    .filter(|&(_, &s)| s > sum_t)
                    .map(|(&key, _)| key)
                    .collect()
            }
            Scheme::Hysteresis { enter, exit } => {
                let next: Vec<KeyId> = matrix
                    .interval(n)
                    .iter()
                    .filter(|&&(key, rate)| {
                        let b = f64::from(rate);
                        if hysteresis_members.contains(&key) {
                            b >= exit * threshold
                        } else {
                            b > enter * threshold
                        }
                    })
                    .map(|&(key, _)| key)
                    .collect();
                hysteresis_members = next.iter().copied().collect();
                next
            }
        };
        current.sort_unstable();

        let load: f64 = current.iter().map(|&key| matrix.rate(n, key)).sum();
        elephant_load.push(load);
        total_load.push(matrix.total(n));
        elephants.push(current);
    }

    ClassificationResult {
        detector: tracker.detector_name(),
        scheme,
        thresholds: tracker.smoothed_history().to_vec(),
        raw_thresholds: tracker.raw_history().to_vec(),
        elephants,
        elephant_load,
        total_load,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use eleph_flow::BandwidthMatrix;
    use eleph_net::Prefix;

    /// A fixed-threshold detector for isolating classifier behaviour.
    struct Fixed(f64);

    impl ThresholdDetector for Fixed {
        fn detect(&self, _values: &[f64]) -> Option<f64> {
            Some(self.0)
        }

        fn name(&self) -> String {
            "fixed".to_string()
        }
    }

    fn prefix(i: usize) -> Prefix {
        format!("10.{}.0.0/16", i).parse().unwrap()
    }

    /// Build a matrix from dense rows: rows[n][i] = rate of key i at n.
    fn matrix(rows: &[Vec<f64>]) -> BandwidthMatrix {
        let n_keys = rows.iter().map(Vec::len).max().unwrap_or(0);
        let keys: Vec<Prefix> = (0..n_keys).map(prefix).collect();

        // Assemble through the public packet path to keep this test
        // honest: synthesise per-interval byte counts via the aggregator.
        use eleph_bgp::{BgpTable, Origin, PeerClass, RouteEntry};
        use eleph_packet::{IpProtocol, PacketMeta};
        let table = BgpTable::from_entries(keys.iter().map(|&p| RouteEntry {
            prefix: p,
            next_hop: std::net::Ipv4Addr::new(192, 0, 2, 1),
            as_path: vec![1],
            origin: Origin::Igp,
            peer_class: PeerClass::Tier1,
        }));
        let mut agg = eleph_flow::Aggregator::new(&table, 8, 0, rows.len());
        for (n, row) in rows.iter().enumerate() {
            for (i, &rate) in row.iter().enumerate() {
                if rate <= 0.0 {
                    continue;
                }
                // rate b/s over 8 s = rate bytes.
                agg.observe(&PacketMeta {
                    ts_ns: (n as u64 * 8 + 1) * 1_000_000_000,
                    src: std::net::Ipv4Addr::new(198, 18, 0, 1),
                    dst: std::net::Ipv4Addr::new(10, i as u8, 0, 1),
                    proto: IpProtocol::Tcp,
                    src_port: 1,
                    dst_port: 2,
                    wire_len: rate as u32,
                });
            }
        }
        let (m, stats) = agg.finish();
        assert!(stats.is_conserved());
        m
    }

    #[test]
    fn single_feature_thresholding() {
        let m = matrix(&[
            vec![100.0, 10.0, 60.0],
            vec![100.0, 80.0, 10.0],
        ]);
        let r = classify(&m, Fixed(50.0), 0.0, Scheme::SingleFeature);
        assert_eq!(r.n_intervals(), 2);
        // Interval 0: keys with rate > 50 are 0 (100) and 2 (60).
        assert_eq!(r.count(0), 2);
        assert!(r.is_elephant(0, m.key_id(prefix(0)).unwrap()));
        assert!(r.is_elephant(0, m.key_id(prefix(2)).unwrap()));
        assert!(!r.is_elephant(0, m.key_id(prefix(1)).unwrap()));
        // Interval 1: keys 0 and 1.
        assert_eq!(r.count(1), 2);
        // Load accounting.
        assert!((r.elephant_load[0] - 160.0).abs() < 1.0);
        assert!((r.fraction(0) - 160.0 / 170.0).abs() < 0.01);
    }

    #[test]
    fn latent_heat_filters_one_slot_burst() {
        // Key 0: persistent 100 b/s. Key 1: a single 100 b/s burst at n=2.
        // Threshold fixed at 50: single-feature flags the burst, latent
        // heat (window 3) does not — the burst's excess (+50) cannot
        // outweigh two empty slots (−100).
        let rows: Vec<Vec<f64>> = (0..6)
            .map(|n| vec![100.0, if n == 2 { 100.0 } else { 0.0 }])
            .collect();
        let m = matrix(&rows);
        let single = classify(&m, Fixed(50.0), 0.0, Scheme::SingleFeature);
        let latent = classify(&m, Fixed(50.0), 0.0, Scheme::LatentHeat { window: 3 });

        let k0 = m.key_id(prefix(0)).unwrap();
        let k1 = m.key_id(prefix(1)).unwrap();

        assert!(single.is_elephant(2, k1), "single feature must flag the burst");
        for n in 0..6 {
            assert!(!latent.is_elephant(n, k1), "latent heat flagged burst at {n}");
            assert!(latent.is_elephant(n, k0), "persistent flow lost at {n}");
        }
    }

    #[test]
    fn latent_heat_keeps_elephant_through_one_slot_dip() {
        // Key 0 transmits 100 except a single dip to 0 at n = 3.
        let rows: Vec<Vec<f64>> = (0..8)
            .map(|n| vec![if n == 3 { 0.0 } else { 100.0 }])
            .collect();
        let m = matrix(&rows);
        let single = classify(&m, Fixed(50.0), 0.0, Scheme::SingleFeature);
        let latent = classify(&m, Fixed(50.0), 0.0, Scheme::LatentHeat { window: 3 });
        let k0 = m.key_id(prefix(0)).unwrap();

        assert!(!single.is_elephant(3, k0), "single feature drops the dip");
        assert!(latent.is_elephant(3, k0), "latent heat must absorb the dip");
    }

    #[test]
    fn latent_heat_definition_matches_naive_sum() {
        // Cross-check the sliding-sum implementation against the paper's
        // formula computed naively.
        let rows = vec![
            vec![120.0, 30.0, 70.0],
            vec![20.0, 90.0, 60.0],
            vec![80.0, 100.0, 0.0],
            vec![70.0, 0.0, 55.0],
            vec![90.0, 40.0, 65.0],
        ];
        let m = matrix(&rows);
        let window = 3;
        let r = classify(&m, Fixed(60.0), 0.0, Scheme::LatentHeat { window });
        for n in 0..rows.len() {
            for key in 0..3u32 {
                let lo = n.saturating_sub(window - 1);
                let lh: f64 = (lo..=n)
                    .map(|j| m.rate(j, m.key_id(prefix(key as usize)).unwrap()) - 60.0)
                    .sum();
                let expect = lh > 0.0;
                let got = r.is_elephant(n, m.key_id(prefix(key as usize)).unwrap());
                assert_eq!(got, expect, "key {key} at {n}: LH = {lh}");
            }
        }
    }

    #[test]
    fn infinite_pre_detection_threshold_blocks_everything() {
        struct Never;
        impl ThresholdDetector for Never {
            fn detect(&self, _v: &[f64]) -> Option<f64> {
                None
            }
            fn name(&self) -> String {
                "never".to_string()
            }
        }
        let m = matrix(&[vec![100.0], vec![100.0]]);
        for scheme in [Scheme::SingleFeature, Scheme::LatentHeat { window: 2 }] {
            let r = classify(&m, Never, 0.9, scheme);
            for n in 0..2 {
                assert_eq!(r.count(n), 0, "{scheme:?} at {n}");
            }
        }
    }

    #[test]
    fn summary_statistics() {
        let m = matrix(&[vec![100.0, 10.0], vec![100.0, 10.0]]);
        let r = classify(&m, Fixed(50.0), 0.0, Scheme::SingleFeature);
        assert!((r.mean_count() - 1.0).abs() < 1e-12);
        assert!((r.mean_fraction() - 100.0 / 110.0).abs() < 0.01);
    }

    #[test]
    fn gamma_smooths_threshold_series() {
        struct Alternate(std::cell::Cell<bool>);
        impl ThresholdDetector for Alternate {
            fn detect(&self, _v: &[f64]) -> Option<f64> {
                let hi = self.0.get();
                self.0.set(!hi);
                Some(if hi { 100.0 } else { 0.0 })
            }
            fn name(&self) -> String {
                "alt".to_string()
            }
        }
        let rows: Vec<Vec<f64>> = (0..40).map(|_| vec![50.0]).collect();
        let m = matrix(&rows);
        let r = classify(&m, Alternate(std::cell::Cell::new(true)), 0.9, Scheme::SingleFeature);
        // After burn-in the smoothed series must stay near 50 despite the
        // raw series swinging 0..100.
        let tail = &r.thresholds[20..];
        for t in tail {
            assert!((t - 50.0).abs() < 15.0, "threshold {t} insufficiently smooth");
        }
    }
}
