//! Sub-linear state backends for the open-interval byte row.
//!
//! Every per-key structure on the streaming path — the dense byte row,
//! the classifier's `sum`/`live` vectors — is O(distinct keys). That is
//! fine for ~20k BGP prefixes but collapses for 5-tuple flows from
//! millions of users. This module abstracts the *open interval's* byte
//! accumulation behind [`StateBackend`], so an interval can be sealed
//! from either the exact dense row or a fixed-budget sketch snapshot
//! without touching detection, EWMA smoothing, latent heat, or
//! hysteresis: whatever the backend, the sealed snapshot feeds the same
//! [`OnlineClassifier::observe`](crate::OnlineClassifier::observe).
//!
//! Four backends:
//!
//! * [`ExactDense`] — the reference implementation: the dense
//!   `bytes-per-key` row plus a touched-key list, byte-for-byte the
//!   pre-sketch pipeline behaviour (and pinned so by the pipeline's
//!   equivalence tests). O(distinct keys) memory.
//! * [`SpaceSaving`] — stream-summary top-k with min-counter eviction
//!   (Metwally et al.; the elephant-detection variant analysed by Ben
//!   Basat et al., *Optimal Elephant Flow Detection*). Deterministic
//!   error bound: any key's count error ≤ total/k for capacity k.
//! * [`CountMinRow`] — a count-min sketch with conservative update
//!   backing an approximate byte row, plus a bounded heavy-hitter
//!   candidate list so the sealed snapshot is enumerable. Estimates
//!   never undercount.
//! * [`AdaptiveBloom`] — an Estan–Varghese multistage filter with the
//!   periodic refresh + threshold adaptation of the supermarket-model
//!   analysis (Chabchoub et al.): keys must push ≥ `threshold` bytes
//!   through every stage before they are tracked exactly; stages reset
//!   each interval and the threshold adapts to the tracked population.
//!
//! All sketch backends are deterministic: hashing uses fixed
//! compile-time seeds, eviction ties break on scan order, and nothing
//! reads a clock or an RNG — the same packet sequence always produces
//! the same sealed snapshots, checkpoint payloads, and JSONL.
//!
//! What is approximated and what stays exact: only the per-interval
//! byte *row* is approximate. Key identity, interval geometry, packet
//! accounting, threshold detection, smoothing and scheme state all run
//! unchanged on the sealed snapshot — so the accuracy loss of a sketch
//! is exactly the divergence of its snapshot from the dense row, which
//! the `eleph sketch` harness measures against the exact oracle.

use eleph_flow::KeyId;
use rustc_hash::FxHashMap;

/// How many bytes one [`SpaceSaving`] entry costs (key + counter +
/// error bound + hash-index overhead), used to derive capacity from a
/// byte budget.
const SS_ENTRY_COST: usize = 64;

/// Count-min depth (independent hash rows).
const CM_DEPTH: usize = 4;

/// Bytes one candidate-list entry costs ([`CountMinRow`] and
/// [`AdaptiveBloom`] tracked entries: key + counter + index overhead).
const CANDIDATE_COST: usize = 64;

/// Multistage-filter stage count.
const BLOOM_STAGES: usize = 4;

/// [`AdaptiveBloom`] tracking threshold: initial value and adaptation
/// floor, in bytes per interval. Both are one small packet: the filter
/// starts *permissive* — tracking essentially every active key — and
/// only tightens when promotions saturate the tracked capacity. When
/// capacity allows it this keeps the sealed snapshot's *population*
/// (and therefore the detector's threshold) unbiased; dropping the mice
/// from the snapshot would inflate the constant-load threshold and
/// silently cost recall on marginal elephants. Starting selective
/// instead would bias the run's early intervals, and that bias
/// persists: the EWMA threshold (γ close to 1) and the latent-heat
/// window both remember it long after the threshold has adapted down.
const BLOOM_THRESHOLD_INIT: u64 = 64;
const BLOOM_THRESHOLD_MIN: u64 = 64;
/// Adaptation ceiling (2^40 bytes/interval ≈ a terabyte — far past any
/// realistic per-flow interval volume).
const BLOOM_THRESHOLD_MAX: u64 = 1 << 40;

/// Version tag prefixed to every serialized sketch payload, so the
/// checkpoint format can evolve per backend.
const SKETCH_PAYLOAD_VERSION: u32 = 1;

/// Fixed odd multipliers seeding the per-row hash functions (splitmix64
/// increments); compile-time constants so hashing is deterministic
/// across runs, processes and platforms.
const HASH_SEEDS: [u64; 4] = [
    0x9E37_79B9_7F4A_7C15,
    0xBF58_476D_1CE4_E5B9,
    0x94D0_49BB_1331_11EB,
    0xD6E8_FEB8_6659_FD93,
];

/// One deterministic 64-bit hash of `key` under `seed` (splitmix64
/// finalizer — full avalanche, no allocation, no RNG).
#[inline]
fn hash_key(key: KeyId, seed: u64) -> u64 {
    let mut x = u64::from(key) ^ seed;
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// Largest power of two ≤ `x` (minimum 1).
fn prev_power_of_two(x: usize) -> usize {
    if x <= 1 {
        1
    } else {
        1 << (usize::BITS - 1 - x.leading_zeros())
    }
}

/// The open-interval byte accumulation behind the streaming pipeline's
/// seal path.
///
/// Contract (what the pipeline relies on):
///
/// * [`record`](StateBackend::record) folds attributed bytes for a key
///   into the open interval; zero-byte packets leave no entry (matching
///   the batch aggregator).
/// * [`seal_into`](StateBackend::seal_into) clears `out` and fills it
///   with the open interval's `(key, rate)` snapshot in **ascending key
///   order**, converting with the exact expression of the batch matrix
///   (`(bytes as f64 * 8.0 / secs) as f32`), then resets the open
///   state. The snapshot feeds `OnlineClassifier::observe` unchanged.
/// * [`export_sketch`](StateBackend::export_sketch) /
///   [`restore_sketch`](StateBackend::restore_sketch) round-trip the
///   backend's full open state through a versioned byte payload
///   (checkpoint format v3); the exact backend instead exposes its row
///   through [`open_row`](StateBackend::open_row) (format v2).
/// * Everything is deterministic: same record sequence → same
///   snapshots, same payload bytes.
pub trait StateBackend: Send {
    /// Stable identifier used in checkpoints and the CLI
    /// (`"exact"`, `"spacesaving"`, `"cmrow"`, `"bloom"`).
    fn kind(&self) -> &'static str;

    /// Fold `bytes` attributed to `key` into the open interval.
    fn record(&mut self, key: KeyId, bytes: u64);

    /// Whether the open interval holds any attributed traffic.
    fn has_traffic(&self) -> bool;

    /// Seal the open interval: clear `out`, fill it with the snapshot
    /// (ascending keys, exact batch-matrix rate arithmetic), reset the
    /// open state.
    fn seal_into(&mut self, secs: f64, out: &mut Vec<(KeyId, f32)>);

    /// The open interval's exact nonzero byte row as sorted
    /// `(key, bytes)` pairs — the checkpoint-v2 frontier. Sketches
    /// return an empty row (their state lives in the sketch payload).
    fn open_row(&self) -> Vec<(KeyId, u64)>;

    /// Serialized open state for checkpointing (`None` for the exact
    /// backend, whose state is the [`open_row`](StateBackend::open_row)).
    fn export_sketch(&self) -> Option<Vec<u8>>;

    /// Restore the open state from an
    /// [`export_sketch`](StateBackend::export_sketch) payload written
    /// by an identically configured backend.
    fn restore_sketch(&mut self, payload: &[u8]) -> Result<(), String>;

    /// Resident state footprint in bytes: the dense-row footprint for
    /// the exact backend, the configured fixed budget for sketches.
    fn state_bytes(&self) -> usize;
}

/// Which state backend a pipeline runs, plus its memory budget —
/// the single configuration surface shared by the pipeline builder,
/// the CLI and checkpoints.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StateBackendConfig {
    /// The exact dense row (the default; O(distinct keys) memory).
    Exact,
    /// [`SpaceSaving`] with this byte budget.
    SpaceSaving {
        /// Total state budget in bytes.
        budget_bytes: usize,
    },
    /// [`CountMinRow`] with this byte budget.
    CountMinRow {
        /// Total state budget in bytes.
        budget_bytes: usize,
    },
    /// [`AdaptiveBloom`] with this byte budget.
    AdaptiveBloom {
        /// Total state budget in bytes.
        budget_bytes: usize,
    },
}

impl StateBackendConfig {
    /// Parse a CLI backend name (`exact | spacesaving | cmrow | bloom`)
    /// with a byte budget (ignored for `exact`).
    pub fn parse(name: &str, budget_bytes: usize) -> Result<Self, String> {
        match name {
            "exact" => Ok(StateBackendConfig::Exact),
            "spacesaving" => Ok(StateBackendConfig::SpaceSaving { budget_bytes }),
            "cmrow" => Ok(StateBackendConfig::CountMinRow { budget_bytes }),
            "bloom" => Ok(StateBackendConfig::AdaptiveBloom { budget_bytes }),
            other => Err(format!(
                "unknown state backend {other}; supported: exact spacesaving cmrow bloom"
            )),
        }
    }

    /// The stable backend identifier (matches
    /// [`StateBackend::kind`]).
    pub fn kind(&self) -> &'static str {
        match self {
            StateBackendConfig::Exact => "exact",
            StateBackendConfig::SpaceSaving { .. } => "spacesaving",
            StateBackendConfig::CountMinRow { .. } => "cmrow",
            StateBackendConfig::AdaptiveBloom { .. } => "bloom",
        }
    }

    /// Build the configured sketch backend (`None` for
    /// [`StateBackendConfig::Exact`], which the pipeline runs on its
    /// monomorphic dense path instead of through a trait object).
    pub fn build(&self) -> Option<Box<dyn StateBackend>> {
        match *self {
            StateBackendConfig::Exact => None,
            StateBackendConfig::SpaceSaving { budget_bytes } => {
                Some(Box::new(SpaceSaving::with_budget(budget_bytes)))
            }
            StateBackendConfig::CountMinRow { budget_bytes } => {
                Some(Box::new(CountMinRow::with_budget(budget_bytes)))
            }
            StateBackendConfig::AdaptiveBloom { budget_bytes } => {
                Some(Box::new(AdaptiveBloom::with_budget(budget_bytes)))
            }
        }
    }
}

// ---------------------------------------------------------------------
// Exact dense row
// ---------------------------------------------------------------------

/// The exact open-interval byte row: dense `bytes[key]` plus the list
/// of keys touched this interval. This is the pre-sketch pipeline's
/// accumulation verbatim — the pipeline's serial engine embeds it
/// directly (static dispatch), so `--state exact` output, checkpoints
/// and JSONL are byte-identical to every earlier release.
#[derive(Debug, Default)]
pub struct ExactDense {
    /// Open interval: bytes per key, dense, indexed by [`KeyId`].
    row: Vec<u64>,
    /// Keys with nonzero bytes in the open interval (unsorted until
    /// sealing).
    touched: Vec<KeyId>,
}

impl ExactDense {
    /// An empty row.
    pub fn new() -> Self {
        Self::default()
    }

    /// Rebuild (and validate) the open row from a checkpoint's sparse
    /// `(key, bytes)` pairs against a key table of `n_keys` entries.
    pub fn from_checkpoint_row(n_keys: usize, pairs: &[(KeyId, u64)]) -> Result<Self, String> {
        let mut row = vec![0u64; n_keys];
        let mut touched = Vec::with_capacity(pairs.len());
        for &(key, bytes) in pairs {
            let slot = row
                .get_mut(key as usize)
                .ok_or_else(|| format!("row key {key} has no key entry"))?;
            if *slot != 0 || bytes == 0 {
                return Err(format!("row key {key} duplicated or zero"));
            }
            *slot = bytes;
            touched.push(key);
        }
        Ok(ExactDense { row, touched })
    }
}

impl StateBackend for ExactDense {
    fn kind(&self) -> &'static str {
        "exact"
    }

    #[inline]
    fn record(&mut self, key: KeyId, bytes: u64) {
        let k = key as usize;
        if k >= self.row.len() {
            self.row.resize(k + 1, 0);
        }
        // First nonzero bytes for this key this interval: remember it
        // for the seal scan (zero-length packets are attributed but,
        // like the batch path, leave no entry).
        if self.row[k] == 0 && bytes > 0 {
            self.touched.push(key);
        }
        self.row[k] += bytes;
    }

    fn has_traffic(&self) -> bool {
        !self.touched.is_empty()
    }

    fn seal_into(&mut self, secs: f64, out: &mut Vec<(KeyId, f32)>) {
        self.touched.sort_unstable();
        out.clear();
        for &key in self.touched.iter() {
            let bytes = self.row[key as usize];
            self.row[key as usize] = 0;
            debug_assert!(bytes > 0, "touched key with zero bytes");
            // Identical expression to the batch `matrix_from_rows`,
            // so the f32 rate is bit-identical.
            out.push((key, (bytes as f64 * 8.0 / secs) as f32));
        }
        self.touched.clear();
    }

    fn open_row(&self) -> Vec<(KeyId, u64)> {
        let mut pairs: Vec<(KeyId, u64)> =
            self.touched.iter().map(|&key| (key, self.row[key as usize])).collect();
        pairs.sort_unstable();
        pairs
    }

    fn export_sketch(&self) -> Option<Vec<u8>> {
        None
    }

    fn restore_sketch(&mut self, _payload: &[u8]) -> Result<(), String> {
        Err("the exact backend has no sketch payload (its state is the open row)".to_string())
    }

    fn state_bytes(&self) -> usize {
        self.row.len() * std::mem::size_of::<u64>()
            + self.touched.len() * std::mem::size_of::<KeyId>()
    }
}

// ---------------------------------------------------------------------
// Space-Saving
// ---------------------------------------------------------------------

/// One stream-summary entry: the key, its (over-)estimated byte count,
/// and the overestimation bound inherited at insertion.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct SsEntry {
    key: KeyId,
    count: u64,
    err: u64,
}

/// Space-Saving stream summary over the open interval's byte counts:
/// at most `capacity` tracked keys; a new key evicts the current
/// minimum counter and inherits its count (Metwally et al. 2005).
///
/// Deterministic guarantees, for capacity k and recorded total B:
///
/// * every entry overestimates: `true ≤ count`, `count − true ≤ err`;
/// * `err ≤ min-counter ≤ B/k`, so **any key's count error is at most
///   B/k** — including untracked keys (whose true count is ≤ B/k);
/// * any key with true count > B/k is tracked.
///
/// Eviction scans for the minimum counter with a cached-minimum
/// shortcut (counts only grow within an interval, so a known minimum
/// stays minimal until its own slot changes); ties break on the lowest
/// slot index, so the summary is a pure function of the record
/// sequence.
#[derive(Debug)]
pub struct SpaceSaving {
    budget: usize,
    capacity: usize,
    entries: Vec<SsEntry>,
    index: FxHashMap<KeyId, usize>,
    /// Slot known to hold a minimal counter (valid until that slot's
    /// count changes); `None` = rescan on next eviction.
    min_slot: Option<usize>,
    total: u64,
}

impl SpaceSaving {
    /// Capacity derived from a byte budget (entry cost
    /// [`SS_ENTRY_COST`]; minimum 8 entries).
    pub fn with_budget(budget_bytes: usize) -> Self {
        Self::with_capacity_and_budget((budget_bytes / SS_ENTRY_COST).max(8), budget_bytes)
    }

    /// Exactly `k` tracked entries (tests and the accuracy harness).
    pub fn with_capacity(k: usize) -> Self {
        let k = k.max(1);
        Self::with_capacity_and_budget(k, k * SS_ENTRY_COST)
    }

    fn with_capacity_and_budget(capacity: usize, budget: usize) -> Self {
        SpaceSaving {
            budget,
            capacity,
            entries: Vec::new(),
            index: FxHashMap::default(),
            min_slot: None,
            total: 0,
        }
    }

    /// Tracked-entry capacity k.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Total bytes recorded into the open interval.
    pub fn recorded_total(&self) -> u64 {
        self.total
    }

    /// The summary's estimate for `key` (0 when untracked). Never
    /// undercounts a tracked key; overestimates by at most
    /// `total / capacity`.
    pub fn estimate(&self, key: KeyId) -> u64 {
        self.index.get(&key).map_or(0, |&slot| self.entries[slot].count)
    }

    /// The slot holding a minimal counter (cached when valid).
    fn find_min(&mut self) -> usize {
        if let Some(slot) = self.min_slot {
            return slot;
        }
        let mut m = 0;
        for i in 1..self.entries.len() {
            if self.entries[i].count < self.entries[m].count {
                m = i;
            }
        }
        self.min_slot = Some(m);
        m
    }
}

impl StateBackend for SpaceSaving {
    fn kind(&self) -> &'static str {
        "spacesaving"
    }

    fn record(&mut self, key: KeyId, bytes: u64) {
        if bytes == 0 {
            return;
        }
        self.total += bytes;
        if let Some(&slot) = self.index.get(&key) {
            self.entries[slot].count += bytes;
            if self.min_slot == Some(slot) {
                self.min_slot = None;
            }
            return;
        }
        if self.entries.len() < self.capacity {
            self.index.insert(key, self.entries.len());
            self.entries.push(SsEntry { key, count: bytes, err: 0 });
            return;
        }
        // Evict the minimum counter; the newcomer inherits its count as
        // both estimate floor and error bound.
        let slot = self.find_min();
        let evicted = self.entries[slot];
        self.index.remove(&evicted.key);
        self.index.insert(key, slot);
        self.entries[slot] = SsEntry {
            key,
            count: evicted.count + bytes,
            err: evicted.count,
        };
        self.min_slot = None;
    }

    fn has_traffic(&self) -> bool {
        self.total > 0
    }

    fn seal_into(&mut self, secs: f64, out: &mut Vec<(KeyId, f32)>) {
        out.clear();
        self.entries.sort_unstable_by_key(|e| e.key);
        for e in &self.entries {
            out.push((e.key, (e.count as f64 * 8.0 / secs) as f32));
        }
        self.entries.clear();
        self.index.clear();
        self.min_slot = None;
        self.total = 0;
    }

    fn open_row(&self) -> Vec<(KeyId, u64)> {
        Vec::new()
    }

    fn export_sketch(&self) -> Option<Vec<u8>> {
        let mut w = PayloadWriter::new();
        w.u64(self.total);
        w.u64(self.capacity as u64);
        w.u64(self.entries.len() as u64);
        for e in &self.entries {
            w.u32(e.key);
            w.u64(e.count);
            w.u64(e.err);
        }
        Some(w.finish())
    }

    fn restore_sketch(&mut self, payload: &[u8]) -> Result<(), String> {
        let mut r = PayloadReader::new(payload)?;
        let total = r.u64()?;
        // The capacity is the accuracy guarantee (error ≤ total / k):
        // resuming under a different budget would silently change the
        // bound mid-run, so geometry must match exactly.
        let capacity = r.u64()?;
        if capacity != self.capacity as u64 {
            return Err(format!(
                "space-saving payload was written at capacity {capacity} but this backend's \
                 capacity is {} (budget mismatch between run and resume)",
                self.capacity
            ));
        }
        let n = r.len_prefix(20, "space-saving entries")?;
        if n > self.capacity {
            return Err(format!(
                "space-saving payload holds {n} entries but this backend's capacity is {}",
                self.capacity
            ));
        }
        let mut entries = Vec::with_capacity(n);
        let mut index = FxHashMap::default();
        for _ in 0..n {
            let e = SsEntry { key: r.u32()?, count: r.u64()?, err: r.u64()? };
            if index.insert(e.key, entries.len()).is_some() {
                return Err(format!("space-saving payload duplicates key {}", e.key));
            }
            entries.push(e);
        }
        r.end()?;
        self.entries = entries;
        self.index = index;
        self.min_slot = None;
        self.total = total;
        Ok(())
    }

    fn state_bytes(&self) -> usize {
        self.budget
    }
}

// ---------------------------------------------------------------------
// Count-min row
// ---------------------------------------------------------------------

/// Count-min sketch with conservative update backing an approximate
/// per-interval byte row, plus a bounded candidate list that makes the
/// sealed snapshot enumerable (a raw count-min cannot be iterated).
///
/// Half the budget buys the counter array ([`CM_DEPTH`] rows of a
/// power-of-two width), half the candidate list. Estimates never
/// undercount (count-min property); conservative update — only raising
/// counters below the new estimate — keeps collision inflation to the
/// minimum any count-min can achieve. Candidates admit keys whose
/// running estimate beats the current minimum candidate; at seal, every
/// candidate is re-estimated from the counters and emitted.
#[derive(Debug)]
pub struct CountMinRow {
    budget: usize,
    /// Power-of-two row width; `mask = width − 1`.
    width: usize,
    mask: u64,
    /// `CM_DEPTH × width` counters, row-major.
    counters: Vec<u64>,
    /// Candidate heavy hitters: `(key, last conservative estimate)`.
    candidates: Vec<(KeyId, u64)>,
    cand_index: FxHashMap<KeyId, usize>,
    cand_capacity: usize,
    /// Slot known to hold a minimal candidate estimate (`None` =
    /// rescan).
    min_slot: Option<usize>,
    total: u64,
}

impl CountMinRow {
    /// Geometry derived from a byte budget: counter width is the
    /// largest power of two fitting half the budget (minimum 64),
    /// candidates fill the rest (minimum 8).
    pub fn with_budget(budget_bytes: usize) -> Self {
        let width = prev_power_of_two(budget_bytes / 2 / (8 * CM_DEPTH)).max(64);
        let cand_capacity = (budget_bytes.saturating_sub(width * 8 * CM_DEPTH) / CANDIDATE_COST).max(8);
        CountMinRow {
            budget: budget_bytes,
            width,
            mask: (width - 1) as u64,
            counters: vec![0; CM_DEPTH * width],
            candidates: Vec::new(),
            cand_index: FxHashMap::default(),
            cand_capacity,
            min_slot: None,
            total: 0,
        }
    }

    /// Counter-row width (power of two).
    pub fn width(&self) -> usize {
        self.width
    }

    /// Candidate-list capacity.
    pub fn candidate_capacity(&self) -> usize {
        self.cand_capacity
    }

    /// The count-min estimate for `key` (minimum over rows). Never
    /// undercounts.
    pub fn estimate(&self, key: KeyId) -> u64 {
        let mut est = u64::MAX;
        for (d, &seed) in HASH_SEEDS.iter().enumerate().take(CM_DEPTH) {
            let slot = (hash_key(key, seed) & self.mask) as usize;
            est = est.min(self.counters[d * self.width + slot]);
        }
        est
    }

    fn find_min(&mut self) -> usize {
        if let Some(slot) = self.min_slot {
            return slot;
        }
        let mut m = 0;
        for i in 1..self.candidates.len() {
            if self.candidates[i].1 < self.candidates[m].1 {
                m = i;
            }
        }
        self.min_slot = Some(m);
        m
    }
}

impl StateBackend for CountMinRow {
    fn kind(&self) -> &'static str {
        "cmrow"
    }

    fn record(&mut self, key: KeyId, bytes: u64) {
        if bytes == 0 {
            return;
        }
        self.total += bytes;
        // Conservative update: raise only the counters below the new
        // estimate, so collisions inflate the minimum as little as any
        // count-min can.
        let mut slots = [0usize; CM_DEPTH];
        let mut est = u64::MAX;
        for (d, &seed) in HASH_SEEDS.iter().enumerate().take(CM_DEPTH) {
            let slot = d * self.width + (hash_key(key, seed) & self.mask) as usize;
            slots[d] = slot;
            est = est.min(self.counters[slot]);
        }
        let target = est + bytes;
        for &slot in &slots {
            if self.counters[slot] < target {
                self.counters[slot] = target;
            }
        }
        // Candidate admission by running estimate.
        if let Some(&slot) = self.cand_index.get(&key) {
            self.candidates[slot].1 = target;
            if self.min_slot == Some(slot) {
                self.min_slot = None;
            }
            return;
        }
        if self.candidates.len() < self.cand_capacity {
            self.cand_index.insert(key, self.candidates.len());
            self.candidates.push((key, target));
            return;
        }
        let slot = self.find_min();
        if target <= self.candidates[slot].1 {
            return; // below the weakest candidate: not a heavy hitter yet
        }
        let (old_key, _) = self.candidates[slot];
        self.cand_index.remove(&old_key);
        self.cand_index.insert(key, slot);
        self.candidates[slot] = (key, target);
        self.min_slot = None;
    }

    fn has_traffic(&self) -> bool {
        self.total > 0
    }

    fn seal_into(&mut self, secs: f64, out: &mut Vec<(KeyId, f32)>) {
        out.clear();
        // Re-estimate every candidate from the counters (the stored
        // running estimate can be stale-low after later collisions).
        let mut sealed: Vec<(KeyId, u64)> =
            self.candidates.iter().map(|&(key, _)| (key, self.estimate(key))).collect();
        sealed.sort_unstable();
        for (key, bytes) in sealed {
            if bytes > 0 {
                out.push((key, (bytes as f64 * 8.0 / secs) as f32));
            }
        }
        self.counters.fill(0);
        self.candidates.clear();
        self.cand_index.clear();
        self.min_slot = None;
        self.total = 0;
    }

    fn open_row(&self) -> Vec<(KeyId, u64)> {
        Vec::new()
    }

    fn export_sketch(&self) -> Option<Vec<u8>> {
        let mut w = PayloadWriter::new();
        w.u64(self.total);
        w.u64(self.cand_capacity as u64);
        w.u64(self.counters.len() as u64);
        for &c in &self.counters {
            w.u64(c);
        }
        w.u64(self.candidates.len() as u64);
        for &(key, est) in &self.candidates {
            w.u32(key);
            w.u64(est);
        }
        Some(w.finish())
    }

    fn restore_sketch(&mut self, payload: &[u8]) -> Result<(), String> {
        let mut r = PayloadReader::new(payload)?;
        let total = r.u64()?;
        // Both halves of the geometry bound the error; a budget change
        // mid-run must be loud even when the snapshot happens to fit.
        let cand_capacity = r.u64()?;
        if cand_capacity != self.cand_capacity as u64 {
            return Err(format!(
                "count-min payload was written at candidate capacity {cand_capacity} but this \
                 backend's capacity is {} (budget mismatch between run and resume)",
                self.cand_capacity
            ));
        }
        let n_counters = r.len_prefix(8, "count-min counters")?;
        if n_counters != self.counters.len() {
            return Err(format!(
                "count-min payload holds {n_counters} counters but this backend's geometry \
                 is {} (budget mismatch between run and resume)",
                self.counters.len()
            ));
        }
        let mut counters = Vec::with_capacity(n_counters);
        for _ in 0..n_counters {
            counters.push(r.u64()?);
        }
        let n_cand = r.len_prefix(12, "count-min candidates")?;
        if n_cand > self.cand_capacity {
            return Err(format!(
                "count-min payload holds {n_cand} candidates but this backend's capacity is {}",
                self.cand_capacity
            ));
        }
        let mut candidates = Vec::with_capacity(n_cand);
        let mut cand_index = FxHashMap::default();
        for _ in 0..n_cand {
            let key = r.u32()?;
            let est = r.u64()?;
            if cand_index.insert(key, candidates.len()).is_some() {
                return Err(format!("count-min payload duplicates candidate {key}"));
            }
            candidates.push((key, est));
        }
        r.end()?;
        self.counters = counters;
        self.candidates = candidates;
        self.cand_index = cand_index;
        self.min_slot = None;
        self.total = total;
        Ok(())
    }

    fn state_bytes(&self) -> usize {
        self.budget
    }
}

// ---------------------------------------------------------------------
// Adaptive multistage filter
// ---------------------------------------------------------------------

/// Estan–Varghese multistage filter with periodic refresh and an
/// adaptive tracking threshold (the scheme analysed via the supermarket
/// model by Chabchoub et al.).
///
/// Untracked keys add their bytes to one counter per stage; a key
/// whose counters reach the threshold in **every** stage is promoted
/// to exact tracking, credited with its minimum stage counter (a
/// conservative estimate of its bytes so far). Tracked keys bypass the
/// stages entirely (shielding). At each seal the stages reset (periodic
/// refresh) and the threshold adapts: it doubles when the tracked
/// population saturated its capacity, divides by four (down to a
/// one-packet floor) when the population used less than a quarter of
/// it — so the filter finds the selectivity its capacity permits on
/// its own, tracking everything when memory allows and only the
/// genuinely heavy keys when it does not.
///
/// Tracked counts never undercount: everything a key sent before
/// promotion is present in each of its four stage counters, so the
/// promotion credit (their minimum) covers it fully, and afterwards
/// bytes count exactly. They can *overcount* by whatever colliding
/// keys contributed to the promoted key's lightest stage — rare with
/// four independent hashes, and shrinking as the budget widens the
/// stages. Keys whose whole interval stayed under the threshold are
/// absent from the seal; the adaptive threshold keeps that cutoff as
/// low as the tracked capacity permits.
#[derive(Debug)]
pub struct AdaptiveBloom {
    budget: usize,
    width: usize,
    mask: u64,
    /// `BLOOM_STAGES × width` stage counters, row-major; cleared at
    /// every seal (periodic refresh).
    counters: Vec<u64>,
    threshold: u64,
    tracked: Vec<(KeyId, u64)>,
    index: FxHashMap<KeyId, usize>,
    capacity: usize,
    /// A promotion was dropped (or capacity filled) this interval.
    saturated: bool,
    total: u64,
}

impl AdaptiveBloom {
    /// Geometry derived from a byte budget: stage width is the largest
    /// power of two fitting half the budget (minimum 64), tracked
    /// entries fill the rest (minimum 8).
    pub fn with_budget(budget_bytes: usize) -> Self {
        let width = prev_power_of_two(budget_bytes / 2 / (8 * BLOOM_STAGES)).max(64);
        let capacity =
            (budget_bytes.saturating_sub(width * 8 * BLOOM_STAGES) / CANDIDATE_COST).max(8);
        AdaptiveBloom {
            budget: budget_bytes,
            width,
            mask: (width - 1) as u64,
            counters: vec![0; BLOOM_STAGES * width],
            threshold: BLOOM_THRESHOLD_INIT,
            tracked: Vec::new(),
            index: FxHashMap::default(),
            capacity,
            saturated: false,
            total: 0,
        }
    }

    /// The current tracking threshold in bytes per interval.
    pub fn threshold(&self) -> u64 {
        self.threshold
    }

    /// Tracked-key capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Keys currently tracked exactly.
    pub fn tracked_len(&self) -> usize {
        self.tracked.len()
    }
}

impl StateBackend for AdaptiveBloom {
    fn kind(&self) -> &'static str {
        "bloom"
    }

    fn record(&mut self, key: KeyId, bytes: u64) {
        if bytes == 0 {
            return;
        }
        self.total += bytes;
        if let Some(&slot) = self.index.get(&key) {
            self.tracked[slot].1 += bytes;
            return;
        }
        let mut passed = true;
        let mut stage_min = u64::MAX;
        for (s, &seed) in HASH_SEEDS.iter().enumerate().take(BLOOM_STAGES) {
            let slot = s * self.width + (hash_key(key, seed) & self.mask) as usize;
            let c = &mut self.counters[slot];
            *c += bytes;
            if *c < self.threshold {
                passed = false;
            }
            stage_min = stage_min.min(*c);
        }
        if !passed {
            return;
        }
        if self.tracked.len() < self.capacity {
            self.index.insert(key, self.tracked.len());
            // Credit the minimum stage counter: every byte the key sent
            // before promotion is in all four of its counters, so the
            // minimum never undercounts it and overcounts only by keys
            // colliding with it in its *lightest* stage. From here on
            // its bytes count exactly.
            self.tracked.push((key, stage_min));
            if self.tracked.len() == self.capacity {
                self.saturated = true;
            }
        } else {
            // No room: drop the promotion and let the refresh double
            // the threshold — better a coarser filter next interval
            // than nondeterministic churn in this one.
            self.saturated = true;
        }
    }

    fn has_traffic(&self) -> bool {
        self.total > 0
    }

    fn seal_into(&mut self, secs: f64, out: &mut Vec<(KeyId, f32)>) {
        out.clear();
        self.tracked.sort_unstable();
        for &(key, bytes) in &self.tracked {
            out.push((key, (bytes as f64 * 8.0 / secs) as f32));
        }
        // Periodic refresh + threshold adaptation.
        let used = self.tracked.len();
        self.tracked.clear();
        self.index.clear();
        self.counters.fill(0);
        self.total = 0;
        if self.saturated {
            self.threshold = self.threshold.saturating_mul(2).min(BLOOM_THRESHOLD_MAX);
        } else if used * 4 < self.capacity && self.threshold > BLOOM_THRESHOLD_MIN {
            // Decrease faster than the ×2 increase: an over-selective
            // threshold biases the sealed population (and the detector
            // computed from it) for every interval it lingers, while an
            // over-permissive one merely saturates capacity once and
            // gets doubled right back.
            self.threshold = (self.threshold / 4).max(BLOOM_THRESHOLD_MIN);
        }
        self.saturated = false;
    }

    fn open_row(&self) -> Vec<(KeyId, u64)> {
        Vec::new()
    }

    fn export_sketch(&self) -> Option<Vec<u8>> {
        let mut w = PayloadWriter::new();
        w.u64(self.total);
        w.u64(self.capacity as u64);
        w.u64(self.threshold);
        w.u8(u8::from(self.saturated));
        w.u64(self.counters.len() as u64);
        for &c in &self.counters {
            w.u64(c);
        }
        w.u64(self.tracked.len() as u64);
        for &(key, count) in &self.tracked {
            w.u32(key);
            w.u64(count);
        }
        Some(w.finish())
    }

    fn restore_sketch(&mut self, payload: &[u8]) -> Result<(), String> {
        let mut r = PayloadReader::new(payload)?;
        let total = r.u64()?;
        let capacity = r.u64()?;
        if capacity != self.capacity as u64 {
            return Err(format!(
                "multistage payload was written at tracked capacity {capacity} but this \
                 backend's capacity is {} (budget mismatch between run and resume)",
                self.capacity
            ));
        }
        let threshold = r.u64()?;
        let saturated = match r.u8()? {
            0 => false,
            1 => true,
            t => return Err(format!("bad multistage saturation flag {t}")),
        };
        let n_counters = r.len_prefix(8, "multistage counters")?;
        if n_counters != self.counters.len() {
            return Err(format!(
                "multistage payload holds {n_counters} counters but this backend's geometry \
                 is {} (budget mismatch between run and resume)",
                self.counters.len()
            ));
        }
        let mut counters = Vec::with_capacity(n_counters);
        for _ in 0..n_counters {
            counters.push(r.u64()?);
        }
        let n_tracked = r.len_prefix(12, "multistage tracked keys")?;
        if n_tracked > self.capacity {
            return Err(format!(
                "multistage payload holds {n_tracked} tracked keys but this backend's \
                 capacity is {}",
                self.capacity
            ));
        }
        let mut tracked = Vec::with_capacity(n_tracked);
        let mut index = FxHashMap::default();
        for _ in 0..n_tracked {
            let key = r.u32()?;
            let count = r.u64()?;
            if index.insert(key, tracked.len()).is_some() {
                return Err(format!("multistage payload duplicates tracked key {key}"));
            }
            tracked.push((key, count));
        }
        r.end()?;
        self.counters = counters;
        self.threshold = threshold;
        self.saturated = saturated;
        self.tracked = tracked;
        self.index = index;
        self.total = total;
        Ok(())
    }

    fn state_bytes(&self) -> usize {
        self.budget
    }
}

// ---------------------------------------------------------------------
// Payload plumbing
// ---------------------------------------------------------------------

/// Little-endian payload writer; every payload opens with
/// [`SKETCH_PAYLOAD_VERSION`].
struct PayloadWriter(Vec<u8>);

impl PayloadWriter {
    fn new() -> Self {
        let mut w = PayloadWriter(Vec::new());
        w.u32(SKETCH_PAYLOAD_VERSION);
        w
    }

    fn u8(&mut self, v: u8) {
        self.0.push(v);
    }

    fn u32(&mut self, v: u32) {
        self.0.extend_from_slice(&v.to_le_bytes());
    }

    fn u64(&mut self, v: u64) {
        self.0.extend_from_slice(&v.to_le_bytes());
    }

    fn finish(self) -> Vec<u8> {
        self.0
    }
}

/// Bounds-checked little-endian payload reader; verifies the version
/// prefix up front and `end()` rejects trailing bytes.
struct PayloadReader<'a> {
    data: &'a [u8],
    at: usize,
}

impl<'a> PayloadReader<'a> {
    fn new(data: &'a [u8]) -> Result<Self, String> {
        let mut r = PayloadReader { data, at: 0 };
        let version = r.u32()?;
        if version != SKETCH_PAYLOAD_VERSION {
            return Err(format!(
                "unsupported sketch payload version {version} \
                 (this build reads {SKETCH_PAYLOAD_VERSION})"
            ));
        }
        Ok(r)
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], String> {
        let end = self
            .at
            .checked_add(n)
            .filter(|&end| end <= self.data.len())
            .ok_or_else(|| "sketch payload shorter than declared".to_string())?;
        let slice = &self.data[self.at..end];
        self.at = end;
        Ok(slice)
    }

    fn u8(&mut self) -> Result<u8, String> {
        Ok(self.take(1)?[0])
    }

    fn u32(&mut self) -> Result<u32, String> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().expect("4 bytes")))
    }

    fn u64(&mut self) -> Result<u64, String> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().expect("8 bytes")))
    }

    /// A length prefix, sanity-bounded by the bytes remaining so a
    /// corrupt count cannot trigger a huge allocation.
    fn len_prefix(&mut self, min_elem: usize, what: &str) -> Result<usize, String> {
        let n = self.u64()?;
        let remaining = (self.data.len() - self.at) as u64;
        if n.saturating_mul(min_elem as u64) > remaining {
            return Err(format!("{what} count {n} exceeds remaining payload"));
        }
        Ok(n as usize)
    }

    fn end(&self) -> Result<(), String> {
        if self.at != self.data.len() {
            return Err(format!(
                "{} bytes of trailing sketch payload",
                self.data.len() - self.at
            ));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Deterministic keystream for adversarial-ish tests (splitmix64).
    struct Lcg(u64);
    impl Lcg {
        fn next(&mut self) -> u64 {
            self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
            hash_key(0, self.0)
        }
    }

    fn exact_counts(stream: &[(KeyId, u64)]) -> std::collections::BTreeMap<KeyId, u64> {
        let mut m = std::collections::BTreeMap::new();
        for &(k, b) in stream {
            if b > 0 {
                *m.entry(k).or_insert(0) += b;
            }
        }
        m
    }

    fn skewed_stream(seed: u64, n: usize, key_space: u32) -> Vec<(KeyId, u64)> {
        let mut rng = Lcg(seed);
        (0..n)
            .map(|_| {
                let r = rng.next();
                // Zipf-ish: low keys get most of the traffic.
                let key = ((r % u64::from(key_space)) * (r >> 32 & 3) / 4) as KeyId;
                let bytes = 40 + (r >> 8) % 1500;
                (key, bytes)
            })
            .collect()
    }

    #[test]
    fn exact_dense_matches_reference_map() {
        let stream = skewed_stream(1, 5000, 300);
        let mut exact = ExactDense::new();
        for &(k, b) in &stream {
            exact.record(k, b);
        }
        let reference = exact_counts(&stream);
        let row = exact.open_row();
        assert_eq!(row.len(), reference.len());
        for (got, want) in row.iter().zip(&reference) {
            assert_eq!(got.0, *want.0);
            assert_eq!(got.1, *want.1);
        }
        let mut out = Vec::new();
        exact.seal_into(60.0, &mut out);
        assert_eq!(out.len(), reference.len());
        assert!(!exact.has_traffic());
        assert!(exact.open_row().is_empty());
    }

    #[test]
    fn space_saving_exact_under_capacity() {
        let stream = skewed_stream(2, 4000, 100);
        let mut ss = SpaceSaving::with_capacity(512); // > distinct keys
        for &(k, b) in &stream {
            ss.record(k, b);
        }
        for (&k, &b) in &exact_counts(&stream) {
            assert_eq!(ss.estimate(k), b, "key {k}");
        }
    }

    #[test]
    fn space_saving_error_bound_holds_under_pressure() {
        for seed in 0..8u64 {
            let stream = skewed_stream(seed, 6000, 900);
            let k = 32usize;
            let mut ss = SpaceSaving::with_capacity(k);
            for &(key, b) in &stream {
                ss.record(key, b);
            }
            let total = ss.recorded_total();
            for (&key, &truth) in &exact_counts(&stream) {
                let est = ss.estimate(key);
                let err = est.abs_diff(truth);
                // Any key's count error ≤ total/k, tracked or not.
                assert!(
                    u128::from(err) * k as u128 <= u128::from(total),
                    "seed {seed} key {key}: err {err} > total {total} / k {k}"
                );
            }
        }
    }

    #[test]
    fn space_saving_matches_exact_when_capacity_covers_keys() {
        let stream = skewed_stream(3, 3000, 200);
        let mut ss = SpaceSaving::with_capacity(1024);
        let mut exact = ExactDense::new();
        for &(k, b) in &stream {
            ss.record(k, b);
            exact.record(k, b);
        }
        let (mut a, mut b) = (Vec::new(), Vec::new());
        ss.seal_into(60.0, &mut a);
        exact.seal_into(60.0, &mut b);
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.0, y.0);
            assert_eq!(x.1.to_bits(), y.1.to_bits(), "key {}", x.0);
        }
    }

    #[test]
    fn count_min_never_undercounts() {
        let stream = skewed_stream(4, 6000, 2000);
        let mut cm = CountMinRow::with_budget(16 * 1024); // deliberately tight
        for &(k, b) in &stream {
            cm.record(k, b);
        }
        for (&k, &truth) in &exact_counts(&stream) {
            assert!(cm.estimate(k) >= truth, "key {k} undercounted");
        }
    }

    #[test]
    fn count_min_matches_exact_when_wide() {
        let stream = skewed_stream(5, 3000, 150);
        let mut cm = CountMinRow::with_budget(4 * 1024 * 1024);
        let mut exact = ExactDense::new();
        for &(k, b) in &stream {
            cm.record(k, b);
            exact.record(k, b);
        }
        let (mut a, mut b) = (Vec::new(), Vec::new());
        cm.seal_into(60.0, &mut a);
        exact.seal_into(60.0, &mut b);
        assert_eq!(a, b, "wide count-min must be collision-free on a small key space");
    }

    #[test]
    fn bloom_tracks_heavy_hitters_within_threshold() {
        let mut bloom = AdaptiveBloom::with_budget(256 * 1024);
        let heavy: KeyId = 7;
        let mut sent = 0u64;
        for _ in 0..200 {
            bloom.record(heavy, 1500);
            sent += 1500;
            // background mice
            for k in 100..110 {
                bloom.record(k, 40);
            }
        }
        let mut out = Vec::new();
        let threshold = bloom.threshold();
        bloom.seal_into(1.0, &mut out);
        let got = out.iter().find(|&&(k, _)| k == heavy).expect("heavy key tracked");
        let est_bytes = (f64::from(got.1) / 8.0) as u64;
        assert!(
            est_bytes.abs_diff(sent) <= threshold + 1500,
            "heavy estimate {est_bytes} vs true {sent} (threshold {threshold})"
        );
    }

    #[test]
    fn bloom_threshold_adapts_both_ways() {
        let mut bloom = AdaptiveBloom::with_budget(8 * 1024); // tiny: capacity 8..
        let t0 = bloom.threshold();
        // Saturate: more heavy keys than capacity.
        for k in 0..64u32 {
            for _ in 0..64 {
                bloom.record(k, 4096);
            }
        }
        let mut out = Vec::new();
        bloom.seal_into(60.0, &mut out);
        assert!(bloom.threshold() > t0, "saturation must raise the threshold");
        // Idle intervals decay it back down to the floor.
        for _ in 0..64 {
            bloom.record(1, 64);
            bloom.seal_into(60.0, &mut out);
        }
        assert_eq!(bloom.threshold(), BLOOM_THRESHOLD_MIN);
    }

    #[test]
    fn sketches_are_deterministic() {
        let stream = skewed_stream(6, 8000, 3000);
        for config in [
            StateBackendConfig::SpaceSaving { budget_bytes: 32 * 1024 },
            StateBackendConfig::CountMinRow { budget_bytes: 32 * 1024 },
            StateBackendConfig::AdaptiveBloom { budget_bytes: 32 * 1024 },
        ] {
            let run = || {
                let mut b = config.build().expect("sketch config");
                let mut snapshots = Vec::new();
                for (i, &(k, bytes)) in stream.iter().enumerate() {
                    b.record(k, bytes);
                    if i % 1000 == 999 {
                        let mut out = Vec::new();
                        b.seal_into(60.0, &mut out);
                        snapshots.push(out);
                    }
                }
                (snapshots, b.export_sketch().expect("payload"))
            };
            let (snap_a, payload_a) = run();
            let (snap_b, payload_b) = run();
            assert_eq!(payload_a, payload_b, "{} payload", config.kind());
            assert_eq!(snap_a.len(), snap_b.len());
            for (a, b) in snap_a.iter().zip(&snap_b) {
                assert_eq!(a.len(), b.len(), "{}", config.kind());
                for (x, y) in a.iter().zip(b) {
                    assert_eq!(x.0, y.0);
                    assert_eq!(x.1.to_bits(), y.1.to_bits());
                }
            }
        }
    }

    #[test]
    fn sketch_payload_round_trips_mid_interval() {
        let stream = skewed_stream(7, 6000, 500);
        let split = 2500;
        for config in [
            StateBackendConfig::SpaceSaving { budget_bytes: 16 * 1024 },
            StateBackendConfig::CountMinRow { budget_bytes: 16 * 1024 },
            StateBackendConfig::AdaptiveBloom { budget_bytes: 16 * 1024 },
        ] {
            let mut reference = config.build().expect("sketch config");
            let mut first = config.build().expect("sketch config");
            for &(k, b) in &stream[..split] {
                reference.record(k, b);
                first.record(k, b);
            }
            let payload = first.export_sketch().expect("payload");
            let mut resumed = config.build().expect("sketch config");
            resumed.restore_sketch(&payload).expect("restore");
            for &(k, b) in &stream[split..] {
                reference.record(k, b);
                resumed.record(k, b);
            }
            assert_eq!(
                reference.export_sketch(),
                resumed.export_sketch(),
                "{}: resumed state diverged",
                config.kind()
            );
            let (mut a, mut b) = (Vec::new(), Vec::new());
            reference.seal_into(60.0, &mut a);
            resumed.seal_into(60.0, &mut b);
            assert_eq!(a, b, "{}: resumed snapshot diverged", config.kind());
        }
    }

    #[test]
    fn restore_rejects_geometry_and_garbage() {
        let mut cm = CountMinRow::with_budget(64 * 1024);
        cm.record(1, 100);
        let payload = cm.export_sketch().expect("payload");
        // Different budget → different counter geometry → rejected.
        let mut other = CountMinRow::with_budget(8 * 1024);
        assert!(other.restore_sketch(&payload).is_err());
        // Truncation and version garbage are rejected too.
        let mut same = CountMinRow::with_budget(64 * 1024);
        assert!(same.restore_sketch(&payload[..payload.len() - 1]).is_err());
        let mut bad = payload.clone();
        bad[0] = 0xFF;
        assert!(same.restore_sketch(&bad).is_err());
        assert!(same.restore_sketch(&payload).is_ok());
    }

    #[test]
    fn config_parses_and_budgets_scale_geometry() {
        assert_eq!(
            StateBackendConfig::parse("spacesaving", 1024).expect("parse").kind(),
            "spacesaving"
        );
        assert_eq!(StateBackendConfig::parse("exact", 0).expect("parse").kind(), "exact");
        assert!(StateBackendConfig::parse("exact", 0).expect("parse").build().is_none());
        assert!(StateBackendConfig::parse("bogus", 0).is_err());
        let small = SpaceSaving::with_budget(4 * 1024);
        let large = SpaceSaving::with_budget(1024 * 1024);
        assert!(large.capacity() > small.capacity());
        let small = CountMinRow::with_budget(8 * 1024);
        let large = CountMinRow::with_budget(1024 * 1024);
        assert!(large.width() > small.width());
        assert!(large.candidate_capacity() > small.candidate_capacity());
        assert_eq!(large.state_bytes(), 1024 * 1024, "sketches report their budget");
    }

    #[test]
    fn zero_byte_records_leave_no_entry() {
        for config in [
            StateBackendConfig::SpaceSaving { budget_bytes: 4096 },
            StateBackendConfig::CountMinRow { budget_bytes: 4096 },
            StateBackendConfig::AdaptiveBloom { budget_bytes: 4096 },
        ] {
            let mut b = config.build().expect("sketch config");
            b.record(3, 0);
            assert!(!b.has_traffic(), "{}", config.kind());
            let mut out = vec![(9, 1.0f32)];
            b.seal_into(60.0, &mut out);
            assert!(out.is_empty(), "{}: seal must clear the scratch", config.kind());
        }
    }
}
