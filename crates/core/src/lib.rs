//! Elephant-flow classification — the paper's contribution.
//!
//! Implements both classification schemes of *A Pragmatic Definition of
//! Elephants in Internet Backbone Traffic* (Papagiannaki et al., 2002)
//! over the [`eleph_flow::BandwidthMatrix`] produced by the measurement
//! pipeline:
//!
//! 1. **Threshold detection** ([`ThresholdDetector`]): per interval, a
//!    separation bandwidth `T(n)` is derived from the flow-bandwidth
//!    snapshot, by either
//!    * [`AestDetector`] — the onset of the power-law tail, found with
//!      the Crovella–Taqqu estimator ([`eleph_stats::aest`]); or
//!    * [`ConstantLoadDetector`] — the smallest bandwidth such that
//!      flows above it carry a target fraction β of total traffic
//!      (the paper's "β-constant load", β = 0.8);
//!    * plus two baselines ([`TopNDetector`], [`PercentileDetector`])
//!      for the scheme-comparison experiments.
//! 2. **Threshold update** ([`ThresholdTracker`]): the EWMA smoothing
//!    `T̄(n+1) = γ·T̄(n) + (1−γ)·T(n)`, γ = 0.9.
//! 3. **Single-feature classification** ([`Scheme::SingleFeature`]):
//!    flow `i` is an elephant in interval `n` iff `B_i(n) > T̄(n)`.
//! 4. **Two-feature "latent heat" classification**
//!    ([`Scheme::LatentHeat`]): `LH_i(n) = Σ_{j=n−w+1..n} (B_i(j) −
//!    T̄(j))` over a w = 12 slot (one hour) window; elephant iff
//!    `LH_i(n) > 0`. Transient bursts above the threshold and transient
//!    dips below it are absorbed instead of causing reclassification.
//!
//! The induced two-state process and its statistics (average holding
//! times, single-interval elephants — Figure 1(c) and the in-text claims)
//! live in [`holding`], and the paper's §III prefix-length analysis in
//! [`prefix_analysis`].
//!
//! The classifier is columnar and dense throughout: per-key state sits
//! in flat vectors and bitsets indexed by `KeyId` (no hash maps on the
//! per-interval path), and [`classify_many`] amortises one detector
//! pass over a whole family of configurations — the engine behind the
//! report crate's parameter sweeps.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod bits;
mod classify;
pub mod holding;
mod online;
pub mod prefix_analysis;
mod shard;
pub mod sketch;
mod threshold;
mod tracker;

pub use classify::{classify, classify_many, ClassificationResult, ClassifyConfig, Scheme};
pub use sketch::{
    AdaptiveBloom, CountMinRow, ExactDense, SpaceSaving, StateBackend, StateBackendConfig,
};
pub use online::{ClassifierState, IntervalOutcome, OnlineClassifier};
pub use shard::{
    merge_observations, merge_states, partition_state, ClassifierPart, PartObservation,
    PartState, SealContext, SealCoordinator,
};
pub use threshold::{
    AestDetector, ConstantLoadDetector, PercentileDetector, ThresholdDetector, TopNDetector,
};
pub use tracker::{ThresholdSeries, ThresholdTracker};

/// The paper's default smoothing factor γ for the threshold update.
pub const PAPER_GAMMA: f64 = 0.9;

/// The paper's default latent-heat window: 12 five-minute slots = 1 hour.
pub const PAPER_LATENT_WINDOW: usize = 12;

/// The paper's default constant-load target: 80% of traffic.
pub const PAPER_BETA: f64 = 0.8;
