//! Streaming classification: one interval at a time.
//!
//! The batch API ([`crate::classify`]) consumes a finished
//! [`BandwidthMatrix`]; a traffic-engineering controller instead sees one
//! measurement interval at a time and must emit the elephant set before
//! the next interval lands. [`OnlineClassifier`] is that incremental
//! form: feed it interval snapshots, get the current elephant set back.
//! Its output is bit-identical to the batch classifier (pinned by tests),
//! so experiments validated offline transfer directly to the online
//! deployment.

use std::collections::VecDeque;

use eleph_flow::KeyId;
use rustc_hash::{FxHashMap, FxHashSet};

use crate::{Scheme, ThresholdDetector, ThresholdTracker};

/// The outcome of one streamed interval.
#[derive(Debug, Clone)]
pub struct IntervalOutcome {
    /// Interval index (0-based, counts calls to `observe`).
    pub interval: usize,
    /// Smoothed threshold used for this interval.
    pub threshold: f64,
    /// Sorted elephant key ids.
    pub elephants: Vec<KeyId>,
    /// Traffic carried by the elephants (b/s).
    pub elephant_load: f64,
    /// Total traffic in the interval (b/s).
    pub total_load: f64,
}

impl IntervalOutcome {
    /// Fraction of traffic carried by elephants (0 when idle).
    pub fn fraction(&self) -> f64 {
        if self.total_load <= 0.0 {
            0.0
        } else {
            self.elephant_load / self.total_load
        }
    }
}

/// Incremental implementation of both classification schemes.
///
/// Memory: O(flows active within the latent-heat window), independent of
/// trace length — suitable for an always-on monitor.
#[derive(Debug)]
pub struct OnlineClassifier<D> {
    tracker: ThresholdTracker<D>,
    scheme: Scheme,
    window: usize,
    /// Sliding per-key bandwidth sums over the window.
    sum_b: FxHashMap<KeyId, f64>,
    /// Sliding threshold sum over the window.
    sum_t: f64,
    /// The window's per-interval history: (threshold term, snapshot).
    history: VecDeque<(f64, Vec<(KeyId, f32)>)>,
    /// Current membership for the hysteresis scheme.
    members: FxHashSet<KeyId>,
    interval: usize,
}

impl<D: ThresholdDetector> OnlineClassifier<D> {
    /// Create a streaming classifier.
    ///
    /// # Panics
    ///
    /// Panics when γ is outside [0, 1) or a latent-heat window is 0.
    pub fn new(detector: D, gamma: f64, scheme: Scheme) -> Self {
        let window = match scheme {
            Scheme::LatentHeat { window } => {
                assert!(window >= 1, "latent-heat window must be >= 1");
                window
            }
            Scheme::SingleFeature => 1,
            Scheme::Hysteresis { enter, exit } => {
                assert!(enter >= 1.0 && (0.0..=1.0).contains(&exit), "need exit <= 1 <= enter");
                1
            }
        };
        OnlineClassifier {
            tracker: ThresholdTracker::new(detector, gamma),
            scheme,
            window,
            sum_b: FxHashMap::default(),
            sum_t: 0.0,
            history: VecDeque::with_capacity(window + 1),
            members: Default::default(),
            interval: 0,
        }
    }

    /// Feed one interval's sparse snapshot (ascending by key, as
    /// produced by the measurement pipeline) and classify it.
    pub fn observe(&mut self, snapshot: &[(KeyId, f32)]) -> IntervalOutcome {
        debug_assert!(snapshot.windows(2).all(|w| w[0].0 < w[1].0));
        let values: Vec<f64> = snapshot.iter().map(|&(_, r)| f64::from(r)).collect();
        let total_load: f64 = values.iter().sum();
        let threshold = self.tracker.observe(&values);

        // Slide the window forward.
        let t_term = if threshold.is_finite() {
            threshold
        } else {
            // Pre-detection: an unbeatable finite stand-in (see the batch
            // classifier for the same rule).
            values.iter().cloned().fold(0.0, f64::max) + 1.0
        };
        self.sum_t += t_term;
        for &(key, rate) in snapshot {
            *self.sum_b.entry(key).or_insert(0.0) += f64::from(rate);
        }
        self.history.push_back((t_term, snapshot.to_vec()));
        if self.history.len() > self.window {
            let (old_t, old_snapshot) = self.history.pop_front().expect("len checked");
            self.sum_t -= old_t;
            for (key, rate) in old_snapshot {
                if let Some(s) = self.sum_b.get_mut(&key) {
                    *s -= f64::from(rate);
                    if *s <= 1e-9 {
                        self.sum_b.remove(&key);
                    }
                }
            }
        }

        // Classify.
        let mut elephants: Vec<KeyId> = match self.scheme {
            Scheme::SingleFeature => snapshot
                .iter()
                .filter(|&&(_, rate)| f64::from(rate) > threshold)
                .map(|&(key, _)| key)
                .collect(),
            Scheme::LatentHeat { .. } => self
                .sum_b
                .iter()
                .filter(|&(_, &s)| s > self.sum_t)
                .map(|(&key, _)| key)
                .collect(),
            Scheme::Hysteresis { enter, exit } => {
                let next: Vec<KeyId> = snapshot
                    .iter()
                    .filter(|&&(key, rate)| {
                        let b = f64::from(rate);
                        if self.members.contains(&key) {
                            b >= exit * threshold
                        } else {
                            b > enter * threshold
                        }
                    })
                    .map(|&(key, _)| key)
                    .collect();
                self.members = next.iter().copied().collect();
                next
            }
        };
        elephants.sort_unstable();

        let elephant_load: f64 = elephants
            .iter()
            .map(|key| {
                snapshot
                    .binary_search_by_key(key, |&(k, _)| k)
                    .map(|i| f64::from(snapshot[i].1))
                    .unwrap_or(0.0)
            })
            .sum();

        let outcome = IntervalOutcome {
            interval: self.interval,
            threshold,
            elephants,
            elephant_load,
            total_load,
        };
        self.interval += 1;
        outcome
    }

    /// Number of intervals observed so far.
    pub fn intervals_observed(&self) -> usize {
        self.interval
    }

    /// Number of keys currently tracked in the sliding window — the
    /// memory footprint driver.
    pub fn tracked_keys(&self) -> usize {
        self.sum_b.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{classify, ConstantLoadDetector};
    use eleph_flow::BandwidthMatrix;
    use eleph_net::Prefix;

    fn keys(n: usize) -> Vec<Prefix> {
        (0..n)
            .map(|i| format!("10.0.{i}.0/24").parse().expect("valid"))
            .collect()
    }

    fn rows() -> Vec<Vec<f64>> {
        // A mix of persistent, flickering and bursting flows.
        vec![
            vec![500.0, 10.0, 0.0, 80.0],
            vec![480.0, 12.0, 900.0, 0.0],
            vec![510.0, 9.0, 0.0, 70.0],
            vec![490.0, 11.0, 0.0, 75.0],
            vec![505.0, 10.0, 0.0, 0.0],
            vec![495.0, 10.0, 0.0, 90.0],
        ]
    }

    fn run_both(scheme: Scheme) {
        let rows = rows();
        let matrix = BandwidthMatrix::from_dense(60, 0, keys(4), &rows);
        let batch = classify(&matrix, ConstantLoadDetector::new(0.8), 0.9, scheme);

        let mut online = OnlineClassifier::new(ConstantLoadDetector::new(0.8), 0.9, scheme);
        for n in 0..rows.len() {
            let out = online.observe(matrix.interval(n));
            assert_eq!(out.interval, n);
            assert_eq!(out.elephants, batch.elephants[n], "{scheme:?} interval {n}");
            assert!((out.threshold - batch.thresholds[n]).abs() < 1e-9);
            assert!((out.elephant_load - batch.elephant_load[n]).abs() < 1e-6);
            assert!((out.total_load - batch.total_load[n]).abs() < 1e-6);
            assert!((out.fraction() - batch.fraction(n)).abs() < 1e-9);
        }
        assert_eq!(online.intervals_observed(), rows.len());
    }

    #[test]
    fn matches_batch_single_feature() {
        run_both(Scheme::SingleFeature);
    }

    #[test]
    fn matches_batch_latent_heat() {
        run_both(Scheme::LatentHeat { window: 3 });
    }

    #[test]
    fn matches_batch_hysteresis() {
        run_both(Scheme::Hysteresis {
            enter: 1.2,
            exit: 0.6,
        });
    }

    #[test]
    fn hysteresis_keeps_member_through_shallow_dip() {
        // Threshold fixed at 100 via constant-load on a single dominant
        // flow is awkward; use the enter/exit semantics directly with a
        // scripted detector instead.
        struct Fixed;
        impl crate::ThresholdDetector for Fixed {
            fn detect(&self, _v: &[f64]) -> Option<f64> {
                Some(100.0)
            }
            fn name(&self) -> String {
                "fixed".to_string()
            }
        }
        let mut online = OnlineClassifier::new(
            Fixed,
            0.0,
            Scheme::Hysteresis {
                enter: 1.2,
                exit: 0.6,
            },
        );
        // 130 > 120: enters. 80 >= 60: stays. 50 < 60: leaves.
        // 110 < 120: may not re-enter.
        let outcomes: Vec<bool> = [130.0f32, 80.0, 50.0, 110.0, 125.0]
            .iter()
            .map(|&r| !online.observe(&[(0, r)]).elephants.is_empty())
            .collect();
        assert_eq!(outcomes, vec![true, true, false, false, true]);
    }

    #[test]
    fn memory_bounded_by_window_occupancy() {
        // Distinct keys every interval: tracked keys must not exceed
        // window × per-interval keys.
        let mut online = OnlineClassifier::new(
            ConstantLoadDetector::new(0.8),
            0.0,
            Scheme::LatentHeat { window: 2 },
        );
        for n in 0..50u32 {
            let snapshot = vec![(n * 3, 10.0f32), (n * 3 + 1, 20.0), (n * 3 + 2, 30.0)];
            online.observe(&snapshot);
            assert!(online.tracked_keys() <= 6, "window leak: {}", online.tracked_keys());
        }
    }

    #[test]
    fn empty_intervals_are_legal() {
        let mut online = OnlineClassifier::new(
            ConstantLoadDetector::new(0.8),
            0.9,
            Scheme::LatentHeat { window: 3 },
        );
        let out = online.observe(&[]);
        assert!(out.elephants.is_empty());
        assert_eq!(out.fraction(), 0.0);
        // Then traffic arrives: the classifier recovers.
        let out = online.observe(&[(1, 100.0), (2, 5.0)]);
        assert_eq!(out.total_load, 105.0);
    }

    #[test]
    fn randomized_equivalence_with_batch() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(99);
        let n_keys = 40;
        let n_int = 30;
        let rows: Vec<Vec<f64>> = (0..n_int)
            .map(|_| {
                (0..n_keys)
                    .map(|_| {
                        if rng.gen::<f64>() < 0.4 {
                            0.0
                        } else {
                            rng.gen_range(1.0..1000.0)
                        }
                    })
                    .collect()
            })
            .collect();
        let matrix = BandwidthMatrix::from_dense(60, 0, keys(n_keys), &rows);
        for scheme in [Scheme::SingleFeature, Scheme::LatentHeat { window: 5 }] {
            let batch = classify(&matrix, ConstantLoadDetector::new(0.7), 0.9, scheme);
            let mut online =
                OnlineClassifier::new(ConstantLoadDetector::new(0.7), 0.9, scheme);
            for n in 0..n_int {
                let out = online.observe(matrix.interval(n));
                assert_eq!(out.elephants, batch.elephants[n], "{scheme:?} at {n}");
            }
        }
    }
}
