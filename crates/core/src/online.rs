//! Streaming classification: one interval at a time.
//!
//! The batch API ([`crate::classify`]) consumes a finished
//! [`eleph_flow::BandwidthMatrix`]; a traffic-engineering controller
//! instead sees one measurement interval at a time and must emit the
//! elephant set before the next interval lands. [`OnlineClassifier`] is
//! that incremental form: feed it interval snapshots, get the current
//! elephant set back. Its output is bit-identical to the batch
//! classifier (pinned by tests), so experiments validated offline
//! transfer directly to the online deployment.
//!
//! Like the batch engine, the per-key state is dense: sliding sums and
//! window-occupancy counts in flat vectors indexed by [`KeyId`]
//! (first-seen key ids are dense by construction), membership in a
//! [`KeyBitset`]. Elephants fall out of ordered bitset iteration already
//! sorted — no per-interval hash iteration or sort.

use std::collections::VecDeque;

use eleph_flow::KeyId;

use crate::bits::KeyBitset;
use crate::{Scheme, ThresholdDetector, ThresholdTracker};

/// The outcome of one streamed interval.
#[derive(Debug, Clone)]
pub struct IntervalOutcome {
    /// Interval index (0-based, counts calls to `observe`).
    pub interval: usize,
    /// Smoothed threshold used for this interval.
    pub threshold: f64,
    /// Sorted elephant key ids.
    pub elephants: Vec<KeyId>,
    /// Traffic carried by the elephants (b/s).
    pub elephant_load: f64,
    /// Total traffic in the interval (b/s).
    pub total_load: f64,
}

impl IntervalOutcome {
    /// Fraction of traffic carried by elephants (0 when idle).
    pub fn fraction(&self) -> f64 {
        if self.total_load <= 0.0 {
            0.0
        } else {
            self.elephant_load / self.total_load
        }
    }
}

/// The sliding-window length a scheme classifies over: the latent-heat
/// window, or 1 for the single-interval schemes. Panics on invalid
/// scheme parameters (same contract as [`OnlineClassifier::new`]).
pub(crate) fn scheme_window(scheme: Scheme) -> usize {
    match scheme {
        Scheme::LatentHeat { window } => {
            assert!(window >= 1, "latent-heat window must be >= 1");
            window
        }
        Scheme::SingleFeature => 1,
        Scheme::Hysteresis { enter, exit } => {
            assert!(enter >= 1.0 && (0.0..=1.0).contains(&exit), "need exit <= 1 <= enter");
            1
        }
    }
}

/// The full recovery frontier of an [`OnlineClassifier`], exported for
/// checkpointing and re-imported on restart.
///
/// The per-key sliding sums are *path-dependent* floats (incremental
/// adds and retirement subtractions in stream order), so they are
/// carried verbatim rather than recomputed from the window — recomputing
/// would bit-differ from an uninterrupted run. Threshold histories are
/// deliberately **not** part of the state: a checkpoint stays bounded by
/// the window and key population, independent of run length, and a
/// resumed classifier's outputs depend only on the smoothed EWMA value.
#[derive(Debug, Clone, PartialEq)]
pub struct ClassifierState {
    /// Intervals observed so far (the next outcome's index).
    pub interval: usize,
    /// Current smoothed threshold (`None` before the first detection).
    pub smoothed: Option<f64>,
    /// Sliding threshold sum over the window (path-dependent).
    pub sum_t: f64,
    /// Per-key window state for every key with `live > 0`, ascending by
    /// key id: `(key, sliding bandwidth sum, occupied window slots)`.
    pub per_key: Vec<(KeyId, f64, u32)>,
    /// The in-window history, oldest first: each entry is the interval's
    /// threshold term and its sparse snapshot (ascending by key).
    pub history: Vec<(f64, Vec<(KeyId, f32)>)>,
    /// The previous interval's elephants (hysteresis membership),
    /// ascending by key id; empty for the other schemes.
    pub members: Vec<KeyId>,
}

impl ClassifierState {
    /// Structurally validate this state against a scheme: history
    /// bounded by the scheme's window, key lists and snapshots ascending,
    /// membership only under hysteresis, and per-key occupancy counts
    /// exactly matching the history (the retire path depends on that
    /// invariant to release state). Shared by
    /// [`OnlineClassifier::from_state`] and the sharded partition/merge
    /// path, so a corrupt state is rejected identically everywhere.
    ///
    /// # Panics
    ///
    /// Panics when the scheme parameters are invalid (same contract as
    /// [`OnlineClassifier::new`]).
    pub fn validate(&self, scheme: Scheme) -> Result<(), String> {
        let window = scheme_window(scheme);
        if self.history.len() > window {
            return Err(format!(
                "classifier state holds {} history slots for a window of {}",
                self.history.len(),
                window
            ));
        }
        if !self.per_key.windows(2).all(|w| w[0].0 < w[1].0) {
            return Err("per-key state not ascending by key id".to_string());
        }
        if !self.members.windows(2).all(|w| w[0] < w[1]) {
            return Err("membership list not ascending by key id".to_string());
        }
        if !matches!(scheme, Scheme::Hysteresis { .. }) && !self.members.is_empty() {
            return Err("membership state present for a non-hysteresis scheme".to_string());
        }
        // Occupancy must match the history exactly: live[k] is defined
        // as the number of in-window snapshots containing k, and the
        // retire path depends on that invariant to release state.
        let mut live_check: Vec<(KeyId, u32)> =
            self.per_key.iter().map(|&(key, _, _)| (key, 0)).collect();
        for (_, snapshot) in &self.history {
            if !snapshot.windows(2).all(|w| w[0].0 < w[1].0) {
                return Err("history snapshot not ascending by key id".to_string());
            }
            for &(key, _) in snapshot {
                match live_check.binary_search_by_key(&key, |&(k, _)| k) {
                    Ok(at) => live_check[at].1 += 1,
                    Err(_) => {
                        return Err(format!("history references key {key} absent from per-key state"))
                    }
                }
            }
        }
        for (&(key, _, live), &(_, counted)) in self.per_key.iter().zip(&live_check) {
            if live == 0 || live != counted {
                return Err(format!(
                    "key {key} occupancy {live} does not match its {counted} history slots"
                ));
            }
        }
        Ok(())
    }
}

/// Incremental implementation of all three classification schemes.
///
/// Memory: O(highest key id seen) words of dense per-key state plus the
/// window's snapshots — with the pipeline's dense first-seen key ids
/// that is O(distinct keys ever active), each key costing a few words
/// for the lifetime of the monitor. [`OnlineClassifier::tracked_keys`]
/// reports the number of keys currently holding window state.
#[derive(Debug)]
pub struct OnlineClassifier<D> {
    tracker: ThresholdTracker<D>,
    scheme: Scheme,
    window: usize,
    /// Sliding per-key bandwidth sums over the window, dense by key id.
    sum_b: Vec<f64>,
    /// Per-key count of window slots with recorded activity. A key's
    /// sum resets to exact 0.0 when its count hits zero, so retirement
    /// cannot leave float-rounding residue behind (see the batch
    /// engine's `LatentState` for the full rationale).
    live: Vec<u32>,
    /// Keys with `live > 0`, iterated in ascending order for emission.
    in_window: KeyBitset,
    /// Sliding threshold sum over the window.
    sum_t: f64,
    /// The window's per-interval history: (threshold term, snapshot).
    history: VecDeque<(f64, Vec<(KeyId, f32)>)>,
    /// Current membership for the hysteresis scheme.
    members: KeyBitset,
    /// The previous interval's elephants (to clear hysteresis bits).
    prev_members: Vec<KeyId>,
    interval: usize,
}

impl<D: ThresholdDetector> OnlineClassifier<D> {
    /// Create a streaming classifier.
    ///
    /// # Panics
    ///
    /// Panics when γ is outside [0, 1) or a latent-heat window is 0.
    pub fn new(detector: D, gamma: f64, scheme: Scheme) -> Self {
        let window = scheme_window(scheme);
        OnlineClassifier {
            tracker: ThresholdTracker::new(detector, gamma),
            scheme,
            window,
            sum_b: Vec::new(),
            live: Vec::new(),
            in_window: KeyBitset::default(),
            sum_t: 0.0,
            history: VecDeque::with_capacity(window + 1),
            members: KeyBitset::default(),
            prev_members: Vec::new(),
            interval: 0,
        }
    }

    /// Grow the dense per-key arrays to cover `key`.
    #[inline]
    fn ensure_key(&mut self, key: KeyId) {
        let need = key as usize + 1;
        if self.sum_b.len() < need {
            self.sum_b.resize(need, 0.0);
            self.live.resize(need, 0);
        }
    }

    /// Feed one interval's sparse snapshot (ascending by key, as
    /// produced by the measurement pipeline) and classify it.
    pub fn observe(&mut self, snapshot: &[(KeyId, f32)]) -> IntervalOutcome {
        debug_assert!(snapshot.windows(2).all(|w| w[0].0 < w[1].0));
        let values: Vec<f64> = snapshot.iter().map(|&(_, r)| f64::from(r)).collect();
        // Fold from +0.0 like the batch matrix's total accumulation —
        // `Iterator::sum` starts from -0.0, which would make an empty
        // interval's total bit-differ from the batch path.
        let total_load: f64 = values.iter().fold(0.0, |s, &v| s + v);
        let threshold = self.tracker.observe(&values);

        // Slide the window forward.
        let t_term = if threshold.is_finite() {
            threshold
        } else {
            // Pre-detection: an unbeatable finite stand-in (see the batch
            // classifier for the same rule).
            values.iter().cloned().fold(0.0, f64::max) + 1.0
        };
        self.sum_t += t_term;
        for &(key, rate) in snapshot {
            self.ensure_key(key);
            let k = key as usize;
            if self.live[k] == 0 {
                self.sum_b[k] = f64::from(rate);
                self.in_window.insert(key);
            } else {
                self.sum_b[k] += f64::from(rate);
            }
            self.live[k] += 1;
        }
        self.history.push_back((t_term, snapshot.to_vec()));
        if self.history.len() > self.window {
            let (old_t, old_snapshot) = self.history.pop_front().expect("len checked");
            self.sum_t -= old_t;
            for (key, rate) in old_snapshot {
                let k = key as usize;
                self.live[k] -= 1;
                if self.live[k] == 0 {
                    self.sum_b[k] = 0.0;
                    self.in_window.remove(key);
                } else {
                    self.sum_b[k] = (self.sum_b[k] - f64::from(rate)).max(0.0);
                }
            }
        }

        // Classify. Every branch yields ascending key ids, so the
        // emitted list needs no sort.
        let mut elephants: Vec<KeyId> = Vec::new();
        let mut elephant_load = 0.0f64;
        match self.scheme {
            Scheme::SingleFeature => {
                for &(key, rate) in snapshot {
                    let b = f64::from(rate);
                    if b > threshold {
                        elephants.push(key);
                        elephant_load += b;
                    }
                }
            }
            Scheme::LatentHeat { .. } => {
                // Degenerate interval (zero attributed packets): emit an
                // empty elephant set instead of alerting on stale window
                // state — mirrors the batch classifier exactly, so the
                // online-vs-batch equivalence holds through capture gaps.
                if !snapshot.is_empty() {
                    for key in self.in_window.iter() {
                        if self.sum_b[key as usize] > self.sum_t {
                            elephants.push(key);
                            elephant_load += snapshot
                                .binary_search_by_key(&key, |&(k, _)| k)
                                .map(|i| f64::from(snapshot[i].1))
                                .unwrap_or(0.0);
                        }
                    }
                }
            }
            Scheme::Hysteresis { enter, exit } => {
                for &(key, rate) in snapshot {
                    let b = f64::from(rate);
                    let keep = if self.members.contains(key) {
                        b >= exit * threshold
                    } else {
                        b > enter * threshold
                    };
                    if keep {
                        elephants.push(key);
                        elephant_load += b;
                    }
                }
                for &key in &self.prev_members {
                    self.members.remove(key);
                }
                for &key in &elephants {
                    self.members.insert(key);
                }
                self.prev_members.clear();
                self.prev_members.extend_from_slice(&elephants);
            }
        }

        let outcome = IntervalOutcome {
            interval: self.interval,
            threshold,
            elephants,
            elephant_load,
            total_load,
        };
        self.interval += 1;
        outcome
    }

    /// Export the recovery frontier (see [`ClassifierState`]).
    pub fn export_state(&self) -> ClassifierState {
        ClassifierState {
            interval: self.interval,
            smoothed: self.tracker.smoothed_value(),
            sum_t: self.sum_t,
            per_key: self
                .in_window
                .iter()
                .map(|key| (key, self.sum_b[key as usize], self.live[key as usize]))
                .collect(),
            history: self.history.iter().cloned().collect(),
            members: self.prev_members.clone(),
        }
    }

    /// Rebuild a classifier from a checkpointed [`ClassifierState`],
    /// continuing bit-identically to the classifier that exported it
    /// (same detector and configuration required — the caller validates
    /// those against its checkpoint metadata).
    ///
    /// The state is structurally validated: history bounded by the
    /// window, snapshots and key lists ascending, per-key occupancy
    /// counts consistent with the history. A corrupted state is rejected
    /// with a description, never partially restored.
    ///
    /// # Panics
    ///
    /// Panics when γ or the scheme parameters are invalid (same
    /// contract as [`OnlineClassifier::new`]).
    pub fn from_state(
        detector: D,
        gamma: f64,
        scheme: Scheme,
        state: ClassifierState,
    ) -> Result<Self, String> {
        let mut classifier = OnlineClassifier::new(detector, gamma, scheme);
        state.validate(scheme)?;
        classifier.tracker.restore_smoothed(state.smoothed);
        classifier.sum_t = state.sum_t;
        for &(key, sum, live) in &state.per_key {
            classifier.ensure_key(key);
            classifier.sum_b[key as usize] = sum;
            classifier.live[key as usize] = live;
            classifier.in_window.insert(key);
        }
        classifier.history = state.history.into();
        for &key in &state.members {
            classifier.members.insert(key);
        }
        classifier.prev_members = state.members;
        classifier.interval = state.interval;
        Ok(classifier)
    }

    /// Number of intervals observed so far.
    pub fn intervals_observed(&self) -> usize {
        self.interval
    }

    /// The smoothing factor γ this classifier was built with.
    pub fn gamma(&self) -> f64 {
        self.tracker.gamma()
    }

    /// The classification scheme this classifier was built with.
    pub fn scheme(&self) -> Scheme {
        self.scheme
    }

    /// The detector's name (checkpoints fingerprint the configuration
    /// with it, so a snapshot cannot silently resume under a different
    /// detector).
    pub fn detector_name(&self) -> String {
        self.tracker.detector_name()
    }

    /// Number of keys currently holding sliding-window state — zero
    /// again once every key has been idle for a full window (the dense
    /// retire path is exact, so state cannot leak).
    pub fn tracked_keys(&self) -> usize {
        self.in_window.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{classify, ConstantLoadDetector};
    use eleph_flow::BandwidthMatrix;
    use eleph_net::Prefix;

    fn keys(n: usize) -> Vec<Prefix> {
        (0..n)
            .map(|i| format!("10.0.{i}.0/24").parse().expect("valid"))
            .collect()
    }

    fn rows() -> Vec<Vec<f64>> {
        // A mix of persistent, flickering and bursting flows.
        vec![
            vec![500.0, 10.0, 0.0, 80.0],
            vec![480.0, 12.0, 900.0, 0.0],
            vec![510.0, 9.0, 0.0, 70.0],
            vec![490.0, 11.0, 0.0, 75.0],
            vec![505.0, 10.0, 0.0, 0.0],
            vec![495.0, 10.0, 0.0, 90.0],
        ]
    }

    fn run_both(scheme: Scheme) {
        let rows = rows();
        let matrix = BandwidthMatrix::from_dense(60, 0, keys(4), &rows);
        let batch = classify(&matrix, ConstantLoadDetector::new(0.8), 0.9, scheme);

        let mut online = OnlineClassifier::new(ConstantLoadDetector::new(0.8), 0.9, scheme);
        for n in 0..rows.len() {
            let out = online.observe(&matrix.interval(n).to_pairs());
            assert_eq!(out.interval, n);
            assert_eq!(out.elephants, batch.elephants[n], "{scheme:?} interval {n}");
            assert!((out.threshold - batch.thresholds[n]).abs() < 1e-9);
            assert!((out.elephant_load - batch.elephant_load[n]).abs() < 1e-6);
            assert!((out.total_load - batch.total_load[n]).abs() < 1e-6);
            assert!((out.fraction() - batch.fraction(n)).abs() < 1e-9);
        }
        assert_eq!(online.intervals_observed(), rows.len());
    }

    #[test]
    fn matches_batch_single_feature() {
        run_both(Scheme::SingleFeature);
    }

    #[test]
    fn matches_batch_latent_heat() {
        run_both(Scheme::LatentHeat { window: 3 });
    }

    #[test]
    fn matches_batch_hysteresis() {
        run_both(Scheme::Hysteresis {
            enter: 1.2,
            exit: 0.6,
        });
    }

    #[test]
    fn hysteresis_keeps_member_through_shallow_dip() {
        // Threshold fixed at 100 via constant-load on a single dominant
        // flow is awkward; use the enter/exit semantics directly with a
        // scripted detector instead.
        struct Fixed;
        impl crate::ThresholdDetector for Fixed {
            fn detect(&self, _v: &[f64]) -> Option<f64> {
                Some(100.0)
            }
            fn name(&self) -> String {
                "fixed".to_string()
            }
        }
        let mut online = OnlineClassifier::new(
            Fixed,
            0.0,
            Scheme::Hysteresis {
                enter: 1.2,
                exit: 0.6,
            },
        );
        // 130 > 120: enters. 80 >= 60: stays. 50 < 60: leaves.
        // 110 < 120: may not re-enter.
        let outcomes: Vec<bool> = [130.0f32, 80.0, 50.0, 110.0, 125.0]
            .iter()
            .map(|&r| !online.observe(&[(0, r)]).elephants.is_empty())
            .collect();
        assert_eq!(outcomes, vec![true, true, false, false, true]);
    }

    #[test]
    fn memory_bounded_by_window_occupancy() {
        // Distinct keys every interval: tracked keys must not exceed
        // window × per-interval keys.
        let mut online = OnlineClassifier::new(
            ConstantLoadDetector::new(0.8),
            0.0,
            Scheme::LatentHeat { window: 2 },
        );
        for n in 0..50u32 {
            let snapshot = vec![(n * 3, 10.0f32), (n * 3 + 1, 20.0), (n * 3 + 2, 30.0)];
            online.observe(&snapshot);
            assert!(online.tracked_keys() <= 6, "window leak: {}", online.tracked_keys());
        }
    }

    #[test]
    fn empty_intervals_are_legal() {
        let mut online = OnlineClassifier::new(
            ConstantLoadDetector::new(0.8),
            0.9,
            Scheme::LatentHeat { window: 3 },
        );
        let out = online.observe(&[]);
        assert!(out.elephants.is_empty());
        assert_eq!(out.fraction(), 0.0);
        // Then traffic arrives: the classifier recovers.
        let out = online.observe(&[(1, 100.0), (2, 5.0)]);
        assert_eq!(out.total_load, 105.0);
    }

    #[test]
    fn randomized_equivalence_with_batch() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(99);
        let n_keys = 40;
        let n_int = 30;
        let rows: Vec<Vec<f64>> = (0..n_int)
            .map(|_| {
                (0..n_keys)
                    .map(|_| {
                        if rng.gen::<f64>() < 0.4 {
                            0.0
                        } else {
                            rng.gen_range(1.0..1000.0)
                        }
                    })
                    .collect()
            })
            .collect();
        let matrix = BandwidthMatrix::from_dense(60, 0, keys(n_keys), &rows);
        for scheme in [
            Scheme::SingleFeature,
            Scheme::LatentHeat { window: 5 },
            Scheme::Hysteresis { enter: 1.3, exit: 0.7 },
        ] {
            let batch = classify(&matrix, ConstantLoadDetector::new(0.7), 0.9, scheme);
            let mut online =
                OnlineClassifier::new(ConstantLoadDetector::new(0.7), 0.9, scheme);
            for n in 0..n_int {
                let out = online.observe(&matrix.interval(n).to_pairs());
                assert_eq!(out.elephants, batch.elephants[n], "{scheme:?} at {n}");
            }
        }
    }

    #[test]
    fn mid_stream_empty_interval_yields_no_elephants() {
        // Regression (PR 4): a capture gap mid-stream. The keys' latent
        // heat stays hugely positive, but an interval with zero
        // attributed packets must report an empty elephant set and a
        // 0.0 (not NaN) fraction — and traffic resuming next interval
        // must restore the elephants from the surviving window state.
        let mut online = OnlineClassifier::new(
            ConstantLoadDetector::new(0.8),
            0.9,
            Scheme::LatentHeat { window: 4 },
        );
        for _ in 0..3 {
            let out = online.observe(&[(0, 10_000.0), (1, 5_000.0), (2, 100.0)]);
            assert_eq!(out.elephants, vec![0]);
        }
        let gap = online.observe(&[]);
        assert!(gap.elephants.is_empty(), "stale elephants across a gap");
        assert_eq!(gap.elephant_load, 0.0);
        assert_eq!(gap.total_load, 0.0);
        assert_eq!(gap.fraction(), 0.0, "fraction must be 0, not NaN");
        assert!(gap.fraction().is_finite());
        // The window survives the gap: the elephant returns immediately.
        let back = online.observe(&[(0, 10_000.0), (1, 5_000.0), (2, 100.0)]);
        assert_eq!(back.elephants, vec![0]);
    }

    #[test]
    fn batch_and_online_agree_on_empty_intervals() {
        // The empty-interval guard must hold identically in both
        // engines or the streaming pipeline's bit-equivalence breaks.
        let rows = vec![
            vec![800.0, 10.0],
            vec![790.0, 12.0],
            vec![0.0, 0.0], // capture gap
            vec![810.0, 11.0],
        ];
        let matrix = BandwidthMatrix::from_dense(60, 0, keys(2), &rows);
        let batch = classify(
            &matrix,
            ConstantLoadDetector::new(0.8),
            0.9,
            Scheme::LatentHeat { window: 3 },
        );
        assert!(batch.elephants[2].is_empty(), "batch emits stale elephants");
        assert_eq!(batch.fraction(2), 0.0);
        let mut online = OnlineClassifier::new(
            ConstantLoadDetector::new(0.8),
            0.9,
            Scheme::LatentHeat { window: 3 },
        );
        for n in 0..rows.len() {
            let out = online.observe(&matrix.interval(n).to_pairs());
            assert_eq!(out.elephants, batch.elephants[n], "interval {n}");
            assert_eq!(out.threshold.to_bits(), batch.thresholds[n].to_bits());
        }
    }

    #[test]
    fn exact_retirement_releases_all_state() {
        // A key idle for a full window must leave zero residue, even
        // when its rates were chosen to defeat incremental float sums.
        let mut online = OnlineClassifier::new(
            ConstantLoadDetector::new(0.8),
            0.0,
            Scheme::LatentHeat { window: 3 },
        );
        let huge = (1u64 << 55) as f32;
        online.observe(&[(7, 3.0), (9, huge)]);
        online.observe(&[(7, huge), (9, 5.0)]);
        online.observe(&[(7, 1.0)]);
        assert!(online.tracked_keys() > 0);
        for _ in 0..3 {
            online.observe(&[]);
        }
        assert_eq!(online.tracked_keys(), 0, "stale window state leaked");
    }

    #[test]
    fn state_round_trip_continues_bit_identically() {
        // Export/import at every split point; the resumed classifier's
        // remaining outcomes must match the uninterrupted run *by bits*,
        // including across latent-heat retirement and hysteresis
        // transitions exercised by the `rows()` mix.
        let rows = rows();
        for scheme in [
            Scheme::SingleFeature,
            Scheme::LatentHeat { window: 2 },
            Scheme::Hysteresis { enter: 1.2, exit: 0.6 },
        ] {
            let matrix = BandwidthMatrix::from_dense(60, 0, keys(4), &rows);
            let mut reference =
                OnlineClassifier::new(ConstantLoadDetector::new(0.8), 0.9, scheme);
            let expected: Vec<IntervalOutcome> = (0..rows.len())
                .map(|n| reference.observe(&matrix.interval(n).to_pairs()))
                .collect();
            for split in 0..rows.len() {
                let mut first =
                    OnlineClassifier::new(ConstantLoadDetector::new(0.8), 0.9, scheme);
                for n in 0..split {
                    first.observe(&matrix.interval(n).to_pairs());
                }
                let state = first.export_state();
                assert_eq!(state, first.export_state(), "export must be pure");
                let mut resumed = OnlineClassifier::from_state(
                    ConstantLoadDetector::new(0.8),
                    0.9,
                    scheme,
                    state,
                )
                .expect("valid state");
                assert_eq!(resumed.intervals_observed(), split);
                for n in split..rows.len() {
                    let out = resumed.observe(&matrix.interval(n).to_pairs());
                    let want = &expected[n];
                    assert_eq!(out.interval, want.interval);
                    assert_eq!(out.elephants, want.elephants, "{scheme:?} split {split} at {n}");
                    assert_eq!(out.threshold.to_bits(), want.threshold.to_bits());
                    assert_eq!(out.elephant_load.to_bits(), want.elephant_load.to_bits());
                    assert_eq!(out.total_load.to_bits(), want.total_load.to_bits());
                }
            }
        }
    }

    #[test]
    fn from_state_rejects_corrupt_structures() {
        let scheme = Scheme::LatentHeat { window: 3 };
        let mut online = OnlineClassifier::new(ConstantLoadDetector::new(0.8), 0.9, scheme);
        online.observe(&[(1, 50.0), (4, 700.0)]);
        online.observe(&[(1, 60.0)]);
        let good = online.export_state();
        let rebuild = |state: ClassifierState| {
            OnlineClassifier::from_state(ConstantLoadDetector::new(0.8), 0.9, scheme, state)
        };
        assert!(rebuild(good.clone()).is_ok());

        // Occupancy out of sync with the history.
        let mut bad = good.clone();
        bad.per_key[0].2 += 1;
        assert!(rebuild(bad).unwrap_err().contains("occupancy"));

        // History key missing from the per-key table.
        let mut bad = good.clone();
        bad.per_key.remove(1);
        assert!(rebuild(bad).unwrap_err().contains("absent"));

        // More history than the window can hold.
        let mut bad = good.clone();
        bad.history.extend_from_slice(&[(1.0, vec![]), (1.0, vec![]), (1.0, vec![])]);
        assert!(rebuild(bad).unwrap_err().contains("window"));

        // Unsorted snapshot inside the history.
        let mut bad = good.clone();
        bad.history[0].1.reverse();
        assert!(rebuild(bad).unwrap_err().contains("ascending"));

        // Membership state on a scheme without hysteresis.
        let mut bad = good;
        bad.members = vec![1];
        assert!(rebuild(bad).unwrap_err().contains("hysteresis"));
    }
}
