//! Per-interval threshold detection.

use eleph_stats::{aest, AestConfig};

/// Monotone `f64 → u64` mapping under IEEE total order (sign bit
/// flipped for non-negatives, all bits flipped for negatives):
/// `sort_key(a) < sort_key(b) ⇔ a < b` for finite values. Sorting the
/// mapped keys takes the sorter's branchless integer fast path —
/// substantially faster than sorting `f64`s through `partial_cmp` —
/// and [`from_sort_key`] recovers the exact value, so detectors built
/// on it return bit-identical thresholds to a comparator sort.
#[inline]
fn sort_key(v: f64) -> u64 {
    let b = v.to_bits();
    b ^ ((((b as i64) >> 63) as u64) | 0x8000_0000_0000_0000)
}

/// Inverse of [`sort_key`].
#[inline]
fn from_sort_key(k: u64) -> f64 {
    f64::from_bits(k ^ ((((!k as i64) >> 63) as u64) | 0x8000_0000_0000_0000))
}

/// A rule that derives the elephant/mouse separation bandwidth from one
/// interval's flow-bandwidth snapshot.
///
/// Returns `None` when the rule cannot produce a threshold for this
/// snapshot (e.g. aest finds no power-law tail, or the snapshot is
/// empty); the [`crate::ThresholdTracker`] then carries the previous
/// smoothed value forward — a measurement system cannot simply skip an
/// interval.
pub trait ThresholdDetector {
    /// Compute the raw threshold `T(n)` from the active flows' bandwidths
    /// (unsorted, all > 0).
    fn detect(&self, values: &[f64]) -> Option<f64>;

    /// Short name for reports ("aest", "0.8-constant-load", ...).
    fn name(&self) -> String;
}

/// The paper's "aest" rule: the threshold is the point where the
/// power-law tail of the flow-bandwidth distribution begins, located by
/// the Crovella–Taqqu scaling estimator.
#[derive(Debug, Clone, Default)]
pub struct AestDetector {
    /// Estimator tuning; defaults match [`AestConfig::default`].
    pub config: AestConfig,
}

impl AestDetector {
    /// Detector with default estimator settings.
    pub fn new() -> Self {
        Self::default()
    }
}

impl ThresholdDetector for AestDetector {
    fn detect(&self, values: &[f64]) -> Option<f64> {
        aest(values, &self.config).ok().map(|r| r.tail_start)
    }

    fn name(&self) -> String {
        "aest".to_string()
    }
}

/// The paper's "β-constant load" rule: the smallest bandwidth such that
/// flows at or above it carry a fraction β of the interval's traffic.
#[derive(Debug, Clone, Copy)]
pub struct ConstantLoadDetector {
    /// Target fraction of traffic in the elephant class (paper: 0.8).
    pub beta: f64,
}

impl ConstantLoadDetector {
    /// Detector with target load fraction `beta ∈ (0, 1]`.
    ///
    /// # Panics
    ///
    /// Panics when `beta` is outside `(0, 1]`.
    pub fn new(beta: f64) -> Self {
        assert!(beta > 0.0 && beta <= 1.0, "beta {beta} out of (0, 1]");
        ConstantLoadDetector { beta }
    }
}

impl ThresholdDetector for ConstantLoadDetector {
    fn detect(&self, values: &[f64]) -> Option<f64> {
        if values.is_empty() {
            return None;
        }
        let total: f64 = values.iter().sum();
        if total <= 0.0 {
            return None;
        }
        debug_assert!(values.iter().all(|v| v.is_finite()), "bandwidths are finite");
        let mut keys: Vec<u64> = values.iter().map(|&v| sort_key(v)).collect();
        let target = self.beta * total;

        // The crossing point of the descending cumulative sum usually
        // sits in the top few percent of a heavy-tailed snapshot, so a
        // full sort is wasted work: select the top-k multiset (unique
        // even with boundary ties), sort only it, and scan; grow k and
        // repeat on the remainder if the target was not reached. The
        // descending value sequence — and therefore every partial sum
        // and the returned threshold — is identical to a full sort.
        let mut cum = 0.0;
        let mut rest: &mut [u64] = &mut keys;
        let mut k = 256usize;
        loop {
            let chunk = std::mem::take(&mut rest);
            let top: &mut [u64] = if k < chunk.len() {
                let split = chunk.len() - k;
                chunk.select_nth_unstable(split);
                let (low, top) = chunk.split_at_mut(split);
                rest = low;
                top
            } else {
                chunk
            };
            top.sort_unstable();
            for &key in top.iter().rev() {
                let v = from_sort_key(key);
                cum += v;
                if cum >= target {
                    return Some(v);
                }
            }
            if rest.is_empty() {
                // Rounding kept the descending sum below β·total: fall
                // back to the smallest bandwidth, as the full-sort scan
                // did.
                return Some(from_sort_key(top[0]));
            }
            k *= 8;
        }
    }

    fn name(&self) -> String {
        format!("{:.2}-constant-load", self.beta)
    }
}

/// Baseline: the threshold is the bandwidth of the N-th largest flow, so
/// exactly N−1 flows strictly exceed it.
#[derive(Debug, Clone, Copy)]
pub struct TopNDetector {
    /// Rank defining the threshold.
    pub n: usize,
}

impl ThresholdDetector for TopNDetector {
    fn detect(&self, values: &[f64]) -> Option<f64> {
        if self.n == 0 || values.is_empty() {
            return None;
        }
        debug_assert!(values.iter().all(|v| v.is_finite()), "bandwidths are finite");
        // The N-th largest is a selection, not a sort: O(len) expected.
        let mut keys: Vec<u64> = values.iter().map(|&v| sort_key(v)).collect();
        let idx = keys.len() - self.n.min(keys.len());
        let (_, k, _) = keys.select_nth_unstable(idx);
        Some(from_sort_key(*k))
    }

    fn name(&self) -> String {
        format!("top-{}", self.n)
    }
}

/// Baseline: a fixed upper quantile of the snapshot (e.g. the 95th
/// percentile of flow bandwidths).
#[derive(Debug, Clone, Copy)]
pub struct PercentileDetector {
    /// Quantile in (0, 1), e.g. 0.95.
    pub q: f64,
}

impl ThresholdDetector for PercentileDetector {
    fn detect(&self, values: &[f64]) -> Option<f64> {
        if values.is_empty() || !(0.0..1.0).contains(&self.q) {
            return None;
        }
        debug_assert!(values.iter().all(|v| v.is_finite()), "bandwidths are finite");
        let mut keys: Vec<u64> = values.iter().map(|&v| sort_key(v)).collect();
        let rank = ((self.q * keys.len() as f64).ceil() as usize).clamp(1, keys.len());
        let (_, k, _) = keys.select_nth_unstable(rank - 1);
        Some(from_sort_key(*k))
    }

    fn name(&self) -> String {
        format!("p{:.0}", self.q * 100.0)
    }
}

/// Forwarding impls so runtime-chosen detectors (`Box<dyn
/// ThresholdDetector>`) and borrowed detectors plug directly into the
/// generic classification entry points — no caller-side adapter structs.
impl<T: ThresholdDetector + ?Sized> ThresholdDetector for Box<T> {
    fn detect(&self, values: &[f64]) -> Option<f64> {
        (**self).detect(values)
    }

    fn name(&self) -> String {
        (**self).name()
    }
}

impl<T: ThresholdDetector + ?Sized> ThresholdDetector for &T {
    fn detect(&self, values: &[f64]) -> Option<f64> {
        (**self).detect(values)
    }

    fn name(&self) -> String {
        (**self).name()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use eleph_stats::dist::{LogNormal, Pareto, Sample};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn constant_load_exact_cases() {
        let d = ConstantLoadDetector::new(0.8);
        // One flow carries everything.
        assert_eq!(d.detect(&[100.0]), Some(100.0));
        // 100+60+40 = 200; 80% = 160 → 100+60 = 160 hits exactly at 60.
        assert_eq!(d.detect(&[40.0, 100.0, 60.0]), Some(60.0));
        // 50% of 200 = 100 → first flow suffices.
        assert_eq!(ConstantLoadDetector::new(0.5).detect(&[40.0, 100.0, 60.0]), Some(100.0));
        // β = 1 needs every flow: threshold is the smallest.
        assert_eq!(ConstantLoadDetector::new(1.0).detect(&[40.0, 100.0, 60.0]), Some(40.0));
    }

    #[test]
    fn constant_load_flows_above_carry_beta() {
        let mut rng = StdRng::seed_from_u64(8);
        let body = LogNormal::new(10.0, 1.0).unwrap();
        let tail = Pareto::new(5e5, 1.2).unwrap();
        let values: Vec<f64> = (0..5_000)
            .map(|i| {
                if i % 20 == 0 {
                    tail.sample(&mut rng)
                } else {
                    body.sample(&mut rng)
                }
            })
            .collect();
        let total: f64 = values.iter().sum();
        for beta in [0.5, 0.7, 0.8, 0.9] {
            let t = ConstantLoadDetector::new(beta).detect(&values).unwrap();
            let above: f64 = values.iter().filter(|&&v| v >= t).sum();
            assert!(
                above >= beta * total,
                "beta {beta}: above {above} < {}",
                beta * total
            );
            // And not wildly more than needed: dropping the marginal flow
            // class must fall below the target.
            let strictly_above: f64 = values.iter().filter(|&&v| v > t).sum();
            assert!(
                strictly_above < beta * total + 1e-9,
                "beta {beta}: threshold not minimal"
            );
        }
    }

    #[test]
    fn constant_load_rejects_degenerate() {
        let d = ConstantLoadDetector::new(0.8);
        assert_eq!(d.detect(&[]), None);
        assert_eq!(d.detect(&[0.0, 0.0]), None);
    }

    #[test]
    #[should_panic(expected = "out of (0, 1]")]
    fn constant_load_validates_beta() {
        let _ = ConstantLoadDetector::new(0.0);
    }

    #[test]
    fn aest_detector_on_mixture() {
        let mut rng = StdRng::seed_from_u64(4);
        let body = LogNormal::new(9.0, 0.8).unwrap(); // ~8 kb/s mice
        let tail = Pareto::new(1e6, 1.25).unwrap(); // ≥ 1 Mb/s heavies
        let values: Vec<f64> = (0..30_000)
            .map(|i| {
                if i % 40 == 0 {
                    tail.sample(&mut rng)
                } else {
                    body.sample(&mut rng)
                }
            })
            .collect();
        let t = AestDetector::new().detect(&values).expect("tail exists");
        // The threshold must separate the two populations: above the body
        // bulk, below or near the tail floor region.
        assert!(t > 50_000.0, "threshold {t} inside the body");
        assert!(t < 5e6, "threshold {t} too deep into the tail");
    }

    #[test]
    fn aest_detector_declines_on_light_tail() {
        let mut rng = StdRng::seed_from_u64(5);
        let body = LogNormal::new(9.0, 0.4).unwrap();
        let values: Vec<f64> = (0..30_000).map(|_| body.sample(&mut rng)).collect();
        assert_eq!(AestDetector::new().detect(&values), None);
    }

    #[test]
    fn top_n_detector() {
        let d = TopNDetector { n: 3 };
        assert_eq!(d.detect(&[5.0, 1.0, 4.0, 2.0, 3.0]), Some(3.0));
        // Fewer values than N: threshold is the minimum.
        assert_eq!(d.detect(&[5.0, 1.0]), Some(1.0));
        assert_eq!(TopNDetector { n: 0 }.detect(&[1.0]), None);
        assert_eq!(d.detect(&[]), None);
    }

    #[test]
    fn percentile_detector() {
        let values: Vec<f64> = (1..=100).map(f64::from).collect();
        let d = PercentileDetector { q: 0.95 };
        assert_eq!(d.detect(&values), Some(95.0));
        assert_eq!(PercentileDetector { q: 0.5 }.detect(&values), Some(50.0));
        assert_eq!(PercentileDetector { q: 1.5 }.detect(&values), None);
        assert_eq!(d.detect(&[]), None);
    }

    #[test]
    fn sort_key_is_monotone_and_invertible() {
        let samples = [
            0.0, -0.0, 1.0, -1.0, 1e-300, -1e-300, 5e-324, 1e308, -1e308, 0.5, 2.0,
            f64::MAX, f64::MIN, f64::MIN_POSITIVE,
        ];
        for &a in &samples {
            assert_eq!(super::from_sort_key(super::sort_key(a)).to_bits(), a.to_bits());
            for &b in &samples {
                assert_eq!(
                    super::sort_key(a) < super::sort_key(b),
                    a < b || (a == b && a.is_sign_negative() && b.is_sign_positive()),
                    "ordering diverges for {a} vs {b}"
                );
            }
        }
    }

    #[test]
    fn names_are_descriptive() {
        assert_eq!(AestDetector::new().name(), "aest");
        assert_eq!(ConstantLoadDetector::new(0.8).name(), "0.80-constant-load");
        assert_eq!(TopNDetector { n: 500 }.name(), "top-500");
        assert_eq!(PercentileDetector { q: 0.95 }.name(), "p95");
    }
}
