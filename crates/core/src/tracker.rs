//! The threshold update phase: EWMA smoothing across intervals.

use eleph_stats::Ewma;

use crate::ThresholdDetector;

/// Combines a [`ThresholdDetector`] with the paper's §II update rule
/// `T̄(n+1) = γ·T̄(n) + (1−γ)·T(n)`.
///
/// When the detector cannot produce a raw threshold for an interval
/// (aest finding no tail, an empty snapshot), the tracker *holds* the
/// previous smoothed value: the classification must keep operating every
/// interval. The raw detections are recorded alongside, so reports can
/// show how often the detector abstained.
#[derive(Debug)]
pub struct ThresholdTracker<D> {
    detector: D,
    series: ThresholdSeries,
}

/// The detector-free half of a [`ThresholdTracker`]: the EWMA update
/// rule applied to a stream of raw detections.
///
/// [`crate::classify_many`] runs one detector over each interval once
/// and fans the raw detection out to many configurations; each
/// configuration owns a `ThresholdSeries` (its own γ and histories)
/// while sharing the detection work.
#[derive(Debug)]
pub struct ThresholdSeries {
    ewma: Ewma,
    raw_history: Vec<Option<f64>>,
    smoothed_history: Vec<f64>,
}

impl ThresholdSeries {
    /// Create a series with smoothing factor γ ∈ [0, 1).
    ///
    /// # Panics
    ///
    /// Panics when γ is outside [0, 1).
    pub fn new(gamma: f64) -> Self {
        ThresholdSeries {
            ewma: Ewma::new(gamma).unwrap_or_else(|e| panic!("invalid gamma: {e}")),
            raw_history: Vec::new(),
            smoothed_history: Vec::new(),
        }
    }

    /// Rebuild a series from checkpointed smoothing state: the γ it was
    /// created with and the last smoothed value (`None` = no detection
    /// had happened yet).
    ///
    /// Only the *operational* state is restored — the raw/smoothed
    /// histories restart empty, so a resumed monitor keeps classifying
    /// bit-identically while its checkpoint stays O(1) in run length.
    ///
    /// # Panics
    ///
    /// Panics when γ is outside [0, 1) (same contract as
    /// [`ThresholdSeries::new`]).
    pub fn with_state(gamma: f64, smoothed: Option<f64>) -> Self {
        let mut series = ThresholdSeries::new(gamma);
        if let Some(value) = smoothed {
            series.ewma.update(value);
        }
        series
    }

    /// The current smoothed threshold (`None` before the first
    /// successful detection) — the one scalar a checkpoint must carry.
    pub fn smoothed_value(&self) -> Option<f64> {
        self.ewma.value()
    }

    /// The smoothing factor γ.
    pub fn gamma(&self) -> f64 {
        self.ewma.gamma()
    }

    /// Feed one interval's raw detection (`None` = the detector
    /// abstained); returns the smoothed threshold `T̄(n)`.
    ///
    /// Before the first successful detection there is no basis for a
    /// threshold and the series returns `f64::INFINITY` (nothing
    /// classifies as an elephant — the conservative choice for a TE
    /// application).
    pub fn observe_raw(&mut self, raw: Option<f64>) -> f64 {
        self.raw_history.push(raw);
        let smoothed = match raw {
            Some(t) => self.ewma.update(t),
            None => self.ewma.value().unwrap_or(f64::INFINITY),
        };
        self.smoothed_history.push(smoothed);
        smoothed
    }

    /// Raw (pre-smoothing) detections so far; `None` where the detector
    /// abstained.
    pub fn raw_history(&self) -> &[Option<f64>] {
        &self.raw_history
    }

    /// Smoothed thresholds so far.
    pub fn smoothed_history(&self) -> &[f64] {
        &self.smoothed_history
    }

    /// Consume the series, returning `(raw, smoothed)` histories.
    pub fn into_histories(self) -> (Vec<Option<f64>>, Vec<f64>) {
        (self.raw_history, self.smoothed_history)
    }
}

impl<D: ThresholdDetector> ThresholdTracker<D> {
    /// Create a tracker with smoothing factor γ ∈ [0, 1).
    ///
    /// # Panics
    ///
    /// Panics when γ is outside [0, 1).
    pub fn new(detector: D, gamma: f64) -> Self {
        ThresholdTracker {
            detector,
            series: ThresholdSeries::new(gamma),
        }
    }

    /// Rebuild a tracker from checkpointed smoothing state (see
    /// [`ThresholdSeries::with_state`] — histories restart empty).
    ///
    /// # Panics
    ///
    /// Panics when γ is outside [0, 1).
    pub fn with_state(detector: D, gamma: f64, smoothed: Option<f64>) -> Self {
        ThresholdTracker {
            detector,
            series: ThresholdSeries::with_state(gamma, smoothed),
        }
    }

    /// The current smoothed threshold (`None` before the first
    /// successful detection).
    pub fn smoothed_value(&self) -> Option<f64> {
        self.series.smoothed_value()
    }

    /// Replace the smoothing state with a checkpointed value, clearing
    /// the histories (the resumed run records its own going forward).
    pub fn restore_smoothed(&mut self, smoothed: Option<f64>) {
        self.series = ThresholdSeries::with_state(self.series.gamma(), smoothed);
    }

    /// The smoothing factor γ.
    pub fn gamma(&self) -> f64 {
        self.series.gamma()
    }

    /// Feed one interval's bandwidth snapshot; returns the smoothed
    /// threshold `T̄(n)` to classify this interval with (see
    /// [`ThresholdSeries::observe_raw`] for the pre-detection rule).
    pub fn observe(&mut self, values: &[f64]) -> f64 {
        self.series.observe_raw(self.detector.detect(values))
    }

    /// The detector's name.
    pub fn detector_name(&self) -> String {
        self.detector.name()
    }

    /// Raw (pre-smoothing) detections so far; `None` where the detector
    /// abstained.
    pub fn raw_history(&self) -> &[Option<f64>] {
        self.series.raw_history()
    }

    /// Smoothed thresholds so far.
    pub fn smoothed_history(&self) -> &[f64] {
        self.series.smoothed_history()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A scripted detector for testing the tracker in isolation.
    struct Scripted(std::cell::RefCell<Vec<Option<f64>>>);

    impl ThresholdDetector for Scripted {
        fn detect(&self, _values: &[f64]) -> Option<f64> {
            self.0.borrow_mut().remove(0)
        }

        fn name(&self) -> String {
            "scripted".to_string()
        }
    }

    fn tracker(script: Vec<Option<f64>>) -> ThresholdTracker<Scripted> {
        ThresholdTracker::new(Scripted(std::cell::RefCell::new(script)), 0.9)
    }

    #[test]
    fn first_detection_initialises() {
        let mut t = tracker(vec![Some(100.0)]);
        assert_eq!(t.observe(&[]), 100.0);
        assert_eq!(t.smoothed_history(), &[100.0]);
        assert_eq!(t.raw_history(), &[Some(100.0)]);
    }

    #[test]
    fn paper_update_rule_applied() {
        let mut t = tracker(vec![Some(100.0), Some(200.0)]);
        t.observe(&[]);
        let s = t.observe(&[]);
        assert!((s - 110.0).abs() < 1e-12); // 0.9·100 + 0.1·200
    }

    #[test]
    fn abstention_holds_previous_value() {
        let mut t = tracker(vec![Some(100.0), None, None, Some(0.0)]);
        t.observe(&[]);
        assert_eq!(t.observe(&[]), 100.0);
        assert_eq!(t.observe(&[]), 100.0);
        let s = t.observe(&[]);
        assert!((s - 90.0).abs() < 1e-12); // 0.9·100 + 0.1·0
        assert_eq!(t.raw_history(), &[Some(100.0), None, None, Some(0.0)]);
    }

    #[test]
    fn no_detection_yet_is_infinite() {
        let mut t = tracker(vec![None, None]);
        assert_eq!(t.observe(&[]), f64::INFINITY);
        assert_eq!(t.observe(&[]), f64::INFINITY);
    }

    #[test]
    #[should_panic(expected = "invalid gamma")]
    fn bad_gamma_panics() {
        let _ = tracker_with_gamma(1.0);
    }

    fn tracker_with_gamma(gamma: f64) -> ThresholdTracker<Scripted> {
        ThresholdTracker::new(Scripted(std::cell::RefCell::new(vec![])), gamma)
    }

    #[test]
    fn smoothing_dampens_spikes() {
        // A single spiky detection moves the smoothed value by only 10%.
        let mut t = tracker(vec![Some(100.0), Some(1000.0), Some(100.0)]);
        t.observe(&[]);
        let spike = t.observe(&[]);
        assert!((spike - 190.0).abs() < 1e-9);
        let after = t.observe(&[]);
        assert!((after - 181.0).abs() < 1e-9);
    }

    #[test]
    fn gamma_zero_tracks_raw() {
        let mut t = ThresholdTracker::new(
            Scripted(std::cell::RefCell::new(vec![Some(5.0), Some(7.0)])),
            0.0,
        );
        assert_eq!(t.observe(&[]), 5.0);
        assert_eq!(t.observe(&[]), 7.0);
    }

    #[test]
    fn real_detector_integration() {
        use crate::ConstantLoadDetector;
        let mut t = ThresholdTracker::new(ConstantLoadDetector::new(0.8), 0.9);
        let s1 = t.observe(&[100.0, 50.0, 10.0]); // 80% of 160 = 128 → t = 50
        assert_eq!(s1, 50.0);
        assert_eq!(t.detector_name(), "0.80-constant-load");
    }
}
