//! Packet-level synthesis of a rate-trace window.

use std::io::Write;

use eleph_packet::pcap::PcapWriter;
use eleph_packet::{IpProtocol, LinkType, PacketBuilder, PacketMeta};
use rand::Rng;

use crate::flows::flow_rng;
use crate::{FlowKind, RateTrace};

/// A packet-size mix: `(ip_total_len, weight)` pairs.
///
/// Defaults approximate a 2001 backbone: half the packets are 40-byte
/// acks, the rest split between 576-byte (pre-PMTUD default) and
/// 1500-byte (Ethernet MTU) data packets.
#[derive(Debug, Clone)]
pub struct PacketMix {
    entries: Vec<(usize, f64)>,
    total_weight: f64,
}

impl Default for PacketMix {
    fn default() -> Self {
        PacketMix::new(vec![(40, 0.5), (576, 0.25), (1500, 0.25)])
            .expect("default mix is valid")
    }
}

impl PacketMix {
    /// Build a mix; sizes must be ≥ 40 (IPv4 + TCP headers) and weights
    /// positive.
    pub fn new(entries: Vec<(usize, f64)>) -> Option<Self> {
        if entries.is_empty() {
            return None;
        }
        if entries.iter().any(|&(s, w)| s < 40 || s > 65_535 || w <= 0.0) {
            return None;
        }
        let total_weight = entries.iter().map(|&(_, w)| w).sum();
        Some(PacketMix {
            entries,
            total_weight,
        })
    }

    /// Draw one size.
    fn draw<R: Rng + ?Sized>(&self, rng: &mut R) -> usize {
        let mut ticket = rng.gen::<f64>() * self.total_weight;
        for &(size, w) in &self.entries {
            if ticket < w {
                return size;
            }
            ticket -= w;
        }
        self.entries.last().expect("non-empty").0
    }

    /// Mean packet size under the mix.
    pub fn mean_size(&self) -> f64 {
        self.entries
            .iter()
            .map(|&(s, w)| s as f64 * w)
            .sum::<f64>()
            / self.total_weight
    }
}

/// Expands a window of a [`RateTrace`] into packets.
///
/// Per flow and interval, packets are emitted until the flow's byte
/// budget (`rate · T / 8`) is met; the final packet is shrunk to land
/// within 40 bytes of the budget, so the aggregated packet stream
/// reproduces `B_i(n)` to within `40·8/T` b/s (pinned by an integration
/// test). Timestamps are uniform over the interval; everything is
/// deterministic in the trace seed.
#[derive(Debug)]
pub struct PacketSynth<'a> {
    trace: &'a RateTrace,
    mix: PacketMix,
}

impl<'a> PacketSynth<'a> {
    /// Synthesiser with the default packet mix.
    pub fn new(trace: &'a RateTrace) -> Self {
        PacketSynth {
            trace,
            mix: PacketMix::default(),
        }
    }

    /// Synthesiser with a custom mix.
    pub fn with_mix(trace: &'a RateTrace, mix: PacketMix) -> Self {
        PacketSynth { trace, mix }
    }

    /// Approximate packet count of an interval window (for sizing
    /// buffers / sanity checks before a big synthesis).
    pub fn estimate_packets(&self, intervals: std::ops::Range<usize>) -> u64 {
        let secs = self.trace.config.interval_secs as f64;
        let mean = self.mix.mean_size();
        intervals
            .map(|n| (self.trace.total(n) / 8.0 * secs / mean) as u64)
            .sum()
    }

    /// Generate metadata-level packets for the window, invoking `sink`
    /// for each. Packets are time-sorted within each interval.
    pub fn synthesize_window<F: FnMut(PacketMeta)>(
        &self,
        intervals: std::ops::Range<usize>,
        mut sink: F,
    ) {
        for n in intervals {
            let mut batch = self.interval_metas(n);
            batch.sort_unstable_by_key(|m| m.ts_ns);
            for m in batch {
                sink(m);
            }
        }
    }

    /// Write the window as a raw-IP pcap file with real (checksummed)
    /// TCP/IPv4 packets. Returns the number of records written.
    pub fn write_pcap<W: Write>(
        &self,
        intervals: std::ops::Range<usize>,
        out: W,
    ) -> eleph_packet::Result<u64> {
        let mut writer = PcapWriter::new(out, LinkType::RawIp.code())?;
        for n in intervals {
            let mut batch = self.interval_metas(n);
            batch.sort_unstable_by_key(|m| m.ts_ns);
            for m in batch {
                let packet = PacketBuilder::tcp()
                    .src(m.src, m.src_port)
                    .dst(m.dst, m.dst_port)
                    .payload_len(m.wire_len as usize - 40)
                    .build_ipv4();
                debug_assert_eq!(packet.len() as u32, m.wire_len);
                writer.write_record(m.ts_ns, m.wire_len, &packet)?;
            }
        }
        let records = writer.records_written();
        writer.finish()?;
        Ok(records)
    }

    /// All packet metas of one interval, unsorted.
    fn interval_metas(&self, n: usize) -> Vec<PacketMeta> {
        let config = &self.trace.config;
        let t0_ns = config.interval_start_unix(n) * 1_000_000_000;
        let span_ns = config.interval_secs * 1_000_000_000;
        let mut out = Vec::new();

        for &(flow, rate) in self.trace.interval(n) {
            let meta = self.trace.population.get(flow);
            let Some(dst) = meta.dst_addr else {
                // No unshadowed address available: the population builder
                // filters these out, so this is defensive only.
                continue;
            };
            let mut rng = flow_rng(config.seed, flow, 0x9AC4 ^ (n as u64) << 20);
            let mut budget = (f64::from(rate) / 8.0 * config.interval_secs as f64) as i64;
            let dst_port = match meta.kind {
                FlowKind::Heavy => 80,
                FlowKind::Mouse => 1024 + (flow % 50_000) as u16,
            };
            while budget >= 40 {
                let mut size = self.mix.draw(&mut rng);
                if size as i64 > budget {
                    size = budget as usize; // final fragment, ≥ 40 here
                }
                let ts_ns = t0_ns + rng.gen_range(0..span_ns);
                out.push(PacketMeta {
                    ts_ns,
                    src: std::net::Ipv4Addr::from(0xC612_0000 | (flow & 0xFFFF)),
                    dst,
                    proto: IpProtocol::Tcp,
                    src_port: 32_768 + (rng.gen::<u16>() % 28_000),
                    dst_port,
                    wire_len: size as u32,
                });
                budget -= size as i64;
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::WorkloadConfig;
    use eleph_bgp::synth::{self, SynthConfig};
    use eleph_packet::pcap::PcapReader;
    use eleph_packet::parse_record_meta;
    use std::collections::HashMap;

    fn small_trace() -> RateTrace {
        let table = synth::generate(&SynthConfig {
            n_prefixes: 1_000,
            ..SynthConfig::default()
        });
        let config = WorkloadConfig {
            n_flows: 60,
            n_intervals: 4,
            interval_secs: 10,
            link: crate::LinkSpec {
                name: "tiny".into(),
                capacity_bps: 2_000_000.0,
                target_peak_util: 0.5,
            },
            ..WorkloadConfig::small_test(21)
        };
        RateTrace::generate(&config, &table)
    }

    #[test]
    fn per_flow_bytes_match_rates() {
        let trace = small_trace();
        let synth = PacketSynth::new(&trace);
        let mut bytes: HashMap<(usize, std::net::Ipv4Addr), u64> = HashMap::new();
        let t0 = trace.config.start_unix * 1_000_000_000;
        let span = trace.config.interval_secs * 1_000_000_000;
        synth.synthesize_window(0..trace.n_intervals(), |m| {
            let n = ((m.ts_ns - t0) / span) as usize;
            *bytes.entry((n, m.dst)).or_default() += u64::from(m.wire_len);
        });
        for n in 0..trace.n_intervals() {
            for &(flow, rate) in trace.interval(n) {
                let meta = trace.population.get(flow);
                let dst = meta.dst_addr.expect("population keeps only usable flows");
                let want = f64::from(rate) / 8.0 * trace.config.interval_secs as f64;
                let got = *bytes.get(&(n, dst)).unwrap_or(&0) as f64;
                assert!(
                    (got - want).abs() <= 40.0,
                    "interval {n} flow {flow}: want {want} got {got}"
                );
            }
        }
    }

    #[test]
    fn timestamps_stay_in_interval_and_sorted() {
        let trace = small_trace();
        let synth = PacketSynth::new(&trace);
        let t0 = trace.config.start_unix * 1_000_000_000;
        let span = trace.config.interval_secs * 1_000_000_000;
        let mut last_ts = 0u64;
        let mut last_interval = 0usize;
        synth.synthesize_window(0..trace.n_intervals(), |m| {
            let n = ((m.ts_ns - t0) / span) as usize;
            assert!(n < trace.n_intervals());
            if n == last_interval {
                assert!(m.ts_ns >= last_ts, "unsorted within interval");
            }
            last_interval = n;
            last_ts = m.ts_ns;
        });
    }

    #[test]
    fn synthesis_is_deterministic() {
        let trace = small_trace();
        let synth = PacketSynth::new(&trace);
        let mut a = Vec::new();
        let mut b = Vec::new();
        synth.synthesize_window(0..2, |m| a.push(m));
        synth.synthesize_window(0..2, |m| b.push(m));
        assert_eq!(a, b);
    }

    #[test]
    fn pcap_round_trip_preserves_metas() {
        let trace = small_trace();
        let synth = PacketSynth::new(&trace);
        let mut metas = Vec::new();
        synth.synthesize_window(0..1, |m| metas.push(m));

        let mut buf = Vec::new();
        let written = synth.write_pcap(0..1, &mut buf).unwrap();
        assert_eq!(written as usize, metas.len());

        let reader = PcapReader::new(&buf[..]).unwrap();
        let link = LinkType::from_code(reader.header().linktype).unwrap();
        let mut count = 0usize;
        for rec in reader {
            let rec = rec.unwrap();
            let got = parse_record_meta(link, &rec).unwrap();
            let want = metas[count];
            assert_eq!(got.dst, want.dst);
            assert_eq!(got.wire_len, want.wire_len);
            assert_eq!(got.ts_ns / 1_000, want.ts_ns / 1_000); // µs pcap
            assert_eq!(got.dst_port, want.dst_port);
            count += 1;
        }
        assert_eq!(count, metas.len());
    }

    #[test]
    fn estimate_close_to_actual() {
        let trace = small_trace();
        let synth = PacketSynth::new(&trace);
        let mut actual = 0u64;
        synth.synthesize_window(0..trace.n_intervals(), |_| actual += 1);
        let estimate = synth.estimate_packets(0..trace.n_intervals());
        assert!(
            (estimate as f64 - actual as f64).abs() / actual as f64 * 100.0 < 30.0,
            "estimate {estimate} actual {actual}"
        );
    }

    #[test]
    fn mix_validation() {
        assert!(PacketMix::new(vec![]).is_none());
        assert!(PacketMix::new(vec![(39, 1.0)]).is_none());
        assert!(PacketMix::new(vec![(40, 0.0)]).is_none());
        assert!(PacketMix::new(vec![(70_000, 1.0)]).is_none());
        let m = PacketMix::new(vec![(100, 1.0), (300, 1.0)]).unwrap();
        assert!((m.mean_size() - 200.0).abs() < 1e-9);
    }

    #[test]
    fn heavy_flows_use_port_80() {
        let trace = small_trace();
        let heavy: std::collections::HashSet<_> = trace
            .population
            .heavy_ids()
            .into_iter()
            .filter_map(|id| trace.population.get(id).dst_addr)
            .collect();
        if heavy.is_empty() {
            return; // tiny population may have no heavy flow
        }
        let synth = PacketSynth::new(&trace);
        synth.synthesize_window(0..1, |m| {
            if heavy.contains(&m.dst) {
                assert_eq!(m.dst_port, 80);
            }
        });
    }
}
