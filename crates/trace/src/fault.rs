//! Fault injection for raw packet streams.
//!
//! Mirrors the fault-injection options of smoltcp's examples
//! (`--drop-chance`, `--corrupt-chance`, …): measurement infrastructure
//! must account for damaged input rather than crash or silently
//! miscount, and the robustness tests drive the pipeline through this
//! injector to prove it.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Probabilities for each fault class, evaluated independently per
/// packet in the order drop → corrupt → truncate.
#[derive(Debug, Clone, Copy)]
pub struct FaultConfig {
    /// Probability the packet is dropped entirely.
    pub drop_prob: f64,
    /// Probability one random bit is flipped.
    pub corrupt_prob: f64,
    /// Probability the packet is truncated to a random shorter length.
    pub truncate_prob: f64,
    /// RNG seed.
    pub seed: u64,
}

impl FaultConfig {
    /// No faults at all.
    pub fn none() -> Self {
        FaultConfig {
            drop_prob: 0.0,
            corrupt_prob: 0.0,
            truncate_prob: 0.0,
            seed: 0,
        }
    }

    /// Check every probability is a real number in [0, 1].
    ///
    /// `gen_bool`-style sampling silently misbehaves on NaN or
    /// out-of-range values, so a config is rejected up front with the
    /// offending field named.
    pub fn validate(&self) -> Result<(), String> {
        for (name, p) in [
            ("drop_prob", self.drop_prob),
            ("corrupt_prob", self.corrupt_prob),
            ("truncate_prob", self.truncate_prob),
        ] {
            if !(0.0..=1.0).contains(&p) {
                return Err(format!("{name} must be a probability in [0, 1], got {p}"));
            }
        }
        Ok(())
    }
}

/// Counters for what the injector did.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FaultStats {
    /// Packets offered to the injector.
    pub seen: u64,
    /// Packets dropped.
    pub dropped: u64,
    /// Packets with a bit flipped.
    pub corrupted: u64,
    /// Packets truncated.
    pub truncated: u64,
}

/// What happened to a packet.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultAction {
    /// Packet continues (possibly mutated).
    Forwarded,
    /// Packet is gone; the caller must not process it.
    Dropped,
}

/// Stateful fault injector.
#[derive(Debug)]
pub struct FaultInjector {
    config: FaultConfig,
    rng: StdRng,
    stats: FaultStats,
}

impl FaultInjector {
    /// Create an injector; deterministic in `config.seed`.
    ///
    /// # Panics
    ///
    /// Panics when a probability is NaN or outside [0, 1] (see
    /// [`FaultInjector::try_new`] for the non-panicking form).
    pub fn new(config: FaultConfig) -> Self {
        Self::try_new(config).unwrap_or_else(|e| panic!("invalid fault config: {e}"))
    }

    /// Create an injector, rejecting NaN / out-of-range probabilities.
    pub fn try_new(config: FaultConfig) -> Result<Self, String> {
        config.validate()?;
        Ok(FaultInjector {
            rng: StdRng::seed_from_u64(config.seed),
            config,
            stats: FaultStats::default(),
        })
    }

    /// Apply faults to one packet in place.
    pub fn apply(&mut self, packet: &mut Vec<u8>) -> FaultAction {
        self.stats.seen += 1;
        if self.rng.gen::<f64>() < self.config.drop_prob {
            self.stats.dropped += 1;
            return FaultAction::Dropped;
        }
        if !packet.is_empty() && self.rng.gen::<f64>() < self.config.corrupt_prob {
            let idx = self.rng.gen_range(0..packet.len());
            let bit = self.rng.gen_range(0..8u8);
            packet[idx] ^= 1 << bit;
            self.stats.corrupted += 1;
        }
        if packet.len() > 1 && self.rng.gen::<f64>() < self.config.truncate_prob {
            let keep = self.rng.gen_range(1..packet.len());
            packet.truncate(keep);
            self.stats.truncated += 1;
        }
        FaultAction::Forwarded
    }

    /// Counters so far.
    pub fn stats(&self) -> FaultStats {
        self.stats
    }
}

/// Where, within the seal → emit → checkpoint sequence, a *process*
/// fault strikes. Packet damage (above) exercises the input path; these
/// exercise the recovery path — each point leaves a distinct on-disk
/// state the resume logic must reconcile:
///
/// - [`CrashPoint::AfterSeal`]: the classifier advanced in memory but
///   the interval never reached a sink — resume replays it from the
///   previous checkpoint.
/// - [`CrashPoint::AfterSink`]: the interval is durably written but the
///   checkpoint still describes the previous one — resume must truncate
///   the duplicate record before replaying.
/// - [`CrashPoint::MidCheckpointWrite`]: the new snapshot is torn —
///   resume must fall back to the last complete checkpoint, never read
///   a partial one.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CrashPoint {
    /// After an interval seals, before any sink sees it.
    AfterSeal,
    /// After the sinks wrote the interval, before the checkpoint.
    AfterSink,
    /// Midway through writing the checkpoint file.
    MidCheckpointWrite,
}

impl CrashPoint {
    /// Every crash point, for exhaustive harness loops.
    pub const ALL: [CrashPoint; 3] = [
        CrashPoint::AfterSeal,
        CrashPoint::AfterSink,
        CrashPoint::MidCheckpointWrite,
    ];
}

/// A one-shot trigger that simulates a crash at a chosen [`CrashPoint`]
/// on a chosen interval. The pipeline polls it at each point; when it
/// trips, the run aborts exactly as a SIGKILL would at that instruction
/// (no unwinding of already-durable effects).
#[derive(Debug, Clone)]
pub struct CrashSwitch {
    point: CrashPoint,
    at_seal: usize,
    tripped: bool,
}

impl CrashSwitch {
    /// Crash at `point` while sealing interval `at_seal` (0-based).
    pub fn new(point: CrashPoint, at_seal: usize) -> Self {
        CrashSwitch {
            point,
            at_seal,
            tripped: false,
        }
    }

    /// Poll the switch: true exactly once, at the configured point and
    /// interval.
    pub fn should_crash(&mut self, point: CrashPoint, seal_index: usize) -> bool {
        if !self.tripped && point == self.point && seal_index == self.at_seal {
            self.tripped = true;
            true
        } else {
            false
        }
    }

    /// The configured crash point.
    pub fn point(&self) -> CrashPoint {
        self.point
    }

    /// Whether the switch already fired.
    pub fn tripped(&self) -> bool {
        self.tripped
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn packet() -> Vec<u8> {
        (0u8..64).collect()
    }

    #[test]
    fn no_faults_is_identity() {
        let mut inj = FaultInjector::new(FaultConfig::none());
        for _ in 0..100 {
            let mut p = packet();
            assert_eq!(inj.apply(&mut p), FaultAction::Forwarded);
            assert_eq!(p, packet());
        }
        assert_eq!(
            inj.stats(),
            FaultStats {
                seen: 100,
                ..Default::default()
            }
        );
    }

    #[test]
    fn drop_rate_approximates_probability() {
        let mut inj = FaultInjector::new(FaultConfig {
            drop_prob: 0.3,
            corrupt_prob: 0.0,
            truncate_prob: 0.0,
            seed: 5,
        });
        let mut dropped = 0;
        for _ in 0..10_000 {
            let mut p = packet();
            if inj.apply(&mut p) == FaultAction::Dropped {
                dropped += 1;
            }
        }
        let rate = dropped as f64 / 10_000.0;
        assert!((rate - 0.3).abs() < 0.02, "drop rate {rate}");
        assert_eq!(inj.stats().dropped, dropped);
    }

    #[test]
    fn corruption_flips_exactly_one_bit() {
        let mut inj = FaultInjector::new(FaultConfig {
            drop_prob: 0.0,
            corrupt_prob: 1.0,
            truncate_prob: 0.0,
            seed: 6,
        });
        for _ in 0..100 {
            let mut p = packet();
            assert_eq!(inj.apply(&mut p), FaultAction::Forwarded);
            let diff_bits: u32 = p
                .iter()
                .zip(packet())
                .map(|(a, b)| (a ^ b).count_ones())
                .sum();
            assert_eq!(diff_bits, 1);
        }
        assert_eq!(inj.stats().corrupted, 100);
    }

    #[test]
    fn truncation_shortens_but_never_empties() {
        let mut inj = FaultInjector::new(FaultConfig {
            drop_prob: 0.0,
            corrupt_prob: 0.0,
            truncate_prob: 1.0,
            seed: 7,
        });
        for _ in 0..100 {
            let mut p = packet();
            inj.apply(&mut p);
            assert!(!p.is_empty());
            assert!(p.len() < 64);
        }
        assert_eq!(inj.stats().truncated, 100);
    }

    #[test]
    fn deterministic_in_seed() {
        let run = || {
            let mut inj = FaultInjector::new(FaultConfig {
                drop_prob: 0.2,
                corrupt_prob: 0.2,
                truncate_prob: 0.2,
                seed: 42,
            });
            let mut out = Vec::new();
            for _ in 0..200 {
                let mut p = packet();
                let act = inj.apply(&mut p);
                out.push((act, p));
            }
            (out, inj.stats())
        };
        let (a, sa) = run();
        let (b, sb) = run();
        assert_eq!(a, b);
        assert_eq!(sa, sb);
    }

    #[test]
    fn bad_probabilities_are_rejected() {
        for bad in [f64::NAN, -0.1, 1.5, f64::INFINITY] {
            let config = FaultConfig {
                drop_prob: bad,
                ..FaultConfig::none()
            };
            let err = FaultInjector::try_new(config).unwrap_err();
            assert!(err.contains("drop_prob"), "error names the field: {err}");
        }
        let config = FaultConfig {
            truncate_prob: 2.0,
            ..FaultConfig::none()
        };
        assert!(FaultInjector::try_new(config).unwrap_err().contains("truncate_prob"));
        // Boundary values are legal.
        for p in [0.0, 1.0] {
            let config = FaultConfig {
                drop_prob: p,
                corrupt_prob: p,
                truncate_prob: p,
                ..FaultConfig::none()
            };
            assert!(FaultInjector::try_new(config).is_ok());
        }
    }

    #[test]
    #[should_panic(expected = "invalid fault config")]
    fn new_panics_on_nan() {
        let _ = FaultInjector::new(FaultConfig {
            corrupt_prob: f64::NAN,
            ..FaultConfig::none()
        });
    }

    #[test]
    fn crash_switch_fires_exactly_once() {
        let mut switch = CrashSwitch::new(CrashPoint::AfterSink, 2);
        assert!(!switch.should_crash(CrashPoint::AfterSeal, 2), "wrong point");
        assert!(!switch.should_crash(CrashPoint::AfterSink, 1), "wrong interval");
        assert!(!switch.tripped());
        assert!(switch.should_crash(CrashPoint::AfterSink, 2));
        assert!(switch.tripped());
        assert!(!switch.should_crash(CrashPoint::AfterSink, 2), "one-shot");
    }

    #[test]
    fn empty_packet_never_panics() {
        let mut inj = FaultInjector::new(FaultConfig {
            drop_prob: 0.1,
            corrupt_prob: 0.9,
            truncate_prob: 0.9,
            seed: 9,
        });
        for _ in 0..50 {
            let mut p = Vec::new();
            let _ = inj.apply(&mut p);
        }
    }
}
