//! Fault injection for raw packet streams and the routing control
//! plane.
//!
//! Mirrors the fault-injection options of smoltcp's examples
//! (`--drop-chance`, `--corrupt-chance`, …): measurement infrastructure
//! must account for damaged input rather than crash or silently
//! miscount, and the robustness tests drive the pipeline through this
//! injector to prove it. [`generate_churn`] extends the same idea to
//! the routing table: deterministic announce/withdraw storms and
//! flap-damping scenarios stress mid-stream re-attribution.

use eleph_bgp::{BgpTable, RouteEntry, RouteUpdate, UpdateBatch};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::BTreeMap;

use crate::mix64;

/// Probabilities for each fault class, evaluated independently per
/// packet in the order drop → corrupt → truncate.
#[derive(Debug, Clone, Copy)]
pub struct FaultConfig {
    /// Probability the packet is dropped entirely.
    pub drop_prob: f64,
    /// Probability one random bit is flipped.
    pub corrupt_prob: f64,
    /// Probability the packet is truncated to a random shorter length.
    pub truncate_prob: f64,
    /// RNG seed.
    pub seed: u64,
}

impl FaultConfig {
    /// No faults at all.
    pub fn none() -> Self {
        FaultConfig {
            drop_prob: 0.0,
            corrupt_prob: 0.0,
            truncate_prob: 0.0,
            seed: 0,
        }
    }

    /// Check every probability is a real number in [0, 1].
    ///
    /// `gen_bool`-style sampling silently misbehaves on NaN or
    /// out-of-range values, so a config is rejected up front with the
    /// offending field named.
    pub fn validate(&self) -> Result<(), String> {
        for (name, p) in [
            ("drop_prob", self.drop_prob),
            ("corrupt_prob", self.corrupt_prob),
            ("truncate_prob", self.truncate_prob),
        ] {
            if !(0.0..=1.0).contains(&p) {
                return Err(format!("{name} must be a probability in [0, 1], got {p}"));
            }
        }
        Ok(())
    }
}

/// Counters for what the injector did.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FaultStats {
    /// Packets offered to the injector.
    pub seen: u64,
    /// Packets dropped.
    pub dropped: u64,
    /// Packets with a bit flipped.
    pub corrupted: u64,
    /// Packets truncated.
    pub truncated: u64,
}

/// What happened to a packet.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultAction {
    /// Packet continues (possibly mutated).
    Forwarded,
    /// Packet is gone; the caller must not process it.
    Dropped,
}

/// Stateful fault injector.
#[derive(Debug)]
pub struct FaultInjector {
    config: FaultConfig,
    rng: StdRng,
    stats: FaultStats,
}

impl FaultInjector {
    /// Create an injector; deterministic in `config.seed`.
    ///
    /// # Panics
    ///
    /// Panics when a probability is NaN or outside [0, 1] (see
    /// [`FaultInjector::try_new`] for the non-panicking form).
    pub fn new(config: FaultConfig) -> Self {
        Self::try_new(config).unwrap_or_else(|e| panic!("invalid fault config: {e}"))
    }

    /// Create an injector, rejecting NaN / out-of-range probabilities.
    pub fn try_new(config: FaultConfig) -> Result<Self, String> {
        config.validate()?;
        Ok(FaultInjector {
            rng: StdRng::seed_from_u64(config.seed),
            config,
            stats: FaultStats::default(),
        })
    }

    /// Apply faults to one packet in place.
    pub fn apply(&mut self, packet: &mut Vec<u8>) -> FaultAction {
        self.stats.seen += 1;
        if self.rng.gen::<f64>() < self.config.drop_prob {
            self.stats.dropped += 1;
            return FaultAction::Dropped;
        }
        if !packet.is_empty() && self.rng.gen::<f64>() < self.config.corrupt_prob {
            let idx = self.rng.gen_range(0..packet.len());
            let bit = self.rng.gen_range(0..8u8);
            packet[idx] ^= 1 << bit;
            self.stats.corrupted += 1;
        }
        if packet.len() > 1 && self.rng.gen::<f64>() < self.config.truncate_prob {
            let keep = self.rng.gen_range(1..packet.len());
            packet.truncate(keep);
            self.stats.truncated += 1;
        }
        FaultAction::Forwarded
    }

    /// Counters so far.
    pub fn stats(&self) -> FaultStats {
        self.stats
    }
}

/// Where, within the seal → emit → checkpoint sequence, a *process*
/// fault strikes. Packet damage (above) exercises the input path; these
/// exercise the recovery path — each point leaves a distinct on-disk
/// state the resume logic must reconcile:
///
/// - [`CrashPoint::AfterSeal`]: the classifier advanced in memory but
///   the interval never reached a sink — resume replays it from the
///   previous checkpoint.
/// - [`CrashPoint::AfterSink`]: the interval is durably written but the
///   checkpoint still describes the previous one — resume must truncate
///   the duplicate record before replaying.
/// - [`CrashPoint::MidCheckpointWrite`]: the new snapshot is torn —
///   resume must fall back to the last complete checkpoint, never read
///   a partial one.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CrashPoint {
    /// After an interval seals, before any sink sees it.
    AfterSeal,
    /// After the sinks wrote the interval, before the checkpoint.
    AfterSink,
    /// Midway through writing the checkpoint file.
    MidCheckpointWrite,
}

impl CrashPoint {
    /// Every crash point, for exhaustive harness loops.
    pub const ALL: [CrashPoint; 3] = [
        CrashPoint::AfterSeal,
        CrashPoint::AfterSink,
        CrashPoint::MidCheckpointWrite,
    ];
}

/// A one-shot trigger that simulates a crash at a chosen [`CrashPoint`]
/// on a chosen interval. The pipeline polls it at each point; when it
/// trips, the run aborts exactly as a SIGKILL would at that instruction
/// (no unwinding of already-durable effects).
#[derive(Debug, Clone)]
pub struct CrashSwitch {
    point: CrashPoint,
    at_seal: usize,
    tripped: bool,
}

impl CrashSwitch {
    /// Crash at `point` while sealing interval `at_seal` (0-based).
    pub fn new(point: CrashPoint, at_seal: usize) -> Self {
        CrashSwitch {
            point,
            at_seal,
            tripped: false,
        }
    }

    /// Poll the switch: true exactly once, at the configured point and
    /// interval.
    pub fn should_crash(&mut self, point: CrashPoint, seal_index: usize) -> bool {
        if !self.tripped && point == self.point && seal_index == self.at_seal {
            self.tripped = true;
            true
        } else {
            false
        }
    }

    /// The configured crash point.
    pub fn point(&self) -> CrashPoint {
        self.point
    }

    /// Whether the switch already fired.
    pub fn tripped(&self) -> bool {
        self.tripped
    }
}

/// One route-churn stress scenario, applied to prefixes sampled
/// deterministically from the routing table.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ChurnScenario {
    /// A correlated outage: `count` prefixes are withdrawn in one batch
    /// at `at_unix`, then re-announced (identical attributes) in one
    /// batch `hold_secs` later — the classic session-reset storm.
    WithdrawReannounceStorm {
        /// Unix time of the withdraw batch.
        at_unix: u64,
        /// Number of distinct prefixes to withdraw.
        count: usize,
        /// Seconds the routes stay down.
        hold_secs: u64,
    },
    /// Route flapping: `count` prefixes each cycle withdraw → announce
    /// every `period_secs`, `flaps` times over. With `damped`, the
    /// router suppresses the route after its last withdraw and only
    /// re-announces once a suppression window (8 × `period_secs`) has
    /// passed — the shape RFC 2439 flap damping produces.
    Flap {
        /// Unix time of the first withdraw.
        start_unix: u64,
        /// Number of distinct prefixes that flap.
        count: usize,
        /// Seconds between a withdraw and its re-announce (and between
        /// cycles).
        period_secs: u64,
        /// Number of withdraw/announce cycles.
        flaps: u32,
        /// Whether the final re-announce is damped (delayed by the
        /// suppression window) instead of immediate.
        damped: bool,
    },
}

/// Seeded set of [`ChurnScenario`]s — same config + same table ⇒ the
/// same update stream, byte for byte.
#[derive(Debug, Clone, Default)]
pub struct ChurnConfig {
    /// Master seed; each scenario derives an independent stream.
    pub seed: u64,
    /// Scenarios to superimpose (their batches merge by timestamp).
    pub scenarios: Vec<ChurnScenario>,
}

/// Generate a deterministic timed update stream exercising `config`'s
/// scenarios against prefixes of `table`.
///
/// Prefixes are sampled without replacement per scenario (scenarios may
/// overlap; a withdraw of an already-withdrawn prefix is a no-op at
/// apply time). Events across scenarios landing on the same second
/// coalesce into one batch; batches come out in ascending time order,
/// ready for `eleph_pipeline`'s schedule or `eleph_bgp::dump`'s update
/// stream writer.
pub fn generate_churn(table: &BgpTable, config: &ChurnConfig) -> Vec<UpdateBatch> {
    let entries: Vec<RouteEntry> = table.iter().cloned().collect();
    let mut events: BTreeMap<u64, Vec<RouteUpdate>> = BTreeMap::new();
    let mut push = |at: u64, update: RouteUpdate| events.entry(at).or_default().push(update);
    for (i, scenario) in config.scenarios.iter().enumerate() {
        let mut rng = StdRng::seed_from_u64(mix64(config.seed ^ (i as u64).wrapping_mul(0x9E37)));
        match *scenario {
            ChurnScenario::WithdrawReannounceStorm { at_unix, count, hold_secs } => {
                for e in sample(&entries, count, &mut rng) {
                    push(at_unix, RouteUpdate::Withdraw(e.prefix));
                    push(at_unix + hold_secs, RouteUpdate::Announce(e.clone()));
                }
            }
            ChurnScenario::Flap { start_unix, count, period_secs, flaps, damped } => {
                for e in sample(&entries, count, &mut rng) {
                    for k in 0..u64::from(flaps.max(1)) {
                        let down = start_unix + k * 2 * period_secs;
                        push(down, RouteUpdate::Withdraw(e.prefix));
                        let last = k + 1 == u64::from(flaps.max(1));
                        if last && damped {
                            // Suppressed: the route stays down for the
                            // full damping window before returning.
                            push(down + 8 * period_secs, RouteUpdate::Announce(e.clone()));
                        } else {
                            push(down + period_secs, RouteUpdate::Announce(e.clone()));
                        }
                    }
                }
            }
        }
    }
    events
        .into_iter()
        .map(|(at_unix, updates)| UpdateBatch { at_unix, updates })
        .collect()
}

/// `count` distinct entries chosen by partial Fisher–Yates over the
/// index space (stable in table iteration order, so deterministic).
fn sample<'e>(entries: &'e [RouteEntry], count: usize, rng: &mut StdRng) -> Vec<&'e RouteEntry> {
    let n = entries.len();
    let count = count.min(n);
    let mut idx: Vec<usize> = (0..n).collect();
    for i in 0..count {
        let j = rng.gen_range(i..n);
        idx.swap(i, j);
    }
    idx[..count].iter().map(|&i| &entries[i]).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn packet() -> Vec<u8> {
        (0u8..64).collect()
    }

    #[test]
    fn no_faults_is_identity() {
        let mut inj = FaultInjector::new(FaultConfig::none());
        for _ in 0..100 {
            let mut p = packet();
            assert_eq!(inj.apply(&mut p), FaultAction::Forwarded);
            assert_eq!(p, packet());
        }
        assert_eq!(
            inj.stats(),
            FaultStats {
                seen: 100,
                ..Default::default()
            }
        );
    }

    #[test]
    fn drop_rate_approximates_probability() {
        let mut inj = FaultInjector::new(FaultConfig {
            drop_prob: 0.3,
            corrupt_prob: 0.0,
            truncate_prob: 0.0,
            seed: 5,
        });
        let mut dropped = 0;
        for _ in 0..10_000 {
            let mut p = packet();
            if inj.apply(&mut p) == FaultAction::Dropped {
                dropped += 1;
            }
        }
        let rate = dropped as f64 / 10_000.0;
        assert!((rate - 0.3).abs() < 0.02, "drop rate {rate}");
        assert_eq!(inj.stats().dropped, dropped);
    }

    #[test]
    fn corruption_flips_exactly_one_bit() {
        let mut inj = FaultInjector::new(FaultConfig {
            drop_prob: 0.0,
            corrupt_prob: 1.0,
            truncate_prob: 0.0,
            seed: 6,
        });
        for _ in 0..100 {
            let mut p = packet();
            assert_eq!(inj.apply(&mut p), FaultAction::Forwarded);
            let diff_bits: u32 = p
                .iter()
                .zip(packet())
                .map(|(a, b)| (a ^ b).count_ones())
                .sum();
            assert_eq!(diff_bits, 1);
        }
        assert_eq!(inj.stats().corrupted, 100);
    }

    #[test]
    fn truncation_shortens_but_never_empties() {
        let mut inj = FaultInjector::new(FaultConfig {
            drop_prob: 0.0,
            corrupt_prob: 0.0,
            truncate_prob: 1.0,
            seed: 7,
        });
        for _ in 0..100 {
            let mut p = packet();
            inj.apply(&mut p);
            assert!(!p.is_empty());
            assert!(p.len() < 64);
        }
        assert_eq!(inj.stats().truncated, 100);
    }

    #[test]
    fn deterministic_in_seed() {
        let run = || {
            let mut inj = FaultInjector::new(FaultConfig {
                drop_prob: 0.2,
                corrupt_prob: 0.2,
                truncate_prob: 0.2,
                seed: 42,
            });
            let mut out = Vec::new();
            for _ in 0..200 {
                let mut p = packet();
                let act = inj.apply(&mut p);
                out.push((act, p));
            }
            (out, inj.stats())
        };
        let (a, sa) = run();
        let (b, sb) = run();
        assert_eq!(a, b);
        assert_eq!(sa, sb);
    }

    #[test]
    fn bad_probabilities_are_rejected() {
        for bad in [f64::NAN, -0.1, 1.5, f64::INFINITY] {
            let config = FaultConfig {
                drop_prob: bad,
                ..FaultConfig::none()
            };
            let err = FaultInjector::try_new(config).unwrap_err();
            assert!(err.contains("drop_prob"), "error names the field: {err}");
        }
        let config = FaultConfig {
            truncate_prob: 2.0,
            ..FaultConfig::none()
        };
        assert!(FaultInjector::try_new(config).unwrap_err().contains("truncate_prob"));
        // Boundary values are legal.
        for p in [0.0, 1.0] {
            let config = FaultConfig {
                drop_prob: p,
                corrupt_prob: p,
                truncate_prob: p,
                ..FaultConfig::none()
            };
            assert!(FaultInjector::try_new(config).is_ok());
        }
    }

    #[test]
    #[should_panic(expected = "invalid fault config")]
    fn new_panics_on_nan() {
        let _ = FaultInjector::new(FaultConfig {
            corrupt_prob: f64::NAN,
            ..FaultConfig::none()
        });
    }

    #[test]
    fn crash_switch_fires_exactly_once() {
        let mut switch = CrashSwitch::new(CrashPoint::AfterSink, 2);
        assert!(!switch.should_crash(CrashPoint::AfterSeal, 2), "wrong point");
        assert!(!switch.should_crash(CrashPoint::AfterSink, 1), "wrong interval");
        assert!(!switch.tripped());
        assert!(switch.should_crash(CrashPoint::AfterSink, 2));
        assert!(switch.tripped());
        assert!(!switch.should_crash(CrashPoint::AfterSink, 2), "one-shot");
    }

    fn churn_table() -> BgpTable {
        use eleph_bgp::{Origin, PeerClass};
        use std::net::Ipv4Addr;
        BgpTable::from_entries((0u8..20).map(|i| RouteEntry {
            prefix: format!("10.{i}.0.0/16").parse().unwrap(),
            next_hop: Ipv4Addr::new(192, 0, 2, i),
            as_path: vec![1239, 700 + u32::from(i)],
            origin: Origin::Igp,
            peer_class: PeerClass::Tier1,
        }))
    }

    #[test]
    fn churn_is_deterministic_and_time_ordered() {
        let table = churn_table();
        let config = ChurnConfig {
            seed: 11,
            scenarios: vec![
                ChurnScenario::WithdrawReannounceStorm { at_unix: 100, count: 5, hold_secs: 30 },
                ChurnScenario::Flap {
                    start_unix: 90,
                    count: 2,
                    period_secs: 15,
                    flaps: 3,
                    damped: false,
                },
            ],
        };
        let a = generate_churn(&table, &config);
        let b = generate_churn(&table, &config);
        assert_eq!(a, b, "same seed must reproduce the stream");
        assert!(a.windows(2).all(|w| w[0].at_unix < w[1].at_unix), "ascending, coalesced");
        let total: usize = a.iter().map(|b| b.updates.len()).sum();
        // Storm: 5 withdraws + 5 announces; flap: 2 × 3 × 2 events.
        assert_eq!(total, 10 + 12);
        // A different seed picks (with high probability) different prefixes.
        let c = generate_churn(&table, &ChurnConfig { seed: 12, ..config.clone() });
        assert_ne!(a, c);
    }

    #[test]
    fn storm_withdraws_then_reannounces_the_same_prefixes() {
        let table = churn_table();
        let config = ChurnConfig {
            seed: 3,
            scenarios: vec![ChurnScenario::WithdrawReannounceStorm {
                at_unix: 50,
                count: 4,
                hold_secs: 10,
            }],
        };
        let batches = generate_churn(&table, &config);
        assert_eq!(batches.len(), 2);
        assert_eq!((batches[0].at_unix, batches[1].at_unix), (50, 60));
        let down: Vec<_> = batches[0]
            .updates
            .iter()
            .map(|u| match u {
                RouteUpdate::Withdraw(p) => *p,
                other => panic!("storm batch 0 must be withdraws, got {other:?}"),
            })
            .collect();
        let up: Vec<_> = batches[1]
            .updates
            .iter()
            .map(|u| match u {
                RouteUpdate::Announce(e) => e.prefix,
                other => panic!("storm batch 1 must be announces, got {other:?}"),
            })
            .collect();
        assert_eq!(down, up, "every withdrawn prefix returns");
        assert_eq!(down.len(), 4);
        // Distinct prefixes: sampling is without replacement.
        let mut uniq = down.clone();
        uniq.sort();
        uniq.dedup();
        assert_eq!(uniq.len(), down.len());
    }

    #[test]
    fn damped_flap_suppresses_final_reannounce() {
        let table = churn_table();
        let config = ChurnConfig {
            seed: 7,
            scenarios: vec![ChurnScenario::Flap {
                start_unix: 1000,
                count: 1,
                period_secs: 10,
                flaps: 2,
                damped: true,
            }],
        };
        let batches = generate_churn(&table, &config);
        let times: Vec<u64> = batches.iter().map(|b| b.at_unix).collect();
        // Cycle 0: down 1000, up 1010. Cycle 1 (last, damped): down
        // 1020, suppressed until 1020 + 8×10 = 1100.
        assert_eq!(times, vec![1000, 1010, 1020, 1100]);
        assert!(matches!(batches[3].updates[0], RouteUpdate::Announce(_)));
    }

    #[test]
    fn churn_applies_cleanly_to_a_live_table() {
        use eleph_bgp::LiveBgpTable;
        let table = churn_table();
        let live = LiveBgpTable::from_table(&table);
        let config = ChurnConfig {
            seed: 21,
            scenarios: vec![
                ChurnScenario::WithdrawReannounceStorm { at_unix: 0, count: 8, hold_secs: 5 },
                ChurnScenario::Flap {
                    start_unix: 2,
                    count: 3,
                    period_secs: 3,
                    flaps: 2,
                    damped: true,
                },
            ],
        };
        for batch in generate_churn(&table, &config) {
            live.apply(&batch.updates);
        }
        // Every scenario re-announces what it withdraws, so the live
        // route count ends where it started.
        assert_eq!(live.len(), table.len());
    }

    #[test]
    fn empty_packet_never_panics() {
        let mut inj = FaultInjector::new(FaultConfig {
            drop_prob: 0.1,
            corrupt_prob: 0.9,
            truncate_prob: 0.9,
            seed: 9,
        });
        for _ in 0..50 {
            let mut p = Vec::new();
            let _ = inj.apply(&mut p);
        }
    }
}
