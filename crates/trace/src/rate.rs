//! Rate-level trace generation: the `B_i(n)` matrix.

use eleph_bgp::BgpTable;
use eleph_stats::dist::{Pareto, Sample};
use rand::Rng;

use crate::flows::{flow_rng, unit_mean_jitter};
use crate::{FlowId, FlowKind, FlowPopulation, WorkloadConfig};

/// A complete rate-level trace: for every interval, the sparse list of
/// active flows and their average bandwidth over that interval.
///
/// This is precisely the input of the paper's methodology — `B_i(n)`, the
/// average bandwidth of flow `i` over interval `n` — generated directly,
/// without materialising packets. [`crate::PacketSynth`] can expand any
/// window of it into packets; an integration test pins the equivalence of
/// the two representations.
#[derive(Debug, Clone)]
pub struct RateTrace {
    /// The workload this trace was generated from.
    pub config: WorkloadConfig,
    /// Static flow metadata (index = [`FlowId`]).
    pub population: FlowPopulation,
    /// Per interval: sorted `(flow, bps)` pairs for every active flow.
    intervals: Vec<Vec<(FlowId, f32)>>,
    /// Per interval: total offered load in b/s.
    totals: Vec<f64>,
}

impl RateTrace {
    /// Generate the trace: a pure function of `(config, table)`.
    ///
    /// Each flow's trajectory is an independent seeded process:
    /// a two-state (on/off) Markov chain whose stationary on-probability
    /// follows the diurnal level, with multiplicative mean-one log-normal
    /// jitter on the rate while on, and Pareto bursts for mice.
    pub fn generate(config: &WorkloadConfig, table: &BgpTable) -> Self {
        let population = FlowPopulation::build(config, table);
        Self::from_population(config, population)
    }

    /// Generate with an existing population (used by sweeps that vary
    /// dynamics but keep the flow mix fixed).
    ///
    /// Every flow's trajectory comes from its own seeded RNG stream
    /// (`flow_rng(seed, id, _)`), so flows are generated in parallel
    /// shards of contiguous id ranges; per-interval rows concatenate in
    /// shard order and per-interval totals are summed over the stored
    /// rates in flow-id order. The output is therefore *identical*
    /// whatever the shard count — still a pure function of
    /// `(config, population)`.
    pub fn from_population(config: &WorkloadConfig, population: FlowPopulation) -> Self {
        let n_int = config.n_intervals;
        let n_flows = population.len();

        // Precompute per-interval diurnal levels.
        let levels: Vec<f64> = (0..n_int).map(|n| config.diurnal_level(n)).collect();

        let burst_dist = Pareto::new(config.burst_min_factor, config.burst_alpha)
            .expect("burst parameters are positive");

        // Below ~a quarter-million flow-intervals the spawn overhead is
        // not worth it; thread count never changes the output.
        let threads = if n_flows.saturating_mul(n_int) < 250_000 {
            1
        } else {
            std::thread::available_parallelism().map_or(1, |n| n.get()).min(16)
        };

        let mut intervals: Vec<Vec<(FlowId, f32)>> = if threads <= 1 {
            generate_flow_range(config, &population, &levels, &burst_dist, 0..n_flows as FlowId)
        } else {
            let chunk = n_flows.div_ceil(threads);
            let mut shards: Vec<Vec<Vec<(FlowId, f32)>>> = std::thread::scope(|s| {
                let population = &population;
                let levels = &levels[..];
                let burst_dist = &burst_dist;
                let handles: Vec<_> = (0..threads)
                    .map(|t| {
                        let lo = (t * chunk).min(n_flows) as FlowId;
                        let hi = ((t + 1) * chunk).min(n_flows) as FlowId;
                        s.spawn(move || {
                            generate_flow_range(config, population, levels, burst_dist, lo..hi)
                        })
                    })
                    .collect();
                handles
                    .into_iter()
                    .map(|h| h.join().expect("flow generation does not panic"))
                    .collect()
            });
            let mut merged = shards.remove(0);
            for shard in shards {
                for (row, mut part) in merged.iter_mut().zip(shard) {
                    row.append(&mut part);
                }
            }
            merged
        };

        // (FlowIds were pushed in ascending order per interval already —
        // shard order is flow-id order — but make the invariant
        // explicit.)
        for v in &mut intervals {
            v.sort_unstable_by_key(|&(id, _)| id);
        }
        let totals: Vec<f64> = intervals
            .iter()
            .map(|row| row.iter().map(|&(_, r)| f64::from(r)).sum())
            .collect();

        RateTrace {
            config: config.clone(),
            population,
            intervals,
            totals,
        }
    }

    /// Number of intervals.
    pub fn n_intervals(&self) -> usize {
        self.intervals.len()
    }

    /// Sparse snapshot of interval `n`: ascending `(flow, bps)` pairs.
    pub fn interval(&self, n: usize) -> &[(FlowId, f32)] {
        &self.intervals[n]
    }

    /// Bandwidth of `flow` in interval `n`, 0.0 when inactive.
    pub fn rate(&self, n: usize, flow: FlowId) -> f64 {
        match self.intervals[n].binary_search_by_key(&flow, |&(id, _)| id) {
            Ok(idx) => f64::from(self.intervals[n][idx].1),
            Err(_) => 0.0,
        }
    }

    /// Total offered load of interval `n` in b/s.
    pub fn total(&self, n: usize) -> f64 {
        self.totals[n]
    }

    /// Link utilization series (fraction of capacity per interval).
    pub fn utilization(&self) -> Vec<f64> {
        self.totals
            .iter()
            .map(|t| t / self.config.link.capacity_bps)
            .collect()
    }

    /// Number of active flows in interval `n`.
    pub fn active_flows(&self, n: usize) -> usize {
        self.intervals[n].len()
    }

    /// The bandwidth snapshot of interval `n` as a plain vector (input to
    /// the threshold detectors).
    pub fn bandwidth_values(&self, n: usize) -> Vec<f64> {
        self.intervals[n].iter().map(|&(_, r)| f64::from(r)).collect()
    }

    /// Full series for one flow (dense, zeros when inactive).
    pub fn flow_series(&self, flow: FlowId) -> Vec<f64> {
        (0..self.n_intervals()).map(|n| self.rate(n, flow)).collect()
    }
}

/// Generate the trajectories of one contiguous flow-id range: the
/// per-shard body of [`RateTrace::from_population`]. Returns the
/// range's per-interval `(flow, bps)` rows, ascending by flow id.
fn generate_flow_range(
    config: &WorkloadConfig,
    population: &FlowPopulation,
    levels: &[f64],
    burst_dist: &Pareto,
    range: std::ops::Range<FlowId>,
) -> Vec<Vec<(FlowId, f32)>> {
    let n_int = config.n_intervals;
    let mut intervals: Vec<Vec<(FlowId, f32)>> = vec![Vec::new(); n_int];

    // Everything that depends only on (interval, flow kind) is hoisted
    // out of the flow×interval loop — the diurnal rate factor (a powf)
    // and the Markov transition probabilities — computed exactly as the
    // per-flow expressions did, so every flow draws identical values
    // from an identical RNG stream.
    let rate_level: Vec<f64> = levels
        .iter()
        .map(|&d| d.powf(config.diurnal_rate_exponent))
        .collect();
    struct KindPlan {
        p_on0: f64,
        p_off: f64,
        sigma: f64,
        /// Per interval: P[off → on] targeting the stationary π(d).
        p_on_trans: Vec<f64>,
    }
    let plan = |p_on_peak: f64, mean_on: f64, sigma: f64| -> KindPlan {
        let p_off = 1.0 / mean_on; // P[on → off] per interval
        KindPlan {
            p_on0: stationary_on(p_on_peak, levels.first().copied().unwrap_or(0.0)),
            p_off,
            sigma,
            p_on_trans: levels
                .iter()
                .map(|&d| {
                    let pi = stationary_on(p_on_peak, d);
                    if pi < 1.0 {
                        (p_off * pi / (1.0 - pi)).min(1.0)
                    } else {
                        1.0
                    }
                })
                .collect(),
        }
    };
    let heavy_plan = plan(
        config.heavy_on_prob,
        config.heavy_mean_on,
        config.heavy_jitter_sigma,
    );
    let mouse_plan = plan(
        config.mouse_on_prob,
        config.mouse_mean_on,
        config.mouse_jitter_sigma,
    );

    for id in range {
        let meta = population.get(id);
        let mut rng = flow_rng(config.seed, id, 0xA7E5);
        let plan = match meta.kind {
            FlowKind::Heavy => &heavy_plan,
            FlowKind::Mouse => &mouse_plan,
        };
        // A mouse behind a sufficiently specific prefix can burst:
        // transient bursts model a single application flaring up, and
        // traffic to very short prefixes (< /12) is too aggregated for
        // one application to move the whole aggregate — the paper's own
        // observation about /8 networks.
        let can_burst = meta.kind == FlowKind::Mouse && meta.prefix.len() >= 12;

        // Start in the stationary state for interval 0's level.
        let mut on = rng.gen::<f64>() < plan.p_on0;

        for n in 0..n_int {
            // Markov step: target stationary π(d), fixed escape rate.
            on = if on {
                rng.gen::<f64>() >= plan.p_off
            } else {
                rng.gen::<f64>() < plan.p_on_trans[n]
            };
            if !on {
                continue;
            }

            let mut rate = meta.base_rate_bps
                * rate_level[n]
                * unit_mean_jitter(&mut rng, plan.sigma);
            if can_burst && rng.gen::<f64>() < config.burst_prob {
                let factor = burst_dist.sample(&mut rng).min(config.burst_cap_factor);
                rate *= factor;
            }
            // Physical cap: a single flow cannot exceed the line rate.
            rate = rate.min(config.link.capacity_bps);

            intervals[n].push((id, rate as f32));
        }
    }
    intervals
}

/// Stationary on-probability at diurnal level `d`: scaled so flows are
/// least active at night but never fully absent.
fn stationary_on(p_peak: f64, d: f64) -> f64 {
    (p_peak * (0.25 + 0.75 * d)).clamp(0.0, 0.995)
}

#[cfg(test)]
mod tests {
    use super::*;
    use eleph_bgp::synth::{self, SynthConfig};

    fn table() -> BgpTable {
        synth::generate(&SynthConfig {
            n_prefixes: 2_000,
            ..SynthConfig::default()
        })
    }

    fn small_trace(seed: u64) -> RateTrace {
        let config = WorkloadConfig {
            n_flows: 400,
            ..WorkloadConfig::small_test(seed)
        };
        RateTrace::generate(&config, &table())
    }

    #[test]
    fn deterministic_in_seed() {
        let a = small_trace(9);
        let b = small_trace(9);
        for n in 0..a.n_intervals() {
            assert_eq!(a.interval(n), b.interval(n));
        }
        let c = small_trace(10);
        let same = (0..a.n_intervals()).all(|n| a.interval(n) == c.interval(n));
        assert!(!same);
    }

    #[test]
    fn totals_match_snapshots() {
        let t = small_trace(1);
        for n in 0..t.n_intervals() {
            let sum: f64 = t.interval(n).iter().map(|&(_, r)| f64::from(r)).sum();
            assert!((sum - t.total(n)).abs() < 1.0, "interval {n}");
        }
    }

    #[test]
    fn snapshots_sorted_and_unique() {
        let t = small_trace(2);
        for n in 0..t.n_intervals() {
            let ids: Vec<FlowId> = t.interval(n).iter().map(|&(id, _)| id).collect();
            let mut sorted = ids.clone();
            sorted.sort_unstable();
            sorted.dedup();
            assert_eq!(ids, sorted, "interval {n}");
        }
    }

    #[test]
    fn rate_lookup_consistent() {
        let t = small_trace(3);
        let n = t.n_intervals() / 2;
        for &(id, r) in t.interval(n) {
            assert_eq!(t.rate(n, id), f64::from(r));
        }
        // An inactive flow reads as zero.
        let active: std::collections::HashSet<FlowId> =
            t.interval(n).iter().map(|&(id, _)| id).collect();
        if let Some(inactive) = (0..t.population.len() as FlowId).find(|id| !active.contains(id)) {
            assert_eq!(t.rate(n, inactive), 0.0);
        }
    }

    #[test]
    fn utilization_is_sane() {
        let t = small_trace(4);
        let u = t.utilization();
        assert_eq!(u.len(), t.n_intervals());
        // Flat profile at 0.8, target peak 0.5: expect util around
        // 0.5·0.8-ish with slack for stochastics; never pathological.
        let mean = u.iter().sum::<f64>() / u.len() as f64;
        assert!(mean > 0.1 && mean < 1.0, "mean util {mean}");
    }

    #[test]
    fn heavy_flows_dominate_traffic() {
        let t = small_trace(5);
        let heavy: std::collections::HashSet<FlowId> =
            t.population.heavy_ids().into_iter().collect();
        let mut heavy_bytes = 0.0;
        let mut all_bytes = 0.0;
        for n in 0..t.n_intervals() {
            for &(id, r) in t.interval(n) {
                all_bytes += f64::from(r);
                if heavy.contains(&id) {
                    heavy_bytes += f64::from(r);
                }
            }
        }
        let share = heavy_bytes / all_bytes;
        assert!(
            share > 0.4 && share < 0.95,
            "heavy share {share} out of expected band"
        );
    }

    #[test]
    fn flow_series_matches_matrix() {
        let t = small_trace(6);
        let series = t.flow_series(0);
        assert_eq!(series.len(), t.n_intervals());
        for (n, &v) in series.iter().enumerate() {
            assert_eq!(v, t.rate(n, 0));
        }
    }

    #[test]
    fn no_rate_exceeds_capacity() {
        let t = small_trace(7);
        for n in 0..t.n_intervals() {
            for &(_, r) in t.interval(n) {
                assert!(f64::from(r) <= t.config.link.capacity_bps);
            }
        }
    }

    #[test]
    fn heavy_flows_are_persistent_mice_flicker() {
        let t = small_trace(8);
        let heavy = t.population.heavy_ids();
        let mouse: Vec<FlowId> = t
            .population
            .iter()
            .filter(|(_, f)| f.kind == FlowKind::Mouse)
            .map(|(id, _)| id)
            .take(200)
            .collect();
        let active_frac = |ids: &[FlowId]| {
            let mut on = 0usize;
            let mut total = 0usize;
            for &id in ids {
                for n in 0..t.n_intervals() {
                    total += 1;
                    if t.rate(n, id) > 0.0 {
                        on += 1;
                    }
                }
            }
            on as f64 / total as f64
        };
        let hf = active_frac(&heavy);
        let mf = active_frac(&mouse);
        assert!(hf > 0.7, "heavy active fraction {hf}");
        assert!(mf < 0.6, "mouse active fraction {mf}");
        assert!(hf > mf + 0.2, "heavy {hf} vs mouse {mf}");
    }

    #[test]
    fn diurnal_profile_shapes_totals() {
        // Use the west profile on a 24 h horizon covering peak + night.
        // Local time matters: mirror the paper's 09:00 PDT start.
        let config = WorkloadConfig {
            n_flows: 800,
            n_intervals: 288, // 24 h of 5-min slots
            interval_secs: 300,
            profile: crate::DiurnalProfile::west_coast(),
            tz_offset_secs: -7 * 3600,
            ..WorkloadConfig::small_test(11)
        };
        let t = RateTrace::generate(&config, &table());
        // Peak hour (14:00 local = interval 60 from 09:00) vs night
        // (04:00 local = interval 228).
        let around = |c: usize| -> f64 { (c - 3..c + 3).map(|n| t.total(n)).sum::<f64>() / 6.0 };
        let peak = around(60);
        let night = around(228);
        assert!(peak > night * 1.8, "peak {peak} night {night}");
    }
}
