//! Time-of-day modulation profiles.

/// One Gaussian bump in a diurnal profile.
#[derive(Debug, Clone, Copy)]
pub struct GaussianPeak {
    /// Centre of the bump, in local hours [0, 24).
    pub center_h: f64,
    /// Width (standard deviation) in hours.
    pub width_h: f64,
    /// Height added at the centre.
    pub height: f64,
}

/// A diurnal utilization profile: a base load plus Gaussian bumps,
/// evaluated on the local time of day with wrap-around at midnight.
///
/// The two links of the paper differ exactly here (§III): the west-coast
/// link "experiences a high burst in its utilization during the working
/// hours" while the east-coast link "exhibits smoother utilization levels
/// during the day" — reproduced by [`DiurnalProfile::west_coast`] and
/// [`DiurnalProfile::east_coast`].
#[derive(Debug, Clone)]
pub struct DiurnalProfile {
    /// Load floor (night-time), in [0, 1].
    pub base: f64,
    /// Bumps added on top of the base.
    pub peaks: Vec<GaussianPeak>,
}

impl DiurnalProfile {
    /// Flat profile (no diurnal variation), useful in unit tests.
    pub fn flat(level: f64) -> Self {
        DiurnalProfile {
            base: level,
            peaks: Vec::new(),
        }
    }

    /// The bursty west-coast OC-12 profile: low nights, a strong
    /// working-hours hump peaking mid-afternoon.
    pub fn west_coast() -> Self {
        DiurnalProfile {
            base: 0.30,
            peaks: vec![
                GaussianPeak {
                    center_h: 14.0,
                    width_h: 3.0,
                    height: 0.70,
                },
                // small evening residential shoulder
                GaussianPeak {
                    center_h: 20.5,
                    width_h: 1.8,
                    height: 0.15,
                },
            ],
        }
    }

    /// The smooth east-coast OC-12 profile: higher floor, broad gentle
    /// daytime rise.
    pub fn east_coast() -> Self {
        DiurnalProfile {
            base: 0.52,
            peaks: vec![GaussianPeak {
                center_h: 13.0,
                width_h: 5.5,
                height: 0.38,
            }],
        }
    }

    /// Evaluate the profile at a local time-of-day given in seconds since
    /// local midnight. The result is clamped to [0, 1].
    pub fn eval_seconds(&self, local_secs: u64) -> f64 {
        let h = (local_secs % 86_400) as f64 / 3_600.0;
        self.eval_hours(h)
    }

    /// Evaluate at local hour `h ∈ [0, 24)`, with midnight wrap-around
    /// (a peak at 23:30 also lifts 00:15).
    pub fn eval_hours(&self, h: f64) -> f64 {
        let mut v = self.base;
        for p in &self.peaks {
            // Distance on the 24 h circle.
            let mut d = (h - p.center_h).abs() % 24.0;
            if d > 12.0 {
                d = 24.0 - d;
            }
            v += p.height * (-0.5 * (d / p.width_h).powi(2)).exp();
        }
        v.clamp(0.0, 1.0)
    }

    /// Ratio of the busiest to the quietest hourly level — the
    /// "burstiness" of the profile (west ≫ east).
    pub fn peak_to_trough(&self) -> f64 {
        let mut min = f64::INFINITY;
        let mut max = f64::NEG_INFINITY;
        for i in 0..240 {
            let v = self.eval_hours(i as f64 / 10.0);
            min = min.min(v);
            max = max.max(v);
        }
        if min <= 0.0 {
            f64::INFINITY
        } else {
            max / min
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flat_profile_is_constant() {
        let p = DiurnalProfile::flat(0.4);
        for h in [0.0, 6.0, 12.0, 18.0, 23.9] {
            assert_eq!(p.eval_hours(h), 0.4);
        }
        assert_eq!(p.peak_to_trough(), 1.0);
    }

    #[test]
    fn west_peaks_in_working_hours() {
        let w = DiurnalProfile::west_coast();
        assert!(w.eval_hours(14.0) > 0.9);
        assert!(w.eval_hours(4.0) < 0.45);
        assert!(w.eval_hours(14.0) > w.eval_hours(9.0));
    }

    #[test]
    fn east_is_smoother_than_west() {
        let w = DiurnalProfile::west_coast();
        let e = DiurnalProfile::east_coast();
        assert!(
            w.peak_to_trough() > e.peak_to_trough() * 1.3,
            "west {} vs east {}",
            w.peak_to_trough(),
            e.peak_to_trough()
        );
    }

    #[test]
    fn output_clamped_to_unit_interval() {
        let p = DiurnalProfile {
            base: 0.9,
            peaks: vec![GaussianPeak {
                center_h: 12.0,
                width_h: 2.0,
                height: 5.0,
            }],
        };
        for i in 0..48 {
            let v = p.eval_hours(i as f64 / 2.0);
            assert!((0.0..=1.0).contains(&v));
        }
    }

    #[test]
    fn midnight_wraparound() {
        let p = DiurnalProfile {
            base: 0.1,
            peaks: vec![GaussianPeak {
                center_h: 23.5,
                width_h: 1.0,
                height: 0.5,
            }],
        };
        // 00:30 is one hour from the 23:30 peak across midnight.
        let across = p.eval_hours(0.5);
        let same_side = p.eval_hours(22.5);
        assert!((across - same_side).abs() < 1e-9);
        assert!(across > p.eval_hours(12.0));
    }

    #[test]
    fn seconds_and_hours_agree() {
        let p = DiurnalProfile::west_coast();
        assert!((p.eval_seconds(14 * 3600) - p.eval_hours(14.0)).abs() < 1e-12);
        // Day boundaries wrap.
        assert!((p.eval_seconds(86_400 + 3 * 3600) - p.eval_hours(3.0)).abs() < 1e-12);
    }
}
