//! The flow population: which prefixes see traffic, and at what base rate.

use std::net::Ipv4Addr;

use eleph_bgp::{BgpTable, PeerClass};
use eleph_net::Prefix;
use eleph_stats::dist::{LogNormal, Pareto, Sample};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

use crate::{mix64, WorkloadConfig};

/// Index of a flow within a [`FlowPopulation`]. Flow = BGP prefix, per
/// the paper's granularity choice.
pub type FlowId = u32;

/// Rate class of a flow.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FlowKind {
    /// Pareto-tailed base rate, long on-periods: a *potential* elephant
    /// (whether it is classified as one is the algorithm's job).
    Heavy,
    /// Log-normal base rate, flickering activity, occasional bursts.
    Mouse,
}

/// Static per-flow metadata.
#[derive(Debug, Clone)]
pub struct FlowMeta {
    /// The destination prefix this flow aggregates to.
    pub prefix: Prefix,
    /// Peer class of the route (paper §III: elephants are mostly Tier-1).
    pub peer_class: PeerClass,
    /// Rate class.
    pub kind: FlowKind,
    /// Calibrated base rate in b/s at diurnal level 1 when active.
    pub base_rate_bps: f64,
    /// A destination address inside the prefix that longest-matches it,
    /// cached for packet synthesis. The population builder only admits
    /// prefixes for which such an address exists, so this is always
    /// `Some` for generated populations.
    pub dst_addr: Option<Ipv4Addr>,
}

/// The set of flows a workload generates traffic for.
#[derive(Debug, Clone)]
pub struct FlowPopulation {
    flows: Vec<FlowMeta>,
}

impl FlowPopulation {
    /// Sample the population from a routing table, deterministic in the
    /// config seed.
    ///
    /// Respecting the paper's §III observations:
    /// * heavy flows are drawn from prefixes of length /12–/26, except
    ///   that (like the paper's "three /8 elephants") a handful of very
    ///   short prefixes are promoted;
    /// * heavy flows prefer Tier-1 routes;
    /// * base rates are independent of prefix length beyond that ("little
    ///   correlation between the size of a network prefix and its ability
    ///   to act as an elephant").
    ///
    /// # Panics
    ///
    /// Panics if `table` holds fewer routes than `config.n_flows`.
    pub fn build(config: &WorkloadConfig, table: &BgpTable) -> Self {
        assert!(
            table.len() >= config.n_flows,
            "table has {} routes, need {}",
            table.len(),
            config.n_flows
        );
        let mut rng = StdRng::seed_from_u64(mix64(config.seed ^ 0xF10_0D));

        // Choose which routes become flows. Prefixes fully shadowed by
        // more-specifics are skipped: packet synthesis could never emit
        // traffic the pipeline would attribute back to them.
        let mut all: Vec<(Prefix, PeerClass)> =
            table.iter().map(|e| (e.prefix, e.peer_class)).collect();
        all.shuffle(&mut rng);
        let mut chosen: Vec<(Prefix, PeerClass)> = Vec::with_capacity(config.n_flows);
        let mut addrs: Vec<Ipv4Addr> = Vec::with_capacity(config.n_flows);
        for &(prefix, class) in &all {
            if chosen.len() == config.n_flows {
                break;
            }
            if let Some(addr) = table.sample_unshadowed_addr(prefix, &mut rng, 32) {
                chosen.push((prefix, class));
                addrs.push(addr);
            }
        }
        assert!(
            chosen.len() == config.n_flows,
            "only {} usable prefixes, need {}",
            chosen.len(),
            config.n_flows
        );
        let chosen = &chosen[..];

        // Heavy candidates: /12../26 (plus up to 3 promoted short
        // prefixes), Tier-1 preferred.
        let n_heavy = ((config.n_flows as f64) * config.heavy_fraction).round() as usize;
        let mut heavy_flags = vec![false; config.n_flows];
        let mut candidates: Vec<usize> = (0..config.n_flows)
            .filter(|&i| {
                let len = chosen[i].0.len();
                (12..=26).contains(&len)
            })
            .collect();
        // Tier-1 routes first, then the rest; stable order keeps
        // determinism.
        candidates.sort_by_key(|&i| match chosen[i].1 {
            PeerClass::Tier1 => 0,
            PeerClass::Tier2 => 1,
            PeerClass::Stub => 2,
        });
        // Take heavy flows from the candidate head with a random nudge so
        // not *only* Tier-1 routes qualify.
        let take = n_heavy.min(candidates.len());
        let pool = (take * 3 / 2).min(candidates.len());
        let mut head: Vec<usize> = candidates[..pool].to_vec();
        head.shuffle(&mut rng);
        for &i in head.iter().take(take) {
            heavy_flags[i] = true;
        }
        // Promote a few short prefixes (the paper's three /8 elephants at
        // full scale); the count scales with the population so miniature
        // test workloads keep the same proportions.
        let n_promotions = (config.n_flows / 13_000).clamp(1, 3);
        let shorts: Vec<usize> = (0..config.n_flows)
            .filter(|&i| chosen[i].0.len() < 12)
            .collect();
        for &i in shorts.iter().take(n_promotions) {
            heavy_flags[i] = true;
        }

        // Base rates.
        let heavy_dist = Pareto::new(config.heavy_rate_floor, config.heavy_alpha)
            .expect("config rates validated by constructor use");
        let mouse_dist = LogNormal::new(config.mouse_log_mean, config.mouse_log_sigma)
            .expect("config rates validated by constructor use");
        let rate_cap = config.link.capacity_bps * 0.05; // no flow above 5% of line rate
        let mut flows: Vec<FlowMeta> = chosen
            .iter()
            .zip(&heavy_flags)
            .zip(&addrs)
            .map(|((&(prefix, peer_class), &heavy), &addr)| {
                let (kind, base) = if heavy {
                    (FlowKind::Heavy, heavy_dist.sample(&mut rng).min(rate_cap))
                } else {
                    (FlowKind::Mouse, mouse_dist.sample(&mut rng).min(rate_cap))
                };
                FlowMeta {
                    prefix,
                    peer_class,
                    kind,
                    base_rate_bps: base,
                    dst_addr: Some(addr),
                }
            })
            .collect();

        // Calibrate: expected total at diurnal level 1 should hit the
        // link's target peak utilization. Jitter is mean-one by
        // construction (see rate.rs), so only activity probabilities
        // enter.
        let expected: f64 = flows
            .iter()
            .map(|f| {
                let p_on = match f.kind {
                    FlowKind::Heavy => config.heavy_on_prob,
                    FlowKind::Mouse => config.mouse_on_prob,
                };
                f.base_rate_bps * p_on
            })
            .sum();
        let target = config.link.capacity_bps * config.link.target_peak_util;
        let scale = if expected > 0.0 { target / expected } else { 1.0 };
        for f in &mut flows {
            f.base_rate_bps *= scale;
        }

        FlowPopulation { flows }
    }

    /// Number of flows.
    pub fn len(&self) -> usize {
        self.flows.len()
    }

    /// Whether the population is empty.
    pub fn is_empty(&self) -> bool {
        self.flows.is_empty()
    }

    /// Metadata for a flow.
    pub fn get(&self, id: FlowId) -> &FlowMeta {
        &self.flows[id as usize]
    }

    /// Iterate over `(FlowId, &FlowMeta)`.
    pub fn iter(&self) -> impl Iterator<Item = (FlowId, &FlowMeta)> {
        self.flows
            .iter()
            .enumerate()
            .map(|(i, f)| (i as FlowId, f))
    }

    /// Ids of all heavy flows.
    pub fn heavy_ids(&self) -> Vec<FlowId> {
        self.iter()
            .filter(|(_, f)| f.kind == FlowKind::Heavy)
            .map(|(id, _)| id)
            .collect()
    }

    /// Find the flow for a prefix, if any (linear scan; test helper).
    pub fn find_by_prefix(&self, prefix: Prefix) -> Option<FlowId> {
        self.iter()
            .find(|(_, f)| f.prefix == prefix)
            .map(|(id, _)| id)
    }
}

/// Per-flow RNG stream: stable regardless of population size or iteration
/// order.
pub(crate) fn flow_rng(seed: u64, flow: FlowId, salt: u64) -> StdRng {
    StdRng::seed_from_u64(mix64(seed ^ mix64(flow as u64 + 1) ^ salt))
}

/// Draw a mean-one log-normal jitter factor: `exp(σZ − σ²/2)`.
pub(crate) fn unit_mean_jitter<R: Rng + ?Sized>(rng: &mut R, sigma: f64) -> f64 {
    (sigma * eleph_stats::dist::standard_normal(rng) - sigma * sigma / 2.0).exp()
}

#[cfg(test)]
mod tests {
    use super::*;
    use eleph_bgp::synth::{self, SynthConfig};

    fn table(n: usize) -> BgpTable {
        synth::generate(&SynthConfig {
            n_prefixes: n,
            ..SynthConfig::default()
        })
    }

    fn config() -> WorkloadConfig {
        WorkloadConfig {
            n_flows: 2_000,
            ..WorkloadConfig::small_test(7)
        }
    }

    #[test]
    fn population_is_deterministic() {
        let t = table(5_000);
        let a = FlowPopulation::build(&config(), &t);
        let b = FlowPopulation::build(&config(), &t);
        assert_eq!(a.len(), b.len());
        for ((_, fa), (_, fb)) in a.iter().zip(b.iter()) {
            assert_eq!(fa.prefix, fb.prefix);
            assert_eq!(fa.base_rate_bps, fb.base_rate_bps);
            assert_eq!(fa.kind, fb.kind);
        }
    }

    #[test]
    fn heavy_fraction_respected() {
        let t = table(5_000);
        let p = FlowPopulation::build(&config(), &t);
        let heavy = p.heavy_ids().len();
        let expect = (2_000.0 * config().heavy_fraction).round() as usize;
        // +3 possible short-prefix promotions
        assert!(
            heavy >= expect && heavy <= expect + 3,
            "heavy {heavy}, expect ~{expect}"
        );
    }

    #[test]
    fn heavy_flows_sit_in_tail_of_rates() {
        let t = table(5_000);
        let p = FlowPopulation::build(&config(), &t);
        let mut heavy_rates: Vec<f64> = Vec::new();
        let mut mouse_rates: Vec<f64> = Vec::new();
        for (_, f) in p.iter() {
            match f.kind {
                FlowKind::Heavy => heavy_rates.push(f.base_rate_bps),
                FlowKind::Mouse => mouse_rates.push(f.base_rate_bps),
            }
        }
        let heavy_mean = heavy_rates.iter().sum::<f64>() / heavy_rates.len() as f64;
        let mouse_mean = mouse_rates.iter().sum::<f64>() / mouse_rates.len() as f64;
        assert!(
            heavy_mean > mouse_mean * 20.0,
            "heavy {heavy_mean} vs mouse {mouse_mean}"
        );
    }

    #[test]
    fn long_heavy_prefixes_only() {
        let t = table(5_000);
        let p = FlowPopulation::build(&config(), &t);
        let mut short_heavy = 0;
        for (_, f) in p.iter() {
            if f.kind == FlowKind::Heavy && f.prefix.len() < 12 {
                short_heavy += 1;
            }
            if f.kind == FlowKind::Heavy && f.prefix.len() >= 12 {
                assert!(f.prefix.len() <= 26, "heavy {} too long", f.prefix);
            }
        }
        assert!(short_heavy <= 3, "{short_heavy} short heavy flows");
    }

    #[test]
    fn calibration_hits_target_peak_load() {
        let c = config();
        let t = table(5_000);
        let p = FlowPopulation::build(&c, &t);
        let expected: f64 = p
            .iter()
            .map(|(_, f)| {
                let p_on = match f.kind {
                    FlowKind::Heavy => c.heavy_on_prob,
                    FlowKind::Mouse => c.mouse_on_prob,
                };
                f.base_rate_bps * p_on
            })
            .sum();
        let target = c.link.capacity_bps * c.link.target_peak_util;
        assert!(
            (expected - target).abs() / target < 1e-9,
            "expected {expected} target {target}"
        );
    }

    #[test]
    fn cached_addresses_attribute_back() {
        let t = table(5_000);
        let p = FlowPopulation::build(&config(), &t);
        let mut checked = 0;
        for (_, f) in p.iter().take(500) {
            if let Some(addr) = f.dst_addr {
                let (got, _) = t.attribute(addr).expect("addr must match");
                assert_eq!(got, f.prefix);
                checked += 1;
            }
        }
        assert!(checked > 400, "only {checked} flows have usable addresses");
    }

    #[test]
    #[should_panic(expected = "need")]
    fn too_small_table_panics() {
        let t = table(100);
        let _ = FlowPopulation::build(&config(), &t);
    }

    #[test]
    fn jitter_is_mean_one() {
        let mut rng = StdRng::seed_from_u64(3);
        let n = 200_000;
        let mean: f64 = (0..n)
            .map(|_| unit_mean_jitter(&mut rng, 0.8))
            .sum::<f64>()
            / n as f64;
        assert!((mean - 1.0).abs() < 0.01, "mean {mean}");
    }
}
