//! Workload configuration and the paper's two link scenarios.

use crate::DiurnalProfile;

/// The monitored link.
#[derive(Debug, Clone)]
pub struct LinkSpec {
    /// Human-readable name used in reports ("west-coast OC-12").
    pub name: String,
    /// Line rate in bits per second. OC-12 POS ≈ 622 Mb/s.
    pub capacity_bps: f64,
    /// Fraction of capacity the *expected* load reaches at the diurnal
    /// peak; the generator scales flow rates to hit this.
    pub target_peak_util: f64,
}

impl LinkSpec {
    /// An OC-12 (622 Mb/s) link with the given name and peak utilization.
    pub fn oc12(name: &str, target_peak_util: f64) -> Self {
        LinkSpec {
            name: name.to_string(),
            capacity_bps: 622_080_000.0,
            target_peak_util,
        }
    }
}

/// Unix timestamp of 2001-07-24 00:00 UTC — the capture day of the paper.
pub const JUL_24_2001_UTC: u64 = 995_932_800;

/// Everything that defines a synthetic workload. The trace is a pure
/// function of this struct (see [`crate::RateTrace::generate`]).
#[derive(Debug, Clone)]
pub struct WorkloadConfig {
    /// Master seed; all randomness derives from it.
    pub seed: u64,
    /// The link being modelled.
    pub link: LinkSpec,
    /// Time-of-day modulation.
    pub profile: DiurnalProfile,
    /// Number of flows (BGP prefixes that see any traffic).
    pub n_flows: usize,
    /// Measurement interval length in seconds (the paper's T; default 300).
    pub interval_secs: u64,
    /// Number of intervals (paper window: 28 h = 336 five-minute slots).
    pub n_intervals: usize,
    /// Unix time of the first interval's start.
    pub start_unix: u64,
    /// Local-time offset from UTC in seconds (PDT = −7 h, EDT = −4 h);
    /// the diurnal profile is evaluated in local time.
    pub tz_offset_secs: i64,

    // --- flow population ------------------------------------------------
    /// Fraction of flows drawn from the heavy (Pareto) rate class.
    pub heavy_fraction: f64,
    /// Pareto tail index of heavy-flow base rates (α < 2 ⇒ heavy tail).
    pub heavy_alpha: f64,
    /// Scale (minimum) of heavy base rates in b/s, before calibration.
    pub heavy_rate_floor: f64,
    /// ln of the median mouse base rate in b/s.
    pub mouse_log_mean: f64,
    /// Log-std of mouse base rates.
    pub mouse_log_sigma: f64,

    // --- temporal dynamics ----------------------------------------------
    /// Mean on-period of heavy flows, in intervals.
    pub heavy_mean_on: f64,
    /// Stationary on-probability of heavy flows at the diurnal peak.
    pub heavy_on_prob: f64,
    /// Mean on-period of mice, in intervals.
    pub mouse_mean_on: f64,
    /// Stationary on-probability of mice at the diurnal peak.
    pub mouse_on_prob: f64,
    /// Log-std of per-interval multiplicative jitter for heavy flows.
    pub heavy_jitter_sigma: f64,
    /// Log-std of per-interval multiplicative jitter for mice.
    pub mouse_jitter_sigma: f64,
    /// Probability an active mouse bursts in a given interval.
    pub burst_prob: f64,
    /// Pareto index of the burst magnitude.
    pub burst_alpha: f64,
    /// Minimum burst multiplier.
    pub burst_min_factor: f64,
    /// Cap on the burst multiplier.
    pub burst_cap_factor: f64,
    /// Exponent linking flow rate to the diurnal level d(t): rate ∝ d^e.
    pub diurnal_rate_exponent: f64,
}

impl WorkloadConfig {
    /// The paper's west-coast link: bursty working-hours profile,
    /// 09:00 PDT 2001-07-24 start, 336 five-minute intervals.
    pub fn paper_west(seed: u64) -> Self {
        WorkloadConfig {
            seed,
            link: LinkSpec::oc12("west-coast OC-12", 0.55),
            profile: DiurnalProfile::west_coast(),
            n_flows: 40_000,
            interval_secs: 300,
            n_intervals: 336,
            // 09:00 PDT = 16:00 UTC
            start_unix: JUL_24_2001_UTC + 16 * 3600,
            tz_offset_secs: -7 * 3600,
            ..Self::base()
        }
    }

    /// The paper's east-coast link: smoother profile, slightly lower
    /// volume (the paper finds ~500 elephants vs ~600 on the west link),
    /// 09:00 EDT start.
    pub fn paper_east(seed: u64) -> Self {
        WorkloadConfig {
            seed: seed ^ 0xEA57,
            link: LinkSpec::oc12("east-coast OC-12", 0.42),
            profile: DiurnalProfile::east_coast(),
            n_flows: 26_000,
            interval_secs: 300,
            n_intervals: 336,
            // 09:00 EDT = 13:00 UTC
            start_unix: JUL_24_2001_UTC + 13 * 3600,
            tz_offset_secs: -4 * 3600,
            // The east link's smoother profile keeps its heavy flows
            // classified more consistently; a smaller heavy population
            // reproduces the paper's ~500 elephants (vs ~600 west).
            heavy_fraction: 0.019,
            ..Self::base()
        }
    }

    /// A small fast configuration for unit tests and examples: a 10 Mb/s
    /// link, 400 flows, 1-minute intervals over two hours. Rate
    /// parameters are scaled down with the link so the heavy/mouse
    /// structure survives the per-flow capacity cap.
    pub fn small_test(seed: u64) -> Self {
        WorkloadConfig {
            seed,
            link: LinkSpec {
                name: "test link".to_string(),
                capacity_bps: 10_000_000.0,
                target_peak_util: 0.5,
            },
            profile: DiurnalProfile::flat(0.8),
            n_flows: 400,
            interval_secs: 60,
            n_intervals: 120,
            start_unix: JUL_24_2001_UTC + 16 * 3600,
            tz_offset_secs: 0,
            heavy_rate_floor: 50_000.0,
            mouse_log_mean: (1_000f64).ln(),
            ..Self::base()
        }
    }

    /// Shared defaults for the flow-population and dynamics knobs.
    fn base() -> Self {
        WorkloadConfig {
            seed: 0,
            link: LinkSpec::oc12("unnamed", 0.5),
            profile: DiurnalProfile::flat(1.0),
            n_flows: 1_000,
            interval_secs: 300,
            n_intervals: 12,
            start_unix: JUL_24_2001_UTC,
            tz_offset_secs: 0,
            heavy_fraction: 0.025,
            heavy_alpha: 1.25,
            heavy_rate_floor: 400_000.0,
            mouse_log_mean: (15_000f64).ln(),
            mouse_log_sigma: 1.3,
            heavy_mean_on: 60.0,
            heavy_on_prob: 0.92,
            mouse_mean_on: 3.0,
            mouse_on_prob: 0.45,
            heavy_jitter_sigma: 0.24,
            mouse_jitter_sigma: 0.85,
            burst_prob: 0.006,
            burst_alpha: 1.4,
            burst_min_factor: 20.0,
            burst_cap_factor: 600.0,
            diurnal_rate_exponent: 0.7,
        }
    }

    /// Start of interval `n` as a Unix timestamp.
    pub fn interval_start_unix(&self, n: usize) -> u64 {
        self.start_unix + n as u64 * self.interval_secs
    }

    /// Local time-of-day of interval `n`'s midpoint, in seconds since
    /// local midnight — the argument the diurnal profile expects.
    pub fn interval_local_secs(&self, n: usize) -> u64 {
        let mid = self.interval_start_unix(n) + self.interval_secs / 2;
        let local = mid as i64 + self.tz_offset_secs;
        local.rem_euclid(86_400) as u64
    }

    /// Diurnal level for interval `n`.
    pub fn diurnal_level(&self, n: usize) -> f64 {
        self.profile.eval_seconds(self.interval_local_secs(n))
    }

    /// Format the local wall-clock time of interval `n`'s start as HH:MM
    /// (for figure axes).
    pub fn interval_label(&self, n: usize) -> String {
        let local = self.interval_start_unix(n) as i64 + self.tz_offset_secs;
        let secs = local.rem_euclid(86_400);
        format!("{:02}:{:02}", secs / 3600, (secs % 3600) / 60)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_west_starts_at_9am_local() {
        let c = WorkloadConfig::paper_west(1);
        assert_eq!(c.interval_label(0), "09:00");
        assert_eq!(c.interval_label(12), "10:00");
        // 336 intervals later: 13:00 the next day.
        assert_eq!(c.interval_label(336), "13:00");
    }

    #[test]
    fn paper_east_starts_at_9am_local() {
        let c = WorkloadConfig::paper_east(1);
        assert_eq!(c.interval_label(0), "09:00");
    }

    #[test]
    fn diurnal_level_uses_local_time() {
        let c = WorkloadConfig::paper_west(1);
        // Interval 60 = 09:00 + 5 h = 14:00 local: at the west peak.
        let peak = c.diurnal_level(60);
        // Interval 228 = +19 h = 04:00 local: deep night.
        let trough = c.diurnal_level(228);
        assert!(peak > 0.9, "peak {peak}");
        assert!(trough < 0.45, "trough {trough}");
    }

    #[test]
    fn interval_arithmetic() {
        let c = WorkloadConfig::small_test(1);
        assert_eq!(c.interval_start_unix(0), c.start_unix);
        assert_eq!(c.interval_start_unix(10), c.start_unix + 600);
        let l = c.interval_local_secs(0);
        assert!(l < 86_400);
    }

    #[test]
    fn oc12_capacity() {
        let l = LinkSpec::oc12("x", 0.5);
        assert!((l.capacity_bps - 622_080_000.0).abs() < 1.0);
    }
}
