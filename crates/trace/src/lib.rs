//! Synthetic backbone traffic — the workload substrate.
//!
//! The paper measures two Sprint OC-12 links for ~28 hours. Those traces
//! are proprietary, so this crate generates a calibrated synthetic
//! equivalent. The classification schemes consume only the per-prefix,
//! per-interval bandwidth series `B_i(n)`; the generator therefore
//! controls exactly the properties those schemes are sensitive to:
//!
//! 1. **Heavy-tailed flow bandwidth** — a small population of "heavy"
//!    flows with Pareto base rates over a log-normal body of mice, so the
//!    per-interval snapshot has the power-law tail the aest detector
//!    expects (and a few flows carry most bytes);
//! 2. **Diurnal shape** — per-link time-of-day modulation
//!    ([`DiurnalProfile`]): the west-coast link shows a pronounced
//!    working-hours burst, the east-coast link a smooth profile
//!    (drives Figure 1(a));
//! 3. **Mice burstiness** — low-rate flows occasionally burst far beyond
//!    their base rate for a single interval (drives the >1000
//!    single-interval elephants of single-feature classification);
//! 4. **Persistence of heavy flows** — long on-periods for heavy flows,
//!    flickering activity for mice (drives the latent-heat holding times).
//!
//! Two fidelities share one model:
//!
//! * [`RateTrace::generate`] — the full-length rate-level trace used by
//!   the figure experiments (fast: no packets);
//! * [`PacketSynth`] — packet-level synthesis of any interval window,
//!   emitting [`eleph_packet::PacketMeta`]-compatible packets (and pcap
//!   files) whose aggregation reproduces the rate-level trace. An
//!   integration test pins that equivalence.
//!
//! A [`FaultInjector`] mutates raw packet streams (drop / corrupt /
//! truncate) for robustness testing, in the spirit of smoltcp's fault
//! injection options, and [`generate_churn`] produces deterministic
//! route announce/withdraw storms and flap-damping scenarios for
//! stressing mid-stream re-attribution.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod config;
mod diurnal;
mod fault;
mod flows;
mod packets;
mod rate;

pub use config::{LinkSpec, WorkloadConfig};
pub use diurnal::{DiurnalProfile, GaussianPeak};
pub use fault::{
    generate_churn, ChurnConfig, ChurnScenario, CrashPoint, CrashSwitch, FaultAction, FaultConfig,
    FaultInjector, FaultStats,
};
pub use flows::{FlowId, FlowKind, FlowMeta, FlowPopulation};
pub use packets::{PacketMix, PacketSynth};
pub use rate::RateTrace;

/// SplitMix64 — used to derive independent per-flow RNG streams from the
/// master seed, so that any flow's series is stable no matter how many
/// other flows exist.
pub(crate) fn mix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

#[cfg(test)]
mod tests {
    use super::mix64;

    #[test]
    fn mix64_spreads_small_inputs() {
        let a = mix64(1);
        let b = mix64(2);
        assert_ne!(a, b);
        // Hamming distance should be substantial for adjacent inputs.
        let d = (a ^ b).count_ones();
        assert!(d > 16, "weak diffusion: {d} differing bits");
    }

    #[test]
    fn mix64_is_deterministic() {
        assert_eq!(mix64(42), mix64(42));
    }
}
