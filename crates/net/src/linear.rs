//! Naive linear-scan LPM table, the correctness oracle for the real tables.

use crate::{Lpm, Prefix};

/// Longest-prefix-match by linear scan over a vector of entries.
///
/// O(n) lookups make this useless in production, but its behaviour is
/// obviously correct, so the property tests compare every other [`Lpm`]
/// implementation against it.
#[derive(Debug, Clone, Default)]
pub struct LinearLpm<V> {
    entries: Vec<(Prefix, V)>,
}

impl<V> LinearLpm<V> {
    /// Create an empty table.
    pub fn new() -> Self {
        LinearLpm { entries: Vec::new() }
    }

    /// Iterate over all entries in insertion order.
    pub fn iter(&self) -> impl Iterator<Item = (Prefix, &V)> {
        self.entries.iter().map(|(p, v)| (*p, v))
    }
}

impl<V> Lpm<V> for LinearLpm<V> {
    fn insert(&mut self, prefix: Prefix, value: V) -> Option<V> {
        for (p, v) in &mut self.entries {
            if *p == prefix {
                return Some(core::mem::replace(v, value));
            }
        }
        self.entries.push((prefix, value));
        None
    }

    fn remove(&mut self, prefix: Prefix) -> Option<V> {
        let idx = self.entries.iter().position(|(p, _)| *p == prefix)?;
        Some(self.entries.swap_remove(idx).1)
    }

    fn get(&self, prefix: Prefix) -> Option<&V> {
        self.entries
            .iter()
            .find(|(p, _)| *p == prefix)
            .map(|(_, v)| v)
    }

    fn lookup(&self, addr: u32) -> Option<(Prefix, &V)> {
        self.entries
            .iter()
            .filter(|(p, _)| p.contains_u32(addr))
            .max_by_key(|(p, _)| p.len())
            .map(|(p, v)| (*p, v))
    }

    fn len(&self) -> usize {
        self.entries.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(s: &str) -> Prefix {
        s.parse().unwrap()
    }

    #[test]
    fn picks_longest_match() {
        let mut t = LinearLpm::new();
        t.insert(p("10.0.0.0/8"), 8);
        t.insert(p("10.1.0.0/16"), 16);
        t.insert(p("0.0.0.0/0"), 0);
        let (pfx, v) = t.lookup_addr("10.1.2.3".parse().unwrap()).unwrap();
        assert_eq!((pfx, *v), (p("10.1.0.0/16"), 16));
        let (pfx, v) = t.lookup_addr("10.2.0.1".parse().unwrap()).unwrap();
        assert_eq!((pfx, *v), (p("10.0.0.0/8"), 8));
        let (pfx, v) = t.lookup_addr("11.0.0.1".parse().unwrap()).unwrap();
        assert_eq!((pfx, *v), (p("0.0.0.0/0"), 0));
    }

    #[test]
    fn insert_replaces_and_returns_old() {
        let mut t = LinearLpm::new();
        assert_eq!(t.insert(p("10.0.0.0/8"), 1), None);
        assert_eq!(t.insert(p("10.0.0.0/8"), 2), Some(1));
        assert_eq!(t.len(), 1);
        assert_eq!(t.get(p("10.0.0.0/8")), Some(&2));
    }

    #[test]
    fn remove_works() {
        let mut t = LinearLpm::new();
        t.insert(p("10.0.0.0/8"), 1);
        assert_eq!(t.remove(p("10.0.0.0/8")), Some(1));
        assert_eq!(t.remove(p("10.0.0.0/8")), None);
        assert!(t.is_empty());
        assert_eq!(t.lookup(0x0a000001), None);
    }

    #[test]
    fn empty_table_misses() {
        let t: LinearLpm<()> = LinearLpm::new();
        assert_eq!(t.lookup(0), None);
        assert!(t.is_empty());
    }
}
