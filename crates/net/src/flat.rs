//! DIR-24-8-style flat-array LPM — the frozen read path.

use std::collections::BTreeMap;
use std::fmt;

use crate::Prefix;

/// Slot encoding for [`FlatLpm`]'s tables.
///
/// `0` = no matching entry. Otherwise, in stage 1, bit 31 set means the
/// low bits index a 256-slot spill block (the covered /24 contains a
/// prefix longer than /24); bit 31 clear means the low bits are
/// `entry_index + 1`. Spill slots use the `entry_index + 1` encoding
/// only.
pub(crate) const EMPTY: u32 = 0;
pub(crate) const SPILL_BIT: u32 = 1 << 31;

/// A read-optimized, frozen longest-prefix-match table in the style of
/// DIR-24-8 (Gupta/Lin/McKeown's "Routing Lookups in Hardware at Memory
/// Access Speeds"), the layout hardware and kernel fast paths use.
///
/// Stage 1 is a direct-indexed array over the top 24 address bits
/// (2²⁴ × 4 B = 64 MiB; an *empty* table instead keeps a single masked
/// slot, so freezing it costs nothing); prefixes longer than /24 spill
/// into per-/24 blocks of 256 slots indexed by the last octet. Every
/// lookup is therefore **O(1) with at most two dependent memory reads**, versus
/// the pointer chase of a trie — on a backbone RIB this is roughly an
/// order of magnitude faster per lookup (see `crates/bench/benches/lpm.rs`).
///
/// The table is *frozen*: built once from any existing [`crate::Lpm`] (or an
/// entry iterator) and immutable afterwards — matching how routers
/// separate the RIB (updated by BGP) from the FIB (optimized for the
/// data plane). Entries are stored densely in RIB-dump order, so
/// [`FlatLpm::lookup_id`] also serves as a perfect `Prefix → dense id`
/// resolver for downstream accounting.
#[derive(Clone)]
pub struct FlatLpm<V> {
    /// Direct index over `(addr >> 8) & stage1_mask`.
    stage1: Vec<u32>,
    /// Index mask for `stage1`: `2²⁴ − 1` for a populated table, `0` for
    /// an empty one (whose stage 1 is a single always-[`EMPTY`] slot).
    /// Masking keeps [`FlatLpm::lookup_id`] branch-free while letting
    /// the empty table skip the 64 MiB stage-1 allocation.
    stage1_mask: usize,
    /// 256-slot blocks for /24s containing longer-than-/24 prefixes.
    spill: Vec<u32>,
    /// Prefixes in ascending (RIB-dump) order; parallel to `values`.
    prefixes: Vec<Prefix>,
    /// Route values, dense, parallel to `prefixes`.
    values: Vec<V>,
}

/// One table resolve against a pre-sliced stage 1 (`stage1.len() ==
/// mask + 1`, so the index's bounds check folds away): the shared body
/// of the batch loops, kept identical to [`FlatLpm::lookup_id`] so both
/// paths optimize the same way.
#[inline(always)]
fn resolve_raw(stage1: &[u32], spill: &[u32], mask: usize, addr: u32) -> u32 {
    let slot = stage1[(addr >> 8) as usize & mask];
    if slot & SPILL_BIT == 0 {
        slot
    } else {
        spill[(((slot & !SPILL_BIT) as usize) << 8) + (addr & 0xFF) as usize]
    }
}

/// [`resolve_raw`] decoded to the public id form.
#[inline(always)]
fn resolve(stage1: &[u32], spill: &[u32], mask: usize, addr: u32) -> Option<u32> {
    let resolved = resolve_raw(stage1, spill, mask, addr);
    if resolved == EMPTY {
        None
    } else {
        Some(resolved - 1)
    }
}

/// Number of stage-1 loads issued ahead of the resolving pass in
/// [`FlatLpm::lookup_many_raw`] when the `prefetch` feature is enabled.
#[cfg(feature = "prefetch")]
const PREFETCH_DISTANCE: usize = 8;

/// From batch position `i`, request the stage-1 line
/// [`PREFETCH_DISTANCE`] lanes ahead; a no-op (and dead `i`) without
/// the `prefetch` feature, so the batch loops stay single-bodied.
#[cfg(feature = "prefetch")]
#[inline(always)]
fn prefetch_ahead(stage1: &[u32], mask: usize, addrs: &[u32], i: usize) {
    if let Some(&ahead) = addrs.get(i + PREFETCH_DISTANCE) {
        prefetch_read(&raw const stage1[(ahead >> 8) as usize & mask]);
    }
}

#[cfg(not(feature = "prefetch"))]
#[inline(always)]
fn prefetch_ahead(_stage1: &[u32], _mask: usize, _addrs: &[u32], _i: usize) {}

/// Request a best-effort cache load of `*ptr` without blocking.
///
/// Only compiled under the `prefetch` feature; the instruction never
/// faults, so the pointer may dangle (e.g. one-past-the-end). On
/// architectures without a stable prefetch intrinsic this is a no-op
/// and the hardware prefetchers are left to it.
#[cfg(feature = "prefetch")]
#[inline(always)]
#[allow(unsafe_code)]
fn prefetch_read(ptr: *const u32) {
    #[cfg(target_arch = "x86_64")]
    // SAFETY: prefetch is a hint; it performs no dereference the memory
    // model can observe and is architecturally defined never to fault.
    unsafe {
        core::arch::x86_64::_mm_prefetch(ptr as *const i8, core::arch::x86_64::_MM_HINT_T0);
    }
    #[cfg(not(target_arch = "x86_64"))]
    let _ = ptr;
}

impl<V> FlatLpm<V> {
    /// Build from `(prefix, value)` entries. A later duplicate prefix
    /// replaces the earlier one, matching repeated [`crate::Lpm::insert`].
    pub fn from_entries<I>(entries: I) -> Self
    where
        I: IntoIterator<Item = (Prefix, V)>,
    {
        // Deduplicate (last wins) and fix the dense id order to the
        // prefix sort order — the conventional RIB dump order.
        let dedup: BTreeMap<Prefix, V> = entries.into_iter().collect();
        let mut prefixes = Vec::with_capacity(dedup.len());
        let mut values = Vec::with_capacity(dedup.len());
        for (p, v) in dedup {
            prefixes.push(p);
            values.push(v);
        }

        // An empty table gets a single permanently-EMPTY stage-1 slot
        // (reached through `stage1_mask == 0`) instead of the 64 MiB
        // array: freezing empty tables is common in tests and start-up
        // paths and must stay cheap.
        if prefixes.is_empty() {
            return FlatLpm {
                stage1: vec![EMPTY; 1],
                stage1_mask: 0,
                spill: Vec::new(),
                prefixes,
                values,
            };
        }

        let mut stage1 = vec![EMPTY; 1 << 24];
        let mut spill: Vec<u32> = Vec::new();

        // Paint in ascending prefix-length order so longer (more
        // specific) prefixes overwrite shorter ones; equal-length
        // prefixes are disjoint, so their paint order is irrelevant.
        let mut by_len: Vec<u32> = (0..prefixes.len() as u32).collect();
        by_len.sort_unstable_by_key(|&i| prefixes[i as usize].len());

        for &id in &by_len {
            let prefix = prefixes[id as usize];
            let encoded = id + 1;
            if prefix.len() <= 24 {
                // All spill blocks are created later (for longer
                // prefixes), so painting stage 1 directly is complete.
                let lo = (prefix.bits() >> 8) as usize;
                let count = 1usize << (24 - prefix.len());
                stage1[lo..lo + count].fill(encoded);
            } else {
                let block = (prefix.bits() >> 8) as usize;
                let base = match stage1[block] {
                    s if s & SPILL_BIT != 0 => ((s & !SPILL_BIT) as usize) << 8,
                    s => {
                        // First long prefix in this /24: open a spill
                        // block inheriting the current shorter match.
                        let base = spill.len();
                        spill.resize(base + 256, s);
                        stage1[block] = SPILL_BIT | (base >> 8) as u32;
                        base
                    }
                };
                let lo = (prefix.bits() & 0xFF) as usize;
                let count = 1usize << (32 - prefix.len());
                spill[base + lo..base + lo + count].fill(encoded);
            }
        }

        FlatLpm {
            stage1,
            stage1_mask: (1 << 24) - 1,
            spill,
            prefixes,
            values,
        }
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.prefixes.len()
    }

    /// Whether the table is empty.
    pub fn is_empty(&self) -> bool {
        self.prefixes.is_empty()
    }

    /// The dense id of the longest prefix containing `addr`, if any.
    ///
    /// Ids are indices into RIB-dump order: `0..len()`, stable for the
    /// lifetime of the table. This is the allocation- and hash-free
    /// attribution primitive the packet hot path uses.
    #[inline]
    pub fn lookup_id(&self, addr: u32) -> Option<u32> {
        let slot = self.stage1[(addr >> 8) as usize & self.stage1_mask];
        let resolved = if slot & SPILL_BIT == 0 {
            slot
        } else {
            let base = ((slot & !SPILL_BIT) as usize) << 8;
            self.spill[base + (addr & 0xFF) as usize]
        };
        if resolved == EMPTY {
            None
        } else {
            Some(resolved - 1)
        }
    }

    /// Batched [`FlatLpm::lookup_id`]: resolve every address in `addrs`
    /// into the matching slot of `out` (`None` = no matching prefix).
    ///
    /// Compared with calling [`FlatLpm::lookup_id`] in a loop, the
    /// batched form keeps the whole resolve loop free of per-call
    /// overhead: the stage-1 bounds check is hoisted out via the masked
    /// re-slice (the compiler proves `index ≤ mask < len`), no lane
    /// consumes another lane's result (so stage-1 cache misses overlap
    /// across the out-of-order window instead of serialising against
    /// surrounding per-packet control flow), and the hit/miss decision
    /// is shared with [`FlatLpm::lookup_id`]. With the `prefetch` cargo
    /// feature each iteration additionally issues an explicit prefetch
    /// for the stage-1 line a few lanes ahead. On a pure lookup
    /// micro-bench the per-address loop is already memory-parallelism
    /// bound and the two tie (`crates/bench/benches/lpm.rs`); embedded
    /// in per-packet work the batch form pulls ahead — see the
    /// `attribution` group of `crates/bench/benches/packets.rs`.
    ///
    /// # Panics
    /// If `addrs` and `out` differ in length.
    pub fn lookup_many(&self, addrs: &[u32], out: &mut [Option<u32>]) {
        assert_eq!(
            addrs.len(),
            out.len(),
            "lookup_many: addrs and out must have equal lengths"
        );
        // `stage1.len() == stage1_mask + 1` by construction; re-slicing
        // here lets the compiler see it, eliding the per-lane bounds
        // check the single-address path pays.
        let mask = self.stage1_mask;
        let stage1 = &self.stage1[..mask + 1];
        for (i, (o, &addr)) in out.iter_mut().zip(addrs).enumerate() {
            prefetch_ahead(stage1, mask, addrs, i);
            *o = resolve(stage1, &self.spill, mask, addr);
        }
    }

    /// The ids-only core of [`FlatLpm::lookup_many`]: writes the dense
    /// id **plus one** per address, with `0` meaning "no match" — the
    /// same encoding the table stores internally, so the inner loops
    /// stay branch-free. Use this form when the caller keeps a reusable
    /// `u32` buffer and wants the cheapest possible batch resolve;
    /// [`FlatLpm::lookup_many`] is the `Option`-decoded convenience.
    ///
    /// # Panics
    /// If `addrs` and `out` differ in length.
    pub fn lookup_many_raw(&self, addrs: &[u32], out: &mut [u32]) {
        assert_eq!(
            addrs.len(),
            out.len(),
            "lookup_many_raw: addrs and out must have equal lengths"
        );
        let mask = self.stage1_mask;
        let stage1 = &self.stage1[..mask + 1];
        // One fused loop with no lane-to-lane dependency: every stage-1
        // load can issue before any earlier lane resolves, so the
        // out-of-order window overlaps the misses; the masked re-slice
        // above elides the per-lane bounds check, and the spill hop is
        // rare and well-predicted. With the `prefetch` feature each
        // iteration additionally requests the stage-1 line
        // [`PREFETCH_DISTANCE`] lanes ahead.
        for (i, (o, &addr)) in out.iter_mut().zip(addrs).enumerate() {
            prefetch_ahead(stage1, mask, addrs, i);
            *o = resolve_raw(stage1, &self.spill, mask, addr);
        }
    }

    /// Longest-prefix match returning the dense id alongside the entry.
    #[inline]
    pub fn lookup_with_id(&self, addr: u32) -> Option<(u32, Prefix, &V)> {
        let id = self.lookup_id(addr)?;
        Some((id, self.prefixes[id as usize], &self.values[id as usize]))
    }

    /// Longest-prefix match for a host-order address.
    #[inline]
    pub fn lookup(&self, addr: u32) -> Option<(Prefix, &V)> {
        let id = self.lookup_id(addr)?;
        Some((self.prefixes[id as usize], &self.values[id as usize]))
    }

    /// Longest-prefix match for an [`std::net::Ipv4Addr`].
    #[inline]
    pub fn lookup_addr(&self, addr: std::net::Ipv4Addr) -> Option<(Prefix, &V)> {
        self.lookup(u32::from(addr))
    }

    /// Exact-match fetch.
    pub fn get(&self, prefix: Prefix) -> Option<&V> {
        let id = self.id_of(prefix)?;
        Some(&self.values[id as usize])
    }

    /// The dense id of exactly `prefix`, if present.
    pub fn id_of(&self, prefix: Prefix) -> Option<u32> {
        self.prefixes.binary_search(&prefix).ok().map(|i| i as u32)
    }

    /// The prefix stored under dense id `id`.
    #[inline]
    pub fn prefix(&self, id: u32) -> Prefix {
        self.prefixes[id as usize]
    }

    /// The value stored under dense id `id`.
    #[inline]
    pub fn value(&self, id: u32) -> &V {
        &self.values[id as usize]
    }

    /// Iterate entries in RIB-dump order (= dense id order).
    pub fn iter(&self) -> impl Iterator<Item = (Prefix, &V)> {
        self.prefixes.iter().copied().zip(self.values.iter())
    }

    /// Bytes of table memory (stage 1 + spill blocks), excluding the
    /// entry arrays — the cache-footprint diagnostic.
    pub fn table_bytes(&self) -> usize {
        (self.stage1.len() + self.spill.len()) * std::mem::size_of::<u32>()
    }

    /// Number of 256-slot spill blocks (/24s containing >/24 prefixes).
    pub fn spill_blocks(&self) -> usize {
        self.spill.len() / 256
    }
}

impl<V: Clone> From<&crate::CompressedTrieLpm<V>> for FlatLpm<V> {
    fn from(table: &crate::CompressedTrieLpm<V>) -> Self {
        Self::from_entries(table.iter().map(|(p, v)| (p, v.clone())))
    }
}

impl<V> FromIterator<(Prefix, V)> for FlatLpm<V> {
    fn from_iter<I: IntoIterator<Item = (Prefix, V)>>(iter: I) -> Self {
        Self::from_entries(iter)
    }
}

// The derived Debug would print 16M stage-1 slots; summarize instead.
impl<V: fmt::Debug> fmt::Debug for FlatLpm<V> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("FlatLpm")
            .field("len", &self.len())
            .field("spill_blocks", &self.spill_blocks())
            .field("table_bytes", &self.table_bytes())
            .finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{CompressedTrieLpm, LinearLpm, Lpm};

    fn p(s: &str) -> Prefix {
        s.parse().unwrap()
    }

    #[test]
    fn basic_longest_match() {
        let t = FlatLpm::from_entries(vec![
            (p("0.0.0.0/0"), "default"),
            (p("10.0.0.0/8"), "eight"),
            (p("10.1.0.0/16"), "sixteen"),
            (p("10.1.2.0/24"), "twentyfour"),
            (p("10.1.2.128/25"), "twentyfive"),
        ]);
        let case = |addr: &str| {
            t.lookup_addr(addr.parse().unwrap())
                .map(|(p, v)| (p.to_string(), *v))
                .unwrap()
        };
        assert_eq!(case("10.1.2.200"), ("10.1.2.128/25".into(), "twentyfive"));
        assert_eq!(case("10.1.2.3"), ("10.1.2.0/24".into(), "twentyfour"));
        assert_eq!(case("10.1.9.3"), ("10.1.0.0/16".into(), "sixteen"));
        assert_eq!(case("10.200.0.1"), ("10.0.0.0/8".into(), "eight"));
        assert_eq!(case("203.0.113.7"), ("0.0.0.0/0".into(), "default"));
    }

    #[test]
    fn empty_table() {
        let t: FlatLpm<u32> = FlatLpm::from_entries(Vec::new());
        assert!(t.is_empty());
        assert_eq!(t.lookup(0), None);
        assert_eq!(t.lookup(u32::MAX), None);
        assert_eq!(t.lookup_id(12345), None);
        assert_eq!(t.spill_blocks(), 0);
    }

    #[test]
    fn empty_table_does_not_allocate_stage1() {
        // Regression: freezing an empty table used to allocate the full
        // 64 MiB stage-1 array.
        let t: FlatLpm<u32> = FlatLpm::from_entries(Vec::new());
        assert!(
            t.table_bytes() < 64,
            "empty table holds {} bytes of lookup tables",
            t.table_bytes()
        );
        // And lookups on the tiny representation stay correct.
        for addr in [0u32, 1, 0x0A01_0203, u32::MAX] {
            assert_eq!(t.lookup_id(addr), None);
            assert_eq!(t.lookup(addr), None);
        }
        let mut out = [Some(7u32); 3];
        t.lookup_many(&[0, 0x0A01_0203, u32::MAX], &mut out);
        assert_eq!(out, [None, None, None]);
    }

    #[test]
    fn populated_table_keeps_full_stage1() {
        let t = FlatLpm::from_entries(vec![(p("10.0.0.0/8"), ())]);
        assert_eq!(t.table_bytes(), (1usize << 24) * 4);
    }

    #[test]
    fn lookup_many_matches_lookup_id() {
        let t = FlatLpm::from_entries(vec![
            (p("0.0.0.0/0"), 0u32),
            (p("10.0.0.0/8"), 1),
            (p("10.1.2.0/24"), 2),
            (p("10.1.2.128/25"), 3),
            (p("203.0.113.64/30"), 4),
        ]);
        let addrs: Vec<u32> = (0..512u32)
            .map(|i| i.wrapping_mul(0x9E37_79B9) ^ 0x0A01_0200)
            .chain([0, u32::MAX, 0x0A01_0280, 0xCB00_7141])
            .collect();
        let mut out = vec![None; addrs.len()];
        t.lookup_many(&addrs, &mut out);
        let mut raw = vec![0u32; addrs.len()];
        t.lookup_many_raw(&addrs, &mut raw);
        for (i, &addr) in addrs.iter().enumerate() {
            let want = t.lookup_id(addr);
            assert_eq!(out[i], want, "addr {addr:#010x}");
            assert_eq!(raw[i], want.map_or(0, |id| id + 1), "raw addr {addr:#010x}");
        }
    }

    #[test]
    fn lookup_many_handles_odd_batch_sizes() {
        let t = FlatLpm::from_entries(vec![(p("10.0.0.0/8"), ())]);
        for n in [0usize, 1, 63, 64, 65, 130] {
            let addrs: Vec<u32> = (0..n as u32).map(|i| 0x0A00_0000 | i).collect();
            let mut out = vec![None; n];
            t.lookup_many(&addrs, &mut out);
            assert!(out.iter().all(|o| *o == Some(0)), "batch of {n}");
        }
    }

    #[test]
    #[should_panic(expected = "equal lengths")]
    fn lookup_many_rejects_mismatched_lengths() {
        let t = FlatLpm::from_entries(vec![(p("10.0.0.0/8"), ())]);
        let mut out = [None; 2];
        t.lookup_many(&[1, 2, 3], &mut out);
    }

    #[test]
    fn default_route_covers_everything() {
        let t = FlatLpm::from_entries(vec![(p("0.0.0.0/0"), 1u32)]);
        for addr in [0u32, 1, 0x0A00_0001, u32::MAX] {
            assert_eq!(t.lookup(addr).map(|(pfx, v)| (pfx, *v)), Some((p("0.0.0.0/0"), 1)));
        }
    }

    #[test]
    fn host_routes_and_spill_inheritance() {
        // A /32 inside a /24 inside a /8: the spill block must inherit
        // the /24 for the other 255 last-octet values.
        let t = FlatLpm::from_entries(vec![
            (p("10.0.0.0/8"), 8u8),
            (p("10.1.2.0/24"), 24),
            (p("10.1.2.77/32"), 32),
        ]);
        assert_eq!(t.spill_blocks(), 1);
        assert_eq!(*t.lookup_addr("10.1.2.77".parse().unwrap()).unwrap().1, 32);
        assert_eq!(*t.lookup_addr("10.1.2.78".parse().unwrap()).unwrap().1, 24);
        assert_eq!(*t.lookup_addr("10.1.3.77".parse().unwrap()).unwrap().1, 8);
    }

    #[test]
    fn long_prefix_without_short_cover() {
        // A lone /30: only its 4 addresses match, nothing else in the
        // /24 does.
        let t = FlatLpm::from_entries(vec![(p("192.0.2.64/30"), ())]);
        assert_eq!(t.spill_blocks(), 1);
        for last in 64..68u32 {
            assert!(t.lookup(0xC000_0200 | last).is_some(), "last octet {last}");
        }
        assert!(t.lookup(0xC000_0200 | 63).is_none());
        assert!(t.lookup(0xC000_0200 | 68).is_none());
        assert!(t.lookup(0xC000_0300).is_none());
    }

    #[test]
    fn nested_long_prefixes_in_one_block() {
        let t = FlatLpm::from_entries(vec![
            (p("10.0.0.0/25"), 25u8),
            (p("10.0.0.0/26"), 26),
            (p("10.0.0.0/28"), 28),
        ]);
        assert_eq!(t.spill_blocks(), 1);
        assert_eq!(*t.lookup(0x0A00_0000).unwrap().1, 28);
        assert_eq!(*t.lookup(0x0A00_0000 + 20).unwrap().1, 26);
        assert_eq!(*t.lookup(0x0A00_0000 + 70).unwrap().1, 25);
        assert_eq!(t.lookup(0x0A00_0000 + 130), None);
    }

    #[test]
    fn duplicate_prefix_last_wins() {
        let t = FlatLpm::from_entries(vec![(p("10.0.0.0/8"), 1u32), (p("10.0.0.0/8"), 2)]);
        assert_eq!(t.len(), 1);
        assert_eq!(t.get(p("10.0.0.0/8")), Some(&2));
    }

    #[test]
    fn get_is_exact_and_ids_are_dump_order() {
        let t = FlatLpm::from_entries(vec![
            (p("10.1.0.0/16"), "b"),
            (p("9.0.0.0/8"), "a"),
            (p("10.1.2.0/24"), "c"),
        ]);
        assert_eq!(t.get(p("9.0.0.0/8")), Some(&"a"));
        assert_eq!(t.get(p("9.0.0.0/9")), None);
        // Dense ids follow RIB-dump (sorted) order.
        assert_eq!(t.id_of(p("9.0.0.0/8")), Some(0));
        assert_eq!(t.id_of(p("10.1.0.0/16")), Some(1));
        assert_eq!(t.id_of(p("10.1.2.0/24")), Some(2));
        assert_eq!(t.prefix(2), p("10.1.2.0/24"));
        assert_eq!(*t.value(0), "a");
        let order: Vec<Prefix> = t.iter().map(|(p, _)| p).collect();
        assert_eq!(order, vec![p("9.0.0.0/8"), p("10.1.0.0/16"), p("10.1.2.0/24")]);
    }

    #[test]
    fn matches_trie_on_a_mixed_table() {
        let entries = vec![
            (p("0.0.0.0/0"), 0u32),
            (p("10.0.0.0/8"), 1),
            (p("10.128.0.0/9"), 2),
            (p("10.1.0.0/16"), 3),
            (p("10.1.2.0/24"), 4),
            (p("10.1.2.0/25"), 5),
            (p("10.1.2.128/26"), 6),
            (p("10.1.2.77/32"), 7),
            (p("203.0.113.0/24"), 8),
        ];
        let mut trie = CompressedTrieLpm::new();
        let mut linear = LinearLpm::new();
        for (pfx, v) in &entries {
            trie.insert(*pfx, *v);
            linear.insert(*pfx, *v);
        }
        let flat = FlatLpm::from(&trie);
        assert_eq!(flat.len(), trie.len());
        // Probe every entry's own range boundaries plus neighbours.
        let mut probes: Vec<u32> = Vec::new();
        for (pfx, _) in &entries {
            probes.push(pfx.bits());
            probes.push(u32::from(pfx.last_addr()));
            probes.push(pfx.bits().wrapping_sub(1));
            probes.push(u32::from(pfx.last_addr()).wrapping_add(1));
        }
        for addr in probes {
            let want = linear.lookup(addr).map(|(p, v)| (p, *v));
            assert_eq!(
                flat.lookup(addr).map(|(p, v)| (p, *v)),
                want,
                "addr {addr:#010x}"
            );
        }
    }

    #[test]
    fn debug_is_compact() {
        let t = FlatLpm::from_entries(vec![(p("10.0.0.0/25"), ())]);
        let s = format!("{t:?}");
        assert!(s.len() < 200, "debug output too verbose: {s}");
        assert!(s.contains("spill_blocks: 1"));
    }
}
