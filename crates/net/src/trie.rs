//! One-bit-per-level binary trie LPM.

use crate::prefix::addr_bit;
use crate::{Lpm, Prefix};

/// A binary trie with one level per prefix bit.
///
/// Simple and fast to mutate; lookups walk at most 32 levels remembering the
/// last node that carried a value. Memory use is higher than the
/// path-compressed variant because chains of single-child nodes are stored
/// explicitly.
#[derive(Debug, Clone)]
pub struct TrieLpm<V> {
    root: Node<V>,
    len: usize,
}

#[derive(Debug, Clone)]
struct Node<V> {
    value: Option<V>,
    children: [Option<Box<Node<V>>>; 2],
}

impl<V> Node<V> {
    fn new() -> Self {
        Node {
            value: None,
            children: [None, None],
        }
    }

    fn is_leaf_without_value(&self) -> bool {
        self.value.is_none() && self.children[0].is_none() && self.children[1].is_none()
    }
}

impl<V> Default for TrieLpm<V> {
    fn default() -> Self {
        Self::new()
    }
}

impl<V> TrieLpm<V> {
    /// Create an empty trie.
    pub fn new() -> Self {
        TrieLpm {
            root: Node::new(),
            len: 0,
        }
    }

    /// Depth-first iteration over all `(prefix, value)` entries in
    /// lexicographic (RIB dump) order.
    pub fn iter(&self) -> Iter<'_, V> {
        Iter {
            stack: vec![(&self.root, 0u32, 0u8)],
        }
    }

    fn remove_rec(node: &mut Node<V>, prefix: &Prefix, depth: u8) -> Option<V> {
        if depth == prefix.len() {
            return node.value.take();
        }
        let idx = prefix.bit(depth) as usize;
        let child = node.children[idx].as_mut()?;
        let removed = Self::remove_rec(child, prefix, depth + 1);
        if child.is_leaf_without_value() {
            node.children[idx] = None;
        }
        removed
    }
}

impl<V> Lpm<V> for TrieLpm<V> {
    fn insert(&mut self, prefix: Prefix, value: V) -> Option<V> {
        let mut node = &mut self.root;
        for depth in 0..prefix.len() {
            let idx = prefix.bit(depth) as usize;
            node = node.children[idx].get_or_insert_with(|| Box::new(Node::new()));
        }
        let old = node.value.replace(value);
        if old.is_none() {
            self.len += 1;
        }
        old
    }

    fn remove(&mut self, prefix: Prefix) -> Option<V> {
        let removed = Self::remove_rec(&mut self.root, &prefix, 0);
        if removed.is_some() {
            self.len -= 1;
        }
        removed
    }

    fn get(&self, prefix: Prefix) -> Option<&V> {
        let mut node = &self.root;
        for depth in 0..prefix.len() {
            let idx = prefix.bit(depth) as usize;
            node = node.children[idx].as_deref()?;
        }
        node.value.as_ref()
    }

    fn lookup(&self, addr: u32) -> Option<(Prefix, &V)> {
        let mut node = &self.root;
        let mut best: Option<(u8, &V)> = node.value.as_ref().map(|v| (0, v));
        for depth in 0..32u8 {
            let idx = addr_bit(addr, depth) as usize;
            match node.children[idx].as_deref() {
                Some(child) => {
                    node = child;
                    if let Some(v) = node.value.as_ref() {
                        best = Some((depth + 1, v));
                    }
                }
                None => break,
            }
        }
        best.map(|(len, v)| {
            (
                Prefix::from_u32(addr, len).expect("len <= 32 by construction"),
                v,
            )
        })
    }

    fn len(&self) -> usize {
        self.len
    }
}

/// Iterator over trie entries; see [`TrieLpm::iter`].
pub struct Iter<'a, V> {
    /// (node, accumulated bits, depth) — pushed right-child-first so the
    /// left (zero) branch pops first, giving lexicographic order.
    stack: Vec<(&'a Node<V>, u32, u8)>,
}

impl<'a, V> Iterator for Iter<'a, V> {
    type Item = (Prefix, &'a V);

    fn next(&mut self) -> Option<Self::Item> {
        while let Some((node, bits, depth)) = self.stack.pop() {
            if let Some(child) = node.children[1].as_deref() {
                let bit = 0x8000_0000u32 >> depth;
                self.stack.push((child, bits | bit, depth + 1));
            }
            if let Some(child) = node.children[0].as_deref() {
                self.stack.push((child, bits, depth + 1));
            }
            if let Some(v) = node.value.as_ref() {
                let prefix = Prefix::from_u32(bits, depth).expect("depth <= 32");
                return Some((prefix, v));
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(s: &str) -> Prefix {
        s.parse().unwrap()
    }

    #[test]
    fn longest_match_beats_shorter() {
        let mut t = TrieLpm::new();
        t.insert(p("0.0.0.0/0"), "default");
        t.insert(p("10.0.0.0/8"), "eight");
        t.insert(p("10.1.0.0/16"), "sixteen");
        t.insert(p("10.1.2.0/24"), "twentyfour");

        let case = |addr: &str| {
            t.lookup_addr(addr.parse().unwrap())
                .map(|(p, v)| (p.to_string(), *v))
                .unwrap()
        };
        assert_eq!(case("10.1.2.3"), ("10.1.2.0/24".into(), "twentyfour"));
        assert_eq!(case("10.1.3.3"), ("10.1.0.0/16".into(), "sixteen"));
        assert_eq!(case("10.9.9.9"), ("10.0.0.0/8".into(), "eight"));
        assert_eq!(case("192.0.2.1"), ("0.0.0.0/0".into(), "default"));
    }

    #[test]
    fn miss_without_default() {
        let mut t = TrieLpm::new();
        t.insert(p("10.0.0.0/8"), 1);
        assert!(t.lookup_addr("11.0.0.1".parse().unwrap()).is_none());
    }

    #[test]
    fn exact_get_ignores_covering_routes() {
        let mut t = TrieLpm::new();
        t.insert(p("10.0.0.0/8"), 1);
        assert_eq!(t.get(p("10.0.0.0/8")), Some(&1));
        assert_eq!(t.get(p("10.1.0.0/16")), None);
        assert_eq!(t.get(p("0.0.0.0/0")), None);
    }

    #[test]
    fn insert_remove_len_bookkeeping() {
        let mut t = TrieLpm::new();
        assert_eq!(t.insert(p("10.0.0.0/8"), 1), None);
        assert_eq!(t.insert(p("10.0.0.0/8"), 2), Some(1));
        assert_eq!(t.len(), 1);
        t.insert(p("10.1.0.0/16"), 3);
        assert_eq!(t.len(), 2);
        assert_eq!(t.remove(p("10.0.0.0/8")), Some(2));
        assert_eq!(t.len(), 1);
        // the /16 under the removed /8 must still resolve
        assert!(t.lookup_addr("10.1.0.1".parse().unwrap()).is_some());
        assert_eq!(t.remove(p("10.0.0.0/8")), None);
    }

    #[test]
    fn remove_prunes_dead_branches() {
        let mut t = TrieLpm::new();
        t.insert(p("10.1.2.0/24"), 1);
        t.remove(p("10.1.2.0/24"));
        // Internal chain should be gone: root must be a bare node again.
        assert!(t.root.is_leaf_without_value());
    }

    #[test]
    fn default_route_matches_everything() {
        let mut t = TrieLpm::new();
        t.insert(Prefix::DEFAULT, 0);
        assert!(t.lookup(0).is_some());
        assert!(t.lookup(u32::MAX).is_some());
    }

    #[test]
    fn iterates_in_rib_order() {
        let mut t = TrieLpm::new();
        for s in ["10.1.0.0/16", "9.0.0.0/8", "10.0.0.0/8", "0.0.0.0/0"] {
            t.insert(p(s), s.to_string());
        }
        let got: Vec<String> = t.iter().map(|(p, _)| p.to_string()).collect();
        assert_eq!(got, vec!["0.0.0.0/0", "9.0.0.0/8", "10.0.0.0/8", "10.1.0.0/16"]);
    }

    #[test]
    fn host_routes_at_depth_32() {
        let mut t = TrieLpm::new();
        t.insert(p("1.2.3.4/32"), "host");
        let (pfx, v) = t.lookup_addr("1.2.3.4".parse().unwrap()).unwrap();
        assert_eq!(pfx, p("1.2.3.4/32"));
        assert_eq!(*v, "host");
        assert!(t.lookup_addr("1.2.3.5".parse().unwrap()).is_none());
    }
}
