//! Path-compressed (radix) trie LPM — the production table.

use crate::prefix::addr_bit;
use crate::{Lpm, Prefix};

/// A path-compressed binary radix trie.
///
/// Unlike [`crate::TrieLpm`], chains of single-child internal nodes are
/// collapsed: every node stores the full prefix it represents, and every
/// *valueless* node has exactly two children. With a backbone-sized table
/// (~10⁵ prefixes) this roughly halves memory and lookup depth, which is
/// why it is the default table used by the flow-aggregation pipeline.
#[derive(Debug, Clone)]
pub struct CompressedTrieLpm<V> {
    root: Option<Box<Node<V>>>,
    len: usize,
}

#[derive(Debug, Clone)]
struct Node<V> {
    /// Full prefix from the root (not a fragment), so a node is
    /// self-describing and lookups never re-assemble bits.
    prefix: Prefix,
    value: Option<V>,
    children: [Option<Box<Node<V>>>; 2],
}

impl<V> Node<V> {
    fn leaf(prefix: Prefix, value: V) -> Box<Self> {
        Box::new(Node {
            prefix,
            value: Some(value),
            children: [None, None],
        })
    }

    fn child_count(&self) -> usize {
        self.children.iter().filter(|c| c.is_some()).count()
    }
}

impl<V> Default for CompressedTrieLpm<V> {
    fn default() -> Self {
        Self::new()
    }
}

impl<V> CompressedTrieLpm<V> {
    /// Create an empty table.
    pub fn new() -> Self {
        CompressedTrieLpm { root: None, len: 0 }
    }

    /// Build a table from an iterator of entries. Later duplicates replace
    /// earlier ones, as with repeated [`Lpm::insert`].
    pub fn from_entries<I>(entries: I) -> Self
    where
        I: IntoIterator<Item = (Prefix, V)>,
    {
        let mut t = Self::new();
        for (p, v) in entries {
            t.insert(p, v);
        }
        t
    }

    /// Depth-first iteration over all `(prefix, value)` entries in
    /// lexicographic (RIB dump) order.
    pub fn iter(&self) -> Iter<'_, V> {
        Iter {
            stack: self.root.as_deref().into_iter().collect(),
        }
    }

    /// Depth of the deepest node — a diagnostic for the compression
    /// benchmarks (bounded by 32, typically far lower).
    pub fn max_depth(&self) -> usize {
        fn depth<V>(node: &Node<V>) -> usize {
            1 + node
                .children
                .iter()
                .flatten()
                .map(|c| depth(c))
                .max()
                .unwrap_or(0)
        }
        self.root.as_deref().map(|n| depth(n)).unwrap_or(0)
    }

    fn insert_rec(slot: &mut Option<Box<Node<V>>>, prefix: Prefix, value: V) -> Option<V> {
        let Some(node) = slot.as_deref_mut() else {
            *slot = Some(Node::leaf(prefix, value));
            return None;
        };
        let cpl = node.prefix.common_prefix_len(&prefix);

        if cpl == node.prefix.len() && cpl == prefix.len() {
            // Same prefix: replace in place.
            return node.value.replace(value);
        }

        if cpl == node.prefix.len() {
            // New prefix extends this node: descend.
            let idx = prefix.bit(cpl) as usize;
            return Self::insert_rec(&mut node.children[idx], prefix, value);
        }

        if cpl == prefix.len() {
            // New prefix covers this node: splice a new parent in.
            let old = slot.take().expect("checked non-empty above");
            let idx = old.prefix.bit(cpl) as usize;
            let mut parent = Node::leaf(prefix, value);
            parent.children[idx] = Some(old);
            *slot = Some(parent);
            return None;
        }

        // Diverge below both: create a valueless branch node.
        let old = slot.take().expect("checked non-empty above");
        let branch_prefix =
            Prefix::from_u32(prefix.bits(), cpl).expect("cpl <= 32 by construction");
        let mut branch = Box::new(Node {
            prefix: branch_prefix,
            value: None,
            children: [None, None],
        });
        let old_idx = old.prefix.bit(cpl) as usize;
        branch.children[old_idx] = Some(old);
        branch.children[1 - old_idx] = Some(Node::leaf(prefix, value));
        *slot = Some(branch);
        None
    }

    fn remove_rec(slot: &mut Option<Box<Node<V>>>, prefix: Prefix) -> Option<V> {
        let node = slot.as_deref_mut()?;
        let removed = if node.prefix == prefix {
            node.value.take()
        } else if node.prefix.contains_prefix(&prefix) && node.prefix.len() < prefix.len() {
            let idx = prefix.bit(node.prefix.len()) as usize;
            Self::remove_rec(&mut node.children[idx], prefix)
        } else {
            None
        };

        // Re-canonicalise: a valueless node may not have fewer than two
        // children after a removal below it.
        if removed.is_some() && node.value.is_none() {
            match node.child_count() {
                0 => {
                    *slot = None;
                }
                1 => {
                    let child = node
                        .children
                        .iter_mut()
                        .find_map(|c| c.take())
                        .expect("child_count == 1");
                    *slot = Some(child);
                }
                _ => {}
            }
        }
        removed
    }
}

impl<V> Lpm<V> for CompressedTrieLpm<V> {
    fn insert(&mut self, prefix: Prefix, value: V) -> Option<V> {
        let old = Self::insert_rec(&mut self.root, prefix, value);
        if old.is_none() {
            self.len += 1;
        }
        old
    }

    fn remove(&mut self, prefix: Prefix) -> Option<V> {
        let removed = Self::remove_rec(&mut self.root, prefix);
        if removed.is_some() {
            self.len -= 1;
        }
        removed
    }

    fn get(&self, prefix: Prefix) -> Option<&V> {
        let mut node = self.root.as_deref()?;
        loop {
            if node.prefix == prefix {
                return node.value.as_ref();
            }
            if !(node.prefix.contains_prefix(&prefix) && node.prefix.len() < prefix.len()) {
                return None;
            }
            let idx = prefix.bit(node.prefix.len()) as usize;
            node = node.children[idx].as_deref()?;
        }
    }

    fn lookup(&self, addr: u32) -> Option<(Prefix, &V)> {
        let mut node = self.root.as_deref()?;
        let mut best: Option<(Prefix, &V)> = None;
        loop {
            if !node.prefix.contains_u32(addr) {
                break;
            }
            if let Some(v) = node.value.as_ref() {
                best = Some((node.prefix, v));
            }
            if node.prefix.len() == 32 {
                break;
            }
            let idx = addr_bit(addr, node.prefix.len()) as usize;
            match node.children[idx].as_deref() {
                Some(child) => node = child,
                None => break,
            }
        }
        best
    }

    fn len(&self) -> usize {
        self.len
    }
}

/// Iterator over table entries; see [`CompressedTrieLpm::iter`].
pub struct Iter<'a, V> {
    stack: Vec<&'a Node<V>>,
}

impl<'a, V> Iterator for Iter<'a, V> {
    type Item = (Prefix, &'a V);

    fn next(&mut self) -> Option<Self::Item> {
        while let Some(node) = self.stack.pop() {
            if let Some(c) = node.children[1].as_deref() {
                self.stack.push(c);
            }
            if let Some(c) = node.children[0].as_deref() {
                self.stack.push(c);
            }
            if let Some(v) = node.value.as_ref() {
                return Some((node.prefix, v));
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(s: &str) -> Prefix {
        s.parse().unwrap()
    }

    #[test]
    fn basic_longest_match() {
        let mut t = CompressedTrieLpm::new();
        t.insert(p("0.0.0.0/0"), "default");
        t.insert(p("10.0.0.0/8"), "eight");
        t.insert(p("10.1.0.0/16"), "sixteen");
        t.insert(p("10.1.2.0/24"), "twentyfour");

        let case = |addr: &str| {
            t.lookup_addr(addr.parse().unwrap())
                .map(|(p, v)| (p.to_string(), *v))
                .unwrap()
        };
        assert_eq!(case("10.1.2.3"), ("10.1.2.0/24".into(), "twentyfour"));
        assert_eq!(case("10.1.9.3"), ("10.1.0.0/16".into(), "sixteen"));
        assert_eq!(case("10.200.0.1"), ("10.0.0.0/8".into(), "eight"));
        assert_eq!(case("203.0.113.7"), ("0.0.0.0/0".into(), "default"));
    }

    #[test]
    fn splice_parent_above_existing() {
        // Insert specific first, then a covering prefix: exercises the
        // "new prefix covers node" branch.
        let mut t = CompressedTrieLpm::new();
        t.insert(p("10.1.2.0/24"), 24);
        t.insert(p("10.0.0.0/8"), 8);
        assert_eq!(t.len(), 2);
        let (pfx, v) = t.lookup_addr("10.1.2.9".parse().unwrap()).unwrap();
        assert_eq!((pfx, *v), (p("10.1.2.0/24"), 24));
        let (pfx, v) = t.lookup_addr("10.7.0.1".parse().unwrap()).unwrap();
        assert_eq!((pfx, *v), (p("10.0.0.0/8"), 8));
    }

    #[test]
    fn divergent_siblings_create_branch() {
        let mut t = CompressedTrieLpm::new();
        t.insert(p("10.1.0.0/16"), "a");
        t.insert(p("10.2.0.0/16"), "b");
        assert_eq!(t.len(), 2);
        // Branch node at 10.0.0.0/14 (first 14 bits shared) carries no value:
        assert!(t.lookup_addr("10.3.0.1".parse().unwrap()).is_none());
        assert_eq!(*t.lookup_addr("10.1.5.5".parse().unwrap()).unwrap().1, "a");
        assert_eq!(*t.lookup_addr("10.2.5.5".parse().unwrap()).unwrap().1, "b");
    }

    #[test]
    fn remove_collapses_branch_nodes() {
        let mut t = CompressedTrieLpm::new();
        t.insert(p("10.1.0.0/16"), "a");
        t.insert(p("10.2.0.0/16"), "b");
        assert_eq!(t.remove(p("10.1.0.0/16")), Some("a"));
        assert_eq!(t.len(), 1);
        // After collapse the remaining node must still resolve, and the
        // tree must be a single node again.
        assert_eq!(*t.lookup_addr("10.2.5.5".parse().unwrap()).unwrap().1, "b");
        assert_eq!(t.max_depth(), 1);
    }

    #[test]
    fn remove_value_keeps_needed_branch() {
        let mut t = CompressedTrieLpm::new();
        t.insert(p("10.0.0.0/8"), 8);
        t.insert(p("10.1.0.0/16"), 16);
        t.insert(p("10.2.0.0/16"), 162);
        assert_eq!(t.remove(p("10.0.0.0/8")), Some(8));
        // The /8 node had two children: it must persist as a valueless branch.
        assert_eq!(t.len(), 2);
        assert_eq!(*t.lookup_addr("10.1.0.1".parse().unwrap()).unwrap().1, 16);
        assert_eq!(*t.lookup_addr("10.2.0.1".parse().unwrap()).unwrap().1, 162);
        assert!(t.lookup_addr("10.3.0.1".parse().unwrap()).is_none());
    }

    #[test]
    fn get_is_exact() {
        let mut t = CompressedTrieLpm::new();
        t.insert(p("10.0.0.0/8"), 1);
        t.insert(p("10.1.0.0/16"), 2);
        assert_eq!(t.get(p("10.0.0.0/8")), Some(&1));
        assert_eq!(t.get(p("10.1.0.0/16")), Some(&2));
        assert_eq!(t.get(p("10.1.0.0/24")), None);
        assert_eq!(t.get(p("10.0.0.0/9")), None);
    }

    #[test]
    fn replace_returns_old_value() {
        let mut t = CompressedTrieLpm::new();
        assert_eq!(t.insert(p("10.0.0.0/8"), 1), None);
        assert_eq!(t.insert(p("10.0.0.0/8"), 2), Some(1));
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn iter_in_rib_order() {
        let mut t = CompressedTrieLpm::new();
        for s in ["10.1.0.0/16", "9.0.0.0/8", "10.0.0.0/8", "0.0.0.0/0", "10.1.2.0/24"] {
            t.insert(p(s), ());
        }
        let got: Vec<String> = t.iter().map(|(p, _)| p.to_string()).collect();
        assert_eq!(
            got,
            vec!["0.0.0.0/0", "9.0.0.0/8", "10.0.0.0/8", "10.1.0.0/16", "10.1.2.0/24"]
        );
    }

    #[test]
    fn from_entries_builds_table() {
        let t = CompressedTrieLpm::from_entries(vec![
            (p("10.0.0.0/8"), 1),
            (p("10.0.0.0/8"), 2), // duplicate replaces
            (p("192.168.0.0/16"), 3),
        ]);
        assert_eq!(t.len(), 2);
        assert_eq!(t.get(p("10.0.0.0/8")), Some(&2));
    }

    #[test]
    fn compression_bounds_depth() {
        // A chain of nested prefixes compresses to one node per entry.
        let mut t = CompressedTrieLpm::new();
        t.insert(p("10.1.2.3/32"), ());
        assert_eq!(t.max_depth(), 1);
        t.insert(p("10.0.0.0/8"), ());
        assert_eq!(t.max_depth(), 2);
    }

    #[test]
    fn empty_behaviour() {
        let t: CompressedTrieLpm<()> = CompressedTrieLpm::new();
        assert!(t.is_empty());
        assert_eq!(t.lookup(0), None);
        assert_eq!(t.iter().count(), 0);
        assert_eq!(t.max_depth(), 0);
    }
}
