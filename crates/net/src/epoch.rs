//! Epoch-swapped, incrementally updatable DIR-24-8 LPM — the live read
//! path.
//!
//! [`crate::FlatLpm`] is frozen by design: any route change costs a full
//! refreeze (~19 ms on a 20k-prefix table, `lpm_build/flat_freeze`)
//! during which no new table can serve lookups. [`EpochLpm`] keeps the
//! exact same two-stage lookup layout — a direct index over the top 24
//! address bits plus 256-slot spill blocks for longer prefixes — but
//! makes it *persistent* in the functional-data-structure sense:
//!
//! * Stage 1 is split into 4096-slot **pages** (16 KiB each), every page
//!   behind an `Arc`. Untouched pages all share one zero page, so an
//!   empty table costs ~48 KiB instead of 64 MiB — the moral equivalent
//!   of `FlatLpm`'s masked single-slot empty representation, except it
//!   upgrades in place on first insert: announcing a route copies-on-write
//!   only the pages its range covers.
//! * A writer applies an announce/withdraw batch by **repainting only the
//!   slot range the changed prefix covers** (one slot for a /24, 256
//!   pages for a /8 — never the whole table), copying-on-write each
//!   touched page, then publishes the new page table as a fresh
//!   [`LpmSnapshot`] under a bumped generation number.
//! * Readers [`EpochLpm::pin`] a snapshot: an `Arc` clone taken under a
//!   briefly-held read lock. Once pinned, `lookup_many` batches run
//!   **wait-free** — they touch only the snapshot's own `Arc`s, which no
//!   writer ever mutates (writers copy; they never write in place).
//!
//! The table stores bare `u32` ids; the caller owns id assignment and
//! the id → value mapping (`eleph_bgp::LiveBgpTable` layers stable
//! `RouteId`s on top). Slot encoding is shared with `FlatLpm`: `0` =
//! miss, bit 31 set = spill-block index, otherwise `id + 1`.
//!
//! Writers are serialized by a mutex; `apply` cost is O(covered slots +
//! contained entries), and the published snapshot shares every page and
//! spill block the batch did not touch. Old pinned snapshots stay valid
//! (and immutable) for as long as the reader holds them — that is the
//! epoch: a generation retires only when its last reader drops it.

use std::collections::BTreeMap;
use std::fmt;
use std::sync::{Arc, Mutex, RwLock};

use crate::flat::{EMPTY, SPILL_BIT};
use crate::{LpmView, Prefix};

/// log2 of the stage-1 page size. 12 → 4096 slots = 16 KiB per page,
/// 4096 pages to cover the 2²⁴ stage-1 slots: small enough that a /24
/// update copies one page, large enough that the page table (4096
/// `Arc`s) clones cheaply per published generation.
const PAGE_BITS: usize = 12;
/// Slots per stage-1 page.
const PAGE_SLOTS: usize = 1 << PAGE_BITS;
/// Intra-page slot mask.
const PAGE_MASK: usize = PAGE_SLOTS - 1;
/// Number of stage-1 pages (`2²⁴ / PAGE_SLOTS`).
const N_PAGES: usize = (1 << 24) / PAGE_SLOTS;

type Page = [u32; PAGE_SLOTS];
type SpillBlock = [u32; 256];

/// One announce or withdraw against an [`EpochLpm`].
///
/// Ids are caller-assigned and opaque to the table; an announce for a
/// prefix already present simply repaints it with the new id (the old
/// id is reported as retired). Ids must stay below `2³¹ − 1` so the
/// encoded form never collides with the spill bit.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LpmDelta {
    /// Insert or replace the entry for `prefix`.
    Announce {
        /// The routed prefix.
        prefix: Prefix,
        /// Caller-assigned id returned by lookups matching `prefix`.
        id: u32,
    },
    /// Remove the entry for exactly `prefix` (a no-op if absent).
    Withdraw {
        /// The prefix to remove.
        prefix: Prefix,
    },
}

/// Result of one [`EpochLpm::apply`] batch.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Applied {
    /// Generation number of the snapshot published for this batch.
    pub generation: u64,
    /// Ids that stopped being reachable: withdrawn entries plus entries
    /// replaced by a re-announce, in batch order. Withdraws of absent
    /// prefixes contribute nothing.
    pub retired: Vec<u32>,
}

/// An immutable published generation of an [`EpochLpm`].
///
/// Obtained from [`EpochLpm::pin`]; lookups against it never block and
/// never observe a later write. Cloning is an `Arc` bump.
pub struct LpmSnapshot {
    pages: Vec<Arc<Page>>,
    spill: Vec<Arc<SpillBlock>>,
    generation: u64,
}

impl LpmSnapshot {
    /// Raw slot resolve: stage-1 page hop, then the optional spill hop.
    /// Same encoding as `FlatLpm` (`0` miss / `id + 1` / spill index).
    #[inline(always)]
    fn resolve_raw(&self, addr: u32) -> u32 {
        let idx = (addr >> 8) as usize;
        let slot = self.pages[idx >> PAGE_BITS][idx & PAGE_MASK];
        if slot & SPILL_BIT == 0 {
            slot
        } else {
            self.spill[(slot & !SPILL_BIT) as usize][(addr & 0xFF) as usize]
        }
    }

    /// Longest-prefix-match id for `addr`, or `None` on miss.
    #[inline]
    pub fn lookup_id(&self, addr: u32) -> Option<u32> {
        let raw = self.resolve_raw(addr);
        if raw == EMPTY {
            None
        } else {
            Some(raw - 1)
        }
    }

    /// Batched longest-prefix match; `out[i]` receives the id for
    /// `addrs[i]`. Wait-free with respect to concurrent writers.
    ///
    /// # Panics
    /// If `out.len() != addrs.len()`.
    pub fn lookup_many(&self, addrs: &[u32], out: &mut [Option<u32>]) {
        assert_eq!(addrs.len(), out.len(), "lookup_many: output length mismatch");
        for (addr, slot) in addrs.iter().zip(out.iter_mut()) {
            *slot = self.lookup_id(*addr);
        }
    }

    /// Batched raw resolve (`0` = miss, else `id + 1`), the mirror of
    /// [`crate::FlatLpm::lookup_many_raw`].
    ///
    /// # Panics
    /// If `out.len() != addrs.len()`.
    pub fn lookup_many_raw(&self, addrs: &[u32], out: &mut [u32]) {
        assert_eq!(addrs.len(), out.len(), "lookup_many_raw: output length mismatch");
        for (addr, slot) in addrs.iter().zip(out.iter_mut()) {
            *slot = self.resolve_raw(*addr);
        }
    }

    /// The generation number this snapshot was published under.
    pub fn generation(&self) -> u64 {
        self.generation
    }
}

impl fmt::Debug for LpmSnapshot {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("LpmSnapshot")
            .field("generation", &self.generation)
            .field("spill_blocks", &self.spill.len())
            .finish_non_exhaustive()
    }
}

impl LpmView<u32> for LpmSnapshot {
    fn lookup_one(&self, addr: u32) -> Option<u32> {
        self.lookup_id(addr)
    }

    fn lookup_batch(&self, addrs: &[u32], out: &mut [Option<u32>]) {
        self.lookup_many(addrs, out);
    }
}

/// Writer-side state: the authoritative prefix → id map plus the
/// current paint. Guarded by [`EpochLpm::writer`]; snapshots are built
/// by cloning the `Arc` vectors.
struct Writer {
    /// Source-of-truth RIB: every live prefix and its current id.
    rib: BTreeMap<Prefix, u32>,
    /// Stage-1 page table; untouched pages alias `zero_page`.
    pages: Vec<Arc<Page>>,
    /// The shared all-[`EMPTY`] page.
    zero_page: Arc<Page>,
    /// Spill blocks for /24s containing longer-than-/24 prefixes.
    /// Indices on `free_spill` hold stale paint and are not referenced
    /// by any current stage-1 slot.
    spill: Vec<Arc<SpillBlock>>,
    /// Spill indices orphaned by withdraws/repaints, reused first.
    free_spill: Vec<u32>,
    /// Generation of the most recently published snapshot.
    generation: u64,
}

impl Writer {
    fn new() -> Self {
        let zero_page: Arc<Page> = Arc::new([EMPTY; PAGE_SLOTS]);
        Writer {
            rib: BTreeMap::new(),
            pages: vec![zero_page.clone(); N_PAGES],
            zero_page,
            spill: Vec::new(),
            free_spill: Vec::new(),
            generation: 0,
        }
    }

    /// Encoded slot value of the longest *strict* ancestor of `covering`
    /// in the RIB ([`EMPTY`] if none) — what uncovered slots in its
    /// range must fall back to.
    fn ancestor_slot(&self, covering: Prefix) -> u32 {
        for len in (0..covering.len()).rev() {
            let anc = Prefix::from_u32(covering.bits(), len).expect("len < 32");
            if let Some(&id) = self.rib.get(&anc) {
                return id + 1;
            }
        }
        EMPTY
    }

    /// Current stage-1 slot value for /24 block `block`.
    fn slot(&self, block: usize) -> u32 {
        self.pages[block >> PAGE_BITS][block & PAGE_MASK]
    }

    /// Overwrite the stage-1 slot for /24 block `block` (copy-on-write).
    fn set_slot(&mut self, block: usize, val: u32) {
        Arc::make_mut(&mut self.pages[block >> PAGE_BITS])[block & PAGE_MASK] = val;
    }

    /// Store `arr` as a spill block, reusing a freed index if one
    /// exists, and return its index.
    fn alloc_spill(&mut self, arr: SpillBlock) -> u32 {
        if let Some(i) = self.free_spill.pop() {
            self.spill[i as usize] = Arc::new(arr);
            i
        } else {
            assert!(
                (self.spill.len() as u32) < SPILL_BIT,
                "spill block index space exhausted"
            );
            self.spill.push(Arc::new(arr));
            (self.spill.len() - 1) as u32
        }
    }

    /// Fill stage-1 slots `[lo, hi]` with `val`, retiring any spill
    /// blocks the overwritten slots referenced. Page-granular: full
    /// pages being cleared re-alias the shared zero page instead of
    /// materializing.
    fn fill_range(&mut self, lo: usize, hi: usize, val: u32) {
        let mut s = lo;
        while s <= hi {
            let page_idx = s >> PAGE_BITS;
            let page_lo = s & PAGE_MASK;
            let page_hi = if hi >> PAGE_BITS == page_idx { hi & PAGE_MASK } else { PAGE_MASK };
            let full = page_lo == 0 && page_hi == PAGE_MASK;
            let already_empty = val == EMPTY && Arc::ptr_eq(&self.pages[page_idx], &self.zero_page);
            if !already_empty {
                let page = &self.pages[page_idx];
                for i in page_lo..=page_hi {
                    let old = page[i];
                    if old & SPILL_BIT != 0 {
                        self.free_spill.push(old & !SPILL_BIT);
                    }
                }
                if full && val == EMPTY {
                    self.pages[page_idx] = self.zero_page.clone();
                } else {
                    let arr = Arc::make_mut(&mut self.pages[page_idx]);
                    for slot in &mut arr[page_lo..=page_hi] {
                        *slot = val;
                    }
                }
            }
            s = (page_idx + 1) << PAGE_BITS;
        }
    }

    /// Recompute every slot covered by `covering` from the RIB. This is
    /// the incremental analogue of `FlatLpm::from_entries` restricted to
    /// one prefix's range: ancestor fallback, then contained entries
    /// painted in ascending prefix-length order, then per-/24 spill
    /// blocks for entries longer than /24.
    fn repaint(&mut self, covering: Prefix) {
        if covering.len() > 24 {
            self.repaint_block((covering.bits() >> 8) as usize);
            return;
        }
        let lo = (covering.bits() >> 8) as usize;
        let hi = (u32::from(covering.last_addr()) >> 8) as usize;
        let base = self.ancestor_slot(covering);
        self.fill_range(lo, hi, base);

        // Entries contained in `covering`: by the (bits, len) ordering
        // every RIB key in [covering, (last_addr, /32)] is contained —
        // a shorter prefix with bits in the range would have to be
        // aligned outside it, and (covering.bits, len < covering.len)
        // sorts before the range start.
        let last = u32::from(covering.last_addr());
        let mut contained: Vec<(Prefix, u32)> = self
            .rib
            .range(covering..)
            .take_while(|(p, _)| p.bits() <= last)
            .map(|(p, &id)| (*p, id))
            .collect();
        debug_assert!(contained.iter().all(|(p, _)| covering.contains_prefix(p)));
        contained.sort_by_key(|(p, _)| p.len());

        for &(p, id) in contained.iter().filter(|(p, _)| p.len() <= 24) {
            let s = (p.bits() >> 8) as usize;
            let e = (u32::from(p.last_addr()) >> 8) as usize;
            self.fill_range(s, e, id + 1);
        }

        // Longer-than-/24 entries, grouped per /24 block; each block's
        // spill is seeded with the block's post-paint stage-1 value.
        let mut longs: Vec<(usize, Prefix, u32)> = contained
            .iter()
            .filter(|(p, _)| p.len() > 24)
            .map(|&(p, id)| ((p.bits() >> 8) as usize, p, id))
            .collect();
        longs.sort_by_key(|&(block, p, _)| (block, p.len(), p.bits()));
        let mut k = 0;
        while k < longs.len() {
            let block = longs[k].0;
            let seed = self.slot(block);
            debug_assert_eq!(seed & SPILL_BIT, 0, "spill freed by fill_range");
            let mut arr = [seed; 256];
            while k < longs.len() && longs[k].0 == block {
                let (_, p, id) = longs[k];
                let s = (p.bits() & 0xFF) as usize;
                let e = (u32::from(p.last_addr()) & 0xFF) as usize;
                for slot in &mut arr[s..=e] {
                    *slot = id + 1;
                }
                k += 1;
            }
            let sb = self.alloc_spill(arr);
            self.set_slot(block, SPILL_BIT | sb);
        }
    }

    /// Recompute the single /24 block containing a longer-than-/24
    /// prefix that changed: reseed from the longest ≤ /24 covering
    /// entry, repaint the block's long entries, drop the spill block if
    /// none remain.
    fn repaint_block(&mut self, block: usize) {
        let start = (block as u32) << 8;
        let mut seed = EMPTY;
        for len in (0..=24).rev() {
            let anc = Prefix::from_u32(start, len).expect("len <= 24");
            if let Some(&id) = self.rib.get(&anc) {
                seed = id + 1;
                break;
            }
        }
        let range_start = Prefix::from_u32(start, 25).expect("valid /25");
        let longs: Vec<(Prefix, u32)> = self
            .rib
            .range(range_start..)
            .take_while(|(p, _)| p.bits() <= start | 0xFF)
            .map(|(p, &id)| (*p, id))
            .collect();
        debug_assert!(longs.iter().all(|(p, _)| p.len() > 24));

        let old = self.slot(block);
        if longs.is_empty() {
            if old & SPILL_BIT != 0 {
                self.free_spill.push(old & !SPILL_BIT);
            }
            self.set_slot(block, seed);
            return;
        }
        let mut arr = [seed; 256];
        let mut by_len = longs;
        by_len.sort_by_key(|(p, _)| p.len());
        for (p, id) in by_len {
            let s = (p.bits() & 0xFF) as usize;
            let e = (u32::from(p.last_addr()) & 0xFF) as usize;
            for slot in &mut arr[s..=e] {
                *slot = id + 1;
            }
        }
        if old & SPILL_BIT != 0 {
            let i = old & !SPILL_BIT;
            self.spill[i as usize] = Arc::new(arr);
            // stage-1 slot already points at `i`
        } else {
            let sb = self.alloc_spill(arr);
            self.set_slot(block, SPILL_BIT | sb);
        }
    }

    fn snapshot(&self) -> Arc<LpmSnapshot> {
        Arc::new(LpmSnapshot {
            pages: self.pages.clone(),
            spill: self.spill.clone(),
            generation: self.generation,
        })
    }
}

/// An incrementally updatable LPM table with epoch-swapped publication.
///
/// See the [module docs](self) for the design. In short: one writer at
/// a time [`EpochLpm::apply`]s announce/withdraw batches (each batch
/// publishes a new generation); any number of readers [`EpochLpm::pin`]
/// the current generation and run wait-free lookups against it.
///
/// ```
/// use eleph_net::{EpochLpm, LpmDelta, Prefix};
///
/// let table = EpochLpm::new();
/// let p: Prefix = "10.0.0.0/8".parse().unwrap();
/// table.apply(&[LpmDelta::Announce { prefix: p, id: 7 }]);
///
/// let snap = table.pin();
/// assert_eq!(snap.lookup_id(0x0A000001), Some(7)); // 10.0.0.1
/// assert_eq!(snap.generation(), 1);
/// ```
pub struct EpochLpm {
    writer: Mutex<Writer>,
    current: RwLock<Arc<LpmSnapshot>>,
}

impl EpochLpm {
    /// An empty table at generation 0. Costs ~48 KiB (one shared zero
    /// page plus the page table), not the 64 MiB of a populated
    /// stage 1; pages materialize copy-on-write as routes are announced.
    pub fn new() -> Self {
        let writer = Writer::new();
        let snap = writer.snapshot();
        EpochLpm { writer: Mutex::new(writer), current: RwLock::new(snap) }
    }

    /// Bulk-build from `(prefix, id)` entries (later duplicates win),
    /// published as generation 0. Equivalent to applying every entry as
    /// an announce but painted in one pass.
    ///
    /// # Panics
    /// If any id is `>= 2³¹ − 1` (the encoding reserves bit 31).
    pub fn from_entries<I>(entries: I) -> Self
    where
        I: IntoIterator<Item = (Prefix, u32)>,
    {
        let mut writer = Writer::new();
        for (prefix, id) in entries {
            assert!(id < SPILL_BIT - 1, "id {id} collides with slot encoding");
            writer.rib.insert(prefix, id);
        }
        writer.repaint(Prefix::DEFAULT);
        let snap = writer.snapshot();
        EpochLpm { writer: Mutex::new(writer), current: RwLock::new(snap) }
    }

    /// Apply a batch of deltas and publish the result as a new
    /// generation (even an empty batch publishes, so callers can use
    /// generations to fence). Writers are serialized; concurrent
    /// readers keep resolving against their pinned snapshots throughout.
    ///
    /// # Panics
    /// If an announced id is `>= 2³¹ − 1`.
    pub fn apply(&self, deltas: &[LpmDelta]) -> Applied {
        let mut w = self.writer.lock().expect("epoch writer poisoned");
        let mut retired = Vec::new();
        for delta in deltas {
            match *delta {
                LpmDelta::Announce { prefix, id } => {
                    assert!(id < SPILL_BIT - 1, "id {id} collides with slot encoding");
                    if let Some(old) = w.rib.insert(prefix, id) {
                        retired.push(old);
                    }
                    w.repaint(prefix);
                }
                LpmDelta::Withdraw { prefix } => {
                    if let Some(old) = w.rib.remove(&prefix) {
                        retired.push(old);
                        w.repaint(prefix);
                    }
                }
            }
        }
        w.generation += 1;
        let snap = w.snapshot();
        *self.current.write().expect("epoch publish lock poisoned") = snap;
        Applied { generation: w.generation, retired }
    }

    /// Pin the current generation: an `Arc` clone under a briefly-held
    /// read lock. All lookups against the returned snapshot are
    /// wait-free and see exactly that generation.
    pub fn pin(&self) -> Arc<LpmSnapshot> {
        self.current.read().expect("epoch publish lock poisoned").clone()
    }

    /// Generation of the most recently published snapshot.
    pub fn generation(&self) -> u64 {
        self.pin().generation
    }

    /// Number of live prefixes.
    pub fn len(&self) -> usize {
        self.writer.lock().expect("epoch writer poisoned").rib.len()
    }

    /// Whether the table has no live prefixes.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The live `(prefix, id)` entries in ascending (RIB-dump) order.
    pub fn entries(&self) -> Vec<(Prefix, u32)> {
        let w = self.writer.lock().expect("epoch writer poisoned");
        w.rib.iter().map(|(p, &id)| (*p, id)).collect()
    }

    /// Approximate resident table memory in bytes: materialized pages,
    /// the page table, and spill blocks. An empty table reports ~48 KiB.
    pub fn table_bytes(&self) -> usize {
        let w = self.writer.lock().expect("epoch writer poisoned");
        let resident = w
            .pages
            .iter()
            .filter(|p| !Arc::ptr_eq(p, &w.zero_page))
            .count();
        (resident + 1) * PAGE_SLOTS * 4
            + w.pages.len() * std::mem::size_of::<Arc<Page>>()
            + w.spill.len() * 256 * 4
    }

    /// `(allocated, free)` spill-block counts — allocation telemetry
    /// for tests and benches.
    pub fn spill_stats(&self) -> (usize, usize) {
        let w = self.writer.lock().expect("epoch writer poisoned");
        (w.spill.len(), w.free_spill.len())
    }
}

impl Default for EpochLpm {
    fn default() -> Self {
        Self::new()
    }
}

impl fmt::Debug for EpochLpm {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let w = self.writer.lock().expect("epoch writer poisoned");
        f.debug_struct("EpochLpm")
            .field("len", &w.rib.len())
            .field("generation", &w.generation)
            .field("spill_blocks", &w.spill.len())
            .finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::FlatLpm;

    fn p(s: &str) -> Prefix {
        s.parse().unwrap()
    }

    fn announce(prefix: &str, id: u32) -> LpmDelta {
        LpmDelta::Announce { prefix: p(prefix), id }
    }

    fn withdraw(prefix: &str) -> LpmDelta {
        LpmDelta::Withdraw { prefix: p(prefix) }
    }

    /// Check the snapshot agrees with a `FlatLpm` frozen from the same
    /// final entries, across every probe address — by *prefix*, since
    /// epoch ids are caller-assigned while flat ids are dump-ordered.
    fn assert_matches_flat(table: &EpochLpm, probes: &[u32]) {
        let entries = table.entries();
        let flat: FlatLpm<u32> = FlatLpm::from_entries(entries.iter().map(|&(p, id)| (p, id)));
        let snap = table.pin();
        let id_to_prefix: std::collections::HashMap<u32, Prefix> =
            entries.iter().map(|&(p, id)| (id, p)).collect();
        for &addr in probes {
            let via_epoch = snap.lookup_id(addr).map(|id| id_to_prefix[&id]);
            let via_flat = flat.lookup_id(addr).map(|id| flat.prefix(id));
            assert_eq!(via_epoch, via_flat, "addr {addr:#010x}");
            // scalar and batch paths agree
            let mut out = [None];
            snap.lookup_many(&[addr], &mut out);
            assert_eq!(out[0], snap.lookup_id(addr));
            let mut raw = [0u32];
            snap.lookup_many_raw(&[addr], &mut raw);
            assert_eq!(raw[0], snap.lookup_id(addr).map_or(0, |id| id + 1));
        }
    }

    fn probes_for(table: &EpochLpm) -> Vec<u32> {
        let mut probes = vec![0, 1, u32::MAX, 0x0A00_0000, 0xC0A8_0101];
        for (pfx, _) in table.entries() {
            let first = pfx.bits();
            let last = u32::from(pfx.last_addr());
            probes.extend([
                first,
                last,
                first.wrapping_sub(1),
                last.wrapping_add(1),
                first.wrapping_add((last - first) / 2),
            ]);
        }
        probes
    }

    #[test]
    fn empty_table_is_tiny_and_upgrades_on_first_insert() {
        let table = EpochLpm::new();
        assert!(table.table_bytes() < 128 * 1024, "empty table must stay small");
        assert_eq!(table.pin().lookup_id(0x0A000001), None);

        let applied = table.apply(&[announce("10.0.0.0/24", 3)]);
        assert_eq!(applied.generation, 1);
        assert!(applied.retired.is_empty());
        let snap = table.pin();
        assert_eq!(snap.lookup_id(0x0A000001), Some(3));
        assert_eq!(snap.lookup_id(0x0A000101), None);
        // one page materialized, not the whole table
        assert!(table.table_bytes() < 256 * 1024);
    }

    #[test]
    fn matches_flat_through_mixed_delta_sequence() {
        let table = EpochLpm::new();
        let batches: &[&[LpmDelta]] = &[
            &[announce("10.0.0.0/8", 0), announce("10.1.0.0/16", 1)],
            &[announce("10.1.2.0/26", 2), announce("10.1.2.64/26", 3)],
            &[announce("10.1.2.0/25", 4), announce("0.0.0.0/0", 5)],
            &[withdraw("10.1.0.0/16")],
            &[announce("10.1.0.0/16", 6)], // re-announce, fresh id
            &[withdraw("10.1.2.0/26"), withdraw("10.0.0.0/8")],
            &[announce("192.168.0.0/12", 7), announce("192.168.1.128/25", 8)],
            &[withdraw("0.0.0.0/0")],
        ];
        for batch in batches {
            table.apply(batch);
            assert_matches_flat(&table, &probes_for(&table));
        }
    }

    #[test]
    fn reannounce_retires_old_id() {
        let table = EpochLpm::new();
        table.apply(&[announce("10.0.0.0/16", 1)]);
        let applied = table.apply(&[announce("10.0.0.0/16", 9)]);
        assert_eq!(applied.retired, vec![1]);
        assert_eq!(table.pin().lookup_id(0x0A000001), Some(9));
        let applied = table.apply(&[withdraw("10.0.0.0/16")]);
        assert_eq!(applied.retired, vec![9]);
        assert_eq!(table.pin().lookup_id(0x0A000001), None);
        // withdrawing an absent prefix is a no-op but still publishes
        let applied = table.apply(&[withdraw("10.0.0.0/16")]);
        assert!(applied.retired.is_empty());
        assert_eq!(applied.generation, 4);
    }

    #[test]
    fn spill_blocks_are_freed_and_reused() {
        let table = EpochLpm::new();
        table.apply(&[announce("10.0.0.128/26", 1)]);
        assert_eq!(table.spill_stats(), (1, 0));
        table.apply(&[withdraw("10.0.0.128/26")]);
        assert_eq!(table.spill_stats(), (1, 1));
        table.apply(&[announce("172.16.5.0/30", 2)]);
        assert_eq!(table.spill_stats(), (1, 0), "freed block reused");
        assert_eq!(table.pin().lookup_id(0x0A000081), None, "stale paint unreachable");
        assert_eq!(table.pin().lookup_id(0xAC100502), Some(2));
    }

    #[test]
    fn covering_withdraw_frees_contained_spill() {
        let table = EpochLpm::new();
        table.apply(&[announce("10.0.0.0/16", 1), announce("10.0.7.0/26", 2)]);
        assert_eq!(table.spill_stats(), (1, 0));
        // repainting the covering /16 rebuilds the /24 block's spill
        table.apply(&[announce("10.0.0.0/16", 3)]);
        let (alloc, free) = table.spill_stats();
        assert_eq!(alloc - free, 1, "exactly one live spill block");
        assert_eq!(table.pin().lookup_id(0x0A000701), Some(2));
        assert_eq!(table.pin().lookup_id(0x0A000741), Some(3), "seed follows new id");
        table.apply(&[withdraw("10.0.7.0/26"), withdraw("10.0.0.0/16")]);
        let (alloc, free) = table.spill_stats();
        assert_eq!(alloc, free, "no live spill blocks remain");
        assert_eq!(table.pin().lookup_id(0x0A000701), None);
    }

    #[test]
    fn pinned_snapshot_is_immutable_across_writes() {
        let table = EpochLpm::new();
        table.apply(&[announce("10.0.0.0/8", 1)]);
        let old = table.pin();
        table.apply(&[announce("10.0.0.0/8", 2), announce("10.9.0.0/16", 3)]);
        assert_eq!(old.lookup_id(0x0A090001), Some(1), "pinned epoch unchanged");
        assert_eq!(old.generation(), 1);
        let new = table.pin();
        assert_eq!(new.lookup_id(0x0A090001), Some(3));
        assert_eq!(new.generation(), 2);
    }

    #[test]
    fn from_entries_matches_incremental_build() {
        let entries = vec![
            (p("10.0.0.0/8"), 0),
            (p("10.1.0.0/16"), 1),
            (p("10.1.2.192/27"), 2),
            (p("0.0.0.0/0"), 3),
            (p("203.0.113.0/24"), 4),
        ];
        let bulk = EpochLpm::from_entries(entries.clone());
        assert_eq!(bulk.generation(), 0);
        let inc = EpochLpm::new();
        for (prefix, id) in entries {
            inc.apply(&[LpmDelta::Announce { prefix, id }]);
        }
        for &addr in &probes_for(&bulk) {
            assert_eq!(bulk.pin().lookup_id(addr), inc.pin().lookup_id(addr));
        }
        assert_matches_flat(&bulk, &probes_for(&bulk));
    }

    #[test]
    fn concurrent_readers_never_observe_torn_state() {
        use std::sync::atomic::{AtomicBool, Ordering};
        use std::sync::Arc as StdArc;

        // Writer flips 10.0.0.0/8 between two ids; readers must only
        // ever see one of them (or the generation-consistent miss
        // before the first announce), never a mix within one batch.
        let table = StdArc::new(EpochLpm::new());
        let stop = StdArc::new(AtomicBool::new(false));
        let addrs: Vec<u32> = (0..256).map(|i| 0x0A000000 + i * 65_537).collect();

        let readers: Vec<_> = (0..3)
            .map(|_| {
                let table = table.clone();
                let stop = stop.clone();
                let addrs = addrs.clone();
                std::thread::spawn(move || {
                    let mut out = vec![None; addrs.len()];
                    let mut seen = 0u64;
                    while !stop.load(Ordering::Relaxed) {
                        let snap = table.pin();
                        snap.lookup_many(&addrs, &mut out);
                        let first = out[0];
                        assert!(
                            out.iter().all(|&r| r == first),
                            "torn read within one pinned generation"
                        );
                        seen += 1;
                    }
                    seen
                })
            })
            .collect();

        for round in 0..200u32 {
            table.apply(&[announce("10.0.0.0/8", round % 2)]);
        }
        stop.store(true, Ordering::Relaxed);
        for r in readers {
            assert!(r.join().unwrap() > 0);
        }
        assert_eq!(table.generation(), 200);
    }
}
