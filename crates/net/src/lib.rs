//! IPv4 addressing and longest-prefix-match (LPM) tables.
//!
//! This crate is the routing substrate of the backbone-elephants
//! reproduction. The paper classifies traffic at the granularity of *BGP
//! destination network prefixes*: every packet is attributed to the longest
//! matching routing-table entry for its destination address. Everything
//! needed for that attribution lives here:
//!
//! * [`Prefix`] — a canonical IPv4 CIDR prefix (`10.0.0.0/8`), with the set
//!   algebra (containment, overlap, parent/children) the rest of the system
//!   builds on;
//! * [`Lpm`] — the longest-prefix-match interface, with four interchangeable
//!   updatable implementations:
//!   [`LinearLpm`] (naive reference used as a test oracle),
//!   [`TrieLpm`] (one-bit-per-level binary trie),
//!   [`CompressedTrieLpm`] (path-compressed radix trie, the updatable
//!   default), and [`PerLengthLpm`] (one hash map per prefix length,
//!   searched longest-first);
//! * [`FlatLpm`] — a frozen, DIR-24-8-style flat-array table built once
//!   from any of the above; the read path of the packet pipeline;
//! * [`PrefixSet`] — an aggregating set of prefixes (used for RIB synthesis
//!   and the prefix-length analysis of the paper's §III).
//!
//! All tables are generic over the attached route value `V`.
//!
//! # Choosing a table backend
//!
//! | backend | build cost | update | lookup cost | memory | use when |
//! |---|---|---|---|---|---|
//! | [`LinearLpm`] | O(1)/insert | yes | O(n) scan | ~n | test oracle only |
//! | [`TrieLpm`] | O(len)/insert | yes | up to 32 node hops | node per bit | didactic baseline |
//! | [`CompressedTrieLpm`] | O(len)/insert | yes | ≤ nesting-depth hops | node per entry | the *updatable* RIB: streaming route churn |
//! | [`PerLengthLpm`] | O(1)/insert | yes | ≤ 33 hash probes | map per length | batch jobs dominated by inserts |
//! | [`FlatLpm`] | O(n + painted range) freeze | **no** (rebuild) | **O(1), ≤ 2 dependent reads** | 64 MiB + 1 KiB per spilled /24 | the *read* path: per-packet attribution at line rate |
//!
//! The intended production shape mirrors a router's RIB/FIB split: keep
//! a [`CompressedTrieLpm`] as the updatable source of truth, and freeze
//! it into a [`FlatLpm`] (`FlatLpm::from(&trie)`) whenever the table
//! changes; serve all lookups from the frozen copy. On a ~100k-prefix
//! backbone table the flat table answers a lookup in a handful of
//! nanoseconds — several times faster than the compressed trie (see
//! `crates/bench/benches/lpm.rs`) — and its dense entry ids double as
//! allocation-free accounting keys (`eleph_bgp::FrozenBgpTable`,
//! `eleph_flow::Aggregator`).
//!
//! ## Single vs batched lookups
//!
//! [`FlatLpm::lookup_id`] is the right call when addresses arrive one
//! at a time (interactive queries, route churn validation). When the
//! caller already holds a *batch* of addresses — the packet pipeline
//! decodes capture records in chunks — use
//! [`FlatLpm::lookup_many`] (or the raw-encoded
//! [`FlatLpm::lookup_many_raw`]): its resolve loop carries no per-call
//! overhead and no lane-to-lane dependency, so the stage-1 cache misses
//! of different addresses overlap instead of serialising against the
//! caller's surrounding control flow. On a pure lookup micro-bench the
//! per-address loop is already memory-parallelism-bound and the two tie
//! (`crates/bench/benches/lpm.rs`); the batch form wins where it is
//! embedded in real per-packet work — the flow aggregator's chunked
//! attribution runs ~15–20% faster end-to-end on cache-cold
//! destinations (`attribution` bench group). It is what
//! `eleph_bgp::FrozenBgpTable::attribute_ids` and the flow aggregator's
//! chunked hot path build on. Enabling the crate's `prefetch` cargo
//! feature adds explicit software prefetch (x86-64 `prefetcht0`) a few
//! lanes ahead inside the batch loop; the feature is off by default
//! because it needs one `unsafe` intrinsic call and only pays off when
//! the table misses cache.
//!
//! # Example
//!
//! ```
//! use eleph_net::{Prefix, Lpm, CompressedTrieLpm};
//!
//! let mut table: CompressedTrieLpm<&str> = CompressedTrieLpm::new();
//! table.insert("10.0.0.0/8".parse().unwrap(), "coarse");
//! table.insert("10.1.0.0/16".parse().unwrap(), "fine");
//!
//! let (pfx, val) = table.lookup_addr("10.1.2.3".parse().unwrap()).unwrap();
//! assert_eq!(pfx, "10.1.0.0/16".parse().unwrap());
//! assert_eq!(*val, "fine");
//! ```

// The only unsafe in the crate is the feature-gated prefetch intrinsic
// in `flat.rs` (architecturally a no-op hint); everything else stays
// forbidden either way.
#![cfg_attr(not(feature = "prefetch"), forbid(unsafe_code))]
#![cfg_attr(feature = "prefetch", deny(unsafe_code))]
#![warn(missing_docs)]

mod compressed;
pub mod epoch;
mod error;
mod flat;
mod linear;
mod perlength;
mod prefix;
mod set;
mod trie;

pub use compressed::CompressedTrieLpm;
pub use epoch::{Applied, EpochLpm, LpmDelta, LpmSnapshot};
pub use error::PrefixError;
pub use flat::FlatLpm;
pub use linear::LinearLpm;
pub use perlength::PerLengthLpm;
pub use prefix::Prefix;
pub use set::PrefixSet;
pub use trie::TrieLpm;

use std::net::Ipv4Addr;

/// Longest-prefix-match table interface.
///
/// A table maps [`Prefix`]es to route values `V`; [`Lpm::lookup`] returns
/// the entry with the longest prefix containing the queried address, which
/// is exactly the flow key the paper's methodology assigns to a packet.
pub trait Lpm<V> {
    /// Insert `value` under `prefix`, returning the previous value if the
    /// prefix was already present.
    fn insert(&mut self, prefix: Prefix, value: V) -> Option<V>;

    /// Remove the entry for exactly `prefix` (not covering prefixes),
    /// returning its value if present.
    fn remove(&mut self, prefix: Prefix) -> Option<V>;

    /// Exact-match lookup.
    fn get(&self, prefix: Prefix) -> Option<&V>;

    /// Longest-prefix match for a 32-bit address.
    fn lookup(&self, addr: u32) -> Option<(Prefix, &V)>;

    /// Longest-prefix match for an [`Ipv4Addr`].
    fn lookup_addr(&self, addr: Ipv4Addr) -> Option<(Prefix, &V)> {
        self.lookup(u32::from(addr))
    }

    /// Number of entries in the table.
    fn len(&self) -> usize;

    /// Whether the table is empty.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// Read-only longest-prefix-match resolution to dense ids, generic over
/// the address family `A`.
///
/// This is the seam the packet pipeline attributes through: both the
/// frozen [`FlatLpm`] and a pinned live [`LpmSnapshot`] implement it
/// for `A = u32` (IPv4), so downstream attribution
/// (`eleph_flow::attribute_metas`) is agnostic to whether the table
/// underneath it is a one-shot freeze or an epoch-swapped live view. An
/// IPv6 backend (e.g. a multi-level-stride table over `A = u128`)
/// plugs in by implementing the same two methods — nothing upstack
/// names the address width.
pub trait LpmView<A> {
    /// Longest-prefix-match id for one address, `None` on miss.
    fn lookup_one(&self, addr: A) -> Option<u32>;

    /// Batched longest-prefix match; `out[i]` receives the id for
    /// `addrs[i]`. Implementations must panic if the lengths differ.
    fn lookup_batch(&self, addrs: &[A], out: &mut [Option<u32>]);
}

impl<V> LpmView<u32> for FlatLpm<V> {
    fn lookup_one(&self, addr: u32) -> Option<u32> {
        self.lookup_id(addr)
    }

    fn lookup_batch(&self, addrs: &[u32], out: &mut [Option<u32>]) {
        self.lookup_many(addrs, out);
    }
}

/// Convert an IPv4 dotted-quad to its host-order `u32` representation.
#[inline]
pub fn addr_to_u32(addr: Ipv4Addr) -> u32 {
    u32::from(addr)
}

/// Convert a host-order `u32` to an IPv4 dotted-quad.
#[inline]
pub fn u32_to_addr(bits: u32) -> Ipv4Addr {
    Ipv4Addr::from(bits)
}
