//! Sets of prefixes with CIDR aggregation.

use std::collections::BTreeSet;
use std::net::Ipv4Addr;

use crate::Prefix;

/// An ordered set of [`Prefix`]es.
///
/// Beyond the obvious set operations, `PrefixSet` offers
/// [`aggregate`](PrefixSet::aggregate) (collapse sibling pairs and drop
/// covered prefixes — used when synthesising RIBs) and
/// [`length_histogram`](PrefixSet::length_histogram) (the prefix-length
/// distribution behind the paper's §III observation that elephants sit in
/// the /12–/26 range).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct PrefixSet {
    set: BTreeSet<Prefix>,
}

impl PrefixSet {
    /// Create an empty set.
    pub fn new() -> Self {
        PrefixSet { set: BTreeSet::new() }
    }

    /// Insert a prefix; returns `true` if it was not already present.
    pub fn insert(&mut self, prefix: Prefix) -> bool {
        self.set.insert(prefix)
    }

    /// Remove a prefix; returns `true` if it was present.
    pub fn remove(&mut self, prefix: Prefix) -> bool {
        self.set.remove(&prefix)
    }

    /// Exact membership test.
    pub fn contains(&self, prefix: Prefix) -> bool {
        self.set.contains(&prefix)
    }

    /// Whether any member prefix contains `addr`.
    pub fn contains_addr(&self, addr: Ipv4Addr) -> bool {
        self.set.iter().any(|p| p.contains(addr))
    }

    /// Whether any member prefix covers `prefix` (including equality).
    pub fn covers(&self, prefix: Prefix) -> bool {
        self.set.iter().any(|p| p.contains_prefix(&prefix))
    }

    /// Number of member prefixes.
    pub fn len(&self) -> usize {
        self.set.len()
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.set.is_empty()
    }

    /// Iterate in sorted (RIB dump) order.
    pub fn iter(&self) -> impl Iterator<Item = Prefix> + '_ {
        self.set.iter().copied()
    }

    /// Histogram of member prefix lengths: index `l` counts the /`l`s.
    pub fn length_histogram(&self) -> [usize; 33] {
        let mut hist = [0usize; 33];
        for p in &self.set {
            hist[p.len() as usize] += 1;
        }
        hist
    }

    /// Collapse the set to a minimal covering: drop prefixes covered by
    /// another member, and merge complete sibling pairs into their parent,
    /// repeating until a fixed point.
    ///
    /// The result covers exactly the same addresses with the fewest
    /// prefixes.
    pub fn aggregate(&mut self) {
        loop {
            self.drop_covered();
            if !self.merge_siblings() {
                break;
            }
        }
    }

    /// Remove members covered by a shorter member. Relies on sorted order:
    /// a covering prefix sorts before everything it covers.
    fn drop_covered(&mut self) {
        let mut kept: Vec<Prefix> = Vec::with_capacity(self.set.len());
        for p in &self.set {
            match kept.last() {
                Some(last) if last.contains_prefix(p) => continue,
                _ => kept.push(*p),
            }
        }
        if kept.len() != self.set.len() {
            self.set = kept.into_iter().collect();
        }
    }

    /// One pass of sibling merging; returns whether anything merged.
    fn merge_siblings(&mut self) -> bool {
        let mut merged = false;
        let mut out: BTreeSet<Prefix> = BTreeSet::new();
        let mut iter = self.set.iter().copied().peekable();
        while let Some(p) = iter.next() {
            if let (Some(sib), Some(next)) = (p.sibling(), iter.peek().copied()) {
                // A sibling with a greater network address is adjacent in
                // sorted order.
                if next == sib {
                    iter.next();
                    out.insert(p.parent().expect("non-default has a parent"));
                    merged = true;
                    continue;
                }
            }
            out.insert(p);
        }
        if merged {
            self.set = out;
        }
        merged
    }
}

impl FromIterator<Prefix> for PrefixSet {
    fn from_iter<I: IntoIterator<Item = Prefix>>(iter: I) -> Self {
        PrefixSet {
            set: iter.into_iter().collect(),
        }
    }
}

impl Extend<Prefix> for PrefixSet {
    fn extend<I: IntoIterator<Item = Prefix>>(&mut self, iter: I) {
        self.set.extend(iter);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(s: &str) -> Prefix {
        s.parse().unwrap()
    }

    fn set(items: &[&str]) -> PrefixSet {
        items.iter().map(|s| p(s)).collect()
    }

    #[test]
    fn insert_contains_remove() {
        let mut s = PrefixSet::new();
        assert!(s.insert(p("10.0.0.0/8")));
        assert!(!s.insert(p("10.0.0.0/8")));
        assert!(s.contains(p("10.0.0.0/8")));
        assert!(!s.contains(p("10.0.0.0/9")));
        assert!(s.remove(p("10.0.0.0/8")));
        assert!(!s.remove(p("10.0.0.0/8")));
        assert!(s.is_empty());
    }

    #[test]
    fn addr_and_cover_queries() {
        let s = set(&["10.0.0.0/8", "192.168.0.0/16"]);
        assert!(s.contains_addr("10.20.30.40".parse().unwrap()));
        assert!(!s.contains_addr("11.0.0.1".parse().unwrap()));
        assert!(s.covers(p("10.1.0.0/16")));
        assert!(s.covers(p("10.0.0.0/8")));
        assert!(!s.covers(p("0.0.0.0/0")));
    }

    #[test]
    fn aggregate_merges_sibling_pair() {
        let mut s = set(&["10.0.0.0/9", "10.128.0.0/9"]);
        s.aggregate();
        assert_eq!(s, set(&["10.0.0.0/8"]));
    }

    #[test]
    fn aggregate_drops_covered() {
        let mut s = set(&["10.0.0.0/8", "10.1.0.0/16", "10.2.3.0/24"]);
        s.aggregate();
        assert_eq!(s, set(&["10.0.0.0/8"]));
    }

    #[test]
    fn aggregate_cascades_upward() {
        // Four /10s collapse to two /9s collapse to one /8.
        let mut s = set(&["10.0.0.0/10", "10.64.0.0/10", "10.128.0.0/10", "10.192.0.0/10"]);
        s.aggregate();
        assert_eq!(s, set(&["10.0.0.0/8"]));
    }

    #[test]
    fn aggregate_keeps_non_mergeable() {
        // 10.0.0.0/9 and 10.128.0.0/10 are not siblings: nothing merges.
        let mut s = set(&["10.0.0.0/9", "10.128.0.0/10"]);
        let before = s.clone();
        s.aggregate();
        assert_eq!(s, before);
    }

    #[test]
    fn aggregate_mixed_case() {
        let mut s = set(&[
            "192.168.0.0/24",
            "192.168.1.0/24",  // merges with previous into /23
            "192.168.2.0/24",  // stays: sibling 192.168.3.0/24 absent
            "10.0.0.0/8",
            "10.5.0.0/16",     // covered, dropped
        ]);
        s.aggregate();
        assert_eq!(s, set(&["10.0.0.0/8", "192.168.0.0/23", "192.168.2.0/24"]));
    }

    #[test]
    fn length_histogram_counts() {
        let s = set(&["10.0.0.0/8", "11.0.0.0/8", "10.1.0.0/16", "1.2.3.4/32"]);
        let h = s.length_histogram();
        assert_eq!(h[8], 2);
        assert_eq!(h[16], 1);
        assert_eq!(h[32], 1);
        assert_eq!(h.iter().sum::<usize>(), 4);
    }

    #[test]
    fn iter_is_sorted() {
        let s = set(&["10.1.0.0/16", "9.0.0.0/8", "10.0.0.0/8"]);
        let v: Vec<String> = s.iter().map(|p| p.to_string()).collect();
        assert_eq!(v, vec!["9.0.0.0/8", "10.0.0.0/8", "10.1.0.0/16"]);
    }
}
