//! Error types for prefix parsing and construction.

use core::fmt;

/// Errors produced when constructing or parsing a [`crate::Prefix`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PrefixError {
    /// Prefix length above 32.
    LengthOutOfRange(u8),
    /// The textual form was not `a.b.c.d/len`.
    Malformed(String),
    /// The address part did not parse as an IPv4 dotted quad.
    BadAddress(String),
    /// The length part did not parse as an integer.
    BadLength(String),
}

impl fmt::Display for PrefixError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PrefixError::LengthOutOfRange(len) => {
                write!(f, "prefix length {len} out of range (max 32)")
            }
            PrefixError::Malformed(s) => write!(f, "malformed prefix {s:?}: expected a.b.c.d/len"),
            PrefixError::BadAddress(s) => write!(f, "bad IPv4 address {s:?}"),
            PrefixError::BadLength(s) => write!(f, "bad prefix length {s:?}"),
        }
    }
}

impl std::error::Error for PrefixError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_informative() {
        assert!(PrefixError::LengthOutOfRange(40).to_string().contains("40"));
        assert!(PrefixError::Malformed("x".into()).to_string().contains("a.b.c.d/len"));
        assert!(PrefixError::BadAddress("1.2.3".into()).to_string().contains("1.2.3"));
        assert!(PrefixError::BadLength("zz".into()).to_string().contains("zz"));
    }
}
