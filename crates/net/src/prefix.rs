//! Canonical IPv4 CIDR prefixes.

use core::cmp::Ordering;
use core::fmt;
use core::str::FromStr;
use std::net::Ipv4Addr;

use crate::PrefixError;

/// An IPv4 CIDR prefix in canonical form (host bits zeroed).
///
/// `Prefix` is the flow key of the whole reproduction: the paper defines a
/// "flow" as all packets whose destination address longest-matches the same
/// BGP routing-table entry. Construction canonicalises (masks away host
/// bits), so two prefixes are equal iff they denote the same address block.
///
/// Ordering sorts by network address first and then by length (shorter —
/// less specific — first), which yields the conventional RIB dump order.
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
pub struct Prefix {
    bits: u32,
    len: u8,
}

impl Prefix {
    /// The default route, `0.0.0.0/0`.
    pub const DEFAULT: Prefix = Prefix { bits: 0, len: 0 };

    /// Construct from a network address and a prefix length, masking host
    /// bits. Fails only if `len > 32`.
    pub fn new(addr: Ipv4Addr, len: u8) -> Result<Self, PrefixError> {
        Self::from_u32(u32::from(addr), len)
    }

    /// Construct from a host-order `u32` and a prefix length.
    pub fn from_u32(bits: u32, len: u8) -> Result<Self, PrefixError> {
        if len > 32 {
            return Err(PrefixError::LengthOutOfRange(len));
        }
        Ok(Prefix {
            bits: bits & mask(len),
            len,
        })
    }

    /// The /32 host route for `addr`.
    pub fn host(addr: Ipv4Addr) -> Self {
        Prefix {
            bits: u32::from(addr),
            len: 32,
        }
    }

    /// Network address (lowest address in the block).
    #[inline]
    pub fn network(&self) -> Ipv4Addr {
        Ipv4Addr::from(self.bits)
    }

    /// Network address as host-order bits.
    #[inline]
    pub fn bits(&self) -> u32 {
        self.bits
    }

    /// Prefix length in bits.
    #[inline]
    pub fn len(&self) -> u8 {
        self.len
    }

    /// Whether this is the default route `0.0.0.0/0`.
    #[inline]
    pub fn is_default(&self) -> bool {
        self.len == 0
    }

    /// The netmask, e.g. `255.255.0.0` for a /16.
    #[inline]
    pub fn mask(&self) -> Ipv4Addr {
        Ipv4Addr::from(mask(self.len))
    }

    /// Highest address in the block (the broadcast address for subnets).
    #[inline]
    pub fn last_addr(&self) -> Ipv4Addr {
        Ipv4Addr::from(self.bits | !mask(self.len))
    }

    /// Number of addresses covered; `None` for the default route (2^32
    /// does not fit in a `u32`).
    pub fn size(&self) -> Option<u32> {
        if self.len == 0 {
            None
        } else {
            Some(1u32 << (32 - self.len))
        }
    }

    /// Whether `addr` falls inside this prefix.
    #[inline]
    pub fn contains(&self, addr: Ipv4Addr) -> bool {
        self.contains_u32(u32::from(addr))
    }

    /// Whether the host-order address `bits` falls inside this prefix.
    #[inline]
    pub fn contains_u32(&self, bits: u32) -> bool {
        bits & mask(self.len) == self.bits
    }

    /// Whether `other` is a subnet of (or equal to) `self`.
    pub fn contains_prefix(&self, other: &Prefix) -> bool {
        other.len >= self.len && self.contains_u32(other.bits)
    }

    /// Whether the two prefixes share any address.
    pub fn overlaps(&self, other: &Prefix) -> bool {
        self.contains_prefix(other) || other.contains_prefix(self)
    }

    /// The covering prefix one bit shorter; `None` for the default route.
    pub fn parent(&self) -> Option<Prefix> {
        if self.len == 0 {
            None
        } else {
            let len = self.len - 1;
            Some(Prefix {
                bits: self.bits & mask(len),
                len,
            })
        }
    }

    /// The two halves one bit longer; `None` for /32s.
    pub fn children(&self) -> Option<(Prefix, Prefix)> {
        if self.len >= 32 {
            return None;
        }
        let len = self.len + 1;
        let left = Prefix { bits: self.bits, len };
        let right = Prefix {
            bits: self.bits | (1u32 << (32 - len)),
            len,
        };
        Some((left, right))
    }

    /// The sibling prefix (other half of the parent); `None` for the
    /// default route.
    pub fn sibling(&self) -> Option<Prefix> {
        if self.len == 0 {
            return None;
        }
        Some(Prefix {
            bits: self.bits ^ (1u32 << (32 - self.len)),
            len: self.len,
        })
    }

    /// Bit `i` (0 = most significant) of the network address.
    #[inline]
    pub fn bit(&self, i: u8) -> bool {
        debug_assert!(i < 32);
        self.bits & (0x8000_0000 >> i) != 0
    }

    /// Length of the longest common prefix of the two blocks, capped at
    /// `min(self.len, other.len)`.
    pub fn common_prefix_len(&self, other: &Prefix) -> u8 {
        let max = self.len.min(other.len);
        let diff = self.bits ^ other.bits;
        (diff.leading_zeros() as u8).min(max)
    }
}

/// Bit mask with the top `len` bits set.
#[inline]
pub(crate) fn mask(len: u8) -> u32 {
    debug_assert!(len <= 32);
    if len == 0 {
        0
    } else {
        u32::MAX << (32 - len)
    }
}

/// Bit `i` (0 = most significant) of a host-order address.
#[inline]
pub(crate) fn addr_bit(bits: u32, i: u8) -> bool {
    debug_assert!(i < 32);
    bits & (0x8000_0000 >> i) != 0
}

impl fmt::Display for Prefix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}/{}", self.network(), self.len)
    }
}

// `Debug` delegates to `Display`; prefixes read better as `10.0.0.0/8`
// than as a struct dump in test failures.
impl fmt::Debug for Prefix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(self, f)
    }
}

impl Ord for Prefix {
    fn cmp(&self, other: &Self) -> Ordering {
        self.bits.cmp(&other.bits).then(self.len.cmp(&other.len))
    }
}

impl PartialOrd for Prefix {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl FromStr for Prefix {
    type Err = PrefixError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let (addr_s, len_s) = s
            .split_once('/')
            .ok_or_else(|| PrefixError::Malformed(s.to_string()))?;
        let addr: Ipv4Addr = addr_s
            .parse()
            .map_err(|_| PrefixError::BadAddress(addr_s.to_string()))?;
        let len: u8 = len_s
            .parse()
            .map_err(|_| PrefixError::BadLength(len_s.to_string()))?;
        Prefix::new(addr, len)
    }
}

impl From<Ipv4Addr> for Prefix {
    fn from(addr: Ipv4Addr) -> Self {
        Prefix::host(addr)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(s: &str) -> Prefix {
        s.parse().unwrap()
    }

    #[test]
    fn canonicalises_host_bits() {
        let a = Prefix::new(Ipv4Addr::new(10, 1, 2, 3), 8).unwrap();
        assert_eq!(a, p("10.0.0.0/8"));
        assert_eq!(a.to_string(), "10.0.0.0/8");
    }

    #[test]
    fn rejects_over_long() {
        assert_eq!(
            Prefix::from_u32(0, 33),
            Err(PrefixError::LengthOutOfRange(33))
        );
    }

    #[test]
    fn parse_and_display_round_trip() {
        for s in ["0.0.0.0/0", "10.0.0.0/8", "192.168.1.0/24", "1.2.3.4/32"] {
            assert_eq!(p(s).to_string(), s);
        }
    }

    #[test]
    fn parse_errors() {
        assert!(matches!("10.0.0.0".parse::<Prefix>(), Err(PrefixError::Malformed(_))));
        assert!(matches!("10.0.0/8".parse::<Prefix>(), Err(PrefixError::BadAddress(_))));
        assert!(matches!("10.0.0.0/x".parse::<Prefix>(), Err(PrefixError::BadLength(_))));
        assert!(matches!("10.0.0.0/40".parse::<Prefix>(), Err(PrefixError::LengthOutOfRange(40))));
    }

    #[test]
    fn containment() {
        let eight = p("10.0.0.0/8");
        assert!(eight.contains(Ipv4Addr::new(10, 255, 0, 1)));
        assert!(!eight.contains(Ipv4Addr::new(11, 0, 0, 1)));
        assert!(eight.contains_prefix(&p("10.1.0.0/16")));
        assert!(!p("10.1.0.0/16").contains_prefix(&eight));
        assert!(eight.contains_prefix(&eight));
    }

    #[test]
    fn default_route_contains_everything() {
        assert!(Prefix::DEFAULT.contains(Ipv4Addr::new(255, 255, 255, 255)));
        assert!(Prefix::DEFAULT.contains(Ipv4Addr::new(0, 0, 0, 0)));
        assert!(Prefix::DEFAULT.contains_prefix(&p("10.0.0.0/8")));
        assert!(Prefix::DEFAULT.is_default());
        assert_eq!(Prefix::DEFAULT.size(), None);
    }

    #[test]
    fn overlap_is_symmetric_nesting() {
        assert!(p("10.0.0.0/8").overlaps(&p("10.1.0.0/16")));
        assert!(p("10.1.0.0/16").overlaps(&p("10.0.0.0/8")));
        assert!(!p("10.0.0.0/8").overlaps(&p("11.0.0.0/8")));
        assert!(!p("10.0.0.0/9").overlaps(&p("10.128.0.0/9")));
    }

    #[test]
    fn family_navigation() {
        let a = p("10.128.0.0/9");
        assert_eq!(a.parent().unwrap(), p("10.0.0.0/8"));
        assert_eq!(a.sibling().unwrap(), p("10.0.0.0/9"));
        let (l, r) = p("10.0.0.0/8").children().unwrap();
        assert_eq!(l, p("10.0.0.0/9"));
        assert_eq!(r, a);
        assert_eq!(Prefix::DEFAULT.parent(), None);
        assert_eq!(Prefix::DEFAULT.sibling(), None);
        assert_eq!(p("1.2.3.4/32").children(), None);
    }

    #[test]
    fn mask_and_range() {
        let a = p("192.168.1.0/24");
        assert_eq!(a.mask(), Ipv4Addr::new(255, 255, 255, 0));
        assert_eq!(a.last_addr(), Ipv4Addr::new(192, 168, 1, 255));
        assert_eq!(a.size(), Some(256));
        assert_eq!(p("1.2.3.4/32").size(), Some(1));
    }

    #[test]
    fn ordering_sorts_like_a_rib_dump() {
        let mut v = vec![p("10.1.0.0/16"), p("10.0.0.0/8"), p("9.0.0.0/8"), p("10.0.0.0/16")];
        v.sort();
        assert_eq!(
            v,
            vec![p("9.0.0.0/8"), p("10.0.0.0/8"), p("10.0.0.0/16"), p("10.1.0.0/16")]
        );
    }

    #[test]
    fn bits_and_common_prefix() {
        let a = p("128.0.0.0/1");
        assert!(a.bit(0));
        let b = p("192.0.0.0/2");
        assert_eq!(a.common_prefix_len(&b), 1);
        assert_eq!(b.common_prefix_len(&a), 1);
        assert_eq!(p("10.0.0.0/8").common_prefix_len(&p("10.0.0.0/24")), 8);
        assert_eq!(p("0.0.0.0/0").common_prefix_len(&p("10.0.0.0/8")), 0);
    }

    #[test]
    fn host_route_from_addr() {
        let h: Prefix = Ipv4Addr::new(1, 2, 3, 4).into();
        assert_eq!(h, p("1.2.3.4/32"));
        assert_eq!(h.size(), Some(1));
    }
}
