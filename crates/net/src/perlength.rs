//! LPM via one hash map per prefix length, searched longest-first.

use rustc_hash::FxHashMap;

use crate::prefix::mask;
use crate::{Lpm, Prefix};

/// Longest-prefix match backed by 33 hash maps (one per prefix length).
///
/// Lookup masks the address at each *populated* length, longest first, and
/// probes the corresponding map — at most 33 hash probes, and in practice
/// only as many as there are distinct lengths in the table (a 2001 backbone
/// table has ~20). This is the classic software-router scheme; it trades
/// memory for branch-free probing and is the fastest of our tables for
/// lookup-heavy workloads (see the `lpm` bench).
#[derive(Debug, Clone)]
pub struct PerLengthLpm<V> {
    maps: Vec<FxHashMap<u32, V>>,
    /// Bit `l` set iff `maps[l]` is non-empty; lets lookups skip empty
    /// lengths without touching the maps.
    populated: u64,
    len: usize,
}

impl<V> Default for PerLengthLpm<V> {
    fn default() -> Self {
        Self::new()
    }
}

impl<V> PerLengthLpm<V> {
    /// Create an empty table.
    pub fn new() -> Self {
        PerLengthLpm {
            maps: (0..=32).map(|_| FxHashMap::default()).collect(),
            populated: 0,
            len: 0,
        }
    }

    /// Iterate over all entries, shortest prefixes first, unordered within
    /// a length.
    pub fn iter(&self) -> impl Iterator<Item = (Prefix, &V)> {
        self.maps.iter().enumerate().flat_map(|(l, m)| {
            m.iter().map(move |(bits, v)| {
                (
                    Prefix::from_u32(*bits, l as u8).expect("stored prefixes are valid"),
                    v,
                )
            })
        })
    }

    /// The distinct prefix lengths currently present, ascending.
    pub fn populated_lengths(&self) -> Vec<u8> {
        (0..=32u8).filter(|l| self.populated & (1 << l) != 0).collect()
    }
}

impl<V> Lpm<V> for PerLengthLpm<V> {
    fn insert(&mut self, prefix: Prefix, value: V) -> Option<V> {
        let l = prefix.len() as usize;
        let old = self.maps[l].insert(prefix.bits(), value);
        if old.is_none() {
            self.len += 1;
            self.populated |= 1 << l;
        }
        old
    }

    fn remove(&mut self, prefix: Prefix) -> Option<V> {
        let l = prefix.len() as usize;
        let removed = self.maps[l].remove(&prefix.bits());
        if removed.is_some() {
            self.len -= 1;
            if self.maps[l].is_empty() {
                self.populated &= !(1 << l);
            }
        }
        removed
    }

    fn get(&self, prefix: Prefix) -> Option<&V> {
        self.maps[prefix.len() as usize].get(&prefix.bits())
    }

    fn lookup(&self, addr: u32) -> Option<(Prefix, &V)> {
        for l in (0..=32u8).rev() {
            if self.populated & (1 << l) == 0 {
                continue;
            }
            let key = addr & mask(l);
            if let Some(v) = self.maps[l as usize].get(&key) {
                let prefix = Prefix::from_u32(key, l).expect("l <= 32");
                return Some((prefix, v));
            }
        }
        None
    }

    fn len(&self) -> usize {
        self.len
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(s: &str) -> Prefix {
        s.parse().unwrap()
    }

    #[test]
    fn longest_first_probing() {
        let mut t = PerLengthLpm::new();
        t.insert(p("0.0.0.0/0"), 0);
        t.insert(p("10.0.0.0/8"), 8);
        t.insert(p("10.1.0.0/16"), 16);
        let (pfx, v) = t.lookup_addr("10.1.2.3".parse().unwrap()).unwrap();
        assert_eq!((pfx, *v), (p("10.1.0.0/16"), 16));
        let (pfx, v) = t.lookup_addr("10.2.2.3".parse().unwrap()).unwrap();
        assert_eq!((pfx, *v), (p("10.0.0.0/8"), 8));
        let (pfx, v) = t.lookup_addr("9.9.9.9".parse().unwrap()).unwrap();
        assert_eq!((pfx, *v), (p("0.0.0.0/0"), 0));
    }

    #[test]
    fn populated_mask_tracks_lengths() {
        let mut t = PerLengthLpm::new();
        assert!(t.populated_lengths().is_empty());
        t.insert(p("10.0.0.0/8"), 1);
        t.insert(p("11.0.0.0/8"), 2);
        t.insert(p("10.1.0.0/16"), 3);
        assert_eq!(t.populated_lengths(), vec![8, 16]);
        t.remove(p("10.1.0.0/16"));
        assert_eq!(t.populated_lengths(), vec![8]);
        t.remove(p("10.0.0.0/8"));
        assert_eq!(t.populated_lengths(), vec![8]);
        t.remove(p("11.0.0.0/8"));
        assert!(t.populated_lengths().is_empty());
        assert!(t.is_empty());
    }

    #[test]
    fn insert_replace_and_get() {
        let mut t = PerLengthLpm::new();
        assert_eq!(t.insert(p("10.0.0.0/8"), 1), None);
        assert_eq!(t.insert(p("10.0.0.0/8"), 2), Some(1));
        assert_eq!(t.len(), 1);
        assert_eq!(t.get(p("10.0.0.0/8")), Some(&2));
        assert_eq!(t.get(p("10.0.0.0/9")), None);
    }

    #[test]
    fn iter_covers_all_entries() {
        let mut t = PerLengthLpm::new();
        let inputs = ["0.0.0.0/0", "10.0.0.0/8", "10.1.0.0/16", "1.2.3.4/32"];
        for s in inputs {
            t.insert(p(s), ());
        }
        let mut got: Vec<String> = t.iter().map(|(p, _)| p.to_string()).collect();
        got.sort();
        let mut want: Vec<String> = inputs.iter().map(|s| s.to_string()).collect();
        want.sort();
        assert_eq!(got, want);
    }

    #[test]
    fn miss_on_empty_and_unmatched() {
        let mut t: PerLengthLpm<()> = PerLengthLpm::new();
        assert_eq!(t.lookup(42), None);
        t.insert(p("10.0.0.0/8"), ());
        assert!(t.lookup_addr("11.0.0.0".parse().unwrap()).is_none());
    }
}
