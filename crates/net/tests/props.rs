//! Property tests: every real LPM implementation must agree with the
//! linear-scan oracle on random tables, and prefix algebra must hold on
//! random prefixes.

use eleph_net::{
    CompressedTrieLpm, LinearLpm, Lpm, PerLengthLpm, Prefix, PrefixSet, TrieLpm,
};
use proptest::prelude::*;

fn arb_prefix() -> impl Strategy<Value = Prefix> {
    (any::<u32>(), 0u8..=32).prop_map(|(bits, len)| Prefix::from_u32(bits, len).unwrap())
}

/// Random tables skewed toward realistic lengths so nesting actually occurs.
fn arb_table() -> impl Strategy<Value = Vec<(Prefix, u32)>> {
    prop::collection::vec(
        (any::<u32>(), prop_oneof![0u8..=32, 8u8..=24], any::<u32>())
            .prop_map(|(bits, len, v)| (Prefix::from_u32(bits, len).unwrap(), v)),
        0..64,
    )
}

proptest! {
    #[test]
    fn prefix_parse_display_round_trip(p in arb_prefix()) {
        let s = p.to_string();
        let back: Prefix = s.parse().unwrap();
        prop_assert_eq!(p, back);
    }

    #[test]
    fn prefix_contains_own_endpoints(p in arb_prefix()) {
        prop_assert!(p.contains(p.network()));
        prop_assert!(p.contains(p.last_addr()));
        prop_assert!(p.contains_prefix(&p));
    }

    #[test]
    fn parent_contains_child(p in arb_prefix()) {
        if let Some(parent) = p.parent() {
            prop_assert!(parent.contains_prefix(&p));
            prop_assert_eq!(parent.len() + 1, p.len());
        }
        if let Some((l, r)) = p.children() {
            prop_assert!(p.contains_prefix(&l));
            prop_assert!(p.contains_prefix(&r));
            prop_assert!(!l.overlaps(&r));
            prop_assert_eq!(l.sibling().unwrap(), r);
        }
    }

    #[test]
    fn common_prefix_len_is_symmetric_and_bounded(a in arb_prefix(), b in arb_prefix()) {
        let ab = a.common_prefix_len(&b);
        prop_assert_eq!(ab, b.common_prefix_len(&a));
        prop_assert!(ab <= a.len().min(b.len()));
        // The two blocks agree on their first `ab` bits.
        let chopped_a = Prefix::from_u32(a.bits(), ab).unwrap();
        let chopped_b = Prefix::from_u32(b.bits(), ab).unwrap();
        prop_assert_eq!(chopped_a, chopped_b);
    }

    #[test]
    fn all_lpm_impls_agree_with_linear(entries in arb_table(), queries in prop::collection::vec(any::<u32>(), 0..64)) {
        let mut linear = LinearLpm::new();
        let mut trie = TrieLpm::new();
        let mut compressed = CompressedTrieLpm::new();
        let mut perlen = PerLengthLpm::new();
        for (p, v) in &entries {
            linear.insert(*p, *v);
            trie.insert(*p, *v);
            compressed.insert(*p, *v);
            perlen.insert(*p, *v);
        }
        prop_assert_eq!(trie.len(), linear.len());
        prop_assert_eq!(compressed.len(), linear.len());
        prop_assert_eq!(perlen.len(), linear.len());

        // Probe random addresses plus each entry's own network address
        // (guaranteed hits).
        let extra: Vec<u32> = entries.iter().map(|(p, _)| p.bits()).collect();
        for addr in queries.iter().chain(extra.iter()) {
            let want = linear.lookup(*addr).map(|(p, v)| (p, *v));
            prop_assert_eq!(trie.lookup(*addr).map(|(p, v)| (p, *v)), want);
            prop_assert_eq!(compressed.lookup(*addr).map(|(p, v)| (p, *v)), want);
            prop_assert_eq!(perlen.lookup(*addr).map(|(p, v)| (p, *v)), want);
        }
    }

    #[test]
    fn lpm_impls_agree_after_removals(entries in arb_table(), removals in prop::collection::vec(any::<prop::sample::Index>(), 0..16), queries in prop::collection::vec(any::<u32>(), 0..32)) {
        let mut linear = LinearLpm::new();
        let mut trie = TrieLpm::new();
        let mut compressed = CompressedTrieLpm::new();
        let mut perlen = PerLengthLpm::new();
        for (p, v) in &entries {
            linear.insert(*p, *v);
            trie.insert(*p, *v);
            compressed.insert(*p, *v);
            perlen.insert(*p, *v);
        }
        if !entries.is_empty() {
            for idx in removals {
                let (p, _) = entries[idx.index(entries.len())];
                let want = linear.remove(p);
                prop_assert_eq!(trie.remove(p), want);
                prop_assert_eq!(compressed.remove(p), want);
                prop_assert_eq!(perlen.remove(p), want);
            }
        }
        prop_assert_eq!(trie.len(), linear.len());
        prop_assert_eq!(compressed.len(), linear.len());
        prop_assert_eq!(perlen.len(), linear.len());
        for addr in &queries {
            let want = linear.lookup(*addr).map(|(p, v)| (p, *v));
            prop_assert_eq!(trie.lookup(*addr).map(|(p, v)| (p, *v)), want);
            prop_assert_eq!(compressed.lookup(*addr).map(|(p, v)| (p, *v)), want);
            prop_assert_eq!(perlen.lookup(*addr).map(|(p, v)| (p, *v)), want);
        }
    }

    #[test]
    fn iteration_yields_every_inserted_entry(entries in arb_table()) {
        let mut compressed = CompressedTrieLpm::new();
        let mut expected: std::collections::BTreeMap<Prefix, u32> = Default::default();
        for (p, v) in &entries {
            compressed.insert(*p, *v);
            expected.insert(*p, *v);
        }
        let got: std::collections::BTreeMap<Prefix, u32> =
            compressed.iter().map(|(p, v)| (p, *v)).collect();
        prop_assert_eq!(got, expected);

        // And iteration order is sorted.
        let order: Vec<Prefix> = compressed.iter().map(|(p, _)| p).collect();
        let mut sorted = order.clone();
        sorted.sort();
        prop_assert_eq!(order, sorted);
    }

    #[test]
    fn aggregation_preserves_address_coverage(prefixes in prop::collection::vec(arb_prefix(), 0..24), probes in prop::collection::vec(any::<u32>(), 0..64)) {
        let original: PrefixSet = prefixes.iter().copied().collect();
        let mut aggregated = original.clone();
        aggregated.aggregate();
        prop_assert!(aggregated.len() <= original.len());
        // Coverage must be identical at the member network addresses and at
        // random probe addresses.
        for p in original.iter() {
            prop_assert!(aggregated.covers(p), "aggregation lost {}", p);
        }
        for bits in probes {
            let addr = std::net::Ipv4Addr::from(bits);
            prop_assert_eq!(original.contains_addr(addr), aggregated.contains_addr(addr));
        }
    }

    #[test]
    fn aggregation_is_idempotent(prefixes in prop::collection::vec(arb_prefix(), 0..24)) {
        let mut once: PrefixSet = prefixes.iter().copied().collect();
        once.aggregate();
        let mut twice = once.clone();
        twice.aggregate();
        prop_assert_eq!(once, twice);
    }
}
