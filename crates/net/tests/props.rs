//! Property tests: every real LPM implementation must agree with the
//! linear-scan oracle on random tables, and prefix algebra must hold on
//! random prefixes.

use eleph_net::{
    CompressedTrieLpm, EpochLpm, FlatLpm, LinearLpm, Lpm, LpmDelta, PerLengthLpm, Prefix,
    PrefixSet, TrieLpm,
};
use proptest::prelude::*;

fn arb_prefix() -> impl Strategy<Value = Prefix> {
    (any::<u32>(), 0u8..=32).prop_map(|(bits, len)| Prefix::from_u32(bits, len).unwrap())
}

/// Random tables skewed toward realistic lengths so nesting actually occurs.
fn arb_table() -> impl Strategy<Value = Vec<(Prefix, u32)>> {
    prop::collection::vec(
        (any::<u32>(), prop_oneof![0u8..=32, 8u8..=24], any::<u32>())
            .prop_map(|(bits, len, v)| (Prefix::from_u32(bits, len).unwrap(), v)),
        0..64,
    )
}

proptest! {
    #[test]
    fn prefix_parse_display_round_trip(p in arb_prefix()) {
        let s = p.to_string();
        let back: Prefix = s.parse().unwrap();
        prop_assert_eq!(p, back);
    }

    #[test]
    fn prefix_contains_own_endpoints(p in arb_prefix()) {
        prop_assert!(p.contains(p.network()));
        prop_assert!(p.contains(p.last_addr()));
        prop_assert!(p.contains_prefix(&p));
    }

    #[test]
    fn parent_contains_child(p in arb_prefix()) {
        if let Some(parent) = p.parent() {
            prop_assert!(parent.contains_prefix(&p));
            prop_assert_eq!(parent.len() + 1, p.len());
        }
        if let Some((l, r)) = p.children() {
            prop_assert!(p.contains_prefix(&l));
            prop_assert!(p.contains_prefix(&r));
            prop_assert!(!l.overlaps(&r));
            prop_assert_eq!(l.sibling().unwrap(), r);
        }
    }

    #[test]
    fn common_prefix_len_is_symmetric_and_bounded(a in arb_prefix(), b in arb_prefix()) {
        let ab = a.common_prefix_len(&b);
        prop_assert_eq!(ab, b.common_prefix_len(&a));
        prop_assert!(ab <= a.len().min(b.len()));
        // The two blocks agree on their first `ab` bits.
        let chopped_a = Prefix::from_u32(a.bits(), ab).unwrap();
        let chopped_b = Prefix::from_u32(b.bits(), ab).unwrap();
        prop_assert_eq!(chopped_a, chopped_b);
    }

    #[test]
    fn all_lpm_impls_agree_with_linear(entries in arb_table(), queries in prop::collection::vec(any::<u32>(), 0..64)) {
        let mut linear = LinearLpm::new();
        let mut trie = TrieLpm::new();
        let mut compressed = CompressedTrieLpm::new();
        let mut perlen = PerLengthLpm::new();
        for (p, v) in &entries {
            linear.insert(*p, *v);
            trie.insert(*p, *v);
            compressed.insert(*p, *v);
            perlen.insert(*p, *v);
        }
        prop_assert_eq!(trie.len(), linear.len());
        prop_assert_eq!(compressed.len(), linear.len());
        prop_assert_eq!(perlen.len(), linear.len());

        // Probe random addresses plus each entry's own network address
        // (guaranteed hits).
        let extra: Vec<u32> = entries.iter().map(|(p, _)| p.bits()).collect();
        for addr in queries.iter().chain(extra.iter()) {
            let want = linear.lookup(*addr).map(|(p, v)| (p, *v));
            prop_assert_eq!(trie.lookup(*addr).map(|(p, v)| (p, *v)), want);
            prop_assert_eq!(compressed.lookup(*addr).map(|(p, v)| (p, *v)), want);
            prop_assert_eq!(perlen.lookup(*addr).map(|(p, v)| (p, *v)), want);
        }
    }

    #[test]
    fn lpm_impls_agree_after_removals(entries in arb_table(), removals in prop::collection::vec(any::<prop::sample::Index>(), 0..16), queries in prop::collection::vec(any::<u32>(), 0..32)) {
        let mut linear = LinearLpm::new();
        let mut trie = TrieLpm::new();
        let mut compressed = CompressedTrieLpm::new();
        let mut perlen = PerLengthLpm::new();
        for (p, v) in &entries {
            linear.insert(*p, *v);
            trie.insert(*p, *v);
            compressed.insert(*p, *v);
            perlen.insert(*p, *v);
        }
        if !entries.is_empty() {
            for idx in removals {
                let (p, _) = entries[idx.index(entries.len())];
                let want = linear.remove(p);
                prop_assert_eq!(trie.remove(p), want);
                prop_assert_eq!(compressed.remove(p), want);
                prop_assert_eq!(perlen.remove(p), want);
            }
        }
        prop_assert_eq!(trie.len(), linear.len());
        prop_assert_eq!(compressed.len(), linear.len());
        prop_assert_eq!(perlen.len(), linear.len());
        for addr in &queries {
            let want = linear.lookup(*addr).map(|(p, v)| (p, *v));
            prop_assert_eq!(trie.lookup(*addr).map(|(p, v)| (p, *v)), want);
            prop_assert_eq!(compressed.lookup(*addr).map(|(p, v)| (p, *v)), want);
            prop_assert_eq!(perlen.lookup(*addr).map(|(p, v)| (p, *v)), want);
        }
    }

    #[test]
    fn iteration_yields_every_inserted_entry(entries in arb_table()) {
        let mut compressed = CompressedTrieLpm::new();
        let mut expected: std::collections::BTreeMap<Prefix, u32> = Default::default();
        for (p, v) in &entries {
            compressed.insert(*p, *v);
            expected.insert(*p, *v);
        }
        let got: std::collections::BTreeMap<Prefix, u32> =
            compressed.iter().map(|(p, v)| (p, *v)).collect();
        prop_assert_eq!(got, expected);

        // And iteration order is sorted.
        let order: Vec<Prefix> = compressed.iter().map(|(p, _)| p).collect();
        let mut sorted = order.clone();
        sorted.sort();
        prop_assert_eq!(order, sorted);
    }

    #[test]
    fn aggregation_preserves_address_coverage(prefixes in prop::collection::vec(arb_prefix(), 0..24), probes in prop::collection::vec(any::<u32>(), 0..64)) {
        let original: PrefixSet = prefixes.iter().copied().collect();
        let mut aggregated = original.clone();
        aggregated.aggregate();
        prop_assert!(aggregated.len() <= original.len());
        // Coverage must be identical at the member network addresses and at
        // random probe addresses.
        for p in original.iter() {
            prop_assert!(aggregated.covers(p), "aggregation lost {}", p);
        }
        for bits in probes {
            let addr = std::net::Ipv4Addr::from(bits);
            prop_assert_eq!(original.contains_addr(addr), aggregated.contains_addr(addr));
        }
    }

    #[test]
    fn aggregation_is_idempotent(prefixes in prop::collection::vec(arb_prefix(), 0..24)) {
        let mut once: PrefixSet = prefixes.iter().copied().collect();
        once.aggregate();
        let mut twice = once.clone();
        twice.aggregate();
        prop_assert_eq!(once, twice);
    }
}

// The frozen flat table allocates its 64 MiB stage-1 array per build, so
// this block runs fewer cases than the incremental-table properties above;
// the generator deliberately covers >/24 prefixes, shadowed prefixes, the
// default route and the empty table.
proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn flat_lpm_agrees_with_compressed_trie(entries in arb_table(), queries in prop::collection::vec(any::<u32>(), 0..64)) {
        let compressed = CompressedTrieLpm::from_entries(entries.iter().copied());
        // Build once from the entry list and once from the live trie:
        // both construction paths must agree.
        let flat = FlatLpm::from_entries(entries.iter().copied());
        let refrozen = FlatLpm::from(&compressed);
        prop_assert_eq!(flat.len(), compressed.len());
        prop_assert_eq!(refrozen.len(), compressed.len());

        // Probe random addresses plus each entry's own network and last
        // address (guaranteed hits, including inside spill blocks).
        let extra: Vec<u32> = entries
            .iter()
            .flat_map(|(p, _)| [p.bits(), u32::from(p.last_addr())])
            .collect();
        for addr in queries.iter().chain(extra.iter()) {
            let want = compressed.lookup(*addr).map(|(p, v)| (p, *v));
            prop_assert_eq!(flat.lookup(*addr).map(|(p, v)| (p, *v)), want);
            prop_assert_eq!(refrozen.lookup(*addr).map(|(p, v)| (p, *v)), want);
            // The dense-id lookup must resolve to the same prefix.
            let id_prefix = flat.lookup_id(*addr).map(|id| flat.prefix(id));
            prop_assert_eq!(id_prefix, want.map(|(p, _)| p));
        }

        // Exact-match agrees for every inserted prefix, and ids are
        // consistent with dump order.
        for (p, _) in &entries {
            prop_assert_eq!(flat.get(*p), compressed.get(*p));
            let id = flat.id_of(*p).expect("inserted prefix has an id");
            prop_assert_eq!(flat.prefix(id), *p);
        }
    }

    #[test]
    fn lookup_many_matches_per_address_lookup_id(entries in arb_table(), queries in prop::collection::vec(any::<u32>(), 0..192)) {
        // The generator covers empty tables, default routes (len 0) and
        // >/24 (spilled) prefixes; the batch APIs must agree with the
        // per-address resolver on all of them, at every batch size that
        // straddles the internal 64-lane chunking.
        let flat = FlatLpm::from_entries(entries.iter().copied());
        // Guaranteed-hit probes (network + last address of each entry)
        // mixed into the random queries.
        let addrs: Vec<u32> = queries
            .iter()
            .copied()
            .chain(entries.iter().flat_map(|(p, _)| [p.bits(), u32::from(p.last_addr())]))
            .collect();
        let mut out = vec![None; addrs.len()];
        flat.lookup_many(&addrs, &mut out);
        let mut raw = vec![0u32; addrs.len()];
        flat.lookup_many_raw(&addrs, &mut raw);
        for (i, &addr) in addrs.iter().enumerate() {
            let want = flat.lookup_id(addr);
            prop_assert_eq!(out[i], want, "lookup_many at {:#010x}", addr);
            prop_assert_eq!(raw[i], want.map_or(0, |id| id + 1), "lookup_many_raw at {:#010x}", addr);
        }
        // Sub-batch splits agree with the full batch.
        for size in [1usize, 7, 64, 65] {
            let mut split = vec![None; addrs.len()];
            for (a_chunk, o_chunk) in addrs.chunks(size).zip(split.chunks_mut(size)) {
                flat.lookup_many(a_chunk, o_chunk);
            }
            prop_assert_eq!(&split, &out, "batch size {}", size);
        }
    }

    /// The live-table tentpole invariant: a table built by applying a
    /// random announce/withdraw sequence as epoch deltas is
    /// lookup-for-lookup identical to freezing the final RIB from
    /// scratch. Ids differ by construction (epoch ids are
    /// caller-assigned, flat ids are dump-ordered), so equality is by
    /// resolved *prefix* — checked on the scalar, `lookup_many` and
    /// `lookup_many_raw` paths at random addresses plus every touched
    /// prefix's boundary addresses.
    #[test]
    fn epoch_deltas_equal_fresh_freeze(
        ops in prop::collection::vec(
            (any::<u32>(), prop_oneof![0u8..=32, 8u8..=26], any::<bool>()),
            0..48,
        ),
        splits in prop::collection::vec(1usize..8, 0..8),
        queries in prop::collection::vec(any::<u32>(), 0..64),
    ) {
        // Withdraws draw from the same generator as announces; to make
        // them actually hit, reuse each op's prefix with probability ~1/2
        // by cycling through previously announced prefixes.
        let table = EpochLpm::new();
        let mut rib: std::collections::BTreeMap<Prefix, u32> = Default::default();
        let mut announced: Vec<Prefix> = Vec::new();
        let mut next_id = 0u32;
        let mut deltas: Vec<LpmDelta> = Vec::new();
        for (i, &(bits, len, is_withdraw)) in ops.iter().enumerate() {
            let prefix = if is_withdraw && !announced.is_empty() {
                announced[i % announced.len()]
            } else {
                Prefix::from_u32(bits, len).unwrap()
            };
            if is_withdraw {
                rib.remove(&prefix);
                deltas.push(LpmDelta::Withdraw { prefix });
            } else {
                rib.insert(prefix, next_id);
                announced.push(prefix);
                deltas.push(LpmDelta::Announce { prefix, id: next_id });
                next_id += 1;
            }
        }
        // Apply in irregularly sized batches so batch boundaries are
        // exercised too, not just one-delta-per-generation.
        let mut rest = deltas.as_slice();
        let mut si = 0usize;
        while !rest.is_empty() {
            let take = splits.get(si).copied().unwrap_or(3).min(rest.len());
            table.apply(&rest[..take]);
            rest = &rest[take..];
            si += 1;
        }

        // Freeze the final RIB from scratch, carrying the prefix as the
        // value so both sides resolve to a prefix.
        let flat: FlatLpm<Prefix> = FlatLpm::from_entries(rib.iter().map(|(p, _)| (*p, *p)));
        let id_to_prefix: std::collections::HashMap<u32, Prefix> =
            rib.iter().map(|(p, &id)| (id, *p)).collect();
        prop_assert_eq!(table.entries().len(), flat.len());

        let addrs: Vec<u32> = queries
            .iter()
            .copied()
            .chain(announced.iter().flat_map(|p| {
                let first = p.bits();
                let last = u32::from(p.last_addr());
                [first, last, first.wrapping_sub(1), last.wrapping_add(1)]
            }))
            .collect();
        let snap = table.pin();
        let mut live = vec![None; addrs.len()];
        snap.lookup_many(&addrs, &mut live);
        let mut live_raw = vec![0u32; addrs.len()];
        snap.lookup_many_raw(&addrs, &mut live_raw);
        for (i, &addr) in addrs.iter().enumerate() {
            let want = flat.lookup(addr).map(|(p, _)| p);
            let scalar = snap.lookup_id(addr).map(|id| id_to_prefix[&id]);
            prop_assert_eq!(scalar, want, "scalar at {:#010x}", addr);
            let batch = live[i].map(|id| id_to_prefix[&id]);
            prop_assert_eq!(batch, want, "lookup_many at {:#010x}", addr);
            let raw = if live_raw[i] == 0 { None } else { Some(id_to_prefix[&(live_raw[i] - 1)]) };
            prop_assert_eq!(raw, want, "lookup_many_raw at {:#010x}", addr);
        }
    }
}
