//! Error type for the statistics substrate.

use core::fmt;

/// Errors from estimators and accumulators.
#[derive(Debug, Clone, PartialEq)]
pub enum StatsError {
    /// Operation requires at least `needed` samples, got `got`.
    NotEnoughSamples {
        /// Samples required.
        needed: usize,
        /// Samples provided.
        got: usize,
    },
    /// Samples must be strictly positive for this estimator (log scale).
    NonPositiveSample(f64),
    /// A parameter was outside its valid domain.
    BadParameter {
        /// Which parameter.
        name: &'static str,
        /// The offending value.
        value: f64,
    },
    /// The estimator found no power-law tail in the data.
    NoTailFound,
}

impl fmt::Display for StatsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StatsError::NotEnoughSamples { needed, got } => {
                write!(f, "need at least {needed} samples, got {got}")
            }
            StatsError::NonPositiveSample(x) => {
                write!(f, "sample {x} is not strictly positive")
            }
            StatsError::BadParameter { name, value } => {
                write!(f, "parameter {name} = {value} out of domain")
            }
            StatsError::NoTailFound => write!(f, "no power-law tail detected"),
        }
    }
}

impl std::error::Error for StatsError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays() {
        assert!(StatsError::NotEnoughSamples { needed: 10, got: 3 }
            .to_string()
            .contains("10"));
        assert!(StatsError::NonPositiveSample(-1.0).to_string().contains("-1"));
        assert!(StatsError::BadParameter { name: "alpha", value: 0.0 }
            .to_string()
            .contains("alpha"));
        assert_eq!(StatsError::NoTailFound.to_string(), "no power-law tail detected");
    }
}
