//! The Crovella–Taqqu "aest" scaling estimator.
//!
//! Reimplemented from the method description in *Estimating the Heavy Tail
//! Index from Scaling Properties* (Crovella & Taqqu, 1999), which is the
//! estimator the paper's "aest" threshold detector relies on.
//!
//! # How it works
//!
//! If `X` is heavy-tailed with index α < 2 — `P[X > x] ~ C·x^(−α)` — then
//! the m-fold aggregate `X^(m)` (sums of non-overlapping blocks of size m)
//! obeys the *single-big-jump* tail relation `P[X^(m) > x] ≈ m·P[X > x]`.
//! On a log–log complementary-distribution plot, the curves of successive
//! aggregation levels are therefore **parallel lines of slope −α**, with a
//! horizontal displacement of `log10(m₂/m₁)/α` between levels. For
//! light-tailed data no such displacement pattern exists: aggregates
//! normalise toward a Gaussian whose log–log CCDF plunges ever more
//! steeply, and the displacement implies an α inconsistent with the local
//! slope.
//!
//! The estimator therefore probes the distributions of successive
//! aggregation levels at log-spaced upper-tail probabilities. At each
//! probe it measures
//!
//! 1. the **horizontal shift** `δ` between the two curves, giving
//!    `α_shift = log10(m₂/m₁)/δ`, and
//! 2. the **local slope** `s` of the finer curve, giving `α_slope = −s`.
//!
//! A probe is *accepted* when the two agree within a tolerance and fall in
//! the heavy-tail range. The **tail onset** (the paper's threshold) is the
//! shallowest probability `p*` such that the acceptance rate over all
//! deeper probes stays high; α̂ is the median of accepted shift estimates
//! in that region.

use crate::{Ecdf, StatsError};

/// Tuning knobs for [`aest`]. `Default` matches the settings used
/// throughout the reproduction.
#[derive(Debug, Clone, Copy)]
pub struct AestConfig {
    /// Maximum number of halvings: aggregation levels are m = 2^0 .. 2^j.
    pub max_levels: usize,
    /// Minimum number of samples required at the coarsest level.
    pub min_points_top: usize,
    /// Number of log-spaced probability probes per level pair.
    pub probes: usize,
    /// Reject probes implying α below this (slowly varying, not a tail).
    pub min_alpha: f64,
    /// Reject probes implying α above this (finite variance ⇒ not heavy).
    pub max_alpha: f64,
    /// Relative tolerance between the shift and slope α estimates.
    pub consistency_tol: f64,
    /// Required acceptance rate over the tail region.
    pub accept_fraction: f64,
    /// Minimum number of accepted probes for a positive result.
    pub min_accepted: usize,
}

impl Default for AestConfig {
    fn default() -> Self {
        AestConfig {
            max_levels: 6,
            min_points_top: 200,
            probes: 40,
            min_alpha: 0.4,
            max_alpha: 2.5,
            consistency_tol: 0.40,
            accept_fraction: 0.70,
            min_accepted: 4,
        }
    }
}

/// Per-probe, per-level-pair measurement, kept for diagnostics and the
/// ablation benches.
#[derive(Debug, Clone, Copy)]
pub struct PairDiagnostic {
    /// Index of the finer aggregation level (0 = raw data).
    pub level: usize,
    /// Upper-tail probability of the probe.
    pub p: f64,
    /// α implied by the horizontal shift between the level pair.
    pub alpha_shift: f64,
    /// α implied by the local slope of the finer curve.
    pub alpha_slope: f64,
    /// Whether this pair accepted the probe.
    pub accepted: bool,
}

/// A detected heavy tail.
#[derive(Debug, Clone)]
pub struct AestResult {
    /// Estimated tail index α̂.
    pub alpha: f64,
    /// The value (in original sample units) where power-law behaviour
    /// begins — the paper's "first point after which such behaviour can
    /// be witnessed", used directly as the elephant threshold.
    pub tail_start: f64,
    /// Fraction of probability mass in the detected tail (the p* of the
    /// acceptance scan).
    pub tail_fraction: f64,
    /// Number of aggregation levels examined.
    pub levels: usize,
    /// Raw per-probe measurements.
    pub diagnostics: Vec<PairDiagnostic>,
}

/// Run the aest estimator over positive samples.
///
/// Returns [`StatsError::NoTailFound`] when the data shows no consistent
/// power-law scaling region (e.g. exponential or tight log-normal data) —
/// callers fall back to a different threshold rule in that case, exactly
/// as a traffic-engineering system must when a link's flow mix is not
/// heavy-tailed.
pub fn aest(samples: &[f64], config: &AestConfig) -> Result<AestResult, StatsError> {
    let positive: Vec<f64> = samples.iter().copied().filter(|&x| x > 0.0).collect();
    let needed = config.min_points_top * 2;
    if positive.len() < needed {
        return Err(StatsError::NotEnoughSamples {
            needed,
            got: positive.len(),
        });
    }

    // --- Centering ------------------------------------------------------
    // For α > 1 the aggregates acquire a drift of m·μ that hides the
    // m^(1/α) scaling of the tail; following Crovella–Taqqu we subtract
    // the sample mean before aggregating, so that the aggregates converge
    // to a centred stable law whose quantiles scale cleanly. The detected
    // onset is mapped back to original units at the end.
    let mean = positive.iter().sum::<f64>() / positive.len() as f64;
    let centred: Vec<f64> = positive.iter().map(|&x| x - mean).collect();

    // --- Aggregation pyramid -------------------------------------------
    let mut levels: Vec<Vec<f64>> = vec![centred];
    while levels.len() < config.max_levels
        && levels.last().expect("non-empty").len() / 2 >= config.min_points_top
    {
        let prev = levels.last().expect("non-empty");
        let next: Vec<f64> = prev.chunks_exact(2).map(|c| c[0] + c[1]).collect();
        levels.push(next);
    }
    if levels.len() < 2 {
        return Err(StatsError::NotEnoughSamples {
            needed,
            got: levels[0].len(),
        });
    }

    let ecdfs: Vec<Ecdf> = levels
        .iter()
        .map(|v| Ecdf::new(v.clone()).expect("levels are non-empty"))
        .collect();

    // --- Probe grid ------------------------------------------------------
    // Deepest usable probability is bounded by the coarsest level's size;
    // shallower than 0.5 is the distribution body.
    let n_top = levels.last().expect("non-empty").len() as f64;
    let p_min = (8.0 / n_top).max(1e-4);
    let p_max: f64 = 0.5;
    if p_min >= p_max {
        return Err(StatsError::NotEnoughSamples {
            needed,
            got: levels[0].len(),
        });
    }
    let probes: Vec<f64> = (0..config.probes)
        .map(|i| {
            let t = i as f64 / (config.probes - 1).max(1) as f64;
            // log-spaced from p_min (deep tail) to p_max (body)
            (p_min.ln() + t * (p_max.ln() - p_min.ln())).exp()
        })
        .collect();

    let log2 = 2f64.log10();
    let mut diagnostics = Vec::new();
    // probe index -> (accepted?, median alpha among accepting pairs)
    let mut probe_votes: Vec<(bool, f64)> = Vec::with_capacity(probes.len());

    for &p in &probes {
        let mut pair_alphas = Vec::new();
        let mut voters = 0usize;
        // The (0,1) pair inspects the raw data directly; its verdict gates
        // the region scan because the tail onset must hold in *original*
        // units, and coarse aggregates stay tail-dominated deeper into the
        // body than the raw data does.
        let mut level0_accepted = false;
        for j in 0..ecdfs.len() - 1 {
            let fine = &ecdfs[j];
            let coarse = &ecdfs[j + 1];
            // A pair abstains when the probe is too deep for its coarser
            // level to resolve.
            if p * coarse.len() as f64 / 2.0 < 4.0 {
                continue;
            }
            voters += 1;

            let x_fine = fine.upper_quantile(p).expect("p in (0,1)");
            let x_coarse = coarse.upper_quantile(p).expect("p in (0,1)");
            if x_fine <= 0.0 || x_coarse <= x_fine {
                diagnostics.push(PairDiagnostic {
                    level: j,
                    p,
                    alpha_shift: f64::NAN,
                    alpha_slope: f64::NAN,
                    accepted: false,
                });
                continue;
            }
            let dx = x_coarse.log10() - x_fine.log10();
            let alpha_shift = log2 / dx;

            // Local slope of the finer curve from quantiles at p·k and p/k.
            let k = 1.6;
            let p_lo = (p / k).max(2.0 / fine.len() as f64);
            let p_hi = (p * k).min(0.8);
            let x_lo = fine.upper_quantile(p_hi).expect("in range"); // shallower ⇒ smaller x
            let x_hi = fine.upper_quantile(p_lo).expect("in range"); // deeper ⇒ larger x
            let alpha_slope = if x_hi > x_lo && x_lo > 0.0 {
                // slope = Δ log10 p / Δ log10 x; CCDF falls, so negate.
                (p_hi.log10() - p_lo.log10()) / (x_hi.log10() - x_lo.log10())
            } else {
                f64::INFINITY
            };

            let alpha_ok = alpha_shift >= config.min_alpha && alpha_shift <= config.max_alpha;
            let slope_ok = alpha_slope.is_finite()
                && alpha_slope >= config.min_alpha * 0.6
                && alpha_slope <= config.max_alpha * 1.4;
            let consistent = (alpha_slope - alpha_shift).abs()
                <= config.consistency_tol * alpha_shift.max(alpha_slope);
            let accepted = alpha_ok && slope_ok && consistent;

            diagnostics.push(PairDiagnostic {
                level: j,
                p,
                alpha_shift,
                alpha_slope,
                accepted,
            });
            if accepted {
                pair_alphas.push(alpha_shift);
                if j == 0 {
                    level0_accepted = true;
                }
            }
        }
        let majority = voters > 0 && pair_alphas.len() * 2 >= voters && !pair_alphas.is_empty();
        let alpha = median(&mut pair_alphas);
        probe_votes.push((majority && level0_accepted, alpha));
    }

    // --- Acceptance scan ---------------------------------------------------
    // Probes are ordered deep → shallow. Grow the tail region from the
    // deepest probe outward; an isolated rejection is measurement noise,
    // but two consecutive rejections mark the end of the power-law region
    // (the body of the distribution).
    let mut best_k = 0usize;
    let mut accepted_in_region = 0usize;
    let mut consecutive_rejections = 0usize;
    for (k, (ok, _)) in probe_votes.iter().enumerate() {
        if *ok {
            consecutive_rejections = 0;
            accepted_in_region += 1;
            best_k = k + 1;
        } else {
            consecutive_rejections += 1;
            if consecutive_rejections >= 2 {
                break;
            }
        }
    }
    let region_frac = if best_k == 0 {
        0.0
    } else {
        accepted_in_region as f64 / best_k as f64
    };
    if best_k == 0
        || accepted_in_region < config.min_accepted
        || region_frac < config.accept_fraction
    {
        return Err(StatsError::NoTailFound);
    }

    let mut alphas: Vec<f64> = probe_votes[..best_k]
        .iter()
        .filter(|(ok, _)| *ok)
        .map(|(_, a)| *a)
        .collect();
    let alpha = median(&mut alphas);
    let p_star = probes[best_k - 1];
    // Map the onset back from centred to original units.
    let tail_start = ecdfs[0].upper_quantile(p_star).expect("p in (0,1)") + mean;

    Ok(AestResult {
        alpha,
        tail_start,
        tail_fraction: p_star,
        levels: levels.len(),
        diagnostics,
    })
}

fn median(values: &mut [f64]) -> f64 {
    if values.is_empty() {
        return f64::NAN;
    }
    values.sort_by(|a, b| a.partial_cmp(b).expect("no NaNs collected"));
    let mid = values.len() / 2;
    if values.len() % 2 == 1 {
        values[mid]
    } else {
        (values[mid - 1] + values[mid]) / 2.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dist::{Exp, LogNormal, Pareto, Sample};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn draw<D: Sample>(d: &D, n: usize, seed: u64) -> Vec<f64> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n).map(|_| d.sample(&mut rng)).collect()
    }

    #[test]
    fn detects_pure_pareto_and_estimates_alpha() {
        for (alpha, seed) in [(1.1, 1u64), (1.5, 2), (1.8, 3)] {
            let xs = draw(&Pareto::new(1.0, alpha).unwrap(), 60_000, seed);
            let res = aest(&xs, &AestConfig::default())
                .unwrap_or_else(|e| panic!("alpha {alpha}: {e}"));
            assert!(
                (res.alpha - alpha).abs() / alpha < 0.25,
                "alpha {alpha}: estimated {}",
                res.alpha
            );
            // Pure Pareto is power-law from the start, but for α > 1 the
            // aggregates acquire a mean drift that hides the scaling
            // outside the proper tail, so the verified region is the top
            // few percent — still far more than a noise artefact.
            assert!(
                res.tail_fraction > 0.03,
                "alpha {alpha}: tail fraction {}",
                res.tail_fraction
            );
        }
    }

    #[test]
    fn rejects_exponential() {
        let xs = draw(&Exp::new(1.0).unwrap(), 60_000, 7);
        assert!(matches!(
            aest(&xs, &AestConfig::default()),
            Err(StatsError::NoTailFound)
        ));
    }

    #[test]
    fn rejects_tight_lognormal() {
        let xs = draw(&LogNormal::new(0.0, 0.5).unwrap(), 60_000, 11);
        assert!(matches!(
            aest(&xs, &AestConfig::default()),
            Err(StatsError::NoTailFound)
        ));
    }

    #[test]
    fn finds_tail_onset_of_a_mixture() {
        // 90% log-normal body + 10% Pareto tail starting at x_t = 50.
        // This is the shape of a per-interval flow-bandwidth snapshot.
        let mut rng = StdRng::seed_from_u64(13);
        let body = LogNormal::new(1.0, 0.7).unwrap();
        let tail = Pareto::new(50.0, 1.3).unwrap();
        let xs: Vec<f64> = (0..80_000)
            .map(|i| {
                if i % 10 == 0 {
                    tail.sample(&mut rng)
                } else {
                    body.sample(&mut rng)
                }
            })
            .collect();
        let res = aest(&xs, &AestConfig::default()).expect("mixture has a tail");
        // Threshold must land between the body bulk and the tail start
        // region (within a factor of ~4 of x_t = 50 in these tests).
        assert!(
            res.tail_start > 12.0 && res.tail_start < 200.0,
            "tail_start {}",
            res.tail_start
        );
        assert!((res.alpha - 1.3).abs() < 0.5, "alpha {}", res.alpha);
        // ~10% of mass is in the tail; the detected fraction must be
        // in that neighbourhood, not 50%.
        assert!(
            res.tail_fraction < 0.35,
            "tail fraction {}",
            res.tail_fraction
        );
    }

    #[test]
    fn too_few_samples_rejected() {
        let xs = vec![1.0; 100];
        assert!(matches!(
            aest(&xs, &AestConfig::default()),
            Err(StatsError::NotEnoughSamples { .. })
        ));
    }

    #[test]
    fn nonpositive_samples_are_ignored() {
        let mut xs = draw(&Pareto::new(1.0, 1.5).unwrap(), 60_000, 17);
        xs.extend(std::iter::repeat(0.0).take(1_000));
        xs.extend(std::iter::repeat(-5.0).take(1_000));
        let res = aest(&xs, &AestConfig::default()).unwrap();
        assert!((res.alpha - 1.5).abs() < 0.4);
    }

    #[test]
    fn diagnostics_are_populated() {
        let xs = draw(&Pareto::new(1.0, 1.5).unwrap(), 40_000, 23);
        let res = aest(&xs, &AestConfig::default()).unwrap();
        assert!(!res.diagnostics.is_empty());
        assert!(res.levels >= 2);
        assert!(res.diagnostics.iter().any(|d| d.accepted));
        // Diagnostics cover every level pair.
        let max_level = res.diagnostics.iter().map(|d| d.level).max().unwrap();
        assert_eq!(max_level, res.levels - 2);
    }

    #[test]
    fn deterministic_for_same_input() {
        let xs = draw(&Pareto::new(1.0, 1.2).unwrap(), 30_000, 29);
        let a = aest(&xs, &AestConfig::default()).unwrap();
        let b = aest(&xs, &AestConfig::default()).unwrap();
        assert_eq!(a.alpha, b.alpha);
        assert_eq!(a.tail_start, b.tail_start);
    }

    #[test]
    fn alpha_above_two_is_not_heavy() {
        // Pareto with α = 3.5 has finite variance: aggregates normalise
        // and the estimator should refuse or at least not report α < 2.
        let xs = draw(&Pareto::new(1.0, 3.5).unwrap(), 60_000, 31);
        match aest(&xs, &AestConfig::default()) {
            Err(StatsError::NoTailFound) => {}
            Ok(res) => assert!(res.alpha > 2.0, "claimed heavy tail alpha {}", res.alpha),
            Err(e) => panic!("unexpected error {e}"),
        }
    }
}
