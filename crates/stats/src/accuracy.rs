//! Set-accuracy metrics for approximate detection against an exact
//! oracle.
//!
//! The sketch evaluation harness compares, interval by interval, the
//! elephant set an approximate backend produced against the exact
//! engine's — classic retrieval metrics over weighted sets:
//!
//! * **recall** — fraction of oracle elephants the approximation found;
//! * **precision** — fraction of reported elephants that are real;
//! * **byte coverage** — fraction of the oracle elephants' *traffic*
//!   (weight) the approximation captured, the metric that matters for
//!   traffic engineering: missing one heavy elephant costs more than
//!   missing five marginal ones.
//!
//! [`SetAccuracy`] accumulates all three across any number of intervals
//! (micro-averaged: sums first, one ratio at the end), so a scheme's
//! single summary row reflects every interval of the run.

/// Accumulates recall/precision/byte-coverage of approximate elephant
/// sets against exact oracle sets, micro-averaged over intervals.
///
/// Keys are `u32` ids; each observation takes both sets **sorted
/// ascending** together with a weight (rate) lookup for the oracle side.
#[derive(Debug, Clone, Copy, Default)]
pub struct SetAccuracy {
    /// Σ |approx ∩ oracle| over intervals.
    hits: u64,
    /// Σ |oracle|.
    oracle: u64,
    /// Σ |approx|.
    approx: u64,
    /// Σ weight(approx ∩ oracle).
    hit_weight: f64,
    /// Σ weight(oracle).
    oracle_weight: f64,
}

impl SetAccuracy {
    /// An empty accumulator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Fold in one interval: `oracle` and `approx` are ascending key
    /// sets, `weight(key)` the oracle-side weight (the exact rate) of an
    /// oracle member.
    pub fn observe(&mut self, oracle: &[u32], approx: &[u32], mut weight: impl FnMut(u32) -> f64) {
        debug_assert!(oracle.windows(2).all(|w| w[0] < w[1]), "oracle set not ascending");
        debug_assert!(approx.windows(2).all(|w| w[0] < w[1]), "approx set not ascending");
        self.oracle += oracle.len() as u64;
        self.approx += approx.len() as u64;
        let mut j = 0;
        for &key in oracle {
            let w = weight(key);
            self.oracle_weight += w;
            while j < approx.len() && approx[j] < key {
                j += 1;
            }
            if j < approx.len() && approx[j] == key {
                self.hits += 1;
                self.hit_weight += w;
            }
        }
    }

    /// Σ |approx ∩ oracle| so far.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Σ |oracle| so far.
    pub fn oracle_total(&self) -> u64 {
        self.oracle
    }

    /// Σ |approx| so far.
    pub fn approx_total(&self) -> u64 {
        self.approx
    }

    /// Fraction of oracle elephants found (1.0 when the oracle found
    /// nothing either — no elephants to miss).
    pub fn recall(&self) -> f64 {
        if self.oracle == 0 {
            1.0
        } else {
            self.hits as f64 / self.oracle as f64
        }
    }

    /// Fraction of reported elephants that are real (1.0 when nothing
    /// was reported — no false claims).
    pub fn precision(&self) -> f64 {
        if self.approx == 0 {
            1.0
        } else {
            self.hits as f64 / self.approx as f64
        }
    }

    /// Fraction of the oracle elephants' weight captured (1.0 when the
    /// oracle set carried no weight).
    pub fn byte_coverage(&self) -> f64 {
        if self.oracle_weight <= 0.0 {
            1.0
        } else {
            self.hit_weight / self.oracle_weight
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_agreement_scores_ones() {
        let mut acc = SetAccuracy::new();
        acc.observe(&[1, 5, 9], &[1, 5, 9], |_| 10.0);
        assert_eq!(acc.recall(), 1.0);
        assert_eq!(acc.precision(), 1.0);
        assert_eq!(acc.byte_coverage(), 1.0);
    }

    #[test]
    fn empty_sets_are_vacuously_perfect() {
        let mut acc = SetAccuracy::new();
        acc.observe(&[], &[], |_| 0.0);
        assert_eq!(acc.recall(), 1.0);
        assert_eq!(acc.precision(), 1.0);
        assert_eq!(acc.byte_coverage(), 1.0);
    }

    #[test]
    fn partial_overlap_weights_by_rate() {
        let mut acc = SetAccuracy::new();
        // Oracle: {1 (90), 2 (10)}; approx found 1 plus a false positive.
        acc.observe(&[1, 2], &[1, 7], |k| if k == 1 { 90.0 } else { 10.0 });
        assert_eq!(acc.recall(), 0.5);
        assert_eq!(acc.precision(), 0.5);
        assert!((acc.byte_coverage() - 0.9).abs() < 1e-12);
    }

    #[test]
    fn micro_average_pools_intervals() {
        let mut acc = SetAccuracy::new();
        acc.observe(&[1], &[1], |_| 1.0); // perfect interval
        acc.observe(&[2, 3, 4], &[9], |_| 1.0); // terrible interval
        assert_eq!(acc.hits(), 1);
        assert_eq!(acc.oracle_total(), 4);
        assert_eq!(acc.recall(), 0.25);
        assert_eq!(acc.precision(), 0.5);
    }
}
