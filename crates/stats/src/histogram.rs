//! Linear- and log-binned histograms.

use crate::StatsError;

/// Fixed-width linear histogram over `[lo, hi)` with saturation counters
/// for out-of-range values.
///
/// Figure 1(c) of the paper is exactly this structure: holding times
/// binned in 5-minute slots with occurrence counts plotted on a log axis.
#[derive(Debug, Clone)]
pub struct Histogram {
    lo: f64,
    hi: f64,
    bins: Vec<u64>,
    underflow: u64,
    overflow: u64,
}

impl Histogram {
    /// Create a histogram with `bins` equal-width bins over `[lo, hi)`.
    pub fn new(lo: f64, hi: f64, bins: usize) -> Result<Self, StatsError> {
        if !(hi > lo) {
            return Err(StatsError::BadParameter { name: "hi", value: hi });
        }
        if bins == 0 {
            return Err(StatsError::BadParameter {
                name: "bins",
                value: 0.0,
            });
        }
        Ok(Histogram {
            lo,
            hi,
            bins: vec![0; bins],
            underflow: 0,
            overflow: 0,
        })
    }

    /// Record one observation.
    pub fn record(&mut self, x: f64) {
        if x < self.lo {
            self.underflow += 1;
        } else if x >= self.hi {
            self.overflow += 1;
        } else {
            let width = (self.hi - self.lo) / self.bins.len() as f64;
            let idx = ((x - self.lo) / width) as usize;
            // Floating point can round x at the upper edge into `bins`.
            let idx = idx.min(self.bins.len() - 1);
            self.bins[idx] += 1;
        }
    }

    /// Per-bin counts.
    pub fn counts(&self) -> &[u64] {
        &self.bins
    }

    /// Count of observations below range.
    pub fn underflow(&self) -> u64 {
        self.underflow
    }

    /// Count of observations at or above the upper bound.
    pub fn overflow(&self) -> u64 {
        self.overflow
    }

    /// Total observations recorded, including out-of-range.
    pub fn total(&self) -> u64 {
        self.bins.iter().sum::<u64>() + self.underflow + self.overflow
    }

    /// The `[lo, hi)` interval of bin `i`.
    pub fn bin_range(&self, i: usize) -> (f64, f64) {
        let width = (self.hi - self.lo) / self.bins.len() as f64;
        (
            self.lo + width * i as f64,
            self.lo + width * (i + 1) as f64,
        )
    }

    /// Midpoint of bin `i`.
    pub fn bin_center(&self, i: usize) -> f64 {
        let (a, b) = self.bin_range(i);
        (a + b) / 2.0
    }
}

/// Logarithmically binned histogram over positive values: bin `i` covers
/// `[base^i·lo, base^(i+1)·lo)`.
///
/// Used for flow-size and bandwidth distributions, which span 6+ orders of
/// magnitude on a backbone link.
#[derive(Debug, Clone)]
pub struct LogHistogram {
    lo: f64,
    base: f64,
    bins: Vec<u64>,
    underflow: u64,
    overflow: u64,
}

impl LogHistogram {
    /// Create a histogram with `bins` bins starting at `lo > 0`, each
    /// `base` (> 1) times wider than the previous.
    pub fn new(lo: f64, base: f64, bins: usize) -> Result<Self, StatsError> {
        if !(lo > 0.0) {
            return Err(StatsError::BadParameter { name: "lo", value: lo });
        }
        if !(base > 1.0) {
            return Err(StatsError::BadParameter {
                name: "base",
                value: base,
            });
        }
        if bins == 0 {
            return Err(StatsError::BadParameter {
                name: "bins",
                value: 0.0,
            });
        }
        Ok(LogHistogram {
            lo,
            base,
            bins: vec![0; bins],
            underflow: 0,
            overflow: 0,
        })
    }

    /// Record one observation (non-positive values count as underflow).
    pub fn record(&mut self, x: f64) {
        if x < self.lo {
            self.underflow += 1;
            return;
        }
        let idx = ((x / self.lo).ln() / self.base.ln()).floor() as usize;
        if idx >= self.bins.len() {
            self.overflow += 1;
        } else {
            self.bins[idx] += 1;
        }
    }

    /// Per-bin counts.
    pub fn counts(&self) -> &[u64] {
        &self.bins
    }

    /// Count of observations below `lo` (including non-positive).
    pub fn underflow(&self) -> u64 {
        self.underflow
    }

    /// Count of observations beyond the last bin.
    pub fn overflow(&self) -> u64 {
        self.overflow
    }

    /// Total observations recorded, including out-of-range.
    pub fn total(&self) -> u64 {
        self.bins.iter().sum::<u64>() + self.underflow + self.overflow
    }

    /// The `[lo, hi)` interval of bin `i`.
    pub fn bin_range(&self, i: usize) -> (f64, f64) {
        (
            self.lo * self.base.powi(i as i32),
            self.lo * self.base.powi(i as i32 + 1),
        )
    }

    /// Geometric midpoint of bin `i`.
    pub fn bin_center(&self, i: usize) -> f64 {
        let (a, b) = self.bin_range(i);
        (a * b).sqrt()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn linear_binning() {
        let mut h = Histogram::new(0.0, 10.0, 5).unwrap();
        for x in [0.0, 1.9, 2.0, 5.5, 9.99] {
            h.record(x);
        }
        assert_eq!(h.counts(), &[2, 1, 1, 0, 1]);
        assert_eq!(h.total(), 5);
        assert_eq!(h.underflow(), 0);
        assert_eq!(h.overflow(), 0);
    }

    #[test]
    fn linear_out_of_range() {
        let mut h = Histogram::new(0.0, 10.0, 2).unwrap();
        h.record(-0.1);
        h.record(10.0);
        h.record(1e9);
        assert_eq!(h.underflow(), 1);
        assert_eq!(h.overflow(), 2);
        assert_eq!(h.total(), 3);
        assert_eq!(h.counts(), &[0, 0]);
    }

    #[test]
    fn linear_bin_geometry() {
        let h = Histogram::new(10.0, 20.0, 4).unwrap();
        assert_eq!(h.bin_range(0), (10.0, 12.5));
        assert_eq!(h.bin_range(3), (17.5, 20.0));
        assert_eq!(h.bin_center(1), 13.75);
    }

    #[test]
    fn linear_rejects_bad_params() {
        assert!(Histogram::new(1.0, 1.0, 4).is_err());
        assert!(Histogram::new(2.0, 1.0, 4).is_err());
        assert!(Histogram::new(0.0, 1.0, 0).is_err());
    }

    #[test]
    fn log_binning_decades() {
        let mut h = LogHistogram::new(1.0, 10.0, 4).unwrap();
        for x in [1.0, 5.0, 10.0, 99.0, 100.0, 5000.0] {
            h.record(x);
        }
        // [1,10): 1, 5 | [10,100): 10, 99 | [100,1000): 100 | [1000,10000): 5000
        assert_eq!(h.counts(), &[2, 2, 1, 1]);
    }

    #[test]
    fn log_out_of_range() {
        let mut h = LogHistogram::new(1.0, 10.0, 2).unwrap();
        h.record(0.0);
        h.record(-5.0);
        h.record(0.5);
        h.record(100.0);
        assert_eq!(h.underflow(), 3);
        assert_eq!(h.overflow(), 1);
        assert_eq!(h.total(), 4);
    }

    #[test]
    fn log_bin_geometry() {
        let h = LogHistogram::new(1.0, 10.0, 3).unwrap();
        let (a, b) = h.bin_range(2);
        assert!((a - 100.0).abs() < 1e-9);
        assert!((b - 1000.0).abs() < 1e-9);
        assert!((h.bin_center(0) - 10f64.sqrt()).abs() < 1e-9);
    }

    #[test]
    fn log_rejects_bad_params() {
        assert!(LogHistogram::new(0.0, 10.0, 3).is_err());
        assert!(LogHistogram::new(-1.0, 10.0, 3).is_err());
        assert!(LogHistogram::new(1.0, 1.0, 3).is_err());
        assert!(LogHistogram::new(1.0, 10.0, 0).is_err());
    }

    #[test]
    fn edge_value_exactly_at_upper_bound() {
        let mut h = Histogram::new(0.0, 1.0, 10);
        let h = h.as_mut().unwrap();
        h.record(1.0 - 1e-16); // rounds to 1.0/width = 10 → clamp to bin 9
        assert_eq!(h.counts()[9], 1);
        assert_eq!(h.overflow(), 0);
    }
}
