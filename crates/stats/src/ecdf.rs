//! Empirical cumulative distribution functions.

use crate::StatsError;

/// An empirical distribution over a sorted sample.
///
/// Provides the CDF/CCDF, quantiles, and the log–log complementary
/// distribution points that the aest estimator and the paper's
/// flow-bandwidth analysis work from.
#[derive(Debug, Clone)]
pub struct Ecdf {
    sorted: Vec<f64>,
}

impl Ecdf {
    /// Build from samples (NaNs rejected, order irrelevant).
    pub fn new(mut samples: Vec<f64>) -> Result<Self, StatsError> {
        if samples.is_empty() {
            return Err(StatsError::NotEnoughSamples { needed: 1, got: 0 });
        }
        if samples.iter().any(|x| x.is_nan()) {
            return Err(StatsError::BadParameter {
                name: "samples",
                value: f64::NAN,
            });
        }
        samples.sort_by(|a, b| a.partial_cmp(b).expect("no NaNs after check"));
        Ok(Ecdf { sorted: samples })
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.sorted.len()
    }

    /// Whether the sample set is empty (never true post-construction).
    pub fn is_empty(&self) -> bool {
        self.sorted.is_empty()
    }

    /// The sorted sample values.
    pub fn values(&self) -> &[f64] {
        &self.sorted
    }

    /// `P[X <= x]`.
    pub fn cdf(&self, x: f64) -> f64 {
        let n = self.sorted.len();
        let idx = self.sorted.partition_point(|&v| v <= x);
        idx as f64 / n as f64
    }

    /// `P[X > x]`.
    pub fn ccdf(&self, x: f64) -> f64 {
        1.0 - self.cdf(x)
    }

    /// The q-quantile (0 ≤ q ≤ 1), by the nearest-rank method: the
    /// smallest sample value v with CDF(v) ≥ q.
    pub fn quantile(&self, q: f64) -> Result<f64, StatsError> {
        if !(0.0..=1.0).contains(&q) {
            return Err(StatsError::BadParameter { name: "q", value: q });
        }
        let n = self.sorted.len();
        if q <= 0.0 {
            return Ok(self.sorted[0]);
        }
        let rank = (q * n as f64).ceil() as usize;
        Ok(self.sorted[rank.min(n) - 1])
    }

    /// The upper-tail quantile: the smallest value v such that
    /// `P[X > v] <= p`. This is the threshold primitive: all samples above
    /// `upper_quantile(p)` form (at most) the top p-fraction.
    pub fn upper_quantile(&self, p: f64) -> Result<f64, StatsError> {
        self.quantile(1.0 - p)
    }

    /// Minimum sample.
    pub fn min(&self) -> f64 {
        self.sorted[0]
    }

    /// Maximum sample.
    pub fn max(&self) -> f64 {
        *self.sorted.last().expect("non-empty by construction")
    }

    /// Log–log complementary distribution points `(log10 x, log10 P[X>x])`
    /// over the distinct positive sample values, excluding the maximum
    /// (whose CCDF is 0). This is the plot the aest estimator inspects.
    pub fn log_log_ccdf(&self) -> Vec<(f64, f64)> {
        let n = self.sorted.len() as f64;
        let mut points = Vec::new();
        let mut i = 0;
        while i < self.sorted.len() {
            let x = self.sorted[i];
            // advance to the last duplicate
            let mut j = i;
            while j + 1 < self.sorted.len() && self.sorted[j + 1] == x {
                j += 1;
            }
            let above = self.sorted.len() - j - 1;
            if x > 0.0 && above > 0 {
                points.push(((x).log10(), (above as f64 / n).log10()));
            }
            i = j + 1;
        }
        points
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ecdf(v: &[f64]) -> Ecdf {
        Ecdf::new(v.to_vec()).unwrap()
    }

    #[test]
    fn rejects_empty_and_nan() {
        assert!(matches!(
            Ecdf::new(vec![]),
            Err(StatsError::NotEnoughSamples { .. })
        ));
        assert!(Ecdf::new(vec![1.0, f64::NAN]).is_err());
    }

    #[test]
    fn cdf_step_function() {
        let e = ecdf(&[1.0, 2.0, 3.0, 4.0]);
        assert_eq!(e.cdf(0.5), 0.0);
        assert_eq!(e.cdf(1.0), 0.25);
        assert_eq!(e.cdf(2.5), 0.5);
        assert_eq!(e.cdf(4.0), 1.0);
        assert_eq!(e.cdf(100.0), 1.0);
    }

    #[test]
    fn ccdf_complements_cdf() {
        let e = ecdf(&[1.0, 2.0, 3.0, 4.0]);
        for x in [0.0, 1.0, 2.5, 4.0, 9.0] {
            assert!((e.cdf(x) + e.ccdf(x) - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn quantiles_nearest_rank() {
        let e = ecdf(&[10.0, 20.0, 30.0, 40.0, 50.0]);
        assert_eq!(e.quantile(0.0).unwrap(), 10.0);
        assert_eq!(e.quantile(0.2).unwrap(), 10.0);
        assert_eq!(e.quantile(0.21).unwrap(), 20.0);
        assert_eq!(e.quantile(0.5).unwrap(), 30.0);
        assert_eq!(e.quantile(1.0).unwrap(), 50.0);
        assert!(e.quantile(1.5).is_err());
        assert!(e.quantile(-0.1).is_err());
    }

    #[test]
    fn upper_quantile_bounds_tail_mass() {
        let e = ecdf(&(1..=100).map(f64::from).collect::<Vec<_>>());
        let t = e.upper_quantile(0.1).unwrap();
        assert_eq!(t, 90.0);
        assert!(e.ccdf(t) <= 0.1 + 1e-12);
    }

    #[test]
    fn duplicates_handled() {
        let e = ecdf(&[5.0, 5.0, 5.0, 10.0]);
        assert_eq!(e.cdf(5.0), 0.75);
        assert_eq!(e.ccdf(5.0), 0.25);
        assert_eq!(e.quantile(0.5).unwrap(), 5.0);
    }

    #[test]
    fn log_log_ccdf_points() {
        let e = ecdf(&[1.0, 10.0, 100.0, 1000.0]);
        let pts = e.log_log_ccdf();
        // 1000 excluded (ccdf = 0); 1, 10, 100 present.
        assert_eq!(pts.len(), 3);
        assert!((pts[0].0 - 0.0).abs() < 1e-12);
        assert!((pts[0].1 - (0.75f64).log10()).abs() < 1e-12);
        assert!((pts[2].0 - 2.0).abs() < 1e-12);
        assert!((pts[2].1 - (0.25f64).log10()).abs() < 1e-12);
    }

    #[test]
    fn log_log_ccdf_skips_nonpositive_x() {
        let e = ecdf(&[-1.0, 0.0, 1.0, 2.0]);
        let pts = e.log_log_ccdf();
        assert_eq!(pts.len(), 1); // only x = 1 (x = 2 is the max)
        assert!((pts[0].0 - 0.0).abs() < 1e-12);
    }

    #[test]
    fn min_max() {
        let e = ecdf(&[3.0, 1.0, 2.0]);
        assert_eq!(e.min(), 1.0);
        assert_eq!(e.max(), 3.0);
        assert_eq!(e.len(), 3);
    }

    #[test]
    fn pareto_ccdf_is_linear_in_log_log() {
        // Deterministic Pareto-like grid: x_i = (1 - u_i)^(-1/α), α = 1.5.
        let alpha = 1.5;
        let n = 10_000;
        let samples: Vec<f64> = (0..n)
            .map(|i| {
                let u = (i as f64 + 0.5) / n as f64;
                (1.0 - u).powf(-1.0 / alpha)
            })
            .collect();
        let e = Ecdf::new(samples).unwrap();
        let pts = e.log_log_ccdf();
        // Fit a line through the middle of the tail; slope should be ≈ -α.
        let tail: Vec<(f64, f64)> = pts
            .iter()
            .copied()
            .filter(|(lx, _)| *lx > 0.3 && *lx < 1.5)
            .collect();
        let fit = crate::LinearFit::fit(&tail).unwrap();
        assert!(
            (fit.slope + alpha).abs() < 0.05,
            "slope {} vs -{}",
            fit.slope,
            alpha
        );
    }
}
