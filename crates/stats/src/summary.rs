//! Streaming summary statistics.

/// Single-pass accumulator for mean, variance, extrema and totals,
/// using Welford's algorithm for numerical stability.
#[derive(Debug, Clone, Copy, Default)]
pub struct Summary {
    count: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
    sum: f64,
}

impl Summary {
    /// Fresh accumulator.
    pub fn new() -> Self {
        Summary {
            count: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
            sum: 0.0,
        }
    }

    /// Accumulate all values of a slice.
    pub fn of(values: &[f64]) -> Self {
        let mut s = Self::new();
        for &v in values {
            s.push(v);
        }
        s
    }

    /// Add one observation.
    pub fn push(&mut self, x: f64) {
        self.count += 1;
        self.sum += x;
        let delta = x - self.mean;
        self.mean += delta / self.count as f64;
        self.m2 += delta * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Merge another accumulator into this one (parallel reduction).
    pub fn merge(&mut self, other: &Summary) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = *other;
            return;
        }
        let n1 = self.count as f64;
        let n2 = other.count as f64;
        let delta = other.mean - self.mean;
        let total = n1 + n2;
        self.mean += delta * n2 / total;
        self.m2 += other.m2 + delta * delta * n1 * n2 / total;
        self.count += other.count;
        self.sum += other.sum;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Arithmetic mean; 0 for an empty accumulator.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Sum of all observations.
    pub fn sum(&self) -> f64 {
        self.sum
    }

    /// Population variance; 0 with fewer than two observations.
    pub fn variance(&self) -> f64 {
        if self.count < 2 {
            0.0
        } else {
            self.m2 / self.count as f64
        }
    }

    /// Sample (Bessel-corrected) variance.
    pub fn sample_variance(&self) -> f64 {
        if self.count < 2 {
            0.0
        } else {
            self.m2 / (self.count - 1) as f64
        }
    }

    /// Population standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Smallest observation; `None` when empty.
    pub fn min(&self) -> Option<f64> {
        (self.count > 0).then_some(self.min)
    }

    /// Largest observation; `None` when empty.
    pub fn max(&self) -> Option<f64> {
        (self.count > 0).then_some(self.max)
    }

    /// Coefficient of variation (σ/μ); `None` when the mean is zero.
    pub fn cv(&self) -> Option<f64> {
        if self.mean().abs() < f64::EPSILON {
            None
        } else {
            Some(self.std_dev() / self.mean())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn close(a: f64, b: f64) -> bool {
        (a - b).abs() < 1e-9
    }

    #[test]
    fn empty_summary() {
        let s = Summary::new();
        assert_eq!(s.count(), 0);
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.variance(), 0.0);
        assert_eq!(s.min(), None);
        assert_eq!(s.max(), None);
        assert_eq!(s.cv(), None);
    }

    #[test]
    fn known_values() {
        let s = Summary::of(&[2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]);
        assert_eq!(s.count(), 8);
        assert!(close(s.mean(), 5.0));
        assert!(close(s.variance(), 4.0)); // classic example: σ = 2
        assert!(close(s.std_dev(), 2.0));
        assert_eq!(s.min(), Some(2.0));
        assert_eq!(s.max(), Some(9.0));
        assert!(close(s.sum(), 40.0));
        assert!(close(s.cv().unwrap(), 0.4));
    }

    #[test]
    fn single_value() {
        let s = Summary::of(&[3.5]);
        assert_eq!(s.mean(), 3.5);
        assert_eq!(s.variance(), 0.0);
        assert_eq!(s.min(), Some(3.5));
        assert_eq!(s.max(), Some(3.5));
    }

    #[test]
    fn merge_equals_sequential() {
        let data: Vec<f64> = (0..100).map(|i| (i as f64).sin() * 10.0 + 5.0).collect();
        let whole = Summary::of(&data);
        let mut merged = Summary::of(&data[..37]);
        merged.merge(&Summary::of(&data[37..]));
        assert!(close(whole.mean(), merged.mean()));
        assert!((whole.variance() - merged.variance()).abs() < 1e-9);
        assert_eq!(whole.count(), merged.count());
        assert_eq!(whole.min(), merged.min());
        assert_eq!(whole.max(), merged.max());
    }

    #[test]
    fn merge_with_empty_is_identity() {
        let mut s = Summary::of(&[1.0, 2.0]);
        let snapshot = s;
        s.merge(&Summary::new());
        assert!(close(s.mean(), snapshot.mean()));
        let mut e = Summary::new();
        e.merge(&snapshot);
        assert!(close(e.mean(), snapshot.mean()));
        assert_eq!(e.count(), 2);
    }

    #[test]
    fn stable_for_large_offsets() {
        // Welford must not lose precision with a large common offset.
        let s = Summary::of(&[1e9 + 4.0, 1e9 + 7.0, 1e9 + 13.0, 1e9 + 16.0]);
        assert!(close(s.mean(), 1e9 + 10.0));
        assert!(close(s.sample_variance(), 30.0));
    }
}
