//! The Hill tail-index estimator.

use crate::StatsError;

/// Hill's estimator of the tail index α over the top `k` order statistics.
///
/// For samples `x_(1) ≥ x_(2) ≥ … ≥ x_(n)`:
/// `α̂ = k / Σ_{i=1..k} ln(x_(i) / x_(k+1))`.
///
/// A classical benchmark for the aest estimator; unlike aest it requires
/// choosing `k` and assumes the top-k region is already in the power law.
pub fn hill_estimator(samples: &[f64], k: usize) -> Result<f64, StatsError> {
    if k == 0 || samples.len() < k + 1 {
        return Err(StatsError::NotEnoughSamples {
            needed: k + 1,
            got: samples.len(),
        });
    }
    let mut sorted: Vec<f64> = samples.to_vec();
    sorted.sort_by(|a, b| b.partial_cmp(a).unwrap_or(std::cmp::Ordering::Equal));
    let pivot = sorted[k];
    if pivot <= 0.0 {
        return Err(StatsError::NonPositiveSample(pivot));
    }
    let sum: f64 = sorted[..k].iter().map(|x| (x / pivot).ln()).sum();
    if sum <= 0.0 {
        // All top-k equal to the pivot: no tail information.
        return Err(StatsError::NoTailFound);
    }
    Ok(k as f64 / sum)
}

/// The Hill plot: `(k, α̂(k))` for k in `[k_min, k_max]`.
///
/// Inspecting where the plot flattens is the traditional way of choosing
/// `k`; the ablation benches use it to sanity-check aest's α̂.
pub fn hill_plot(
    samples: &[f64],
    k_min: usize,
    k_max: usize,
) -> Result<Vec<(usize, f64)>, StatsError> {
    if k_min == 0 || k_max < k_min {
        return Err(StatsError::BadParameter {
            name: "k_range",
            value: k_min as f64,
        });
    }
    if samples.len() < k_max + 1 {
        return Err(StatsError::NotEnoughSamples {
            needed: k_max + 1,
            got: samples.len(),
        });
    }
    let mut sorted: Vec<f64> = samples.to_vec();
    sorted.sort_by(|a, b| b.partial_cmp(a).unwrap_or(std::cmp::Ordering::Equal));
    let mut out = Vec::with_capacity(k_max - k_min + 1);
    // Incremental log-sums keep the plot O(n log n + k_max).
    let mut log_sum = 0.0;
    for i in 0..k_max {
        if sorted[i] <= 0.0 {
            return Err(StatsError::NonPositiveSample(sorted[i]));
        }
        log_sum += sorted[i].ln();
        let k = i + 1;
        if k >= k_min {
            let pivot = sorted[k];
            if pivot <= 0.0 {
                return Err(StatsError::NonPositiveSample(pivot));
            }
            let denom = log_sum - k as f64 * pivot.ln();
            if denom > 0.0 {
                out.push((k, k as f64 / denom));
            }
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dist::{Pareto, Sample};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn pareto_samples(alpha: f64, n: usize) -> Vec<f64> {
        let mut rng = StdRng::seed_from_u64(42);
        let d = Pareto::new(1.0, alpha).unwrap();
        (0..n).map(|_| d.sample(&mut rng)).collect()
    }

    #[test]
    fn recovers_pareto_alpha() {
        for alpha in [0.8, 1.2, 1.8] {
            let xs = pareto_samples(alpha, 50_000);
            let est = hill_estimator(&xs, 2_000).unwrap();
            assert!(
                (est - alpha).abs() / alpha < 0.1,
                "alpha {alpha}: estimate {est}"
            );
        }
    }

    #[test]
    fn plot_flattens_for_pure_pareto() {
        let xs = pareto_samples(1.5, 50_000);
        let plot = hill_plot(&xs, 500, 2_000).unwrap();
        // Every point in this range should be near the true α.
        for (k, a) in &plot {
            assert!((a - 1.5).abs() < 0.3, "k={k} alpha={a}");
        }
    }

    #[test]
    fn input_validation() {
        assert!(matches!(
            hill_estimator(&[1.0, 2.0], 5),
            Err(StatsError::NotEnoughSamples { .. })
        ));
        assert!(matches!(
            hill_estimator(&[1.0, 2.0, 3.0], 0),
            Err(StatsError::NotEnoughSamples { .. })
        ));
        assert!(matches!(
            hill_estimator(&[0.0, 0.0, 0.0, 0.0], 2),
            Err(StatsError::NonPositiveSample(_)) | Err(StatsError::NoTailFound)
        ));
        assert!(hill_plot(&[1.0; 10], 0, 5).is_err());
        assert!(hill_plot(&[1.0; 10], 5, 3).is_err());
        assert!(matches!(
            hill_plot(&[1.0; 4], 1, 5),
            Err(StatsError::NotEnoughSamples { .. })
        ));
    }

    #[test]
    fn constant_samples_have_no_tail() {
        assert!(matches!(
            hill_estimator(&[7.0; 100], 10),
            Err(StatsError::NoTailFound)
        ));
    }

    #[test]
    fn plot_matches_pointwise_estimator() {
        let xs = pareto_samples(1.3, 5_000);
        let plot = hill_plot(&xs, 100, 200).unwrap();
        for (k, a) in plot {
            let direct = hill_estimator(&xs, k).unwrap();
            assert!((a - direct).abs() < 1e-9, "k={k}");
        }
    }
}
