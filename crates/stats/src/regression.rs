//! Ordinary least squares on (x, y) pairs.

use crate::StatsError;

/// A fitted line `y = intercept + slope·x` with its coefficient of
/// determination.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LinearFit {
    /// Slope of the fitted line.
    pub slope: f64,
    /// Intercept of the fitted line.
    pub intercept: f64,
    /// Coefficient of determination R² ∈ [0, 1].
    pub r2: f64,
}

impl LinearFit {
    /// Least-squares fit over at least two points with distinct x values.
    pub fn fit(points: &[(f64, f64)]) -> Result<Self, StatsError> {
        if points.len() < 2 {
            return Err(StatsError::NotEnoughSamples {
                needed: 2,
                got: points.len(),
            });
        }
        let n = points.len() as f64;
        let mean_x = points.iter().map(|(x, _)| x).sum::<f64>() / n;
        let mean_y = points.iter().map(|(_, y)| y).sum::<f64>() / n;
        let mut sxx = 0.0;
        let mut sxy = 0.0;
        let mut syy = 0.0;
        for (x, y) in points {
            let dx = x - mean_x;
            let dy = y - mean_y;
            sxx += dx * dx;
            sxy += dx * dy;
            syy += dy * dy;
        }
        if sxx == 0.0 {
            return Err(StatsError::BadParameter {
                name: "x-variance",
                value: 0.0,
            });
        }
        let slope = sxy / sxx;
        let intercept = mean_y - slope * mean_x;
        let r2 = if syy == 0.0 {
            1.0 // all residuals zero on a flat line
        } else {
            (sxy * sxy) / (sxx * syy)
        };
        Ok(LinearFit { slope, intercept, r2 })
    }

    /// Evaluate the fitted line at `x`.
    pub fn predict(&self, x: f64) -> f64 {
        self.intercept + self.slope * x
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_line_recovered() {
        let pts: Vec<(f64, f64)> = (0..10).map(|i| (i as f64, 3.0 - 2.0 * i as f64)).collect();
        let fit = LinearFit::fit(&pts).unwrap();
        assert!((fit.slope + 2.0).abs() < 1e-12);
        assert!((fit.intercept - 3.0).abs() < 1e-12);
        assert!((fit.r2 - 1.0).abs() < 1e-12);
        assert!((fit.predict(100.0) + 197.0).abs() < 1e-9);
    }

    #[test]
    fn noisy_line_approximate() {
        let pts: Vec<(f64, f64)> = (0..100)
            .map(|i| {
                let x = i as f64 / 10.0;
                // deterministic "noise" with zero-ish mean
                let noise = ((i * 37) % 7) as f64 / 7.0 - 0.5;
                (x, 1.0 + 0.5 * x + 0.1 * noise)
            })
            .collect();
        let fit = LinearFit::fit(&pts).unwrap();
        assert!((fit.slope - 0.5).abs() < 0.02);
        assert!((fit.intercept - 1.0).abs() < 0.05);
        assert!(fit.r2 > 0.99);
    }

    #[test]
    fn flat_line_r2_is_one() {
        let pts = [(0.0, 5.0), (1.0, 5.0), (2.0, 5.0)];
        let fit = LinearFit::fit(&pts).unwrap();
        assert_eq!(fit.slope, 0.0);
        assert_eq!(fit.intercept, 5.0);
        assert_eq!(fit.r2, 1.0);
    }

    #[test]
    fn degenerate_inputs_rejected() {
        assert!(matches!(
            LinearFit::fit(&[(1.0, 2.0)]),
            Err(StatsError::NotEnoughSamples { .. })
        ));
        assert!(matches!(
            LinearFit::fit(&[(1.0, 2.0), (1.0, 3.0)]),
            Err(StatsError::BadParameter { .. })
        ));
    }

    #[test]
    fn uncorrelated_r2_near_zero() {
        // Symmetric V shape: slope ≈ 0 and R² ≈ 0.
        let pts = [(-2.0, 4.0), (-1.0, 1.0), (0.0, 0.0), (1.0, 1.0), (2.0, 4.0)];
        let fit = LinearFit::fit(&pts).unwrap();
        assert!(fit.slope.abs() < 1e-12);
        assert!(fit.r2 < 1e-12);
    }
}
