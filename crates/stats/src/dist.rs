//! Inverse-transform samplers for the distributions the workload model
//! needs.
//!
//! `rand`'s companion crate `rand_distr` is not part of this project's
//! dependency budget, so the handful of distributions we need are
//! implemented directly: each sampler documents its inverse-CDF (or
//! Box–Muller) derivation and is validated against analytic moments in the
//! tests. All samplers are generic over `rand::Rng`.

use rand::Rng;

use crate::StatsError;

/// Sample from a distribution using the supplied RNG.
pub trait Sample {
    /// Draw one value.
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64;
}

/// Pareto (power-law) distribution: `P[X > x] = (xm/x)^α` for `x ≥ xm`.
///
/// The flow-bandwidth distribution the paper observes on OC-12 links is
/// heavy-tailed; Pareto is its canonical model. Infinite variance for
/// α ≤ 2, infinite mean for α ≤ 1.
#[derive(Debug, Clone, Copy)]
pub struct Pareto {
    xm: f64,
    alpha: f64,
}

impl Pareto {
    /// Create with scale `xm > 0` and shape `alpha > 0`.
    pub fn new(xm: f64, alpha: f64) -> Result<Self, StatsError> {
        if !(xm > 0.0) {
            return Err(StatsError::BadParameter { name: "xm", value: xm });
        }
        if !(alpha > 0.0) {
            return Err(StatsError::BadParameter {
                name: "alpha",
                value: alpha,
            });
        }
        Ok(Pareto { xm, alpha })
    }

    /// The tail index α.
    pub fn alpha(&self) -> f64 {
        self.alpha
    }

    /// The scale (minimum value) xm.
    pub fn xm(&self) -> f64 {
        self.xm
    }

    /// Analytic mean (for α > 1).
    pub fn mean(&self) -> Option<f64> {
        (self.alpha > 1.0).then(|| self.alpha * self.xm / (self.alpha - 1.0))
    }
}

impl Sample for Pareto {
    /// Inverse CDF: `x = xm · u^(−1/α)` for `u ~ U(0,1]`.
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        // gen::<f64>() yields [0,1); map to (0,1] to avoid u = 0.
        let u = 1.0 - rng.gen::<f64>();
        self.xm * u.powf(-1.0 / self.alpha)
    }
}

/// Bounded Pareto on `[lo, hi]` — Pareto conditioned to a finite range,
/// used where a hard cap exists physically (a flow cannot exceed link
/// capacity).
#[derive(Debug, Clone, Copy)]
pub struct BoundedPareto {
    lo: f64,
    hi: f64,
    alpha: f64,
}

impl BoundedPareto {
    /// Create with `0 < lo < hi` and shape `alpha > 0`.
    pub fn new(lo: f64, hi: f64, alpha: f64) -> Result<Self, StatsError> {
        if !(lo > 0.0) {
            return Err(StatsError::BadParameter { name: "lo", value: lo });
        }
        if !(hi > lo) {
            return Err(StatsError::BadParameter { name: "hi", value: hi });
        }
        if !(alpha > 0.0) {
            return Err(StatsError::BadParameter {
                name: "alpha",
                value: alpha,
            });
        }
        Ok(BoundedPareto { lo, hi, alpha })
    }
}

impl Sample for BoundedPareto {
    /// Inverse CDF of the truncated Pareto:
    /// `x = (−(u·hi^α − u·lo^α − hi^α) / (hi^α·lo^α))^(−1/α)`
    /// (standard bounded-Pareto form, e.g. Crovella's workload generators).
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        let u: f64 = rng.gen();
        let la = self.lo.powf(self.alpha);
        let ha = self.hi.powf(self.alpha);
        let x = -(u * ha - u * la - ha) / (ha * la);
        x.powf(-1.0 / self.alpha)
    }
}

/// Exponential distribution with rate λ.
#[derive(Debug, Clone, Copy)]
pub struct Exp {
    lambda: f64,
}

impl Exp {
    /// Create with rate `lambda > 0`.
    pub fn new(lambda: f64) -> Result<Self, StatsError> {
        if !(lambda > 0.0) {
            return Err(StatsError::BadParameter {
                name: "lambda",
                value: lambda,
            });
        }
        Ok(Exp { lambda })
    }

    /// Analytic mean 1/λ.
    pub fn mean(&self) -> f64 {
        1.0 / self.lambda
    }
}

impl Sample for Exp {
    /// Inverse CDF: `x = −ln(u)/λ`.
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        let u = 1.0 - rng.gen::<f64>();
        -u.ln() / self.lambda
    }
}

/// Log-normal distribution: `ln X ~ N(mu, sigma²)`.
///
/// The "body" of flow-bandwidth distributions (the mice) is well described
/// by a log-normal; the workload model mixes it with a Pareto tail.
#[derive(Debug, Clone, Copy)]
pub struct LogNormal {
    mu: f64,
    sigma: f64,
}

impl LogNormal {
    /// Create with log-mean `mu` and log-std `sigma > 0`.
    pub fn new(mu: f64, sigma: f64) -> Result<Self, StatsError> {
        if !(sigma > 0.0) {
            return Err(StatsError::BadParameter {
                name: "sigma",
                value: sigma,
            });
        }
        Ok(LogNormal { mu, sigma })
    }

    /// Analytic mean `exp(mu + sigma²/2)`.
    pub fn mean(&self) -> f64 {
        (self.mu + self.sigma * self.sigma / 2.0).exp()
    }

    /// Analytic median `exp(mu)`.
    pub fn median(&self) -> f64 {
        self.mu.exp()
    }
}

/// Draw one standard normal via Box–Muller.
pub fn standard_normal<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    let u1 = 1.0 - rng.gen::<f64>(); // (0,1]
    let u2: f64 = rng.gen();
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

impl Sample for LogNormal {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        (self.mu + self.sigma * standard_normal(rng)).exp()
    }
}

/// Weibull distribution with scale λ and shape k.
///
/// Used for on/off period durations: k < 1 gives the long-tailed activity
/// periods seen in flow lifetimes.
#[derive(Debug, Clone, Copy)]
pub struct Weibull {
    lambda: f64,
    k: f64,
}

impl Weibull {
    /// Create with scale `lambda > 0` and shape `k > 0`.
    pub fn new(lambda: f64, k: f64) -> Result<Self, StatsError> {
        if !(lambda > 0.0) {
            return Err(StatsError::BadParameter {
                name: "lambda",
                value: lambda,
            });
        }
        if !(k > 0.0) {
            return Err(StatsError::BadParameter { name: "k", value: k });
        }
        Ok(Weibull { lambda, k })
    }
}

impl Sample for Weibull {
    /// Inverse CDF: `x = λ·(−ln u)^(1/k)`.
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        let u = 1.0 - rng.gen::<f64>();
        self.lambda * (-u.ln()).powf(1.0 / self.k)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(0x5EED)
    }

    fn draw<D: Sample>(d: &D, n: usize) -> Vec<f64> {
        let mut r = rng();
        (0..n).map(|_| d.sample(&mut r)).collect()
    }

    #[test]
    fn pareto_respects_scale_and_mean() {
        let d = Pareto::new(2.0, 3.0).unwrap();
        let xs = draw(&d, 200_000);
        assert!(xs.iter().all(|&x| x >= 2.0));
        let mean = xs.iter().sum::<f64>() / xs.len() as f64;
        let want = d.mean().unwrap(); // 3·2/2 = 3
        assert!((mean - want).abs() / want < 0.02, "mean {mean} vs {want}");
    }

    #[test]
    fn pareto_tail_mass_matches_ccdf() {
        let d = Pareto::new(1.0, 1.5).unwrap();
        let xs = draw(&d, 200_000);
        // P[X > 10] = 10^-1.5 ≈ 0.0316
        let frac = xs.iter().filter(|&&x| x > 10.0).count() as f64 / xs.len() as f64;
        assert!((frac - 10f64.powf(-1.5)).abs() < 0.003, "tail mass {frac}");
    }

    #[test]
    fn bounded_pareto_stays_in_range() {
        let d = BoundedPareto::new(1.0, 100.0, 1.2).unwrap();
        let xs = draw(&d, 50_000);
        assert!(xs.iter().all(|&x| (1.0..=100.0).contains(&x)));
        // Most mass near the bottom for a heavy-tail shape.
        let below_10 = xs.iter().filter(|&&x| x < 10.0).count() as f64 / xs.len() as f64;
        assert!(below_10 > 0.8, "bottom-decade mass {below_10}");
    }

    #[test]
    fn exponential_moments() {
        let d = Exp::new(0.25).unwrap();
        let xs = draw(&d, 200_000);
        let mean = xs.iter().sum::<f64>() / xs.len() as f64;
        assert!((mean - 4.0).abs() < 0.1, "mean {mean}");
        assert!(xs.iter().all(|&x| x >= 0.0));
    }

    #[test]
    fn lognormal_median_and_mean() {
        let d = LogNormal::new(1.0, 0.5).unwrap();
        let mut xs = draw(&d, 200_000);
        xs.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let median = xs[xs.len() / 2];
        assert!((median - d.median()).abs() / d.median() < 0.02, "median {median}");
        let mean = xs.iter().sum::<f64>() / xs.len() as f64;
        assert!((mean - d.mean()).abs() / d.mean() < 0.02, "mean {mean}");
    }

    #[test]
    fn weibull_shape_one_is_exponential() {
        let d = Weibull::new(2.0, 1.0).unwrap();
        let xs = draw(&d, 200_000);
        let mean = xs.iter().sum::<f64>() / xs.len() as f64;
        assert!((mean - 2.0).abs() < 0.05, "mean {mean}"); // Γ(2) = 1 → mean = λ
    }

    #[test]
    fn standard_normal_moments() {
        let mut r = rng();
        let xs: Vec<f64> = (0..200_000).map(|_| standard_normal(&mut r)).collect();
        let mean = xs.iter().sum::<f64>() / xs.len() as f64;
        let var = xs.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / xs.len() as f64;
        assert!(mean.abs() < 0.01, "mean {mean}");
        assert!((var - 1.0).abs() < 0.02, "var {var}");
    }

    #[test]
    fn parameter_validation() {
        assert!(Pareto::new(0.0, 1.0).is_err());
        assert!(Pareto::new(1.0, 0.0).is_err());
        assert!(BoundedPareto::new(0.0, 1.0, 1.0).is_err());
        assert!(BoundedPareto::new(2.0, 1.0, 1.0).is_err());
        assert!(BoundedPareto::new(1.0, 2.0, 0.0).is_err());
        assert!(Exp::new(0.0).is_err());
        assert!(LogNormal::new(0.0, 0.0).is_err());
        assert!(Weibull::new(0.0, 1.0).is_err());
        assert!(Weibull::new(1.0, 0.0).is_err());
    }

    #[test]
    fn deterministic_under_fixed_seed() {
        let d = Pareto::new(1.0, 1.5).unwrap();
        let a = draw(&d, 10);
        let b = draw(&d, 10);
        assert_eq!(a, b);
    }
}
