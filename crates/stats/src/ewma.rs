//! Exponentially weighted moving average — the paper's threshold update.

use crate::StatsError;

/// The smoothing rule of the paper's §II:
/// `T̄(n+1) = γ·T̄(n) + (1−γ)·T(n)`, with γ = 0.9 reported as
/// "sufficiently smooth".
///
/// The first observation initialises the average (no bias toward zero).
#[derive(Debug, Clone, Copy)]
pub struct Ewma {
    gamma: f64,
    current: Option<f64>,
}

impl Ewma {
    /// Create a smoother with memory γ ∈ [0, 1). γ = 0 reproduces the raw
    /// input (no smoothing); γ → 1 freezes the initial value.
    pub fn new(gamma: f64) -> Result<Self, StatsError> {
        if !(0.0..1.0).contains(&gamma) {
            return Err(StatsError::BadParameter {
                name: "gamma",
                value: gamma,
            });
        }
        Ok(Ewma {
            gamma,
            current: None,
        })
    }

    /// The paper's default, γ = 0.9.
    pub fn paper_default() -> Self {
        Ewma {
            gamma: 0.9,
            current: None,
        }
    }

    /// The memory parameter γ.
    pub fn gamma(&self) -> f64 {
        self.gamma
    }

    /// Feed one observation, returning the updated smoothed value.
    pub fn update(&mut self, x: f64) -> f64 {
        let next = match self.current {
            None => x,
            Some(prev) => self.gamma * prev + (1.0 - self.gamma) * x,
        };
        self.current = Some(next);
        next
    }

    /// Current smoothed value; `None` before any observation.
    pub fn value(&self) -> Option<f64> {
        self.current
    }

    /// Reset to the pre-observation state.
    pub fn reset(&mut self) {
        self.current = None;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn first_observation_initialises() {
        let mut e = Ewma::new(0.9).unwrap();
        assert_eq!(e.value(), None);
        assert_eq!(e.update(10.0), 10.0);
        assert_eq!(e.value(), Some(10.0));
    }

    #[test]
    fn paper_update_rule() {
        let mut e = Ewma::paper_default();
        e.update(100.0);
        // T̄ = 0.9·100 + 0.1·200 = 110
        assert!((e.update(200.0) - 110.0).abs() < 1e-12);
        // T̄ = 0.9·110 + 0.1·0 = 99
        assert!((e.update(0.0) - 99.0).abs() < 1e-12);
    }

    #[test]
    fn gamma_zero_is_identity() {
        let mut e = Ewma::new(0.0).unwrap();
        for x in [5.0, -3.0, 42.0] {
            assert_eq!(e.update(x), x);
        }
    }

    #[test]
    fn invalid_gamma_rejected() {
        assert!(Ewma::new(1.0).is_err());
        assert!(Ewma::new(-0.1).is_err());
        assert!(Ewma::new(1.5).is_err());
        assert!(Ewma::new(0.999).is_ok());
    }

    #[test]
    fn converges_to_constant_input() {
        let mut e = Ewma::new(0.9).unwrap();
        e.update(0.0);
        let mut last = 0.0;
        for _ in 0..500 {
            last = e.update(7.0);
        }
        assert!((last - 7.0).abs() < 1e-9);
    }

    #[test]
    fn smoothing_reduces_variance() {
        // Alternating ±1 input: smoothed sequence must have much smaller
        // swing than the raw input.
        let mut e = Ewma::new(0.9).unwrap();
        e.update(0.0);
        let mut min = f64::INFINITY;
        let mut max = f64::NEG_INFINITY;
        for i in 0..200 {
            let x = if i % 2 == 0 { 1.0 } else { -1.0 };
            let v = e.update(x);
            if i > 50 {
                min = min.min(v);
                max = max.max(v);
            }
        }
        assert!(max - min < 0.25, "swing {} too large", max - min);
    }

    #[test]
    fn reset_clears_state() {
        let mut e = Ewma::paper_default();
        e.update(3.0);
        e.reset();
        assert_eq!(e.value(), None);
        assert_eq!(e.update(8.0), 8.0);
    }
}
