//! Statistics substrate for the backbone-elephants reproduction.
//!
//! The paper's "aest" threshold detector places the elephant/mouse
//! separation at the onset of the power-law tail of the per-interval
//! flow-bandwidth distribution, using the Crovella–Taqqu scaling estimator
//! \[1\]. That estimator — and everything needed around it — lives here:
//!
//! * [`Ecdf`] — empirical CDF/CCDF with quantiles and log–log tail points;
//! * [`Summary`] — streaming moments (mean/variance/min/max);
//! * [`Histogram`] / [`LogHistogram`] — linear- and log-binned counts
//!   (Figure 1(c) is a log-count histogram);
//! * [`LinearFit`] — ordinary least squares, used for local slopes of
//!   log–log CCDFs;
//! * [`Ewma`] — the exponentially weighted threshold update
//!   `T̄(n+1) = γ·T̄(n) + (1−γ)·T(n)` of the paper's §II;
//! * [`hill_estimator`] — the classical Hill tail-index estimator
//!   (cross-check for aest);
//! * [`aest`] — the Crovella–Taqqu scaling estimator: tail index α̂ plus
//!   the **tail-onset point** the paper uses as its threshold;
//! * [`dist`] — inverse-transform samplers (Pareto, bounded Pareto,
//!   exponential, log-normal, Weibull) for workload synthesis and for
//!   validating the estimators against known ground truth;
//! * [`SetAccuracy`] — recall / precision / byte-coverage of an
//!   approximate elephant set against the exact oracle's, the scoring
//!   behind the sketch-tier evaluation.
//!
//! \[1\] M. Crovella, M. Taqqu. *Estimating the Heavy Tail Index from
//! Scaling Properties.* Methodology and Computing in Applied Probability,
//! 1999.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod accuracy;
mod aest;
pub mod dist;
mod ecdf;
mod error;
mod ewma;
mod hill;
mod histogram;
mod regression;
mod summary;

pub use accuracy::SetAccuracy;
pub use aest::{aest, AestConfig, AestResult, PairDiagnostic};
pub use ecdf::Ecdf;
pub use error::StatsError;
pub use ewma::Ewma;
pub use hill::{hill_estimator, hill_plot};
pub use histogram::{Histogram, LogHistogram};
pub use regression::LinearFit;
pub use summary::Summary;
