//! Diagnostic dump of aest probe decisions (development aid).

use eleph_stats::dist::{LogNormal, Pareto, Sample};
use eleph_stats::{aest, AestConfig};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn dump(name: &str, xs: &[f64]) {
    println!("=== {name} ===");
    match aest(xs, &AestConfig::default()) {
        Err(e) => println!("  -> {e}"),
        Ok(res) => {
            println!(
                "  -> alpha {:.3} tail_start {:.3} tail_fraction {:.4} levels {}",
                res.alpha, res.tail_start, res.tail_fraction, res.levels
            );
            let mut by_p: std::collections::BTreeMap<u64, Vec<(usize, f64, f64, bool)>> =
                Default::default();
            for d in &res.diagnostics {
                by_p.entry((d.p * 1e9) as u64).or_default().push((
                    d.level,
                    d.alpha_shift,
                    d.alpha_slope,
                    d.accepted,
                ));
            }
            for (pk, v) in by_p {
                let p = pk as f64 / 1e9;
                let acc = v.iter().filter(|x| x.3).count();
                let marks: Vec<String> = v
                    .iter()
                    .map(|(l, a, s, ok)| {
                        format!("L{l}:{}{:.2}/{:.2}", if *ok { "+" } else { "-" }, a, s)
                    })
                    .collect();
                println!("  p={p:.4} acc={acc}/{} {}", v.len(), marks.join(" "));
            }
        }
    }
}

fn main() {
    let mut rng = StdRng::seed_from_u64(13);
    let body = LogNormal::new(1.0, 0.7).unwrap();
    let tail = Pareto::new(50.0, 1.3).unwrap();
    let xs: Vec<f64> = (0..80_000)
        .map(|i| {
            if i % 10 == 0 {
                tail.sample(&mut rng)
            } else {
                body.sample(&mut rng)
            }
        })
        .collect();
    dump("mixture", &xs);

    let mut rng = StdRng::seed_from_u64(3);
    let p18 = Pareto::new(1.0, 1.8).unwrap();
    let xs: Vec<f64> = (0..60_000).map(|_| p18.sample(&mut rng)).collect();
    dump("pareto 1.8", &xs);
}
