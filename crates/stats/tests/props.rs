//! Property tests for the statistics substrate.

use eleph_stats::{Ecdf, Ewma, Histogram, LinearFit, LogHistogram, Summary};
use proptest::prelude::*;

fn finite_samples() -> impl Strategy<Value = Vec<f64>> {
    prop::collection::vec(-1e6..1e6f64, 1..300)
}

proptest! {
    #[test]
    fn cdf_is_monotone_and_bounded(samples in finite_samples(), probes in prop::collection::vec(-1e6..1e6f64, 2..40)) {
        let e = Ecdf::new(samples).expect("non-empty");
        let mut sorted = probes.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
        let mut last = 0.0;
        for x in sorted {
            let c = e.cdf(x);
            prop_assert!((0.0..=1.0).contains(&c));
            prop_assert!(c >= last - 1e-12);
            prop_assert!((c + e.ccdf(x) - 1.0).abs() < 1e-12);
            last = c;
        }
    }

    #[test]
    fn quantile_inverts_cdf(samples in finite_samples(), q in 0.001..1.0f64) {
        let e = Ecdf::new(samples).expect("non-empty");
        let v = e.quantile(q).expect("q in range");
        // CDF at the q-quantile covers at least q of the mass...
        prop_assert!(e.cdf(v) >= q - 1e-12);
        // ...and the quantile is an actual sample value.
        prop_assert!(e.values().contains(&v));
    }

    #[test]
    fn upper_quantile_bounds_tail(samples in finite_samples(), p in 0.001..0.999f64) {
        let e = Ecdf::new(samples).expect("non-empty");
        let t = e.upper_quantile(p).expect("p in range");
        prop_assert!(e.ccdf(t) <= p + 1e-12);
    }

    #[test]
    fn summary_merge_equals_sequential(samples in finite_samples(), split in any::<prop::sample::Index>()) {
        let at = split.index(samples.len() + 1);
        let whole = Summary::of(&samples);
        let mut merged = Summary::of(&samples[..at]);
        merged.merge(&Summary::of(&samples[at..]));
        prop_assert_eq!(whole.count(), merged.count());
        prop_assert!((whole.mean() - merged.mean()).abs() < 1e-6 * (1.0 + whole.mean().abs()));
        prop_assert!((whole.variance() - merged.variance()).abs() < 1e-4 * (1.0 + whole.variance()));
        prop_assert_eq!(whole.min(), merged.min());
        prop_assert_eq!(whole.max(), merged.max());
    }

    #[test]
    fn summary_mean_within_extrema(samples in finite_samples()) {
        let s = Summary::of(&samples);
        let (min, max) = (s.min().expect("non-empty"), s.max().expect("non-empty"));
        prop_assert!(s.mean() >= min - 1e-9);
        prop_assert!(s.mean() <= max + 1e-9);
        prop_assert!(s.variance() >= 0.0);
    }

    #[test]
    fn ewma_stays_within_input_range(gamma in 0.0..0.999f64, inputs in prop::collection::vec(-1e3..1e3f64, 1..100)) {
        let mut e = Ewma::new(gamma).expect("valid gamma");
        let lo = inputs.iter().cloned().fold(f64::INFINITY, f64::min);
        let hi = inputs.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        for &x in &inputs {
            let v = e.update(x);
            prop_assert!(v >= lo - 1e-9 && v <= hi + 1e-9, "EWMA {v} outside [{lo}, {hi}]");
        }
    }

    #[test]
    fn histogram_conserves_observations(lo in -100.0..0.0f64, width in 1.0..100.0f64, bins in 1usize..30, samples in prop::collection::vec(-1e3..1e3f64, 0..200)) {
        let mut h = Histogram::new(lo, lo + width, bins).expect("valid");
        for &x in &samples {
            h.record(x);
        }
        prop_assert_eq!(h.total() as usize, samples.len());
        let binned: u64 = h.counts().iter().sum();
        prop_assert_eq!(binned + h.underflow() + h.overflow(), h.total());
    }

    #[test]
    fn log_histogram_conserves_observations(samples in prop::collection::vec(-10.0..1e5f64, 0..200)) {
        let mut h = LogHistogram::new(1.0, 10.0, 4).expect("valid");
        for &x in &samples {
            h.record(x);
        }
        prop_assert_eq!(h.total() as usize, samples.len());
    }

    #[test]
    fn linear_fit_recovers_exact_lines(slope in -100.0..100.0f64, intercept in -100.0..100.0f64, n in 3usize..50) {
        let pts: Vec<(f64, f64)> = (0..n).map(|i| {
            let x = i as f64;
            (x, intercept + slope * x)
        }).collect();
        let fit = LinearFit::fit(&pts).expect("distinct x");
        prop_assert!((fit.slope - slope).abs() < 1e-6 * (1.0 + slope.abs()));
        prop_assert!((fit.intercept - intercept).abs() < 1e-5 * (1.0 + intercept.abs()));
        prop_assert!(fit.r2 > 1.0 - 1e-9);
    }

    #[test]
    fn log_log_ccdf_points_are_decreasing(samples in prop::collection::vec(0.001..1e6f64, 2..300)) {
        let e = Ecdf::new(samples).expect("non-empty");
        let pts = e.log_log_ccdf();
        // x strictly increasing, y strictly decreasing (CCDF of distinct
        // values).
        for w in pts.windows(2) {
            prop_assert!(w[1].0 > w[0].0);
            prop_assert!(w[1].1 < w[0].1 + 1e-12);
        }
    }
}
