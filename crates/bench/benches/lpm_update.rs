//! Incremental-update micro-benchmarks for the epoch-swapped LPM: the
//! cost of publishing one delta, a 1k-update batch, and the baseline
//! both replace — refreezing the whole table from scratch. Justifies
//! applying BGP churn as deltas instead of rebuilding the flat table
//! per batch.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use eleph_bench::bench_table;
use eleph_net::{CompressedTrieLpm, EpochLpm, FlatLpm, LpmDelta, Prefix};

const N: usize = 20_000;

fn entries() -> Vec<(Prefix, u32)> {
    bench_table(N)
        .iter()
        .enumerate()
        .map(|(i, e)| (e.prefix, i as u32))
        .collect()
}

fn bench_update(c: &mut Criterion) {
    let entries = entries();
    let mut group = c.benchmark_group("lpm_update");
    group.sample_size(20);

    // One route flap: re-announce a single existing prefix with a new
    // id. Each apply publishes a fresh generation; readers keep their
    // pinned snapshots throughout.
    let table = EpochLpm::from_entries(entries.clone());
    let victim = entries[N / 2].0;
    group.bench_function("single_delta", |b| {
        let mut id = 1_000_000u32;
        b.iter(|| {
            id += 1;
            let applied = table.apply(&[LpmDelta::Announce {
                prefix: black_box(victim),
                id,
            }]);
            black_box(applied.generation)
        })
    });

    // A churn storm: 1k re-announces published as one atomic batch
    // (one generation, one snapshot swap).
    let table = EpochLpm::from_entries(entries.clone());
    let storm: Vec<LpmDelta> = entries
        .iter()
        .step_by(N / 1_000)
        .take(1_000)
        .enumerate()
        .map(|(i, &(prefix, _))| LpmDelta::Announce {
            prefix,
            id: 2_000_000 + i as u32,
        })
        .collect();
    group.bench_function("batch_1k", |b| {
        b.iter(|| {
            let applied = table.apply(black_box(&storm));
            black_box(applied.generation)
        })
    });

    // What the delta path replaces: rebuilding the frozen flat table
    // from the full RIB on every routing change.
    group.bench_function("full_refreeze_flat", |b| {
        b.iter(|| {
            let trie = CompressedTrieLpm::from_entries(black_box(entries.clone()));
            black_box(FlatLpm::from(&trie))
        })
    });

    // And rebuilding the epoch table itself from scratch, for an
    // apples-to-apples same-structure baseline.
    group.bench_function("full_rebuild_epoch", |b| {
        b.iter(|| black_box(EpochLpm::from_entries(black_box(entries.clone()))))
    });

    group.finish();
}

criterion_group!(benches, bench_update);
criterion_main!(benches);
