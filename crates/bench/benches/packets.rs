//! Packet-path throughput: pcap write, pcap read + metadata parse, and
//! the full aggregation pipeline. These bound how fast the system could
//! process a real OC-12 capture.

use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};
use eleph_bench::bench_table;
use eleph_flow::{aggregate_pcap, aggregate_pcap_parallel, aggregate_pcap_parallel_frozen};
use eleph_packet::pcap::PcapReader;
use eleph_packet::{parse_record_meta, LinkType, PacketBuilder};
use eleph_trace::{PacketSynth, RateTrace, WorkloadConfig};

fn sample_trace() -> (eleph_bgp::BgpTable, RateTrace) {
    let table = bench_table(2_000);
    let config = WorkloadConfig {
        n_flows: 120,
        n_intervals: 2,
        interval_secs: 20,
        link: eleph_trace::LinkSpec {
            name: "bench".to_string(),
            capacity_bps: 10_000_000.0,
            target_peak_util: 0.5,
        },
        ..WorkloadConfig::small_test(3)
    };
    let trace = RateTrace::generate(&config, &table);
    (table, trace)
}

fn bench_packet_build_parse(c: &mut Criterion) {
    let bytes = PacketBuilder::tcp()
        .src("10.0.0.1".parse().expect("addr"), 443)
        .dst("192.0.2.9".parse().expect("addr"), 55_000)
        .payload_len(536)
        .build_ipv4();
    let mut group = c.benchmark_group("packet");
    group.throughput(Throughput::Bytes(bytes.len() as u64));
    group.bench_function("build_tcp_576B", |b| {
        b.iter(|| {
            PacketBuilder::tcp()
                .src(black_box("10.0.0.1".parse().expect("addr")), 443)
                .dst("192.0.2.9".parse().expect("addr"), 55_000)
                .payload_len(536)
                .build_ipv4()
        })
    });
    group.bench_function("parse_meta_576B", |b| {
        b.iter(|| eleph_packet::parse_meta(LinkType::RawIp, black_box(&bytes), 0))
    });
    group.finish();
}

fn bench_pcap_io(c: &mut Criterion) {
    let (table, trace) = sample_trace();
    let synth = PacketSynth::new(&trace);
    let mut pcap = Vec::new();
    synth.write_pcap(0..2, &mut pcap).expect("synthesis");
    let n_packets = {
        let reader = PcapReader::new(&pcap[..]).expect("header");
        reader.count()
    };

    let mut group = c.benchmark_group("pcap");
    group.sample_size(10);
    group.throughput(Throughput::Bytes(pcap.len() as u64));
    group.bench_function(format!("write_{n_packets}pkts"), |b| {
        b.iter(|| {
            let mut out = Vec::with_capacity(pcap.len());
            synth.write_pcap(0..2, &mut out).expect("synthesis");
            out.len()
        })
    });
    group.bench_function(format!("read_parse_{n_packets}pkts"), |b| {
        b.iter(|| {
            let mut reader = PcapReader::new(black_box(&pcap[..])).expect("header");
            let link = LinkType::from_code(reader.header().linktype).expect("linktype");
            let mut total = 0u64;
            while let Some(rec) = reader.next_record().expect("records") {
                let meta = parse_record_meta(link, &rec).expect("valid packets");
                total += u64::from(meta.wire_len);
            }
            total
        })
    });
    group.bench_function(format!("aggregate_{n_packets}pkts"), |b| {
        b.iter(|| {
            aggregate_pcap(
                black_box(&pcap[..]),
                &table,
                trace.config.interval_secs,
                trace.config.start_unix,
                trace.config.n_intervals,
            )
            .expect("aggregation")
        })
    });
    group.finish();
}

/// The large-capture workload of the parallel-aggregation benches: a
/// 20k-prefix RIB and a ~400k-packet capture. (The attribution bench
/// below deliberately uses a different, whole-address-space destination
/// spread instead of this trace's few hundred flows.)
fn parallel_workload() -> (eleph_bgp::BgpTable, RateTrace, Vec<u8>, usize) {
    let table = bench_table(20_000);
    let config = WorkloadConfig {
        n_flows: 400,
        n_intervals: 3,
        interval_secs: 20,
        link: eleph_trace::LinkSpec {
            name: "bench parallel".to_string(),
            capacity_bps: 60_000_000.0,
            target_peak_util: 0.5,
        },
        ..WorkloadConfig::small_test(17)
    };
    let trace = RateTrace::generate(&config, &table);
    let synth = PacketSynth::new(&trace);
    let mut pcap = Vec::new();
    synth.write_pcap(0..trace.n_intervals(), &mut pcap).expect("synthesis");
    let n_packets = {
        let reader = PcapReader::new(&pcap[..]).expect("header");
        reader.count()
    };
    (table, trace, pcap, n_packets)
}

/// Single-packet vs chunked attribution on pre-parsed metadata: isolates
/// the win of batching the LPM lookups from pcap decode costs.
///
/// Destinations are drawn uniformly from the whole address space (like
/// the LPM micro-bench) rather than from the synthetic trace's small
/// flow population: a backbone link disperses packets across the entire
/// RIB, so per-packet attribution misses cache. That cold case is what
/// the chunked path exists for — with a few hundred hot flows both
/// forms are equally table-cache-resident and tie.
fn bench_attribution_chunked(c: &mut Criterion) {
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    let table = bench_table(20_000);
    let frozen = table.freeze();
    let mut rng = StdRng::seed_from_u64(11);
    let n_packets = 400_000usize;
    let interval_secs = 20u64;
    let n_intervals = 3usize;
    let metas: Vec<eleph_packet::PacketMeta> = (0..n_packets)
        .map(|i| eleph_packet::PacketMeta {
            ts_ns: (i as u64 * interval_secs * n_intervals as u64 * 1_000_000_000)
                / n_packets as u64,
            src: std::net::Ipv4Addr::from(rng.gen::<u32>()),
            dst: std::net::Ipv4Addr::from(rng.gen::<u32>()),
            proto: eleph_packet::IpProtocol::Udp,
            src_port: 9,
            dst_port: 53,
            wire_len: 40 + (i % 1400) as u32,
        })
        .collect();

    let mut group = c.benchmark_group("attribution");
    group.sample_size(10);
    group.throughput(Throughput::Elements(metas.len() as u64));
    group.bench_function(format!("observe_single_{n_packets}pkts"), |b| {
        b.iter(|| {
            let mut agg =
                eleph_flow::Aggregator::with_frozen(&frozen, interval_secs, 0, n_intervals);
            for m in black_box(&metas) {
                agg.observe(m);
            }
            agg.stats().attributed
        })
    });
    group.bench_function(format!("observe_chunked_{n_packets}pkts"), |b| {
        b.iter(|| {
            let mut agg =
                eleph_flow::Aggregator::with_frozen(&frozen, interval_secs, 0, n_intervals);
            agg.observe_chunk(black_box(&metas));
            agg.stats().attributed
        })
    });
    group.finish();
}

/// End-to-end serial vs sharded aggregation on a larger capture: the
/// bytes/sec each path sustains is the headline packets-per-second
/// number of the whole pipeline.
fn bench_aggregate_parallel(c: &mut Criterion) {
    let (table, trace, pcap, n_packets) = parallel_workload();

    let mut group = c.benchmark_group("aggregate_pcap");
    group.sample_size(10);
    group.throughput(Throughput::Bytes(pcap.len() as u64));
    group.bench_function(format!("serial_{n_packets}pkts"), |b| {
        b.iter(|| {
            aggregate_pcap(
                black_box(&pcap[..]),
                &table,
                trace.config.interval_secs,
                trace.config.start_unix,
                trace.config.n_intervals,
            )
            .expect("aggregation")
        })
    });
    for threads in [2usize, 4, 8] {
        group.bench_function(format!("parallel{threads}_{n_packets}pkts"), |b| {
            b.iter(|| {
                aggregate_pcap_parallel(
                    black_box(&pcap[..]),
                    &table,
                    trace.config.interval_secs,
                    trace.config.start_unix,
                    trace.config.n_intervals,
                    threads,
                )
                .expect("aggregation")
            })
        });
    }
    // Steady state: one frozen RIB serving many captures — the freeze
    // cost is amortized away and the record scan becomes the floor.
    let frozen = table.freeze();
    for threads in [4usize, 8] {
        group.bench_function(format!("parallel{threads}_frozen_{n_packets}pkts"), |b| {
            b.iter(|| {
                aggregate_pcap_parallel_frozen(
                    black_box(&pcap[..]),
                    &frozen,
                    trace.config.interval_secs,
                    trace.config.start_unix,
                    trace.config.n_intervals,
                    threads,
                )
                .expect("aggregation")
            })
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_packet_build_parse,
    bench_pcap_io,
    bench_attribution_chunked,
    bench_aggregate_parallel
);
criterion_main!(benches);
