//! Longest-prefix-match micro-benchmarks: the four table implementations
//! on a backbone-sized RIB. Justifies the choice of the path-compressed
//! trie as the pipeline default and the per-length map for lookup-heavy
//! batch jobs.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use eleph_bench::bench_table;
use eleph_net::{CompressedTrieLpm, FlatLpm, LinearLpm, Lpm, PerLengthLpm, Prefix, TrieLpm};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn entries(n: usize) -> Vec<(Prefix, u32)> {
    bench_table(n)
        .iter()
        .enumerate()
        .map(|(i, e)| (e.prefix, i as u32))
        .collect()
}

fn queries(n: usize) -> Vec<u32> {
    let mut rng = StdRng::seed_from_u64(7);
    (0..n).map(|_| rng.gen()).collect()
}

fn bench_lookup(c: &mut Criterion) {
    let entries = entries(20_000);
    let queries = queries(10_000);

    let mut group = c.benchmark_group("lpm_lookup_10k");
    group.sample_size(20);

    let table = CompressedTrieLpm::from_entries(entries.clone());
    group.bench_function("compressed_trie", |b| {
        b.iter(|| {
            let mut hits = 0usize;
            for &q in &queries {
                if table.lookup(black_box(q)).is_some() {
                    hits += 1;
                }
            }
            hits
        })
    });

    // The frozen flat-array read path the packet pipeline uses.
    let flat = FlatLpm::from(&table);
    group.bench_function("flat", |b| {
        b.iter(|| {
            let mut hits = 0usize;
            for &q in &queries {
                if flat.lookup(black_box(q)).is_some() {
                    hits += 1;
                }
            }
            hits
        })
    });
    group.bench_function("flat_id_only", |b| {
        b.iter(|| {
            let mut hits = 0usize;
            for &q in &queries {
                if flat.lookup_id(black_box(q)).is_some() {
                    hits += 1;
                }
            }
            hits
        })
    });
    // The attribution hot path materializes an id per address (the
    // aggregator's route array), so the batch API's fair baseline is a
    // per-address loop writing the same output array.
    group.bench_function("flat_id_loop_into", |b| {
        let mut out = vec![None; queries.len()];
        b.iter(|| {
            for (o, &q) in out.iter_mut().zip(&queries) {
                *o = flat.lookup_id(black_box(q));
            }
            out.iter().map(|o| usize::from(o.is_some())).sum::<usize>()
        })
    });
    // The batched form the chunked aggregation hot path uses: identical
    // results to the flat_id_loop_into loop above, but the masked
    // re-slice elides the per-lane stage-1 bounds check and the loop
    // body carries no per-call overhead.
    group.bench_function("flat_id_batched", |b| {
        let mut out = vec![None; queries.len()];
        b.iter(|| {
            flat.lookup_many(black_box(&queries), &mut out);
            out.iter().map(|o| usize::from(o.is_some())).sum::<usize>()
        })
    });
    group.bench_function("flat_id_batched_raw", |b| {
        let mut out = vec![0u32; queries.len()];
        b.iter(|| {
            flat.lookup_many_raw(black_box(&queries), &mut out);
            out.iter().map(|&o| usize::from(o != 0)).sum::<usize>()
        })
    });

    let mut trie = TrieLpm::new();
    for (p, v) in &entries {
        trie.insert(*p, *v);
    }
    group.bench_function("binary_trie", |b| {
        b.iter(|| {
            let mut hits = 0usize;
            for &q in &queries {
                if trie.lookup(black_box(q)).is_some() {
                    hits += 1;
                }
            }
            hits
        })
    });

    let mut perlen = PerLengthLpm::new();
    for (p, v) in &entries {
        perlen.insert(*p, *v);
    }
    group.bench_function("per_length_maps", |b| {
        b.iter(|| {
            let mut hits = 0usize;
            for &q in &queries {
                if perlen.lookup(black_box(q)).is_some() {
                    hits += 1;
                }
            }
            hits
        })
    });

    // The linear oracle on a reduced query load (it is O(n) per lookup).
    let mut linear = LinearLpm::new();
    for (p, v) in &entries {
        linear.insert(*p, *v);
    }
    group.bench_function("linear_oracle_100q", |b| {
        b.iter(|| {
            let mut hits = 0usize;
            for &q in &queries[..100] {
                if linear.lookup(black_box(q)).is_some() {
                    hits += 1;
                }
            }
            hits
        })
    });
    group.finish();
}

fn bench_insert(c: &mut Criterion) {
    let mut group = c.benchmark_group("lpm_build");
    group.sample_size(10);
    for n in [5_000usize, 20_000] {
        let entries = entries(n);
        group.bench_with_input(BenchmarkId::new("compressed_trie", n), &entries, |b, e| {
            b.iter(|| CompressedTrieLpm::from_entries(e.iter().copied()))
        });
        group.bench_with_input(BenchmarkId::new("per_length_maps", n), &entries, |b, e| {
            b.iter(|| {
                let mut t = PerLengthLpm::new();
                for (p, v) in e {
                    t.insert(*p, *v);
                }
                t
            })
        });
        // Freeze cost: what a RIB update costs the read path.
        group.bench_with_input(BenchmarkId::new("flat_freeze", n), &entries, |b, e| {
            b.iter(|| FlatLpm::from_entries(e.iter().copied()))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_lookup, bench_insert);
criterion_main!(benches);
