//! Threshold-detector micro-benchmarks: the aest scaling estimator (the
//! expensive part of the paper's pipeline — it runs every interval),
//! the Hill estimator baseline, and the constant-load sort.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use eleph_core::{AestDetector, ConstantLoadDetector, ThresholdDetector};
use eleph_stats::dist::{LogNormal, Pareto, Sample};
use eleph_stats::{aest, hill_estimator, AestConfig};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// A flow-bandwidth-like mixture: log-normal body, Pareto tail.
fn snapshot(n: usize) -> Vec<f64> {
    let mut rng = StdRng::seed_from_u64(11);
    let body = LogNormal::new(9.0, 1.0).expect("valid");
    let tail = Pareto::new(1e6, 1.25).expect("valid");
    (0..n)
        .map(|i| {
            if i % 40 == 0 {
                tail.sample(&mut rng)
            } else {
                body.sample(&mut rng)
            }
        })
        .collect()
}

fn bench_aest(c: &mut Criterion) {
    let mut group = c.benchmark_group("aest");
    group.sample_size(20);
    for n in [5_000usize, 20_000, 50_000] {
        let xs = snapshot(n);
        group.bench_with_input(BenchmarkId::from_parameter(n), &xs, |b, xs| {
            b.iter(|| aest(black_box(xs), &AestConfig::default()))
        });
    }
    group.finish();
}

fn bench_hill(c: &mut Criterion) {
    let xs = snapshot(50_000);
    c.bench_function("hill_50k_k2000", |b| {
        b.iter(|| hill_estimator(black_box(&xs), 2_000))
    });
}

fn bench_detectors(c: &mut Criterion) {
    let xs = snapshot(20_000);
    let mut group = c.benchmark_group("detector_20k");
    group.sample_size(20);
    group.bench_function("aest", |b| {
        let d = AestDetector::new();
        b.iter(|| d.detect(black_box(&xs)))
    });
    group.bench_function("constant_load", |b| {
        let d = ConstantLoadDetector::new(0.8);
        b.iter(|| d.detect(black_box(&xs)))
    });
    group.finish();
}

criterion_group!(benches, bench_aest, bench_hill, bench_detectors);
criterion_main!(benches);
