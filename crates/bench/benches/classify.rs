//! Classifier throughput: the full per-trace classification (threshold
//! detection + EWMA + state update) for all three schemes, the
//! shared-work sweep path ([`eleph_core::classify_many`] vs independent
//! runs), the columnar matrix scan primitives, and holding-time
//! analysis. Measures the cost of running the paper's methodology
//! online.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use eleph_bench::bench_matrix;
use eleph_core::{
    classify, classify_many, holding, ClassifyConfig, ConstantLoadDetector, Scheme, PAPER_GAMMA,
    PAPER_LATENT_WINDOW,
};

fn bench_schemes(c: &mut Criterion) {
    let matrix = bench_matrix(4_000, 72);
    let mut group = c.benchmark_group("classify_4kflows_72int");
    group.sample_size(10);
    group.bench_function("single_feature", |b| {
        b.iter(|| {
            classify(
                black_box(&matrix),
                ConstantLoadDetector::new(0.8),
                PAPER_GAMMA,
                Scheme::SingleFeature,
            )
        })
    });
    group.bench_function("latent_heat_w12", |b| {
        b.iter(|| {
            classify(
                black_box(&matrix),
                ConstantLoadDetector::new(0.8),
                PAPER_GAMMA,
                Scheme::LatentHeat {
                    window: PAPER_LATENT_WINDOW,
                },
            )
        })
    });
    group.bench_function("hysteresis", |b| {
        b.iter(|| {
            classify(
                black_box(&matrix),
                ConstantLoadDetector::new(0.8),
                PAPER_GAMMA,
                Scheme::Hysteresis {
                    enter: 1.2,
                    exit: 0.6,
                },
            )
        })
    });
    group.finish();
}

/// A typical parameter sweep (4 latent-heat windows, one detector):
/// independent `classify` calls pay the detection per configuration,
/// `classify_many` pays it once.
fn bench_sweep(c: &mut Criterion) {
    let matrix = bench_matrix(4_000, 72);
    let configs: Vec<ClassifyConfig> = [1usize, 6, 12, 24]
        .iter()
        .map(|&window| ClassifyConfig {
            gamma: PAPER_GAMMA,
            scheme: Scheme::LatentHeat { window },
        })
        .collect();
    let mut group = c.benchmark_group("classify_sweep");
    group.sample_size(10);
    group.bench_function("independent_4cfg", |b| {
        b.iter(|| {
            configs
                .iter()
                .map(|cfg| {
                    classify(
                        black_box(&matrix),
                        ConstantLoadDetector::new(0.8),
                        cfg.gamma,
                        cfg.scheme,
                    )
                })
                .collect::<Vec<_>>()
        })
    });
    group.bench_function("shared_4cfg", |b| {
        b.iter(|| {
            classify_many(
                black_box(&matrix),
                &ConstantLoadDetector::new(0.8),
                black_box(&configs),
            )
        })
    });
    group.finish();
}

/// The columnar store's scan primitives: the allocation-free
/// `values_into` fill the classifier hot loop uses, its allocating
/// predecessor, and a full key/rate column walk.
fn bench_matrix_scan(c: &mut Criterion) {
    let matrix = bench_matrix(4_000, 72);
    let mut group = c.benchmark_group("dense_matrix");
    group.bench_function("values_into_72int", |b| {
        let mut buf: Vec<f64> = Vec::new();
        b.iter(|| {
            let mut acc = 0.0f64;
            for n in 0..matrix.n_intervals() {
                matrix.values_into(n, &mut buf);
                acc += buf.iter().sum::<f64>();
            }
            black_box(acc)
        })
    });
    group.bench_function("values_alloc_72int", |b| {
        b.iter(|| {
            let mut acc = 0.0f64;
            for n in 0..matrix.n_intervals() {
                acc += matrix.values(n).iter().sum::<f64>();
            }
            black_box(acc)
        })
    });
    group.bench_function("interval_scan_72int", |b| {
        b.iter(|| {
            let mut acc = 0.0f64;
            let mut keys = 0u64;
            for n in 0..matrix.n_intervals() {
                for (key, rate) in matrix.interval(n).iter() {
                    keys += u64::from(key);
                    acc += f64::from(rate);
                }
            }
            black_box((acc, keys))
        })
    });
    group.finish();
}

fn bench_holding(c: &mut Criterion) {
    let matrix = bench_matrix(4_000, 72);
    let result = classify(
        &matrix,
        ConstantLoadDetector::new(0.8),
        PAPER_GAMMA,
        Scheme::LatentHeat {
            window: PAPER_LATENT_WINDOW,
        },
    );
    c.bench_function("holding_analysis_72int", |b| {
        b.iter(|| holding::analyze(black_box(&result), 0..72, 300))
    });
    c.bench_function("churn_72int", |b| {
        b.iter(|| holding::churn(black_box(&result)))
    });
}

criterion_group!(
    benches,
    bench_schemes,
    bench_sweep,
    bench_matrix_scan,
    bench_holding
);
criterion_main!(benches);
