//! Classifier throughput: the full per-trace classification (threshold
//! detection + EWMA + state update) for both schemes, plus holding-time
//! analysis. Measures the cost of running the paper's methodology
//! online.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use eleph_bench::bench_matrix;
use eleph_core::{
    classify, holding, ConstantLoadDetector, Scheme, PAPER_GAMMA, PAPER_LATENT_WINDOW,
};

fn bench_schemes(c: &mut Criterion) {
    let matrix = bench_matrix(4_000, 72);
    let mut group = c.benchmark_group("classify_4kflows_72int");
    group.sample_size(10);
    group.bench_function("single_feature", |b| {
        b.iter(|| {
            classify(
                black_box(&matrix),
                ConstantLoadDetector::new(0.8),
                PAPER_GAMMA,
                Scheme::SingleFeature,
            )
        })
    });
    group.bench_function("latent_heat_w12", |b| {
        b.iter(|| {
            classify(
                black_box(&matrix),
                ConstantLoadDetector::new(0.8),
                PAPER_GAMMA,
                Scheme::LatentHeat {
                    window: PAPER_LATENT_WINDOW,
                },
            )
        })
    });
    group.finish();
}

fn bench_holding(c: &mut Criterion) {
    let matrix = bench_matrix(4_000, 72);
    let result = classify(
        &matrix,
        ConstantLoadDetector::new(0.8),
        PAPER_GAMMA,
        Scheme::LatentHeat {
            window: PAPER_LATENT_WINDOW,
        },
    );
    c.bench_function("holding_analysis_72int", |b| {
        b.iter(|| holding::analyze(black_box(&result), 0..72, 300))
    });
    c.bench_function("churn_72int", |b| {
        b.iter(|| holding::churn(black_box(&result)))
    });
}

criterion_group!(benches, bench_schemes, bench_holding);
criterion_main!(benches);
