//! One benchmark per figure/table of the paper: the regeneration kernel
//! of each experiment at a reduced scale (the shape of the computation
//! is identical to the full-scale run; only the population shrinks).
//!
//! `cargo bench -p eleph-bench --bench experiments` therefore both
//! regenerates every result (writing the CSVs under target/experiments/)
//! and reports how long each regeneration takes.

use criterion::{criterion_group, criterion_main, Criterion};
use eleph_report::experiments::{
    ablation_beta, ablation_gamma, ablation_scheme, ablation_window, fig1_data, fig1a, fig1b,
    fig1c, table1, table2, table3, table4, west_lab,
};

const SCALE: f64 = 0.05;
const SEED: u64 = 42;

fn bench_fig1_panels(c: &mut Criterion) {
    // The classification runs are shared by the three panels, exactly as
    // in the real harness; they are benched separately below.
    let data = fig1_data(SCALE, SEED);
    let mut group = c.benchmark_group("figures");
    group.sample_size(10);
    group.bench_function("fig1a_counts", |b| {
        b.iter(|| fig1a(&data).expect("fig1a"))
    });
    group.bench_function("fig1b_fractions", |b| {
        b.iter(|| fig1b(&data).expect("fig1b"))
    });
    group.bench_function("fig1c_holding", |b| {
        b.iter(|| fig1c(&data).expect("fig1c"))
    });
    group.finish();
}

fn bench_fig1_pipeline(c: &mut Criterion) {
    // The full Figure 1 pipeline: build both scenarios and run the four
    // classifications. This is the dominant cost of the reproduction.
    let mut group = c.benchmark_group("pipeline");
    group.sample_size(10);
    group.bench_function("fig1_data_full", |b| b.iter(|| fig1_data(SCALE, SEED)));
    group.finish();
}

fn bench_tables(c: &mut Criterion) {
    let data = fig1_data(SCALE, SEED);
    let mut group = c.benchmark_group("tables");
    group.sample_size(10);
    group.bench_function("table1_single_feature", |b| {
        b.iter(|| table1(&data).expect("table1"))
    });
    group.bench_function("table2_latent_heat", |b| {
        b.iter(|| table2(&data).expect("table2"))
    });
    group.bench_function("table3_prefixes", |b| {
        b.iter(|| table3(&data).expect("table3"))
    });
    group.bench_function("table4_interval_sweep", |b| {
        b.iter(|| table4(SCALE, SEED).expect("table4"))
    });
    group.finish();
}

fn bench_ablations(c: &mut Criterion) {
    // One shared scenario build, exactly as the harness runs the
    // ablations: the benches measure the sweeps themselves.
    let (scenario, data) = west_lab(SCALE, SEED);
    let mut group = c.benchmark_group("ablations");
    group.sample_size(10);
    group.bench_function("gamma_sweep", |b| {
        b.iter(|| ablation_gamma(&scenario, &data).expect("gamma"))
    });
    group.bench_function("window_sweep", |b| {
        b.iter(|| ablation_window(&scenario, &data).expect("window"))
    });
    group.bench_function("beta_sweep", |b| {
        b.iter(|| ablation_beta(&scenario, &data).expect("beta"))
    });
    group.bench_function("scheme_comparison", |b| {
        b.iter(|| ablation_scheme(&scenario, &data).expect("scheme"))
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_fig1_panels,
    bench_fig1_pipeline,
    bench_tables,
    bench_ablations
);
criterion_main!(benches);
