//! End-to-end pipeline throughput: capture bytes → per-interval
//! elephant outcomes, comparing the streaming pipeline (no matrix
//! materialization, intervals sealed online) against the equivalent
//! batch path (aggregate the whole capture, then classify). Both
//! produce bit-identical outcomes (pinned by the streaming-equivalence
//! tests); this measures what the online form costs — or saves.
//!
//! The primary arms attribute against a pre-frozen table (the
//! steady-state of a monitor whose RIB outlives many captures), so the
//! comparison isolates the aggregation+classification work. The `_cold`
//! arms include the per-run `BgpTable::freeze` (64 MiB stage-1 fill)
//! for the one-shot case — compare like with like.

use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};
use eleph_bench::bench_capture;
use eleph_core::{classify, ConstantLoadDetector, Scheme, PAPER_GAMMA};
use eleph_flow::{aggregate_pcap, aggregate_pcap_frozen};
use eleph_pipeline::{PcapSource, PipelineBuilder};

fn bench_end_to_end(c: &mut Criterion) {
    let (table, config, pcap) = bench_capture(150, 4, 20);
    let frozen = table.freeze();
    let scheme = Scheme::LatentHeat { window: 3 };

    let mut group = c.benchmark_group("end_to_end_pipeline");
    group.throughput(Throughput::Bytes(pcap.len() as u64));

    group.bench_function("batch_aggregate_then_classify", |b| {
        b.iter(|| {
            let (matrix, stats) = aggregate_pcap_frozen(
                black_box(&pcap[..]),
                &frozen,
                config.interval_secs,
                config.start_unix,
                config.n_intervals,
            )
            .expect("batch aggregation");
            let result = classify(&matrix, ConstantLoadDetector::new(0.8), PAPER_GAMMA, scheme);
            (result.n_intervals(), stats.attributed)
        })
    });

    group.bench_function("streaming_pipeline", |b| {
        b.iter(|| {
            let mut pipeline = PipelineBuilder::new()
                .frozen(&frozen)
                .interval_secs(config.interval_secs)
                .start_unix(config.start_unix)
                .n_intervals(config.n_intervals)
                .detector(ConstantLoadDetector::new(0.8))
                .gamma(PAPER_GAMMA)
                .scheme(scheme)
                .build();
            pipeline
                .run(PcapSource::new(black_box(&pcap[..])).expect("valid pcap"))
                .expect("streaming run");
            let report = pipeline.finish().expect("finish");
            (report.intervals, report.stats.attributed)
        })
    });

    group.bench_function("batch_cold", |b| {
        b.iter(|| {
            let (matrix, stats) = aggregate_pcap(
                black_box(&pcap[..]),
                &table,
                config.interval_secs,
                config.start_unix,
                config.n_intervals,
            )
            .expect("batch aggregation");
            let result = classify(&matrix, ConstantLoadDetector::new(0.8), PAPER_GAMMA, scheme);
            (result.n_intervals(), stats.attributed)
        })
    });

    group.bench_function("streaming_cold", |b| {
        b.iter(|| {
            let mut pipeline = PipelineBuilder::new()
                .table(black_box(&table))
                .interval_secs(config.interval_secs)
                .start_unix(config.start_unix)
                .n_intervals(config.n_intervals)
                .detector(ConstantLoadDetector::new(0.8))
                .gamma(PAPER_GAMMA)
                .scheme(scheme)
                .build();
            pipeline
                .run(PcapSource::new(black_box(&pcap[..])).expect("valid pcap"))
                .expect("streaming run");
            let report = pipeline.finish().expect("finish");
            (report.intervals, report.stats.attributed)
        })
    });

    group.finish();
}

criterion_group!(benches, bench_end_to_end);
criterion_main!(benches);
