//! End-to-end pipeline throughput: capture bytes → per-interval
//! elephant outcomes, comparing the streaming pipeline (no matrix
//! materialization, intervals sealed online) against the equivalent
//! batch path (aggregate the whole capture, then classify). Both
//! produce bit-identical outcomes (pinned by the streaming-equivalence
//! tests); this measures what the online form costs — or saves.
//!
//! The primary arms attribute against a pre-frozen table (the
//! steady-state of a monitor whose RIB outlives many captures), so the
//! comparison isolates the aggregation+classification work. The `_cold`
//! arms include the per-run `BgpTable::freeze` (64 MiB stage-1 fill)
//! for the one-shot case — compare like with like.

use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};
use eleph_bench::bench_capture;
use eleph_core::{classify, ConstantLoadDetector, Scheme, PAPER_GAMMA};
use eleph_flow::{aggregate_pcap, aggregate_pcap_frozen};
use eleph_pipeline::{PcapSource, PipelineBuilder, PooledPcapSource};

fn bench_end_to_end(c: &mut Criterion) {
    let (table, config, pcap) = bench_capture(150, 4, 20);
    let frozen = table.freeze();
    let scheme = Scheme::LatentHeat { window: 3 };

    let mut group = c.benchmark_group("end_to_end_pipeline");
    group.throughput(Throughput::Bytes(pcap.len() as u64));

    group.bench_function("batch_aggregate_then_classify", |b| {
        b.iter(|| {
            let (matrix, stats) = aggregate_pcap_frozen(
                black_box(&pcap[..]),
                &frozen,
                config.interval_secs,
                config.start_unix,
                config.n_intervals,
            )
            .expect("batch aggregation");
            let result = classify(&matrix, ConstantLoadDetector::new(0.8), PAPER_GAMMA, scheme);
            (result.n_intervals(), stats.attributed)
        })
    });

    group.bench_function("streaming_pipeline", |b| {
        b.iter(|| {
            let mut pipeline = PipelineBuilder::new()
                .frozen(&frozen)
                .interval_secs(config.interval_secs)
                .start_unix(config.start_unix)
                .n_intervals(config.n_intervals)
                .detector(ConstantLoadDetector::new(0.8))
                .gamma(PAPER_GAMMA)
                .scheme(scheme)
                .build();
            pipeline
                .run(PcapSource::new(black_box(&pcap[..])).expect("valid pcap"))
                .expect("streaming run");
            let report = pipeline.finish().expect("finish");
            (report.intervals, report.stats.attributed)
        })
    });

    // The sharded online path at increasing shard counts. Shard 1
    // isolates pure coordination cost (channel hops + the seal
    // barrier) against the inline serial arm above; higher counts show
    // how the partitioned bin/seal work scales with available cores.
    // Output is bit-identical to the serial arm at every count (pinned
    // by tests/tests/sharded_equivalence.rs), so any delta is pure
    // mechanism overhead or speedup — never a measurement change.
    for shards in [1usize, 2, 4, 8] {
        group.bench_function(format!("streaming_shards{shards}"), |b| {
            b.iter(|| {
                let mut pipeline = PipelineBuilder::new()
                    .frozen(&frozen)
                    .interval_secs(config.interval_secs)
                    .start_unix(config.start_unix)
                    .n_intervals(config.n_intervals)
                    .detector(ConstantLoadDetector::new(0.8))
                    .gamma(PAPER_GAMMA)
                    .scheme(scheme)
                    .shards(shards)
                    .build();
                pipeline
                    .run(PcapSource::new(black_box(&pcap[..])).expect("valid pcap"))
                    .expect("sharded run");
                let report = pipeline.finish().expect("finish");
                (report.intervals, report.stats.attributed)
            })
        });
    }

    // Asynchronous pooled ingest feeding the serial online path: record
    // framing and packet parsing run on their own threads, overlapping
    // attribution and classification on the pipeline thread.
    let shared = std::sync::Arc::new(pcap.clone());
    group.bench_function("streaming_pooled_ingest2", |b| {
        b.iter(|| {
            let mut pipeline = PipelineBuilder::new()
                .frozen(&frozen)
                .interval_secs(config.interval_secs)
                .start_unix(config.start_unix)
                .n_intervals(config.n_intervals)
                .detector(ConstantLoadDetector::new(0.8))
                .gamma(PAPER_GAMMA)
                .scheme(scheme)
                .build();
            pipeline
                .run(
                    PooledPcapSource::new(std::sync::Arc::clone(&shared), 2)
                        .expect("valid pcap"),
                )
                .expect("pooled run");
            let report = pipeline.finish().expect("finish");
            (report.intervals, report.stats.attributed)
        })
    });

    group.bench_function("batch_cold", |b| {
        b.iter(|| {
            let (matrix, stats) = aggregate_pcap(
                black_box(&pcap[..]),
                &table,
                config.interval_secs,
                config.start_unix,
                config.n_intervals,
            )
            .expect("batch aggregation");
            let result = classify(&matrix, ConstantLoadDetector::new(0.8), PAPER_GAMMA, scheme);
            (result.n_intervals(), stats.attributed)
        })
    });

    group.bench_function("streaming_cold", |b| {
        b.iter(|| {
            let mut pipeline = PipelineBuilder::new()
                .table(black_box(&table))
                .interval_secs(config.interval_secs)
                .start_unix(config.start_unix)
                .n_intervals(config.n_intervals)
                .detector(ConstantLoadDetector::new(0.8))
                .gamma(PAPER_GAMMA)
                .scheme(scheme)
                .build();
            pipeline
                .run(PcapSource::new(black_box(&pcap[..])).expect("valid pcap"))
                .expect("streaming run");
            let report = pipeline.finish().expect("finish");
            (report.intervals, report.stats.attributed)
        })
    });

    group.finish();
}

criterion_group!(benches, bench_end_to_end);
criterion_main!(benches);
