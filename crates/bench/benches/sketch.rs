//! Sketch state-backend micro-benchmarks: the per-packet `record` +
//! per-interval `seal_into` path for each `core::sketch` backend
//! against the exact dense row. This is the hot loop a `--state`
//! choice changes; everything downstream (detection, EWMA, schemes)
//! is identical across backends. Accuracy is NOT measured here — see
//! `eleph sketch` for the exact-oracle recall/precision harness.
//!
//! The workload is a Zipf-like synthetic interval: a heavy head of a
//! few hundred elephant keys over a long mouse tail, the shape the
//! paper reports for backbone prefixes and the regime sketches are
//! built for.

use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};
use eleph_core::{ExactDense, StateBackend, StateBackendConfig};
use rand::rngs::StdRng;
use rand::Rng;
use rand::SeedableRng;

/// One interval's worth of (key, bytes) increments: `n_keys` distinct
/// keys under a heavy-headed popularity law, `packets` increments.
fn interval_stream(n_keys: u32, packets: usize) -> Vec<(u32, u64)> {
    let mut rng = StdRng::seed_from_u64(4242);
    (0..packets)
        .map(|_| {
            // Square a uniform draw to skew towards low key ids: key 0
            // is ~2·n_keys times as popular as the median key.
            let u: f64 = rng.gen();
            let key = ((u * u) * n_keys as f64) as u32;
            let bytes = 40 + (rng.gen::<u64>() % 1460);
            (key.min(n_keys - 1), bytes)
        })
        .collect()
}

/// Drive one backend through `intervals` record+seal rounds.
fn run_backend(
    backend: &mut dyn StateBackend,
    stream: &[(u32, u64)],
    intervals: usize,
) -> (usize, f64) {
    let mut out = Vec::new();
    let mut sealed = 0usize;
    let mut total = 0.0f64;
    for _ in 0..intervals {
        for &(key, bytes) in stream {
            backend.record(key, bytes);
        }
        backend.seal_into(60.0, &mut out);
        sealed += out.len();
        total += out.iter().map(|&(_, rate)| rate as f64).sum::<f64>();
    }
    (sealed, total)
}

fn bench_sketch_seal(c: &mut Criterion) {
    const N_KEYS: u32 = 20_000;
    const PACKETS: usize = 200_000;
    const INTERVALS: usize = 4;
    const BUDGET: usize = 1 << 20;
    let stream = interval_stream(N_KEYS, PACKETS);

    let mut group = c.benchmark_group("sketch_seal");
    group.sample_size(20);
    group.throughput(Throughput::Elements((PACKETS * INTERVALS) as u64));

    group.bench_function("exact", |b| {
        b.iter(|| {
            let mut backend = ExactDense::new();
            run_backend(black_box(&mut backend), black_box(&stream), INTERVALS)
        })
    });

    for name in ["spacesaving", "cmrow", "bloom"] {
        group.bench_function(name, |b| {
            let config = StateBackendConfig::parse(name, BUDGET).expect("known backend");
            b.iter(|| {
                let mut backend = config.build().expect("sketch backend");
                run_backend(black_box(backend.as_mut()), black_box(&stream), INTERVALS)
            })
        });
    }

    // The regime sketches exist for: a budget far below the dense row
    // (64 KiB over 20k keys), where Space-Saving pays eviction rescans
    // and the multistage filter pays its promotion checks.
    for name in ["spacesaving", "cmrow", "bloom"] {
        group.bench_function(format!("{name}_tight64k"), |b| {
            let config = StateBackendConfig::parse(name, 64 << 10).expect("known backend");
            b.iter(|| {
                let mut backend = config.build().expect("sketch backend");
                run_backend(black_box(backend.as_mut()), black_box(&stream), INTERVALS)
            })
        });
    }

    group.finish();
}

criterion_group!(benches, bench_sketch_seal);
criterion_main!(benches);
