//! Shared fixtures for the criterion benches in `benches/`.

#![forbid(unsafe_code)]

use eleph_bgp::synth::{self, SynthConfig};
use eleph_bgp::BgpTable;
use eleph_flow::BandwidthMatrix;
use eleph_trace::{RateTrace, WorkloadConfig};

/// A mid-sized routing table (deterministic).
pub fn bench_table(n: usize) -> BgpTable {
    synth::generate(&SynthConfig {
        n_prefixes: n,
        ..SynthConfig::default()
    })
}

/// A deterministic capture for the end-to-end pipeline benches: a
/// small link's trace serialized as pcap bytes, plus the table and
/// workload that produced it.
pub fn bench_capture(
    n_flows: usize,
    n_intervals: usize,
    interval_secs: u64,
) -> (BgpTable, WorkloadConfig, Vec<u8>) {
    let table = bench_table(2_000);
    let config = WorkloadConfig {
        n_flows,
        n_intervals,
        interval_secs,
        link: eleph_trace::LinkSpec {
            name: "bench capture".to_string(),
            capacity_bps: 10_000_000.0,
            target_peak_util: 0.5,
        },
        ..WorkloadConfig::small_test(0xCAF7)
    };
    let trace = RateTrace::generate(&config, &table);
    let mut pcap = Vec::new();
    eleph_trace::PacketSynth::new(&trace)
        .write_pcap(0..trace.n_intervals(), &mut pcap)
        .expect("pcap synthesis");
    (table, config, pcap)
}

/// A mid-sized workload trace + matrix (deterministic).
pub fn bench_matrix(n_flows: usize, n_intervals: usize) -> BandwidthMatrix {
    let table = bench_table((n_flows * 3).max(2_000));
    let config = WorkloadConfig {
        n_flows,
        n_intervals,
        interval_secs: 300,
        link: eleph_trace::LinkSpec::oc12("bench OC-12", 0.5),
        profile: eleph_trace::DiurnalProfile::west_coast(),
        tz_offset_secs: -7 * 3600,
        heavy_rate_floor: 400_000.0,
        mouse_log_mean: (15_000f64).ln(),
        ..WorkloadConfig::small_test(0xBE7C)
    };
    let trace = RateTrace::generate(&config, &table);
    BandwidthMatrix::from_rate_trace(&trace)
}
