//! Streaming packet-to-interval aggregation.

use std::collections::HashMap;
use std::io::Read;

use eleph_bgp::BgpTable;
use eleph_net::Prefix;
use eleph_packet::pcap::PcapReader;
use eleph_packet::{parse_record_meta, LinkType, PacketMeta};

use crate::{BandwidthMatrix, KeyId};

/// Accounting for every packet offered to an [`Aggregator`].
///
/// The paper's methodology implicitly requires conservation: every
/// captured packet is either attributed to a prefix or counted in one of
/// the reject buckets. The robustness tests assert
/// `attributed + unroutable + out_of_window + malformed == offered`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct AggregatorStats {
    /// Packets offered.
    pub offered: u64,
    /// Packets attributed to a prefix and binned.
    pub attributed: u64,
    /// Bytes attributed.
    pub attributed_bytes: u64,
    /// Packets whose destination matched no table entry.
    pub unroutable: u64,
    /// Packets timestamped outside the configured window.
    pub out_of_window: u64,
    /// Raw packets that failed to parse.
    pub malformed: u64,
}

impl AggregatorStats {
    /// Conservation check: all offered packets are accounted for.
    pub fn is_conserved(&self) -> bool {
        self.attributed + self.unroutable + self.out_of_window + self.malformed == self.offered
    }
}

/// Streaming aggregator: packets in, [`BandwidthMatrix`] out.
#[derive(Debug)]
pub struct Aggregator<'t> {
    table: &'t BgpTable,
    interval_secs: u64,
    start_unix: u64,
    n_intervals: usize,
    /// Per interval: bytes per key.
    bytes: Vec<HashMap<KeyId, u64>>,
    keys: Vec<Prefix>,
    index: HashMap<Prefix, KeyId>,
    stats: AggregatorStats,
}

impl<'t> Aggregator<'t> {
    /// Create an aggregator for `n_intervals` intervals of
    /// `interval_secs` starting at `start_unix`.
    pub fn new(
        table: &'t BgpTable,
        interval_secs: u64,
        start_unix: u64,
        n_intervals: usize,
    ) -> Self {
        assert!(interval_secs > 0, "interval must be positive");
        Aggregator {
            table,
            interval_secs,
            start_unix,
            n_intervals,
            bytes: vec![HashMap::new(); n_intervals],
            keys: Vec::new(),
            index: HashMap::new(),
            stats: AggregatorStats::default(),
        }
    }

    /// Observe one parsed packet.
    pub fn observe(&mut self, meta: &PacketMeta) {
        self.stats.offered += 1;
        let start_ns = self.start_unix * 1_000_000_000;
        if meta.ts_ns < start_ns {
            self.stats.out_of_window += 1;
            return;
        }
        let interval = ((meta.ts_ns - start_ns) / (self.interval_secs * 1_000_000_000)) as usize;
        if interval >= self.n_intervals {
            self.stats.out_of_window += 1;
            return;
        }
        let Some((prefix, _)) = self.table.attribute(meta.dst) else {
            self.stats.unroutable += 1;
            return;
        };
        let next_id = self.keys.len() as KeyId;
        let id = *self.index.entry(prefix).or_insert_with(|| {
            self.keys.push(prefix);
            next_id
        });
        *self.bytes[interval].entry(id).or_default() += u64::from(meta.wire_len);
        self.stats.attributed += 1;
        self.stats.attributed_bytes += u64::from(meta.wire_len);
    }

    /// Observe one raw packet (parse, then bin); parse failures are
    /// counted as malformed, never propagated as errors.
    pub fn observe_raw(&mut self, link: LinkType, data: &[u8], ts_ns: u64) {
        match eleph_packet::parse_meta(link, data, ts_ns) {
            Ok(meta) => self.observe(&meta),
            Err(_) => {
                self.stats.offered += 1;
                self.stats.malformed += 1;
            }
        }
    }

    /// Current statistics.
    pub fn stats(&self) -> AggregatorStats {
        self.stats
    }

    /// Convert accumulated bytes to average bandwidths and produce the
    /// matrix.
    pub fn finish(self) -> (BandwidthMatrix, AggregatorStats) {
        let secs = self.interval_secs as f64;
        let intervals: Vec<Vec<(KeyId, f32)>> = self
            .bytes
            .into_iter()
            .map(|m| {
                let mut v: Vec<(KeyId, f32)> = m
                    .into_iter()
                    .map(|(id, bytes)| (id, (bytes as f64 * 8.0 / secs) as f32))
                    .collect();
                v.sort_unstable_by_key(|&(id, _)| id);
                v
            })
            .collect();
        let matrix =
            BandwidthMatrix::from_parts(self.interval_secs, self.start_unix, self.keys, intervals);
        (matrix, self.stats)
    }
}

/// Aggregate a whole pcap stream. Records that fail structural pcap
/// parsing abort with the error (a damaged file is not a measurement);
/// packets inside records that fail *packet* parsing are counted as
/// malformed and skipped.
pub fn aggregate_pcap<R: Read>(
    input: R,
    table: &BgpTable,
    interval_secs: u64,
    start_unix: u64,
    n_intervals: usize,
) -> eleph_packet::Result<(BandwidthMatrix, AggregatorStats)> {
    let mut reader = PcapReader::new(input)?;
    let link = LinkType::from_code(reader.header().linktype)?;
    let mut agg = Aggregator::new(table, interval_secs, start_unix, n_intervals);
    while let Some(record) = reader.next_record()? {
        match parse_record_meta(link, &record) {
            Ok(meta) => agg.observe(&meta),
            Err(_) => {
                agg.stats.offered += 1;
                agg.stats.malformed += 1;
            }
        }
    }
    Ok(agg.finish())
}

#[cfg(test)]
mod tests {
    use super::*;
    use eleph_bgp::{Origin, PeerClass, RouteEntry};
    use eleph_packet::{IpProtocol, PacketBuilder};
    use std::net::Ipv4Addr;

    fn table() -> BgpTable {
        BgpTable::from_entries(vec![
            RouteEntry {
                prefix: "10.0.0.0/8".parse().unwrap(),
                next_hop: Ipv4Addr::new(192, 0, 2, 1),
                as_path: vec![1],
                origin: Origin::Igp,
                peer_class: PeerClass::Tier1,
            },
            RouteEntry {
                prefix: "10.1.0.0/16".parse().unwrap(),
                next_hop: Ipv4Addr::new(192, 0, 2, 2),
                as_path: vec![2],
                origin: Origin::Igp,
                peer_class: PeerClass::Tier2,
            },
        ])
    }

    fn meta(dst: [u8; 4], ts_s: u64, len: u32) -> PacketMeta {
        PacketMeta {
            ts_ns: ts_s * 1_000_000_000,
            src: Ipv4Addr::new(198, 18, 0, 1),
            dst: Ipv4Addr::from(dst),
            proto: IpProtocol::Tcp,
            src_port: 1,
            dst_port: 2,
            wire_len: len,
        }
    }

    #[test]
    fn bins_by_interval_and_prefix() {
        let t = table();
        let mut agg = Aggregator::new(&t, 10, 1000, 3);
        agg.observe(&meta([10, 2, 0, 1], 1000, 1000)); // /8, interval 0
        agg.observe(&meta([10, 2, 0, 1], 1009, 500)); // /8, interval 0
        agg.observe(&meta([10, 1, 0, 1], 1010, 300)); // /16, interval 1
        agg.observe(&meta([10, 2, 0, 1], 1029, 200)); // /8, interval 2

        let (m, stats) = agg.finish();
        assert_eq!(stats.attributed, 4);
        assert!(stats.is_conserved());

        let p8 = m.key_id("10.0.0.0/8".parse().unwrap()).unwrap();
        let p16 = m.key_id("10.1.0.0/16".parse().unwrap()).unwrap();
        // 1500 bytes over 10 s = 1200 b/s.
        assert_eq!(m.rate(0, p8), 1200.0);
        assert_eq!(m.rate(0, p16), 0.0);
        assert_eq!(m.rate(1, p16), 240.0);
        assert_eq!(m.rate(2, p8), 160.0);
    }

    #[test]
    fn interval_boundaries_are_half_open() {
        let t = table();
        let mut agg = Aggregator::new(&t, 10, 1000, 2);
        // Exactly at the boundary: belongs to the second interval.
        agg.observe(&meta([10, 0, 0, 1], 1010, 100));
        let (m, _) = agg.finish();
        let p8 = m.key_id("10.0.0.0/8".parse().unwrap()).unwrap();
        assert_eq!(m.rate(0, p8), 0.0);
        assert_eq!(m.rate(1, p8), 80.0);
    }

    #[test]
    fn rejects_are_counted_not_dropped() {
        let t = table();
        let mut agg = Aggregator::new(&t, 10, 1000, 2);
        agg.observe(&meta([11, 0, 0, 1], 1005, 100)); // unroutable
        agg.observe(&meta([10, 0, 0, 1], 999, 100)); // before window
        agg.observe(&meta([10, 0, 0, 1], 1020, 100)); // after window
        agg.observe_raw(LinkType::RawIp, &[0xFF; 10], 1_005_000_000_000); // malformed
        agg.observe(&meta([10, 0, 0, 1], 1005, 100)); // good

        let stats = agg.stats();
        assert_eq!(stats.offered, 5);
        assert_eq!(stats.unroutable, 1);
        assert_eq!(stats.out_of_window, 2);
        assert_eq!(stats.malformed, 1);
        assert_eq!(stats.attributed, 1);
        assert!(stats.is_conserved());
    }

    #[test]
    fn observe_raw_parses_real_packets() {
        let t = table();
        let mut agg = Aggregator::new(&t, 10, 0, 1);
        let bytes = PacketBuilder::udp()
            .src(Ipv4Addr::new(198, 18, 0, 1), 9)
            .dst(Ipv4Addr::new(10, 1, 2, 3), 53)
            .payload_len(72)
            .build_ipv4();
        agg.observe_raw(LinkType::RawIp, &bytes, 5_000_000_000);
        let (m, stats) = agg.finish();
        assert_eq!(stats.attributed, 1);
        let p16 = m.key_id("10.1.0.0/16".parse().unwrap()).unwrap();
        assert_eq!(m.rate(0, p16), bytes.len() as f64 * 8.0 / 10.0);
    }

    #[test]
    fn pcap_path_counts_malformed_records() {
        use eleph_packet::pcap::PcapWriter;
        let t = table();
        let good = PacketBuilder::tcp()
            .src(Ipv4Addr::new(198, 18, 0, 1), 1)
            .dst(Ipv4Addr::new(10, 0, 0, 2), 80)
            .payload_len(100)
            .build_ipv4();

        let mut buf = Vec::new();
        let mut w = PcapWriter::new(&mut buf, LinkType::RawIp.code()).unwrap();
        w.write_record(1_000_000_000, good.len() as u32, &good).unwrap();
        w.write_record(2_000_000_000, 4, &[0xDE, 0xAD, 0xBE, 0xEF]).unwrap();
        w.finish().unwrap();

        let (m, stats) = aggregate_pcap(&buf[..], &t, 10, 0, 1).unwrap();
        assert_eq!(stats.offered, 2);
        assert_eq!(stats.attributed, 1);
        assert_eq!(stats.malformed, 1);
        assert!(stats.is_conserved());
        assert_eq!(m.n_keys(), 1);
    }

    #[test]
    fn empty_aggregation_is_empty_matrix() {
        let t = table();
        let agg = Aggregator::new(&t, 10, 0, 4);
        let (m, stats) = agg.finish();
        assert_eq!(stats.offered, 0);
        assert_eq!(m.n_keys(), 0);
        assert_eq!(m.n_intervals(), 4);
        for n in 0..4 {
            assert_eq!(m.active(n), 0);
            assert_eq!(m.total(n), 0.0);
        }
    }

    #[test]
    #[should_panic(expected = "interval must be positive")]
    fn zero_interval_rejected() {
        let t = table();
        let _ = Aggregator::new(&t, 0, 0, 1);
    }
}
