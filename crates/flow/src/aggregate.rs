//! Streaming packet-to-interval aggregation.
//!
//! The hot path of the whole reproduction: on a backbone link this code
//! runs once per captured packet, millions of times per second. It is
//! therefore built around constant-time, allocation-free primitives:
//!
//! * attribution goes through a [`FrozenBgpTable`] (flat-array LPM,
//!   O(1), ≤ 2 dependent memory reads) and yields a dense
//!   [`eleph_bgp::RouteId`] — no trie pointer chase, no `Prefix → id`
//!   hash lookup; the pcap drivers decode records into 64-packet
//!   chunks and resolve them through the *batched*
//!   [`FrozenBgpTable::attribute_ids`], so the table's cache misses
//!   overlap across the chunk instead of costing one dependent miss
//!   per packet ([`Aggregator::observe_chunk`]);
//! * per-interval byte counts accumulate into plain `Vec<u64>` rows
//!   indexed by [`KeyId`] (dense, first-seen order), so the per-packet
//!   work is two array index operations and one add;
//! * interval assignment uses nanosecond bounds precomputed at
//!   construction — no per-packet multiplies;
//! * pcap streaming reuses one capture buffer
//!   ([`PcapReader::next_record_into`]) instead of allocating per
//!   record.
//!
//! [`aggregate_pcap_parallel`] shards a capture across threads and
//! merges shard results into output **byte-identical** to the serial
//! [`aggregate_pcap`] (pinned by `tests/tests/pipeline_equivalence.rs`).

use std::io::Read;

use eleph_bgp::{BgpTable, FrozenBgpTable, RouteId};
use eleph_net::{LpmView, Prefix};
use eleph_packet::pcap::{PcapReader, PcapSlice, RecordHeader};
use eleph_packet::{parse_buf_meta, LinkType, PacketMeta};

use crate::{BandwidthMatrix, KeyId};

/// Sentinel for "route not yet assigned a key" in dense
/// `RouteId → KeyId` maps. Shared with the streaming pipeline, whose
/// key assignment must mirror the batch aggregator's exactly.
pub const NO_KEY: KeyId = KeyId::MAX;

/// Validate a measurement window's configuration and return its hoisted
/// nanosecond bounds `(start_ns, interval_ns)`.
///
/// Shared by the batch [`Aggregator`] and the streaming pipeline so the
/// two paths cannot drift: both hot paths deliberately trust these
/// bounds, and a silent wraparound here would mis-bin every packet of a
/// run (a PR 2 regression in the batch path).
///
/// # Panics
///
/// Panics when `interval_secs` is zero or either bound overflows `u64`.
pub fn window_bounds_ns(interval_secs: u64, start_unix: u64) -> (u64, u64) {
    assert!(interval_secs > 0, "interval must be positive");
    let start_ns = start_unix
        .checked_mul(1_000_000_000)
        .expect("start_unix too large: nanoseconds since the epoch overflow u64");
    let interval_ns = interval_secs
        .checked_mul(1_000_000_000)
        .expect("interval_secs too large: interval length in nanoseconds overflows u64");
    (start_ns, interval_ns)
}

/// Packets attributed per batched-lookup call on the chunked paths.
///
/// Large enough that the flat table's stage-1 cache misses overlap
/// across the whole out-of-order window, small enough that the
/// destination/route scratch arrays live on the stack.
pub const ATTRIBUTION_CHUNK: usize = 64;

/// Batch-resolve `metas`' destinations through an attribution table,
/// appending one `Option<RouteId>` per packet to `routes` (cleared
/// first). Lookups issue in [`ATTRIBUTION_CHUNK`]-sized chunks through
/// [`LpmView::lookup_batch`], so every chunk's cache misses overlap
/// before any result is consumed — the shared stage-1 of both the
/// batch aggregator and the streaming pipeline (one copy, so the two
/// paths cannot drift on chunking or issue order).
///
/// Generic over [`LpmView`] so the same code serves a
/// [`FrozenBgpTable`] snapshot and a pinned live
/// `eleph_bgp::TableView` — mid-stream re-attribution reuses the
/// identical chunking.
pub fn attribute_metas<T: LpmView<u32> + ?Sized>(
    table: &T,
    metas: &[PacketMeta],
    routes: &mut Vec<Option<RouteId>>,
) {
    routes.clear();
    routes.reserve(metas.len());
    let mut dsts = [0u32; ATTRIBUTION_CHUNK];
    let mut chunk_routes: [Option<RouteId>; ATTRIBUTION_CHUNK] = [None; ATTRIBUTION_CHUNK];
    for chunk in metas.chunks(ATTRIBUTION_CHUNK) {
        let n = chunk.len();
        for (d, m) in dsts[..n].iter_mut().zip(chunk) {
            *d = u32::from(m.dst);
        }
        table.lookup_batch(&dsts[..n], &mut chunk_routes[..n]);
        routes.extend_from_slice(&chunk_routes[..n]);
    }
}

/// Dense first-seen `RouteId → KeyId` assignment, shared by the batch
/// aggregator and the streaming pipeline.
///
/// Key order is the heart of the batch/streaming bit-identity contract:
/// a key id is allocated the first time an attributed in-window packet
/// touches its route, in stream order. Keeping the allocator in one
/// place means a change to that rule cannot reach one path and miss the
/// other.
#[derive(Debug)]
pub struct KeyAllocator {
    /// [`NO_KEY`] = unassigned.
    route_to_key: Vec<KeyId>,
    n_keys: usize,
}

impl KeyAllocator {
    /// Allocator pre-sized for a table's route id space. The map grows
    /// on demand when a route id beyond `n_routes` appears — a live
    /// table's announces allocate fresh ids past the initial space, and
    /// each becomes a fresh key on first touch (a withdrawn-then-
    /// re-announced prefix is deliberately a *new* key: old keys drain
    /// through the classifier's latent-heat window, history is never
    /// rewritten).
    pub fn new(n_routes: usize) -> Self {
        KeyAllocator {
            route_to_key: vec![NO_KEY; n_routes],
            n_keys: 0,
        }
    }

    /// The key for `route`, assigning the next dense id on first touch.
    /// Returns `(key, newly_assigned)` so callers can record their
    /// per-key metadata (prefix, first-seen position) exactly once.
    #[inline]
    pub fn key_for(&mut self, route: RouteId) -> (KeyId, bool) {
        if route as usize >= self.route_to_key.len() {
            self.route_to_key.resize(route as usize + 1, NO_KEY);
        }
        let slot = &mut self.route_to_key[route as usize];
        if *slot == NO_KEY {
            let key = self.n_keys as KeyId;
            *slot = key;
            self.n_keys += 1;
            (key, true)
        } else {
            (*slot, false)
        }
    }

    /// Keys assigned so far.
    pub fn n_keys(&self) -> usize {
        self.n_keys
    }

    /// The inverse mapping, ordered by key id: `result[k]` is the route
    /// that was first-seen as key `k`. This is the allocator's canonical
    /// checkpoint form — denser than the sparse route table and enough
    /// to rebuild it exactly.
    pub fn key_routes(&self) -> Vec<RouteId> {
        let mut routes = vec![0 as RouteId; self.n_keys];
        for (route, &key) in self.route_to_key.iter().enumerate() {
            if key != NO_KEY {
                routes[key as usize] = route as RouteId;
            }
        }
        routes
    }

    /// Rebuild an allocator from its [`KeyAllocator::key_routes`] form.
    /// Every route must be in bounds and distinct, or the mapping could
    /// not have come from first-seen assignment.
    pub fn from_key_routes(n_routes: usize, key_routes: &[RouteId]) -> Result<Self, String> {
        let mut alloc = KeyAllocator::new(n_routes);
        for (key, &route) in key_routes.iter().enumerate() {
            let slot = alloc
                .route_to_key
                .get_mut(route as usize)
                .ok_or_else(|| format!("key {key}: route {route} outside table of {n_routes}"))?;
            if *slot != NO_KEY {
                return Err(format!("route {route} assigned to keys {} and {key}", *slot));
            }
            *slot = key as KeyId;
        }
        alloc.n_keys = key_routes.len();
        Ok(alloc)
    }
}

/// Accounting for every packet offered to an [`Aggregator`].
///
/// The paper's methodology implicitly requires conservation: every
/// captured packet is either attributed to a prefix or counted in one of
/// the reject buckets. The robustness tests assert
/// `attributed + unroutable + out_of_window + malformed == offered`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct AggregatorStats {
    /// Packets offered.
    pub offered: u64,
    /// Packets attributed to a prefix and binned.
    pub attributed: u64,
    /// Bytes attributed.
    pub attributed_bytes: u64,
    /// Packets whose destination matched no table entry.
    pub unroutable: u64,
    /// Packets timestamped outside the configured window.
    pub out_of_window: u64,
    /// Raw packets that failed to parse.
    pub malformed: u64,
}

impl AggregatorStats {
    /// Conservation check: all offered packets are accounted for.
    pub fn is_conserved(&self) -> bool {
        self.attributed + self.unroutable + self.out_of_window + self.malformed == self.offered
    }

    /// Component-wise sum (shard merge).
    fn merge(&mut self, other: &AggregatorStats) {
        self.offered += other.offered;
        self.attributed += other.attributed;
        self.attributed_bytes += other.attributed_bytes;
        self.unroutable += other.unroutable;
        self.out_of_window += other.out_of_window;
        self.malformed += other.malformed;
    }
}

/// A frozen attribution table, owned or borrowed: owned when built
/// from a live [`BgpTable`], borrowed when several consumers (shard
/// workers, streaming pipelines) share one freeze. Shared with the
/// streaming pipeline so both paths hold their table the same way.
#[derive(Debug)]
pub enum FrozenTableRef<'t> {
    /// Owns its freeze.
    Owned(Box<FrozenBgpTable>),
    /// Borrows a shared freeze.
    Borrowed(&'t FrozenBgpTable),
}

impl FrozenTableRef<'_> {
    /// The table itself.
    #[inline]
    pub fn get(&self) -> &FrozenBgpTable {
        match self {
            FrozenTableRef::Owned(t) => t,
            FrozenTableRef::Borrowed(t) => t,
        }
    }
}

/// Streaming aggregator: packets in, [`BandwidthMatrix`] out.
#[derive(Debug)]
pub struct Aggregator<'t> {
    table: FrozenTableRef<'t>,
    interval_secs: u64,
    start_unix: u64,
    n_intervals: usize,
    /// `start_unix` in nanoseconds, hoisted out of [`Aggregator::observe`].
    start_ns: u64,
    /// Interval length in nanoseconds, hoisted out of [`Aggregator::observe`].
    interval_ns: u64,
    /// Per interval: bytes per key, dense, indexed by [`KeyId`]. Rows
    /// grow lazily as keys appear, so an interval that saw few prefixes
    /// stays short.
    rows: Vec<Vec<u64>>,
    /// Route of each key, in first-seen order (`keys` of the matrix).
    key_routes: Vec<RouteId>,
    /// Stream position at which each key was first seen; lets the
    /// parallel merge reconstruct global first-seen order from
    /// arbitrarily partitioned shards.
    key_first: Vec<u64>,
    /// Shared first-seen key assignment.
    keys: KeyAllocator,
    /// Reusable buffer for [`attribute_metas`] results.
    route_scratch: Vec<Option<RouteId>>,
    stats: AggregatorStats,
}

impl<'t> Aggregator<'t> {
    /// Create an aggregator for `n_intervals` intervals of
    /// `interval_secs` starting at `start_unix`.
    ///
    /// Freezes a read-optimized copy of `table`; to amortize one freeze
    /// across several aggregators use [`Aggregator::with_frozen`].
    pub fn new(
        table: &BgpTable,
        interval_secs: u64,
        start_unix: u64,
        n_intervals: usize,
    ) -> Self {
        Self::build(
            FrozenTableRef::Owned(Box::new(table.freeze())),
            interval_secs,
            start_unix,
            n_intervals,
        )
    }

    /// Create an aggregator borrowing an existing frozen table.
    pub fn with_frozen(
        table: &'t FrozenBgpTable,
        interval_secs: u64,
        start_unix: u64,
        n_intervals: usize,
    ) -> Self {
        Self::build(
            FrozenTableRef::Borrowed(table),
            interval_secs,
            start_unix,
            n_intervals,
        )
    }

    fn build(
        table: FrozenTableRef<'t>,
        interval_secs: u64,
        start_unix: u64,
        n_intervals: usize,
    ) -> Self {
        let (start_ns, interval_ns) = window_bounds_ns(interval_secs, start_unix);
        let n_routes = table.get().len();
        Aggregator {
            table,
            interval_secs,
            start_unix,
            n_intervals,
            start_ns,
            interval_ns,
            rows: vec![Vec::new(); n_intervals],
            key_routes: Vec::new(),
            key_first: Vec::new(),
            keys: KeyAllocator::new(n_routes),
            route_scratch: Vec::new(),
            stats: AggregatorStats::default(),
        }
    }

    /// Observe one parsed packet.
    #[inline]
    pub fn observe(&mut self, meta: &PacketMeta) {
        // For a serial aggregator the offered count *is* the stream
        // position.
        let position = self.stats.offered;
        self.observe_at(meta, position);
    }

    /// Observe a slice of parsed packets, batching the attribution
    /// lookups.
    ///
    /// Behaves exactly like calling [`Aggregator::observe`] on each
    /// packet in order — same statistics, same first-seen key order —
    /// but resolves destinations through the frozen table's batch API
    /// ([`eleph_bgp::FrozenBgpTable::attribute_ids`]) in chunks of 64,
    /// so attribution cache misses overlap across packets instead of
    /// serialising. This is the form the pcap drivers feed.
    pub fn observe_chunk(&mut self, metas: &[PacketMeta]) {
        let mut positions = [0u64; ATTRIBUTION_CHUNK];
        for chunk in metas.chunks(ATTRIBUTION_CHUNK) {
            // For a serial aggregator the offered count is the stream
            // position of the chunk's first packet.
            let base = self.stats.offered;
            for (i, p) in positions[..chunk.len()].iter_mut().enumerate() {
                *p = base + i as u64;
            }
            self.observe_chunk_at(chunk, &positions[..chunk.len()]);
        }
    }

    /// [`Aggregator::observe_chunk`] with explicit stream positions,
    /// used by shard workers whose packets are a non-contiguous subset
    /// of the stream. `metas` and `positions` run in parallel; any
    /// length is accepted ([`attribute_metas`] chunks internally).
    fn observe_chunk_at(&mut self, metas: &[PacketMeta], positions: &[u64]) {
        debug_assert_eq!(metas.len(), positions.len());
        // Batched attribution through the shared helper: every chunk's
        // lookups issue before any result is consumed. Out-of-window
        // packets are attributed too — their result is simply never
        // read, so the reject accounting below is unchanged.
        let mut routes = std::mem::take(&mut self.route_scratch);
        attribute_metas(self.table.get(), metas, &mut routes);
        for ((meta, &route), &position) in metas.iter().zip(routes.iter()).zip(positions) {
            self.apply(meta, route, position);
        }
        self.route_scratch = routes;
    }

    /// [`Aggregator::observe`] with an explicit stream position, used
    /// by shard workers whose packets are a non-contiguous subset of
    /// the stream. Unlike the batched path, the lookup runs only for
    /// in-window packets — a rejected packet costs no table access.
    #[inline]
    fn observe_at(&mut self, meta: &PacketMeta, position: u64) {
        self.stats.offered += 1;
        let Some(interval) = self.interval_of(meta.ts_ns) else {
            self.stats.out_of_window += 1;
            return;
        };
        let route = self.table.get().attribute_id(u32::from(meta.dst));
        self.bin(meta, route, interval, position);
    }

    /// Account one packet whose attribution has already been resolved:
    /// the batched path's tail. The check order (window before
    /// routability) fixes which reject bucket a doubly-bad packet lands
    /// in; both observe paths agree on it, keeping parallel output
    /// byte-identical to serial.
    #[inline]
    fn apply(&mut self, meta: &PacketMeta, route: Option<RouteId>, position: u64) {
        self.stats.offered += 1;
        let Some(interval) = self.interval_of(meta.ts_ns) else {
            self.stats.out_of_window += 1;
            return;
        };
        self.bin(meta, route, interval, position);
    }

    /// The interval containing `ts_ns`, if inside the configured window.
    #[inline]
    fn interval_of(&self, ts_ns: u64) -> Option<usize> {
        if ts_ns < self.start_ns {
            return None;
        }
        let interval = (ts_ns - self.start_ns) / self.interval_ns;
        if interval < self.n_intervals as u64 {
            Some(interval as usize)
        } else {
            None
        }
    }

    /// Bin one in-window packet under its route (or count it
    /// unroutable): the shared tail of both observe paths.
    #[inline]
    fn bin(&mut self, meta: &PacketMeta, route: Option<RouteId>, interval: usize, position: u64) {
        let Some(route) = route else {
            self.stats.unroutable += 1;
            return;
        };
        let (key, newly_assigned) = self.keys.key_for(route);
        if newly_assigned {
            self.key_routes.push(route);
            self.key_first.push(position);
        }
        let row = &mut self.rows[interval];
        if key as usize >= row.len() {
            row.resize(key as usize + 1, 0);
        }
        row[key as usize] += u64::from(meta.wire_len);
        self.stats.attributed += 1;
        self.stats.attributed_bytes += u64::from(meta.wire_len);
    }

    /// Observe one raw packet (parse, then bin); parse failures are
    /// counted as malformed, never propagated as errors.
    pub fn observe_raw(&mut self, link: LinkType, data: &[u8], ts_ns: u64) {
        match eleph_packet::parse_meta(link, data, ts_ns) {
            Ok(meta) => self.observe(&meta),
            Err(_) => {
                self.stats.offered += 1;
                self.stats.malformed += 1;
            }
        }
    }

    /// Current statistics.
    pub fn stats(&self) -> AggregatorStats {
        self.stats
    }

    /// Convert accumulated bytes to average bandwidths and produce the
    /// matrix.
    pub fn finish(self) -> (BandwidthMatrix, AggregatorStats) {
        let keys: Vec<Prefix> = self
            .key_routes
            .iter()
            .map(|&r| self.table.get().prefix(r))
            .collect();
        let matrix = matrix_from_rows(self.interval_secs, self.start_unix, keys, &self.rows);
        (matrix, self.stats)
    }

    /// Decompose into shard-merge parts.
    fn into_parts(self) -> ShardParts {
        ShardParts {
            key_routes: self.key_routes,
            key_first: self.key_first,
            rows: self.rows,
            stats: self.stats,
        }
    }
}

/// Reusable decode buffer feeding [`Aggregator::observe_chunk_at`].
///
/// Shared by the serial pcap loop and the parallel shard workers so
/// their buffer/flush behaviour cannot diverge — the byte-identical
/// parallel output depends on both paths accounting stream positions
/// the same way.
struct ChunkBuffer {
    metas: Vec<PacketMeta>,
    positions: Vec<u64>,
}

impl ChunkBuffer {
    fn new() -> Self {
        ChunkBuffer {
            metas: Vec::with_capacity(ATTRIBUTION_CHUNK),
            positions: Vec::with_capacity(ATTRIBUTION_CHUNK),
        }
    }

    /// Buffer one parsed packet at its stream position, flushing to
    /// `agg` whenever a full attribution chunk has accumulated.
    #[inline]
    fn push(&mut self, agg: &mut Aggregator<'_>, meta: PacketMeta, position: u64) {
        self.metas.push(meta);
        self.positions.push(position);
        if self.metas.len() == ATTRIBUTION_CHUNK {
            self.flush(agg);
        }
    }

    /// Flush buffered packets (if any) to `agg`.
    fn flush(&mut self, agg: &mut Aggregator<'_>) {
        agg.observe_chunk_at(&self.metas, &self.positions);
        self.metas.clear();
        self.positions.clear();
    }
}

/// One shard's accumulation state, ready for merging.
struct ShardParts {
    key_routes: Vec<RouteId>,
    key_first: Vec<u64>,
    rows: Vec<Vec<u64>>,
    stats: AggregatorStats,
}

/// Dense byte rows → sparse bandwidth matrix. Entries that accumulated
/// zero bytes are omitted, exactly like a key that never appeared in
/// the interval.
fn matrix_from_rows(
    interval_secs: u64,
    start_unix: u64,
    keys: Vec<Prefix>,
    rows: &[Vec<u64>],
) -> BandwidthMatrix {
    let secs = interval_secs as f64;
    let intervals: Vec<Vec<(KeyId, f32)>> = rows
        .iter()
        .map(|row| {
            row.iter()
                .enumerate()
                .filter(|&(_, &bytes)| bytes > 0)
                .map(|(key, &bytes)| (key as KeyId, (bytes as f64 * 8.0 / secs) as f32))
                .collect()
        })
        .collect();
    BandwidthMatrix::from_parts(interval_secs, start_unix, keys, intervals)
}

/// Aggregate a whole pcap stream. Records that fail structural pcap
/// parsing abort with the error (a damaged file is not a measurement);
/// packets inside records that fail *packet* parsing are counted as
/// malformed and skipped.
pub fn aggregate_pcap<R: Read>(
    input: R,
    table: &BgpTable,
    interval_secs: u64,
    start_unix: u64,
    n_intervals: usize,
) -> eleph_packet::Result<(BandwidthMatrix, AggregatorStats)> {
    aggregate_pcap_with(
        input,
        Aggregator::new(table, interval_secs, start_unix, n_intervals),
    )
}

/// [`aggregate_pcap`] against an already-frozen table — the serial
/// steady-state form when one RIB serves many captures (mirrors
/// [`aggregate_pcap_parallel_frozen`]).
pub fn aggregate_pcap_frozen<R: Read>(
    input: R,
    frozen: &FrozenBgpTable,
    interval_secs: u64,
    start_unix: u64,
    n_intervals: usize,
) -> eleph_packet::Result<(BandwidthMatrix, AggregatorStats)> {
    aggregate_pcap_with(
        input,
        Aggregator::with_frozen(frozen, interval_secs, start_unix, n_intervals),
    )
}

/// The shared pcap drive loop behind both serial entry points.
fn aggregate_pcap_with<R: Read>(
    input: R,
    mut agg: Aggregator<'_>,
) -> eleph_packet::Result<(BandwidthMatrix, AggregatorStats)> {
    let mut reader = PcapReader::new(input)?;
    let link = LinkType::from_code(reader.header().linktype)?;
    let mut buf = Vec::new();
    // Decode into meta chunks and batch-attribute them. Stream
    // positions count every record (including malformed ones, which are
    // rejected immediately), exactly as the one-at-a-time path did.
    let mut chunk = ChunkBuffer::new();
    let mut position: u64 = 0;
    while let Some(head) = reader.next_record_into(&mut buf)? {
        match parse_buf_meta(link, &buf, &head) {
            Ok(meta) => chunk.push(&mut agg, meta, position),
            Err(_) => {
                agg.stats.offered += 1;
                agg.stats.malformed += 1;
            }
        }
        position += 1;
    }
    chunk.flush(&mut agg);
    Ok(agg.finish())
}

/// Records per batch sent from the scanner to the worker pool. At
/// typical backbone packet sizes one batch is a couple of MiB of
/// capture — coarse enough that channel traffic is negligible, fine
/// enough that the pool load-balances.
const PARALLEL_BATCH: usize = 4096;

/// One unit of scanner → worker work: the batch's starting stream
/// position and its record slices (borrowed from the capture buffer).
type Batch<'p> = (u64, Vec<(RecordHeader, &'p [u8])>);

/// [`aggregate_pcap`] across worker threads.
///
/// The capture is processed as a pipeline: this thread scans the
/// in-memory capture into zero-copy record batches ([`PcapSlice`])
/// while a helper thread freezes the table and then fans the batches
/// out to a worker pool; each worker aggregates its batches against
/// the shared frozen table, and shard results are merged at the end.
/// Scanning, freezing and packet parsing all overlap.
///
/// The merge reconstructs the global first-seen key order from each
/// shard's recorded first-touch stream positions, so the returned
/// matrix and statistics are **byte-identical** to the serial path on
/// the same input (asserted by the pipeline-equivalence tests): byte
/// counts are exact `u64` sums whichever thread they land on, and the
/// bytes→rate float conversion happens once, after merging.
///
/// `threads == 0` selects the available hardware parallelism. The
/// capture must be in memory (or memory-mapped) for splitting; use the
/// streaming serial [`aggregate_pcap`] when that is unacceptable. When
/// aggregating many captures against one table, freeze it once and call
/// [`aggregate_pcap_parallel_frozen`].
pub fn aggregate_pcap_parallel(
    pcap: &[u8],
    table: &BgpTable,
    interval_secs: u64,
    start_unix: u64,
    n_intervals: usize,
    threads: usize,
) -> eleph_packet::Result<(BandwidthMatrix, AggregatorStats)> {
    aggregate_parallel_impl(
        pcap,
        TableSource::Live(table),
        interval_secs,
        start_unix,
        n_intervals,
        threads,
    )
}

/// [`aggregate_pcap_parallel`] against an already-frozen table — the
/// steady-state form when one RIB serves many captures (or one capture
/// per measurement interval).
pub fn aggregate_pcap_parallel_frozen(
    pcap: &[u8],
    frozen: &FrozenBgpTable,
    interval_secs: u64,
    start_unix: u64,
    n_intervals: usize,
    threads: usize,
) -> eleph_packet::Result<(BandwidthMatrix, AggregatorStats)> {
    aggregate_parallel_impl(
        pcap,
        TableSource::Frozen(frozen),
        interval_secs,
        start_unix,
        n_intervals,
        threads,
    )
}

/// Where the frozen attribution table comes from.
#[derive(Clone, Copy)]
enum TableSource<'a> {
    /// Freeze this live table (overlapped with the record scan).
    Live(&'a BgpTable),
    /// Use an existing freeze.
    Frozen(&'a FrozenBgpTable),
}

fn aggregate_parallel_impl(
    pcap: &[u8],
    source: TableSource<'_>,
    interval_secs: u64,
    start_unix: u64,
    n_intervals: usize,
    threads: usize,
) -> eleph_packet::Result<(BandwidthMatrix, AggregatorStats)> {
    let threads = if threads == 0 {
        std::thread::available_parallelism().map_or(1, |n| n.get())
    } else {
        threads.max(1)
    };

    let mut cursor = PcapSlice::new(pcap)?;
    let link = LinkType::from_code(cursor.header().linktype)?;

    // A frozen reference usable after the scope (the Live case instead
    // moves its freshly-built table out of the driver thread).
    let caller_frozen = match source {
        TableSource::Frozen(f) => Some(f),
        TableSource::Live(_) => None,
    };

    let (tx, rx) = std::sync::mpsc::channel::<Batch<'_>>();
    let rx = std::sync::Mutex::new(rx);

    let ((frozen_owned, shards), scan_result) = std::thread::scope(|scope| {
        // Driver thread: freeze (if needed), then run the worker pool
        // against the batch channel. Meanwhile this thread scans.
        let rx = &rx;
        let driver = scope.spawn(move || {
            let frozen_owned = match source {
                TableSource::Live(table) => Some(table.freeze()),
                TableSource::Frozen(_) => None,
            };
            let frozen: &FrozenBgpTable = match source {
                TableSource::Live(_) => frozen_owned.as_ref().expect("just frozen"),
                TableSource::Frozen(f) => f,
            };
            let shards: Vec<ShardParts> = std::thread::scope(|pool| {
                let handles: Vec<_> = (0..threads)
                    .map(|_| {
                        pool.spawn(move || {
                            let mut agg = Aggregator::with_frozen(
                                frozen,
                                interval_secs,
                                start_unix,
                                n_intervals,
                            );
                            let mut chunk = ChunkBuffer::new();
                            loop {
                                // Hold the lock only to pull a batch.
                                let batch = rx.lock().expect("receiver lock").recv();
                                let Ok((start, records)) = batch else {
                                    break; // scanner done and channel drained
                                };
                                // Decode into meta chunks and batch-attribute,
                                // flushing at the batch boundary.
                                for (i, (head, data)) in records.iter().enumerate() {
                                    match parse_buf_meta(link, data, head) {
                                        Ok(meta) => {
                                            chunk.push(&mut agg, meta, start + i as u64)
                                        }
                                        Err(_) => {
                                            agg.stats.offered += 1;
                                            agg.stats.malformed += 1;
                                        }
                                    }
                                }
                                chunk.flush(&mut agg);
                            }
                            agg.into_parts()
                        })
                    })
                    .collect();
                handles
                    .into_iter()
                    .map(|h| h.join().expect("shard aggregation does not panic"))
                    .collect()
            });
            (frozen_owned, shards)
        });

        // Scanner: batch up record slices with the two-cursor
        // scan-ahead walk ([`PcapSlice::next_batch`]), which keeps the
        // dependent header chain out of cold memory. A structural error
        // aborts the scan (as in the serial path); already-sent batches
        // are drained by the workers and discarded with the error below.
        let scan = (|| -> eleph_packet::Result<()> {
            let mut position: u64 = 0;
            loop {
                let mut batch: Vec<(RecordHeader, &[u8])> = Vec::with_capacity(PARALLEL_BATCH);
                let n = cursor.next_batch(PARALLEL_BATCH, &mut batch)?;
                if n == 0 {
                    break;
                }
                let _ = tx.send((position, batch));
                position += n as u64;
            }
            Ok(())
        })();
        drop(tx); // close the channel: workers drain and exit

        (driver.join().expect("driver does not panic"), scan)
    });
    scan_result?;
    let frozen = frozen_owned
        .as_ref()
        .or(caller_frozen)
        .expect("one table source is always present");

    Ok(merge_shards(
        shards,
        frozen,
        interval_secs,
        start_unix,
        n_intervals,
    ))
}

/// Merge shard accumulations into the final matrix.
///
/// Keys are ordered by the *global* stream position at which any shard
/// first saw their route — exactly the serial first-seen order, however
/// the records were partitioned. Byte counts are exact integer sums, so
/// the result is bit-identical to serial aggregation.
fn merge_shards(
    shards: Vec<ShardParts>,
    frozen: &FrozenBgpTable,
    interval_secs: u64,
    start_unix: u64,
    n_intervals: usize,
) -> (BandwidthMatrix, AggregatorStats) {
    let n_routes = frozen.len();
    // Earliest first-touch position per route across shards.
    let mut first_seen: Vec<u64> = vec![u64::MAX; n_routes];
    let mut stats = AggregatorStats::default();
    for shard in &shards {
        for (local, &route) in shard.key_routes.iter().enumerate() {
            let at = shard.key_first[local];
            if at < first_seen[route as usize] {
                first_seen[route as usize] = at;
            }
        }
        stats.merge(&shard.stats);
    }

    // Global key order: routes sorted by first touch.
    let mut order: Vec<(u64, RouteId)> = first_seen
        .iter()
        .enumerate()
        .filter(|&(_, &at)| at != u64::MAX)
        .map(|(route, &at)| (at, route as RouteId))
        .collect();
    order.sort_unstable();
    let mut route_to_key: Vec<KeyId> = vec![NO_KEY; n_routes];
    let mut keys: Vec<Prefix> = Vec::with_capacity(order.len());
    for (key, &(_, route)) in order.iter().enumerate() {
        route_to_key[route as usize] = key as KeyId;
        keys.push(frozen.prefix(route));
    }

    let mut rows: Vec<Vec<u64>> = vec![vec![0u64; keys.len()]; n_intervals];
    for shard in &shards {
        for (interval, shard_row) in shard.rows.iter().enumerate() {
            let row = &mut rows[interval];
            for (local, &bytes) in shard_row.iter().enumerate() {
                if bytes == 0 {
                    continue;
                }
                let key = route_to_key[shard.key_routes[local] as usize];
                row[key as usize] += bytes;
            }
        }
    }

    let matrix = matrix_from_rows(interval_secs, start_unix, keys, &rows);
    (matrix, stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use eleph_bgp::{Origin, PeerClass, RouteEntry};
    use eleph_packet::{IpProtocol, PacketBuilder};
    use std::net::Ipv4Addr;

    fn table() -> BgpTable {
        BgpTable::from_entries(vec![
            RouteEntry {
                prefix: "10.0.0.0/8".parse().unwrap(),
                next_hop: Ipv4Addr::new(192, 0, 2, 1),
                as_path: vec![1],
                origin: Origin::Igp,
                peer_class: PeerClass::Tier1,
            },
            RouteEntry {
                prefix: "10.1.0.0/16".parse().unwrap(),
                next_hop: Ipv4Addr::new(192, 0, 2, 2),
                as_path: vec![2],
                origin: Origin::Igp,
                peer_class: PeerClass::Tier2,
            },
        ])
    }

    fn meta(dst: [u8; 4], ts_s: u64, len: u32) -> PacketMeta {
        PacketMeta {
            ts_ns: ts_s * 1_000_000_000,
            src: Ipv4Addr::new(198, 18, 0, 1),
            dst: Ipv4Addr::from(dst),
            proto: IpProtocol::Tcp,
            src_port: 1,
            dst_port: 2,
            wire_len: len,
        }
    }

    #[test]
    fn bins_by_interval_and_prefix() {
        let t = table();
        let mut agg = Aggregator::new(&t, 10, 1000, 3);
        agg.observe(&meta([10, 2, 0, 1], 1000, 1000)); // /8, interval 0
        agg.observe(&meta([10, 2, 0, 1], 1009, 500)); // /8, interval 0
        agg.observe(&meta([10, 1, 0, 1], 1010, 300)); // /16, interval 1
        agg.observe(&meta([10, 2, 0, 1], 1029, 200)); // /8, interval 2

        let (m, stats) = agg.finish();
        assert_eq!(stats.attributed, 4);
        assert!(stats.is_conserved());

        let p8 = m.key_id("10.0.0.0/8".parse().unwrap()).unwrap();
        let p16 = m.key_id("10.1.0.0/16".parse().unwrap()).unwrap();
        // 1500 bytes over 10 s = 1200 b/s.
        assert_eq!(m.rate(0, p8), 1200.0);
        assert_eq!(m.rate(0, p16), 0.0);
        assert_eq!(m.rate(1, p16), 240.0);
        assert_eq!(m.rate(2, p8), 160.0);
    }

    #[test]
    fn keys_are_first_seen_order() {
        let t = table();
        let mut agg = Aggregator::new(&t, 10, 0, 1);
        agg.observe(&meta([10, 1, 0, 1], 0, 100)); // /16 first
        agg.observe(&meta([10, 2, 0, 1], 1, 100)); // /8 second
        let (m, _) = agg.finish();
        assert_eq!(m.key(0), "10.1.0.0/16".parse().unwrap());
        assert_eq!(m.key(1), "10.0.0.0/8".parse().unwrap());
    }

    #[test]
    fn shared_frozen_table_aggregation() {
        let t = table();
        let frozen = t.freeze();
        let mut a = Aggregator::with_frozen(&frozen, 10, 0, 1);
        let mut b = Aggregator::with_frozen(&frozen, 10, 0, 1);
        a.observe(&meta([10, 2, 0, 1], 5, 100));
        b.observe(&meta([10, 2, 0, 1], 5, 100));
        let (ma, _) = a.finish();
        let (mb, _) = b.finish();
        let key = ma.key_id("10.0.0.0/8".parse().unwrap()).unwrap();
        assert_eq!(ma.rate(0, key), mb.rate(0, key));
    }

    #[test]
    fn interval_boundaries_are_half_open() {
        let t = table();
        let mut agg = Aggregator::new(&t, 10, 1000, 2);
        // Exactly at the boundary: belongs to the second interval.
        agg.observe(&meta([10, 0, 0, 1], 1010, 100));
        let (m, _) = agg.finish();
        let p8 = m.key_id("10.0.0.0/8".parse().unwrap()).unwrap();
        assert_eq!(m.rate(0, p8), 0.0);
        assert_eq!(m.rate(1, p8), 80.0);
    }

    #[test]
    fn rejects_are_counted_not_dropped() {
        let t = table();
        let mut agg = Aggregator::new(&t, 10, 1000, 2);
        agg.observe(&meta([11, 0, 0, 1], 1005, 100)); // unroutable
        agg.observe(&meta([10, 0, 0, 1], 999, 100)); // before window
        agg.observe(&meta([10, 0, 0, 1], 1020, 100)); // after window
        agg.observe_raw(LinkType::RawIp, &[0xFF; 10], 1_005_000_000_000); // malformed
        agg.observe(&meta([10, 0, 0, 1], 1005, 100)); // good

        let stats = agg.stats();
        assert_eq!(stats.offered, 5);
        assert_eq!(stats.unroutable, 1);
        assert_eq!(stats.out_of_window, 2);
        assert_eq!(stats.malformed, 1);
        assert_eq!(stats.attributed, 1);
        assert!(stats.is_conserved());
    }

    #[test]
    fn observe_raw_parses_real_packets() {
        let t = table();
        let mut agg = Aggregator::new(&t, 10, 0, 1);
        let bytes = PacketBuilder::udp()
            .src(Ipv4Addr::new(198, 18, 0, 1), 9)
            .dst(Ipv4Addr::new(10, 1, 2, 3), 53)
            .payload_len(72)
            .build_ipv4();
        agg.observe_raw(LinkType::RawIp, &bytes, 5_000_000_000);
        let (m, stats) = agg.finish();
        assert_eq!(stats.attributed, 1);
        let p16 = m.key_id("10.1.0.0/16".parse().unwrap()).unwrap();
        assert_eq!(m.rate(0, p16), bytes.len() as f64 * 8.0 / 10.0);
    }

    #[test]
    fn pcap_path_counts_malformed_records() {
        use eleph_packet::pcap::PcapWriter;
        let t = table();
        let good = PacketBuilder::tcp()
            .src(Ipv4Addr::new(198, 18, 0, 1), 1)
            .dst(Ipv4Addr::new(10, 0, 0, 2), 80)
            .payload_len(100)
            .build_ipv4();

        let mut buf = Vec::new();
        let mut w = PcapWriter::new(&mut buf, LinkType::RawIp.code()).unwrap();
        w.write_record(1_000_000_000, good.len() as u32, &good).unwrap();
        w.write_record(2_000_000_000, 4, &[0xDE, 0xAD, 0xBE, 0xEF]).unwrap();
        w.finish().unwrap();

        let (m, stats) = aggregate_pcap(&buf[..], &t, 10, 0, 1).unwrap();
        assert_eq!(stats.offered, 2);
        assert_eq!(stats.attributed, 1);
        assert_eq!(stats.malformed, 1);
        assert!(stats.is_conserved());
        assert_eq!(m.n_keys(), 1);
    }

    #[test]
    fn parallel_path_matches_serial_exactly() {
        use eleph_packet::pcap::PcapWriter;
        let t = table();
        let mut buf = Vec::new();
        let mut w = PcapWriter::new(&mut buf, LinkType::RawIp.code()).unwrap();
        // A little stream mixing both prefixes, malformed records, and
        // all three intervals; /16 traffic appears before /8 so the
        // merge must also preserve first-seen key order across shards.
        for i in 0..40u64 {
            let dst = if i % 3 == 0 {
                Ipv4Addr::new(10, 1, 0, (i % 256) as u8)
            } else {
                Ipv4Addr::new(10, 2, 0, (i % 256) as u8)
            };
            let pkt = PacketBuilder::udp()
                .src(Ipv4Addr::new(198, 18, 0, 1), 9)
                .dst(dst, 53)
                .payload_len((i * 13 % 700) as usize)
                .build_ipv4();
            w.write_record(i * 700_000_000, pkt.len() as u32, &pkt).unwrap();
            if i % 11 == 0 {
                w.write_record(i * 700_000_000, 4, &[1, 2, 3, 4]).unwrap();
            }
        }
        w.finish().unwrap();

        let (sm, ss) = aggregate_pcap(&buf[..], &t, 10, 0, 3).unwrap();
        for threads in [1, 2, 3, 7, 64] {
            let (pm, ps) = aggregate_pcap_parallel(&buf[..], &t, 10, 0, 3, threads).unwrap();
            assert_eq!(ss, ps, "{threads} threads: stats diverge");
            assert_eq!(sm.n_keys(), pm.n_keys());
            for k in 0..sm.n_keys() as KeyId {
                assert_eq!(sm.key(k), pm.key(k), "{threads} threads: key order diverges");
            }
            for n in 0..sm.n_intervals() {
                assert_eq!(
                    sm.interval(n),
                    pm.interval(n),
                    "{threads} threads: interval {n} diverges"
                );
            }
        }
    }

    #[test]
    fn parallel_path_empty_stream() {
        use eleph_packet::pcap::PcapWriter;
        let t = table();
        let mut buf = Vec::new();
        let w = PcapWriter::new(&mut buf, LinkType::RawIp.code()).unwrap();
        w.finish().unwrap();
        let (m, stats) = aggregate_pcap_parallel(&buf[..], &t, 10, 0, 2, 0).unwrap();
        assert_eq!(stats.offered, 0);
        assert_eq!(m.n_keys(), 0);
        assert_eq!(m.n_intervals(), 2);
    }

    #[test]
    fn empty_aggregation_is_empty_matrix() {
        let t = table();
        let agg = Aggregator::new(&t, 10, 0, 4);
        let (m, stats) = agg.finish();
        assert_eq!(stats.offered, 0);
        assert_eq!(m.n_keys(), 0);
        assert_eq!(m.n_intervals(), 4);
        for n in 0..4 {
            assert_eq!(m.active(n), 0);
            assert_eq!(m.total(n), 0.0);
        }
    }

    #[test]
    #[should_panic(expected = "interval must be positive")]
    fn zero_interval_rejected() {
        let t = table();
        let _ = Aggregator::new(&t, 0, 0, 1);
    }

    #[test]
    #[should_panic(expected = "start_unix too large")]
    fn overflowing_start_rejected() {
        // Regression: `start_unix * 1_000_000_000` used to wrap silently
        // in release builds, mis-binning every packet.
        let t = table();
        let _ = Aggregator::new(&t, 10, u64::MAX / 1_000_000_000 + 1, 1);
    }

    #[test]
    #[should_panic(expected = "interval_secs too large")]
    fn overflowing_interval_rejected() {
        let t = table();
        let _ = Aggregator::new(&t, u64::MAX / 1_000_000_000 + 1, 0, 1);
    }

    #[test]
    fn largest_valid_start_accepted() {
        let t = table();
        let start = u64::MAX / 1_000_000_000; // largest second count whose ns fit u64
        let mut agg = Aggregator::new(&t, 1, start, 1);
        agg.observe(&meta([10, 0, 0, 1], start, 100));
        let (_, stats) = agg.finish();
        assert_eq!(stats.attributed, 1);
    }

    #[test]
    fn chunked_observe_matches_single_observe() {
        let t = table();
        // A stream mixing both prefixes, unroutable destinations and
        // out-of-window timestamps, across chunk-size boundaries.
        let metas: Vec<PacketMeta> = (0..200u64)
            .map(|i| {
                let dst = match i % 5 {
                    0 => [10, 1, 0, (i % 256) as u8],
                    4 => [192, 0, 2, 1], // unroutable
                    _ => [10, 2, 0, (i % 256) as u8],
                };
                let ts = if i % 17 == 0 { 5000 } else { 1000 + i / 8 }; // some out-of-window
                meta(dst, ts, 40 + (i % 1000) as u32)
            })
            .collect();

        let mut single = Aggregator::new(&t, 10, 1000, 3);
        for m in &metas {
            single.observe(m);
        }
        let frozen = t.freeze();
        for chunk_size in [1usize, 3, 63, 64, 65, 200] {
            let mut chunked = Aggregator::with_frozen(&frozen, 10, 1000, 3);
            for c in metas.chunks(chunk_size) {
                chunked.observe_chunk(c);
            }
            assert_eq!(chunked.stats(), single.stats(), "chunk size {chunk_size}");
        }
        let (sm, ss) = single.finish();
        let mut chunked = Aggregator::with_frozen(&frozen, 10, 1000, 3);
        chunked.observe_chunk(&metas);
        let (cm, cs) = chunked.finish();
        assert_eq!(ss, cs);
        assert_eq!(sm.n_keys(), cm.n_keys());
        for k in 0..sm.n_keys() as KeyId {
            assert_eq!(sm.key(k), cm.key(k), "key order diverges at {k}");
        }
        for n in 0..sm.n_intervals() {
            assert_eq!(sm.interval(n), cm.interval(n), "interval {n} diverges");
        }
    }

    #[test]
    fn key_allocator_round_trips_through_key_routes() {
        let mut alloc = KeyAllocator::new(10);
        for route in [7u32, 2, 9, 2, 7, 0] {
            alloc.key_for(route);
        }
        let routes = alloc.key_routes();
        assert_eq!(routes, vec![7, 2, 9, 0]);
        let mut rebuilt = KeyAllocator::from_key_routes(10, &routes).expect("valid");
        assert_eq!(rebuilt.n_keys(), 4);
        // Existing assignments are preserved; the next fresh route gets
        // the next dense id, exactly as the original would assign it.
        assert_eq!(rebuilt.key_for(9), (2, false));
        assert_eq!(rebuilt.key_for(0), (3, false));
        assert_eq!(rebuilt.key_for(5), (4, true));

        assert!(KeyAllocator::from_key_routes(10, &[1, 1]).is_err(), "duplicate route");
        assert!(KeyAllocator::from_key_routes(3, &[4]).is_err(), "route out of bounds");
    }
}
