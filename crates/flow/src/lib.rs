//! Flow measurement pipeline.
//!
//! Implements the paper's §II measurement methodology: time is discretised
//! into intervals of length `T` (default 5 minutes), every packet is
//! attributed to its longest-matching BGP prefix, and the per-prefix
//! average bandwidth `B_i(n)` over each interval is the quantity all
//! classification operates on.
//!
//! * [`BandwidthMatrix`] — the `B_i(n)` matrix keyed by prefix, stored
//!   as a frozen CSR-style columnar structure (one offsets array plus
//!   parallel key/rate columns, see [`IntervalView`]); built either
//!   from packets (via [`Aggregator`]) or directly from a rate-level
//!   synthetic trace ([`BandwidthMatrix::from_rate_trace`] — same
//!   object either way, which is what lets the experiments run at rate
//!   level while the integration tests pin packet-level equivalence);
//! * [`Aggregator`] — streaming packet-to-interval aggregation with full
//!   accounting ([`AggregatorStats`]): malformed, unroutable and
//!   out-of-window packets are counted, never silently dropped. The hot
//!   path is allocation- and hash-free: frozen flat-array attribution
//!   (`eleph_bgp::FrozenBgpTable`) into dense per-interval byte rows.
//!   Feed it packet *chunks* via [`Aggregator::observe_chunk`] where
//!   possible — attribution then goes through the frozen table's batch
//!   lookup, which overlaps lookup cache misses across the chunk
//!   (single-packet [`Aggregator::observe`] pays one dependent miss per
//!   packet); both forms produce identical output;
//! * [`aggregate_pcap`] — drive an [`Aggregator`] from a capture file
//!   (chunked decode + batched attribution internally);
//! * [`aggregate_pcap_parallel`] — the sharded multi-thread form, with
//!   output byte-identical to the serial path; its record scan uses the
//!   two-cursor scan-ahead walk (`eleph_packet::pcap::PcapSlice::next_batch`)
//!   so shard splitting is not memory-latency-bound;
//! * [`busiest_window`] — locate the paper's "five hour busy period".

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod aggregate;
mod matrix;
mod shard;
mod window;

pub use aggregate::{
    aggregate_pcap, aggregate_pcap_frozen, aggregate_pcap_parallel,
    aggregate_pcap_parallel_frozen, attribute_metas, window_bounds_ns, Aggregator,
    AggregatorStats, FrozenTableRef, KeyAllocator, ATTRIBUTION_CHUNK, NO_KEY,
};
pub use matrix::{BandwidthMatrix, IntervalView, KeyId};
pub use shard::ShardSpec;
pub use window::busiest_window;
