//! Key-space sharding: which of N workers owns a [`KeyId`].
//!
//! The sharded streaming pipeline partitions all per-key state by a
//! fixed function of the key id. Key ids are assigned first-seen by
//! [`crate::KeyAllocator`] on the attribution thread (their order is a
//! property of the packet stream, never of worker scheduling), and the
//! allocator hands each `(key, bytes)` pair off to the worker selected
//! by [`ShardSpec::owns`] — a modulo split, so a shard's keys form an
//! arithmetic progression and its *local* dense index is just
//! `key / n_shards`. Ascending local index is ascending global key
//! within a shard, which is what lets the seal barrier merge per-shard
//! results back into global key order with an N-way merge instead of a
//! sort.

use crate::KeyId;

/// One shard's identity in an N-way key partition.
///
/// The partition function is `key % n_shards`; it is part of the
/// pipeline's equivalence contract (checkpoints written by a sharded
/// run restore into any shard count, because state is exported merged).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardSpec {
    shard: u32,
    n_shards: u32,
}

impl ShardSpec {
    /// Shard `shard` of `n_shards` (`shard < n_shards`, `n_shards ≥ 1`).
    ///
    /// # Panics
    ///
    /// Panics when `n_shards` is 0 or `shard` is out of range.
    pub fn new(shard: usize, n_shards: usize) -> Self {
        assert!(n_shards >= 1, "need at least one shard");
        assert!(shard < n_shards, "shard {shard} out of range for {n_shards} shards");
        ShardSpec {
            shard: shard as u32,
            n_shards: n_shards as u32,
        }
    }

    /// This shard's index.
    pub fn shard(&self) -> usize {
        self.shard as usize
    }

    /// Total number of shards in the partition.
    pub fn n_shards(&self) -> usize {
        self.n_shards as usize
    }

    /// Whether this shard owns `key`.
    #[inline]
    pub fn owns(&self, key: KeyId) -> bool {
        key % self.n_shards == self.shard
    }

    /// The shard that owns `key` (same partition function as
    /// [`ShardSpec::owns`], for the routing side of the handoff).
    #[inline]
    pub fn owner(key: KeyId, n_shards: usize) -> usize {
        (key as usize) % n_shards
    }

    /// Dense local index of an owned key (`key / n_shards`). Ascending
    /// local index is ascending global key within the shard.
    #[inline]
    pub fn local(&self, key: KeyId) -> usize {
        debug_assert!(self.owns(key));
        (key / self.n_shards) as usize
    }

    /// The global key at a local index — inverse of [`ShardSpec::local`].
    #[inline]
    pub fn global(&self, local: usize) -> KeyId {
        local as KeyId * self.n_shards + self.shard
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn partition_covers_every_key_exactly_once() {
        for n in [1usize, 2, 4, 7] {
            let specs: Vec<ShardSpec> = (0..n).map(|s| ShardSpec::new(s, n)).collect();
            for key in 0..200u32 {
                let owners: Vec<usize> =
                    specs.iter().filter(|s| s.owns(key)).map(|s| s.shard()).collect();
                assert_eq!(owners.len(), 1, "key {key} owned by {owners:?}");
                assert_eq!(owners[0], ShardSpec::owner(key, n));
            }
        }
    }

    #[test]
    fn local_global_round_trip_preserves_order() {
        for n in [1usize, 2, 4, 7] {
            for s in 0..n {
                let spec = ShardSpec::new(s, n);
                let owned: Vec<KeyId> = (0..300u32).filter(|&k| spec.owns(k)).collect();
                for (i, &key) in owned.iter().enumerate() {
                    assert_eq!(spec.local(key), i);
                    assert_eq!(spec.global(i), key);
                }
            }
        }
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn shard_index_must_be_in_range() {
        let _ = ShardSpec::new(3, 3);
    }
}
