//! The sparse per-prefix, per-interval bandwidth matrix.

use eleph_net::Prefix;
use eleph_trace::RateTrace;
use rustc_hash::FxHashMap;

/// Dense integer id for a prefix within one [`BandwidthMatrix`].
pub type KeyId = u32;

/// The `B_i(n)` matrix of the paper: for every measurement interval `n`,
/// the average bandwidth (b/s) of every prefix `i` that saw traffic.
///
/// Stored sparsely: an interval holds a sorted `(KeyId, f32)` list of its
/// active prefixes. Construction is either packet-driven
/// ([`crate::Aggregator::finish`]) or rate-driven
/// ([`BandwidthMatrix::from_rate_trace`]); downstream classification
/// cannot tell the difference, by design.
#[derive(Debug, Clone)]
pub struct BandwidthMatrix {
    interval_secs: u64,
    start_unix: u64,
    keys: Vec<Prefix>,
    index: FxHashMap<Prefix, KeyId>,
    intervals: Vec<Vec<(KeyId, f32)>>,
    totals: Vec<f64>,
}

impl BandwidthMatrix {
    /// Build from parts. `intervals` entries must be sorted by key id;
    /// this is asserted in debug builds.
    pub(crate) fn from_parts(
        interval_secs: u64,
        start_unix: u64,
        keys: Vec<Prefix>,
        intervals: Vec<Vec<(KeyId, f32)>>,
    ) -> Self {
        debug_assert!(intervals
            .iter()
            .all(|v| v.windows(2).all(|w| w[0].0 < w[1].0)));
        let index = keys
            .iter()
            .enumerate()
            .map(|(i, &p)| (p, i as KeyId))
            .collect();
        let totals = intervals
            .iter()
            .map(|v| v.iter().map(|&(_, r)| f64::from(r)).sum())
            .collect();
        BandwidthMatrix {
            interval_secs,
            start_unix,
            keys,
            index,
            intervals,
            totals,
        }
    }

    /// Build from dense per-interval rows: `rows[n][i]` is the bandwidth
    /// of `keys[i]` in interval `n` (zero = inactive). Convenient for
    /// tests and for adapting external data sources.
    ///
    /// # Panics
    ///
    /// Panics when a row is longer than `keys`, or when a rate is
    /// negative or non-finite.
    pub fn from_dense(
        interval_secs: u64,
        start_unix: u64,
        keys: Vec<Prefix>,
        rows: &[Vec<f64>],
    ) -> Self {
        let intervals: Vec<Vec<(KeyId, f32)>> = rows
            .iter()
            .map(|row| {
                assert!(row.len() <= keys.len(), "row wider than key space");
                row.iter()
                    .enumerate()
                    .filter(|&(_, &r)| {
                        assert!(r.is_finite() && r >= 0.0, "bad rate {r}");
                        r > 0.0
                    })
                    .map(|(i, &r)| (i as KeyId, r as f32))
                    .collect()
            })
            .collect();
        Self::from_parts(interval_secs, start_unix, keys, intervals)
    }

    /// Convert a synthetic rate trace into a matrix keyed by prefix.
    ///
    /// This is the fast path the figure experiments use: the rate trace
    /// *is* `B_i(n)` already, only the key space changes (flow id →
    /// prefix).
    pub fn from_rate_trace(trace: &RateTrace) -> Self {
        let keys: Vec<Prefix> = trace
            .population
            .iter()
            .map(|(_, meta)| meta.prefix)
            .collect();
        let intervals: Vec<Vec<(KeyId, f32)>> = (0..trace.n_intervals())
            .map(|n| {
                // FlowId and KeyId coincide: population order is key order.
                trace.interval(n).to_vec()
            })
            .collect();
        Self::from_parts(
            trace.config.interval_secs,
            trace.config.start_unix,
            keys,
            intervals,
        )
    }

    /// Number of intervals.
    pub fn n_intervals(&self) -> usize {
        self.intervals.len()
    }

    /// Interval length in seconds (the paper's `T`).
    pub fn interval_secs(&self) -> u64 {
        self.interval_secs
    }

    /// Unix time of interval 0's start.
    pub fn start_unix(&self) -> u64 {
        self.start_unix
    }

    /// Number of distinct prefixes ever seen.
    pub fn n_keys(&self) -> usize {
        self.keys.len()
    }

    /// The prefix for a key id.
    pub fn key(&self, id: KeyId) -> Prefix {
        self.keys[id as usize]
    }

    /// The key id for a prefix, if it ever carried traffic.
    pub fn key_id(&self, prefix: Prefix) -> Option<KeyId> {
        self.index.get(&prefix).copied()
    }

    /// Sparse snapshot of interval `n`, ascending by key id.
    pub fn interval(&self, n: usize) -> &[(KeyId, f32)] {
        &self.intervals[n]
    }

    /// Bandwidth of key `id` in interval `n` (0.0 when inactive).
    pub fn rate(&self, n: usize, id: KeyId) -> f64 {
        match self.intervals[n].binary_search_by_key(&id, |&(k, _)| k) {
            Ok(idx) => f64::from(self.intervals[n][idx].1),
            Err(_) => 0.0,
        }
    }

    /// All bandwidth values of interval `n` (the threshold detectors'
    /// input).
    pub fn values(&self, n: usize) -> Vec<f64> {
        self.intervals[n]
            .iter()
            .map(|&(_, r)| f64::from(r))
            .collect()
    }

    /// Total bandwidth of interval `n` in b/s.
    pub fn total(&self, n: usize) -> f64 {
        self.totals[n]
    }

    /// Number of active prefixes in interval `n`.
    pub fn active(&self, n: usize) -> usize {
        self.intervals[n].len()
    }

    /// Totals across all intervals (for busy-period detection and
    /// utilization plots).
    pub fn totals(&self) -> &[f64] {
        &self.totals
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use eleph_bgp::synth::{self, SynthConfig};
    use eleph_trace::WorkloadConfig;

    fn prefix(s: &str) -> Prefix {
        s.parse().unwrap()
    }

    #[test]
    fn from_parts_basics() {
        let keys = vec![prefix("10.0.0.0/8"), prefix("192.168.0.0/16")];
        let intervals = vec![
            vec![(0u32, 100.0f32), (1, 50.0)],
            vec![(1, 75.0)],
            vec![],
        ];
        let m = BandwidthMatrix::from_parts(300, 0, keys, intervals);
        assert_eq!(m.n_intervals(), 3);
        assert_eq!(m.n_keys(), 2);
        assert_eq!(m.rate(0, 0), 100.0);
        assert_eq!(m.rate(0, 1), 50.0);
        assert_eq!(m.rate(1, 0), 0.0);
        assert_eq!(m.total(0), 150.0);
        assert_eq!(m.total(2), 0.0);
        assert_eq!(m.active(1), 1);
        assert_eq!(m.key(1), prefix("192.168.0.0/16"));
        assert_eq!(m.key_id(prefix("10.0.0.0/8")), Some(0));
        assert_eq!(m.key_id(prefix("10.0.0.0/9")), None);
        assert_eq!(m.values(0), vec![100.0, 50.0]);
    }

    #[test]
    fn from_rate_trace_preserves_everything() {
        let table = synth::generate(&SynthConfig {
            n_prefixes: 1_500,
            ..SynthConfig::default()
        });
        let config = WorkloadConfig {
            n_flows: 300,
            n_intervals: 20,
            ..WorkloadConfig::small_test(3)
        };
        let trace = eleph_trace::RateTrace::generate(&config, &table);
        let m = BandwidthMatrix::from_rate_trace(&trace);

        assert_eq!(m.n_intervals(), trace.n_intervals());
        assert_eq!(m.n_keys(), trace.population.len());
        assert_eq!(m.interval_secs(), config.interval_secs);
        assert_eq!(m.start_unix(), config.start_unix);
        for n in 0..m.n_intervals() {
            assert_eq!(m.active(n), trace.active_flows(n));
            assert!((m.total(n) - trace.total(n)).abs() < 1.0);
            for &(id, r) in trace.interval(n) {
                let prefix = trace.population.get(id).prefix;
                let key = m.key_id(prefix).expect("every flow prefix is a key");
                assert_eq!(m.rate(n, key), f64::from(r));
            }
        }
    }

    #[test]
    fn totals_accessor_matches_pointwise() {
        let keys = vec![prefix("10.0.0.0/8")];
        let intervals = vec![vec![(0u32, 10.0f32)], vec![(0, 20.0)]];
        let m = BandwidthMatrix::from_parts(60, 0, keys, intervals);
        assert_eq!(m.totals(), &[10.0, 20.0]);
    }
}
