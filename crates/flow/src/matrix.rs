//! The per-prefix, per-interval bandwidth matrix, stored columnar.

use eleph_net::Prefix;
use eleph_trace::RateTrace;
use rustc_hash::FxHashMap;

/// Dense integer id for a prefix within one [`BandwidthMatrix`].
pub type KeyId = u32;

/// The `B_i(n)` matrix of the paper: for every measurement interval `n`,
/// the average bandwidth (b/s) of every prefix `i` that saw traffic.
///
/// Stored as a frozen CSR-style columnar structure: one offsets array
/// delimits each interval's run inside two parallel columns (key ids and
/// rates), both sorted by key id within an interval. Compared to the
/// previous per-interval `Vec<(KeyId, f32)>` boxes this keeps the whole
/// matrix in three contiguous allocations, so a classification pass is
/// one linear walk with no pointer chasing, and the key/rate columns can
/// be consumed independently ([`BandwidthMatrix::values_into`] fills a
/// caller-owned buffer with an interval's rates — the threshold
/// detectors' input — without allocating).
///
/// Construction is either packet-driven ([`crate::Aggregator::finish`])
/// or rate-driven ([`BandwidthMatrix::from_rate_trace`]); downstream
/// classification cannot tell the difference, by design.
#[derive(Debug, Clone)]
pub struct BandwidthMatrix {
    interval_secs: u64,
    start_unix: u64,
    keys: Vec<Prefix>,
    index: FxHashMap<Prefix, KeyId>,
    /// `offsets[n]..offsets[n + 1]` is interval `n`'s run in the columns.
    offsets: Vec<usize>,
    /// Active key ids, ascending within each interval run.
    col_keys: Vec<KeyId>,
    /// Rates parallel to `col_keys`.
    col_rates: Vec<f32>,
    totals: Vec<f64>,
}

/// A borrowed view of one interval's sparse snapshot: the key and rate
/// columns of the interval's run, ascending by key id.
///
/// Equality is entry-wise over `(key, rate)` pairs — two views compare
/// equal exactly when the old sparse `Vec<(KeyId, f32)>` rows would have.
#[derive(Clone, Copy)]
pub struct IntervalView<'a> {
    keys: &'a [KeyId],
    rates: &'a [f32],
}

impl<'a> IntervalView<'a> {
    /// Active key ids, ascending.
    pub fn keys(&self) -> &'a [KeyId] {
        self.keys
    }

    /// Rates parallel to [`IntervalView::keys`].
    pub fn rates(&self) -> &'a [f32] {
        self.rates
    }

    /// Number of active keys.
    pub fn len(&self) -> usize {
        self.keys.len()
    }

    /// Whether the interval carried no traffic.
    pub fn is_empty(&self) -> bool {
        self.keys.is_empty()
    }

    /// Iterate `(key, rate)` pairs in ascending key order.
    pub fn iter(&self) -> impl Iterator<Item = (KeyId, f32)> + 'a {
        self.keys.iter().copied().zip(self.rates.iter().copied())
    }

    /// Materialise the pairs (for APIs that consume owned snapshots).
    pub fn to_pairs(&self) -> Vec<(KeyId, f32)> {
        self.iter().collect()
    }
}

impl<'a> IntoIterator for IntervalView<'a> {
    type Item = (KeyId, f32);
    type IntoIter = std::iter::Zip<
        std::iter::Copied<std::slice::Iter<'a, KeyId>>,
        std::iter::Copied<std::slice::Iter<'a, f32>>,
    >;

    fn into_iter(self) -> Self::IntoIter {
        self.keys.iter().copied().zip(self.rates.iter().copied())
    }
}

impl PartialEq for IntervalView<'_> {
    fn eq(&self, other: &Self) -> bool {
        self.keys == other.keys && self.rates == other.rates
    }
}

impl std::fmt::Debug for IntervalView<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_list().entries(self.iter()).finish()
    }
}

impl BandwidthMatrix {
    /// Build from parts. `intervals` entries must be sorted by key id;
    /// this is asserted in debug builds.
    pub(crate) fn from_parts(
        interval_secs: u64,
        start_unix: u64,
        keys: Vec<Prefix>,
        intervals: Vec<Vec<(KeyId, f32)>>,
    ) -> Self {
        debug_assert!(intervals
            .iter()
            .all(|v| v.windows(2).all(|w| w[0].0 < w[1].0)));
        let index = keys
            .iter()
            .enumerate()
            .map(|(i, &p)| (p, i as KeyId))
            .collect();
        let entries: usize = intervals.iter().map(Vec::len).sum();
        let mut offsets = Vec::with_capacity(intervals.len() + 1);
        let mut col_keys = Vec::with_capacity(entries);
        let mut col_rates = Vec::with_capacity(entries);
        let mut totals = Vec::with_capacity(intervals.len());
        offsets.push(0);
        for row in &intervals {
            let mut total = 0.0f64;
            for &(key, rate) in row {
                col_keys.push(key);
                col_rates.push(rate);
                total += f64::from(rate);
            }
            offsets.push(col_keys.len());
            totals.push(total);
        }
        BandwidthMatrix {
            interval_secs,
            start_unix,
            keys,
            index,
            offsets,
            col_keys,
            col_rates,
            totals,
        }
    }

    /// Build from dense per-interval rows: `rows[n][i]` is the bandwidth
    /// of `keys[i]` in interval `n` (zero = inactive). Convenient for
    /// tests and for adapting external data sources.
    ///
    /// # Panics
    ///
    /// Panics when a row is longer than `keys`, or when a rate is
    /// negative or non-finite.
    pub fn from_dense(
        interval_secs: u64,
        start_unix: u64,
        keys: Vec<Prefix>,
        rows: &[Vec<f64>],
    ) -> Self {
        let intervals: Vec<Vec<(KeyId, f32)>> = rows
            .iter()
            .map(|row| {
                assert!(row.len() <= keys.len(), "row wider than key space");
                row.iter()
                    .enumerate()
                    .filter(|&(_, &r)| {
                        assert!(r.is_finite() && r >= 0.0, "bad rate {r}");
                        r > 0.0
                    })
                    .map(|(i, &r)| (i as KeyId, r as f32))
                    .collect()
            })
            .collect();
        Self::from_parts(interval_secs, start_unix, keys, intervals)
    }

    /// Convert a synthetic rate trace into a matrix keyed by prefix.
    ///
    /// This is the fast path the figure experiments use: the rate trace
    /// *is* `B_i(n)` already, only the key space changes (flow id →
    /// prefix). The trace's interval rows are appended straight into the
    /// columnar store, no per-interval boxes.
    pub fn from_rate_trace(trace: &RateTrace) -> Self {
        let keys: Vec<Prefix> = trace
            .population
            .iter()
            .map(|(_, meta)| meta.prefix)
            .collect();
        let index = keys
            .iter()
            .enumerate()
            .map(|(i, &p)| (p, i as KeyId))
            .collect();
        let n_int = trace.n_intervals();
        let mut offsets = Vec::with_capacity(n_int + 1);
        let mut col_keys = Vec::new();
        let mut col_rates = Vec::new();
        let mut totals = Vec::with_capacity(n_int);
        offsets.push(0);
        for n in 0..n_int {
            // FlowId and KeyId coincide: population order is key order.
            let mut total = 0.0f64;
            for &(key, rate) in trace.interval(n) {
                col_keys.push(key);
                col_rates.push(rate);
                total += f64::from(rate);
            }
            offsets.push(col_keys.len());
            totals.push(total);
        }
        BandwidthMatrix {
            interval_secs: trace.config.interval_secs,
            start_unix: trace.config.start_unix,
            keys,
            index,
            offsets,
            col_keys,
            col_rates,
            totals,
        }
    }

    /// Number of intervals.
    pub fn n_intervals(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Interval length in seconds (the paper's `T`).
    pub fn interval_secs(&self) -> u64 {
        self.interval_secs
    }

    /// Unix time of interval 0's start.
    pub fn start_unix(&self) -> u64 {
        self.start_unix
    }

    /// Number of distinct prefixes ever seen.
    pub fn n_keys(&self) -> usize {
        self.keys.len()
    }

    /// The prefix for a key id.
    pub fn key(&self, id: KeyId) -> Prefix {
        self.keys[id as usize]
    }

    /// The key id for a prefix, if it ever carried traffic.
    pub fn key_id(&self, prefix: Prefix) -> Option<KeyId> {
        self.index.get(&prefix).copied()
    }

    /// Sparse snapshot of interval `n`, ascending by key id.
    pub fn interval(&self, n: usize) -> IntervalView<'_> {
        let (lo, hi) = (self.offsets[n], self.offsets[n + 1]);
        IntervalView {
            keys: &self.col_keys[lo..hi],
            rates: &self.col_rates[lo..hi],
        }
    }

    /// Bandwidth of key `id` in interval `n` (0.0 when inactive).
    pub fn rate(&self, n: usize, id: KeyId) -> f64 {
        let v = self.interval(n);
        match v.keys.binary_search(&id) {
            Ok(idx) => f64::from(v.rates[idx]),
            Err(_) => 0.0,
        }
    }

    /// All bandwidth values of interval `n` (the threshold detectors'
    /// input). Allocates; the classification hot path uses
    /// [`BandwidthMatrix::values_into`] instead.
    pub fn values(&self, n: usize) -> Vec<f64> {
        let mut out = Vec::new();
        self.values_into(n, &mut out);
        out
    }

    /// Fill `out` with interval `n`'s bandwidth values (clearing it
    /// first). Reusing one buffer across intervals keeps a
    /// classification pass allocation-free.
    pub fn values_into(&self, n: usize, out: &mut Vec<f64>) {
        out.clear();
        out.extend(self.interval(n).rates.iter().map(|&r| f64::from(r)));
    }

    /// Re-measure the same traffic at a coarser interval `T' = factor·T`:
    /// every `factor` consecutive intervals merge into one, each key's
    /// coarse rate being the time-average of its fine rates (absent
    /// slots count as zero), so bytes are conserved exactly. This is the
    /// paper's §II interval-sensitivity protocol — one traffic process,
    /// different discretisations — without regenerating the workload.
    ///
    /// A trailing partial group still averages over the full coarse
    /// interval length.
    ///
    /// # Panics
    ///
    /// Panics when `factor` is zero.
    pub fn coarsen(&self, factor: usize) -> BandwidthMatrix {
        assert!(factor >= 1, "coarsening factor must be >= 1");
        let n_coarse = self.n_intervals().div_ceil(factor);
        // Dense accumulator + touched list: keys are dense ids.
        let mut acc: Vec<f64> = vec![0.0; self.n_keys()];
        let mut touched: Vec<KeyId> = Vec::new();
        let mut intervals: Vec<Vec<(KeyId, f32)>> = Vec::with_capacity(n_coarse);
        let inv = 1.0 / factor as f64;
        for m in 0..n_coarse {
            for n in (m * factor)..((m + 1) * factor).min(self.n_intervals()) {
                for (key, rate) in self.interval(n).iter() {
                    // Skip explicit zero-rate entries: they contribute
                    // nothing, and the `acc == 0.0` first-touch sentinel
                    // below would otherwise record the key twice.
                    if rate == 0.0 {
                        continue;
                    }
                    if acc[key as usize] == 0.0 {
                        touched.push(key);
                    }
                    acc[key as usize] += f64::from(rate);
                }
            }
            touched.sort_unstable();
            let mut row: Vec<(KeyId, f32)> = Vec::with_capacity(touched.len());
            for &key in &touched {
                let rate = (acc[key as usize] * inv) as f32;
                acc[key as usize] = 0.0;
                // A subnormal average can round to 0.0 in f32; keep the
                // "zero = inactive" invariant rather than storing it.
                if rate > 0.0 {
                    row.push((key, rate));
                }
            }
            touched.clear();
            intervals.push(row);
        }
        Self::from_parts(
            self.interval_secs * factor as u64,
            self.start_unix,
            self.keys.clone(),
            intervals,
        )
    }

    /// Re-measure the same traffic at a finer interval `T' = T / factor`:
    /// each interval splits into `factor` sub-slots, a key's sub-rates
    /// being its rate times bounded mean-one jitter (uniform in
    /// [0.75, 1.25), normalised so the sub-slots average back to the
    /// parent rate — bytes are conserved per interval). The jitter is a
    /// pure hash of `(seed, key, interval, slot)`: deterministic,
    /// machine-independent, no RNG state.
    ///
    /// # Panics
    ///
    /// Panics when `factor` is zero or does not divide `interval_secs`.
    pub fn refine(&self, factor: usize, seed: u64) -> BandwidthMatrix {
        assert!(factor >= 1, "refinement factor must be >= 1");
        assert!(
            self.interval_secs % factor as u64 == 0,
            "refinement factor must divide the interval length"
        );
        let mut intervals: Vec<Vec<(KeyId, f32)>> =
            Vec::with_capacity(self.n_intervals() * factor);
        let mut factors: Vec<f64> = vec![0.0; factor];
        for n in 0..self.n_intervals() {
            let view = self.interval(n);
            let mut rows: Vec<Vec<(KeyId, f32)>> =
                (0..factor).map(|_| Vec::with_capacity(view.len())).collect();
            for (key, rate) in view.iter() {
                let mut sum = 0.0f64;
                for (j, f) in factors.iter_mut().enumerate() {
                    let h = split_hash(
                        seed ^ (u64::from(key) << 32) ^ ((n as u64) << 8) ^ j as u64,
                    );
                    // 53 uniform bits → [0, 1) → bounded jitter [0.75, 1.25).
                    let u = (h >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
                    *f = 0.75 + 0.5 * u;
                    sum += *f;
                }
                let norm = factor as f64 / sum;
                for (j, row) in rows.iter_mut().enumerate() {
                    let sub = (f64::from(rate) * factors[j] * norm) as f32;
                    // Keep the "zero = inactive" invariant for subnormal
                    // parents whose jittered sub-rate rounds to 0.0.
                    if sub > 0.0 {
                        row.push((key, sub));
                    }
                }
            }
            intervals.extend(rows);
        }
        Self::from_parts(
            self.interval_secs / factor as u64,
            self.start_unix,
            self.keys.clone(),
            intervals,
        )
    }

    /// Total bandwidth of interval `n` in b/s.
    pub fn total(&self, n: usize) -> f64 {
        self.totals[n]
    }

    /// Number of active prefixes in interval `n`.
    pub fn active(&self, n: usize) -> usize {
        self.offsets[n + 1] - self.offsets[n]
    }

    /// Totals across all intervals (for busy-period detection and
    /// utilization plots).
    pub fn totals(&self) -> &[f64] {
        &self.totals
    }
}

/// SplitMix64 finaliser: the stateless hash behind
/// [`BandwidthMatrix::refine`]'s jitter.
#[inline]
fn split_hash(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;
    use eleph_bgp::synth::{self, SynthConfig};
    use eleph_trace::WorkloadConfig;

    fn prefix(s: &str) -> Prefix {
        s.parse().unwrap()
    }

    #[test]
    fn from_parts_basics() {
        let keys = vec![prefix("10.0.0.0/8"), prefix("192.168.0.0/16")];
        let intervals = vec![
            vec![(0u32, 100.0f32), (1, 50.0)],
            vec![(1, 75.0)],
            vec![],
        ];
        let m = BandwidthMatrix::from_parts(300, 0, keys, intervals);
        assert_eq!(m.n_intervals(), 3);
        assert_eq!(m.n_keys(), 2);
        assert_eq!(m.rate(0, 0), 100.0);
        assert_eq!(m.rate(0, 1), 50.0);
        assert_eq!(m.rate(1, 0), 0.0);
        assert_eq!(m.total(0), 150.0);
        assert_eq!(m.total(2), 0.0);
        assert_eq!(m.active(1), 1);
        assert_eq!(m.key(1), prefix("192.168.0.0/16"));
        assert_eq!(m.key_id(prefix("10.0.0.0/8")), Some(0));
        assert_eq!(m.key_id(prefix("10.0.0.0/9")), None);
        assert_eq!(m.values(0), vec![100.0, 50.0]);
    }

    #[test]
    fn interval_view_accessors() {
        let keys = vec![prefix("10.0.0.0/8"), prefix("192.168.0.0/16")];
        let intervals = vec![vec![(0u32, 100.0f32), (1, 50.0)], vec![]];
        let m = BandwidthMatrix::from_parts(300, 0, keys, intervals);
        let v = m.interval(0);
        assert_eq!(v.len(), 2);
        assert!(!v.is_empty());
        assert_eq!(v.keys(), &[0, 1]);
        assert_eq!(v.rates(), &[100.0, 50.0]);
        assert_eq!(v.to_pairs(), vec![(0, 100.0), (1, 50.0)]);
        assert_eq!(v, m.interval(0));
        assert!(m.interval(1).is_empty());
        assert_ne!(m.interval(0), m.interval(1));
        let collected: Vec<(KeyId, f32)> = m.interval(0).iter().collect();
        assert_eq!(collected, vec![(0, 100.0), (1, 50.0)]);
    }

    #[test]
    fn values_into_reuses_buffer() {
        let keys = vec![prefix("10.0.0.0/8"), prefix("192.168.0.0/16")];
        let intervals = vec![vec![(0u32, 100.0f32), (1, 50.0)], vec![(1, 75.0)]];
        let m = BandwidthMatrix::from_parts(300, 0, keys, intervals);
        let mut buf = vec![999.0; 7];
        m.values_into(0, &mut buf);
        assert_eq!(buf, vec![100.0, 50.0]);
        m.values_into(1, &mut buf);
        assert_eq!(buf, vec![75.0]);
    }

    #[test]
    fn from_rate_trace_preserves_everything() {
        let table = synth::generate(&SynthConfig {
            n_prefixes: 1_500,
            ..SynthConfig::default()
        });
        let config = WorkloadConfig {
            n_flows: 300,
            n_intervals: 20,
            ..WorkloadConfig::small_test(3)
        };
        let trace = eleph_trace::RateTrace::generate(&config, &table);
        let m = BandwidthMatrix::from_rate_trace(&trace);

        assert_eq!(m.n_intervals(), trace.n_intervals());
        assert_eq!(m.n_keys(), trace.population.len());
        assert_eq!(m.interval_secs(), config.interval_secs);
        assert_eq!(m.start_unix(), config.start_unix);
        for n in 0..m.n_intervals() {
            assert_eq!(m.active(n), trace.active_flows(n));
            assert!((m.total(n) - trace.total(n)).abs() < 1.0);
            assert_eq!(m.interval(n).to_pairs(), trace.interval(n).to_vec());
            for &(id, r) in trace.interval(n) {
                let prefix = trace.population.get(id).prefix;
                let key = m.key_id(prefix).expect("every flow prefix is a key");
                assert_eq!(m.rate(n, key), f64::from(r));
            }
        }
    }

    #[test]
    fn coarsen_conserves_bytes_and_remaps_time() {
        let keys = vec![prefix("10.0.0.0/8"), prefix("192.168.0.0/16")];
        // 5 intervals of 60 s; coarsen by 2 → 3 intervals of 120 s (the
        // last one padded with implicit zeros).
        let rows = vec![
            vec![100.0, 0.0],
            vec![50.0, 40.0],
            vec![0.0, 60.0],
            vec![30.0, 0.0],
            vec![10.0, 0.0],
        ];
        let m = BandwidthMatrix::from_dense(60, 500, keys, &rows);
        let c = m.coarsen(2);
        assert_eq!(c.n_intervals(), 3);
        assert_eq!(c.interval_secs(), 120);
        assert_eq!(c.start_unix(), 500);
        assert_eq!(c.n_keys(), 2);
        assert_eq!(c.rate(0, 0), 75.0); // (100 + 50) / 2
        assert_eq!(c.rate(0, 1), 20.0); // (0 + 40) / 2
        assert_eq!(c.rate(1, 0), 15.0); // (0 + 30) / 2
        assert_eq!(c.rate(1, 1), 30.0);
        assert_eq!(c.rate(2, 0), 5.0); // trailing partial group
        // Bytes conserve: fine Σ rate·60 == coarse Σ rate·120.
        let fine: f64 = (0..m.n_intervals()).map(|n| m.total(n) * 60.0).sum();
        let coarse: f64 = (0..c.n_intervals()).map(|n| c.total(n) * 120.0).sum();
        assert!((fine - coarse).abs() < 1e-6);
    }

    #[test]
    fn refine_conserves_interval_means() {
        let keys = vec![prefix("10.0.0.0/8"), prefix("192.168.0.0/16")];
        let rows = vec![vec![300.0, 90.0], vec![0.0, 120.0]];
        let m = BandwidthMatrix::from_dense(300, 0, keys, &rows);
        let f = m.refine(5, 7);
        assert_eq!(f.n_intervals(), 10);
        assert_eq!(f.interval_secs(), 60);
        for n in 0..m.n_intervals() {
            for key in 0..2u32 {
                let parent = m.rate(n, key);
                let mean: f64 =
                    (0..5).map(|j| f.rate(n * 5 + j, key)).sum::<f64>() / 5.0;
                assert!(
                    (mean - parent).abs() <= parent * 1e-5,
                    "key {key} interval {n}: mean {mean} vs parent {parent}"
                );
                // Jitter actually varies the sub-slots of active keys.
                if parent > 0.0 {
                    let distinct: std::collections::HashSet<u64> =
                        (0..5).map(|j| f.rate(n * 5 + j, key).to_bits()).collect();
                    assert!(distinct.len() > 1, "no sub-interval variation");
                }
            }
        }
        // Deterministic in the seed; different seeds differ.
        let f2 = m.refine(5, 7);
        let f3 = m.refine(5, 8);
        for n in 0..f.n_intervals() {
            assert_eq!(f.interval(n), f2.interval(n));
        }
        assert!((0..f.n_intervals()).any(|n| f.interval(n) != f3.interval(n)));
    }

    #[test]
    fn totals_accessor_matches_pointwise() {
        let keys = vec![prefix("10.0.0.0/8")];
        let intervals = vec![vec![(0u32, 10.0f32)], vec![(0, 20.0)]];
        let m = BandwidthMatrix::from_parts(60, 0, keys, intervals);
        assert_eq!(m.totals(), &[10.0, 20.0]);
    }
}
