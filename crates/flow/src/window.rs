//! Busy-period selection.

use std::ops::Range;

/// Find the contiguous window of `window_len` intervals with the highest
/// total traffic — the paper's "five hour busy period" over which holding
/// times are computed.
///
/// Returns `None` when `window_len` is zero or longer than the series.
pub fn busiest_window(totals: &[f64], window_len: usize) -> Option<Range<usize>> {
    if window_len == 0 || window_len > totals.len() {
        return None;
    }
    let mut sum: f64 = totals[..window_len].iter().sum();
    let mut best_sum = sum;
    let mut best_start = 0usize;
    for start in 1..=(totals.len() - window_len) {
        sum += totals[start + window_len - 1] - totals[start - 1];
        if sum > best_sum {
            best_sum = sum;
            best_start = start;
        }
    }
    Some(best_start..best_start + window_len)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn finds_peak_window() {
        let totals = [1.0, 1.0, 5.0, 6.0, 5.0, 1.0, 1.0];
        assert_eq!(busiest_window(&totals, 3), Some(2..5));
    }

    #[test]
    fn whole_series_window() {
        let totals = [1.0, 2.0, 3.0];
        assert_eq!(busiest_window(&totals, 3), Some(0..3));
    }

    #[test]
    fn single_interval_window() {
        let totals = [1.0, 9.0, 3.0];
        assert_eq!(busiest_window(&totals, 1), Some(1..2));
    }

    #[test]
    fn degenerate_inputs() {
        assert_eq!(busiest_window(&[], 1), None);
        assert_eq!(busiest_window(&[1.0], 0), None);
        assert_eq!(busiest_window(&[1.0], 2), None);
    }

    #[test]
    fn ties_resolve_to_earliest() {
        let totals = [5.0, 5.0, 5.0, 5.0];
        assert_eq!(busiest_window(&totals, 2), Some(0..2));
    }

    #[test]
    fn works_on_diurnal_shape() {
        // Synthetic diurnal hump peaking at index 30.
        let totals: Vec<f64> = (0..100)
            .map(|i| (-((i as f64 - 30.0) / 10.0).powi(2)).exp())
            .collect();
        let w = busiest_window(&totals, 11).unwrap();
        assert_eq!(w, 25..36);
    }
}
