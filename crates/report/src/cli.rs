//! The `eleph` command-line interface — one binary for every
//! experiment plus the streaming pipeline.
//!
//! Subcommands:
//!
//! * `eleph fig1a|fig1b|fig1c|table1|table2|table3|table4` — regenerate
//!   one figure/table (options: `--scale F --seed N`);
//! * `eleph ablation --which gamma|window|beta|scheme` — one ablation;
//! * `eleph all` — the full refresh, sharing expensive builds;
//! * `eleph run (--pcap FILE | --synth)` — stream packets through the
//!   [`eleph_pipeline`] builder and emit per-interval JSONL.
//!
//! The pre-PR-4 one-binary-per-experiment entry points
//! (`fig1a`, `table1`, …) still exist as thin shims over this module —
//! same parsing, same experiment functions, byte-identical output —
//! and announce their deprecation in `--help`.

use std::io;

use eleph_core::{
    AestDetector, ConstantLoadDetector, Scheme, StateBackendConfig, ThresholdDetector,
    PAPER_BETA, PAPER_GAMMA, PAPER_LATENT_WINDOW,
};
use eleph_bgp::{LiveBgpTable, UpdateBatch};
use eleph_pipeline::{
    skip_offered, Checkpoint, Checkpointer, FaultedPcapSource, JsonlSink, PacketSource,
    PcapSource, Pipeline, PipelineBuilder, PipelineReport, PooledPcapSource, RotatingJsonlSink,
    TraceSource,
};
use eleph_trace::{
    generate_churn, ChurnConfig, ChurnScenario, FaultConfig, FaultInjector, FaultStats, RateTrace,
    WorkloadConfig,
};

use crate::experiments::{
    ablation_beta, ablation_gamma, ablation_scheme, ablation_window, fig1_data, fig1a, fig1b,
    fig1c, table1, table2, table3, table4, west_lab,
};

/// Options shared by every experiment subcommand.
#[derive(Debug, Clone, Copy)]
pub struct CommonOpts {
    /// Scenario scale factor (0 < scale ≤ 1; figures use 1).
    pub scale: f64,
    /// Master seed for the synthetic scenarios.
    pub seed: u64,
}

impl Default for CommonOpts {
    fn default() -> Self {
        CommonOpts { scale: 1.0, seed: 42 }
    }
}

/// Parse `--scale` / `--seed` from an argument list (defaults 1.0 / 42).
///
/// # Panics
///
/// Panics on unknown arguments or unparsable values, with the same
/// messages the legacy per-experiment binaries used.
pub fn parse_common(args: &[String]) -> CommonOpts {
    let mut opts = CommonOpts::default();
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--scale" if i + 1 < args.len() => {
                opts.scale = args[i + 1].parse().expect("--scale takes a float");
                i += 2;
            }
            "--seed" if i + 1 < args.len() => {
                opts.seed = args[i + 1].parse().expect("--seed takes an integer");
                i += 2;
            }
            other => panic!("unknown argument {other}; supported: --scale F --seed N"),
        }
    }
    opts
}

/// Run one experiment by id and return its rendered report — the single
/// code path behind both `eleph <id>` and the legacy shim binaries, so
/// their stdout cannot diverge.
pub fn render_experiment(id: &str, opts: CommonOpts) -> io::Result<String> {
    let CommonOpts { scale, seed } = opts;
    Ok(match id {
        "fig1a" | "fig1b" | "fig1c" | "table1" | "table2" | "table3" => {
            let data = fig1_data(scale, seed);
            match id {
                "fig1a" => fig1a(&data)?.render(),
                "fig1b" => fig1b(&data)?.render(),
                "fig1c" => fig1c(&data)?.render(),
                "table1" => table1(&data)?.render(),
                "table2" => table2(&data)?.render(),
                _ => table3(&data)?.render(),
            }
        }
        "table4" => table4(scale, seed)?.render(),
        "ablation_gamma" | "ablation_window" | "ablation_beta" | "ablation_scheme" => {
            let (scenario, lab) = west_lab(scale, seed);
            match id {
                "ablation_gamma" => ablation_gamma(&scenario, &lab)?.render(),
                "ablation_window" => ablation_window(&scenario, &lab)?.render(),
                "ablation_beta" => ablation_beta(&scenario, &lab)?.render(),
                _ => ablation_scheme(&scenario, &lab)?.render(),
            }
        }
        other => panic!("unknown experiment {other}"),
    })
}

/// Run every experiment, sharing the expensive builds (the Figure 1
/// dataset feeds the three panels plus tables 1–3; one west-coast lab
/// build feeds all four ablations) — the `eleph all` subcommand and the
/// legacy `all_experiments` binary.
pub fn render_all(opts: CommonOpts) -> io::Result<String> {
    let CommonOpts { scale, seed } = opts;
    let mut out = String::new();
    let data = fig1_data(scale, seed);
    for o in [
        fig1a(&data)?,
        fig1b(&data)?,
        fig1c(&data)?,
        table1(&data)?,
        table2(&data)?,
        table3(&data)?,
    ] {
        out.push_str(&o.render());
        out.push('\n');
    }
    out.push_str(&table4(scale, seed)?.render());
    out.push('\n');
    let (scenario, lab) = west_lab(scale, seed);
    for o in [
        ablation_gamma(&scenario, &lab)?,
        ablation_window(&scenario, &lab)?,
        ablation_beta(&scenario, &lab)?,
        ablation_scheme(&scenario, &lab)?,
    ] {
        out.push_str(&o.render());
        out.push('\n');
    }
    Ok(out)
}

const USAGE: &str = "\
eleph — elephant classification experiments and streaming pipeline

USAGE:
    eleph <SUBCOMMAND> [OPTIONS]

SUBCOMMANDS:
    fig1a | fig1b | fig1c      regenerate a Figure 1 panel
    table1 | table2 | table3 | table4
                               regenerate a paper table
    ablation --which W         W = gamma | window | beta | scheme
    all                        every experiment, sharing builds
    run                        stream packets -> per-interval JSONL
    churn                      generate a deterministic route-update
                               stream (announce/withdraw storms, flap
                               damping) for `run --rib-updates`
    sketch                     run exact and sketch state backends side
                               by side on the same stream and report
                               recall/precision/byte-coverage vs the
                               exact oracle, plus the memory-vs-accuracy
                               frontier
    help                       this text

EXPERIMENT OPTIONS:
    --scale F                  shrink the scenarios (0 < F <= 1; default 1)
    --seed N                   scenario master seed (default 42)

RUN OPTIONS (eleph run):
    --pcap FILE                stream a pcap capture
    --synth                    stream a synthetic workload
    --flows N                  synthetic flows (default 400)
    --intervals N              interval count (synth default 120; pcap default unbounded)
    --interval-secs S          measurement interval T in seconds
    --start-unix T             first interval start (pcap; default: the
                               first packet's timestamp floored to the
                               interval length)
    --seed N                   synthetic workload seed (--synth only; default 7)
    --rib FILE                 routing table as a text RIB dump (see
                               eleph_bgp::dump); without it a synthetic
                               table is generated, which only matches
                               captures produced against that same table
    --prefixes N               synthetic routing-table size (default 20000)
    --rib-updates FILE         timed route-update stream (see eleph_bgp::dump
                               update format; `eleph churn` writes one):
                               the table becomes *live* and each batch
                               applies mid-stream, immediately before the
                               first packet whose timestamp reaches the
                               batch time; re-announced prefixes get
                               fresh keys while old keys retire through
                               the classifier window
    --detector D               constant-load | aest (default constant-load)
    --beta F                   constant-load target (default 0.8)
    --gamma F                  threshold EWMA smoothing (default 0.9)
    --scheme S                 latent | single | hysteresis (default latent)
    --window N                 latent-heat window (default 12)
    --enter F / --exit F       hysteresis thresholds (default 1.2 / 0.6)
    --shards N                 partition the online path (byte rows +
                               classifier state) over N worker threads
                               keyed by prefix id; output and checkpoints
                               are bit-identical to serial for every N
                               (default 0 = serial, inline)
    --state B                  state backend sealing each interval:
                               exact (default; the dense byte row,
                               bit-identical to every earlier release)
                               or a fixed-budget sketch — spacesaving |
                               cmrow | bloom (deterministic, approximate;
                               incompatible with --shards)
    --state-budget BYTES       sketch memory budget (default 1048576)
    --ingest-workers N         decode the pcap on a zero-copy async
                               stage: a framer thread scans record spans
                               ahead, N parser threads decode them from
                               pooled buffers (default 0 = inline
                               decode; pcap path only, incompatible with
                               --fault-*)
    --out FILE                 JSONL destination (default stdout)
    --rotate-bytes N           rotate --out when it would exceed N bytes
                               (current file stays at FILE; older
                               segments are FILE.1, FILE.2, ... in
                               chronological order)
    --checkpoint-dir DIR       write crash-safe snapshots (eleph.ckpt,
                               atomic temp+fsync+rename) into DIR
    --checkpoint-every N       snapshot cadence in sealed intervals
                               (default 1; checked at source chunk
                               boundaries)
    --resume                   continue from DIR's checkpoint: requires
                               --checkpoint-dir and --out; truncates the
                               output chain to the checkpointed interval
                               count (exactly-once emission), replays
                               the source past the consumed records, and
                               continues bit-identically to an
                               uninterrupted run. Falls back to a fresh
                               start when no checkpoint exists yet.
    --fault-drop F             inject packet faults on the pcap path
    --fault-corrupt F          (probabilities in [0,1]; counters appear
    --fault-truncate F         in the end-of-run summary)
    --fault-seed N             fault injector RNG seed (default 0)

CHURN OPTIONS (eleph churn):
    --out FILE                 update-stream destination (default stdout)
    --prefixes N               synthetic table size to sample prefixes
                               from (default 20000 — match the run's)
    --seed N                   churn scenario seed (default 7)
    --start-unix T             base time the offsets below add to (default 0)
    --storm-at S               withdraw storm S seconds after start (default 60)
    --storm-count N            prefixes in the storm (default 16; 0 disables)
    --storm-hold S             seconds the routes stay down (default 120)
    --flap-start S             first flap S seconds after start (default 90)
    --flap-count N             flapping prefixes (default 4; 0 disables)
    --flap-period S            withdraw->announce spacing (default 30)
    --flap-cycles N            flap cycles per prefix (default 3)
    --flap-damped              suppress the final re-announce for the
                               8x-period damping window

SKETCH OPTIONS (eleph sketch):
    --seed N                   scenario seed (default 42)
    --scale F                  west-scenario workload scale (default 0.05)
    --intervals N              intervals streamed per run (default 18)
    --budget BYTES             sketch budget for the accuracy grid
                               (default 1048576; the frontier sweeps
                               65536..4194304 regardless)

The end of a run prints one JSON summary line on stderr: intervals
sealed, prefix count, every packet-accounting counter (offered,
attributed, attributed_bytes, unroutable, out_of_window, malformed,
late, conserved, far_future_streak), the routing-table generation and
applied update-batch count, and the fault-injection counters (seen,
dropped, corrupted, truncated), so degraded-input runs are visible
without grepping logs.
";

/// Entry point for the `eleph` binary: parse `argv[1..]` and dispatch.
pub fn eleph_main() -> io::Result<()> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some((cmd, rest)) = args.split_first() else {
        print!("{USAGE}");
        return Ok(());
    };
    match cmd.as_str() {
        "help" | "--help" | "-h" => {
            print!("{USAGE}");
            Ok(())
        }
        "fig1a" | "fig1b" | "fig1c" | "table1" | "table2" | "table3" | "table4" => {
            print!("{}", render_experiment(cmd, parse_common(rest))?);
            Ok(())
        }
        "ablation" => {
            let (which, rest) = take_flag_value(rest, "--which")
                .unwrap_or_else(|| panic!("ablation needs --which gamma|window|beta|scheme"));
            assert!(
                matches!(which.as_str(), "gamma" | "window" | "beta" | "scheme"),
                "unknown ablation {which}; supported: gamma window beta scheme"
            );
            print!(
                "{}",
                render_experiment(&format!("ablation_{which}"), parse_common(&rest))?
            );
            Ok(())
        }
        "all" => {
            print!("{}", render_all(parse_common(rest))?);
            Ok(())
        }
        "run" => run_streaming(rest),
        "churn" => run_churn(rest),
        "sketch" => crate::sketch::run_sketch(rest),
        other => panic!("unknown subcommand {other}; try `eleph help`"),
    }
}

/// Entry point for the legacy one-experiment binaries: deprecation
/// notice on `--help`, otherwise the exact `eleph` code path.
pub fn legacy_shim(id: &str) -> io::Result<()> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "--help" || a == "-h") {
        let replacement = match id {
            "all" => "eleph all".to_string(),
            _ if id.starts_with("ablation_") => {
                format!("eleph ablation --which {}", &id["ablation_".len()..])
            }
            _ => format!("eleph {id}"),
        };
        println!(
            "deprecated: this binary is a compatibility shim and will be removed \
             next release; use `{replacement}` instead.\n\n\
             usage: {id} [--scale F] [--seed N]"
        );
        return Ok(());
    }
    let opts = parse_common(&args);
    if id == "all" {
        print!("{}", render_all(opts)?);
    } else {
        print!("{}", render_experiment(id, opts)?);
    }
    Ok(())
}

/// Pop `flag VALUE` out of an argument list, returning the value and
/// the remaining arguments.
fn take_flag_value(args: &[String], flag: &str) -> Option<(String, Vec<String>)> {
    let at = args.iter().position(|a| a == flag)?;
    let value = args.get(at + 1)?.clone();
    let mut rest: Vec<String> = args[..at].to_vec();
    rest.extend_from_slice(&args[at + 2..]);
    Some((value, rest))
}

/// All options of `eleph run` in one struct — the single configuration
/// surface for streaming invocations.
#[derive(Debug, Clone)]
pub struct RunOpts {
    /// Stream this pcap file (mutually exclusive with `synth`).
    pub pcap: Option<String>,
    /// Stream a synthetic workload.
    pub synth: bool,
    /// Synthetic flow count.
    pub flows: usize,
    /// Interval bound (`None` = unbounded pcap stream).
    pub intervals: Option<usize>,
    /// Measurement interval T in seconds (`None` = source default).
    pub interval_secs: Option<u64>,
    /// First interval start for pcap streams (`None` = derive from the
    /// first packet's timestamp, floored to the interval length).
    pub start_unix: Option<u64>,
    /// Workload seed (synthetic source only).
    pub seed: u64,
    /// Text RIB dump to attribute against (`None` = synthetic table).
    pub rib: Option<String>,
    /// Timed route-update stream to replay mid-run (`None` = the table
    /// stays frozen for the whole run).
    pub rib_updates: Option<String>,
    /// Synthetic routing-table size.
    pub prefixes: usize,
    /// Detector kind: "constant-load" or "aest".
    pub detector: String,
    /// Constant-load target β.
    pub beta: f64,
    /// Threshold smoothing γ.
    pub gamma: f64,
    /// Scheme kind: "latent", "single" or "hysteresis".
    pub scheme: String,
    /// Latent-heat window.
    pub window: usize,
    /// Hysteresis enter multiplier.
    pub enter: f64,
    /// Hysteresis exit multiplier.
    pub exit: f64,
    /// Online-path shard workers (0 = serial, inline).
    pub shards: usize,
    /// State backend sealing each interval: "exact", "spacesaving",
    /// "cmrow" or "bloom".
    pub state: String,
    /// Sketch memory budget in bytes (non-exact backends).
    pub state_budget: u64,
    /// Async pcap-ingest parser threads (0 = inline decode).
    pub ingest_workers: usize,
    /// JSONL destination (`None` = stdout).
    pub out: Option<String>,
    /// Rotate the output file when it would exceed this many bytes.
    pub rotate_bytes: Option<u64>,
    /// Directory for crash-safe checkpoints (`None` = no checkpoints).
    pub checkpoint_dir: Option<String>,
    /// Checkpoint cadence in sealed intervals.
    pub checkpoint_every: usize,
    /// Continue from the checkpoint in `checkpoint_dir`.
    pub resume: bool,
    /// Fault-injection drop probability (pcap path only).
    pub fault_drop: f64,
    /// Fault-injection bit-flip probability (pcap path only).
    pub fault_corrupt: f64,
    /// Fault-injection truncation probability (pcap path only).
    pub fault_truncate: f64,
    /// Fault injector RNG seed.
    pub fault_seed: u64,
}

impl Default for RunOpts {
    fn default() -> Self {
        RunOpts {
            pcap: None,
            synth: false,
            flows: 400,
            intervals: None,
            interval_secs: None,
            start_unix: None,
            seed: 7,
            rib: None,
            rib_updates: None,
            prefixes: 20_000,
            detector: "constant-load".to_string(),
            beta: PAPER_BETA,
            gamma: PAPER_GAMMA,
            scheme: "latent".to_string(),
            window: PAPER_LATENT_WINDOW,
            enter: 1.2,
            exit: 0.6,
            shards: 0,
            state: "exact".to_string(),
            state_budget: 1_048_576,
            ingest_workers: 0,
            out: None,
            rotate_bytes: None,
            checkpoint_dir: None,
            checkpoint_every: 1,
            resume: false,
            fault_drop: 0.0,
            fault_corrupt: 0.0,
            fault_truncate: 0.0,
            fault_seed: 0,
        }
    }
}

impl RunOpts {
    /// Parse `eleph run` arguments.
    pub fn parse(args: &[String]) -> RunOpts {
        let mut o = RunOpts::default();
        let mut i = 0;
        let value = |i: &mut usize, args: &[String]| -> String {
            *i += 2;
            args.get(*i - 1)
                .unwrap_or_else(|| panic!("{} takes a value", args[*i - 2]))
                .clone()
        };
        while i < args.len() {
            match args[i].as_str() {
                "--pcap" => o.pcap = Some(value(&mut i, args)),
                "--synth" => {
                    o.synth = true;
                    i += 1;
                }
                "--flows" => o.flows = value(&mut i, args).parse().expect("--flows takes a count"),
                "--intervals" => {
                    o.intervals =
                        Some(value(&mut i, args).parse().expect("--intervals takes a count"))
                }
                "--interval-secs" => {
                    o.interval_secs =
                        Some(value(&mut i, args).parse().expect("--interval-secs takes seconds"))
                }
                "--start-unix" => {
                    o.start_unix = Some(
                        value(&mut i, args).parse().expect("--start-unix takes a timestamp"),
                    )
                }
                "--seed" => o.seed = value(&mut i, args).parse().expect("--seed takes an integer"),
                "--rib" => o.rib = Some(value(&mut i, args)),
                "--rib-updates" => o.rib_updates = Some(value(&mut i, args)),
                "--prefixes" => {
                    o.prefixes = value(&mut i, args).parse().expect("--prefixes takes a count")
                }
                "--detector" => o.detector = value(&mut i, args),
                "--beta" => o.beta = value(&mut i, args).parse().expect("--beta takes a float"),
                "--gamma" => o.gamma = value(&mut i, args).parse().expect("--gamma takes a float"),
                "--scheme" => o.scheme = value(&mut i, args),
                "--window" => {
                    o.window = value(&mut i, args).parse().expect("--window takes a count")
                }
                "--enter" => o.enter = value(&mut i, args).parse().expect("--enter takes a float"),
                "--exit" => o.exit = value(&mut i, args).parse().expect("--exit takes a float"),
                "--shards" => {
                    o.shards = value(&mut i, args).parse().expect("--shards takes a count")
                }
                "--state" => o.state = value(&mut i, args),
                "--state-budget" => {
                    o.state_budget =
                        value(&mut i, args).parse().expect("--state-budget takes bytes")
                }
                "--ingest-workers" => {
                    o.ingest_workers = value(&mut i, args)
                        .parse()
                        .expect("--ingest-workers takes a count")
                }
                "--out" => o.out = Some(value(&mut i, args)),
                "--rotate-bytes" => {
                    o.rotate_bytes =
                        Some(value(&mut i, args).parse().expect("--rotate-bytes takes bytes"))
                }
                "--checkpoint-dir" => o.checkpoint_dir = Some(value(&mut i, args)),
                "--checkpoint-every" => {
                    o.checkpoint_every = value(&mut i, args)
                        .parse()
                        .expect("--checkpoint-every takes an interval count")
                }
                "--resume" => {
                    o.resume = true;
                    i += 1;
                }
                "--fault-drop" => {
                    o.fault_drop =
                        value(&mut i, args).parse().expect("--fault-drop takes a probability")
                }
                "--fault-corrupt" => {
                    o.fault_corrupt =
                        value(&mut i, args).parse().expect("--fault-corrupt takes a probability")
                }
                "--fault-truncate" => {
                    o.fault_truncate = value(&mut i, args)
                        .parse()
                        .expect("--fault-truncate takes a probability")
                }
                "--fault-seed" => {
                    o.fault_seed =
                        value(&mut i, args).parse().expect("--fault-seed takes an integer")
                }
                other => panic!("unknown argument {other}; try `eleph help`"),
            }
        }
        assert!(
            o.pcap.is_some() != o.synth,
            "eleph run needs exactly one of --pcap FILE or --synth"
        );
        assert!(
            !o.resume || o.checkpoint_dir.is_some(),
            "--resume needs --checkpoint-dir DIR (where the checkpoint lives)"
        );
        assert!(
            !o.resume || o.out.is_some(),
            "--resume needs --out FILE (stdout cannot be truncated to the checkpointed length)"
        );
        assert!(
            o.rotate_bytes.is_none() || o.out.is_some(),
            "--rotate-bytes needs --out FILE"
        );
        assert!(
            !o.wants_faults() || o.pcap.is_some(),
            "--fault-* flags apply to the pcap path only"
        );
        assert!(
            o.ingest_workers == 0 || o.pcap.is_some(),
            "--ingest-workers applies to the pcap path only"
        );
        assert!(
            o.ingest_workers == 0 || !o.wants_faults(),
            "--ingest-workers is incompatible with --fault-* (fault injection \
             mutates records inline on the serial reader)"
        );
        assert!(
            o.state == "exact" || o.shards == 0,
            "--state {} is incompatible with --shards (sketch backends run serially; \
             their state does not scale with keys, so there is no row to partition)",
            o.state
        );
        // Fail on an unknown backend name at parse time, not mid-run.
        let _ = o.make_state();
        o
    }

    /// The configured state backend.
    pub fn make_state(&self) -> StateBackendConfig {
        StateBackendConfig::parse(&self.state, self.state_budget as usize)
            .unwrap_or_else(|e| panic!("{e}"))
    }

    /// Whether any fault-injection probability is non-zero.
    pub fn wants_faults(&self) -> bool {
        self.fault_drop != 0.0 || self.fault_corrupt != 0.0 || self.fault_truncate != 0.0
    }

    /// The configured fault injector settings.
    pub fn fault_config(&self) -> FaultConfig {
        FaultConfig {
            drop_prob: self.fault_drop,
            corrupt_prob: self.fault_corrupt,
            truncate_prob: self.fault_truncate,
            seed: self.fault_seed,
        }
    }

    /// The configured detector, chosen at runtime.
    pub fn make_detector(&self) -> Box<dyn ThresholdDetector> {
        match self.detector.as_str() {
            "constant-load" | "cl" => Box::new(ConstantLoadDetector::new(self.beta)),
            "aest" => Box::new(AestDetector::new()),
            other => panic!("unknown detector {other}; supported: constant-load aest"),
        }
    }

    /// The configured classification scheme.
    pub fn make_scheme(&self) -> Scheme {
        match self.scheme.as_str() {
            "latent" | "latent-heat" => Scheme::LatentHeat { window: self.window },
            "single" | "single-feature" => Scheme::SingleFeature,
            "hysteresis" => Scheme::Hysteresis {
                enter: self.enter,
                exit: self.exit,
            },
            other => panic!("unknown scheme {other}; supported: latent single hysteresis"),
        }
    }
}

/// `eleph run`: wire a source into the streaming pipeline and emit
/// per-interval JSONL, with a run summary on stderr.
pub fn run_streaming(args: &[String]) -> io::Result<()> {
    let opts = RunOpts::parse(args);
    let table = match &opts.rib {
        Some(path) => {
            let file = std::fs::File::open(path)?;
            eleph_bgp::dump::read_dump(file)
                .map_err(|e| io::Error::other(format!("{path}: {e}")))?
        }
        None => {
            if opts.pcap.is_some() {
                // Attribution is only meaningful against the table the
                // capture was generated for; be loud about the default.
                eprintln!(
                    "eleph run: no --rib given; attributing against a synthetic \
                     {}-prefix table (matches captures produced with this tool's \
                     default table only)",
                    opts.prefixes,
                );
            }
            eleph_bgp::synth::generate(&eleph_bgp::synth::SynthConfig {
                n_prefixes: opts.prefixes,
                ..eleph_bgp::synth::SynthConfig::default()
            })
        }
    };

    let updates: Vec<UpdateBatch> = match &opts.rib_updates {
        Some(path) => {
            let file = std::fs::File::open(path)?;
            eleph_bgp::dump::read_updates(file)
                .map_err(|e| io::Error::other(format!("{path}: {e}")))?
        }
        None => Vec::new(),
    };

    // Checkpoint/resume plumbing: the checkpoint must be loaded before
    // the sink exists, because resuming truncates the output chain to
    // exactly the checkpointed interval count (exactly-once emission).
    let mut checkpointer = match &opts.checkpoint_dir {
        Some(dir) => Some(Checkpointer::new(dir, opts.checkpoint_every)?),
        None => None,
    };
    let ckpt: Option<Checkpoint> = if opts.resume {
        let path = checkpointer.as_ref().expect("validated in parse").path();
        if path.exists() {
            let c = Checkpoint::load(path)
                .map_err(|e| io::Error::other(format!("{}: {e}", path.display())))?;
            eprintln!(
                "eleph run: resuming from {} ({} intervals sealed, {} records consumed)",
                path.display(),
                c.intervals_sealed(),
                c.offered(),
            );
            Some(c)
        } else {
            // A kill can land before the first checkpoint is written;
            // falling back to a fresh start keeps `--resume` safe to
            // use unconditionally in supervisors and retry loops.
            eprintln!(
                "eleph run: --resume but no checkpoint at {}; starting fresh",
                path.display()
            );
            None
        }
    } else {
        None
    };

    // With an update stream the table goes live: scheduled batches
    // apply mid-stream without a refreeze. On resume, the checkpoint's
    // generation of batches replays onto the fresh live table *before*
    // the pipeline pins its view, so ids and the config fingerprint
    // line up exactly with the run that wrote the snapshot.
    let live = opts.rib_updates.as_ref().map(|_| LiveBgpTable::from_table(&table));
    if let (Some(live), Some(c)) = (&live, &ckpt) {
        let done = usize::try_from(c.generation()).unwrap_or(usize::MAX);
        if done > updates.len() {
            return Err(io::Error::other(format!(
                "checkpoint rejected: it consumed {} update batches but the --rib-updates \
                 stream holds {}",
                c.generation(),
                updates.len()
            )));
        }
        for batch in &updates[..done] {
            live.apply(&batch.updates);
        }
    }

    let mut builder = PipelineBuilder::new()
        .detector(opts.make_detector())
        .gamma(opts.gamma)
        .scheme(opts.make_scheme())
        .shards(opts.shards)
        .state_backend(opts.make_state());
    builder = match &live {
        Some(l) => builder.live(l).route_updates(updates),
        None => builder.table(&table),
    };
    builder = match &opts.out {
        Some(path) => builder.sink(match &ckpt {
            Some(c) => RotatingJsonlSink::resume(
                path,
                opts.rotate_bytes,
                c.intervals_sealed() as u64,
            )?,
            None => RotatingJsonlSink::create(path, opts.rotate_bytes)?,
        }),
        None => builder.sink(JsonlSink::new(io::BufWriter::new(io::stdout()))),
    };

    let mut fault_stats: Option<FaultStats> = None;
    let started = std::time::Instant::now();
    let report = if let Some(path) = &opts.pcap {
        let interval_secs = opts.interval_secs.unwrap_or(300);
        // Without an explicit start, anchor the window at the first
        // packet's interval: real captures carry epoch timestamps, and
        // starting at 0 would make the pipeline seal decades of empty
        // intervals before the first real one. (Deterministic per file,
        // so a resumed run re-derives the same anchor and passes the
        // checkpoint's config fingerprint check.)
        let start_unix = match opts.start_unix {
            Some(t) => t,
            None => {
                let t = first_packet_unix(path)?;
                let start = t / interval_secs * interval_secs;
                eprintln!(
                    "eleph run: no --start-unix given; anchoring the window at \
                     {start} (first packet's interval start)"
                );
                start
            }
        };
        let mut builder = builder.interval_secs(interval_secs).start_unix(start_unix);
        if let Some(n) = opts.intervals {
            builder = builder.n_intervals(n);
        }
        let file = std::fs::File::open(path)?;
        let map_src = |e: eleph_packet::PacketError| io::Error::other(format!("{path}: {e}"));
        if opts.wants_faults() {
            let injector = FaultInjector::try_new(opts.fault_config())
                .map_err(io::Error::other)?;
            let mut source = FaultedPcapSource::new(file, injector).map_err(map_src)?;
            let report = drive(builder, &mut source, ckpt.as_ref(), checkpointer.as_mut())?;
            fault_stats = Some(source.fault_stats());
            report
        } else if opts.ingest_workers > 0 {
            // The async ingest stage decodes from a shared in-memory
            // capture; delivery order, chunk boundaries and error
            // positions are identical to the serial reader's, so
            // checkpoints interoperate across worker counts.
            drop(file);
            let data = std::sync::Arc::new(std::fs::read(path)?);
            let mut source =
                PooledPcapSource::new(data, opts.ingest_workers).map_err(map_src)?;
            drive(builder, &mut source, ckpt.as_ref(), checkpointer.as_mut())?
        } else {
            let mut source = PcapSource::new(file).map_err(map_src)?;
            drive(builder, &mut source, ckpt.as_ref(), checkpointer.as_mut())?
        }
    } else {
        let config = WorkloadConfig {
            n_flows: opts.flows,
            n_intervals: opts.intervals.unwrap_or(120),
            interval_secs: opts.interval_secs.unwrap_or(60),
            ..WorkloadConfig::small_test(opts.seed)
        };
        let trace = RateTrace::generate(&config, &table);
        let builder = builder
            .interval_secs(config.interval_secs)
            .start_unix(config.start_unix)
            .n_intervals(config.n_intervals);
        let mut source = TraceSource::new(&trace);
        drive(builder, &mut source, ckpt.as_ref(), checkpointer.as_mut())?
    };

    let elapsed = started.elapsed().as_secs_f64();
    eprintln!("{}", summary_json(&opts, &report, ckpt.is_some(), fault_stats, elapsed));
    Ok(())
}

/// Build the pipeline (fresh or resumed), replay past the checkpoint's
/// consumed records, and run it to completion — the shared tail of every
/// `eleph run` source/configuration combination.
///
/// Takes the source by `&mut` so the caller keeps ownership and can read
/// source-side state (fault counters) after the run.
fn drive<D: ThresholdDetector, S: PacketSource>(
    builder: PipelineBuilder<'_, D>,
    source: &mut S,
    ckpt: Option<&Checkpoint>,
    checkpointer: Option<&mut Checkpointer>,
) -> io::Result<PipelineReport> {
    let mut pipeline: Pipeline<'_, D> = match ckpt {
        Some(c) => builder
            .resume(c)
            .map_err(|e| io::Error::other(format!("checkpoint rejected: {e}")))?,
        None => builder.build(),
    };
    if let Some(c) = ckpt {
        // Sources replay deterministically, so skipping to the
        // checkpoint's consumed-record count (parsed + malformed, both
        // already folded into `offered`) realigns the stream with the
        // restored classifier state.
        skip_offered(&mut *source, c.offered())
            .map_err(|e| io::Error::other(e.to_string()))?;
    }
    match checkpointer {
        Some(ck) => pipeline.run_checkpointed(&mut *source, ck),
        None => pipeline.run(&mut *source),
    }
    .map_err(|e| io::Error::other(e.to_string()))?;
    pipeline.finish().map_err(|e| io::Error::other(e.to_string()))
}

/// The end-of-run summary as one JSON line: interval/prefix counts,
/// every packet-accounting counter, the conservation verdict, the
/// far-future-streak high-water mark, wall-clock throughput, and (when
/// fault injection is on) the injector's counters — machine-checkable
/// run health at a glance.
fn summary_json(
    opts: &RunOpts,
    report: &PipelineReport,
    resumed: bool,
    fault_stats: Option<FaultStats>,
    elapsed_secs: f64,
) -> String {
    let s = &report.stats;
    // Wall-clock ingest rates over the whole run (build + stream +
    // seal): bytes are the *attributed* payload bytes, packets are all
    // offered records. A capture so tiny that the elapsed time rounds
    // to zero (or a non-finite clock reading) reports rates of 0 — the
    // summary must stay strict JSON, and `inf`/`NaN` are not JSON.
    let elapsed = if elapsed_secs.is_finite() && elapsed_secs > 0.0 { elapsed_secs } else { 0.0 };
    let rate = |count: f64| {
        let r = if elapsed > 0.0 { count / elapsed } else { 0.0 };
        if r.is_finite() { r } else { 0.0 }
    };
    let mut line = format!(
        "{{\"eleph_run\":{{\"intervals\":{},\"prefixes\":{},\"offered\":{},\
         \"attributed\":{},\"attributed_bytes\":{},\"unroutable\":{},\
         \"out_of_window\":{},\"malformed\":{},\"late\":{},\"conserved\":{},\
         \"far_future_streak\":{},\"generation\":{},\"route_updates\":{},\"resumed\":{},\
         \"shards\":{},\"state\":\"{}\",\"distinct_keys\":{},\"state_bytes\":{},\
         \"elapsed_secs\":{:.6},\"throughput_bytes_per_sec\":{:.1},\
         \"packets_per_sec\":{:.1}",
        report.intervals,
        report.keys.len(),
        s.offered,
        s.attributed,
        s.attributed_bytes,
        s.unroutable,
        s.out_of_window,
        s.malformed,
        s.late,
        s.is_conserved(),
        report.far_future_streak,
        report.generation,
        report.route_updates_applied,
        resumed,
        opts.shards,
        report.state_backend,
        report.distinct_keys,
        report.state_bytes,
        elapsed,
        rate(s.attributed_bytes as f64),
        rate(s.offered as f64),
    );
    if let Some(dir) = &opts.checkpoint_dir {
        line.push_str(&format!(
            ",\"checkpoint_dir\":{:?},\"checkpoint_every\":{}",
            dir, opts.checkpoint_every
        ));
    }
    if let Some(f) = fault_stats {
        line.push_str(&format!(
            ",\"fault\":{{\"seen\":{},\"dropped\":{},\"corrupted\":{},\"truncated\":{}}}",
            f.seen, f.dropped, f.corrupted, f.truncated
        ));
    }
    line.push_str("}}");
    line
}

/// Options of `eleph churn` — a deterministic route-update stream
/// generator for exercising `eleph run --rib-updates`.
#[derive(Debug, Clone)]
pub struct ChurnOpts {
    /// Synthetic table size to sample prefixes from (must match the
    /// run's `--prefixes` for the updates to hit routed prefixes).
    pub prefixes: usize,
    /// Churn scenario seed.
    pub seed: u64,
    /// Base Unix time the scenario offsets add to.
    pub start_unix: u64,
    /// Withdraw-storm offset in seconds (relative to `start_unix`).
    pub storm_at: u64,
    /// Prefixes withdrawn by the storm (0 disables the storm).
    pub storm_count: usize,
    /// Seconds the storm's routes stay down.
    pub storm_hold: u64,
    /// First-flap offset in seconds (relative to `start_unix`).
    pub flap_start: u64,
    /// Number of flapping prefixes (0 disables flapping).
    pub flap_count: usize,
    /// Seconds between a flap's withdraw and its re-announce.
    pub flap_period: u64,
    /// Withdraw/announce cycles per flapping prefix.
    pub flap_cycles: u32,
    /// Whether the last re-announce is damped (8 × period suppression).
    pub flap_damped: bool,
    /// Update-stream destination (`None` = stdout).
    pub out: Option<String>,
}

impl Default for ChurnOpts {
    fn default() -> Self {
        ChurnOpts {
            prefixes: 20_000,
            seed: 7,
            start_unix: 0,
            storm_at: 60,
            storm_count: 16,
            storm_hold: 120,
            flap_start: 90,
            flap_count: 4,
            flap_period: 30,
            flap_cycles: 3,
            flap_damped: false,
            out: None,
        }
    }
}

impl ChurnOpts {
    /// Parse `eleph churn` arguments.
    pub fn parse(args: &[String]) -> ChurnOpts {
        let mut o = ChurnOpts::default();
        let mut i = 0;
        let value = |i: &mut usize, args: &[String]| -> String {
            *i += 2;
            args.get(*i - 1)
                .unwrap_or_else(|| panic!("{} takes a value", args[*i - 2]))
                .clone()
        };
        while i < args.len() {
            match args[i].as_str() {
                "--prefixes" => {
                    o.prefixes = value(&mut i, args).parse().expect("--prefixes takes a count")
                }
                "--seed" => o.seed = value(&mut i, args).parse().expect("--seed takes an integer"),
                "--start-unix" => {
                    o.start_unix =
                        value(&mut i, args).parse().expect("--start-unix takes a timestamp")
                }
                "--storm-at" => {
                    o.storm_at = value(&mut i, args).parse().expect("--storm-at takes seconds")
                }
                "--storm-count" => {
                    o.storm_count =
                        value(&mut i, args).parse().expect("--storm-count takes a count")
                }
                "--storm-hold" => {
                    o.storm_hold = value(&mut i, args).parse().expect("--storm-hold takes seconds")
                }
                "--flap-start" => {
                    o.flap_start = value(&mut i, args).parse().expect("--flap-start takes seconds")
                }
                "--flap-count" => {
                    o.flap_count = value(&mut i, args).parse().expect("--flap-count takes a count")
                }
                "--flap-period" => {
                    o.flap_period =
                        value(&mut i, args).parse().expect("--flap-period takes seconds")
                }
                "--flap-cycles" => {
                    o.flap_cycles = value(&mut i, args).parse().expect("--flap-cycles takes a count")
                }
                "--flap-damped" => {
                    o.flap_damped = true;
                    i += 1;
                }
                "--out" => o.out = Some(value(&mut i, args)),
                other => panic!("unknown argument {other}; try `eleph help`"),
            }
        }
        assert!(
            o.storm_count > 0 || o.flap_count > 0,
            "eleph churn needs at least one scenario (--storm-count or --flap-count > 0)"
        );
        o
    }

    /// The scenario set these options describe.
    pub fn config(&self) -> ChurnConfig {
        let mut scenarios = Vec::new();
        if self.storm_count > 0 {
            scenarios.push(ChurnScenario::WithdrawReannounceStorm {
                at_unix: self.start_unix + self.storm_at,
                count: self.storm_count,
                hold_secs: self.storm_hold,
            });
        }
        if self.flap_count > 0 {
            scenarios.push(ChurnScenario::Flap {
                start_unix: self.start_unix + self.flap_start,
                count: self.flap_count,
                period_secs: self.flap_period,
                flaps: self.flap_cycles,
                damped: self.flap_damped,
            });
        }
        ChurnConfig { seed: self.seed, scenarios }
    }
}

/// `eleph churn`: sample prefixes from the same synthetic table `eleph
/// run` defaults to and write a deterministic timed update stream —
/// same options, same bytes, every time.
pub fn run_churn(args: &[String]) -> io::Result<()> {
    let opts = ChurnOpts::parse(args);
    let table = eleph_bgp::synth::generate(&eleph_bgp::synth::SynthConfig {
        n_prefixes: opts.prefixes,
        ..eleph_bgp::synth::SynthConfig::default()
    });
    let batches = generate_churn(&table, &opts.config());
    let n_updates: usize = batches.iter().map(|b| b.updates.len()).sum();
    match &opts.out {
        Some(path) => {
            let mut file = io::BufWriter::new(std::fs::File::create(path)?);
            eleph_bgp::dump::write_updates(&batches, &mut file)
                .map_err(|e| io::Error::other(e.to_string()))?;
        }
        None => {
            let stdout = io::stdout();
            let mut lock = io::BufWriter::new(stdout.lock());
            eleph_bgp::dump::write_updates(&batches, &mut lock)
                .map_err(|e| io::Error::other(e.to_string()))?;
        }
    }
    eprintln!(
        "{{\"eleph_churn\":{{\"batches\":{},\"updates\":{},\"prefixes\":{},\"seed\":{}}}}}",
        batches.len(),
        n_updates,
        opts.prefixes,
        opts.seed,
    );
    Ok(())
}

/// Unix second of the first record in a pcap file (0 for an empty
/// capture — the window then starts at the epoch, which is harmless
/// since there are no packets to seal against).
fn first_packet_unix(path: &str) -> io::Result<u64> {
    let file = std::fs::File::open(path)?;
    let mut reader = eleph_packet::pcap::PcapReader::new(file)
        .map_err(|e| io::Error::other(format!("{path}: {e}")))?;
    let mut buf = Vec::new();
    match reader
        .next_record_into(&mut buf)
        .map_err(|e| io::Error::other(format!("{path}: {e}")))?
    {
        Some(head) => Ok(head.ts_ns / 1_000_000_000),
        None => Ok(0),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A minimal strict JSON validator (objects, arrays, strings,
    /// numbers, booleans, null) — `inf`, `NaN`, trailing garbage and
    /// malformed literals all fail. Hand-rolled because the summary's
    /// whole bug class was "not actually JSON", so the test must not
    /// share the emitter's assumptions.
    fn parse_json(s: &str) -> Result<(), String> {
        let b = s.as_bytes();
        let mut at = 0usize;
        fn skip_ws(b: &[u8], at: &mut usize) {
            while *at < b.len() && (b[*at] as char).is_ascii_whitespace() {
                *at += 1;
            }
        }
        fn value(b: &[u8], at: &mut usize) -> Result<(), String> {
            skip_ws(b, at);
            match b.get(*at) {
                Some(b'{') => {
                    *at += 1;
                    skip_ws(b, at);
                    if b.get(*at) == Some(&b'}') {
                        *at += 1;
                        return Ok(());
                    }
                    loop {
                        skip_ws(b, at);
                        string(b, at)?;
                        skip_ws(b, at);
                        if b.get(*at) != Some(&b':') {
                            return Err(format!("expected ':' at {at}"));
                        }
                        *at += 1;
                        value(b, at)?;
                        skip_ws(b, at);
                        match b.get(*at) {
                            Some(b',') => *at += 1,
                            Some(b'}') => {
                                *at += 1;
                                return Ok(());
                            }
                            _ => return Err(format!("expected ',' or '}}' at {at}")),
                        }
                    }
                }
                Some(b'[') => {
                    *at += 1;
                    skip_ws(b, at);
                    if b.get(*at) == Some(&b']') {
                        *at += 1;
                        return Ok(());
                    }
                    loop {
                        value(b, at)?;
                        skip_ws(b, at);
                        match b.get(*at) {
                            Some(b',') => *at += 1,
                            Some(b']') => {
                                *at += 1;
                                return Ok(());
                            }
                            _ => return Err(format!("expected ',' or ']' at {at}")),
                        }
                    }
                }
                Some(b'"') => string(b, at),
                Some(b't') => literal(b, at, "true"),
                Some(b'f') => literal(b, at, "false"),
                Some(b'n') => literal(b, at, "null"),
                Some(c) if *c == b'-' || c.is_ascii_digit() => number(b, at),
                other => Err(format!("unexpected {other:?} at {at}")),
            }
        }
        fn string(b: &[u8], at: &mut usize) -> Result<(), String> {
            if b.get(*at) != Some(&b'"') {
                return Err(format!("expected string at {at}"));
            }
            *at += 1;
            while let Some(&c) = b.get(*at) {
                match c {
                    b'"' => {
                        *at += 1;
                        return Ok(());
                    }
                    b'\\' => *at += 2,
                    _ => *at += 1,
                }
            }
            Err("unterminated string".to_string())
        }
        fn literal(b: &[u8], at: &mut usize, word: &str) -> Result<(), String> {
            if b[*at..].starts_with(word.as_bytes()) {
                *at += word.len();
                Ok(())
            } else {
                Err(format!("bad literal at {at}"))
            }
        }
        fn number(b: &[u8], at: &mut usize) -> Result<(), String> {
            let start = *at;
            if b.get(*at) == Some(&b'-') {
                *at += 1;
            }
            let digits = |b: &[u8], at: &mut usize| {
                let s = *at;
                while at.checked_add(0).is_some()
                    && *at < b.len()
                    && b[*at].is_ascii_digit()
                {
                    *at += 1;
                }
                *at > s
            };
            if !digits(b, at) {
                return Err(format!("bad number at {start} (no integer digits)"));
            }
            if b.get(*at) == Some(&b'.') {
                *at += 1;
                if !digits(b, at) {
                    return Err(format!("bad number at {start} (no fraction digits)"));
                }
            }
            if matches!(b.get(*at), Some(b'e') | Some(b'E')) {
                *at += 1;
                if matches!(b.get(*at), Some(b'+') | Some(b'-')) {
                    *at += 1;
                }
                if !digits(b, at) {
                    return Err(format!("bad number at {start} (no exponent digits)"));
                }
            }
            Ok(())
        }
        value(b, &mut at)?;
        skip_ws(b, &mut at);
        if at != b.len() {
            return Err(format!("trailing garbage at {at}"));
        }
        Ok(())
    }

    fn report() -> PipelineReport {
        PipelineReport {
            stats: eleph_pipeline::PipelineStats {
                offered: 10,
                attributed: 9,
                attributed_bytes: 9_000,
                unroutable: 1,
                ..Default::default()
            },
            intervals: 2,
            keys: Vec::new(),
            far_future_streak: 0,
            generation: 0,
            route_updates_applied: 0,
            distinct_keys: 3,
            state_bytes: 1_048_576,
            state_backend: "spacesaving",
        }
    }

    #[test]
    fn summary_is_strict_json_even_at_zero_elapsed() {
        let opts = RunOpts {
            synth: true,
            checkpoint_dir: Some("ckpt".to_string()),
            ..RunOpts::default()
        };
        // The regression: elapsed_secs rounding to zero used to emit
        // inf rates (and a hypothetical NaN clock must not panic or
        // leak either).
        for elapsed in [0.0, -0.0, f64::NAN, f64::INFINITY, 1.5] {
            let line = summary_json(&opts, &report(), false, None, elapsed);
            parse_json(&line).unwrap_or_else(|e| panic!("elapsed={elapsed}: {e}\n{line}"));
        }
        let line = summary_json(&opts, &report(), false, None, 0.0);
        assert!(line.contains("\"throughput_bytes_per_sec\":0.0"));
        assert!(line.contains("\"packets_per_sec\":0.0"));
        assert!(line.contains("\"state\":\"spacesaving\""));
        assert!(line.contains("\"distinct_keys\":3"));
        assert!(line.contains("\"state_bytes\":1048576"));
    }

    #[test]
    fn json_validator_rejects_non_json() {
        assert!(parse_json("{\"a\":inf}").is_err());
        assert!(parse_json("{\"a\":NaN}").is_err());
        assert!(parse_json("{\"a\":1.}").is_err());
        assert!(parse_json("{\"a\":1}x").is_err());
        assert!(parse_json("{\"a\":{\"b\":[1,2.5,true,null,\"s\"]}}").is_ok());
    }
}
