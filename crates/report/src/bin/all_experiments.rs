//! Run every experiment in sequence (the full EXPERIMENTS.md refresh).

use eleph_report::experiments::*;

fn main() -> std::io::Result<()> {
    let (scale, seed) = cli_scale_seed();
    let data = fig1_data(scale, seed);
    for out in [fig1a(&data)?, fig1b(&data)?, fig1c(&data)?, table2(&data)?, table3(&data)?] {
        println!("{}", out.render());
    }
    for out in [
        table1(scale, seed)?,
        table4(scale, seed)?,
        ablation_gamma(scale, seed)?,
        ablation_window(scale, seed)?,
        ablation_beta(scale, seed)?,
        ablation_scheme(scale, seed)?,
    ] {
        println!("{}", out.render());
    }
    Ok(())
}
