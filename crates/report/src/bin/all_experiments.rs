//! Run every experiment in sequence (the full EXPERIMENTS.md refresh).
//!
//! Expensive inputs are built once and shared: the Figure 1 dataset
//! feeds the three panels plus tables 1-3, and one west-coast lab build
//! feeds all four ablations.

use eleph_report::experiments::*;

fn main() -> std::io::Result<()> {
    let (scale, seed) = cli_scale_seed();
    let data = fig1_data(scale, seed);
    for out in [
        fig1a(&data)?,
        fig1b(&data)?,
        fig1c(&data)?,
        table1(&data)?,
        table2(&data)?,
        table3(&data)?,
    ] {
        println!("{}", out.render());
    }
    println!("{}", table4(scale, seed)?.render());
    let (scenario, lab) = west_lab(scale, seed);
    for out in [
        ablation_gamma(&scenario, &lab)?,
        ablation_window(&scenario, &lab)?,
        ablation_beta(&scenario, &lab)?,
        ablation_scheme(&scenario, &lab)?,
    ] {
        println!("{}", out.render());
    }
    Ok(())
}
