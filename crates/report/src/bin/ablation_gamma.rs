//! A1: threshold-smoothing (gamma) ablation.
//!
//! Deprecated shim over `eleph` (one release of compatibility): the
//! experiment now lives behind `eleph_report::cli`; this binary
//! forwards there so its output stays byte-identical.

fn main() -> std::io::Result<()> {
    eleph_report::cli::legacy_shim("ablation_gamma")
}
