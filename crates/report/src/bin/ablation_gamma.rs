//! A1: threshold-smoothing (gamma) ablation.

use eleph_report::experiments::{ablation_gamma, cli_scale_seed};

fn main() -> std::io::Result<()> {
    let (scale, seed) = cli_scale_seed();
    print!("{}", ablation_gamma(scale, seed)?.render());
    Ok(())
}
