//! A1: threshold-smoothing (gamma) ablation.

use eleph_report::experiments::{ablation_gamma, cli_scale_seed, west_lab};

fn main() -> std::io::Result<()> {
    let (scale, seed) = cli_scale_seed();
    let (scenario, data) = west_lab(scale, seed);
    print!("{}", ablation_gamma(&scenario, &data)?.render());
    Ok(())
}
