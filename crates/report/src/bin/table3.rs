//! Regenerate T3: prefix-length analysis (§III in-text numbers).

use eleph_report::experiments::{cli_scale_seed, fig1_data, table3};

fn main() -> std::io::Result<()> {
    let (scale, seed) = cli_scale_seed();
    let data = fig1_data(scale, seed);
    print!("{}", table3(&data)?.render());
    Ok(())
}
