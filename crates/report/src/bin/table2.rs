//! Regenerate T2: latent-heat improvements (§III in-text numbers).

use eleph_report::experiments::{cli_scale_seed, fig1_data, table2};

fn main() -> std::io::Result<()> {
    let (scale, seed) = cli_scale_seed();
    let data = fig1_data(scale, seed);
    print!("{}", table2(&data)?.render());
    Ok(())
}
