//! Regenerate Figure 1(c): holding-time histogram over the busy period.

use eleph_report::experiments::{cli_scale_seed, fig1_data, fig1c};

fn main() -> std::io::Result<()> {
    let (scale, seed) = cli_scale_seed();
    let data = fig1_data(scale, seed);
    print!("{}", fig1c(&data)?.render());
    Ok(())
}
