//! Regenerate Figure 1(c): holding-time histogram over the busy period.
//!
//! Deprecated shim over `eleph` (one release of compatibility): the
//! experiment now lives behind `eleph_report::cli`; this binary
//! forwards there so its output stays byte-identical.

fn main() -> std::io::Result<()> {
    eleph_report::cli::legacy_shim("fig1c")
}
