//! Regenerate T4: sensitivity to the measurement interval T (§II).

use eleph_report::experiments::{cli_scale_seed, table4};

fn main() -> std::io::Result<()> {
    let (scale, seed) = cli_scale_seed();
    print!("{}", table4(scale, seed)?.render());
    Ok(())
}
