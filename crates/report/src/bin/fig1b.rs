//! Regenerate Figure 1(b): fraction of traffic apportioned to elephants.

use eleph_report::experiments::{cli_scale_seed, fig1_data, fig1b};

fn main() -> std::io::Result<()> {
    let (scale, seed) = cli_scale_seed();
    let data = fig1_data(scale, seed);
    print!("{}", fig1b(&data)?.render());
    Ok(())
}
