//! Regenerate Figure 1(a): number of elephants per 5-minute interval.

use eleph_report::experiments::{cli_scale_seed, fig1_data, fig1a};

fn main() -> std::io::Result<()> {
    let (scale, seed) = cli_scale_seed();
    let data = fig1_data(scale, seed);
    print!("{}", fig1a(&data)?.render());
    Ok(())
}
