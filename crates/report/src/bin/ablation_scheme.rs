//! A4: persistence-mechanism ablation (latent heat vs hysteresis).

use eleph_report::experiments::{ablation_scheme, cli_scale_seed};

fn main() -> std::io::Result<()> {
    let (scale, seed) = cli_scale_seed();
    print!("{}", ablation_scheme(scale, seed)?.render());
    Ok(())
}
