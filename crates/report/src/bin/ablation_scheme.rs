//! A4: persistence-mechanism ablation (latent heat vs hysteresis).

use eleph_report::experiments::{ablation_scheme, cli_scale_seed, west_lab};

fn main() -> std::io::Result<()> {
    let (scale, seed) = cli_scale_seed();
    let (scenario, data) = west_lab(scale, seed);
    print!("{}", ablation_scheme(&scenario, &data)?.render());
    Ok(())
}
