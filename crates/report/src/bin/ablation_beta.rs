//! A3: constant-load beta ablation.

use eleph_report::experiments::{ablation_beta, cli_scale_seed, west_lab};

fn main() -> std::io::Result<()> {
    let (scale, seed) = cli_scale_seed();
    let (scenario, data) = west_lab(scale, seed);
    print!("{}", ablation_beta(&scenario, &data)?.render());
    Ok(())
}
