//! A3: constant-load beta ablation.

use eleph_report::experiments::{ablation_beta, cli_scale_seed};

fn main() -> std::io::Result<()> {
    let (scale, seed) = cli_scale_seed();
    print!("{}", ablation_beta(scale, seed)?.render());
    Ok(())
}
