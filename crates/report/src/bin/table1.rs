//! Regenerate T1: single-feature volatility (§II in-text numbers).

use eleph_report::experiments::{cli_scale_seed, fig1_data, table1};

fn main() -> std::io::Result<()> {
    let (scale, seed) = cli_scale_seed();
    let data = fig1_data(scale, seed);
    print!("{}", table1(&data)?.render());
    Ok(())
}
