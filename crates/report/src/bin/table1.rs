//! Regenerate T1: single-feature volatility (§II in-text numbers).

use eleph_report::experiments::{cli_scale_seed, table1};

fn main() -> std::io::Result<()> {
    let (scale, seed) = cli_scale_seed();
    print!("{}", table1(scale, seed)?.render());
    Ok(())
}
