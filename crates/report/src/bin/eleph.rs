//! The `eleph` CLI: every paper experiment plus the streaming pipeline
//! behind one binary. `eleph help` lists the subcommands.

fn main() -> std::io::Result<()> {
    eleph_report::cli::eleph_main()
}
