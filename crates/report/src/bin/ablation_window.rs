//! A2: latent-heat window ablation.

use eleph_report::experiments::{ablation_window, cli_scale_seed, west_lab};

fn main() -> std::io::Result<()> {
    let (scale, seed) = cli_scale_seed();
    let (scenario, data) = west_lab(scale, seed);
    print!("{}", ablation_window(&scenario, &data)?.render());
    Ok(())
}
