//! A2: latent-heat window ablation.

use eleph_report::experiments::{ablation_window, cli_scale_seed};

fn main() -> std::io::Result<()> {
    let (scale, seed) = cli_scale_seed();
    print!("{}", ablation_window(scale, seed)?.render());
    Ok(())
}
