//! `eleph sketch` — the exact-oracle accuracy harness for the sketch
//! state backends.
//!
//! One synthetic workload (the west-coast scenario's traffic shape on a
//! 10 Mb/s lab link, so the full grid runs in seconds) is streamed
//! through the pipeline once per (scheme, γ, backend) combination:
//!
//! * the **oracle** is the batch path over the identical packets —
//!   [`eleph_flow::Aggregator`] → `BandwidthMatrix` →
//!   [`eleph_core::classify`] — whose per-interval elephant sets the
//!   streaming `--state exact` run is pinned **bit-identical** to
//!   (same key ids, same elephants, same threshold bits);
//! * each sketch backend (`spacesaving`, `cmrow`, `bloom`) is scored
//!   against that oracle with [`eleph_stats::SetAccuracy`]:
//!   recall, precision and byte coverage of the elephant set,
//!   micro-averaged over intervals;
//! * a **memory-vs-accuracy frontier** sweeps the state budget at the
//!   paper's headline combination (latent heat, γ = 0.9) and reports
//!   the smallest budget reaching recall ≥ 0.95 per backend.
//!
//! Everything is deterministic in `--seed`: same seed, same tables,
//! byte-identical stdout. A one-line machine-readable summary goes to
//! stderr (`{"eleph_sketch":{..}}`) for the CI recall gate.

use std::io::{self, Write};

use eleph_bgp::{BgpTable, FrozenBgpTable};
use eleph_core::{
    classify, ClassificationResult, ConstantLoadDetector, Scheme, StateBackendConfig, PAPER_BETA,
    PAPER_GAMMA, PAPER_LATENT_WINDOW,
};
use eleph_flow::{Aggregator, BandwidthMatrix};
use eleph_packet::PacketMeta;
use eleph_pipeline::{
    CollectedInterval, Collector, MetaSource, PacketSource, PipelineBuilder, PipelineReport,
    TraceSource,
};
use eleph_stats::SetAccuracy;
use eleph_trace::{LinkSpec, RateTrace};

use crate::Scenario;

/// Budgets swept by the memory-vs-accuracy frontier, bytes.
const FRONTIER_BUDGETS: [usize; 4] = [65_536, 262_144, 1_048_576, 4_194_304];

/// The recall target the frontier reports the smallest budget for (and
/// the CI gate asserts at the default budget).
const RECALL_TARGET: f64 = 0.95;

/// Options of the `eleph sketch` subcommand.
#[derive(Debug, Clone, Copy)]
struct SketchOpts {
    seed: u64,
    scale: f64,
    intervals: usize,
    budget: usize,
}

impl Default for SketchOpts {
    fn default() -> Self {
        SketchOpts {
            seed: 42,
            scale: 0.05,
            intervals: 18,
            budget: 1_048_576,
        }
    }
}

impl SketchOpts {
    fn parse(args: &[String]) -> Self {
        let mut o = SketchOpts::default();
        let mut i = 0;
        while i < args.len() {
            let value = |i: &mut usize| -> &str {
                *i += 1;
                args.get(*i).unwrap_or_else(|| panic!("{} takes a value", args[*i - 1]))
            };
            match args[i].as_str() {
                "--seed" => o.seed = value(&mut i).parse().expect("--seed takes an integer"),
                "--scale" => o.scale = value(&mut i).parse().expect("--scale takes a float"),
                "--intervals" => {
                    o.intervals = value(&mut i).parse().expect("--intervals takes an integer")
                }
                "--budget" => o.budget = value(&mut i).parse().expect("--budget takes bytes"),
                other => panic!(
                    "unknown argument {other}; supported: --seed N --scale F --intervals N --budget BYTES"
                ),
            }
            i += 1;
        }
        assert!(o.scale > 0.0 && o.scale <= 1.0, "--scale must be in (0, 1]");
        assert!(o.intervals >= 2, "--intervals must be at least 2");
        o
    }
}

/// The scheme/γ grid the accuracy table covers. Labels are stable —
/// they appear in stdout and in test expectations.
fn scheme_grid() -> Vec<(&'static str, Scheme)> {
    vec![
        ("single", Scheme::SingleFeature),
        (
            "latent",
            Scheme::LatentHeat {
                window: PAPER_LATENT_WINDOW,
            },
        ),
        (
            "hyst",
            Scheme::Hysteresis {
                enter: 1.2,
                exit: 0.6,
            },
        ),
    ]
}

const GAMMAS: [f64; 3] = [0.5, PAPER_GAMMA, 0.99];

/// The sketch backends under evaluation, by CLI name.
const SKETCHES: [&str; 3] = ["spacesaving", "cmrow", "bloom"];

/// The workload: the west-coast scenario's traffic *shape* (diurnal
/// profile, heavy-tailed flow population) on a 10 Mb/s lab link with
/// one-minute intervals, so the full grid synthesizes and classifies in
/// seconds instead of the hours an OC-12 at T = 5 min would take.
fn lab_scenario(opts: SketchOpts) -> Scenario {
    let mut scenario = Scenario::west(opts.seed).scaled(opts.scale);
    scenario.name = "west-lab-10M".to_string();
    scenario.workload.link = LinkSpec {
        name: "west lab 10 Mb/s".to_string(),
        capacity_bps: 10_000_000.0,
        target_peak_util: scenario.workload.link.target_peak_util,
    };
    scenario.workload.interval_secs = 60;
    scenario.workload.n_intervals = opts.intervals;
    scenario
}

/// Drain a [`TraceSource`] into memory so every pipeline run consumes
/// the byte-identical packet stream.
fn collect_metas(trace: &RateTrace) -> Vec<PacketMeta> {
    let mut source = TraceSource::new(trace);
    let mut metas = Vec::new();
    while source.next_chunk(&mut metas).expect("synthetic source") > 0 {}
    metas
}

/// One streaming run: the shared frozen table, the shared packet
/// stream, one (γ, scheme, backend) configuration.
fn run_pipeline(
    frozen: &FrozenBgpTable,
    metas: &[PacketMeta],
    interval_secs: u64,
    start_unix: u64,
    n_intervals: usize,
    gamma: f64,
    scheme: Scheme,
    state: StateBackendConfig,
) -> (Vec<CollectedInterval>, PipelineReport) {
    let collector = Collector::new();
    let mut pipeline = PipelineBuilder::new()
        .frozen(frozen)
        .interval_secs(interval_secs)
        .start_unix(start_unix)
        .n_intervals(n_intervals)
        .detector(ConstantLoadDetector::new(PAPER_BETA))
        .gamma(gamma)
        .scheme(scheme)
        .state_backend(state)
        .sink(collector.sink())
        .build();
    pipeline
        .run(MetaSource::new(metas.to_vec()))
        .expect("in-memory source cannot fail");
    let report = pipeline.finish().expect("no sink errors");
    (collector.take(), report)
}

/// Score streamed outcomes against the oracle classification,
/// weighting byte coverage by the oracle's exact per-interval rates.
fn score(
    oracle: &ClassificationResult,
    matrix: &BandwidthMatrix,
    outcomes: &[CollectedInterval],
) -> SetAccuracy {
    assert_eq!(outcomes.len(), oracle.n_intervals(), "interval counts differ");
    let mut acc = SetAccuracy::new();
    for (n, got) in outcomes.iter().enumerate() {
        acc.observe(&oracle.elephants[n], &got.outcome.elephants, |key| {
            matrix.rate(n, key)
        });
    }
    acc
}

/// Assert the `--state exact` streaming run is bit-identical to the
/// batch oracle: same elephants, same threshold bits, every interval.
fn assert_exact_pinned(
    oracle: &ClassificationResult,
    outcomes: &[CollectedInterval],
    context: &str,
) {
    assert_eq!(outcomes.len(), oracle.n_intervals(), "{context}: interval count");
    for (n, got) in outcomes.iter().enumerate() {
        assert_eq!(
            got.outcome.elephants, oracle.elephants[n],
            "{context}: exact backend diverged from the batch oracle at interval {n}"
        );
        assert_eq!(
            got.outcome.threshold.to_bits(),
            oracle.thresholds[n].to_bits(),
            "{context}: exact threshold bits diverged at interval {n}"
        );
    }
}

/// Run the full harness and print the accuracy table and frontier.
pub fn run_sketch(args: &[String]) -> io::Result<()> {
    let opts = SketchOpts::parse(args);
    let scenario = lab_scenario(opts);
    let table: BgpTable = eleph_bgp::synth::generate(&scenario.table);
    let frozen = table.freeze();
    let trace = RateTrace::generate(&scenario.workload, &table);
    let metas = collect_metas(&trace);
    let interval_secs = scenario.workload.interval_secs;
    let start_unix = scenario.workload.start_unix;
    let n_intervals = scenario.workload.n_intervals;

    // Oracle: the batch path over the identical packet stream. Key ids
    // are first-seen order on both paths, so elephant id sets compare
    // directly.
    let mut agg = Aggregator::with_frozen(&frozen, interval_secs, start_unix, n_intervals);
    agg.observe_chunk(&metas);
    let (matrix, _stats) = agg.finish();

    let stdout = io::stdout();
    let mut out = stdout.lock();
    writeln!(out, "eleph sketch — sketch state backends vs the exact oracle")?;
    writeln!(
        out,
        "  workload: {} (T = {interval_secs}s, {n_intervals} intervals, seed {}, scale {})",
        scenario.workload.link.name, opts.seed, opts.scale
    )?;
    writeln!(
        out,
        "  stream: {} packets, {} distinct keys; default budget {} bytes",
        metas.len(),
        matrix.n_keys(),
        opts.budget
    )?;
    writeln!(out)?;

    // ---- accuracy grid at the default budget ------------------------
    writeln!(
        out,
        "accuracy at {} bytes (micro-averaged over {} intervals)",
        opts.budget, n_intervals
    )?;
    writeln!(
        out,
        "  {:<8} {:<6} {:<12} {:>7} {:>10} {:>9}",
        "scheme", "gamma", "backend", "recall", "precision", "byte-cov"
    )?;
    let mut min_recall = f64::INFINITY;
    let mut min_precision = f64::INFINITY;
    let mut min_coverage = f64::INFINITY;
    for (scheme_label, scheme) in scheme_grid() {
        for gamma in GAMMAS {
            let oracle = classify(&matrix, ConstantLoadDetector::new(PAPER_BETA), gamma, scheme);
            // Pin the exact backend against the oracle on every combo —
            // this is the harness's ground-truth check, not a benchmark
            // row.
            let (exact, report) = run_pipeline(
                &frozen,
                &metas,
                interval_secs,
                start_unix,
                n_intervals,
                gamma,
                scheme,
                StateBackendConfig::Exact,
            );
            assert_eq!(
                report.keys.len(),
                matrix.n_keys(),
                "streaming and batch key spaces diverged"
            );
            assert_exact_pinned(&oracle, &exact, &format!("{scheme_label}/γ={gamma}"));
            for backend in SKETCHES {
                let state = StateBackendConfig::parse(backend, opts.budget)
                    .expect("known backend name");
                let (outcomes, _) = run_pipeline(
                    &frozen,
                    &metas,
                    interval_secs,
                    start_unix,
                    n_intervals,
                    gamma,
                    scheme,
                    state,
                );
                let acc = score(&oracle, &matrix, &outcomes);
                min_recall = min_recall.min(acc.recall());
                min_precision = min_precision.min(acc.precision());
                min_coverage = min_coverage.min(acc.byte_coverage());
                writeln!(
                    out,
                    "  {:<8} {:<6} {:<12} {:>7.3} {:>10.3} {:>9.3}",
                    scheme_label,
                    gamma,
                    backend,
                    acc.recall(),
                    acc.precision(),
                    acc.byte_coverage()
                )?;
            }
        }
    }
    writeln!(out)?;
    writeln!(
        out,
        "exact backend: bit-identical to the batch oracle on all {} scheme/γ combinations",
        scheme_grid().len() * GAMMAS.len()
    )?;
    writeln!(out)?;

    // ---- memory-vs-accuracy frontier --------------------------------
    let paper_scheme = Scheme::LatentHeat {
        window: PAPER_LATENT_WINDOW,
    };
    let oracle = classify(
        &matrix,
        ConstantLoadDetector::new(PAPER_BETA),
        PAPER_GAMMA,
        paper_scheme,
    );
    writeln!(
        out,
        "memory-vs-accuracy frontier (latent heat, γ = {PAPER_GAMMA}; recall per budget)"
    )?;
    writeln!(
        out,
        "  {:<10} {:>12} {:>12} {:>12}",
        "budget", SKETCHES[0], SKETCHES[1], SKETCHES[2]
    )?;
    // recalls[backend][budget]
    let mut recalls = vec![Vec::new(); SKETCHES.len()];
    for &budget in &FRONTIER_BUDGETS {
        let mut row = format!("  {budget:<10}");
        for (b, backend) in SKETCHES.iter().enumerate() {
            let state = StateBackendConfig::parse(backend, budget).expect("known backend name");
            let (outcomes, _) = run_pipeline(
                &frozen,
                &metas,
                interval_secs,
                start_unix,
                n_intervals,
                PAPER_GAMMA,
                paper_scheme,
                state,
            );
            let recall = score(&oracle, &matrix, &outcomes).recall();
            recalls[b].push(recall);
            row.push_str(&format!(" {recall:>12.3}"));
        }
        writeln!(out, "{row}")?;
    }
    let mut frontier_line = format!("  min budget for recall ≥ {RECALL_TARGET}:");
    for (b, backend) in SKETCHES.iter().enumerate() {
        let hit = FRONTIER_BUDGETS
            .iter()
            .zip(&recalls[b])
            .find(|&(_, &r)| r >= RECALL_TARGET);
        match hit {
            Some((&budget, _)) => frontier_line.push_str(&format!(" {backend} {budget}")),
            None => frontier_line.push_str(&format!(
                " {backend} >{}",
                FRONTIER_BUDGETS[FRONTIER_BUDGETS.len() - 1]
            )),
        }
    }
    writeln!(out, "{frontier_line}")?;
    out.flush()?;

    // Machine-readable summary for the CI gate (stderr keeps stdout
    // byte-stable for determinism diffs).
    eprintln!(
        "{{\"eleph_sketch\":{{\"seed\":{},\"scale\":{},\"intervals\":{},\"budget\":{},\
         \"packets\":{},\"distinct_keys\":{},\"combos\":{},\"exact_bit_identical\":true,\
         \"min_recall\":{:.6},\"min_precision\":{:.6},\"min_byte_coverage\":{:.6}}}}}",
        opts.seed,
        opts.scale,
        opts.intervals,
        opts.budget,
        metas.len(),
        matrix.n_keys(),
        scheme_grid().len() * GAMMAS.len() * SKETCHES.len(),
        min_recall,
        min_precision,
        min_coverage,
    );
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lab_scenario_is_small_and_deterministic() {
        let opts = SketchOpts::default();
        let a = lab_scenario(opts);
        let b = lab_scenario(opts);
        assert_eq!(a.workload.interval_secs, 60);
        assert_eq!(a.workload.n_intervals, 18);
        assert_eq!(a.workload.link.capacity_bps, 10_000_000.0);
        assert_eq!(a.workload.seed, b.workload.seed);
        let table = eleph_bgp::synth::generate(&a.table);
        let ta = RateTrace::generate(&a.workload, &table);
        let tb = RateTrace::generate(&b.workload, &table);
        let ma = collect_metas(&ta);
        let mb = collect_metas(&tb);
        assert_eq!(ma.len(), mb.len());
        assert!(!ma.is_empty(), "the lab workload must synthesize traffic");
    }

    #[test]
    fn opts_parse_round_trip() {
        let args: Vec<String> = ["--seed", "7", "--scale", "0.1", "--intervals", "4", "--budget", "65536"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        let o = SketchOpts::parse(&args);
        assert_eq!(o.seed, 7);
        assert_eq!(o.scale, 0.1);
        assert_eq!(o.intervals, 4);
        assert_eq!(o.budget, 65_536);
    }
}
