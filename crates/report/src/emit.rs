//! Output: ASCII tables on stdout, CSV files under `target/experiments/`.

use std::fs;
use std::io::Write;
use std::path::PathBuf;

/// A paper-vs-measured comparison table.
#[derive(Debug, Clone, Default)]
pub struct Comparison {
    rows: Vec<(String, String, String)>,
}

impl Comparison {
    /// Empty table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add a row: metric, what the paper reports, what we measured.
    pub fn row(
        &mut self,
        metric: impl Into<String>,
        paper: impl Into<String>,
        measured: impl Into<String>,
    ) -> &mut Self {
        self.rows.push((metric.into(), paper.into(), measured.into()));
        self
    }

    /// Render as an aligned ASCII table.
    pub fn render(&self, title: &str) -> String {
        let headers = ("metric", "paper", "measured");
        let w0 = self
            .rows
            .iter()
            .map(|r| r.0.len())
            .chain([headers.0.len()])
            .max()
            .unwrap_or(6);
        let w1 = self
            .rows
            .iter()
            .map(|r| r.1.len())
            .chain([headers.1.len()])
            .max()
            .unwrap_or(5);
        let w2 = self
            .rows
            .iter()
            .map(|r| r.2.len())
            .chain([headers.2.len()])
            .max()
            .unwrap_or(8);
        let sep = format!("+-{}-+-{}-+-{}-+", "-".repeat(w0), "-".repeat(w1), "-".repeat(w2));
        let mut out = String::new();
        out.push_str(&format!("## {title}\n"));
        out.push_str(&sep);
        out.push('\n');
        out.push_str(&format!(
            "| {:<w0$} | {:<w1$} | {:<w2$} |\n",
            headers.0, headers.1, headers.2
        ));
        out.push_str(&sep);
        out.push('\n');
        for (m, p, v) in &self.rows {
            out.push_str(&format!("| {m:<w0$} | {p:<w1$} | {v:<w2$} |\n"));
        }
        out.push_str(&sep);
        out.push('\n');
        out
    }

    /// The raw rows (metric, paper, measured).
    pub fn rows(&self) -> &[(String, String, String)] {
        &self.rows
    }
}

/// Directory where experiment CSVs are written.
pub fn experiments_dir() -> PathBuf {
    let base = std::env::var("CARGO_TARGET_DIR").unwrap_or_else(|_| "target".to_string());
    PathBuf::from(base).join("experiments")
}

/// Write a CSV file under `target/experiments/`; returns its path.
/// Columns are written exactly as given; every row must have the same
/// arity as the header.
pub fn write_csv(
    name: &str,
    header: &[&str],
    rows: &[Vec<String>],
) -> std::io::Result<PathBuf> {
    let dir = experiments_dir();
    fs::create_dir_all(&dir)?;
    let path = dir.join(format!("{name}.csv"));
    let mut f = fs::File::create(&path)?;
    writeln!(f, "{}", header.join(","))?;
    for row in rows {
        debug_assert_eq!(row.len(), header.len(), "row arity mismatch in {name}");
        writeln!(f, "{}", row.join(","))?;
    }
    Ok(path)
}

/// Format a float compactly for tables (3 significant-ish digits).
pub fn fmt(x: f64) -> String {
    if x == 0.0 {
        "0".to_string()
    } else if x.abs() >= 100.0 {
        format!("{x:.0}")
    } else if x.abs() >= 1.0 {
        format!("{x:.2}")
    } else {
        format!("{x:.3}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn comparison_renders_aligned() {
        let mut c = Comparison::new();
        c.row("avg elephants (west)", "600", "587.3");
        c.row("load fraction", "~0.6", "0.62");
        let s = c.render("T2");
        assert!(s.contains("## T2"));
        assert!(s.contains("| metric"));
        assert!(s.contains("600"));
        // All table lines have equal width.
        let widths: std::collections::HashSet<usize> =
            s.lines().skip(1).map(str::len).collect();
        assert_eq!(widths.len(), 1, "{s}");
    }

    #[test]
    fn csv_written_and_readable() {
        let path = write_csv(
            "unit-test-emit",
            &["a", "b"],
            &[vec!["1".into(), "2".into()], vec!["3".into(), "4".into()]],
        )
        .unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        assert_eq!(text, "a,b\n1,2\n3,4\n");
    }

    #[test]
    fn fmt_ranges() {
        assert_eq!(fmt(0.0), "0");
        assert_eq!(fmt(0.612), "0.612");
        assert_eq!(fmt(12.3456), "12.35");
        assert_eq!(fmt(612.4), "612");
        assert_eq!(fmt(-0.5), "-0.500");
    }
}
