//! One function per figure/table of the paper (see DESIGN.md §4).

use std::path::PathBuf;

use eleph_core::holding::{self, HoldingStats};
use eleph_core::prefix_analysis::prefix_report;
use eleph_core::ClassificationResult;
use eleph_stats::Summary;

use crate::emit::{fmt, write_csv, Comparison};
use crate::{run, run_many, DetectorKind, Scenario, ScenarioData, SchemeSpec};

/// The output of one experiment: a paper-vs-measured table plus the CSVs
/// that regenerate the figure.
#[derive(Debug)]
pub struct ExperimentOutput {
    /// Experiment id (fig1a, table2, ...).
    pub id: String,
    /// Human title.
    pub title: String,
    /// Paper-vs-measured comparison.
    pub comparison: Comparison,
    /// CSV files written.
    pub csv_paths: Vec<PathBuf>,
}

impl ExperimentOutput {
    /// Render for stdout.
    pub fn render(&self) -> String {
        let mut s = self.comparison.render(&format!("{} — {}", self.id, self.title));
        for p in &self.csv_paths {
            s.push_str(&format!("csv: {}\n", p.display()));
        }
        s
    }
}

/// The four classification runs (2 links × 2 detectors, latent heat)
/// shared by the three panels of Figure 1.
pub struct Fig1Data {
    /// West-coast scenario + built data.
    pub west: (Scenario, ScenarioData),
    /// East-coast scenario + built data.
    pub east: (Scenario, ScenarioData),
    /// Classifications: [west-CL, west-aest, east-CL, east-aest].
    pub runs: [ClassificationResult; 4],
}

/// Column labels matching `Fig1Data::runs` order.
pub const FIG1_SERIES: [&str; 4] = [
    "constant load (west coast)",
    "aest (west coast)",
    "constant load (east coast)",
    "aest (east coast)",
];

/// Build the Figure 1 dataset at the given scale.
pub fn fig1_data(scale: f64, seed: u64) -> Fig1Data {
    let west = Scenario::west(seed).scaled(scale);
    let east = Scenario::east(seed).scaled(scale);
    let west_data = west.build();
    let east_data = east.build();
    let jobs = [
        (&west_data.matrix, SchemeSpec::paper(DetectorKind::ConstantLoad)),
        (&west_data.matrix, SchemeSpec::paper(DetectorKind::Aest)),
        (&east_data.matrix, SchemeSpec::paper(DetectorKind::ConstantLoad)),
        (&east_data.matrix, SchemeSpec::paper(DetectorKind::Aest)),
    ];
    let mut results = run_many(&jobs).into_iter();
    let runs = [
        results.next().expect("4 results"),
        results.next().expect("4 results"),
        results.next().expect("4 results"),
        results.next().expect("4 results"),
    ];
    Fig1Data {
        west: (west, west_data),
        east: (east, east_data),
        runs,
    }
}

/// Figure 1(a): number of elephants per interval, four series.
pub fn fig1a(data: &Fig1Data) -> std::io::Result<ExperimentOutput> {
    let n = data.runs[0].n_intervals();
    let labels: Vec<String> = (0..n)
        .map(|i| data.west.0.workload.interval_label(i))
        .collect();
    let rows: Vec<Vec<String>> = (0..n)
        .map(|i| {
            let mut row = vec![labels[i].clone()];
            row.extend(data.runs.iter().map(|r| r.count(i).to_string()));
            row
        })
        .collect();
    let csv = write_csv(
        "fig1a_elephant_counts",
        &["local_time", "west_cl", "west_aest", "east_cl", "east_aest"],
        &rows,
    )?;

    // Paper claims: avg ≈ 600 (west), ≈ 500 (east); west series bursts
    // during working hours while east is smooth.
    let mut c = Comparison::new();
    let west_avg = (data.runs[0].mean_count() + data.runs[1].mean_count()) / 2.0;
    let east_avg = (data.runs[2].mean_count() + data.runs[3].mean_count()) / 2.0;
    c.row("avg elephants, west", "~600", fmt(west_avg));
    c.row("avg elephants, east", "~500", fmt(east_avg));
    c.row(
        "west burst (peak/trough of count)",
        "pronounced (>1.5x)",
        fmt(count_peak_to_trough(&data.runs[0])),
    );
    c.row(
        "east burst (peak/trough of count)",
        "smooth (< west)",
        fmt(count_peak_to_trough(&data.runs[2])),
    );
    Ok(ExperimentOutput {
        id: "fig1a".to_string(),
        title: "Number of elephants per interval".to_string(),
        comparison: c,
        csv_paths: vec![csv],
    })
}

/// Figure 1(b): fraction of total traffic apportioned to elephants.
pub fn fig1b(data: &Fig1Data) -> std::io::Result<ExperimentOutput> {
    let n = data.runs[0].n_intervals();
    let rows: Vec<Vec<String>> = (0..n)
        .map(|i| {
            let mut row = vec![data.west.0.workload.interval_label(i)];
            row.extend(data.runs.iter().map(|r| format!("{:.4}", r.fraction(i))));
            row
        })
        .collect();
    let csv = write_csv(
        "fig1b_elephant_fraction",
        &["local_time", "west_cl", "west_aest", "east_cl", "east_aest"],
        &rows,
    )?;

    let mut c = Comparison::new();
    for (label, r) in FIG1_SERIES.iter().zip(&data.runs) {
        c.row(
            format!("mean fraction, {label}"),
            "~0.6 (below the 0.8 target)",
            fmt(r.mean_fraction()),
        );
    }
    // Fluctuation: the paper notes the fraction fluctuates less than the
    // counts.
    let frac_cv = series_cv(&(0..n).map(|i| data.runs[0].fraction(i)).collect::<Vec<_>>());
    let count_cv = series_cv(
        &(0..n)
            .map(|i| data.runs[0].count(i) as f64)
            .collect::<Vec<_>>(),
    );
    c.row(
        "fraction CV vs count CV (west CL)",
        "fraction steadier",
        format!("{} vs {}", fmt(frac_cv), fmt(count_cv)),
    );
    Ok(ExperimentOutput {
        id: "fig1b".to_string(),
        title: "Fraction of traffic apportioned to elephants".to_string(),
        comparison: c,
        csv_paths: vec![csv],
    })
}

/// Figure 1(c): histogram of average holding times in the elephant state
/// during the busy period (log counts).
pub fn fig1c(data: &Fig1Data) -> std::io::Result<ExperimentOutput> {
    let max_slots = 60usize;
    let mut hists: Vec<Vec<u64>> = Vec::new();
    let mut stats: Vec<HoldingStats> = Vec::new();
    for (idx, result) in data.runs.iter().enumerate() {
        let (scenario, scen_data) = if idx < 2 { &data.west } else { &data.east };
        let window = scenario.busy_window(&scen_data.matrix);
        let h = holding::analyze(result, window, scenario.workload.interval_secs);
        hists.push(h.avg_holding_histogram(max_slots));
        stats.push(h);
    }
    let rows: Vec<Vec<String>> = (1..=max_slots)
        .map(|slot| {
            let mut row = vec![slot.to_string()];
            row.extend(hists.iter().map(|h| h[slot].to_string()));
            row
        })
        .collect();
    let csv = write_csv(
        "fig1c_holding_histogram",
        &["avg_holding_slots", "west_cl", "west_aest", "east_cl", "east_aest"],
        &rows,
    )?;

    let mut c = Comparison::new();
    for (label, h) in FIG1_SERIES.iter().zip(&stats) {
        c.row(
            format!("single-interval elephants, {label}"),
            "~50",
            h.single_interval_flows.to_string(),
        );
    }
    let mean_minutes =
        stats.iter().map(HoldingStats::mean_avg_minutes).sum::<f64>() / stats.len() as f64;
    c.row(
        "avg holding time (all series)",
        "~2 hours",
        format!("{} min", fmt(mean_minutes)),
    );
    Ok(ExperimentOutput {
        id: "fig1c".to_string(),
        title: "Average holding times in the elephant state".to_string(),
        comparison: c,
        csv_paths: vec![csv],
    })
}

/// T1 (§II in-text): single-feature classification is volatile.
///
/// Reuses the scenarios already built for Figure 1 instead of
/// regenerating both links, and classifies all four single-feature runs
/// through one [`run_many`] fan-out.
pub fn table1(data: &Fig1Data) -> std::io::Result<ExperimentOutput> {
    let mut c = Comparison::new();
    let mut rows = Vec::new();
    // One entry per run: the scenario it classifies and its detector.
    let setups: [(&(Scenario, ScenarioData), DetectorKind); 4] = [
        (&data.west, DetectorKind::ConstantLoad),
        (&data.west, DetectorKind::Aest),
        (&data.east, DetectorKind::ConstantLoad),
        (&data.east, DetectorKind::Aest),
    ];
    let jobs: Vec<(&eleph_flow::BandwidthMatrix, SchemeSpec)> = setups
        .iter()
        .map(|&((_, scen_data), detector)| (&scen_data.matrix, SchemeSpec::single(detector)))
        .collect();
    let results = run_many(&jobs);
    for (&((scenario, scen_data), detector), result) in setups.iter().zip(&results) {
        let window = scenario.busy_window(&scen_data.matrix);
        let h = holding::analyze(result, window, scenario.workload.interval_secs);
        let label = format!("{} / {}", scenario.name, detector.label());
        c.row(
            format!("avg holding time, {label}"),
            "20-40 min",
            format!("{} min", fmt(h.mean_avg_minutes())),
        );
        c.row(
            format!("single-interval elephants, {label}"),
            "> 1000",
            h.single_interval_flows.to_string(),
        );
        rows.push(vec![
            scenario.name.clone(),
            detector.label().to_string(),
            fmt(h.mean_avg_minutes()),
            h.single_interval_flows.to_string(),
            fmt(result.mean_count()),
            fmt(result.mean_fraction()),
        ]);
    }
    let csv = write_csv(
        "table1_single_feature",
        &["link", "detector", "avg_holding_min", "single_interval", "mean_count", "mean_fraction"],
        &rows,
    )?;
    Ok(ExperimentOutput {
        id: "table1".to_string(),
        title: "Single-feature volatility (§II)".to_string(),
        comparison: c,
        csv_paths: vec![csv],
    })
}

/// T2 (§III in-text): the latent-heat scheme's improvements.
pub fn table2(data: &Fig1Data) -> std::io::Result<ExperimentOutput> {
    let mut c = Comparison::new();
    let mut rows = Vec::new();
    for (idx, result) in data.runs.iter().enumerate() {
        let (scenario, scen_data) = if idx < 2 { &data.west } else { &data.east };
        let window = scenario.busy_window(&scen_data.matrix);
        let h = holding::analyze(result, window, scenario.workload.interval_secs);
        let label = FIG1_SERIES[idx];
        c.row(
            format!("avg holding, {label}"),
            "~2 h",
            format!("{} min", fmt(h.mean_avg_minutes())),
        );
        c.row(
            format!("single-interval, {label}"),
            "~50",
            h.single_interval_flows.to_string(),
        );
        c.row(
            format!("mean elephants, {label}"),
            if idx < 2 { "~600" } else { "~500" },
            fmt(result.mean_count()),
        );
        c.row(
            format!("mean load fraction, {label}"),
            "~0.6",
            fmt(result.mean_fraction()),
        );
        rows.push(vec![
            label.to_string(),
            fmt(h.mean_avg_minutes()),
            h.single_interval_flows.to_string(),
            fmt(result.mean_count()),
            fmt(result.mean_fraction()),
        ]);
    }
    let csv = write_csv(
        "table2_latent_heat",
        &["series", "avg_holding_min", "single_interval", "mean_count", "mean_fraction"],
        &rows,
    )?;
    Ok(ExperimentOutput {
        id: "table2".to_string(),
        title: "Two-feature (latent heat) improvements (§III)".to_string(),
        comparison: c,
        csv_paths: vec![csv],
    })
}

/// T3 (§III in-text): prefix-length characteristics of elephants.
pub fn table3(data: &Fig1Data) -> std::io::Result<ExperimentOutput> {
    let (_scenario, scen_data) = &data.west;
    let result = &data.runs[0]; // west, constant load
    let window = 0..result.n_intervals();
    let report = prefix_report(&scen_data.matrix, result, Some(&scen_data.table), window);

    let mut c = Comparison::new();
    // The paper states the bulk range (/12-/26) and separately that three
    // /8s made it into the elephant class; report the bulk range over
    // lengths >= /9 and the /8s on their own row.
    let bulk: Vec<u8> = (9..33)
        .filter(|&l| report.elephant_by_length[l as usize] > 0)
        .collect();
    let range = match (bulk.first(), bulk.last()) {
        (Some(a), Some(b)) => format!("/{a}-/{b}"),
        _ => "none".to_string(),
    };
    c.row("elephant prefix lengths (bulk)", "/12-/26", range);
    c.row(
        "active /8 networks",
        "~100",
        report.active_slash8.to_string(),
    );
    c.row(
        "elephant /8 networks",
        "3",
        report.elephant_slash8.to_string(),
    );
    if let Some([t1, t2, stub]) = report.elephant_peer_classes {
        c.row(
            "elephant peer classes (T1/T2/stub)",
            "mostly other Tier-1",
            format!("{t1}/{t2}/{stub}"),
        );
    }
    let rows: Vec<Vec<String>> = (0..33)
        .filter(|&l| report.active_by_length[l] > 0 || report.elephant_by_length[l] > 0)
        .map(|l| {
            vec![
                format!("/{l}"),
                report.active_by_length[l].to_string(),
                report.elephant_by_length[l].to_string(),
            ]
        })
        .collect();
    let csv = write_csv(
        "table3_prefix_lengths",
        &["length", "active", "elephants"],
        &rows,
    )?;
    Ok(ExperimentOutput {
        id: "table3".to_string(),
        title: "Prefix-length analysis (§III)".to_string(),
        comparison: c,
        csv_paths: vec![csv],
    })
}

/// T4 (§II in-text): robustness to the measurement interval T.
///
/// One traffic process, three discretisations — the paper's own
/// protocol. The scenario is built once at its native T = 5 min; the
/// 1-minute matrix is derived by [`eleph_flow::BandwidthMatrix::refine`]
/// (byte-conserving sub-interval jitter) and the 30-minute matrix by
/// [`eleph_flow::BandwidthMatrix::coarsen`] (exact aggregation).
/// Earlier revisions regenerated a *different random workload per T*,
/// so the reported spread mixed discretisation sensitivity with
/// realization noise — and paid three scenario builds. The three
/// classify+analyze pipelines still fan out across scoped threads.
pub fn table4(scale: f64, seed: u64) -> std::io::Result<ExperimentOutput> {
    let scenario = Scenario::west(seed).scaled(scale);
    let data = scenario.build();
    let native_t = scenario.workload.interval_secs;
    // (factor, is_refine) per point: 60 s, native 300 s, 1800 s.
    let points: [(u64, &str, usize, bool); 3] = [
        (60, "1 min", (native_t / 60) as usize, true),
        (native_t, "5 min", 1, false),
        (1800, "30 min", (1800 / native_t) as usize, false),
    ];
    let outcomes: Vec<(eleph_core::ClassificationResult, HoldingStats)> =
        std::thread::scope(|s| {
            let handles: Vec<_> = points
                .iter()
                .map(|&(t_secs, _, factor, is_refine)| {
                    let matrix = &data.matrix;
                    s.spawn(move || {
                        let view = if is_refine {
                            matrix.refine(factor, seed)
                        } else if factor > 1 {
                            matrix.coarsen(factor)
                        } else {
                            matrix.clone()
                        };
                        let result = run(&view, SchemeSpec::paper(DetectorKind::ConstantLoad));
                        // Keep the busy period at 5 wall-clock hours.
                        let busy_slots = (5 * 3600 / t_secs) as usize;
                        let window = eleph_flow::busiest_window(
                            view.totals(),
                            busy_slots.min(result.n_intervals()),
                        )
                        .expect("window fits");
                        let h = holding::analyze(&result, window, t_secs);
                        (result, h)
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("T-point pipeline does not panic"))
                .collect()
        });

    let mut c = Comparison::new();
    let mut rows = Vec::new();
    let mut fractions = Vec::new();
    for (&(_, label, _, _), (result, h)) in points.iter().zip(&outcomes) {
        c.row(
            format!("mean load fraction, T = {label}"),
            "similar across T",
            fmt(result.mean_fraction()),
        );
        fractions.push(result.mean_fraction());
        rows.push(vec![
            label.to_string(),
            fmt(result.mean_count()),
            fmt(result.mean_fraction()),
            fmt(h.mean_avg_minutes()),
            h.single_interval_flows.to_string(),
        ]);
    }
    let spread = fractions
        .iter()
        .cloned()
        .fold(f64::NEG_INFINITY, f64::max)
        - fractions.iter().cloned().fold(f64::INFINITY, f64::min);
    c.row("fraction spread across T", "small", fmt(spread));
    let csv = write_csv(
        "table4_interval_sweep",
        &["T", "mean_count", "mean_fraction", "avg_holding_min", "single_interval"],
        &rows,
    )?;
    Ok(ExperimentOutput {
        id: "table4".to_string(),
        title: "Sensitivity to measurement interval T (§II)".to_string(),
        comparison: c,
        csv_paths: vec![csv],
    })
}

/// Build the west-coast scenario once for the sweep experiments — the
/// four ablations (and any caller-driven sweep) share one build instead
/// of regenerating the table, trace and matrix per experiment.
pub fn west_lab(scale: f64, seed: u64) -> (Scenario, ScenarioData) {
    let scenario = Scenario::west(seed).scaled(scale);
    let data = scenario.build();
    (scenario, data)
}

/// A1 (ablation): how γ affects threshold smoothness and churn.
///
/// All four γ points run as one [`run_many`] group: the constant-load
/// detection per interval happens once, shared across the sweep.
pub fn ablation_gamma(
    scenario: &Scenario,
    data: &ScenarioData,
) -> std::io::Result<ExperimentOutput> {
    let gammas = [0.0, 0.5, 0.9, 0.99];
    let jobs: Vec<(&eleph_flow::BandwidthMatrix, SchemeSpec)> = gammas
        .iter()
        .map(|&gamma| {
            let spec = SchemeSpec {
                detector: DetectorKind::ConstantLoad,
                gamma,
                scheme: eleph_core::Scheme::LatentHeat {
                    window: eleph_core::PAPER_LATENT_WINDOW,
                },
            };
            (&data.matrix, spec)
        })
        .collect();
    let results = run_many(&jobs);
    let _ = scenario; // busy window not needed; kept for signature symmetry
    let mut c = Comparison::new();
    let mut rows = Vec::new();
    for (&gamma, result) in gammas.iter().zip(&results) {
        let cv = series_cv(&result.thresholds);
        let churn: f64 = holding::churn(result).iter().map(|&x| x as f64).sum::<f64>()
            / result.n_intervals() as f64;
        c.row(
            format!("threshold CV, gamma = {gamma}"),
            if gamma == 0.9 { "paper's choice: smooth" } else { "-" },
            fmt(cv),
        );
        rows.push(vec![
            gamma.to_string(),
            fmt(cv),
            fmt(churn),
            fmt(result.mean_count()),
            fmt(result.mean_fraction()),
        ]);
    }
    let csv = write_csv(
        "ablation_gamma",
        &["gamma", "threshold_cv", "mean_churn", "mean_count", "mean_fraction"],
        &rows,
    )?;
    Ok(ExperimentOutput {
        id: "ablation_gamma".to_string(),
        title: "Threshold smoothing factor sweep".to_string(),
        comparison: c,
        csv_paths: vec![csv],
    })
}

/// A2 (ablation): latent-heat window sweep, one shared-detection pass.
pub fn ablation_window(
    scenario: &Scenario,
    data: &ScenarioData,
) -> std::io::Result<ExperimentOutput> {
    let windows = [1usize, 6, 12, 24];
    let window_range = scenario.busy_window(&data.matrix);
    let jobs: Vec<(&eleph_flow::BandwidthMatrix, SchemeSpec)> = windows
        .iter()
        .map(|&w| {
            let spec = SchemeSpec {
                detector: DetectorKind::ConstantLoad,
                gamma: eleph_core::PAPER_GAMMA,
                scheme: eleph_core::Scheme::LatentHeat { window: w },
            };
            (&data.matrix, spec)
        })
        .collect();
    let results = run_many(&jobs);
    let mut c = Comparison::new();
    let mut rows = Vec::new();
    for (&w, result) in windows.iter().zip(&results) {
        let h = holding::analyze(result, window_range.clone(), scenario.workload.interval_secs);
        c.row(
            format!("avg holding, w = {w}"),
            if w == 12 { "paper's choice (~2 h)" } else { "-" },
            format!("{} min", fmt(h.mean_avg_minutes())),
        );
        rows.push(vec![
            w.to_string(),
            fmt(h.mean_avg_minutes()),
            h.single_interval_flows.to_string(),
            fmt(result.mean_count()),
            fmt(result.mean_fraction()),
        ]);
    }
    let csv = write_csv(
        "ablation_window",
        &["window", "avg_holding_min", "single_interval", "mean_count", "mean_fraction"],
        &rows,
    )?;
    Ok(ExperimentOutput {
        id: "ablation_window".to_string(),
        title: "Latent-heat window sweep".to_string(),
        comparison: c,
        csv_paths: vec![csv],
    })
}

/// A3 (ablation): constant-load β sweep.
///
/// The detector itself changes per point (different β), so there is no
/// detection work to share — the four classifications run concurrently
/// on scoped threads over the shared scenario build instead.
pub fn ablation_beta(
    _scenario: &Scenario,
    data: &ScenarioData,
) -> std::io::Result<ExperimentOutput> {
    let betas = [0.5, 0.7, 0.8, 0.9];
    let results: Vec<eleph_core::ClassificationResult> = std::thread::scope(|s| {
        let handles: Vec<_> = betas
            .iter()
            .map(|&beta| {
                let matrix = &data.matrix;
                s.spawn(move || {
                    eleph_core::classify(
                        matrix,
                        eleph_core::ConstantLoadDetector::new(beta),
                        eleph_core::PAPER_GAMMA,
                        eleph_core::Scheme::LatentHeat {
                            window: eleph_core::PAPER_LATENT_WINDOW,
                        },
                    )
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("classification does not panic"))
            .collect()
    });
    let mut c = Comparison::new();
    let mut rows = Vec::new();
    for (&beta, result) in betas.iter().zip(&results) {
        c.row(
            format!("mean fraction, beta = {beta}"),
            if beta == 0.8 { "~0.6 after latent heat" } else { "-" },
            fmt(result.mean_fraction()),
        );
        rows.push(vec![
            beta.to_string(),
            fmt(result.mean_count()),
            fmt(result.mean_fraction()),
        ]);
    }
    let csv = write_csv(
        "ablation_beta",
        &["beta", "mean_count", "mean_fraction"],
        &rows,
    )?;
    Ok(ExperimentOutput {
        id: "ablation_beta".to_string(),
        title: "Constant-load target sweep".to_string(),
        comparison: c,
        csv_paths: vec![csv],
    })
}

/// A4 (ablation, ours): latent heat vs high/low-watermark hysteresis.
///
/// The paper chose latent heat over simpler persistence mechanisms; this
/// quantifies the trade-off against the classic two-threshold scheme on
/// the same workload.
pub fn ablation_scheme(
    scenario: &Scenario,
    data: &ScenarioData,
) -> std::io::Result<ExperimentOutput> {
    use eleph_core::Scheme;
    let window_range = scenario.busy_window(&data.matrix);
    let mut c = Comparison::new();
    let mut rows = Vec::new();
    let schemes: [(&str, Scheme); 4] = [
        ("single", Scheme::SingleFeature),
        ("latent-heat w=12", Scheme::LatentHeat { window: 12 }),
        ("hysteresis 1.0/0.5", Scheme::Hysteresis { enter: 1.0, exit: 0.5 }),
        ("hysteresis 1.5/0.33", Scheme::Hysteresis { enter: 1.5, exit: 0.33 }),
    ];
    // One shared-detection pass over all four persistence mechanisms:
    // they differ only in scheme, so the constant-load threshold per
    // interval is computed once.
    let configs: Vec<eleph_core::ClassifyConfig> = schemes
        .iter()
        .map(|&(_, scheme)| eleph_core::ClassifyConfig {
            gamma: eleph_core::PAPER_GAMMA,
            scheme,
        })
        .collect();
    let results = eleph_core::classify_many(
        &data.matrix,
        &eleph_core::ConstantLoadDetector::new(eleph_core::PAPER_BETA),
        &configs,
    );
    for ((name, _), result) in schemes.iter().zip(&results) {
        let h = holding::analyze(result, window_range.clone(), scenario.workload.interval_secs);
        let churn: f64 = holding::churn(result).iter().map(|&x| x as f64).sum::<f64>()
            / result.n_intervals() as f64;
        c.row(
            format!("avg holding, {name}"),
            if name.starts_with("latent") { "paper's choice" } else { "-" },
            format!("{} min", fmt(h.mean_avg_minutes())),
        );
        rows.push(vec![
            name.to_string(),
            fmt(h.mean_avg_minutes()),
            h.single_interval_flows.to_string(),
            fmt(result.mean_count()),
            fmt(result.mean_fraction()),
            fmt(churn),
        ]);
    }
    let csv = write_csv(
        "ablation_scheme",
        &["scheme", "avg_holding_min", "single_interval", "mean_count", "mean_fraction", "mean_churn"],
        &rows,
    )?;
    Ok(ExperimentOutput {
        id: "ablation_scheme".to_string(),
        title: "Persistence mechanism comparison (latent heat vs hysteresis)".to_string(),
        comparison: c,
        csv_paths: vec![csv],
    })
}

/// Coefficient of variation of a series (σ/μ); 0 for a flat series.
fn series_cv(values: &[f64]) -> f64 {
    let finite: Vec<f64> = values.iter().copied().filter(|v| v.is_finite()).collect();
    let s = Summary::of(&finite);
    s.cv().unwrap_or(0.0)
}

/// Ratio of the busiest to the quietest smoothed elephant count.
fn count_peak_to_trough(result: &ClassificationResult) -> f64 {
    // Smooth with a 6-slot moving average to avoid division by a single
    // quiet interval.
    let counts: Vec<f64> = (0..result.n_intervals())
        .map(|n| result.count(n) as f64)
        .collect();
    let w = 6usize.min(counts.len().max(1));
    let smoothed: Vec<f64> = counts
        .windows(w)
        .map(|win| win.iter().sum::<f64>() / w as f64)
        .collect();
    let max = smoothed.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
    let min = smoothed.iter().cloned().fold(f64::INFINITY, f64::min);
    if min <= 0.0 {
        f64::INFINITY
    } else {
        max / min
    }
}

/// Parse `--scale` and `--seed` from the command line (defaults 1.0 / 42).
///
/// Thin wrapper over [`crate::cli::parse_common`], kept for callers of
/// the pre-`eleph` API.
pub fn cli_scale_seed() -> (f64, u64) {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let opts = crate::cli::parse_common(&args);
    (opts.scale, opts.seed)
}
