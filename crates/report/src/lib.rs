//! Experiment harness: regenerate every figure and table of the paper.
//!
//! Each binary in `src/bin/` reproduces one result — see DESIGN.md §4 for
//! the full experiment index. All of them share the machinery here:
//!
//! * [`Scenario`] — the paper's west-coast and east-coast OC-12 setups
//!   (synthetic BGP table + synthetic workload), with a
//!   [`Scenario::scaled`] knob so tests can run a miniature version;
//! * [`SchemeSpec`] — the classification configurations under study
//!   (aest vs 0.8-constant-load, single-feature vs latent heat);
//! * [`run`] — classify a scenario with a scheme;
//! * [`emit`] — ASCII tables for stdout and CSV files under
//!   `target/experiments/` for plotting.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cli;
pub mod emit;
pub mod experiments;
pub mod sketch;

use eleph_bgp::synth::SynthConfig;
use eleph_bgp::BgpTable;
use eleph_core::{
    classify, classify_many, AestDetector, ClassificationResult, ClassifyConfig,
    ConstantLoadDetector, Scheme, PAPER_BETA, PAPER_GAMMA, PAPER_LATENT_WINDOW,
};
use eleph_flow::BandwidthMatrix;
use eleph_trace::{RateTrace, WorkloadConfig};

/// A fully specified experimental setup: one link, one table, one
/// workload.
#[derive(Debug, Clone)]
pub struct Scenario {
    /// Scenario name used in file names and table headers.
    pub name: String,
    /// The synthetic routing table configuration.
    pub table: SynthConfig,
    /// The synthetic workload configuration.
    pub workload: WorkloadConfig,
    /// Length of the holding-time busy period, in intervals (paper: 5 h
    /// = 60 five-minute slots).
    pub busy_slots: usize,
}

impl Scenario {
    /// The paper's west-coast OC-12 link.
    pub fn west(seed: u64) -> Self {
        Scenario {
            name: "west".to_string(),
            table: SynthConfig::default(),
            workload: WorkloadConfig::paper_west(seed),
            busy_slots: 60,
        }
    }

    /// The paper's east-coast OC-12 link.
    pub fn east(seed: u64) -> Self {
        Scenario {
            name: "east".to_string(),
            table: SynthConfig::default(),
            workload: WorkloadConfig::paper_east(seed),
            busy_slots: 60,
        }
    }

    /// Shrink the scenario by `factor` (0 < factor ≤ 1): fewer flows and
    /// a smaller table, same temporal structure. Used by tests and quick
    /// runs; figures use factor 1.
    pub fn scaled(mut self, factor: f64) -> Self {
        assert!(factor > 0.0 && factor <= 1.0);
        self.workload.n_flows = ((self.workload.n_flows as f64 * factor) as usize).max(200);
        self.table.n_prefixes = (self.workload.n_flows * 3).max(2_000);
        self
    }

    /// Generate table, trace and matrix. Deterministic in the embedded
    /// seeds.
    pub fn build(&self) -> ScenarioData {
        let table = eleph_bgp::synth::generate(&self.table);
        let trace = RateTrace::generate(&self.workload, &table);
        let matrix = BandwidthMatrix::from_rate_trace(&trace);
        ScenarioData {
            table,
            trace,
            matrix,
        }
    }

    /// The busy-period window of a built matrix: the `busy_slots`
    /// consecutive intervals with the highest total traffic.
    pub fn busy_window(&self, matrix: &BandwidthMatrix) -> std::ops::Range<usize> {
        eleph_flow::busiest_window(matrix.totals(), self.busy_slots.min(matrix.n_intervals()))
            .expect("busy window fits the trace")
    }
}

/// The generated artefacts of a scenario.
#[derive(Debug)]
pub struct ScenarioData {
    /// The routing table.
    pub table: BgpTable,
    /// The rate-level trace.
    pub trace: RateTrace,
    /// The bandwidth matrix the classifiers consume.
    pub matrix: BandwidthMatrix,
}

/// Which threshold detector to use.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DetectorKind {
    /// Crovella–Taqqu tail-onset threshold.
    Aest,
    /// β-constant-load threshold with the paper's β = 0.8.
    ConstantLoad,
}

impl DetectorKind {
    /// Display name matching the paper's legends.
    pub fn label(&self) -> &'static str {
        match self {
            DetectorKind::Aest => "aest",
            DetectorKind::ConstantLoad => "constant load",
        }
    }
}

/// A complete classification configuration.
#[derive(Debug, Clone, Copy)]
pub struct SchemeSpec {
    /// Threshold rule.
    pub detector: DetectorKind,
    /// EWMA smoothing factor γ.
    pub gamma: f64,
    /// The classification scheme (single-feature, latent heat, or the
    /// hysteresis ablation baseline).
    pub scheme: Scheme,
}

impl SchemeSpec {
    /// The paper's headline configuration: latent heat over the given
    /// detector.
    pub fn paper(detector: DetectorKind) -> Self {
        SchemeSpec {
            detector,
            gamma: PAPER_GAMMA,
            scheme: Scheme::LatentHeat {
                window: PAPER_LATENT_WINDOW,
            },
        }
    }

    /// The §II single-feature configuration.
    pub fn single(detector: DetectorKind) -> Self {
        SchemeSpec {
            detector,
            gamma: PAPER_GAMMA,
            scheme: Scheme::SingleFeature,
        }
    }

    /// The detector-independent half, for [`eleph_core::classify_many`].
    pub fn config(&self) -> ClassifyConfig {
        ClassifyConfig {
            gamma: self.gamma,
            scheme: self.scheme,
        }
    }

    /// Label like "aest+LH12" for tables.
    pub fn label(&self) -> String {
        match self.scheme {
            Scheme::LatentHeat { window } => format!("{}+LH{}", self.detector.label(), window),
            Scheme::SingleFeature => format!("{} single", self.detector.label()),
            Scheme::Hysteresis { enter, exit } => {
                format!("{} hyst {enter}/{exit}", self.detector.label())
            }
        }
    }
}

/// Run a classification configuration over a matrix.
pub fn run(matrix: &BandwidthMatrix, spec: SchemeSpec) -> ClassificationResult {
    match spec.detector {
        DetectorKind::Aest => classify(matrix, AestDetector::new(), spec.gamma, spec.scheme),
        DetectorKind::ConstantLoad => classify(
            matrix,
            ConstantLoadDetector::new(PAPER_BETA),
            spec.gamma,
            spec.scheme,
        ),
    }
}

/// Run several configurations over (possibly different) matrices,
/// preserving input order.
///
/// Jobs are grouped by (matrix, detector): each group becomes one
/// [`eleph_core::classify_many`] call, so every configuration in the
/// group shares the per-interval threshold detection — for a sweep over
/// γ/window/scheme this is the dominant cost and is paid once. Groups
/// then fan out across scoped threads.
pub fn run_many(jobs: &[(&BandwidthMatrix, SchemeSpec)]) -> Vec<ClassificationResult> {
    // Group by matrix identity + detector kind, preserving first-seen
    // group order and job order within a group.
    let mut groups: Vec<((usize, DetectorKind), Vec<usize>)> = Vec::new();
    for (i, &(matrix, spec)) in jobs.iter().enumerate() {
        let key = (matrix as *const BandwidthMatrix as usize, spec.detector);
        match groups.iter_mut().find(|(k, _)| *k == key) {
            Some((_, indices)) => indices.push(i),
            None => groups.push((key, vec![i])),
        }
    }

    let mut out: Vec<Option<ClassificationResult>> = jobs.iter().map(|_| None).collect();
    std::thread::scope(|s| {
        let handles: Vec<_> = groups
            .into_iter()
            .map(|((_, detector), indices)| {
                s.spawn(move || {
                    let matrix = jobs[indices[0]].0;
                    let configs: Vec<ClassifyConfig> =
                        indices.iter().map(|&i| jobs[i].1.config()).collect();
                    let results = match detector {
                        DetectorKind::Aest => {
                            classify_many(matrix, &AestDetector::new(), &configs)
                        }
                        DetectorKind::ConstantLoad => {
                            classify_many(matrix, &ConstantLoadDetector::new(PAPER_BETA), &configs)
                        }
                    };
                    (indices, results)
                })
            })
            .collect();
        for handle in handles {
            let (indices, results) = handle.join().expect("classification does not panic");
            for (i, result) in indices.into_iter().zip(results) {
                out[i] = Some(result);
            }
        }
    });
    out.into_iter()
        .map(|r| r.expect("every job belongs to exactly one group"))
        .collect()
}
