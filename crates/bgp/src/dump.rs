//! Line-oriented text RIB dumps and route update streams.
//!
//! RIB dump format, one route per line, `|`-separated:
//!
//! ```text
//! # comment / header lines start with '#'
//! 10.0.0.0/8|192.0.2.1|1239 701 3356|IGP|TIER1
//! ```
//!
//! Update stream format ([`read_updates`]/[`write_updates`]), one
//! update per line prefixed by a unix-seconds timestamp and an action
//! tag; consecutive lines sharing a timestamp form one
//! [`UpdateBatch`]:
//!
//! ```text
//! # time|A|prefix|next_hop|as_path|origin|peer_class
//! # time|W|prefix
//! 120|A|10.0.0.0/8|192.0.2.1|1239 701|IGP|TIER1
//! 120|W|172.16.0.0/12
//! 300|A|10.0.0.0/8|192.0.2.9|7018|EGP|TIER2
//! ```
//!
//! This mirrors the flat text exports of route collectors (e.g. RouteViews
//! `show ip bgp` dumps and MRT `UPDATE` logs) closely enough to be
//! practical while staying trivially diffable in tests. All parse
//! errors are typed and carry the 1-based line number plus the
//! offending token.

use core::fmt;
use std::io::{BufRead, BufReader, Read, Write};
use std::net::Ipv4Addr;

use crate::{BgpTable, Origin, PeerClass, RouteEntry, RouteUpdate, UpdateBatch};

/// Errors from parsing a text RIB dump or update stream.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DumpError {
    /// Line did not have the expected number of fields.
    FieldCount {
        /// 1-based line number.
        line: usize,
        /// Fields the line's record kind requires.
        expected: usize,
        /// Fields found.
        got: usize,
    },
    /// A field failed to parse.
    BadField {
        /// 1-based line number.
        line: usize,
        /// Which field.
        field: &'static str,
        /// Offending content.
        content: String,
    },
    /// An update stream's timestamps went backwards.
    NonMonotonic {
        /// 1-based line number.
        line: usize,
        /// Timestamp of the preceding update.
        prev: u64,
        /// The out-of-order timestamp found.
        got: u64,
    },
    /// Underlying I/O failure.
    Io(String),
}

impl fmt::Display for DumpError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DumpError::FieldCount { line, expected, got } => {
                write!(f, "line {line}: expected {expected} fields, got {got}")
            }
            DumpError::BadField { line, field, content } => {
                write!(f, "line {line}: bad {field}: {content:?}")
            }
            DumpError::NonMonotonic { line, prev, got } => {
                write!(f, "line {line}: timestamp {got} goes backwards (previous {prev})")
            }
            DumpError::Io(msg) => write!(f, "I/O error: {msg}"),
        }
    }
}

impl std::error::Error for DumpError {}

impl From<std::io::Error> for DumpError {
    fn from(e: std::io::Error) -> Self {
        DumpError::Io(e.to_string())
    }
}

/// Serialise a table to the text format, sorted in RIB order.
pub fn write_dump<W: Write>(table: &BgpTable, mut out: W) -> Result<(), DumpError> {
    writeln!(out, "# backbone-elephants RIB dump: {} routes", table.len())?;
    writeln!(out, "# prefix|next_hop|as_path|origin|peer_class")?;
    for e in table.iter() {
        let path: Vec<String> = e.as_path.iter().map(u32::to_string).collect();
        writeln!(
            out,
            "{}|{}|{}|{}|{}",
            e.prefix,
            e.next_hop,
            path.join(" "),
            e.origin,
            e.peer_class
        )?;
    }
    Ok(())
}

/// Parse the five route fields (`prefix|next_hop|as_path|origin|
/// peer_class`) shared by RIB dump lines and announce lines.
fn parse_route_fields(line_no: usize, fields: &[&str]) -> Result<RouteEntry, DumpError> {
    debug_assert_eq!(fields.len(), 5);
    let prefix = fields[0].parse().map_err(|_| DumpError::BadField {
        line: line_no,
        field: "prefix",
        content: fields[0].to_string(),
    })?;
    let next_hop: Ipv4Addr = fields[1].parse().map_err(|_| DumpError::BadField {
        line: line_no,
        field: "next_hop",
        content: fields[1].to_string(),
    })?;
    let as_path = fields[2]
        .split_whitespace()
        .map(|t| {
            t.parse::<u32>().map_err(|_| DumpError::BadField {
                line: line_no,
                field: "as_path",
                content: t.to_string(),
            })
        })
        .collect::<Result<Vec<u32>, _>>()?;
    let origin: Origin = fields[3].parse().map_err(|_| DumpError::BadField {
        line: line_no,
        field: "origin",
        content: fields[3].to_string(),
    })?;
    let peer_class: PeerClass = fields[4].parse().map_err(|_| DumpError::BadField {
        line: line_no,
        field: "peer_class",
        content: fields[4].to_string(),
    })?;
    Ok(RouteEntry { prefix, next_hop, as_path, origin, peer_class })
}

/// Parse a table from the text format.
pub fn read_dump<R: Read>(input: R) -> Result<BgpTable, DumpError> {
    let reader = BufReader::new(input);
    let mut table = BgpTable::new();
    for (idx, line) in reader.lines().enumerate() {
        let line_no = idx + 1;
        let line = line?;
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with('#') {
            continue;
        }
        let fields: Vec<&str> = trimmed.split('|').collect();
        if fields.len() != 5 {
            return Err(DumpError::FieldCount {
                line: line_no,
                expected: 5,
                got: fields.len(),
            });
        }
        table.insert(parse_route_fields(line_no, &fields)?);
    }
    Ok(table)
}

/// Serialise timed update batches to the update-stream text format.
pub fn write_updates<W: Write>(batches: &[UpdateBatch], mut out: W) -> Result<(), DumpError> {
    let n: usize = batches.iter().map(|b| b.updates.len()).sum();
    writeln!(out, "# backbone-elephants update stream: {n} updates in {} batches", batches.len())?;
    writeln!(out, "# time|A|prefix|next_hop|as_path|origin|peer_class")?;
    writeln!(out, "# time|W|prefix")?;
    for batch in batches {
        for update in &batch.updates {
            match update {
                RouteUpdate::Announce(e) => {
                    let path: Vec<String> = e.as_path.iter().map(u32::to_string).collect();
                    writeln!(
                        out,
                        "{}|A|{}|{}|{}|{}|{}",
                        batch.at_unix,
                        e.prefix,
                        e.next_hop,
                        path.join(" "),
                        e.origin,
                        e.peer_class
                    )?;
                }
                RouteUpdate::Withdraw(p) => {
                    writeln!(out, "{}|W|{}", batch.at_unix, p)?;
                }
            }
        }
    }
    Ok(())
}

/// Parse a timed update stream. Consecutive updates sharing a
/// timestamp coalesce into one [`UpdateBatch`]; timestamps must be
/// non-decreasing ([`DumpError::NonMonotonic`] otherwise).
pub fn read_updates<R: Read>(input: R) -> Result<Vec<UpdateBatch>, DumpError> {
    let reader = BufReader::new(input);
    let mut batches: Vec<UpdateBatch> = Vec::new();
    for (idx, line) in reader.lines().enumerate() {
        let line_no = idx + 1;
        let line = line?;
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with('#') {
            continue;
        }
        let fields: Vec<&str> = trimmed.split('|').collect();
        if fields.len() < 3 {
            return Err(DumpError::FieldCount { line: line_no, expected: 3, got: fields.len() });
        }
        let at_unix: u64 = fields[0].parse().map_err(|_| DumpError::BadField {
            line: line_no,
            field: "timestamp",
            content: fields[0].to_string(),
        })?;
        if let Some(last) = batches.last() {
            if at_unix < last.at_unix {
                return Err(DumpError::NonMonotonic {
                    line: line_no,
                    prev: last.at_unix,
                    got: at_unix,
                });
            }
        }
        let update = match fields[1] {
            "A" => {
                if fields.len() != 7 {
                    return Err(DumpError::FieldCount {
                        line: line_no,
                        expected: 7,
                        got: fields.len(),
                    });
                }
                RouteUpdate::Announce(parse_route_fields(line_no, &fields[2..7])?)
            }
            "W" => {
                if fields.len() != 3 {
                    return Err(DumpError::FieldCount {
                        line: line_no,
                        expected: 3,
                        got: fields.len(),
                    });
                }
                RouteUpdate::Withdraw(fields[2].parse().map_err(|_| DumpError::BadField {
                    line: line_no,
                    field: "prefix",
                    content: fields[2].to_string(),
                })?)
            }
            other => {
                return Err(DumpError::BadField {
                    line: line_no,
                    field: "action",
                    content: other.to_string(),
                });
            }
        };
        match batches.last_mut() {
            Some(last) if last.at_unix == at_unix => last.updates.push(update),
            _ => batches.push(UpdateBatch { at_unix, updates: vec![update] }),
        }
    }
    Ok(batches)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_table() -> BgpTable {
        BgpTable::from_entries(vec![
            RouteEntry {
                prefix: "10.0.0.0/8".parse().unwrap(),
                next_hop: Ipv4Addr::new(192, 0, 2, 1),
                as_path: vec![1239, 701, 3356],
                origin: Origin::Igp,
                peer_class: PeerClass::Tier1,
            },
            RouteEntry {
                prefix: "172.16.0.0/12".parse().unwrap(),
                next_hop: Ipv4Addr::new(192, 0, 2, 9),
                as_path: vec![7018],
                origin: Origin::Incomplete,
                peer_class: PeerClass::Stub,
            },
        ])
    }

    #[test]
    fn round_trip() {
        let table = sample_table();
        let mut buf = Vec::new();
        write_dump(&table, &mut buf).unwrap();
        let back = read_dump(&buf[..]).unwrap();
        assert_eq!(back.len(), table.len());
        for e in table.iter() {
            assert_eq!(back.get(e.prefix), Some(e));
        }
    }

    #[test]
    fn comments_and_blank_lines_skipped() {
        let text = "\n# header\n\n10.0.0.0/8|192.0.2.1|1239|IGP|TIER1\n   \n";
        let t = read_dump(text.as_bytes()).unwrap();
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn field_count_error_reports_line_and_expectation() {
        let text = "# ok\n10.0.0.0/8|192.0.2.1|1239\n";
        let err = read_dump(text.as_bytes()).unwrap_err();
        assert_eq!(err, DumpError::FieldCount { line: 2, expected: 5, got: 3 });
        assert_eq!(err.to_string(), "line 2: expected 5 fields, got 3");
    }

    #[test]
    fn bad_field_error_carries_offending_token() {
        let text = "10.0.0.0/8|192.0.2.1|12 bogus 34|IGP|TIER1\n";
        let err = read_dump(text.as_bytes()).unwrap_err();
        assert_eq!(
            err,
            DumpError::BadField { line: 1, field: "as_path", content: "bogus".to_string() }
        );
        assert_eq!(err.to_string(), "line 1: bad as_path: \"bogus\"");
    }

    #[test]
    fn bad_fields_are_specific() {
        let cases = [
            ("x/8|192.0.2.1|1|IGP|TIER1", "prefix"),
            ("10.0.0.0/8|bogus|1|IGP|TIER1", "next_hop"),
            ("10.0.0.0/8|192.0.2.1|abc|IGP|TIER1", "as_path"),
            ("10.0.0.0/8|192.0.2.1|1|XXX|TIER1", "origin"),
            ("10.0.0.0/8|192.0.2.1|1|IGP|YYY", "peer_class"),
        ];
        for (text, field) in cases {
            match read_dump(text.as_bytes()).unwrap_err() {
                DumpError::BadField { field: f, .. } => assert_eq!(f, field),
                other => panic!("expected BadField({field}), got {other:?}"),
            }
        }
    }

    #[test]
    fn empty_as_path_round_trips() {
        let t = BgpTable::from_entries(vec![RouteEntry {
            prefix: "10.0.0.0/8".parse().unwrap(),
            next_hop: Ipv4Addr::new(1, 1, 1, 1),
            as_path: vec![],
            origin: Origin::Egp,
            peer_class: PeerClass::Tier2,
        }]);
        let mut buf = Vec::new();
        write_dump(&t, &mut buf).unwrap();
        let back = read_dump(&buf[..]).unwrap();
        assert_eq!(back.iter().next().unwrap().as_path, Vec::<u32>::new());
    }

    #[test]
    fn header_mentions_route_count() {
        let mut buf = Vec::new();
        write_dump(&sample_table(), &mut buf).unwrap();
        let text = String::from_utf8(buf).unwrap();
        assert!(text.starts_with("# backbone-elephants RIB dump: 2 routes"));
    }

    fn sample_batches() -> Vec<UpdateBatch> {
        vec![
            UpdateBatch {
                at_unix: 120,
                updates: vec![
                    RouteUpdate::Announce(RouteEntry {
                        prefix: "10.0.0.0/8".parse().unwrap(),
                        next_hop: Ipv4Addr::new(192, 0, 2, 1),
                        as_path: vec![1239, 701],
                        origin: Origin::Igp,
                        peer_class: PeerClass::Tier1,
                    }),
                    RouteUpdate::Withdraw("172.16.0.0/12".parse().unwrap()),
                ],
            },
            UpdateBatch {
                at_unix: 300,
                updates: vec![RouteUpdate::Announce(RouteEntry {
                    prefix: "10.0.0.0/8".parse().unwrap(),
                    next_hop: Ipv4Addr::new(192, 0, 2, 9),
                    as_path: vec![],
                    origin: Origin::Egp,
                    peer_class: PeerClass::Tier2,
                })],
            },
        ]
    }

    #[test]
    fn update_stream_round_trips() {
        let batches = sample_batches();
        let mut buf = Vec::new();
        write_updates(&batches, &mut buf).unwrap();
        let back = read_updates(&buf[..]).unwrap();
        assert_eq!(back, batches);
    }

    #[test]
    fn update_stream_coalesces_equal_timestamps() {
        let text = "5|W|10.0.0.0/8\n5|W|172.16.0.0/12\n9|W|192.168.0.0/16\n";
        let batches = read_updates(text.as_bytes()).unwrap();
        assert_eq!(batches.len(), 2);
        assert_eq!(batches[0].updates.len(), 2);
        assert_eq!(batches[1].at_unix, 9);
    }

    #[test]
    fn malformed_update_stream_errors_are_typed() {
        // (input, expected error) — every failure names the line and
        // the offending token, never a stringly blob.
        let cases: Vec<(&str, DumpError)> = vec![
            (
                "nope|W|10.0.0.0/8\n",
                DumpError::BadField { line: 1, field: "timestamp", content: "nope".into() },
            ),
            (
                "# hdr\n5|X|10.0.0.0/8\n",
                DumpError::BadField { line: 2, field: "action", content: "X".into() },
            ),
            (
                "5|W|10.0.0.0/8|extra\n",
                DumpError::FieldCount { line: 1, expected: 3, got: 4 },
            ),
            (
                "5|A|10.0.0.0/8|192.0.2.1|1239|IGP\n",
                DumpError::FieldCount { line: 1, expected: 7, got: 6 },
            ),
            ("5|W\n", DumpError::FieldCount { line: 1, expected: 3, got: 2 }),
            (
                "5|A|10.0.0.0/8|192.0.2.1|1239|XXX|TIER1\n",
                DumpError::BadField { line: 1, field: "origin", content: "XXX".into() },
            ),
            (
                "5|W|999.0.0.0/8\n",
                DumpError::BadField { line: 1, field: "prefix", content: "999.0.0.0/8".into() },
            ),
            (
                "9|W|10.0.0.0/8\n5|W|172.16.0.0/12\n",
                DumpError::NonMonotonic { line: 2, prev: 9, got: 5 },
            ),
        ];
        for (text, want) in cases {
            assert_eq!(read_updates(text.as_bytes()).unwrap_err(), want, "input {text:?}");
        }
    }
}
