//! Line-oriented text RIB dumps.
//!
//! Format, one route per line, `|`-separated:
//!
//! ```text
//! # comment / header lines start with '#'
//! 10.0.0.0/8|192.0.2.1|1239 701 3356|IGP|TIER1
//! ```
//!
//! This mirrors the flat text exports of route collectors (e.g. RouteViews
//! `show ip bgp` dumps) closely enough to be practical while staying
//! trivially diffable in tests.

use core::fmt;
use std::io::{BufRead, BufReader, Read, Write};
use std::net::Ipv4Addr;

use crate::{BgpTable, Origin, PeerClass, RouteEntry};

/// Errors from parsing a text RIB dump.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DumpError {
    /// Line did not have the expected number of fields.
    FieldCount {
        /// 1-based line number.
        line: usize,
        /// Fields found.
        got: usize,
    },
    /// A field failed to parse.
    BadField {
        /// 1-based line number.
        line: usize,
        /// Which field.
        field: &'static str,
        /// Offending content.
        content: String,
    },
    /// Underlying I/O failure.
    Io(String),
}

impl fmt::Display for DumpError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DumpError::FieldCount { line, got } => {
                write!(f, "line {line}: expected 5 fields, got {got}")
            }
            DumpError::BadField { line, field, content } => {
                write!(f, "line {line}: bad {field}: {content:?}")
            }
            DumpError::Io(msg) => write!(f, "I/O error: {msg}"),
        }
    }
}

impl std::error::Error for DumpError {}

impl From<std::io::Error> for DumpError {
    fn from(e: std::io::Error) -> Self {
        DumpError::Io(e.to_string())
    }
}

/// Serialise a table to the text format, sorted in RIB order.
pub fn write_dump<W: Write>(table: &BgpTable, mut out: W) -> Result<(), DumpError> {
    writeln!(out, "# backbone-elephants RIB dump: {} routes", table.len())?;
    writeln!(out, "# prefix|next_hop|as_path|origin|peer_class")?;
    for e in table.iter() {
        let path: Vec<String> = e.as_path.iter().map(u32::to_string).collect();
        writeln!(
            out,
            "{}|{}|{}|{}|{}",
            e.prefix,
            e.next_hop,
            path.join(" "),
            e.origin,
            e.peer_class
        )?;
    }
    Ok(())
}

/// Parse a table from the text format.
pub fn read_dump<R: Read>(input: R) -> Result<BgpTable, DumpError> {
    let reader = BufReader::new(input);
    let mut table = BgpTable::new();
    for (idx, line) in reader.lines().enumerate() {
        let line_no = idx + 1;
        let line = line?;
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with('#') {
            continue;
        }
        let fields: Vec<&str> = trimmed.split('|').collect();
        if fields.len() != 5 {
            return Err(DumpError::FieldCount {
                line: line_no,
                got: fields.len(),
            });
        }
        let prefix = fields[0].parse().map_err(|_| DumpError::BadField {
            line: line_no,
            field: "prefix",
            content: fields[0].to_string(),
        })?;
        let next_hop: Ipv4Addr = fields[1].parse().map_err(|_| DumpError::BadField {
            line: line_no,
            field: "next_hop",
            content: fields[1].to_string(),
        })?;
        let as_path = fields[2]
            .split_whitespace()
            .map(|t| {
                t.parse::<u32>().map_err(|_| DumpError::BadField {
                    line: line_no,
                    field: "as_path",
                    content: t.to_string(),
                })
            })
            .collect::<Result<Vec<u32>, _>>()?;
        let origin: Origin = fields[3].parse().map_err(|_| DumpError::BadField {
            line: line_no,
            field: "origin",
            content: fields[3].to_string(),
        })?;
        let peer_class: PeerClass = fields[4].parse().map_err(|_| DumpError::BadField {
            line: line_no,
            field: "peer_class",
            content: fields[4].to_string(),
        })?;
        table.insert(RouteEntry {
            prefix,
            next_hop,
            as_path,
            origin,
            peer_class,
        });
    }
    Ok(table)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_table() -> BgpTable {
        BgpTable::from_entries(vec![
            RouteEntry {
                prefix: "10.0.0.0/8".parse().unwrap(),
                next_hop: Ipv4Addr::new(192, 0, 2, 1),
                as_path: vec![1239, 701, 3356],
                origin: Origin::Igp,
                peer_class: PeerClass::Tier1,
            },
            RouteEntry {
                prefix: "172.16.0.0/12".parse().unwrap(),
                next_hop: Ipv4Addr::new(192, 0, 2, 9),
                as_path: vec![7018],
                origin: Origin::Incomplete,
                peer_class: PeerClass::Stub,
            },
        ])
    }

    #[test]
    fn round_trip() {
        let table = sample_table();
        let mut buf = Vec::new();
        write_dump(&table, &mut buf).unwrap();
        let back = read_dump(&buf[..]).unwrap();
        assert_eq!(back.len(), table.len());
        for e in table.iter() {
            assert_eq!(back.get(e.prefix), Some(e));
        }
    }

    #[test]
    fn comments_and_blank_lines_skipped() {
        let text = "\n# header\n\n10.0.0.0/8|192.0.2.1|1239|IGP|TIER1\n   \n";
        let t = read_dump(text.as_bytes()).unwrap();
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn field_count_error_reports_line() {
        let text = "# ok\n10.0.0.0/8|192.0.2.1|1239\n";
        assert_eq!(
            read_dump(text.as_bytes()).unwrap_err(),
            DumpError::FieldCount { line: 2, got: 3 }
        );
    }

    #[test]
    fn bad_fields_are_specific() {
        let cases = [
            ("x/8|192.0.2.1|1|IGP|TIER1", "prefix"),
            ("10.0.0.0/8|bogus|1|IGP|TIER1", "next_hop"),
            ("10.0.0.0/8|192.0.2.1|abc|IGP|TIER1", "as_path"),
            ("10.0.0.0/8|192.0.2.1|1|XXX|TIER1", "origin"),
            ("10.0.0.0/8|192.0.2.1|1|IGP|YYY", "peer_class"),
        ];
        for (text, field) in cases {
            match read_dump(text.as_bytes()).unwrap_err() {
                DumpError::BadField { field: f, .. } => assert_eq!(f, field),
                other => panic!("expected BadField({field}), got {other:?}"),
            }
        }
    }

    #[test]
    fn empty_as_path_round_trips() {
        let t = BgpTable::from_entries(vec![RouteEntry {
            prefix: "10.0.0.0/8".parse().unwrap(),
            next_hop: Ipv4Addr::new(1, 1, 1, 1),
            as_path: vec![],
            origin: Origin::Egp,
            peer_class: PeerClass::Tier2,
        }]);
        let mut buf = Vec::new();
        write_dump(&t, &mut buf).unwrap();
        let back = read_dump(&buf[..]).unwrap();
        assert_eq!(back.iter().next().unwrap().as_path, Vec::<u32>::new());
    }

    #[test]
    fn header_mentions_route_count() {
        let mut buf = Vec::new();
        write_dump(&sample_table(), &mut buf).unwrap();
        let text = String::from_utf8(buf).unwrap();
        assert!(text.starts_with("# backbone-elephants RIB dump: 2 routes"));
    }
}
