//! Continuously updatable routing table with stable route ids — the
//! live counterpart of [`FrozenBgpTable`].
//!
//! [`FrozenBgpTable`] is a snapshot: correct for a fixed RIB, but a
//! single route change costs a full refreeze while lookups stall. A
//! [`LiveBgpTable`] stays updatable end-to-end: announce/withdraw
//! batches ([`RouteUpdate`]) apply incrementally through
//! [`eleph_net::EpochLpm`] — repainting only the changed prefix's slot
//! range and publishing the result as a new *generation* — while any
//! number of readers keep attributing packets against pinned
//! [`TableView`]s, wait-free.
//!
//! # Id semantics
//!
//! [`RouteId`]s here are **stable and append-only**, unlike the frozen
//! table's dump-ordered dense ids:
//!
//! * a route keeps its id for as long as it stays in the table;
//! * a withdrawn route's id *retires* — it is never reused, and its
//!   prefix/entry remain resolvable via [`TableView::prefix`] (so
//!   checkpointed accounting keyed by retired ids can still be
//!   validated);
//! * a re-announced prefix gets a **fresh** id — downstream accounting
//!   (the flow `KeyAllocator`) sees it as a new key, which is exactly
//!   the paper-faithful re-attribution semantics: history is not
//!   rewritten, old keys drain out through the classifier's latent-heat
//!   window.
//!
//! The id space therefore grows monotonically ([`LiveBgpTable::n_ids`])
//! while the live route count ([`LiveBgpTable::len`]) tracks the RIB.

use std::fmt;
use std::net::Ipv4Addr;
use std::sync::{Arc, Mutex};

use eleph_net::epoch::LpmSnapshot;
use eleph_net::{EpochLpm, LpmDelta, LpmView, Prefix};

use crate::{BgpTable, FrozenBgpTable, RouteEntry, RouteId};

/// Entries per chunk of the append-only id → route store. Chunks behind
/// an `Arc` are shared with pinned [`TableView`]s; only the (at most
/// one) partially filled tail chunk is copied when a writer appends
/// while readers hold it.
const ROUTE_CHUNK: usize = 1024;

/// One route change in an update stream.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RouteUpdate {
    /// Announce (insert or replace) a route.
    Announce(RouteEntry),
    /// Withdraw the route for exactly this prefix (no-op if absent).
    Withdraw(Prefix),
}

/// A timestamped batch of route updates: every update in a batch
/// applies atomically under one published generation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UpdateBatch {
    /// Unix seconds at which the batch takes effect.
    pub at_unix: u64,
    /// The updates, applied in order within the batch.
    pub updates: Vec<RouteUpdate>,
}

/// Result of one [`LiveBgpTable::apply`] batch.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ApplyReport {
    /// Generation published for this batch.
    pub generation: u64,
    /// Number of announces in the batch (each allocated a fresh id).
    pub announced: usize,
    /// Ids that retired: withdrawn routes plus routes replaced by a
    /// re-announce, in batch order.
    pub retired: Vec<RouteId>,
}

/// Append-only id → entry store, chunked so published views share all
/// full chunks with the writer.
struct Routes {
    chunks: Vec<Arc<Vec<RouteEntry>>>,
    n_ids: u32,
    live: usize,
}

impl Routes {
    fn push(&mut self, entry: RouteEntry) -> RouteId {
        let id = self.n_ids;
        assert!(id != u32::MAX, "route id space exhausted");
        if self.chunks.last().map_or(true, |c| c.len() >= ROUTE_CHUNK) {
            self.chunks.push(Arc::new(Vec::with_capacity(ROUTE_CHUNK)));
        }
        Arc::make_mut(self.chunks.last_mut().expect("chunk pushed above")).push(entry);
        self.n_ids += 1;
        id
    }
}

/// A continuously updatable BGP table: stable ids, epoch-swapped
/// incremental LPM underneath, wait-free pinned views.
///
/// ```
/// use eleph_bgp::{LiveBgpTable, RouteUpdate, RouteEntry, Origin, PeerClass};
///
/// let table = LiveBgpTable::new();
/// table.apply(&[RouteUpdate::Announce(RouteEntry {
///     prefix: "10.0.0.0/8".parse().unwrap(),
///     next_hop: "192.0.2.1".parse().unwrap(),
///     as_path: vec![1239],
///     origin: Origin::Igp,
///     peer_class: PeerClass::Tier1,
/// })]);
///
/// let view = table.view();
/// let id = view.attribute_id(u32::from_be_bytes([10, 1, 2, 3])).unwrap();
/// assert_eq!(view.prefix(id), "10.0.0.0/8".parse().unwrap());
/// assert_eq!(view.generation(), 1);
/// ```
pub struct LiveBgpTable {
    lpm: EpochLpm,
    routes: Mutex<Routes>,
}

impl LiveBgpTable {
    /// An empty table at generation 0.
    pub fn new() -> Self {
        LiveBgpTable {
            lpm: EpochLpm::new(),
            routes: Mutex::new(Routes { chunks: Vec::new(), n_ids: 0, live: 0 }),
        }
    }

    /// Seed a live table from a RIB snapshot. Initial ids run
    /// `0..len()` in RIB-dump order — identical to what
    /// [`BgpTable::freeze`] would assign — and the table starts at
    /// generation 0, so a checkpoint taken against the equivalent
    /// frozen table fingerprints the same.
    pub fn from_table(table: &BgpTable) -> Self {
        let mut routes = Routes { chunks: Vec::new(), n_ids: 0, live: 0 };
        let mut entries = Vec::with_capacity(table.len());
        for e in table.iter() {
            let id = routes.push(e.clone());
            entries.push((e.prefix, id));
        }
        routes.live = table.len();
        LiveBgpTable { lpm: EpochLpm::from_entries(entries), routes: Mutex::new(routes) }
    }

    /// Apply one batch of updates and publish it as a new generation.
    ///
    /// Announces allocate fresh ids (replacing the prefix's old route,
    /// whose id retires); withdraws retire the prefix's id, or do
    /// nothing if the prefix is not routed. Pinned views are
    /// unaffected; views taken after `apply` returns see the batch in
    /// full.
    pub fn apply(&self, updates: &[RouteUpdate]) -> ApplyReport {
        let mut routes = self.routes.lock().expect("route store poisoned");
        let mut deltas = Vec::with_capacity(updates.len());
        let mut announced = 0usize;
        for update in updates {
            match update {
                RouteUpdate::Announce(entry) => {
                    let id = routes.push(entry.clone());
                    deltas.push(LpmDelta::Announce { prefix: entry.prefix, id });
                    announced += 1;
                }
                RouteUpdate::Withdraw(prefix) => {
                    deltas.push(LpmDelta::Withdraw { prefix: *prefix });
                }
            }
        }
        let applied = self.lpm.apply(&deltas);
        routes.live = routes.live + announced - applied.retired.len();
        ApplyReport { generation: applied.generation, announced, retired: applied.retired }
    }

    /// Pin a consistent read view of the current generation. The view
    /// owns its snapshot: attribution against it is wait-free and
    /// unaffected by concurrent [`LiveBgpTable::apply`] calls.
    pub fn view(&self) -> TableView {
        // Pin the LPM snapshot *first*: route metadata is appended
        // before a generation publishes, so the chunks grabbed after
        // the pin always cover every id the snapshot can resolve.
        let snap = self.lpm.pin();
        let routes = self.routes.lock().expect("route store poisoned");
        TableView { snap, chunks: routes.chunks.clone(), n_ids: routes.n_ids }
    }

    /// Generation of the most recently published batch (0 = as built).
    pub fn generation(&self) -> u64 {
        self.lpm.generation()
    }

    /// Number of *live* routes.
    pub fn len(&self) -> usize {
        self.routes.lock().expect("route store poisoned").live
    }

    /// Whether no routes are live.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Total ids ever allocated (live + retired); the id space the
    /// downstream `KeyAllocator` must be able to address.
    pub fn n_ids(&self) -> usize {
        self.routes.lock().expect("route store poisoned").n_ids as usize
    }

    /// Snapshot the *live* routes into an updatable [`BgpTable`]
    /// (used to compare a delta-built table against a fresh freeze).
    pub fn to_table(&self) -> BgpTable {
        let view = self.view();
        BgpTable::from_entries(
            self.lpm.entries().into_iter().map(|(_, id)| view.route(id).clone()),
        )
    }

    /// Compact the live routes into a [`FrozenBgpTable`] (dense
    /// dump-ordered ids — the stable-id mapping is *not* preserved).
    pub fn freeze(&self) -> FrozenBgpTable {
        self.to_table().freeze()
    }
}

impl Default for LiveBgpTable {
    fn default() -> Self {
        Self::new()
    }
}

impl fmt::Debug for LiveBgpTable {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let routes = self.routes.lock().expect("route store poisoned");
        f.debug_struct("LiveBgpTable")
            .field("live", &routes.live)
            .field("n_ids", &routes.n_ids)
            .field("generation", &self.lpm.generation())
            .finish_non_exhaustive()
    }
}

/// A pinned, immutable view of a [`LiveBgpTable`] generation.
///
/// Mirrors the [`FrozenBgpTable`] attribution API; additionally
/// resolves *retired* ids (their routes stay in the append-only store),
/// which checkpoint revalidation relies on.
#[derive(Clone)]
pub struct TableView {
    snap: Arc<LpmSnapshot>,
    chunks: Vec<Arc<Vec<RouteEntry>>>,
    n_ids: u32,
}

impl TableView {
    /// The generation this view is pinned to.
    pub fn generation(&self) -> u64 {
        self.snap.generation()
    }

    /// Size of the id space this view can resolve (live + retired).
    pub fn n_ids(&self) -> usize {
        self.n_ids as usize
    }

    /// Longest-prefix attribution of a destination address.
    #[inline]
    pub fn attribute(&self, dst: Ipv4Addr) -> Option<(RouteId, &RouteEntry)> {
        let id = self.snap.lookup_id(u32::from(dst))?;
        Some((id, self.route(id)))
    }

    /// Longest-prefix attribution returning only the route id.
    #[inline]
    pub fn attribute_id(&self, dst: u32) -> Option<RouteId> {
        self.snap.lookup_id(dst)
    }

    /// Batched [`TableView::attribute_id`], the chunked hot-path form.
    ///
    /// # Panics
    /// If `dsts` and `out` differ in length.
    #[inline]
    pub fn attribute_ids(&self, dsts: &[u32], out: &mut [Option<RouteId>]) {
        self.snap.lookup_many(dsts, out);
    }

    /// The prefix of route `id` — resolvable for retired ids too.
    ///
    /// # Panics
    /// If `id` was never allocated in this view's generation.
    #[inline]
    pub fn prefix(&self, id: RouteId) -> Prefix {
        self.route(id).prefix
    }

    /// The full entry of route `id` (live or retired).
    ///
    /// # Panics
    /// If `id` was never allocated in this view's generation.
    #[inline]
    pub fn route(&self, id: RouteId) -> &RouteEntry {
        assert!(id < self.n_ids, "route id {id} not allocated (n_ids {})", self.n_ids);
        &self.chunks[id as usize / ROUTE_CHUNK][id as usize % ROUTE_CHUNK]
    }
}

impl fmt::Debug for TableView {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("TableView")
            .field("generation", &self.generation())
            .field("n_ids", &self.n_ids)
            .finish_non_exhaustive()
    }
}

impl LpmView<u32> for TableView {
    fn lookup_one(&self, addr: u32) -> Option<u32> {
        self.snap.lookup_id(addr)
    }

    fn lookup_batch(&self, addrs: &[u32], out: &mut [Option<u32>]) {
        self.snap.lookup_many(addrs, out);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Origin, PeerClass};

    fn entry(prefix: &str) -> RouteEntry {
        RouteEntry {
            prefix: prefix.parse().unwrap(),
            next_hop: Ipv4Addr::new(192, 0, 2, 1),
            as_path: vec![1239, 701],
            origin: Origin::Igp,
            peer_class: PeerClass::Tier1,
        }
    }

    fn addr(s: &str) -> u32 {
        u32::from(s.parse::<Ipv4Addr>().unwrap())
    }

    #[test]
    fn from_table_ids_match_frozen_order() {
        let base = BgpTable::from_entries(vec![
            entry("10.1.0.0/16"),
            entry("9.0.0.0/8"),
            entry("10.0.0.0/8"),
        ]);
        let frozen = base.freeze();
        let live = LiveBgpTable::from_table(&base);
        assert_eq!(live.generation(), 0);
        assert_eq!(live.len(), 3);
        assert_eq!(live.n_ids(), 3);
        let view = live.view();
        for a in ["9.1.1.1", "10.1.2.3", "10.200.0.1", "11.0.0.1"] {
            assert_eq!(view.attribute_id(addr(a)), frozen.attribute_id(addr(a)), "{a}");
        }
        assert_eq!(view.prefix(0), "9.0.0.0/8".parse().unwrap());
    }

    #[test]
    fn withdraw_retires_and_reannounce_gets_fresh_id() {
        let live = LiveBgpTable::from_table(&BgpTable::from_entries(vec![
            entry("10.0.0.0/8"),
            entry("10.1.0.0/16"),
        ]));
        let old_id = live.view().attribute_id(addr("10.1.2.3")).unwrap();
        assert_eq!(old_id, 1);

        let report = live.apply(&[RouteUpdate::Withdraw("10.1.0.0/16".parse().unwrap())]);
        assert_eq!(report.retired, vec![1]);
        assert_eq!(live.len(), 1);
        let mid = live.view();
        assert_eq!(mid.attribute_id(addr("10.1.2.3")), Some(0), "falls back to /8");
        // the retired id still resolves its prefix (checkpoint path)
        assert_eq!(mid.prefix(old_id), "10.1.0.0/16".parse().unwrap());

        let report = live.apply(&[RouteUpdate::Announce(entry("10.1.0.0/16"))]);
        assert_eq!(report.announced, 1);
        assert!(report.retired.is_empty());
        let new_id = live.view().attribute_id(addr("10.1.2.3")).unwrap();
        assert_eq!(new_id, 2, "re-announced prefix gets a fresh id");
        assert_eq!(live.n_ids(), 3);
        assert_eq!(live.len(), 2);
    }

    #[test]
    fn replacing_announce_retires_old_id() {
        let live = LiveBgpTable::from_table(&BgpTable::from_entries(vec![entry("10.0.0.0/8")]));
        let mut replacement = entry("10.0.0.0/8");
        replacement.as_path = vec![7018];
        let report = live.apply(&[RouteUpdate::Announce(replacement)]);
        assert_eq!(report.retired, vec![0]);
        let view = live.view();
        let id = view.attribute_id(addr("10.9.9.9")).unwrap();
        assert_eq!(id, 1);
        assert_eq!(view.route(id).as_path, vec![7018]);
        assert_eq!(view.route(0).as_path, vec![1239, 701], "retired entry preserved");
    }

    #[test]
    fn pinned_view_survives_later_batches() {
        let live = LiveBgpTable::from_table(&BgpTable::from_entries(vec![entry("10.0.0.0/8")]));
        let pinned = live.view();
        live.apply(&[RouteUpdate::Withdraw("10.0.0.0/8".parse().unwrap())]);
        assert_eq!(pinned.attribute_id(addr("10.1.2.3")), Some(0));
        assert_eq!(pinned.generation(), 0);
        assert_eq!(live.view().attribute_id(addr("10.1.2.3")), None);
    }

    #[test]
    fn delta_built_equals_fresh_freeze() {
        let live = LiveBgpTable::new();
        live.apply(&[
            RouteUpdate::Announce(entry("10.0.0.0/8")),
            RouteUpdate::Announce(entry("10.1.0.0/16")),
            RouteUpdate::Announce(entry("10.1.2.192/27")),
        ]);
        live.apply(&[RouteUpdate::Withdraw("10.1.0.0/16".parse().unwrap())]);
        live.apply(&[RouteUpdate::Announce(entry("203.0.113.0/24"))]);

        // Final RIB frozen from scratch.
        let fresh = BgpTable::from_entries(vec![
            entry("10.0.0.0/8"),
            entry("10.1.2.192/27"),
            entry("203.0.113.0/24"),
        ])
        .freeze();
        let view = live.view();
        for a in [
            "10.0.0.1", "10.1.2.3", "10.1.2.200", "10.1.2.223", "203.0.113.9", "8.8.8.8",
        ] {
            let via_live = view.attribute_id(addr(a)).map(|id| view.prefix(id));
            let via_fresh = fresh.attribute_id(addr(a)).map(|id| fresh.prefix(id));
            assert_eq!(via_live, via_fresh, "{a}");
        }
        assert_eq!(live.to_table().freeze().len(), fresh.len());
    }

    #[test]
    fn chunk_boundary_appends_stay_shared() {
        let live = LiveBgpTable::new();
        // Cross the ROUTE_CHUNK boundary with distinct /24s.
        let n = super::ROUTE_CHUNK + 5;
        for i in 0..n {
            let b = 1 + (i / 256) as u8;
            let c = (i % 256) as u8;
            live.apply(&[RouteUpdate::Announce(entry(&format!("{b}.{c}.0.0/24")))]);
        }
        assert_eq!(live.n_ids(), n);
        let view = live.view();
        assert_eq!(view.n_ids(), n);
        let last = (n - 1) as u32;
        assert_eq!(view.route(last).prefix, view.prefix(last));
    }
}
