//! BGP routing-table substrate.
//!
//! The paper's flow granularity is the *BGP destination network prefix*:
//! every packet is attributed to the longest-matching entry of the routing
//! table collected alongside the packet trace. Sprint's 2001 tables are
//! proprietary, so this crate provides both the table machinery and a
//! calibrated synthetic stand-in:
//!
//! * [`RouteEntry`] / [`Origin`] / [`PeerClass`] — one RIB entry with the
//!   attributes the analysis needs (AS path, origin, peer classification);
//! * [`BgpTable`] — an LPM-indexed RIB over [`eleph_net::CompressedTrieLpm`]
//!   with prefix attribution ([`BgpTable::attribute`]) and unshadowed
//!   address sampling for trace synthesis;
//! * [`FrozenBgpTable`] — the read-optimized FIB compiled from a table
//!   snapshot by [`BgpTable::freeze`]: O(1) flat-array attribution
//!   returning dense [`RouteId`]s, which is what the packet hot path in
//!   `eleph_flow` runs against;
//! * [`LiveBgpTable`] — the *continuously updatable* FIB: announce/
//!   withdraw batches ([`RouteUpdate`]) apply incrementally behind an
//!   epoch/generation swap while readers attribute against pinned
//!   [`TableView`]s; ids are stable (withdrawn ids retire, re-announced
//!   prefixes get fresh ids), which is what mid-stream re-attribution
//!   in `eleph_pipeline` builds on;
//! * [`dump`] — a line-oriented text RIB format plus a timed update
//!   stream format (write + parse);
//! * [`synth`] — a synthetic table generator whose prefix-length histogram
//!   matches a 2001-era backbone table (~100k entries, mass at /16–/24),
//!   used by every experiment in the reproduction.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod dump;
mod frozen;
mod live;
mod route;
pub mod synth;
mod table;

pub use frozen::{FrozenBgpTable, RouteId};
pub use live::{ApplyReport, LiveBgpTable, RouteUpdate, TableView, UpdateBatch};
pub use route::{Origin, PeerClass, RouteEntry};
pub use synth::{SynthConfig, DEFAULT_LENGTH_WEIGHTS};
pub use table::BgpTable;
